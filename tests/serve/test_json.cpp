// The wire JSON value: exact double round-trips, deterministic dumps,
// and a strict parser that rejects everything the protocol must reject.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "serve/json.hpp"

namespace {

using f3d::serve::Json;

TEST(Json, DumpSortsKeysDeterministically) {
  Json j;
  j["zulu"] = 1;
  j["alpha"] = 2;
  j["mike"] = 3;
  EXPECT_EQ(j.dump(), R"({"alpha":2,"mike":3,"zulu":1})");
}

TEST(Json, DoublesRoundTripBitwise) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           2.2780666679499829e-14,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -1.8905259173795150e-05};
  for (const double want : values) {
    Json j;
    j["residual"] = want;
    const auto back = Json::parse(j.dump());
    ASSERT_TRUE(back.has_value()) << j.dump();
    const double got = back->get_double("residual");
    EXPECT_EQ(std::memcmp(&got, &want, sizeof got), 0)
        << "double did not survive the wire: " << j.dump();
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json j;
  j["nan"] = std::nan("");
  j["inf"] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(j.dump(), R"({"inf":null,"nan":null})");
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  Json j;
  j["job"] = 42;
  j["steps"] = 5000;
  EXPECT_EQ(j.dump(), R"({"job":42,"steps":5000})");
}

TEST(Json, StringEscapingRoundTrips) {
  Json j;
  j["s"] = std::string("line\nquote\"back\\slash\ttab\x01");
  const auto back = Json::parse(j.dump());
  ASSERT_TRUE(back.has_value()) << j.dump();
  EXPECT_EQ(back->get_string("s"), "line\nquote\"back\\slash\ttab\x01");
}

TEST(Json, ParsesNestedValues) {
  const auto j = Json::parse(
      R"({"jobs":[{"id":1,"ok":true},{"id":2,"ok":false}],"n":null})");
  ASSERT_TRUE(j.has_value());
  ASSERT_TRUE(j->find("jobs")->is_array());
  EXPECT_EQ(j->find("jobs")->array().size(), 2u);
  EXPECT_EQ(j->find("jobs")->array()[1].get_int("id"), 2);
  EXPECT_TRUE(j->find("n")->is_null());
}

TEST(Json, SurrogatePairsDecode) {
  const auto j = Json::parse(R"({"s":"\ud83d\ude00"})");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->get_string("s"), "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(Json, MalformedInputsAreRejectedWithAnError) {
  const char* bad[] = {
      "",                         // empty
      "{",                        // unterminated object
      "{\"a\":1,}",               // trailing comma
      "{\"a\" 1}",                // missing colon
      "{'a':1}",                  // wrong quotes
      "[1 2]",                    // missing comma
      "01",                       // leading zero
      "1.",                       // digit required after point
      "1e",                       // digit required in exponent
      "nul",                      // bad literal
      "\"\\q\"",                  // bad escape
      "\"\\ud800\"",              // lone high surrogate
      "\"\\udc00\"",              // lone low surrogate
      "\"\x01\"",                 // raw control character
      "{} {}",                    // trailing garbage
      "{\"a\":1} x",              // trailing garbage after value
      "1e999",                    // out of double range
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(Json::parse(text, &error).has_value())
        << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, DepthLimitRejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  for (int i = 0; i < 80; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(Json::parse(deep, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
  // 32 levels is comfortably inside the limit.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_TRUE(Json::parse(ok).has_value());
}

TEST(Json, TypedGettersFallBackOnMissingOrWrongType) {
  const auto j = Json::parse(R"({"s":"x","n":3,"b":true})");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->get_string("s"), "x");
  EXPECT_EQ(j->get_string("n", "fallback"), "fallback");  // wrong type
  EXPECT_EQ(j->get_int("missing", 7), 7);
  EXPECT_EQ(j->get_double("b", 2.5), 2.5);  // wrong type
  EXPECT_TRUE(j->get_bool("b"));
  EXPECT_EQ(j->find("missing"), nullptr);
}

TEST(Json, DumpNeverContainsNewlines) {
  Json j;
  j["multi"] = std::string("a\nb\rc");
  Json::Array arr;
  arr.push_back(j);
  arr.push_back(Json("x\ny"));
  const std::string line = Json(std::move(arr)).dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);
}

}  // namespace
