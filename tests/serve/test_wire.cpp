// Framing layer: newline-delimited lines over a socketpair, the 1 MiB
// line cap, and fd ownership semantics.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "serve/wire.hpp"

namespace {

using f3d::serve::kMaxLine;
using f3d::serve::LineReader;
using f3d::serve::Socket;
using f3d::serve::write_line;

struct Pair {
  Socket a, b;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(Wire, LinesRoundTripAcrossASocketpair) {
  Pair p;
  ASSERT_TRUE(write_line(p.a.fd(), R"({"op":"ping"})"));
  ASSERT_TRUE(write_line(p.a.fd(), "second"));
  LineReader reader(p.b.fd());
  std::string line;
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line, R"({"op":"ping"})");
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line, "second");
}

TEST(Wire, SplitWritesReassembleIntoOneLine) {
  Pair p;
  const std::string half1 = "{\"op\":\"sub";
  const std::string half2 = "mit\"}\n";
  ASSERT_EQ(::send(p.a.fd(), half1.data(), half1.size(), 0),
            static_cast<ssize_t>(half1.size()));
  std::thread later([&] {
    ASSERT_EQ(::send(p.a.fd(), half2.data(), half2.size(), 0),
              static_cast<ssize_t>(half2.size()));
  });
  LineReader reader(p.b.fd());
  std::string line;
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line, R"({"op":"submit"})");
  later.join();
}

TEST(Wire, EofAtLineBoundaryIsOrderly) {
  Pair p;
  ASSERT_TRUE(write_line(p.a.fd(), "last"));
  p.a.close();
  LineReader reader(p.b.fd());
  std::string line;
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line, "last");
  EXPECT_EQ(reader.next_line(&line), LineReader::Result::kEof);
}

TEST(Wire, OversizedLineIsRejectedAndSticky) {
  Pair p;
  // Stream kMaxLine bytes with no terminator: the reader must flag the
  // peer without waiting for a newline that may never come.
  const std::string chunk(1 << 16, 'x');
  std::size_t sent = 0;
  std::thread writer([&] {
    while (sent <= kMaxLine) {
      const ssize_t n = ::send(p.a.fd(), chunk.data(), chunk.size(), 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  });
  LineReader reader(p.b.fd());
  std::string line, err;
  EXPECT_EQ(reader.next_line(&line, &err), LineReader::Result::kOversize);
  // Oversize is sticky — the connection is poisoned, not resynchronized.
  EXPECT_EQ(reader.next_line(&line, &err), LineReader::Result::kOversize);
  p.b.close();  // unblock the writer
  writer.join();
}

TEST(Wire, MaxSizeLineStillPasses) {
  Pair p;
  const std::string line_in(kMaxLine - 1, 'y');  // + '\n' == kMaxLine
  std::thread writer([&] { ASSERT_TRUE(write_line(p.a.fd(), line_in)); });
  LineReader reader(p.b.fd());
  std::string line;
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line.size(), kMaxLine - 1);
  writer.join();
}

TEST(Wire, WriteToClosedPeerFails) {
  Pair p;
  p.b.close();
  std::string err;
  // The first write may land in the kernel buffer; keep writing until the
  // failure surfaces (no SIGPIPE either way).
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_line(p.a.fd(), std::string(4096, 'z'), &err);
  }
  EXPECT_TRUE(failed);
}

TEST(Wire, SocketMoveTransfersOwnership) {
  Pair p;
  const int fd = p.a.fd();
  Socket moved = std::move(p.a);
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(p.a.valid());
  const int released = moved.release();
  EXPECT_EQ(released, fd);
  EXPECT_FALSE(moved.valid());
  EXPECT_EQ(::close(released), 0);  // we own it after release
}

TEST(Wire, ConnectToMissingPathFails) {
  std::string err;
  const Socket s =
      f3d::serve::connect_unix("/nonexistent/dir/absent.sock", &err);
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(err.empty());
}

TEST(Wire, ListenAcceptConnectRoundTrip) {
  const std::string path = ::testing::TempDir() + "llp_wire_test.sock";
  std::string err;
  Socket listener = f3d::serve::listen_unix(path, 4, &err);
  ASSERT_TRUE(listener.valid()) << err;
  // Re-binding the same path must work (stale socket files are removed)…
  Socket listener2 = f3d::serve::listen_unix(path, 4, &err);
  ASSERT_TRUE(listener2.valid()) << err;
  listener.close();

  Socket client = f3d::serve::connect_unix(path, &err);
  ASSERT_TRUE(client.valid()) << err;
  Socket served =
      f3d::serve::accept_with_timeout(listener2.fd(), 1000, &err);
  ASSERT_TRUE(served.valid()) << err;

  ASSERT_TRUE(write_line(client.fd(), "hello"));
  LineReader reader(served.fd());
  std::string line;
  ASSERT_EQ(reader.next_line(&line), LineReader::Result::kLine);
  EXPECT_EQ(line, "hello");
  ::unlink(path.c_str());
}

TEST(Wire, AcceptTimesOutQuietly) {
  const std::string path = ::testing::TempDir() + "llp_wire_timeout.sock";
  std::string err;
  Socket listener = f3d::serve::listen_unix(path, 4, &err);
  ASSERT_TRUE(listener.valid()) << err;
  Socket s = f3d::serve::accept_with_timeout(listener.fd(), 10, &err);
  EXPECT_FALSE(s.valid());
  EXPECT_TRUE(err.empty()) << err;  // timeout is not an error
  ::unlink(path.c_str());
}

}  // namespace
