// The server core, in-process and over the socket protocol: lifecycle,
// cancel semantics, drain, preemption, event streams, durable restart,
// and the protocol's rejection paths (malformed JSON, oversized lines,
// unknown verbs).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace fs = std::filesystem;

namespace {

using f3d::serve::Client;
using f3d::serve::JobSpec;
using f3d::serve::JobState;
using f3d::serve::JobStatus;
using f3d::serve::Json;
using f3d::serve::LineReader;
using f3d::serve::Server;
using f3d::serve::ServerConfig;
using f3d::serve::Socket;
using f3d::serve::write_line;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_serve_" + name;
  fs::remove_all(dir);
  return dir;
}

// A spec small enough to finish in well under a second on one lane.
JobSpec quick_spec(int steps = 5) {
  JobSpec s;
  s.n = 8;
  s.steps = steps;
  s.threads = 1;
  s.ckpt_every = 0;
  return s;
}

// A spec that runs long enough to observe/preempt/cancel mid-flight.
JobSpec slow_spec(int priority = 0) {
  JobSpec s;
  s.n = 20;
  s.steps = 100000;
  s.wall = true;
  s.pulse = 0.05;
  s.priority = priority;
  s.threads = 1;
  s.ckpt_every = 50;
  return s;
}

TEST(Server, RunsAJobToCompletionInProcess) {
  ServerConfig cfg;  // no socket, no state dir
  cfg.total_threads = 2;
  Server server(cfg);
  server.start();
  std::string error;
  const auto id = server.submit(quick_spec(), &error);
  ASSERT_NE(id, 0u) << error;
  JobStatus status;
  ASSERT_TRUE(server.wait_terminal(id, 30.0, &status));
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.steps_done, 5);
  EXPECT_TRUE(std::isfinite(status.residual));
  server.stop();
}

TEST(Server, RunsManyConcurrentJobsWithFairShares) {
  ServerConfig cfg;
  cfg.total_threads = 4;
  cfg.max_running = 4;
  Server server(cfg);
  server.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    JobSpec s = quick_spec(8);
    s.threads = 0;  // let the fair-share policy size each job
    s.name = "tenant-" + std::to_string(i);
    std::string error;
    const auto id = server.submit(s, &error);
    ASSERT_NE(id, 0u) << error;
    ids.push_back(id);
  }
  for (const auto id : ids) {
    JobStatus status;
    ASSERT_TRUE(server.wait_terminal(id, 60.0, &status)) << id;
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
  }
  // With 4 auto jobs over 4 lanes every tenant ran; the started events
  // carry the share each was given.
  std::size_t next = 0;
  const auto events = server.events_since(ids[0], 0, &next);
  bool saw_started = false;
  for (const auto& line : events) {
    if (line.find("\"event\":\"started\"") != std::string::npos) {
      saw_started = true;
      EXPECT_NE(line.find("\"threads\":"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_started);
  server.stop();
}

TEST(Server, CancelIsIdempotentUntilTerminalThenAnError) {
  ServerConfig cfg;
  cfg.total_threads = 1;
  Server server(cfg);
  server.start();
  std::string error;
  const auto id = server.submit(slow_spec(), &error);
  ASSERT_NE(id, 0u) << error;
  EXPECT_TRUE(server.cancel(id, &error)) << error;
  // A second cancel while the first is still in flight is a no-op, not an
  // error (the client may race the runner).
  server.cancel(id, &error);
  JobStatus status;
  ASSERT_TRUE(server.wait_terminal(id, 30.0, &status));
  EXPECT_EQ(status.state, JobState::kCancelled);
  // …but cancelling a job that is already terminal is a client error.
  error.clear();
  EXPECT_FALSE(server.cancel(id, &error));
  EXPECT_NE(error.find("terminal"), std::string::npos) << error;
  // Unknown jobs are a different error.
  error.clear();
  EXPECT_FALSE(server.cancel(9999, &error));
  EXPECT_NE(error.find("unknown"), std::string::npos) << error;
  server.stop();
}

TEST(Server, DrainRefusesNewWorkButFinishesAdmittedWork) {
  ServerConfig cfg;
  cfg.total_threads = 1;
  Server server(cfg);
  server.start();
  std::string error;
  const auto id = server.submit(quick_spec(20), &error);
  ASSERT_NE(id, 0u) << error;
  EXPECT_FALSE(server.draining());
  server.drain();
  EXPECT_TRUE(server.draining());
  error.clear();
  EXPECT_EQ(server.submit(quick_spec(), &error), 0u);
  EXPECT_NE(error.find("draining"), std::string::npos) << error;
  JobStatus status;
  ASSERT_TRUE(server.wait_terminal(id, 30.0, &status));
  EXPECT_EQ(status.state, JobState::kDone);
  server.stop();
}

TEST(Server, HigherPriorityPreemptsTheWeakestRunningJob) {
  ServerConfig cfg;
  cfg.total_threads = 2;
  cfg.max_running = 1;  // force the conflict
  cfg.state_dir = fresh_dir("preempt");
  Server server(cfg);
  server.start();
  std::string error;
  const auto low = server.submit(slow_spec(/*priority=*/1), &error);
  ASSERT_NE(low, 0u) << error;

  // Wait until the low job actually runs, then outrank it.
  for (int i = 0; i < 200 && server.status(low)->state != JobState::kRunning;
       ++i) {
    ::usleep(10000);
  }
  ASSERT_EQ(server.status(low)->state, JobState::kRunning);

  const auto high = server.submit(quick_spec(5), &error);
  ASSERT_NE(high, 0u) << error;
  {
    auto s = server.status(high);
    ASSERT_TRUE(s.has_value());
  }
  // quick_spec has priority 0 — bump it above the victim.
  JobSpec hi = quick_spec(5);
  hi.priority = 9;
  const auto high2 = server.submit(hi, &error);
  ASSERT_NE(high2, 0u) << error;

  JobStatus hs;
  ASSERT_TRUE(server.wait_terminal(high2, 60.0, &hs));
  EXPECT_EQ(hs.state, JobState::kDone) << hs.error;

  // The victim was checkpoint-preempted at least once and is back in the
  // runnable set (or running again).
  const auto vs = server.status(low);
  ASSERT_TRUE(vs.has_value());
  EXPECT_GE(vs->preemptions, 1);
  EXPECT_FALSE(f3d::serve::is_terminal(vs->state));
  std::size_t next = 0;
  bool saw_preempted = false;
  for (const auto& line : server.events_since(low, 0, &next)) {
    saw_preempted |= line.find("\"event\":\"preempted\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_preempted);

  server.cancel(low, &error);
  server.wait_terminal(low, 30.0, nullptr);
  server.stop();
  fs::remove_all(cfg.state_dir);
}

TEST(Server, StopPreemptsAndRestartResumesFromCheckpoints) {
  // Graceful-stop flavour of the durability story: stop() checkpoints the
  // running job; a new Server on the same state dir requeues and finishes
  // it, resuming from the durable generation rather than step zero.
  ServerConfig cfg;
  cfg.total_threads = 1;
  cfg.state_dir = fresh_dir("stop_resume");
  std::uint64_t id = 0;
  {
    Server server(cfg);
    server.start();
    JobSpec s = slow_spec();
    // Small enough that the resumed remainder finishes under TSan on one
    // CPU, big enough that the stop below always lands mid-flight (the
    // poll breaks out within ~2 checkpoint intervals of step 60).
    s.n = 12;
    s.steps = 1500;
    s.ckpt_every = 20;
    std::string error;
    id = server.submit(s, &error);
    ASSERT_NE(id, 0u) << error;
    for (int i = 0; i < 1000; ++i) {
      const auto st = server.status(id);
      if (st->steps_done > 60) break;
      ::usleep(10000);
    }
    server.stop();  // flushes a final generation
  }
  {
    Server server(cfg);
    server.start();
    const auto st = server.status(id);
    ASSERT_TRUE(st.has_value());
    // Recovery left the job healthy: queued, dispatched, or even already
    // done if the resumed runner outran this probe — anything but a
    // terminal failure. Resume evidence is the resumed_from_step check
    // below, not this snapshot.
    EXPECT_NE(st->state, JobState::kFailed) << st->error;
    EXPECT_NE(st->state, JobState::kCancelled);
    JobStatus done;
    ASSERT_TRUE(server.wait_terminal(id, 300.0, &done));
    EXPECT_EQ(done.state, JobState::kDone) << done.error;
    EXPECT_EQ(done.steps_done, 1500);
    // The second run reported where it picked up — far from step zero.
    EXPECT_GT(done.resumed_from_step, 0) << "job restarted from scratch";
    server.stop();
  }
  fs::remove_all(cfg.state_dir);
}

TEST(Server, EventsSinceHonorsCursorAndRetention) {
  ServerConfig cfg;
  cfg.total_threads = 1;
  Server server(cfg);
  server.start();
  std::string error;
  const auto id = server.submit(quick_spec(5), &error);
  ASSERT_NE(id, 0u) << error;
  ASSERT_TRUE(server.wait_terminal(id, 30.0, nullptr));
  std::size_t next = 0;
  const auto all = server.events_since(id, 0, &next);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(next, all.size());
  EXPECT_NE(all.front().find("\"event\":\"queued\""), std::string::npos);
  EXPECT_NE(all.back().find("\"event\":\"done\""), std::string::npos);
  // Cursor past the tail returns nothing and does not move backwards.
  std::size_t next2 = 0;
  EXPECT_TRUE(server.events_since(id, next, &next2).empty());
  EXPECT_EQ(next2, next);
  // Mid-stream cursor returns exactly the suffix.
  std::size_t next3 = 0;
  const auto tail = server.events_since(id, 2, &next3);
  EXPECT_EQ(tail.size(), all.size() - 2);
  server.stop();
}

// ---------------------------------------------------------------------------
// Protocol over a real unix socket.

struct SocketServer {
  ServerConfig cfg;
  Server server;
  explicit SocketServer(const std::string& name, int max_running = 2)
      : cfg(make_cfg(name, max_running)), server(cfg) {
    server.start();
  }
  ~SocketServer() {
    server.stop();
    ::unlink(cfg.socket_path.c_str());
  }
  static ServerConfig make_cfg(const std::string& name, int max_running) {
    ServerConfig c;
    c.socket_path = ::testing::TempDir() + "llp_serve_" + name + ".sock";
    c.total_threads = 2;
    c.max_running = max_running;
    return c;
  }
  Client client() {
    std::string err;
    Client c = Client::connect(cfg.socket_path, &err);
    EXPECT_TRUE(c.connected()) << err;
    return c;
  }
};

Json roundtrip(Client& client, const Json& req) {
  Json resp;
  std::string err;
  EXPECT_TRUE(client.request(req, &resp, &err)) << err;
  return resp;
}

TEST(ServeProtocol, PingPongs) {
  SocketServer s("ping");
  Client c = s.client();
  Json req;
  req["op"] = "ping";
  const Json resp = roundtrip(c, req);
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_TRUE(resp.get_bool("pong"));
}

TEST(ServeProtocol, MalformedJsonGetsAnErrorAndKeepsTheConnection) {
  SocketServer s("badjson");
  Client c = s.client();
  ASSERT_TRUE(write_line(c.fd(), "{this is not json"));
  std::string err;
  auto resp = c.read_json_line(&err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->get_bool("ok", true));
  EXPECT_NE(resp->get_string("error").find("parse"), std::string::npos)
      << resp->dump();
  // The connection survives a parse error — a good request still works.
  Json req;
  req["op"] = "ping";
  EXPECT_TRUE(roundtrip(c, req).get_bool("ok"));
}

TEST(ServeProtocol, NonObjectRequestIsRejected) {
  SocketServer s("nonobject");
  Client c = s.client();
  ASSERT_TRUE(write_line(c.fd(), "[1,2,3]"));
  std::string err;
  auto resp = c.read_json_line(&err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->get_bool("ok", true));
}

TEST(ServeProtocol, UnknownVerbIsRejected) {
  SocketServer s("verb");
  Client c = s.client();
  Json req;
  req["op"] = "frobnicate";
  const Json resp = roundtrip(c, req);
  EXPECT_FALSE(resp.get_bool("ok", true));
  EXPECT_NE(resp.get_string("error").find("unknown op"), std::string::npos)
      << resp.dump();
}

TEST(ServeProtocol, OversizedLineDropsTheConnection) {
  SocketServer s("oversize");
  Client c = s.client();
  // Stream well past the cap with no newline: the server must answer with
  // one error line and close — never buffer without bound.
  const std::string chunk(1 << 16, 'x');
  for (std::size_t sent = 0; sent <= f3d::serve::kMaxLine;) {
    const ssize_t n = ::send(c.fd(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) break;  // server already hung up
    sent += static_cast<std::size_t>(n);
  }
  std::string err;
  LineReader reader(c.fd());
  std::string line;
  // Either we see the error line followed by EOF, or the server closed
  // before we finished writing; both end in a dead connection.
  const auto first = reader.next_line(&line, &err);
  if (first == LineReader::Result::kLine) {
    EXPECT_NE(line.find("byte limit"), std::string::npos) << line;
    // The close may surface as a clean EOF or as ECONNRESET (the server
    // hung up with our unread bytes still in flight) — dead either way.
    const auto next = reader.next_line(&line, &err);
    EXPECT_NE(next, LineReader::Result::kLine) << line;
    EXPECT_NE(next, LineReader::Result::kOversize);
  }
  // A fresh connection still serves.
  Client c2 = s.client();
  Json req;
  req["op"] = "ping";
  EXPECT_TRUE(roundtrip(c2, req).get_bool("ok"));
}

TEST(ServeProtocol, SubmitStatusWaitAndDoubleCancel) {
  SocketServer s("lifecycle");
  Client c = s.client();

  Json submit;
  submit["op"] = "submit";
  Json spec;
  spec["n"] = 20;
  spec["steps"] = 100000;
  spec["wall"] = true;
  spec["pulse"] = 0.05;
  spec["threads"] = 1;
  submit["spec"] = spec;
  const Json sub = roundtrip(c, submit);
  ASSERT_TRUE(sub.get_bool("ok")) << sub.dump();
  const auto id = sub.get_int("job");
  ASSERT_GT(id, 0);

  Json status;
  status["op"] = "status";
  status["job"] = static_cast<double>(id);
  const Json st = roundtrip(c, status);
  EXPECT_TRUE(st.get_bool("ok")) << st.dump();
  EXPECT_EQ(st.get_int("job"), id);

  Json cancel;
  cancel["op"] = "cancel";
  cancel["job"] = static_cast<double>(id);
  EXPECT_TRUE(roundtrip(c, cancel).get_bool("ok"));

  Json wait;
  wait["op"] = "wait";
  wait["job"] = static_cast<double>(id);
  const Json done = roundtrip(c, wait);
  EXPECT_TRUE(done.get_bool("ok")) << done.dump();
  EXPECT_EQ(done.get_string("state"), "cancelled");

  // Double-cancel of a terminal job: a protocol-level error, connection
  // stays up.
  const Json again = roundtrip(c, cancel);
  EXPECT_FALSE(again.get_bool("ok", true));
  EXPECT_NE(again.get_string("error").find("terminal"), std::string::npos)
      << again.dump();
  Json ping;
  ping["op"] = "ping";
  EXPECT_TRUE(roundtrip(c, ping).get_bool("ok"));
}

TEST(ServeProtocol, SubmitWhileDrainingIsRefused) {
  SocketServer s("drain");
  Client c = s.client();
  Json drain;
  drain["op"] = "drain";
  EXPECT_TRUE(roundtrip(c, drain).get_bool("ok"));

  Json submit;
  submit["op"] = "submit";
  submit["spec"] = Json(Json::Object{});
  const Json resp = roundtrip(c, submit);
  EXPECT_FALSE(resp.get_bool("ok", true));
  EXPECT_NE(resp.get_string("error").find("draining"), std::string::npos)
      << resp.dump();
}

TEST(ServeProtocol, EventStreamEndsWithDoneOrEndMarker) {
  SocketServer s("events");
  Client c = s.client();
  Json submit;
  submit["op"] = "submit";
  Json spec;
  spec["n"] = 8;
  spec["steps"] = 5;
  spec["threads"] = 1;
  spec["ckpt_every"] = 0;
  submit["spec"] = spec;
  const Json sub = roundtrip(c, submit);
  ASSERT_TRUE(sub.get_bool("ok")) << sub.dump();
  const auto id = sub.get_int("job");

  Json wait;
  wait["op"] = "wait";
  wait["job"] = static_cast<double>(id);
  ASSERT_TRUE(roundtrip(c, wait).get_bool("ok"));

  // Follow-mode stream of a finished job: replays history, ends at the
  // terminal done event, and the connection returns to request mode.
  Json events;
  events["op"] = "events";
  events["job"] = static_cast<double>(id);
  events["from"] = 0;
  events["follow"] = true;
  std::string err;
  ASSERT_TRUE(c.send(events, &err)) << err;
  bool saw_done = false;
  for (int i = 0; i < 64 && !saw_done; ++i) {
    const auto line = c.read_json_line(&err);
    ASSERT_TRUE(line.has_value()) << err;
    saw_done = line->get_string("event") == "done";
  }
  EXPECT_TRUE(saw_done);
  Json ping;
  ping["op"] = "ping";
  EXPECT_TRUE(roundtrip(c, ping).get_bool("ok"));

  // Unknown job: the stream is refused with a normal error response.
  Json bad;
  bad["op"] = "events";
  bad["job"] = 9999;
  const Json refused = roundtrip(c, bad);
  EXPECT_FALSE(refused.get_bool("ok", true));
}

TEST(ServeProtocol, ShutdownOpFlagsTheDaemonLoop) {
  SocketServer s("shutdown");
  Client c = s.client();
  EXPECT_FALSE(s.server.shutdown_requested());
  Json req;
  req["op"] = "shutdown";
  EXPECT_TRUE(roundtrip(c, req).get_bool("ok"));
  EXPECT_TRUE(s.server.shutdown_requested());
  EXPECT_TRUE(s.server.wait_shutdown(0.0));
}

}  // namespace
