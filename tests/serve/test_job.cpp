// Job model: spec validation mirrors f3d_run's ranges, records survive a
// durable round trip, and the terminal event line is byte-stable (it is
// the contract between f3d_serve and f3d_run --serve-compat).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "serve/job.hpp"

namespace fs = std::filesystem;

namespace {

using f3d::serve::JobRecord;
using f3d::serve::JobSpec;
using f3d::serve::JobState;
using f3d::serve::Json;

JobSpec parse_spec(const std::string& text) {
  std::string error;
  const auto j = Json::parse(text);
  EXPECT_TRUE(j.has_value()) << text;
  const auto spec = JobSpec::from_json(*j, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return spec.value_or(JobSpec{});
}

std::string spec_error(const std::string& text) {
  std::string error;
  const auto j = Json::parse(text);
  EXPECT_TRUE(j.has_value()) << text;
  EXPECT_FALSE(JobSpec::from_json(*j, &error).has_value()) << text;
  return error;
}

TEST(JobSpec, DefaultsMatchTheBatchCli) {
  const JobSpec spec = parse_spec("{}");
  EXPECT_EQ(spec.case_name, "cube");
  EXPECT_EQ(spec.n, 24);
  EXPECT_EQ(spec.steps, 50);
  EXPECT_DOUBLE_EQ(spec.cfl, 2.0);
  EXPECT_EQ(spec.mode, "risc");
  EXPECT_EQ(spec.priority, 0);
  EXPECT_EQ(spec.threads, 0);
  EXPECT_EQ(spec.ckpt_every, 10);
}

TEST(JobSpec, RoundTripsThroughJson) {
  JobSpec spec;
  spec.name = "night-run";
  spec.case_name = "vortex";
  spec.n = 32;
  spec.steps = 123;
  spec.cfl = 1.25;
  spec.mode = "vector";
  spec.wall = true;
  spec.pulse = 0.05;
  spec.priority = 7;
  spec.threads = 3;
  spec.ckpt_every = 4;
  std::string error;
  const auto back = JobSpec::from_json(spec.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json().dump(), spec.to_json().dump());
}

TEST(JobSpec, AcceptsEveryRegisteredEngineName) {
  for (const char* name : {"vector", "risc", "simd"}) {
    const JobSpec spec =
        parse_spec(std::string(R"({"mode":")") + name + R"("})");
    EXPECT_EQ(spec.mode, name);
  }
}

TEST(JobSpec, RejectsOutOfRangeAndGarbage) {
  EXPECT_NE(spec_error(R"({"case":"sphere"})").find("case"),
            std::string::npos);
  EXPECT_FALSE(spec_error(R"({"n":2})").empty());
  EXPECT_FALSE(spec_error(R"({"steps":0})").empty());
  EXPECT_FALSE(spec_error(R"({"cfl":-1})").empty());
  EXPECT_FALSE(spec_error(R"({"mode":"cisc"})").empty());
  // The rejection names the registered engines, so the message tracks the
  // registry instead of hard-coding a list.
  EXPECT_NE(spec_error(R"({"mode":"cisc"})").find("vector|risc|simd"),
            std::string::npos);
  EXPECT_FALSE(spec_error(R"({"priority":11})").empty());
  EXPECT_FALSE(spec_error(R"({"priority":-1})").empty());
  EXPECT_FALSE(spec_error(R"({"threads":-2})").empty());
  EXPECT_FALSE(spec_error(R"({"ckpt_every":-1})").empty());
}

TEST(JobSpec, FingerprintSeparatesDifferentPhysics) {
  JobSpec a, b;
  b.pulse = 0.05;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  JobSpec c = a;
  c.priority = 9;  // scheduling detail, not physics
  c.threads = 4;   // lane count does not change the trajectory contract…
  EXPECT_EQ(a.fingerprint().find("case=cube"), 0u);
}

TEST(JobState, NamesRoundTrip) {
  using f3d::serve::job_state_from_name;
  using f3d::serve::job_state_name;
  for (const JobState s :
       {JobState::kQueued, JobState::kRunning, JobState::kPreempted,
        JobState::kDone, JobState::kFailed, JobState::kCancelled}) {
    const auto back = job_state_from_name(job_state_name(s));
    ASSERT_TRUE(back.has_value()) << job_state_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(job_state_from_name("zombie").has_value());
}

TEST(JobState, TerminalAndRunnablePartitionTheLifecycle) {
  using f3d::serve::is_runnable;
  using f3d::serve::is_terminal;
  EXPECT_TRUE(is_runnable(JobState::kQueued));
  EXPECT_TRUE(is_runnable(JobState::kPreempted));
  EXPECT_FALSE(is_runnable(JobState::kDone));
  EXPECT_TRUE(is_terminal(JobState::kDone));
  EXPECT_TRUE(is_terminal(JobState::kFailed));
  EXPECT_TRUE(is_terminal(JobState::kCancelled));
  EXPECT_FALSE(is_terminal(JobState::kRunning));
}

TEST(JobRecord, PersistsAndReloadsAtomically) {
  const std::string state = ::testing::TempDir() + "llp_job_record";
  fs::remove_all(state);
  JobRecord rec;
  rec.id = 17;
  rec.spec.name = "persist-me";
  rec.spec.steps = 77;
  rec.state = JobState::kPreempted;
  rec.steps_done = 31;
  rec.residual = 2.2780666679499829e-14;
  f3d::serve::write_job_record(state, rec);

  std::string error;
  const auto back =
      f3d::serve::read_job_record(f3d::serve::job_record_path(state, 17),
                                  &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->id, 17u);
  EXPECT_EQ(back->spec.name, "persist-me");
  EXPECT_EQ(back->state, JobState::kPreempted);
  EXPECT_EQ(back->steps_done, 31);
  EXPECT_EQ(back->residual, 2.2780666679499829e-14);
  // No stray temp files survive the atomic write.
  for (const auto& entry :
       fs::directory_iterator(f3d::serve::job_dir(state, 17))) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << entry.path();
  }
  fs::remove_all(state);
}

TEST(JobRecord, RejectsGarbageAndOversizedFiles) {
  const std::string dir = ::testing::TempDir() + "llp_job_garbage";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string error;
  EXPECT_FALSE(
      f3d::serve::read_job_record(dir + "/missing.json", &error).has_value());

  {
    std::ofstream out(dir + "/bad.json");
    out << "{\"id\": not json";
  }
  error.clear();
  EXPECT_FALSE(
      f3d::serve::read_job_record(dir + "/bad.json", &error).has_value());
  EXPECT_FALSE(error.empty());

  {
    std::ofstream out(dir + "/huge.json");
    out << std::string(1 << 20, ' ');  // over the record size guard
  }
  error.clear();
  EXPECT_FALSE(
      f3d::serve::read_job_record(dir + "/huge.json", &error).has_value());
  fs::remove_all(dir);
}

TEST(DoneEventLine, IsByteStable) {
  // f3d_run --serve-compat prints exactly this line; a drift here breaks
  // the cross-frontend parity check.
  EXPECT_EQ(f3d::serve::done_event_line(3, JobState::kDone, 5000,
                                        2.2780666679499829e-14),
            R"({"event":"done","final_residual":2.2780666679499829e-14,)"
            R"("job":3,"state":"done","steps":5000})");
  EXPECT_EQ(f3d::serve::done_event_line(1, JobState::kCancelled, 0, 0.0),
            R"({"event":"done","final_residual":0,"job":1,)"
            R"("state":"cancelled","steps":0})");
}

}  // namespace
