// The scheduler's three pure decisions: dispatch order, fair-share lane
// splits, and preemption victims.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "serve/scheduler.hpp"

namespace {

using f3d::serve::fair_shares;
using f3d::serve::pick_next;
using f3d::serve::pick_victim;
using f3d::serve::SchedJob;

SchedJob job(std::uint64_t id, std::uint64_t seq, int priority,
             int pinned = 0) {
  return SchedJob{id, seq, priority, pinned};
}

TEST(Scheduler, PickNextEmptyQueueIsNullopt) {
  EXPECT_FALSE(pick_next({}).has_value());
}

TEST(Scheduler, PickNextPrefersHigherPriority) {
  const std::vector<SchedJob> q = {job(1, 1, 0), job(2, 2, 5), job(3, 3, 3)};
  ASSERT_TRUE(pick_next(q).has_value());
  EXPECT_EQ(*pick_next(q), 1u);  // id 2, priority 5
}

TEST(Scheduler, PickNextIsFifoWithinAPriorityClass) {
  const std::vector<SchedJob> q = {job(7, 30, 2), job(8, 10, 2),
                                   job(9, 20, 2)};
  EXPECT_EQ(*pick_next(q), 1u);  // id 8 arrived first (seq 10)
}

TEST(Scheduler, PreemptedJobKeepsSeniorityOverLaterArrivals) {
  // A preempted job re-enters the queue with its ORIGINAL seq: it must
  // dispatch ahead of an equal-priority job submitted after it.
  const std::vector<SchedJob> q = {job(5, 50, 1),   // later arrival
                                   job(2, 20, 1)};  // preempted, original seq
  EXPECT_EQ(*pick_next(q), 1u);
}

TEST(Scheduler, FairSharesEmptyInputIsEmpty) {
  EXPECT_TRUE(fair_shares(8, {}).empty());
}

TEST(Scheduler, FairSharesSplitsAutoJobsEqually) {
  EXPECT_EQ(fair_shares(8, {0, 0}), (std::vector<int>{4, 4}));
  EXPECT_EQ(fair_shares(6, {0, 0, 0}), (std::vector<int>{2, 2, 2}));
}

TEST(Scheduler, FairSharesBiasesRemainderToEarlierJobs) {
  EXPECT_EQ(fair_shares(7, {0, 0}), (std::vector<int>{4, 3}));
  EXPECT_EQ(fair_shares(8, {0, 0, 0}), (std::vector<int>{3, 3, 2}));
}

TEST(Scheduler, FairSharesHonorsPinsExactly) {
  // Pins are promises (reproducible lane counts); the rest is divided.
  EXPECT_EQ(fair_shares(8, {2, 0, 0}), (std::vector<int>{2, 3, 3}));
  EXPECT_EQ(fair_shares(8, {8, 0}), (std::vector<int>{8, 1}));
}

TEST(Scheduler, FairSharesNeverDropsBelowOneLane) {
  // More jobs than lanes: everyone still gets a lane (oversubscription
  // beats starvation on a shared host).
  EXPECT_EQ(fair_shares(2, {0, 0, 0, 0}), (std::vector<int>{1, 1, 1, 1}));
  // Pins exceeding the pool do not push auto jobs to zero.
  EXPECT_EQ(fair_shares(4, {4, 4, 0}), (std::vector<int>{4, 4, 1}));
}

TEST(Scheduler, FairSharesAutoJobsConsumeWholePool) {
  for (int total = 1; total <= 16; ++total) {
    for (int jobs = 1; jobs <= 5; ++jobs) {
      const auto shares = fair_shares(total, std::vector<int>(
                                                 static_cast<std::size_t>(jobs),
                                                 0));
      const int sum = std::accumulate(shares.begin(), shares.end(), 0);
      EXPECT_EQ(sum, std::max(total, jobs))
          << "total=" << total << " jobs=" << jobs;
      for (const int s : shares) EXPECT_GE(s, 1);
    }
  }
}

TEST(Scheduler, PickVictimNeedsAStrictlyWeakerJob) {
  const std::vector<SchedJob> running = {job(1, 1, 3), job(2, 2, 5)};
  EXPECT_FALSE(pick_victim(running, 3).has_value());  // equal is not enough
  EXPECT_FALSE(pick_victim(running, 2).has_value());
  ASSERT_TRUE(pick_victim(running, 4).has_value());
  EXPECT_EQ(*pick_victim(running, 4), 0u);  // only priority 3 is below 4
}

TEST(Scheduler, PickVictimTakesTheWeakestJob) {
  const std::vector<SchedJob> running = {job(1, 1, 4), job(2, 2, 1),
                                         job(3, 3, 2)};
  EXPECT_EQ(*pick_victim(running, 9), 1u);  // priority 1 is weakest
}

TEST(Scheduler, PickVictimBreaksTiesTowardTheYoungest) {
  // Same priority: the job with the least seniority (highest seq) yields.
  const std::vector<SchedJob> running = {job(1, 10, 2), job(2, 30, 2),
                                         job(3, 20, 2)};
  EXPECT_EQ(*pick_victim(running, 5), 1u);  // seq 30 arrived last
}

TEST(Scheduler, PickVictimEmptyRunningSetIsNullopt) {
  EXPECT_FALSE(pick_victim({}, 9).has_value());
}

}  // namespace
