#include "msg/message_passing.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/error.hpp"

namespace {

using llp::msg::Communicator;
using llp::msg::run;

TEST(MessagePassing, SingleRankRuns) {
  int seen_size = 0;
  run(1, [&](Communicator& comm) { seen_size = comm.size(); });
  EXPECT_EQ(seen_size, 1);
}

TEST(MessagePassing, RanksAreDistinct) {
  std::vector<std::atomic<int>> hits(4);
  run(4, [&](Communicator& comm) { hits[comm.rank()]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MessagePassing, PingPong) {
  run(2, [](Communicator& comm) {
    double buf[3];
    if (comm.rank() == 0) {
      const double data[3] = {1.0, 2.0, 3.0};
      comm.send(1, 7, data);
      comm.recv(1, 8, buf);
      EXPECT_DOUBLE_EQ(buf[0], 2.0);
      EXPECT_DOUBLE_EQ(buf[2], 6.0);
    } else {
      comm.recv(0, 7, buf);
      for (double& v : buf) v *= 2.0;
      comm.send(0, 8, buf);
    }
  });
}

TEST(MessagePassing, MessagesFromSameSourceArriveInOrder) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const double v = static_cast<double>(i);
        comm.send(1, 1, std::span<const double>(&v, 1));
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        double v = -1.0;
        comm.recv(0, 1, std::span<double>(&v, 1));
        EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
      }
    }
  });
}

TEST(MessagePassing, TagsSelectMessages) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const double a = 10.0, b = 20.0;
      comm.send(1, 100, std::span<const double>(&a, 1));
      comm.send(1, 200, std::span<const double>(&b, 1));
    } else {
      double v = 0.0;
      // Receive the SECOND message first by tag.
      comm.recv(0, 200, std::span<double>(&v, 1));
      EXPECT_DOUBLE_EQ(v, 20.0);
      comm.recv(0, 100, std::span<double>(&v, 1));
      EXPECT_DOUBLE_EQ(v, 10.0);
    }
  });
}

TEST(MessagePassing, RingHaloExchange) {
  const int ranks = 5;
  run(ranks, [ranks](Communicator& comm) {
    const int right = (comm.rank() + 1) % ranks;
    const int left = (comm.rank() + ranks - 1) % ranks;
    const double mine = static_cast<double>(comm.rank());
    double from_left = -1.0;
    comm.sendrecv(right, 0, std::span<const double>(&mine, 1), left, 0,
                  std::span<double>(&from_left, 1));
    EXPECT_DOUBLE_EQ(from_left, static_cast<double>(left));
  });
}

TEST(MessagePassing, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run(4, [&](Communicator& comm) {
    before++;
    comm.barrier();
    if (before.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(MessagePassing, AllreduceSum) {
  run(6, [](Communicator& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(sum, 15.0);
  });
}

TEST(MessagePassing, ConsecutiveAllreducesDoNotInterfere) {
  run(3, [](Communicator& comm) {
    const double a = comm.allreduce_sum(1.0);
    const double b = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(a, 3.0);
    EXPECT_DOUBLE_EQ(b, 3.0);
  });
}

TEST(MessagePassing, StatsCountTraffic) {
  const auto stats = run(2, [](Communicator& comm) {
    double buf[4] = {0, 0, 0, 0};
    if (comm.rank() == 0) {
      comm.send(1, 0, buf);
      comm.send(1, 0, buf);
    } else {
      comm.recv(0, 0, buf);
      comm.recv(0, 0, buf);
    }
    comm.barrier();
  });
  EXPECT_EQ(stats.total_messages, 2u);
  EXPECT_EQ(stats.total_bytes, 2u * 4u * sizeof(double));
  EXPECT_EQ(stats.barriers_per_rank, 1u);
}

TEST(MessagePassing, SizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     double small = 0.0;
                     const double big[2] = {1.0, 2.0};
                     if (comm.rank() == 0) {
                       comm.send(1, 0, big);  // then return: never blocks
                     } else {
                       // Expect 1 double, get 2: error on the receiver.
                       comm.recv(0, 0, std::span<double>(&small, 1));
                     }
                   }),
               llp::Error);
}

TEST(MessagePassing, BadRankThrows) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     const double v = 1.0;
                     comm.send(5, 0, std::span<const double>(&v, 1));
                   }),
               llp::Error);
  EXPECT_THROW(run(0, [](Communicator&) {}), llp::Error);
}

}  // namespace
namespace {

TEST(MessagePassing, StressManyMessagesManyRanks) {
  // Every rank sends 100 messages to every other rank; totals must match
  // and per-pair FIFO order must hold.
  const int ranks = 5;
  const auto stats = run(ranks, [ranks](Communicator& comm) {
    for (int dest = 0; dest < ranks; ++dest) {
      if (dest == comm.rank()) continue;
      for (int i = 0; i < 100; ++i) {
        const double v = comm.rank() * 1000.0 + i;
        comm.send(dest, 42, std::span<const double>(&v, 1));
      }
    }
    for (int src = 0; src < ranks; ++src) {
      if (src == comm.rank()) continue;
      for (int i = 0; i < 100; ++i) {
        double v = -1.0;
        comm.recv(src, 42, std::span<double>(&v, 1));
        EXPECT_DOUBLE_EQ(v, src * 1000.0 + i);
      }
    }
  });
  EXPECT_EQ(stats.total_messages, 5u * 4u * 100u);
}

TEST(MessagePassing, LargePayloadRoundTrip) {
  run(2, [](Communicator& comm) {
    std::vector<double> buf(100000);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<double>(i) * 0.25;
      }
      comm.send(1, 0, buf);
    } else {
      comm.recv(0, 0, buf);
      EXPECT_DOUBLE_EQ(buf[99999], 99999 * 0.25);
      EXPECT_DOUBLE_EQ(buf[12345], 12345 * 0.25);
    }
  });
}

}  // namespace
