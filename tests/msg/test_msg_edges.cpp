// Edge cases on the in-process message rails: the shapes the sharded
// backend leans on (empty messages, strict sizing, death propagation,
// per-link FIFO under contention).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "msg/message_passing.hpp"
#include "util/error.hpp"

namespace llp::msg {
namespace {

TEST(MsgEdges, ZeroLengthPayloadRoundTrips) {
  // An empty message is pure synchronization — it must still count as a
  // message, match by (src, tag), and satisfy a zero-size receive.
  WorldStats stats = run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::span<const double>{});
    } else {
      std::vector<double> buf;
      comm.recv(0, 7, buf);  // returns only once the empty payload lands
    }
  });
  EXPECT_EQ(stats.total_messages, 1u);
  EXPECT_EQ(stats.total_bytes, 0u);
}

TEST(MsgEdges, MismatchedReceiveBufferIsTyped) {
  try {
    run(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        const std::vector<double> three{1.0, 2.0, 3.0};
        comm.send(1, 1, three);
      } else {
        std::vector<double> two(2);
        comm.recv(0, 1, two);  // 3 doubles into a 2-double buffer
      }
    });
    FAIL() << "mismatched recv must throw";
  } catch (const llp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos);
  }
}

TEST(MsgEdges, RecvFromDeadRankWakesInsteadOfDeadlocking) {
  // Rank 0 dies before sending; rank 1 is blocked in recv on it. The
  // World must wake rank 1 with a typed error, and rank 0's original
  // exception must win the first-error race through run().
  try {
    run(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        throw llp::Error("rank0 exploded");
      }
      std::vector<double> buf(4);
      comm.recv(0, 3, buf);
      FAIL() << "recv from a dead rank returned";
    });
    FAIL() << "run must rethrow the dying rank's exception";
  } catch (const llp::Error& e) {
    EXPECT_EQ(std::string(e.what()), "rank0 exploded");
  }
}

TEST(MsgEdges, MessagesDeliveredBeforeDeathStayConsumable) {
  // A send that already landed in the mailbox is still receivable after
  // the sender dies — only an unmatched recv against the dead source
  // must fail.
  std::atomic<bool> got{false};
  try {
    run(2, [&](Communicator& comm) {
      if (comm.rank() == 0) {
        const std::vector<double> v{42.0};
        comm.send(1, 9, v);
        comm.barrier();  // make delivery happen-before the death
        throw llp::Error("rank0 late death");
      }
      comm.barrier();
      std::vector<double> buf(1);
      comm.recv(0, 9, buf);  // consumes the pre-death message
      EXPECT_EQ(buf[0], 42.0);
      got.store(true);
    });
  } catch (const llp::Error&) {
    // rank 0's death still aborts the world; the recv must have worked.
  }
  EXPECT_TRUE(got.load());
}

TEST(MsgEdges, SameLinkSendOrderSurvivesContention) {
  // FIFO per (src, tag) is what lets the halo protocol skip sequence
  // numbers. Hammer one link from a busy world and check the sequence.
  constexpr int kMessages = 200;
  run(4, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        const std::vector<double> v{static_cast<double>(i)};
        comm.send(3, 5, v);
        if (i % 3 == 0) {
          const std::vector<double> noise{-1.0};
          comm.send(1, 6, noise);  // interleave traffic on another link
        }
      }
    } else if (comm.rank() == 1) {
      std::vector<double> buf(1);
      for (int i = 0; i < kMessages; i += 3) comm.recv(0, 6, buf);
    } else if (comm.rank() == 3) {
      std::vector<double> buf(1);
      for (int i = 0; i < kMessages; ++i) {
        comm.recv(0, 5, buf);
        ASSERT_EQ(buf[0], static_cast<double>(i)) << "reordered at " << i;
      }
    }
  });
}

TEST(MsgEdges, DistinctTagsOnOneLinkMatchIndependently) {
  // recv(src, tag) must skip past queued messages with other tags, not
  // consume the head of the mailbox.
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> a{1.0}, b{2.0};
      comm.send(1, 10, a);
      comm.send(1, 20, b);
    } else {
      std::vector<double> buf(1);
      comm.recv(0, 20, buf);  // out of arrival order, by tag
      EXPECT_EQ(buf[0], 2.0);
      comm.recv(0, 10, buf);
      EXPECT_EQ(buf[0], 1.0);
    }
  });
}

}  // namespace
}  // namespace llp::msg
