// CRC32C frame rails: blocking read/write over real sockets plus the
// incremental FrameParser, including the corruption and torn-stream paths
// a SIGKILLed peer produces.
#include "msg/frame.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace llp::msg {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

Frame sample_frame() {
  Frame f;
  f.type = 4;
  f.a = 0x1122334455667788ull;
  f.b = 42;
  f.payload = {1, 2, 3, 4, 5, 6, 7};
  return f;
}

TEST(Frame, WriteThenReadRoundTrips) {
  SocketPair sp;
  const Frame in = sample_frame();
  write_frame(sp.a, in);
  Frame out;
  ASSERT_TRUE(read_frame(sp.b, &out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.b, in.b);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Frame, ZeroLengthPayloadIsAFullCitizen) {
  SocketPair sp;
  Frame in;
  in.type = 5;  // heartbeats are exactly this shape
  in.a = 9;
  write_frame(sp.a, in);
  Frame out;
  ASSERT_TRUE(read_frame(sp.b, &out));
  EXPECT_EQ(out.type, 5u);
  EXPECT_EQ(out.a, 9u);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Frame, CleanEofAtBoundaryReturnsFalse) {
  SocketPair sp;
  write_frame(sp.a, sample_frame());
  sp.close_a();  // peer finished and closed
  Frame out;
  ASSERT_TRUE(read_frame(sp.b, &out));
  EXPECT_FALSE(read_frame(sp.b, &out));  // orderly end of stream
}

TEST(Frame, MidFrameEofThrows) {
  SocketPair sp;
  const auto bytes = encode_frame(sample_frame());
  // A SIGKILLed peer leaves half a message behind.
  ASSERT_GT(::send(sp.a, bytes.data(), bytes.size() / 2, 0), 0);
  sp.close_a();
  Frame out;
  EXPECT_THROW(read_frame(sp.b, &out), llp::IoError);
}

TEST(Frame, BadMagicThrows) {
  SocketPair sp;
  auto bytes = encode_frame(sample_frame());
  bytes[0] ^= 0xff;
  ASSERT_EQ(::send(sp.a, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  Frame out;
  EXPECT_THROW(read_frame(sp.b, &out), llp::IoError);
}

TEST(Frame, FlippedPayloadBitFailsCrc) {
  SocketPair sp;
  auto bytes = encode_frame(sample_frame());
  bytes[kFrameHeaderBytes + 3] ^= 0x01;  // payload byte, not header
  ASSERT_EQ(::send(sp.a, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  Frame out;
  EXPECT_THROW(read_frame(sp.b, &out), llp::IoError);
}

TEST(FrameParser, ReassemblesOneByteAtATime) {
  const Frame in = sample_frame();
  const auto bytes = encode_frame(in);
  FrameParser parser;
  Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.feed(&bytes[i], 1);
    EXPECT_FALSE(parser.next(&out)) << "frame complete too early at " << i;
  }
  parser.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_TRUE(parser.next(&out));
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(parser.pending_bytes(), 0u);
  EXPECT_FALSE(parser.next(&out));
}

TEST(FrameParser, DrainsBackToBackFramesFromOneFeed) {
  Frame f1 = sample_frame();
  Frame f2;
  f2.type = 5;
  f2.a = 77;
  std::vector<std::uint8_t> bytes = encode_frame(f1);
  const auto second = encode_frame(f2);
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_TRUE(parser.next(&out));
  EXPECT_EQ(out.a, f1.a);
  ASSERT_TRUE(parser.next(&out));
  EXPECT_EQ(out.a, 77u);
  EXPECT_FALSE(parser.next(&out));
}

TEST(FrameParser, CorruptHeaderThrowsInsteadOfDesyncing) {
  auto bytes = encode_frame(sample_frame());
  bytes[6] ^= 0x40;  // inside the header, breaks hcrc
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_THROW(parser.next(&out), llp::IoError);
}

TEST(FrameParser, ImplausibleLengthIsCorruptionNotAllocation) {
  auto bytes = encode_frame(sample_frame());
  // Rewrite len (offset 24) to an absurd value; hcrc no longer matches,
  // and even a matching CRC above kMaxFramePayload must be rejected.
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(&bytes[24], &huge, sizeof(huge));
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_THROW(parser.next(&out), llp::IoError);
}

TEST(FrameParser, PendingBytesExposeTornTail) {
  const auto bytes = encode_frame(sample_frame());
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size() - 3);
  Frame out;
  EXPECT_FALSE(parser.next(&out));
  EXPECT_EQ(parser.pending_bytes(), bytes.size() - 3);  // died mid-frame
}

}  // namespace
}  // namespace llp::msg
