#include "tune/tuning_db.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tune/candidates.hpp"

namespace {

using llp::LoopConfig;
using llp::Schedule;
using llp::tune::TunedEntry;
using llp::tune::TuningDb;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(TuningDb, PutLookupErase) {
  TuningDb db;
  TunedEntry e;
  e.config = {Schedule::kDynamic, 4, 8};
  e.seconds = 1.5e-3;
  e.trials = 12;
  db.put("a|b6|hc8-p8", e);
  EXPECT_EQ(db.size(), 1u);

  TunedEntry out;
  ASSERT_TRUE(db.lookup("a|b6|hc8-p8", &out));
  EXPECT_EQ(out.config, e.config);
  EXPECT_DOUBLE_EQ(out.seconds, e.seconds);
  EXPECT_EQ(out.trials, e.trials);

  EXPECT_FALSE(db.lookup("missing", &out));
  EXPECT_TRUE(db.erase("a|b6|hc8-p8"));
  EXPECT_FALSE(db.erase("a|b6|hc8-p8"));
  EXPECT_EQ(db.size(), 0u);
}

TEST(TuningDb, TextRoundTripPreservesEveryEntry) {
  TuningDb db;
  const Schedule all[] = {Schedule::kStaticBlock, Schedule::kStaticChunked,
                          Schedule::kDynamic, Schedule::kGuided};
  int i = 0;
  for (Schedule s : all) {
    TunedEntry e;
    e.config = {s, 1 + i, 2 + i};
    e.seconds = 1e-4 * (i + 1);
    e.trials = static_cast<std::uint64_t>(10 + i);
    db.put("region" + std::to_string(i) + "|b5|hc8-p8", e);
    ++i;
  }

  TuningDb loaded;
  ASSERT_TRUE(loaded.parse_text(db.to_text()));
  ASSERT_EQ(loaded.size(), db.size());
  for (const auto& [key, e] : db.entries()) {
    TunedEntry out;
    ASSERT_TRUE(loaded.lookup(key, &out)) << key;
    EXPECT_EQ(out.config, e.config) << key;
    EXPECT_DOUBLE_EQ(out.seconds, e.seconds) << key;
    EXPECT_EQ(out.trials, e.trials) << key;
  }
}

TEST(TuningDb, FileRoundTrip) {
  const std::string path = temp_path("roundtrip.llp_tune");
  TuningDb db;
  TunedEntry e;
  e.config = {Schedule::kGuided, 1, 4};
  e.seconds = 2.25e-2;
  e.trials = 7;
  db.put("z0.sweep_j|b7|hc8-p8", e);
  db.save(path);

  TuningDb loaded;
  ASSERT_TRUE(loaded.load(path));
  TunedEntry out;
  ASSERT_TRUE(loaded.lookup("z0.sweep_j|b7|hc8-p8", &out));
  EXPECT_EQ(out.config, e.config);
  std::remove(path.c_str());
}

TEST(TuningDb, ParseSkipsCommentsAndBlankLines) {
  TuningDb db;
  ASSERT_TRUE(db.parse_text(
      "# header\n\n# another comment\nk|b1|f\tdynamic\t2\t4\t1e-3\t5\n\n"));
  EXPECT_EQ(db.size(), 1u);
}

TEST(TuningDb, ParseRejectsMalformedLines) {
  const char* bad[] = {
      "k\tdynamic\t2\t4\t1e-3\n",          // too few fields
      "k\tmystery\t2\t4\t1e-3\t5\n",       // unknown schedule
      "k\tdynamic\t0\t4\t1e-3\t5\n",       // chunk < 1
      "k\tdynamic\t2\t0\t1e-3\t5\n",       // threads < 1
      "k\tdynamic\t2\t4\tnope\t5\n",       // bad float
      "\tdynamic\t2\t4\t1e-3\t5\n",        // empty key
  };
  for (const char* text : bad) {
    TuningDb db;
    std::string error;
    EXPECT_FALSE(db.parse_text(text, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(TuningDb, EngineColumnRoundTrips) {
  TuningDb db;
  TunedEntry e;
  e.config = {Schedule::kStaticBlock, 1, 2};
  e.seconds = 3.5e-4;
  e.trials = 2;
  e.engine = "simd";
  db.put("engine.sel|b9|hc8-p8", e);

  TuningDb loaded;
  ASSERT_TRUE(loaded.parse_text(db.to_text()));
  TunedEntry out;
  ASSERT_TRUE(loaded.lookup("engine.sel|b9|hc8-p8", &out));
  EXPECT_EQ(out.engine, "simd");
  EXPECT_EQ(out.config, e.config);
  EXPECT_DOUBLE_EQ(out.seconds, e.seconds);
}

TEST(TuningDb, EnginelessEntriesStayByteStable) {
  // Entries without an engine serialize exactly as the pre-engine format:
  // six TAB-separated fields, no trailing column. Old readers keep working.
  TuningDb db;
  TunedEntry e;
  e.config = {Schedule::kDynamic, 2, 4};
  e.seconds = 1e-3;
  e.trials = 5;
  db.put("k|b1|f", e);
  const std::string text = db.to_text();
  EXPECT_NE(text.find("k|b1|f\tdynamic\t2\t4\t1.000000000e-03\t5\n"),
            std::string::npos)
      << text;
}

TEST(TuningDb, ParsesLegacySixFieldLines) {
  TuningDb db;
  ASSERT_TRUE(db.parse_text("k|b1|f\tdynamic\t2\t4\t1e-3\t5\n"));
  TunedEntry out;
  ASSERT_TRUE(db.lookup("k|b1|f", &out));
  EXPECT_TRUE(out.engine.empty());
}

TEST(TuningDb, RejectsEmptySeventhField) {
  TuningDb db;
  std::string error;
  EXPECT_FALSE(db.parse_text("k|b1|f\tdynamic\t2\t4\t1e-3\t5\t\n", &error));
  EXPECT_FALSE(error.empty());
}

TEST(TuningDb, LoadMissingFileFails) {
  TuningDb db;
  std::string error;
  EXPECT_FALSE(db.load(temp_path("does-not-exist.llp_tune"), &error));
  EXPECT_FALSE(error.empty());
}

TEST(TuningDb, ClearEmptiesAndSaveWritesEmptyFile) {
  const std::string path = temp_path("clear.llp_tune");
  TuningDb db;
  db.put("k|b1|f", {});
  db.clear();
  EXPECT_EQ(db.size(), 0u);
  db.save(path);
  TuningDb loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(TuningDb, KeySanitizationInMakeKey) {
  const std::string key =
      llp::tune::make_key("bad\tname|with\npipes", 96, "hc8-p8");
  EXPECT_EQ(key.find('\t'), std::string::npos);
  EXPECT_EQ(key.find('\n'), std::string::npos);
  // The sanitized name plus the two appended fields.
  EXPECT_EQ(key, "bad_name_with_pipes|b6|hc8-p8");
}

TEST(TuningDb, TripBucketsSeparateScalesNotNeighbors) {
  EXPECT_EQ(llp::tune::trip_bucket(96), llp::tune::trip_bucket(100));
  EXPECT_NE(llp::tune::trip_bucket(96), llp::tune::trip_bucket(4096));
  EXPECT_EQ(llp::tune::trip_bucket(0), 0);
  EXPECT_EQ(llp::tune::trip_bucket(1), 0);
}

TEST(TuningDb, ScheduleNamesRoundTrip) {
  const Schedule all[] = {Schedule::kStaticBlock, Schedule::kStaticChunked,
                          Schedule::kDynamic, Schedule::kGuided};
  for (Schedule s : all) {
    Schedule out;
    ASSERT_TRUE(llp::tune::parse_schedule(llp::tune::schedule_name(s), &out));
    EXPECT_EQ(out, s);
  }
  Schedule out;
  EXPECT_FALSE(llp::tune::parse_schedule("bogus", &out));
}

}  // namespace
