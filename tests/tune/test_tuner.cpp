// Tuner search-policy tests driven by a deterministic cost model instead of
// wall time: per-lane loads come from the runtime's own partition functions
// (static schedules) or an idealized least-loaded assignment of the chunk
// stream (dynamic/guided) — the same model bench/ablation_schedules uses —
// plus a per-lane fork-join tax so more threads is not free. choose()/
// report() are called directly, so convergence and the quality of the
// converged choice are exact assertions, independent of host core count.
#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "tune/candidates.hpp"

namespace {

using llp::LoopConfig;
using llp::Schedule;
using llp::tune::Policy;
using llp::tune::Tuner;
using llp::tune::TunerOptions;

constexpr std::int64_t kTrips = 96;
constexpr int kMaxThreads = 8;

// Triangular iteration weights — the skewed-cost workload from
// bench/ablation_schedules where the static-block default is at its worst.
std::vector<double> triangular_weights() {
  std::vector<double> w;
  for (std::int64_t i = 0; i < kTrips; ++i) {
    w.push_back(static_cast<double>(i + 1));
  }
  return w;
}

double weight_sum(const std::vector<double>& w, std::int64_t begin,
                  std::int64_t end) {
  double s = 0.0;
  for (std::int64_t i = begin; i < end; ++i) {
    s += w[static_cast<std::size_t>(i)];
  }
  return s;
}

struct ModeledRun {
  double seconds = 0.0;
  double imbalance = 1.0;
};

// Deterministic cost of one invocation under `c`: busiest lane's work (at a
// fixed seconds-per-weight-unit scale) plus a fork-join tax per lane.
ModeledRun model_run(const std::vector<double>& w, const LoopConfig& c) {
  constexpr double kSecondsPerUnit = 1e-4;
  constexpr double kSyncPerLane = 2e-6;
  const auto n = static_cast<std::int64_t>(w.size());
  const int nt = std::max(1, c.num_threads);
  std::vector<double> load(static_cast<std::size_t>(nt), 0.0);
  switch (c.schedule) {
    case Schedule::kStaticBlock:
      for (int t = 0; t < nt; ++t) {
        const auto r = llp::static_block(n, t, nt);
        load[static_cast<std::size_t>(t)] = weight_sum(w, r.begin, r.end);
      }
      break;
    case Schedule::kStaticChunked:
      for (int t = 0; t < nt; ++t) {
        for (const auto& r : llp::static_chunks(n, t, nt, c.chunk)) {
          load[static_cast<std::size_t>(t)] += weight_sum(w, r.begin, r.end);
        }
      }
      break;
    case Schedule::kDynamic:
    case Schedule::kGuided: {
      // Idealized least-loaded assignment of the chunk stream.
      std::int64_t i = 0;
      while (i < n) {
        std::int64_t take = c.schedule == Schedule::kDynamic
                                ? c.chunk
                                : llp::guided_chunk(n - i, nt, c.chunk);
        take = std::min(take, n - i);
        auto lane = std::min_element(load.begin(), load.end());
        *lane += weight_sum(w, i, i + take);
        i += take;
      }
      break;
    }
  }
  double busiest = 0.0, sum = 0.0;
  for (double v : load) {
    busiest = std::max(busiest, v);
    sum += v;
  }
  ModeledRun run;
  run.seconds = busiest * kSecondsPerUnit + kSyncPerLane * nt;
  run.imbalance = sum > 0.0 ? busiest / (sum / static_cast<double>(nt)) : 1.0;
  return run;
}

// Drive the tuner with modeled measurements until it converges (or the
// invocation cap is hit); returns the number of invocations spent.
int drive(Tuner& tuner, llp::RegionId region, const std::vector<double>& w,
          int max_invocations) {
  int inv = 0;
  while (!tuner.converged(region, kTrips) && inv < max_invocations) {
    const LoopConfig c = tuner.choose(region, kTrips);
    const ModeledRun run = model_run(w, c);
    tuner.report(region, kTrips, c, run.seconds, run.imbalance, true);
    ++inv;
  }
  return inv;
}

// Exhaustive best over the same candidate space the tuner searches.
double exhaustive_best_seconds(const std::vector<double>& w) {
  double best = std::numeric_limits<double>::infinity();
  for (const LoopConfig& c : llp::tune::candidate_configs(kTrips, kMaxThreads)) {
    best = std::min(best, model_run(w, c).seconds);
  }
  return best;
}

TunerOptions test_options(Policy policy) {
  TunerOptions o;
  o.policy = policy;
  o.max_threads = kMaxThreads;
  // The modeled measurements are exact, so Table 1 pruning would only
  // shrink the space the convergence bound is stated over.
  o.prune_with_table1 = false;
  return o;
}

TEST(Tuner, SuccessiveHalvingConvergesToNearExhaustiveBest) {
  const auto w = triangular_weights();
  Tuner tuner(test_options(Policy::kSuccessiveHalving));
  const auto region = llp::regions().define("tune.halving.triangular");

  (void)tuner.choose(region, kTrips);  // materializes the search state
  const auto candidates = tuner.active_candidates(region, kTrips);
  ASSERT_GT(candidates.size(), 1u);
  // Paper-facing bound from tuner.hpp: at most 2 * trials_per_round * |C|.
  const int bound = 2 * tuner.options().halving_trials *
                    static_cast<int>(candidates.size());

  const int used = drive(tuner, region, w, bound);
  ASSERT_TRUE(tuner.converged(region, kTrips))
      << "not converged after " << used << " invocations (bound " << bound
      << ")";

  const double chosen = model_run(w, tuner.best(region, kTrips)).seconds;
  EXPECT_LE(chosen, 1.10 * exhaustive_best_seconds(w))
      << "converged choice is more than 10% off the exhaustive best";
}

TEST(Tuner, EpsilonGreedyConvergesToNearExhaustiveBest) {
  const auto w = triangular_weights();
  Tuner tuner(test_options(Policy::kEpsilonGreedy));
  const auto region = llp::regions().define("tune.greedy.triangular");

  (void)tuner.choose(region, kTrips);  // materializes the search state
  const auto candidates = tuner.active_candidates(region, kTrips);
  ASSERT_GT(candidates.size(), 1u);
  // warmup_trials per arm, then a settle budget of 2 * |C| (the option's
  // documented default), plus one invocation to observe the commit.
  const int c = static_cast<int>(candidates.size());
  const int bound = tuner.options().warmup_trials * c + 2 * c + 1;

  const int used = drive(tuner, region, w, bound);
  ASSERT_TRUE(tuner.converged(region, kTrips))
      << "not converged after " << used << " invocations (bound " << bound
      << ")";

  const double chosen = model_run(w, tuner.best(region, kTrips)).seconds;
  EXPECT_LE(chosen, 1.10 * exhaustive_best_seconds(w))
      << "converged choice is more than 10% off the exhaustive best";
}

TEST(Tuner, HalvingCullsCandidatesMonotonically) {
  const auto w = triangular_weights();
  Tuner tuner(test_options(Policy::kSuccessiveHalving));
  const auto region = llp::regions().define("tune.halving.culls");

  (void)tuner.choose(region, kTrips);  // materializes the search state
  std::size_t active = tuner.active_candidates(region, kTrips).size();
  const int bound = 2 * tuner.options().halving_trials *
                    static_cast<int>(active);
  for (int inv = 0; inv < bound && !tuner.converged(region, kTrips); ++inv) {
    const LoopConfig c = tuner.choose(region, kTrips);
    const ModeledRun run = model_run(w, c);
    tuner.report(region, kTrips, c, run.seconds, run.imbalance, true);
    const std::size_t now = tuner.active_candidates(region, kTrips).size();
    EXPECT_LE(now, active);
    active = now;
  }
  EXPECT_EQ(active, 1u);
}

TEST(Tuner, DbRoundTripReproducesIdenticalDecisions) {
  const auto w = triangular_weights();
  const TunerOptions opts = test_options(Policy::kSuccessiveHalving);
  const auto region = llp::regions().define("tune.db.roundtrip");

  Tuner first(opts);
  drive(first, region, w, 1024);
  ASSERT_TRUE(first.converged(region, kTrips));
  const LoopConfig decided = first.best(region, kTrips);

  const std::string path =
      std::string(::testing::TempDir()) + "tuner-roundtrip.llp_tune";
  first.save_db(path);

  // A fresh tuner (new process, in effect) loads the DB and must reproduce
  // the decision verbatim, without spending a single trial. The loaded
  // entry is consulted when the region's search state first materializes,
  // i.e. on the first choose().
  Tuner second(opts);
  ASSERT_TRUE(second.load_db(path));
  EXPECT_EQ(second.choose(region, kTrips), decided);
  EXPECT_TRUE(second.converged(region, kTrips));
  EXPECT_EQ(second.best(region, kTrips), decided);
  EXPECT_EQ(second.trials(region, kTrips), 0u);
  std::remove(path.c_str());
}

TEST(Tuner, ReportWithUnknownConfigIsIgnored) {
  Tuner tuner(test_options(Policy::kEpsilonGreedy));
  const auto region = llp::regions().define("tune.unknown.config");
  (void)tuner.choose(region, kTrips);
  const LoopConfig alien{Schedule::kDynamic, 999, 3};
  tuner.report(region, kTrips, alien, 1.0, 1.0, true);
  EXPECT_EQ(tuner.trials(region, kTrips), 0u);
}

TEST(Tuner, InvalidSamplesAreDiscarded) {
  Tuner tuner(test_options(Policy::kEpsilonGreedy));
  const auto region = llp::regions().define("tune.invalid.samples");
  const LoopConfig c = tuner.choose(region, kTrips);
  // A faulted/cancelled invocation reports sample_valid = false: the timing
  // must not enter the search (trials unchanged) but is counted for
  // diagnostics.
  tuner.report(region, kTrips, c, 1e-9, 1.0, false);
  EXPECT_EQ(tuner.trials(region, kTrips), 0u);
  EXPECT_EQ(tuner.invalid_samples(), 1u);
  // A valid sample afterwards is accepted as usual.
  tuner.report(region, kTrips, c, 1.0, 1.0, true);
  EXPECT_EQ(tuner.trials(region, kTrips), 1u);
  EXPECT_EQ(tuner.invalid_samples(), 1u);
}

TEST(Tuner, TripBucketsTuneIndependently) {
  const auto w = triangular_weights();
  Tuner tuner(test_options(Policy::kSuccessiveHalving));
  const auto region = llp::regions().define("tune.buckets");
  drive(tuner, region, w, 1024);
  ASSERT_TRUE(tuner.converged(region, kTrips));
  // A different scale is a different search — untouched so far.
  EXPECT_FALSE(tuner.converged(region, kTrips * 64));
  EXPECT_EQ(tuner.trials(region, kTrips * 64), 0u);
}

TEST(Tuner, Table1PruningDropsSyncDominatedThreadCounts) {
  // Host-scale pruning constants (what the Tuner defaults to).
  llp::model::MachineConfig host;
  host.name = "host-tuning";
  host.clock_hz = 1e9;
  host.sync_base_ns = 2000.0;
  host.sync_ns_per_proc = 200.0;

  // A microscopic loop: at these sync costs every multi-thread candidate
  // is sync-dominated, so pruning falls back to serial.
  const auto candidates = llp::tune::candidate_configs(kTrips, kMaxThreads);
  const auto pruned = llp::tune::prune_by_sync_cost(
      candidates, /*serial_seconds=*/1e-7, host, /*overhead_target=*/0.2);
  ASSERT_FALSE(pruned.empty());
  for (const LoopConfig& c : pruned) {
    EXPECT_LE(c.num_threads, 1) << "sync-dominated candidate survived";
  }

  // A long loop keeps the full ladder.
  const auto kept = llp::tune::prune_by_sync_cost(
      candidates, /*serial_seconds=*/1.0, host, /*overhead_target=*/0.2);
  EXPECT_EQ(kept.size(), candidates.size());
}

TEST(Tuner, CandidateSetShapeAndDefaults) {
  const auto candidates = llp::tune::candidate_configs(kTrips, kMaxThreads);
  ASSERT_FALSE(candidates.empty());
  // The first entry is the hand-picked C$doacross default: static block at
  // the full lane count.
  EXPECT_EQ(candidates[0].schedule, Schedule::kStaticBlock);
  EXPECT_EQ(candidates[0].num_threads, kMaxThreads);
  for (const LoopConfig& c : candidates) {
    EXPECT_GE(c.chunk, 1);
    EXPECT_GE(c.num_threads, 1);
    EXPECT_LE(c.num_threads, kMaxThreads);
  }
  // Skew-friendly schedules are represented.
  const auto has = [&](Schedule s) {
    return std::any_of(candidates.begin(), candidates.end(),
                       [&](const LoopConfig& c) { return c.schedule == s; });
  };
  EXPECT_TRUE(has(Schedule::kDynamic));
  EXPECT_TRUE(has(Schedule::kGuided));

  // A serial cap degenerates to the single serial config.
  const auto serial = llp::tune::candidate_configs(kTrips, 1);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial[0].num_threads, 1);
}

TEST(Tuner, DeterministicAcrossRuns) {
  // Same seed, same measurements -> identical decision and trial count.
  const auto w = triangular_weights();
  const TunerOptions opts = test_options(Policy::kEpsilonGreedy);
  const auto region = llp::regions().define("tune.deterministic");

  Tuner a(opts);
  const int inv_a = drive(a, region, w, 1024);
  Tuner b(opts);
  const int inv_b = drive(b, region, w, 1024);
  EXPECT_EQ(inv_a, inv_b);
  EXPECT_EQ(a.best(region, kTrips), b.best(region, kTrips));
}

}  // namespace
