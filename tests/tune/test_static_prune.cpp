// Static-legality pruning: a region whose declared affine signature is
// not DOALL must never be sampled multi-threaded — its search collapses
// to the single serial configuration before the first trial, with no
// TuningDb traffic. Undeclared / DOALL regions keep the full search, and
// respect_static_legality=false restores the pre-PR behavior.
#include <gtest/gtest.h>

#include <string>

#include "analyze/static/registry.hpp"
#include "core/llp.hpp"
#include "tune/tuner.hpp"

namespace {

using llp::LoopConfig;
using llp::Schedule;
using llp::tune::Tuner;
using llp::tune::TunerOptions;

constexpr std::int64_t kTrips = 256;

TunerOptions options(bool respect_static = true) {
  TunerOptions opts;
  opts.max_threads = 4;  // host-independent candidate set
  opts.respect_static_legality = respect_static;
  return opts;
}

llp::analyze::AffineSignature carried_signature() {
  llp::analyze::AffineSignature sig;
  sig.accesses.push_back(llp::analyze::AffineAccess::write("a", 1, 0));
  sig.accesses.push_back(llp::analyze::AffineAccess::read("a", 1, -1));
  return sig;
}

llp::analyze::AffineSignature doall_signature() {
  llp::analyze::AffineSignature sig;
  sig.accesses.push_back(llp::analyze::AffineAccess::write("a", 1, 0));
  return sig;
}

class StaticPruneTest : public ::testing::Test {
protected:
  void SetUp() override { llp::analyze::clear_declarations(); }
  void TearDown() override { llp::analyze::clear_declarations(); }
};

TEST_F(StaticPruneTest, CarriedRegionCollapsesToTheSerialConfig) {
  const auto region = llp::regions().define("sp.carried");
  llp::analyze::declare_access("sp.carried", carried_signature());
  Tuner tuner(options());

  const LoopConfig chosen = tuner.choose(region, kTrips);
  EXPECT_EQ(chosen.schedule, Schedule::kStaticBlock);
  EXPECT_EQ(chosen.num_threads, 1);
  // No search: converged before the first sample, exactly one candidate.
  EXPECT_TRUE(tuner.converged(region, kTrips));
  EXPECT_EQ(tuner.active_candidates(region, kTrips).size(), 1u);
  EXPECT_EQ(tuner.best(region, kTrips), chosen);
  // Stays serial on every subsequent choice — no exploration ever.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tuner.choose(region, kTrips).num_threads, 1);
  }
}

TEST_F(StaticPruneTest, RespectFlagOffRestoresTheFullSearch) {
  const auto region = llp::regions().define("sp.carried_off");
  llp::analyze::declare_access("sp.carried_off", carried_signature());
  Tuner tuner(options(/*respect_static=*/false));

  (void)tuner.choose(region, kTrips);
  EXPECT_FALSE(tuner.converged(region, kTrips));
  EXPECT_GT(tuner.active_candidates(region, kTrips).size(), 1u);
}

TEST_F(StaticPruneTest, DoallDeclarationKeepsTheFullSearch) {
  const auto region = llp::regions().define("sp.doall");
  llp::analyze::declare_access("sp.doall", doall_signature());
  Tuner tuner(options());

  (void)tuner.choose(region, kTrips);
  EXPECT_FALSE(tuner.converged(region, kTrips));
  EXPECT_GT(tuner.active_candidates(region, kTrips).size(), 1u);
}

TEST_F(StaticPruneTest, UndeclaredRegionIsUnaffected) {
  const auto region = llp::regions().define("sp.undeclared");
  Tuner tuner(options());

  (void)tuner.choose(region, kTrips);
  EXPECT_FALSE(tuner.converged(region, kTrips));
  EXPECT_GT(tuner.active_candidates(region, kTrips).size(), 1u);
}

TEST_F(StaticPruneTest, SerialVerdictNeverReachesTheDb) {
  const auto region = llp::regions().define("sp.no_db");
  llp::analyze::declare_access("sp.no_db", carried_signature());
  Tuner tuner(options());
  (void)tuner.choose(region, kTrips);
  // Legality is a property of the code, not a measurement: nothing is
  // committed to (or read from) the tuning DB for a pruned region.
  EXPECT_EQ(tuner.db().size(), 0u);
}

}  // namespace
