// End-to-end ForOptions::kAuto path: a Tuner installed in the Runtime steers
// real parallel_for invocations (serial and transient-pool lane counts
// included), every iteration still runs exactly once per invocation, every
// invocation is reported back, and the search converges. Thread counts are
// pinned explicitly — this exercises correctness and the measure -> decide
// -> configure plumbing, not wall-clock speedup.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/llp.hpp"
#include "tune/candidates.hpp"
#include "tune/tuner.hpp"

namespace {

using llp::LoopConfig;
using llp::tune::Policy;
using llp::tune::Tuner;
using llp::tune::TunerOptions;

constexpr std::int64_t kTrips = 64;
constexpr int kLanes = 4;

// RAII: pin the runtime lane count and install a tuner; restore on exit so
// other tests in the binary see the default runtime.
class TunerSession {
public:
  explicit TunerSession(Tuner* tuner) : prev_threads_(llp::num_threads()) {
    llp::set_num_threads(kLanes);
    auto& rt = llp::Runtime::instance();
    rt.set_tuner(tuner);
    rt.set_auto_tune_enabled(true);
  }
  ~TunerSession() {
    auto& rt = llp::Runtime::instance();
    rt.set_tuner(nullptr);
    rt.set_auto_tune_enabled(false);
    llp::set_num_threads(prev_threads_);
  }

private:
  int prev_threads_;
};

TunerOptions session_options() {
  TunerOptions o;
  o.policy = Policy::kSuccessiveHalving;
  o.max_threads = kLanes;
  // Keep multi-thread candidates in play even though the loop body is
  // microseconds: the point is to traverse every lane-count path.
  o.prune_with_table1 = false;
  return o;
}

TEST(AutoLoop, EveryIterationRunsOncePerInvocationUntilConvergence) {
  Tuner tuner(session_options());
  TunerSession session(&tuner);
  const auto region = llp::regions().define("auto_loop.coverage");

  const llp::ForOptions opts = llp::ForOptions::auto_tuned(region);

  (void)tuner.choose(region, kTrips);  // materializes the search state
  const int bound =
      2 * tuner.options().halving_trials *
      static_cast<int>(tuner.active_candidates(region, kTrips).size());

  std::vector<int> counts(static_cast<std::size_t>(kTrips), 0);
  int invocations = 0;
  while (!tuner.converged(region, kTrips) && invocations < bound) {
    llp::parallel_for(
        0, kTrips,
        [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; }, opts);
    ++invocations;
  }

  ASSERT_TRUE(tuner.converged(region, kTrips))
      << "no convergence after " << invocations << " invocations";
  for (std::int64_t i = 0; i < kTrips; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], invocations) << "i=" << i;
  }
  // Every invocation came back through report().
  EXPECT_EQ(tuner.trials(region, kTrips),
            static_cast<std::uint64_t>(invocations));

  // The converged choice keeps steering later invocations; iterations still
  // run exactly once.
  llp::parallel_for(
      0, kTrips,
      [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; }, opts);
  for (std::int64_t i = 0; i < kTrips; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], invocations + 1);
  }
}

TEST(AutoLoop, ReducePartialSlotsCoverTunedLaneCounts) {
  Tuner tuner(session_options());
  TunerSession session(&tuner);
  const auto region = llp::regions().define("auto_loop.reduce");

  const llp::ForOptions opts = llp::ForOptions::auto_tuned(region);

  const std::int64_t expected = kTrips * (kTrips - 1) / 2;
  (void)tuner.choose(region, kTrips);  // materializes the search state
  const int bound =
      2 * tuner.options().halving_trials *
      static_cast<int>(tuner.active_candidates(region, kTrips).size());
  for (int inv = 0; inv < bound; ++inv) {
    const auto sum = llp::parallel_reduce<std::int64_t>(
        0, kTrips, 0, [](std::int64_t a, std::int64_t b) { return a + b; },
        [](std::int64_t i, std::int64_t& acc) { acc += i; }, opts);
    ASSERT_EQ(sum, expected) << "invocation " << inv;
  }
}

TEST(AutoLoop, DisabledRuntimeFlagBypassesTheTuner) {
  Tuner tuner(session_options());
  TunerSession session(&tuner);
  llp::Runtime::instance().set_auto_tune_enabled(false);
  const auto region = llp::regions().define("auto_loop.disabled");

  const llp::ForOptions opts = llp::ForOptions::auto_tuned(region);
  std::vector<int> counts(static_cast<std::size_t>(kTrips), 0);
  llp::parallel_for(
      0, kTrips,
      [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; }, opts);

  for (std::int64_t i = 0; i < kTrips; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1);
  }
  EXPECT_EQ(tuner.trials(region, kTrips), 0u);
}

TEST(AutoLoop, RegionWithParallelDisabledRunsSerialAndSkipsTuning) {
  Tuner tuner(session_options());
  TunerSession session(&tuner);
  const auto region = llp::regions().define("auto_loop.serialized");
  llp::regions().set_parallel_enabled(region, false);

  const llp::ForOptions opts = llp::ForOptions::auto_tuned(region);
  std::vector<int> counts(static_cast<std::size_t>(kTrips), 0);
  llp::parallel_for(
      0, kTrips,
      [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; }, opts);

  for (std::int64_t i = 0; i < kTrips; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1);
  }
  EXPECT_EQ(tuner.trials(region, kTrips), 0u);
  llp::regions().set_parallel_enabled(region, true);
}

TEST(AutoLoop, TransientPoolsRecycleAcrossMixedLaneCounts) {
  // Satellite regression: loop-specific thread counts check pools out of
  // the runtime cache and back in. Hammer several sizes interleaved; every
  // iteration must run exactly once regardless of which pool served it.
  const int prev = llp::num_threads();
  llp::set_num_threads(2);
  std::vector<int> counts(128, 0);
  for (int rep = 0; rep < 8; ++rep) {
    for (int nt : {3, 5, 2, 7}) {
      const llp::ForOptions opts = llp::ForOptions{}.with_threads(nt);
      llp::parallel_for(
          0, static_cast<std::int64_t>(counts.size()),
          [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; },
          opts);
    }
  }
  llp::set_num_threads(prev);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 8 * 4) << "i=" << i;
  }
}

}  // namespace
