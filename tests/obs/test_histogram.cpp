#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace {

using llp::obs::LatencyHistogram;

TEST(LatencyHistogram, EmptyReturnsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below 2^kSubBits get one bucket each — no quantization.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(v)),
              v);
  }
}

TEST(LatencyHistogram, BucketValueStaysWithinRelativeError) {
  // 4 sub-buckets per octave bound the representative value's relative
  // error: bucket width is lo/4, so |value - x| <= lo/8 + rounding.
  for (std::uint64_t x : {5ull, 100ull, 1000ull, 123456ull, 987654321ull,
                          (1ull << 40) + 12345ull}) {
    const std::uint64_t v =
        LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(x));
    const double rel =
        std::abs(static_cast<double>(v) - static_cast<double>(x)) /
        static_cast<double>(x);
    EXPECT_LT(rel, 0.20) << "x=" << x << " v=" << v;
  }
}

TEST(LatencyHistogram, TracksCountMinMaxMean) {
  LatencyHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogram, QuantilesOrderCorrectly) {
  LatencyHistogram h;
  // 100 samples spread over two decades.
  for (std::uint64_t i = 1; i <= 100; ++i) h.add(i * 1000);
  const std::uint64_t p50 = h.quantile(0.50);
  const std::uint64_t p95 = h.quantile(0.95);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of 1k..100k should land near 50k, within bucket error.
  EXPECT_GT(p50, 35000u);
  EXPECT_LT(p50, 70000u);
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, MergeEqualsCombinedStream) {
  LatencyHistogram a, b, both;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    a.add(i * 10);
    both.add(i * 10);
  }
  for (std::uint64_t i = 1; i <= 50; ++i) {
    b.add(i * 1000);
    both.add(i * 1000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_EQ(a.quantile(0.5), both.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), both.quantile(0.99));
}

}  // namespace
