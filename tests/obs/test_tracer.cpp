#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/llp.hpp"
#include "core/runtime.hpp"

namespace {

// Registers the tracer for the test's lifetime and always unregisters, so
// a failing assertion cannot leak an observer into later tests.
class ScopedTracer {
public:
  explicit ScopedTracer(llp::obs::TracerConfig config = {})
      : tracer_(config) {
    llp::Runtime::instance().add_observer(&tracer_);
  }
  ~ScopedTracer() { llp::Runtime::instance().remove_observer(&tracer_); }
  llp::obs::Tracer& operator*() { return tracer_; }
  llp::obs::Tracer* operator->() { return &tracer_; }

private:
  llp::obs::Tracer tracer_;
};

llp::RegionId test_region(const char* name) {
  auto& reg = llp::regions();
  const llp::RegionId existing = reg.find(name);
  return existing == llp::kNoRegion ? reg.define(name) : existing;
}

int count_kind(const std::vector<llp::Event>& events, llp::EventKind kind) {
  int n = 0;
  for (const llp::Event& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(Tracer, RecordsBalancedRegionAndLaneEvents) {
  ScopedTracer tracer;
  const llp::RegionId region = test_region("obs.tracer.balanced");

  std::atomic<std::int64_t> sum{0};
  llp::parallel_for(
      0, 64, [&](std::int64_t i) { sum += i; },
      llp::ForOptions::in_region(region).with_threads(2));
  EXPECT_EQ(sum.load(), 64 * 63 / 2);

  const std::vector<llp::Event> events = tracer->drain();
  EXPECT_EQ(count_kind(events, llp::EventKind::kRegionEnter), 1);
  EXPECT_EQ(count_kind(events, llp::EventKind::kRegionExit), 1);
  EXPECT_EQ(count_kind(events, llp::EventKind::kLaneBegin),
            count_kind(events, llp::EventKind::kLaneEnd));
  EXPECT_GE(count_kind(events, llp::EventKind::kLaneBegin), 1);
  for (const llp::Event& e : events) {
    EXPECT_EQ(e.region, region);
    EXPECT_GT(e.t_ns, 0u);
    EXPECT_GE(e.tid, 0);  // the drain stamps the ring slot
  }
}

TEST(Tracer, ChunkEventsAppearForDynamicSchedules) {
  ScopedTracer tracer;
  const llp::RegionId region = test_region("obs.tracer.chunks");

  llp::parallel_for(
      0, 64, [](std::int64_t) {},
      llp::ForOptions::in_region(region)
          .with_schedule(llp::Schedule::kDynamic)
          .with_chunk(8)
          .with_threads(2));

  const std::vector<llp::Event> events = tracer->drain();
  const int acquires = count_kind(events, llp::EventKind::kChunkAcquire);
  EXPECT_EQ(acquires, 64 / 8);
  EXPECT_EQ(count_kind(events, llp::EventKind::kChunkFinish), acquires);

  const auto latencies = tracer->region_latencies();
  bool found = false;
  for (const auto& rl : latencies) {
    if (rl.region != region) continue;
    found = true;
    EXPECT_EQ(rl.chunks, static_cast<std::uint64_t>(acquires));
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, MetricsStayExactWhenRingsOverflow) {
  llp::obs::TracerConfig config;
  config.buffer_events = 8;  // force drops: each invocation emits > 8 events
  ScopedTracer tracer(config);
  const llp::RegionId region = test_region("obs.tracer.overflow");

  constexpr int kInvocations = 50;
  for (int inv = 0; inv < kInvocations; ++inv) {
    llp::parallel_for(
        0, 256, [](std::int64_t) {},
        llp::ForOptions::in_region(region)
            .with_schedule(llp::Schedule::kDynamic)
            .with_chunk(4)
            .with_threads(2));
  }
  EXPECT_GT(tracer->dropped(), 0u);

  // The timeline is truncated, but the synchronous metrics path never is:
  // the histogram still saw every invocation.
  bool found = false;
  for (const auto& rl : tracer->region_latencies()) {
    if (rl.region != region) continue;
    found = true;
    EXPECT_EQ(rl.invocations, static_cast<std::uint64_t>(kInvocations));
    EXPECT_GT(rl.p50_ns, 0u);
    EXPECT_LE(rl.p50_ns, rl.p99_ns);
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, ConcurrentExportWhileRunningLosesNoAcceptedEvent) {
  ScopedTracer tracer;
  const llp::RegionId region = test_region("obs.tracer.concurrent");

  std::atomic<bool> done{false};
  std::uint64_t drained_total = 0;
  // Exporter thread drains while the loop thread keeps emitting — the
  // drain path must be safe against live producers.
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      drained_total += tracer->drain().size();
    }
  });

  for (int inv = 0; inv < 200; ++inv) {
    llp::parallel_for(
        0, 32, [](std::int64_t) {},
        llp::ForOptions::in_region(region)
            .with_schedule(llp::Schedule::kDynamic)
            .with_chunk(4)
            .with_threads(2));
  }
  done.store(true, std::memory_order_release);
  exporter.join();
  drained_total += tracer->drain().size();

  // Every accepted event came out exactly once across the drains.
  EXPECT_EQ(drained_total, tracer->accepted());
  EXPECT_EQ(tracer->drain().size(), 0u);
}

TEST(Tracer, ToRegionStatsCarriesInvocationsAndTrips) {
  ScopedTracer tracer;
  const llp::RegionId region = test_region("obs.tracer.stats");

  llp::parallel_for(
      0, 48, [](std::int64_t) {},
      llp::ForOptions::in_region(region).with_threads(2));
  llp::parallel_for(
      0, 48, [](std::int64_t) {},
      llp::ForOptions::in_region(region).with_threads(2));

  bool found = false;
  for (const auto& rs : tracer->to_region_stats()) {
    if (rs.name != "obs.tracer.stats") continue;
    found = true;
    EXPECT_EQ(rs.invocations, 2u);
    EXPECT_EQ(rs.total_trips, 96u);
    EXPECT_GT(rs.seconds, 0.0);
  }
  EXPECT_TRUE(found);

  const std::string summary = tracer->summary();
  EXPECT_NE(summary.find("obs.tracer.stats"), std::string::npos);
}

TEST(Tracer, RemovedObserverSeesNoFurtherEvents) {
  llp::obs::Tracer tracer;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&tracer);
  rt.remove_observer(&tracer);

  llp::parallel_for(
      0, 16, [](std::int64_t) {},
      llp::ForOptions::in_region(test_region("obs.tracer.removed"))
          .with_threads(2));
  EXPECT_EQ(tracer.accepted(), 0u);
  EXPECT_EQ(tracer.drain().size(), 0u);
}

}  // namespace
