#include "obs/trace_check.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace {

llp::obs::TraceCheckResult check(const std::string& doc) {
  std::istringstream in(doc);
  return llp::obs::check_chrome_trace(in);
}

TEST(TraceCheck, AcceptsMinimalBalancedTrace) {
  const auto r = check(
      R"({"traceEvents":[
        {"name":"r","ph":"B","ts":0,"pid":0,"tid":0},
        {"name":"r","ph":"E","ts":5.5,"pid":0,"tid":0},
        {"name":"f","ph":"i","ts":1,"pid":0,"tid":0}
      ]})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.events, 3u);
  EXPECT_EQ(r.begins, 1u);
  EXPECT_EQ(r.ends, 1u);
  EXPECT_EQ(r.instants, 1u);
  EXPECT_EQ(r.names, 2u);
}

TEST(TraceCheck, MetadataNeedsNoTimestamp) {
  const auto r = check(
      R"({"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,
          "args":{"name":"llp"}}]})");
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(TraceCheck, RejectsMalformedJson) {
  EXPECT_FALSE(check("{").ok);
  EXPECT_FALSE(check("").ok);
  EXPECT_FALSE(check(R"({"traceEvents":[}]})").ok);
  EXPECT_FALSE(check(R"({"traceEvents":[]} trailing)").ok);
}

TEST(TraceCheck, RejectsWrongTopLevelShape) {
  EXPECT_FALSE(check(R"([1,2,3])").ok);
  EXPECT_FALSE(check(R"({"events":[]})").ok);
  EXPECT_FALSE(check(R"({"traceEvents":{}})").ok);
}

TEST(TraceCheck, RejectsMissingRequiredFields) {
  // No ts on a non-metadata event.
  EXPECT_FALSE(
      check(R"({"traceEvents":[{"name":"r","ph":"B","pid":0,"tid":0}]})").ok);
  // name must be a string.
  EXPECT_FALSE(check(
      R"({"traceEvents":[{"name":7,"ph":"B","ts":0,"pid":0,"tid":0}]})").ok);
  // Negative ts.
  EXPECT_FALSE(check(
      R"({"traceEvents":[{"name":"r","ph":"i","ts":-1,"pid":0,"tid":0}]})").ok);
}

TEST(TraceCheck, RejectsUnbalancedRows) {
  // Open B left at the end.
  EXPECT_FALSE(check(
      R"({"traceEvents":[{"name":"r","ph":"B","ts":0,"pid":0,"tid":0}]})").ok);
  // E with no open B.
  EXPECT_FALSE(check(
      R"({"traceEvents":[{"name":"r","ph":"E","ts":0,"pid":0,"tid":0}]})").ok);
  // E closing the wrong name.
  EXPECT_FALSE(check(
      R"({"traceEvents":[
        {"name":"a","ph":"B","ts":0,"pid":0,"tid":0},
        {"name":"b","ph":"E","ts":1,"pid":0,"tid":0}
      ]})").ok);
}

TEST(TraceCheck, BalanceIsPerRowNotGlobal) {
  // Same names on different tid rows balance independently.
  const auto ok = check(
      R"({"traceEvents":[
        {"name":"r","ph":"B","ts":0,"pid":0,"tid":0},
        {"name":"r","ph":"B","ts":1,"pid":0,"tid":1},
        {"name":"r","ph":"E","ts":2,"pid":0,"tid":1},
        {"name":"r","ph":"E","ts":3,"pid":0,"tid":0}
      ]})");
  EXPECT_TRUE(ok.ok) << ok.error;

  // A B on row 0 cannot be closed from row 1.
  const auto bad = check(
      R"({"traceEvents":[
        {"name":"r","ph":"B","ts":0,"pid":0,"tid":0},
        {"name":"r","ph":"E","ts":1,"pid":0,"tid":1}
      ]})");
  EXPECT_FALSE(bad.ok);
}

TEST(TraceCheck, HandlesEscapesAndNesting) {
  const auto r = check(
      R"({"traceEvents":[
        {"name":"outer \"quoted\" A","ph":"B","ts":0,"pid":0,"tid":0},
        {"name":"inner","ph":"B","ts":1,"pid":0,"tid":0},
        {"name":"inner","ph":"E","ts":2,"pid":0,"tid":0},
        {"name":"outer \"quoted\" A","ph":"E","ts":3,"pid":0,"tid":0}
      ]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.names, 2u);
}

TEST(TraceCheck, MissingFileFails) {
  const auto r =
      llp::obs::check_chrome_trace_file("/nonexistent/path/trace.json");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(TraceCheck, FormatCheckSummarizes) {
  const auto ok = check(R"({"traceEvents":[]})");
  EXPECT_NE(llp::obs::format_check(ok).find("OK"), std::string::npos);
  const auto bad = check("{");
  EXPECT_NE(llp::obs::format_check(bad).find("FAIL"), std::string::npos);
}

}  // namespace
