#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_check.hpp"

namespace {

using llp::Event;
using llp::EventKind;

Event ev(EventKind kind, std::uint64_t t_ns, int tid, int lane = -1,
         std::int64_t a = 0, std::int64_t b = 0) {
  Event e;
  e.kind = kind;
  e.t_ns = t_ns;
  e.tid = tid;
  e.lane = static_cast<std::int16_t>(lane);
  e.a = a;
  e.b = b;
  return e;
}

llp::obs::TraceCheckResult render_and_check(
    const std::vector<Event>& events, const llp::obs::ChromeTraceOptions& opts,
    llp::obs::ChromeTraceStats* stats_out = nullptr, std::string* json = nullptr) {
  std::ostringstream os;
  const llp::obs::ChromeTraceStats stats =
      llp::obs::write_chrome_trace(events, os, opts);
  if (stats_out != nullptr) *stats_out = stats;
  if (json != nullptr) *json = os.str();
  std::istringstream in(os.str());
  return llp::obs::check_chrome_trace(in);
}

TEST(ChromeTrace, BalancedPairsProduceValidBalancedJson) {
  std::vector<Event> events = {
      ev(EventKind::kRegionEnter, 1000, 0, -1, 64, 2),
      ev(EventKind::kLaneBegin, 1100, 0, 0),
      ev(EventKind::kLaneBegin, 1150, 1, 1),
      ev(EventKind::kChunkAcquire, 1200, 1, 1, 0, 8),
      ev(EventKind::kChunkFinish, 1300, 1, 1, 0, 8),
      ev(EventKind::kLaneEnd, 1400, 1, 1, 250, 1),
      ev(EventKind::kLaneEnd, 1500, 0, 0, 400, 1),
      ev(EventKind::kRegionExit, 1600, 0, -1, 600, 1),
  };
  llp::obs::ChromeTraceStats stats;
  const auto result = render_and_check(events, {}, &stats);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.begins, 4u);
  EXPECT_EQ(result.ends, 4u);
  EXPECT_EQ(stats.unmatched_dropped, 0u);
}

TEST(ChromeTrace, UnmatchedEventsAreDiscardedNotEmittedUnbalanced) {
  // A lane that never ended (aborted) and an end with no begin: both must
  // be dropped so the output still passes the balance checker.
  std::vector<Event> events = {
      ev(EventKind::kRegionEnter, 1000, 0),
      ev(EventKind::kLaneBegin, 1100, 0, 0),   // never ends
      ev(EventKind::kRegionExit, 2000, 0, -1, 1000, 0),
      ev(EventKind::kChunkFinish, 2100, 1, 1, 0, 8),  // no acquire
  };
  llp::obs::ChromeTraceStats stats;
  const auto result = render_and_check(events, {}, &stats);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.begins, result.ends);
  EXPECT_EQ(result.begins, 1u);  // only the region pair survived
  EXPECT_EQ(stats.unmatched_dropped, 2u);
}

TEST(ChromeTrace, InstantsAndMetadataSurvive) {
  std::vector<Event> events = {
      ev(EventKind::kFault, 1000, 0, 1, 3, 0),
      ev(EventKind::kRollback, 1100, 0, -1, 7, 1),
      ev(EventKind::kCkptDurable, 1200, 0, -1, 2, 6),
  };
  llp::obs::ChromeTraceOptions opts;
  opts.dropped_events = 42;
  std::string json;
  const auto result = render_and_check(events, opts, nullptr, &json);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.instants, 3u);
  EXPECT_NE(json.find("dropped_events"), std::string::npos);
  EXPECT_NE(json.find("\"count\":42"), std::string::npos);
}

TEST(ChromeTrace, IncludeChunksFalseOmitsChunkRows) {
  std::vector<Event> events = {
      ev(EventKind::kLaneBegin, 1000, 0, 0),
      ev(EventKind::kChunkAcquire, 1100, 0, 0, 0, 4),
      ev(EventKind::kChunkFinish, 1200, 0, 0, 0, 4),
      ev(EventKind::kLaneEnd, 1300, 0, 0, 300, 1),
  };
  llp::obs::ChromeTraceOptions opts;
  opts.include_chunks = false;
  std::string json;
  const auto result = render_and_check(events, opts, nullptr, &json);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.begins, 1u);
  EXPECT_EQ(json.find("chunk"), std::string::npos);
}

TEST(ChromeTrace, EmptyInputStillWritesValidDocument) {
  const auto result = render_and_check({}, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.begins, 0u);
  EXPECT_GE(result.events, 1u);  // process_name metadata
}

TEST(ChromeTrace, TimestampsAreRelativeMicroseconds) {
  // First kept event defines the epoch: its ts must be 0.000.
  std::vector<Event> events = {
      ev(EventKind::kRegionEnter, 5'000'000'000, 0),
      ev(EventKind::kRegionExit, 5'000'123'000, 0, -1, 123000, 1),
  };
  std::string json;
  const auto result = render_and_check(events, {}, nullptr, &json);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":123.000"), std::string::npos);
}

}  // namespace
