#include "obs/event_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

llp::Event make_event(std::int64_t a) {
  llp::Event e;
  e.t_ns = static_cast<std::uint64_t>(a) + 1;
  e.kind = llp::EventKind::kMark;
  e.a = a;
  return e;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(llp::obs::EventRing(1).capacity(), 8u);
  EXPECT_EQ(llp::obs::EventRing(8).capacity(), 8u);
  EXPECT_EQ(llp::obs::EventRing(9).capacity(), 16u);
  EXPECT_EQ(llp::obs::EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, PushDrainRoundTripsInOrder) {
  llp::obs::EventRing ring(16);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(ring.try_push(make_event(i)));
  }
  EXPECT_EQ(ring.size(), 10u);

  std::vector<llp::Event> out;
  EXPECT_EQ(ring.drain(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].a, i);
  }
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, OverflowDropsNewEventsAndCountsThem) {
  llp::obs::EventRing ring(8);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(make_event(i)));
  }
  // Full: the ring preserves history and rejects the new events.
  EXPECT_FALSE(ring.try_push(make_event(100)));
  EXPECT_FALSE(ring.try_push(make_event(101)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.pushed(), 8u);

  std::vector<llp::Event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out.front().a, 0);
  EXPECT_EQ(out.back().a, 7);
}

TEST(EventRing, WraparoundPreservesFifoAcrossManyLaps) {
  llp::obs::EventRing ring(8);
  std::vector<llp::Event> out;
  std::int64_t next = 0;
  std::int64_t expect = 0;
  // 100 laps of push-5/drain: indices wrap the 8-slot buffer repeatedly and
  // every drained batch must continue the sequence exactly.
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(make_event(next++)));
    }
    out.clear();
    ASSERT_EQ(ring.drain(out), 5u);
    for (const llp::Event& e : out) {
      ASSERT_EQ(e.a, expect++);
    }
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(next));
}

TEST(EventRing, ConcurrentProducerConsumerLosesNothingUndropped) {
  llp::obs::EventRing ring(64);
  constexpr std::int64_t kTotal = 200000;

  std::vector<llp::Event> out;
  std::thread producer([&] {
    for (std::int64_t i = 0; i < kTotal; ++i) ring.try_push(make_event(i));
  });
  while (true) {
    ring.drain(out);
    if (out.size() + ring.dropped() >= static_cast<std::uint64_t>(kTotal)) {
      // Producer may still be mid-push of the last few; join then sweep.
      if (producer.joinable()) producer.join();
      ring.drain(out);
      if (out.size() + ring.dropped() ==
          static_cast<std::uint64_t>(kTotal)) {
        break;
      }
    }
  }

  // Accepted + dropped accounts for every push, and the accepted events
  // come out strictly in production order.
  EXPECT_EQ(out.size() + ring.dropped(), static_cast<std::uint64_t>(kTotal));
  std::int64_t prev = -1;
  for (const llp::Event& e : out) {
    ASSERT_GT(e.a, prev);
    prev = e.a;
  }
}

}  // namespace
