#include "f3d/solver.hpp"

#include <gtest/gtest.h>

#include "f3d/cases.hpp"
#include "f3d/validation.hpp"

namespace {

using f3d::EngineKind;
using f3d::Solver;
using f3d::SolverConfig;

SolverConfig config_for(const f3d::CaseSpec& spec, EngineKind engine,
                        const std::string& prefix) {
  SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.engine = engine;
  cfg.region_prefix = prefix;
  return cfg;
}

class SolverModes : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SolverModes, FreeStreamPreservedToMachinePrecision) {
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  auto pristine = f3d::build_grid(spec);
  Solver s(grid, config_for(spec, GetParam(), "sol.fs"));
  s.run(3);
  EXPECT_DOUBLE_EQ(s.residual(), 0.0);
  EXPECT_EQ(f3d::linf_diff(grid, pristine), 0.0);
}

TEST_P(SolverModes, ResidualDecaysForDisturbedFlow) {
  auto spec = f3d::wall_compression_case(12);
  auto grid = f3d::build_grid(spec);
  f3d::add_kmin_wall(grid);
  f3d::add_gaussian_pulse(grid, 0.1, 2.5);
  Solver s(grid, config_for(spec, GetParam(), "sol.decay"));
  f3d::RunHistory h;
  for (int i = 0; i < 24; ++i) {
    s.step();
    h.record(s.residual(), 0);
  }
  EXPECT_TRUE(f3d::residual_decreasing(h, 0.5));
}

INSTANTIATE_TEST_SUITE_P(Modes, SolverModes,
                         ::testing::Values(EngineKind::kPencilScalar,
                                           EngineKind::kPlaneVector,
                                           EngineKind::kPencilSimd));

TEST(Solver, VectorAndRiscProduceSameSolution) {
  // The paper's core validation requirement: the RISC/parallel version must
  // not change the algorithm or its convergence.
  auto spec = f3d::paper_1m_case(0.1);
  auto grid_v = f3d::build_grid(spec);
  auto grid_r = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid_v, 0.08, 2.0);
  f3d::add_gaussian_pulse(grid_r, 0.08, 2.0);

  Solver sv(grid_v, config_for(spec, EngineKind::kPlaneVector, "sol.eq_v"));
  Solver sr(grid_r, config_for(spec, EngineKind::kPencilScalar, "sol.eq_r"));
  for (int i = 0; i < 8; ++i) {
    sv.step();
    sr.step();
    EXPECT_NEAR(sv.residual(), sr.residual(),
                1e-10 * (1.0 + sv.residual()))
        << "step " << i;
  }
  EXPECT_LT(f3d::linf_diff(grid_v, grid_r), 1e-11);
}

TEST(Solver, SimdAgreesWithRiscToFmaRounding) {
  // The SIMD pencil engine fuses multiply-adds where the scalar engines
  // round twice, so parity is tolerance-bounded, not bitwise (the ULP
  // policy in simd/pack.hpp) — but the bound is tight.
  auto spec = f3d::paper_1m_case(0.1);
  auto grid_s = f3d::build_grid(spec);
  auto grid_r = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid_s, 0.08, 2.0);
  f3d::add_gaussian_pulse(grid_r, 0.08, 2.0);

  Solver ss(grid_s, config_for(spec, EngineKind::kPencilSimd, "sol.eq_s"));
  Solver sr(grid_r, config_for(spec, EngineKind::kPencilScalar, "sol.eq_r2"));
  for (int i = 0; i < 8; ++i) {
    ss.step();
    sr.step();
    EXPECT_NEAR(ss.residual(), sr.residual(), 1e-10 * (1.0 + sr.residual()))
        << "step " << i;
  }
  EXPECT_LT(f3d::linf_diff(grid_s, grid_r), 1e-10);
}

TEST(Solver, SimdMatchesRiscOnPeriodicGrid) {
  // Periodic directions take the cyclic fallback inside SimdSweeps — the
  // same per-line solver RiscSweeps uses, so this pairing is exact on the
  // periodic sweeps and FMA-bounded on the rest.
  auto spec = f3d::vortex_case(12);
  auto make = [&](EngineKind engine, const char* prefix) {
    auto grid = f3d::build_grid(spec);
    f3d::make_periodic(grid);
    f3d::add_gaussian_pulse(grid, 0.05, 2.0);
    Solver s(grid, config_for(spec, engine, prefix));
    s.run(6);
    return std::make_pair(std::move(grid), s.residual());
  };
  auto [grid_s, res_s] = make(EngineKind::kPencilSimd, "sol.per_s");
  auto [grid_r, res_r] = make(EngineKind::kPencilScalar, "sol.per_r");
  EXPECT_TRUE(std::isfinite(res_s));
  EXPECT_NEAR(res_s, res_r, 1e-10 * (1.0 + res_r));
  EXPECT_LT(f3d::linf_diff(grid_s, grid_r), 1e-10);
}

TEST(Solver, ThreadCountDoesNotChangeSolution) {
  auto spec = f3d::wall_compression_case(10);
  const int orig = llp::num_threads();

  auto run_with = [&](int threads) {
    llp::set_num_threads(threads);
    auto grid = f3d::build_grid(spec);
    f3d::add_kmin_wall(grid);
    f3d::add_gaussian_pulse(grid, 0.05, 2.0);
    Solver s(grid, config_for(spec, EngineKind::kPencilScalar,
                              "sol.th" + std::to_string(threads)));
    s.run(6);
    return f3d::checksum(grid);
  };

  const auto c1 = run_with(1);
  const auto c4 = run_with(4);
  llp::set_num_threads(orig);
  EXPECT_EQ(c1, c4);
}

TEST(Solver, DtFollowsCflAndSpacing) {
  auto spec = f3d::wall_compression_case(10, 2.0);
  auto grid = f3d::build_grid(spec);
  SolverConfig cfg = config_for(spec, EngineKind::kPencilScalar, "sol.dt");
  cfg.cfl = 3.0;
  Solver s(grid, cfg);
  EXPECT_NEAR(s.dt(), 3.0 * spec.spacing / 3.0, 1e-12);  // cfl*h/(M+1)
}

TEST(Solver, FlopsPerStepScalesWithPoints) {
  auto small_spec = f3d::wall_compression_case(8);
  auto big_spec = f3d::wall_compression_case(16);
  auto small_grid = f3d::build_grid(small_spec);
  auto big_grid = f3d::build_grid(big_spec);
  Solver small(small_grid, config_for(small_spec, EngineKind::kPencilScalar, "sol.fa"));
  Solver big(big_grid, config_for(big_spec, EngineKind::kPencilScalar, "sol.fb"));
  // Per-point flops must be size-independent (the property the trace
  // extrapolation to the paper's full-size cases relies on).
  const double per_small =
      small.flops_per_step() / static_cast<double>(small_grid.total_points());
  const double per_big =
      big.flops_per_step() / static_cast<double>(big_grid.total_points());
  EXPECT_DOUBLE_EQ(per_small, per_big);
  EXPECT_GT(per_small, 100.0);
}

TEST(Solver, RegionsRecordFlopsAndTrips) {
  auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  llp::regions().reset_stats();
  Solver s(grid, config_for(spec, EngineKind::kPencilScalar, "sol.reg"));
  s.run(2);
  auto& reg = llp::regions();
  const auto id = reg.find("sol.reg.z0.sweep_j");
  ASSERT_NE(id, llp::kNoRegion);
  const auto st = reg.stats(id);
  EXPECT_EQ(st.invocations, 2u);
  EXPECT_EQ(st.total_trips,
            2u * static_cast<std::uint64_t>(grid.zone(0).lmax()));
  EXPECT_GT(st.flops, 0.0);
  // The BC region exists and is serial.
  const auto bc = reg.find("sol.reg.bc");
  ASSERT_NE(bc, llp::kNoRegion);
  EXPECT_EQ(reg.stats(bc).kind, llp::RegionKind::kSerial);
}

TEST(Solver, VectorModeRegistersSerialRegions) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  Solver s(grid, config_for(spec, EngineKind::kPlaneVector, "sol.vser"));
  const auto id = llp::regions().find("sol.vser.z0.sweep_j");
  ASSERT_NE(id, llp::kNoRegion);
  EXPECT_EQ(llp::regions().stats(id).kind, llp::RegionKind::kSerial);
}

TEST(Solver, BytesPerStepPositiveAndLinear) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  Solver s(grid, config_for(spec, EngineKind::kPencilScalar, "sol.bytes"));
  EXPECT_GT(s.bytes_per_step(), 0.0);
  EXPECT_LT(s.bytes_per_step() / grid.total_points(), 2000.0);
}

TEST(Solver, RunCountsSteps) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  Solver s(grid, config_for(spec, EngineKind::kPencilScalar, "sol.count"));
  s.run(5);
  EXPECT_EQ(s.steps_taken(), 5);
  EXPECT_THROW(s.run(0), llp::Error);
}

TEST(Solver, RejectsBadConfig) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  SolverConfig cfg = config_for(spec, EngineKind::kPencilScalar, "sol.bad");
  cfg.cfl = 0.0;
  EXPECT_THROW(Solver(grid, cfg), llp::Error);
}

}  // namespace
namespace {

TEST(Solver, CflRampGrowsWhileConvergingAndStaysStable) {
  // Note what this does NOT claim: for 3-factor approximate factorization
  // the per-step convergence effectiveness peaks at moderate CFL (the
  // factorization error grows with dt), so ramping trades per-step
  // effectiveness for step size. The contract here is that ramping engages
  // while the residual falls and never destabilizes the run.
  auto spec = f3d::wall_compression_case(12);
  auto run_with = [&](double growth) {
    auto grid = f3d::build_grid(spec);
    f3d::add_kmin_wall(grid);
    f3d::add_gaussian_pulse(grid, 0.08, 2.5);
    f3d::SolverConfig cfg;
    cfg.freestream = spec.freestream;
    cfg.cfl = 1.5;
    cfg.cfl_growth = growth;
    cfg.cfl_max = 8.0;
    cfg.region_prefix = "sol.ramp" + std::to_string(growth);
    f3d::Solver s(grid, cfg);
    s.run(60);
    return std::make_pair(s.residual(), s.cfl());
  };
  const auto [fixed_res, fixed_cfl] = run_with(1.0);
  const auto [ramped_res, ramped_cfl] = run_with(1.06);
  EXPECT_DOUBLE_EQ(fixed_cfl, 1.5);
  EXPECT_GT(ramped_cfl, 1.5);
  EXPECT_TRUE(std::isfinite(ramped_res));
  EXPECT_LT(ramped_res, 0.2);  // still converging, just on its own path
  EXPECT_TRUE(std::isfinite(fixed_res));
}

TEST(Solver, CflRampCappedAtMax) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = 2.0;
  cfg.cfl_growth = 1.5;
  cfg.cfl_max = 4.0;
  cfg.region_prefix = "sol.rampcap";
  f3d::Solver s(grid, cfg);
  s.run(30);
  EXPECT_LE(s.cfl(), 4.0 + 1e-12);
}

TEST(Solver, CflRampValidation) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl_growth = 0.5;
  cfg.region_prefix = "sol.rampbad";
  EXPECT_THROW(f3d::Solver(grid, cfg), llp::Error);
  cfg.cfl_growth = 1.1;
  cfg.cfl = 5.0;
  cfg.cfl_max = 2.0;
  EXPECT_THROW(f3d::Solver(grid, cfg), llp::Error);
}

}  // namespace
namespace {

TEST(Solver, SerialRegionsCarryWorkForAmdahlAccounting) {
  auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  llp::regions().reset_stats();
  Solver s(grid, config_for(spec, EngineKind::kPencilScalar, "sol.amdahl"));
  s.run(2);
  const auto bc = llp::regions().stats(llp::regions().find("sol.amdahl.bc"));
  const auto ex =
      llp::regions().stats(llp::regions().find("sol.amdahl.exchange"));
  EXPECT_GT(bc.flops, 0.0);
  EXPECT_GT(ex.flops, 0.0);
  // ... but only a sliver of the interior's work: the Table 2 reason they
  // stay serial is precisely that leaving them serial costs almost nothing.
  double total = bc.flops + ex.flops;
  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind("sol.amdahl.z", 0) == 0) total += r.flops;
  }
  EXPECT_LT((bc.flops + ex.flops) / total, 0.05);
}

}  // namespace
