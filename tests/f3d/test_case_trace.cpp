#include "f3d/case_trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

TEST(CaseTrace, TripsMatchFullSizeDimensions) {
  const auto trace = f3d::measure_full_size_trace(
      f3d::paper_1m_case(0.1), f3d::paper_1m_case(1.0), "ct.trips", 2);
  const auto full = f3d::paper_1m_case(1.0);
  bool saw_sweep_j = false, saw_sweep_l = false;
  for (const auto& l : trace.loops) {
    if (l.name == "ct.trips.z1.sweep_j") {
      EXPECT_EQ(l.trips, full.zones[1].lmax);  // 70
      saw_sweep_j = true;
    }
    if (l.name == "ct.trips.z1.sweep_l") {
      EXPECT_EQ(l.trips, full.zones[1].kmax);  // 75
      saw_sweep_l = true;
    }
  }
  EXPECT_TRUE(saw_sweep_j);
  EXPECT_TRUE(saw_sweep_l);
}

TEST(CaseTrace, FlopsScaleByPointRatio) {
  // Measure at two scales against the same full case: the extrapolated
  // total flops must agree closely (per-point work is size-independent).
  const auto full = f3d::paper_1m_case(1.0);
  const auto a = f3d::measure_full_size_trace(f3d::paper_1m_case(0.1), full,
                                              "ct.fa", 2);
  const auto b = f3d::measure_full_size_trace(f3d::paper_1m_case(0.15), full,
                                              "ct.fb", 2);
  EXPECT_NEAR(a.total_flops(), b.total_flops(), 1e-6 * a.total_flops());
}

TEST(CaseTrace, SerialRegionsSurvive) {
  const auto trace = f3d::measure_full_size_trace(
      f3d::paper_1m_case(0.1), f3d::paper_1m_case(1.0), "ct.serial", 2);
  int serial = 0;
  for (const auto& l : trace.loops) {
    if (!l.parallel) ++serial;
  }
  EXPECT_EQ(serial, 2);  // bc + exchange
}

TEST(CaseTrace, RejectsZoneCountMismatch) {
  EXPECT_THROW(
      f3d::measure_full_size_trace(f3d::wall_compression_case(8),
                                   f3d::paper_1m_case(1.0), "ct.bad", 1),
      llp::Error);
}

}  // namespace
