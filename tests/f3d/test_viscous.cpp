#include "f3d/viscous.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "f3d/bc.hpp"
#include "f3d/cases.hpp"
#include "f3d/rhs.hpp"
#include "f3d/solver.hpp"

namespace {

using f3d::kNumVars;
using f3d::Prim;
using f3d::ViscousConfig;

void conserv(double rho, double u, double v, double w, double p,
             double q[kNumVars]) {
  Prim s;
  s.rho = rho;
  s.u = u;
  s.v = v;
  s.w = w;
  s.p = p;
  f3d::to_conservative(s, q);
}

TEST(ViscousFlux, ZeroForUniformFlow) {
  double qa[kNumVars], qb[kNumVars], fv[kNumVars];
  conserv(1.0, 2.0, 0.1, -0.3, 0.7, qa);
  conserv(1.0, 2.0, 0.1, -0.3, 0.7, qb);
  ViscousConfig cfg;
  cfg.enabled = true;
  cfg.reynolds = 1000.0;
  f3d::viscous_flux_k_face(qa, qb, 0.1, cfg, fv);
  for (int n = 0; n < kNumVars; ++n) EXPECT_DOUBLE_EQ(fv[n], 0.0);
}

TEST(ViscousFlux, ShearGivesTauXy) {
  // du/dy = (2.1 - 2.0)/0.1 = 1.0; tau_xy = mu/Re * du/dy = 1e-3.
  double qa[kNumVars], qb[kNumVars], fv[kNumVars];
  conserv(1.0, 2.0, 0.0, 0.0, 1.0 / f3d::kGamma, qa);
  conserv(1.0, 2.1, 0.0, 0.0, 1.0 / f3d::kGamma, qb);
  ViscousConfig cfg;
  cfg.enabled = true;
  cfg.reynolds = 1000.0;
  f3d::viscous_flux_k_face(qa, qb, 0.1, cfg, fv);
  EXPECT_DOUBLE_EQ(fv[0], 0.0);
  EXPECT_NEAR(fv[1], 1e-3, 1e-15);
  EXPECT_NEAR(fv[2], 0.0, 1e-15);
  // Energy flux = u_face * tau_xy (+ zero heat flux at constant T).
  EXPECT_NEAR(fv[4], 2.05 * 1e-3, 1e-12);
}

TEST(ViscousFlux, NormalStrainHasFourThirds) {
  double qa[kNumVars], qb[kNumVars], fv[kNumVars];
  conserv(1.0, 0.0, 1.0, 0.0, 1.0 / f3d::kGamma, qa);
  conserv(1.0, 0.0, 1.2, 0.0, 1.0 / f3d::kGamma, qb);
  ViscousConfig cfg;
  cfg.enabled = true;
  cfg.reynolds = 100.0;
  f3d::viscous_flux_k_face(qa, qb, 0.1, cfg, fv);
  // dv/dy = 2.0; tau_yy = (4/3)(1/100)(2.0).
  EXPECT_NEAR(fv[2], 4.0 / 3.0 * 0.02, 1e-14);
}

TEST(ViscousFlux, HeatFluxFollowsTemperatureGradient) {
  // Same velocity, different temperature (p/rho): pure conduction.
  double qa[kNumVars], qb[kNumVars], fv[kNumVars];
  conserv(1.0, 0.0, 0.0, 0.0, 1.0 / f3d::kGamma, qa);
  conserv(1.0, 0.0, 0.0, 0.0, 1.2 / f3d::kGamma, qb);
  ViscousConfig cfg;
  cfg.enabled = true;
  cfg.reynolds = 100.0;
  cfg.prandtl = 0.72;
  f3d::viscous_flux_k_face(qa, qb, 0.1, cfg, fv);
  const double ty = (1.2 - 1.0) / f3d::kGamma / 0.1;
  const double expect =
      (1.0 / 100.0) * f3d::kGamma / (0.72 * (f3d::kGamma - 1.0)) * ty;
  EXPECT_NEAR(fv[4], expect, 1e-14);
  EXPECT_DOUBLE_EQ(fv[1], 0.0);
}

TEST(ViscousRhs, QuadraticProfileMatchesAnalyticLaplacian) {
  // u(y) = y^2: d2u/dy2 = 2, so the viscous RHS contribution to the
  // x-momentum is (1/Re) * 2 (central differences are exact on
  // quadratics).
  f3d::Zone z({6, 8, 6}, 0.1, 0.1, 0.1);
  const int ng = f3d::Zone::kGhost;
  for (int l = -ng; l < 6 + ng; ++l)
    for (int k = -ng; k < 8 + ng; ++k)
      for (int j = -ng; j < 6 + ng; ++j) {
        const double y = z.y(k);
        conserv(1.0, y * y, 0.0, 0.0, 1.0 / f3d::kGamma,
                z.q_point(j, k, l));
      }
  llp::Array4D<double> with(kNumVars, 10, 12, 10);
  llp::Array4D<double> without(kNumVars, 10, 12, 10);
  f3d::RhsConfig on;
  on.viscous.enabled = true;
  on.viscous.reynolds = 50.0;
  f3d::RhsConfig off;
  const double dt = 1.0;
  f3d::compute_rhs_plane(z, 3, dt, on, with);
  f3d::compute_rhs_plane(z, 3, dt, off, without);
  // rhs = -dt * R and viscous subtracts from R, so the difference is
  // +dt * (1/Re) * d2u/dy2 ... times rho=1.
  const double expect = dt * (1.0 / 50.0) * 2.0;
  for (int k = 2; k < 6; ++k) {
    const double diff =
        with(1, 3 + ng, k + ng, 3 + ng) - without(1, 3 + ng, k + ng, 3 + ng);
    EXPECT_NEAR(diff, expect, 1e-10) << k;
  }
}

TEST(ViscousSolver, FreeStreamStillPreserved) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.rhs.viscous.enabled = true;
  cfg.rhs.viscous.reynolds = 1000.0;
  cfg.region_prefix = "visc.fs";
  f3d::Solver s(grid, cfg);
  s.run(3);
  EXPECT_DOUBLE_EQ(s.residual(), 0.0);
}

TEST(ViscousSolver, ShearPerturbationDecaysFasterAtLowerReynolds) {
  auto kinetic_energy_after = [](double reynolds, int steps) {
    auto spec = f3d::vortex_case(12);
    auto grid = f3d::build_grid(spec);
    f3d::make_periodic(grid);
    // Sinusoidal x-velocity perturbation in y.
    auto& z = grid.zone(0);
    const int ng = f3d::Zone::kGhost;
    for (int l = -ng; l < z.lmax() + ng; ++l)
      for (int k = -ng; k < z.kmax() + ng; ++k)
        for (int j = -ng; j < z.jmax() + ng; ++j) {
          Prim s = f3d::to_prim(z.q_point(j, k, l));
          s.u += 0.05 * std::sin(2.0 * M_PI * z.y(k) / 10.0);
          f3d::to_conservative(s, z.q_point(j, k, l));
        }
    f3d::SolverConfig cfg;
    cfg.freestream = spec.freestream;
    cfg.cfl = 1.0;
    cfg.rhs.viscous.enabled = true;
    cfg.rhs.viscous.reynolds = reynolds;
    cfg.region_prefix = "visc.re" + std::to_string(static_cast<int>(reynolds));
    f3d::Solver s(grid, cfg);
    s.run(steps);
    // Perturbation kinetic energy around the free stream.
    const Prim inf = spec.freestream.prim();
    double ke = 0.0;
    for (int l = 0; l < z.lmax(); ++l)
      for (int k = 0; k < z.kmax(); ++k)
        for (int j = 0; j < z.jmax(); ++j) {
          const Prim s2 = f3d::to_prim(z.q_point(j, k, l));
          ke += (s2.u - inf.u) * (s2.u - inf.u);
        }
    return ke;
  };
  // Re=20 gives a diffusion rate nu*k^2 ~ 0.02 per time unit on the
  // 10-unit box; 30 steps at CFL 1 cover ~17 time units.
  const double high_re = kinetic_energy_after(10000.0, 30);
  const double low_re = kinetic_energy_after(20.0, 30);
  EXPECT_LT(low_re, 0.8 * high_re);
}

TEST(NoSlipWall, GhostVelocitiesMirrorToZeroAtWall) {
  f3d::Zone z({4, 4, 4}, 1, 1, 1);
  f3d::FreeStream fs;
  fs.mach = 2.0;
  z.set_freestream(fs);
  f3d::BoundarySet bcs = f3d::BoundarySet::uniform(f3d::BcType::kExtrapolate);
  bcs[f3d::Face::kKMin] = f3d::BcType::kNoSlipWall;
  f3d::apply_boundary_conditions(z, bcs, fs);
  for (int j = 0; j < 4; ++j)
    for (int l = 0; l < 4; ++l) {
      // All momenta negate; density and energy copy.
      EXPECT_DOUBLE_EQ(z.q(1, j, -1, l), -z.q(1, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(2, j, -1, l), -z.q(2, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(3, j, -1, l), -z.q(3, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(0, j, -1, l), z.q(0, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(4, j, -1, l), z.q(4, j, 0, l));
      // Face-average velocity is zero.
      EXPECT_DOUBLE_EQ(z.q(1, j, -1, l) + z.q(1, j, 0, l), 0.0);
    }
}

TEST(ViscousSolver, FlopAccountingIncludesViscousTerms) {
  auto spec = f3d::wall_compression_case(8);
  auto grid_on = f3d::build_grid(spec);
  auto grid_off = f3d::build_grid(spec);
  f3d::SolverConfig on;
  on.freestream = spec.freestream;
  on.rhs.viscous.enabled = true;
  on.region_prefix = "visc.fon";
  f3d::SolverConfig off;
  off.freestream = spec.freestream;
  off.region_prefix = "visc.foff";
  f3d::Solver son(grid_on, on);
  f3d::Solver soff(grid_off, off);
  EXPECT_GT(son.flops_per_step(), soff.flops_per_step());
}

}  // namespace
