#include "f3d/forces.hpp"

#include <gtest/gtest.h>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "util/error.hpp"

namespace {

TEST(WallForce, UniformPressureGivesPressureTimesArea) {
  f3d::Zone z({4, 5, 6}, 0.5, 0.25, 0.125);
  f3d::FreeStream fs;
  fs.mach = 2.0;
  z.set_freestream(fs);
  const double p_inf = 1.0 / f3d::kGamma;

  const auto f = f3d::integrate_wall_force(z, f3d::Face::kKMin);
  const double area = 4 * 6 * 0.5 * 0.125;
  EXPECT_NEAR(f.area, area, 1e-12);
  EXPECT_NEAR(f.fy, -p_inf * area, 1e-12);  // outward normal is -y
  EXPECT_NEAR(f.fx, 0.0, 1e-15);
  EXPECT_NEAR(f.fz, 0.0, 1e-15);
}

TEST(WallForce, EveryFaceNormalPointsOutward) {
  f3d::Zone z({4, 4, 4}, 1, 1, 1);
  f3d::FreeStream fs;
  z.set_freestream(fs);
  using f3d::Face;
  EXPECT_LT(f3d::integrate_wall_force(z, Face::kJMin).fx, 0.0);
  EXPECT_GT(f3d::integrate_wall_force(z, Face::kJMax).fx, 0.0);
  EXPECT_LT(f3d::integrate_wall_force(z, Face::kKMin).fy, 0.0);
  EXPECT_GT(f3d::integrate_wall_force(z, Face::kKMax).fy, 0.0);
  EXPECT_LT(f3d::integrate_wall_force(z, Face::kLMin).fz, 0.0);
  EXPECT_GT(f3d::integrate_wall_force(z, Face::kLMax).fz, 0.0);
}

TEST(WallForce, CoefficientsNormalizeByDynamicPressure) {
  f3d::Zone z({4, 4, 4}, 1, 1, 1);
  f3d::FreeStream fs;
  fs.mach = 2.0;
  z.set_freestream(fs);
  const auto f = f3d::integrate_wall_force(z, f3d::Face::kKMin);
  // |Cy| = p_inf / q_inf = (1/gamma) / (0.5 * M^2) for rho=1, V=M.
  const double expect = (1.0 / f3d::kGamma) / (0.5 * 4.0);
  EXPECT_NEAR(f.cy(fs), -expect, 1e-12);
}

TEST(WallForce, CoefficientRequiresArea) {
  f3d::WallForce f;
  f3d::FreeStream fs;
  EXPECT_THROW(f.cx(fs), llp::Error);
}

TEST(TotalWallForce, SumsOnlyWallFaces) {
  auto grid = f3d::build_grid(f3d::paper_1m_case(0.08));
  // No walls yet: nothing integrated.
  EXPECT_DOUBLE_EQ(f3d::total_wall_force(grid).area, 0.0);
  f3d::add_kmin_wall(grid);
  const auto f = f3d::total_wall_force(grid);
  EXPECT_GT(f.area, 0.0);
  EXPECT_LT(f.fy, 0.0);  // uniform pressure pushes down through KMin
}

TEST(TotalWallForce, CompressionSideLoadAppearsAtAngleOfAttack) {
  // Mach-2 flow pitched 2 degrees INTO the KMin wall compresses the air
  // near the wall: after converging a while, wall pressure must exceed
  // free-stream pressure (|Cy| grows over the uniform-flow value).
  auto spec = f3d::wall_compression_case(12, 2.0);
  auto grid = f3d::build_grid(spec);
  f3d::add_kmin_wall(grid);
  const double cy0 = std::abs(f3d::total_wall_force(grid).cy(spec.freestream));
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "forces.aoa";
  f3d::Solver s(grid, cfg);
  s.run(40);
  const double cy1 = std::abs(f3d::total_wall_force(grid).cy(spec.freestream));
  EXPECT_GT(cy1, cy0 * 1.02);
}

}  // namespace
