// The f3d hot-region affine signatures: every region the solver declares
// must classify parallel-legal (non-SERIAL, in fact DOALL — the paper's
// whole premise is that these loops parallelize), and select_engine must
// refuse parallel-outer engines when a sweep signature says otherwise.
#include "f3d/signatures.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/static/registry.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine_select.hpp"

namespace f3d {
namespace {

class SignaturesTest : public ::testing::Test {
protected:
  void SetUp() override { llp::analyze::clear_declarations(); }
  void TearDown() override { llp::analyze::clear_declarations(); }

  static MultiZoneGrid small_grid() {
    return build_grid(paper_1m_case(/*scale=*/0.05));
  }
};

TEST_F(SignaturesTest, EveryDeclaredRegionClassifiesDoall) {
  const MultiZoneGrid grid = small_grid();
  const SolverConfig config;
  declare_region_signatures(grid, config, /*overwrite=*/true);
  const auto table = llp::analyze::classification_table();
  // rhs + update + three sweeps per zone.
  ASSERT_EQ(table.size(), static_cast<std::size_t>(grid.num_zones()) * 5);
  for (const auto& row : table) {
    EXPECT_EQ(row.verdict.cls, llp::analyze::LoopClass::kDoall)
        << row.region << " classified " << row.verdict.class_string();
  }
}

TEST_F(SignaturesTest, SweepNamesMatchTheDeclaredRegions) {
  const MultiZoneGrid grid = small_grid();
  const SolverConfig config;
  declare_region_signatures(grid, config, /*overwrite=*/true);
  const std::vector<std::string> sweeps = sweep_region_names(grid, config);
  ASSERT_EQ(sweeps.size(), static_cast<std::size_t>(grid.num_zones()) * 3);
  for (const std::string& name : sweeps) {
    llp::analyze::AffineSignature sig;
    EXPECT_TRUE(llp::analyze::find_signature(name, &sig)) << name;
  }
}

TEST_F(SignaturesTest, RhsSlabReadsNeverCollideWithPlaneWrites) {
  const MultiZoneGrid grid = small_grid();
  const auto sig = rhs_region_signature(grid.zone(0));
  const auto v = llp::analyze::classify(sig);
  EXPECT_TRUE(v.parallel_ok()) << v.class_string();
  EXPECT_GT(v.pairs_checked, 0u);
}

TEST_F(SignaturesTest, SelectEngineHonorsAPoisonedSweepSignature) {
  const MultiZoneGrid grid = small_grid();
  const SolverConfig config;

  // Poison ONE sweep region with a carried recurrence before the probe;
  // the probe's if_absent declarations must yield to it, and every
  // parallel-outer engine becomes illegal.
  const std::vector<std::string> sweeps = sweep_region_names(grid, config);
  ASSERT_FALSE(sweeps.empty());
  llp::analyze::AffineSignature carried;
  carried.accesses.push_back(llp::analyze::AffineAccess::write("q", 1, 0));
  carried.accesses.push_back(llp::analyze::AffineAccess::read("q", 1, -1));
  llp::analyze::declare_access(sweeps.front(), carried);

  const EngineChoice choice = select_engine(grid, config, nullptr,
                                            /*repeats=*/1);
  EXPECT_EQ(choice.kind, EngineKind::kPlaneVector)
      << "parallel-outer engine selected despite a carried sweep signature";

  // With the poison cleared the probe is free to pick any engine again —
  // and the probe-path declarations classify clean.
  llp::analyze::clear_declarations();
  declare_region_signatures(grid, config, /*overwrite=*/false);
  for (const auto& row : llp::analyze::classification_table()) {
    EXPECT_TRUE(row.verdict.parallel_ok()) << row.region;
  }
}

}  // namespace
}  // namespace f3d
