#include "f3d/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using f3d::kNumVars;
using f3d::Prim;

Prim random_state(llp::SplitMix64& rng) {
  Prim s;
  s.rho = rng.uniform(0.3, 2.5);
  s.u = rng.uniform(-1.5, 1.5);
  s.v = rng.uniform(-1.5, 1.5);
  s.w = rng.uniform(-1.5, 1.5);
  s.p = rng.uniform(0.2, 2.0);
  return s;
}

class EigenDirections : public ::testing::TestWithParam<int> {};

TEST_P(EigenDirections, LeftThenRightIsIdentity) {
  const int dir = GetParam();
  llp::SplitMix64 rng(17 + dir);
  for (int trial = 0; trial < 100; ++trial) {
    const Prim s = random_state(rng);
    double q[kNumVars];
    f3d::to_conservative(s, q);
    double x[kNumVars], w[kNumVars], back[kNumVars];
    for (int n = 0; n < kNumVars; ++n) x[n] = rng.uniform(-1.0, 1.0);
    f3d::apply_left(dir, q, x, w);
    f3d::apply_right(dir, q, w, back);
    for (int n = 0; n < kNumVars; ++n) {
      EXPECT_NEAR(back[n], x[n], 1e-10) << "dir=" << dir << " n=" << n;
    }
  }
}

TEST_P(EigenDirections, RightThenLeftIsIdentity) {
  const int dir = GetParam();
  llp::SplitMix64 rng(23 + dir);
  for (int trial = 0; trial < 100; ++trial) {
    const Prim s = random_state(rng);
    double q[kNumVars];
    f3d::to_conservative(s, q);
    double w[kNumVars], x[kNumVars], back[kNumVars];
    for (int n = 0; n < kNumVars; ++n) w[n] = rng.uniform(-1.0, 1.0);
    f3d::apply_right(dir, q, w, x);
    f3d::apply_left(dir, q, x, back);
    for (int n = 0; n < kNumVars; ++n) {
      EXPECT_NEAR(back[n], w[n], 1e-10) << "dir=" << dir << " n=" << n;
    }
  }
}

// The decisive property: R diag(lambda) L x must equal the action of the
// true flux Jacobian dF/dQ on x, verified against central finite
// differences of the flux itself.
TEST_P(EigenDirections, DiagonalizationReproducesFluxJacobian) {
  const int dir = GetParam();
  llp::SplitMix64 rng(31 + dir);
  for (int trial = 0; trial < 60; ++trial) {
    const Prim s = random_state(rng);
    double q[kNumVars];
    f3d::to_conservative(s, q);

    double x[kNumVars];
    for (int n = 0; n < kNumVars; ++n) x[n] = rng.uniform(-0.5, 0.5);

    // A x via the eigensystem.
    double w[kNumVars], lam[kNumVars], ax_eig[kNumVars];
    f3d::apply_left(dir, q, x, w);
    f3d::eigenvalues(dir, q, lam);
    for (int n = 0; n < kNumVars; ++n) w[n] *= lam[n];
    f3d::apply_right(dir, q, w, ax_eig);

    // A x via finite differences: (F(q + e x) - F(q - e x)) / (2 e).
    const double eps = 1e-6;
    double qp[kNumVars], qm[kNumVars], fp[kNumVars], fm[kNumVars];
    for (int n = 0; n < kNumVars; ++n) {
      qp[n] = q[n] + eps * x[n];
      qm[n] = q[n] - eps * x[n];
    }
    f3d::flux(dir, qp, fp);
    f3d::flux(dir, qm, fm);
    for (int n = 0; n < kNumVars; ++n) {
      const double ax_fd = (fp[n] - fm[n]) / (2.0 * eps);
      EXPECT_NEAR(ax_eig[n], ax_fd, 2e-4 * (1.0 + std::abs(ax_fd)))
          << "dir=" << dir << " n=" << n << " trial=" << trial;
    }
  }
}

TEST_P(EigenDirections, EigenvalueOrderAndValues) {
  const int dir = GetParam();
  Prim s;
  s.rho = 1.0;
  s.u = 0.4;
  s.v = 0.6;
  s.w = -0.2;
  s.p = 1.0 / f3d::kGamma;  // c = 1
  double q[kNumVars], lam[kNumVars];
  f3d::to_conservative(s, q);
  f3d::eigenvalues(dir, q, lam);
  const double un = (dir == 0) ? s.u : (dir == 1 ? s.v : s.w);
  EXPECT_NEAR(lam[0], un - 1.0, 1e-12);
  EXPECT_NEAR(lam[1], un, 1e-12);
  EXPECT_NEAR(lam[2], un, 1e-12);
  EXPECT_NEAR(lam[3], un, 1e-12);
  EXPECT_NEAR(lam[4], un + 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllDirections, EigenDirections,
                         ::testing::Values(0, 1, 2));

TEST(Eigen, SupersonicAllEigenvaluesPositive) {
  Prim s;
  s.u = 2.0;  // M = 2 along x with c = 1
  s.p = 1.0 / f3d::kGamma;
  double q[kNumVars], lam[kNumVars];
  f3d::to_conservative(s, q);
  f3d::eigenvalues(0, q, lam);
  for (int n = 0; n < kNumVars; ++n) EXPECT_GT(lam[n], 0.0);
}

}  // namespace
namespace {

TEST(Eigen, SupersonicFlowHasFullyUpwindLambdas) {
  // At M=2 along each axis, every eigenvalue of that direction is
  // positive: the flux-split implicit operator becomes purely backward
  // differenced, the F3D "partially flux-split" streamwise situation.
  for (int dir = 0; dir < 3; ++dir) {
    Prim s;
    s.p = 1.0 / f3d::kGamma;  // c = 1
    s.u = dir == 0 ? 2.0 : 0.0;
    s.v = dir == 1 ? 2.0 : 0.0;
    s.w = dir == 2 ? 2.0 : 0.0;
    double q[kNumVars], lam[kNumVars];
    f3d::to_conservative(s, q);
    f3d::eigenvalues(dir, q, lam);
    for (int n = 0; n < kNumVars; ++n) EXPECT_GT(lam[n], 0.0) << dir;
  }
}

TEST(Eigen, TransformsAreLinearInTheVector) {
  llp::SplitMix64 rng(77);
  for (int dir = 0; dir < 3; ++dir) {
    const Prim s = random_state(rng);
    double q[kNumVars];
    f3d::to_conservative(s, q);
    double x[kNumVars], y[kNumVars], xy[kNumVars];
    for (int n = 0; n < kNumVars; ++n) {
      x[n] = rng.uniform(-1.0, 1.0);
      y[n] = rng.uniform(-1.0, 1.0);
      xy[n] = 2.0 * x[n] - 3.0 * y[n];
    }
    double wx[kNumVars], wy[kNumVars], wxy[kNumVars];
    f3d::apply_left(dir, q, x, wx);
    f3d::apply_left(dir, q, y, wy);
    f3d::apply_left(dir, q, xy, wxy);
    for (int n = 0; n < kNumVars; ++n) {
      EXPECT_NEAR(wxy[n], 2.0 * wx[n] - 3.0 * wy[n], 1e-11);
    }
  }
}

}  // namespace
