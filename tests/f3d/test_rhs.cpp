#include "f3d/rhs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "f3d/bc.hpp"
#include "util/error.hpp"

namespace {

using f3d::FreeStream;
using f3d::RhsConfig;
using f3d::Zone;

llp::Array4D<double> make_rhs_array(const Zone& z) {
  return llp::Array4D<double>(f3d::kNumVars, z.jmax() + 2 * Zone::kGhost,
                              z.kmax() + 2 * Zone::kGhost,
                              z.lmax() + 2 * Zone::kGhost);
}

TEST(Rhs, FreeStreamGivesExactZero) {
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  FreeStream fs;
  fs.mach = 2.0;
  fs.alpha_deg = 2.0;
  z.set_freestream(fs);
  auto rhs = make_rhs_array(z);
  rhs.fill(99.0);
  for (int l = 0; l < z.lmax(); ++l) {
    f3d::compute_rhs_plane(z, l, 0.05, RhsConfig{}, rhs);
  }
  const int ng = Zone::kGhost;
  for (int l = 0; l < 6; ++l)
    for (int k = 0; k < 6; ++k)
      for (int j = 0; j < 6; ++j)
        for (int n = 0; n < f3d::kNumVars; ++n) {
          EXPECT_DOUBLE_EQ(rhs(n, j + ng, k + ng, l + ng), 0.0);
        }
}

TEST(Rhs, PerturbationProducesNonzeroRhs) {
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  FreeStream fs;
  z.set_freestream(fs);
  z.q(0, 3, 3, 3) *= 1.1;  // density bump
  auto rhs = make_rhs_array(z);
  double sum = 0.0;
  for (int l = 0; l < z.lmax(); ++l) {
    f3d::compute_rhs_plane(z, l, 0.05, RhsConfig{}, rhs);
    sum += f3d::rhs_plane_sumsq(z, l, rhs);
  }
  EXPECT_GT(sum, 0.0);
}

TEST(Rhs, RhsScalesLinearlyWithDt) {
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  FreeStream fs;
  z.set_freestream(fs);
  z.q(0, 2, 2, 2) *= 1.05;
  auto r1 = make_rhs_array(z);
  auto r2 = make_rhs_array(z);
  f3d::compute_rhs_plane(z, 2, 0.01, RhsConfig{}, r1);
  f3d::compute_rhs_plane(z, 2, 0.02, RhsConfig{}, r2);
  const int ng = Zone::kGhost;
  for (int k = 0; k < 6; ++k)
    for (int j = 0; j < 6; ++j)
      for (int n = 0; n < f3d::kNumVars; ++n) {
        EXPECT_NEAR(r2(n, j + ng, k + ng, 2 + ng),
                    2.0 * r1(n, j + ng, k + ng, 2 + ng), 1e-14);
      }
}

TEST(Rhs, MirrorSymmetricFieldGivesMirrorSymmetricRhs) {
  // Field symmetric about the z midplane: the z-momentum RHS must be
  // antisymmetric, the others symmetric.
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  FreeStream fs;
  fs.mach = 1.5;
  z.set_freestream(fs);
  const int ng = Zone::kGhost;
  // Symmetric density/pressure bump spanning all cells (ghosts included).
  for (int l = -ng; l < 6 + ng; ++l) {
    const double zc = (l + 0.5) - 3.0;  // symmetric coordinate about mid
    for (int k = -ng; k < 6 + ng; ++k)
      for (int j = -ng; j < 6 + ng; ++j) {
        f3d::Prim s = f3d::to_prim(z.q_point(j, k, l));
        const double bump =
            1.0 + 0.05 * std::exp(-0.3 * (zc * zc + (j - 2.5) * (j - 2.5)));
        s.rho *= bump;
        s.p *= std::pow(bump, f3d::kGamma);
        f3d::to_conservative(s, z.q_point(j, k, l));
      }
  }
  auto rhs = make_rhs_array(z);
  for (int l = 0; l < 6; ++l) {
    f3d::compute_rhs_plane(z, l, 0.05, RhsConfig{}, rhs);
  }
  for (int l = 0; l < 3; ++l) {
    const int lm = 5 - l;  // mirror plane index
    for (int k = 0; k < 6; ++k)
      for (int j = 0; j < 6; ++j) {
        EXPECT_NEAR(rhs(0, j + ng, k + ng, l + ng),
                    rhs(0, j + ng, k + ng, lm + ng), 1e-12);
        EXPECT_NEAR(rhs(3, j + ng, k + ng, l + ng),
                    -rhs(3, j + ng, k + ng, lm + ng), 1e-12);
        EXPECT_NEAR(rhs(4, j + ng, k + ng, l + ng),
                    rhs(4, j + ng, k + ng, lm + ng), 1e-12);
      }
  }
}

TEST(Rhs, PlaneOutOfRangeRejected) {
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  auto rhs = make_rhs_array(z);
  EXPECT_THROW(f3d::compute_rhs_plane(z, 6, 0.05, RhsConfig{}, rhs),
               llp::Error);
  EXPECT_THROW(f3d::compute_rhs_plane(z, -1, 0.05, RhsConfig{}, rhs),
               llp::Error);
}

TEST(Rhs, SumsqMatchesManualSum) {
  Zone z({6, 6, 6}, 0.1, 0.1, 0.1);
  FreeStream fs;
  z.set_freestream(fs);
  z.q(4, 2, 3, 1) *= 1.02;
  auto rhs = make_rhs_array(z);
  f3d::compute_rhs_plane(z, 1, 0.05, RhsConfig{}, rhs);
  double manual = 0.0;
  const int ng = Zone::kGhost;
  for (int k = 0; k < 6; ++k)
    for (int j = 0; j < 6; ++j)
      for (int n = 0; n < f3d::kNumVars; ++n) {
        const double v = rhs(n, j + ng, k + ng, 1 + ng);
        manual += v * v;
      }
  EXPECT_DOUBLE_EQ(f3d::rhs_plane_sumsq(z, 1, rhs), manual);
}

}  // namespace
