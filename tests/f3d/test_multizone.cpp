#include "f3d/multizone.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using f3d::BcType;
using f3d::Face;
using f3d::MultiZoneGrid;
using f3d::ZoneDims;

TEST(MultiZone, BuildsThreeZonesWithInterfaces) {
  MultiZoneGrid g({{4, 6, 6}, {5, 6, 6}, {6, 6, 6}}, 0.1);
  EXPECT_EQ(g.num_zones(), 3);
  EXPECT_EQ(g.bcs(0)[Face::kJMin], BcType::kFreeStream);
  EXPECT_EQ(g.bcs(0)[Face::kJMax], BcType::kInterface);
  EXPECT_EQ(g.bcs(1)[Face::kJMin], BcType::kInterface);
  EXPECT_EQ(g.bcs(1)[Face::kJMax], BcType::kInterface);
  EXPECT_EQ(g.bcs(2)[Face::kJMax], BcType::kExtrapolate);
}

TEST(MultiZone, TotalPoints) {
  MultiZoneGrid g({{4, 6, 6}, {5, 6, 6}}, 0.1);
  EXPECT_EQ(g.total_points(), 4u * 36u + 5u * 36u);
}

TEST(MultiZone, ZonesAbutAlongX) {
  MultiZoneGrid g({{4, 6, 6}, {5, 6, 6}}, 0.5);
  // Zone 1's first cell center continues zone 0's grid without a gap.
  EXPECT_DOUBLE_EQ(g.zone(1).x(0), g.zone(0).x(3) + 0.5);
}

TEST(MultiZone, RejectsMismatchedTransverseDims) {
  EXPECT_THROW(MultiZoneGrid({{4, 6, 6}, {5, 7, 6}}, 0.1), llp::Error);
  EXPECT_THROW(MultiZoneGrid({{4, 6, 6}, {5, 6, 8}}, 0.1), llp::Error);
}

TEST(MultiZone, RejectsEmptyAndBadSpacing) {
  EXPECT_THROW(MultiZoneGrid({}, 0.1), llp::Error);
  EXPECT_THROW(MultiZoneGrid({{4, 4, 4}}, 0.0), llp::Error);
}

TEST(MultiZone, ExchangeFillsInterfaceGhostsFromNeighborInterior) {
  MultiZoneGrid g({{4, 5, 5}, {4, 5, 5}}, 0.1);
  llp::SplitMix64 rng(9);
  for (int zi = 0; zi < 2; ++zi) {
    auto& z = g.zone(zi);
    for (int l = 0; l < 5; ++l)
      for (int k = 0; k < 5; ++k)
        for (int j = 0; j < 4; ++j)
          for (int n = 0; n < f3d::kNumVars; ++n)
            z.q(n, j, k, l) = rng.uniform(0.0, 1.0);
  }
  g.exchange();
  for (int l = 0; l < 5; ++l) {
    for (int k = 0; k < 5; ++k) {
      for (int n = 0; n < f3d::kNumVars; ++n) {
        // Left zone's ghosts = right zone's first interior cells.
        EXPECT_DOUBLE_EQ(g.zone(0).q(n, 4, k, l), g.zone(1).q(n, 0, k, l));
        EXPECT_DOUBLE_EQ(g.zone(0).q(n, 5, k, l), g.zone(1).q(n, 1, k, l));
        // Right zone's ghosts = left zone's last interior cells.
        EXPECT_DOUBLE_EQ(g.zone(1).q(n, -1, k, l), g.zone(0).q(n, 3, k, l));
        EXPECT_DOUBLE_EQ(g.zone(1).q(n, -2, k, l), g.zone(0).q(n, 2, k, l));
      }
    }
  }
}

TEST(MultiZone, SetFreestreamAllZones) {
  MultiZoneGrid g({{4, 5, 5}, {4, 5, 5}}, 0.1);
  f3d::FreeStream fs;
  fs.mach = 1.5;
  g.set_freestream(fs);
  double qinf[f3d::kNumVars];
  fs.conservative(qinf);
  EXPECT_DOUBLE_EQ(g.zone(1).q(1, 2, 2, 2), qinf[1]);
}

}  // namespace
namespace {

TEST(MultiZone, ExchangeIsIdempotent) {
  f3d::MultiZoneGrid g({{4, 5, 5}, {4, 5, 5}}, 0.1);
  llp::SplitMix64 rng(17);
  for (int zi = 0; zi < 2; ++zi) {
    auto& z = g.zone(zi);
    for (int l = 0; l < 5; ++l)
      for (int k = 0; k < 5; ++k)
        for (int j = 0; j < 4; ++j)
          for (int n = 0; n < f3d::kNumVars; ++n)
            z.q(n, j, k, l) = rng.uniform(0.5, 1.5);
  }
  g.exchange();
  // Snapshot all ghost values touched by the exchange...
  std::vector<double> first;
  for (int l = 0; l < 5; ++l)
    for (int k = 0; k < 5; ++k)
      for (int n = 0; n < f3d::kNumVars; ++n) {
        first.push_back(g.zone(0).q(n, 4, k, l));
        first.push_back(g.zone(1).q(n, -1, k, l));
      }
  g.exchange();
  std::size_t idx = 0;
  for (int l = 0; l < 5; ++l)
    for (int k = 0; k < 5; ++k)
      for (int n = 0; n < f3d::kNumVars; ++n) {
        EXPECT_DOUBLE_EQ(g.zone(0).q(n, 4, k, l), first[idx++]);
        EXPECT_DOUBLE_EQ(g.zone(1).q(n, -1, k, l), first[idx++]);
      }
}

TEST(MultiZone, ExchangeDoesNotTouchInterior) {
  f3d::MultiZoneGrid g({{4, 5, 5}, {4, 5, 5}}, 0.1);
  f3d::FreeStream fs;
  g.set_freestream(fs);
  g.zone(0).q(0, 2, 2, 2) = 7.0;
  g.exchange();
  EXPECT_DOUBLE_EQ(g.zone(0).q(0, 2, 2, 2), 7.0);
}

}  // namespace
