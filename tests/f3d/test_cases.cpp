#include "f3d/cases.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

TEST(Cases, Paper1MCaseFullScaleDims) {
  const auto c = f3d::paper_1m_case(1.0);
  ASSERT_EQ(c.zones.size(), 3u);
  EXPECT_EQ(c.zones[0].jmax, 15);
  EXPECT_EQ(c.zones[1].jmax, 87);
  EXPECT_EQ(c.zones[2].jmax, 89);
  for (const auto& z : c.zones) {
    EXPECT_EQ(z.kmax, 75);
    EXPECT_EQ(z.lmax, 70);
  }
  // "1-million grid point" case: 15*75*70 + 87*75*70 + 89*75*70.
  EXPECT_NEAR(static_cast<double>(c.total_points()), 1.00e6, 0.01e6);
}

TEST(Cases, Paper59MCaseFullScaleDims) {
  const auto c = f3d::paper_59m_case(1.0);
  ASSERT_EQ(c.zones.size(), 3u);
  EXPECT_EQ(c.zones[0].jmax, 29);
  EXPECT_EQ(c.zones[1].jmax, 173);
  EXPECT_EQ(c.zones[2].jmax, 175);
  for (const auto& z : c.zones) {
    EXPECT_EQ(z.kmax, 450);
    EXPECT_EQ(z.lmax, 350);
  }
  EXPECT_NEAR(static_cast<double>(c.total_points()), 59.4e6, 0.5e6);
}

TEST(Cases, ScalePreservesRatios) {
  const auto c = f3d::paper_1m_case(0.2);
  EXPECT_EQ(c.zones[0].kmax, 15);  // 75 * 0.2
  EXPECT_EQ(c.zones[0].lmax, 14);  // 70 * 0.2
  EXPECT_EQ(c.zones[1].jmax, 17);  // round(87 * 0.2)
}

TEST(Cases, TinyScaleClampsToValidGrid) {
  const auto c = f3d::paper_1m_case(0.01);
  for (const auto& z : c.zones) {
    EXPECT_GE(z.jmax, 6);
    EXPECT_GE(z.kmax, 6);
    EXPECT_GE(z.lmax, 6);
  }
}

TEST(Cases, RejectsBadScale) {
  EXPECT_THROW(f3d::paper_1m_case(0.0), llp::Error);
  EXPECT_THROW(f3d::paper_59m_case(-1.0), llp::Error);
}

TEST(Cases, BuildGridSetsFreestream) {
  const auto c = f3d::wall_compression_case(8);
  auto g = f3d::build_grid(c);
  double qinf[f3d::kNumVars];
  c.freestream.conservative(qinf);
  EXPECT_DOUBLE_EQ(g.zone(0).q(1, 3, 3, 3), qinf[1]);
}

TEST(Cases, MakePeriodicSingleZoneOnly) {
  auto multi = f3d::build_grid(f3d::paper_1m_case(0.08));
  EXPECT_THROW(f3d::make_periodic(multi), llp::Error);
  auto single = f3d::build_grid(f3d::vortex_case(12));
  EXPECT_NO_THROW(f3d::make_periodic(single));
  EXPECT_EQ(single.bcs(0)[f3d::Face::kJMin], f3d::BcType::kPeriodic);
}

TEST(Cases, KminWallApplied) {
  auto g = f3d::build_grid(f3d::wall_compression_case(8));
  f3d::add_kmin_wall(g);
  EXPECT_EQ(g.bcs(0)[f3d::Face::kKMin], f3d::BcType::kSlipWall);
}

TEST(Vortex, ExactDecaysToFreestreamFarAway) {
  f3d::FreeStream fs;
  fs.mach = 0.5;
  f3d::Vortex v;
  const auto far = v.exact(fs, 50.0, 50.0);
  const auto inf = fs.prim();
  EXPECT_NEAR(far.rho, inf.rho, 1e-12);
  EXPECT_NEAR(far.u, inf.u, 1e-12);
  EXPECT_NEAR(far.p, inf.p, 1e-12);
}

TEST(Vortex, CenterIsLowPressure) {
  f3d::FreeStream fs;
  fs.mach = 0.5;
  f3d::Vortex v;
  const auto center = v.exact(fs, 0.0, 0.0);
  EXPECT_LT(center.p, fs.prim().p);
  EXPECT_LT(center.rho, 1.0);
}

TEST(Vortex, VelocityIsTangential) {
  f3d::FreeStream fs;
  fs.mach = 0.0;
  f3d::Vortex v;
  // At (1,0) relative to the center, the perturbation is purely +v.
  const auto s = v.exact(fs, 1.0, 0.0);
  EXPECT_NEAR(s.u, 0.0, 1e-12);
  EXPECT_GT(s.v, 0.0);
}

TEST(Vortex, InitializeThenZeroTimeErrorIsZero) {
  const auto spec = f3d::vortex_case(16);
  auto g = f3d::build_grid(spec);
  f3d::Vortex v;
  v.x0 = 5.0;
  v.y0 = 5.0;
  f3d::initialize_vortex(g, spec.freestream, v);
  EXPECT_NEAR(f3d::vortex_l2_error(g, spec.freestream, v, 0.0, 10.0), 0.0,
              1e-12);
}

TEST(GaussianPulse, PerturbsOnlyNearCenter) {
  const auto spec = f3d::wall_compression_case(12);
  auto g = f3d::build_grid(spec);
  double qinf[f3d::kNumVars];
  spec.freestream.conservative(qinf);
  f3d::add_gaussian_pulse(g, 0.1, 1.5);
  const int mid = 6;
  EXPECT_GT(g.zone(0).q(0, mid, mid, mid), qinf[0] * 1.01);
  EXPECT_NEAR(g.zone(0).q(0, 0, 0, 0), qinf[0], 1e-3);
}

TEST(GaussianPulse, RejectsBadRadius) {
  auto g = f3d::build_grid(f3d::wall_compression_case(8));
  EXPECT_THROW(f3d::add_gaussian_pulse(g, 0.1, 0.0), llp::Error);
}

}  // namespace
