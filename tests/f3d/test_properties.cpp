// Cross-cutting property tests on the numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "f3d/eigen.hpp"
#include "f3d/tridiag.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "util/rng.hpp"

namespace {

using f3d::kNumVars;
using f3d::Prim;

Prim random_state(llp::SplitMix64& rng) {
  Prim s;
  s.rho = rng.uniform(0.3, 2.5);
  s.u = rng.uniform(-1.5, 1.5);
  s.v = rng.uniform(-1.5, 1.5);
  s.w = rng.uniform(-1.5, 1.5);
  s.p = rng.uniform(0.2, 2.0);
  return s;
}

// Euler fluxes are homogeneous of degree one: A(Q) Q = F(Q). This ties the
// eigensystem to the flux with no free parameters.
class EulerHomogeneity : public ::testing::TestWithParam<int> {};

TEST_P(EulerHomogeneity, JacobianTimesStateIsFlux) {
  const int dir = GetParam();
  llp::SplitMix64 rng(97 + dir);
  for (int trial = 0; trial < 100; ++trial) {
    double q[kNumVars], f[kNumVars];
    f3d::to_conservative(random_state(rng), q);
    f3d::flux(dir, q, f);

    double w[kNumVars], lam[kNumVars], aq[kNumVars];
    f3d::apply_left(dir, q, q, w);
    f3d::eigenvalues(dir, q, lam);
    for (int n = 0; n < kNumVars; ++n) w[n] *= lam[n];
    f3d::apply_right(dir, q, w, aq);
    for (int n = 0; n < kNumVars; ++n) {
      EXPECT_NEAR(aq[n], f[n], 1e-10 * (1.0 + std::abs(f[n])))
          << "dir=" << dir << " n=" << n;
    }
  }
}

TEST_P(EulerHomogeneity, FluxScalesLinearlyWithQ) {
  const int dir = GetParam();
  llp::SplitMix64 rng(41 + dir);
  for (int trial = 0; trial < 50; ++trial) {
    double q[kNumVars], qs[kNumVars], f[kNumVars], fs[kNumVars];
    f3d::to_conservative(random_state(rng), q);
    const double alpha = rng.uniform(0.5, 2.0);
    for (int n = 0; n < kNumVars; ++n) qs[n] = alpha * q[n];
    f3d::flux(dir, q, f);
    f3d::flux(dir, qs, fs);
    for (int n = 0; n < kNumVars; ++n) {
      EXPECT_NEAR(fs[n], alpha * f[n], 1e-10 * (1.0 + std::abs(f[n])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDirections, EulerHomogeneity,
                         ::testing::Values(0, 1, 2));

// Thomas solver: verify by multiplying the solution back through the
// original matrix (residual test, independent of the dense reference).
class TridiagResidual : public ::testing::TestWithParam<int> {};

TEST_P(TridiagResidual, SolutionSatisfiesSystem) {
  const int n = GetParam();
  llp::SplitMix64 rng(500 + n);
  std::vector<double> a(n), b(n), c(n), d(n), b0(n), d0(n);
  for (int i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    c[i] = rng.uniform(-1.0, 1.0);
    b[i] = 3.5 + rng.uniform(0.0, 1.0);
    d[i] = rng.uniform(-10.0, 10.0);
    b0[i] = b[i];
    d0[i] = d[i];
  }
  f3d::solve_tridiagonal(a, b, c, d);
  for (int i = 0; i < n; ++i) {
    double lhs = b0[i] * d[i];
    if (i > 0) lhs += a[i] * d[i - 1];
    if (i < n - 1) lhs += c[i] * d[i + 1];
    EXPECT_NEAR(lhs, d0[i], 1e-9 * (1.0 + std::abs(d0[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagResidual,
                         ::testing::Values(2, 3, 9, 33, 129, 450));

// CFL robustness sweep: the flux-split implicit operator must stay stable
// across the whole range the implicit scheme is sold for.
class CflSweep : public ::testing::TestWithParam<double> {};

TEST_P(CflSweep, MultiZoneRunStaysFiniteAndConverges) {
  const double cfl = GetParam();
  auto spec = f3d::paper_1m_case(0.09);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.08, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = cfl;
  cfg.region_prefix = "prop.cfl" + std::to_string(static_cast<int>(cfl * 10));
  f3d::Solver s(grid, cfg);
  double first = 0.0;
  for (int i = 0; i < 30; ++i) {
    s.step();
    if (i == 0) first = s.residual();
    ASSERT_TRUE(std::isfinite(s.residual())) << "cfl=" << cfl << " i=" << i;
  }
  EXPECT_LT(s.residual(), first) << "cfl=" << cfl;
}

INSTANTIATE_TEST_SUITE_P(Range, CflSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0, 8.0));

// Zone-splitting consistency: the kGhost-deep interface exchange makes the
// EXPLICIT right-hand side exact across zonal cuts — the same field split
// into two J zones must produce bitwise-identical flux divergences.
// (The implicit operator legitimately differs at zonal boundaries: zonal
// approximate factorization treats interfaces explicitly, which perturbs
// the convergence path but not the converged solution — the classic zonal
// scheme trade-off the paper's multi-zone F3D shares.)
TEST(ZoneSplitting, ExchangeMakesRhsExactAcrossTheCut) {
  const double h = 0.1;
  f3d::FreeStream fs;
  fs.mach = 2.0;

  auto rhs_field = [&](std::vector<f3d::ZoneDims> dims) {
    f3d::MultiZoneGrid grid(dims, h);
    grid.set_freestream(fs);
    int j0 = 0;
    for (int z = 0; z < grid.num_zones(); ++z) {
      auto& zn = grid.zone(z);
      for (int l = 0; l < zn.lmax(); ++l)
        for (int k = 0; k < zn.kmax(); ++k)
          for (int j = 0; j < zn.jmax(); ++j) {
            f3d::Prim s = f3d::to_prim(zn.q_point(j, k, l));
            const double bump =
                1.0 + 0.05 * std::sin(0.9 * (j0 + j) + 1.1 * k + 1.7 * l);
            s.rho *= bump;
            s.p *= std::pow(bump, f3d::kGamma);
            f3d::to_conservative(s, zn.q_point(j, k, l));
          }
      j0 += zn.jmax();
    }
    for (int z = 0; z < grid.num_zones(); ++z) {
      f3d::apply_boundary_conditions(grid.zone(z), grid.bcs(z), fs);
    }
    grid.exchange();
    std::vector<double> field;
    const int ng = f3d::Zone::kGhost;
    for (int z = 0; z < grid.num_zones(); ++z) {
      auto& zn = grid.zone(z);
      llp::Array4D<double> rhs(kNumVars, zn.jmax() + 2 * ng,
                               zn.kmax() + 2 * ng, zn.lmax() + 2 * ng);
      for (int l = 0; l < zn.lmax(); ++l) {
        f3d::compute_rhs_plane(zn, l, 0.05, f3d::RhsConfig{}, rhs);
      }
      for (int j = 0; j < zn.jmax(); ++j)
        for (int k = 0; k < zn.kmax(); ++k)
          for (int l = 0; l < zn.lmax(); ++l)
            for (int n = 0; n < kNumVars; ++n)
              field.push_back(rhs(n, j + ng, k + ng, l + ng));
    }
    return field;
  };

  const auto one = rhs_field({{16, 8, 8}});
  const auto two = rhs_field({{7, 8, 8}, {9, 8, 8}});
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_DOUBLE_EQ(one[i], two[i]) << i;
  }
}

}  // namespace
