// The engine registry: parse/print round trips, factory/registry
// agreement, wire decoding, the lane-batched tridiagonal kernel's parity
// with the scalar solver, and the engine axis of the autotuner.
#include "f3d/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine_select.hpp"
#include "f3d/tridiag.hpp"
#include "tune/tuner.hpp"
#include "util/error.hpp"

namespace {

TEST(EngineRegistry, RowsAreOrderedAndDistinct) {
  const auto reg = f3d::engines();
  ASSERT_EQ(reg.size(), static_cast<std::size_t>(f3d::kNumEngines));
  std::set<std::string_view> names;
  for (int i = 0; i < f3d::kNumEngines; ++i) {
    EXPECT_EQ(static_cast<int>(reg[i].kind), i) << "registry out of order";
    EXPECT_FALSE(reg[i].name.empty());
    EXPECT_FALSE(reg[i].summary.empty());
    names.insert(reg[i].name);
  }
  EXPECT_EQ(names.size(), reg.size()) << "duplicate engine name";
}

TEST(EngineRegistry, LegacySpellingsAreByteStable) {
  // These strings are on the wire in CLI flags, Scenario specs, serve job
  // JSON, and TuningDb files. They must never drift.
  EXPECT_EQ(f3d::engine_name(f3d::EngineKind::kPlaneVector), "vector");
  EXPECT_EQ(f3d::engine_name(f3d::EngineKind::kPencilScalar), "risc");
  EXPECT_EQ(f3d::engine_name(f3d::EngineKind::kPencilSimd), "simd");
  EXPECT_EQ(f3d::engine_names_usage(), "vector|risc|simd");
}

TEST(EngineRegistry, ParsePrintRoundTripsEveryEngine) {
  for (const f3d::EngineInfo& info : f3d::engines()) {
    f3d::EngineKind back;
    ASSERT_TRUE(parse_engine(f3d::engine_name(info.kind), &back))
        << info.name;
    EXPECT_EQ(back, info.kind);
  }
}

TEST(EngineRegistry, ParseRejectsUnknownAndLeavesOutAlone) {
  f3d::EngineKind out = f3d::EngineKind::kPencilScalar;
  EXPECT_FALSE(f3d::parse_engine("cray", &out));
  EXPECT_FALSE(f3d::parse_engine("", &out));
  EXPECT_FALSE(f3d::parse_engine("RISC", &out));  // case-sensitive
  EXPECT_FALSE(f3d::parse_engine("simd ", &out));
  EXPECT_EQ(out, f3d::EngineKind::kPencilScalar);
}

TEST(EngineRegistry, FactoryAgreesWithRegistry) {
  for (const f3d::EngineInfo& info : f3d::engines()) {
    const auto engine = f3d::make_engine(info.kind);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), info.kind);
    EXPECT_EQ(engine->name(), info.name);
    EXPECT_EQ(engine->name(), f3d::engine_name(info.kind));
  }
}

TEST(EngineRegistry, WireRoundTripAndRejection) {
  for (const f3d::EngineInfo& info : f3d::engines()) {
    f3d::EngineKind back;
    ASSERT_TRUE(
        f3d::engine_from_wire(static_cast<std::uint32_t>(info.kind), &back));
    EXPECT_EQ(back, info.kind);
  }
  f3d::EngineKind out;
  EXPECT_FALSE(f3d::engine_from_wire(f3d::kNumEngines, &out));
  EXPECT_FALSE(f3d::engine_from_wire(0xffffffffu, &out));
}

TEST(EngineRegistry, WireValuesMatchLegacySweepModeEncoding) {
  // The cluster protocol shipped 0 = vector, 1 = risc before the registry
  // existed; checkpointed INIT frames must keep decoding.
  f3d::EngineKind k;
  ASSERT_TRUE(f3d::engine_from_wire(0, &k));
  EXPECT_EQ(k, f3d::EngineKind::kPlaneVector);
  ASSERT_TRUE(f3d::engine_from_wire(1, &k));
  EXPECT_EQ(k, f3d::EngineKind::kPencilScalar);
}

TEST(EngineRegistry, CapabilityFlags) {
  EXPECT_FALSE(f3d::engine_info(f3d::EngineKind::kPlaneVector).parallel_outer);
  EXPECT_TRUE(f3d::engine_info(f3d::EngineKind::kPencilScalar).parallel_outer);
  EXPECT_TRUE(f3d::engine_info(f3d::EngineKind::kPencilSimd).parallel_outer);
  // Only the SIMD engine fuses multiply-adds; the other two must stay
  // bitwise-comparable in the differential oracle.
  EXPECT_FALSE(f3d::engine_info(f3d::EngineKind::kPlaneVector).fma_lanes);
  EXPECT_FALSE(f3d::engine_info(f3d::EngineKind::kPencilScalar).fma_lanes);
  EXPECT_TRUE(f3d::engine_info(f3d::EngineKind::kPencilSimd).fma_lanes);
}

TEST(EngineRegistry, FallbackIsTheSerialBaseline) {
  for (const f3d::EngineInfo& info : f3d::engines()) {
    EXPECT_EQ(f3d::engine_fallback_for(info.kind),
              f3d::EngineKind::kPlaneVector);
  }
}

TEST(EngineRegistry, InfoThrowsOnBogusKind) {
  EXPECT_THROW(f3d::engine_info(static_cast<f3d::EngineKind>(99)),
               llp::Error);
}

// ---- lane-batched tridiagonal kernel parity ------------------------------

void fill_system(int n, int lane, std::vector<double>& a,
                 std::vector<double>& b, std::vector<double>& c,
                 std::vector<double>& d) {
  a.resize(n), b.resize(n), c.resize(n), d.resize(n);
  for (int i = 0; i < n; ++i) {
    a[i] = 1.0 + 0.01 * ((i + lane) % 7);
    c[i] = 1.0 - 0.01 * ((i + 2 * lane) % 5);
    b[i] = 4.0 + 0.1 * (i % 3) + 0.05 * lane;  // diagonally dominant
    d[i] = std::sin(0.3 * i + lane);
  }
}

TEST(TridiagLanes, MatchesScalarSolverPerLane) {
  constexpr int W = f3d::kTridiagLaneWidth;
  for (int n : {1, 2, 3, 7, 32, 97}) {
    std::vector<double> a[W], b[W], c[W], d[W];
    std::vector<double> la(static_cast<std::size_t>(n) * W);
    std::vector<double> lb(la.size()), lc(la.size()), ld(la.size());
    for (int w = 0; w < W; ++w) {
      fill_system(n, w, a[w], b[w], c[w], d[w]);
      for (int i = 0; i < n; ++i) {
        la[static_cast<std::size_t>(i) * W + w] = a[w][i];
        lb[static_cast<std::size_t>(i) * W + w] = b[w][i];
        lc[static_cast<std::size_t>(i) * W + w] = c[w][i];
        ld[static_cast<std::size_t>(i) * W + w] = d[w][i];
      }
    }
    f3d::solve_tridiagonal_lanes(la.data(), lb.data(), lc.data(), ld.data(),
                                 n);
    for (int w = 0; w < W; ++w) {
      f3d::solve_tridiagonal(a[w], b[w], c[w], d[w]);
      for (int i = 0; i < n; ++i) {
        // FMA rounding is the only permitted divergence: O(eps) relative.
        EXPECT_NEAR(ld[static_cast<std::size_t>(i) * W + w], d[w][i],
                    1e-12 * (1.0 + std::abs(d[w][i])))
            << "n " << n << " lane " << w << " i " << i;
      }
    }
  }
}

TEST(TridiagLanes, KernelNameIsRegistered) {
  const std::string_view k = f3d::tridiag_lanes_kernel();
  EXPECT_TRUE(k == "avx2" || k == "generic") << k;
#if defined(LLP_SIMD_FORCE_SCALAR)
  EXPECT_EQ(k, "generic");
#endif
}

// ---- engine axis of the autotuner ----------------------------------------

TEST(EngineSelect, PicksARegisteredEngineAndPersistsIt) {
  llp::Runtime rt(1);
  llp::RuntimeScope scope(rt);
  const auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "engsel.test";

  llp::tune::Tuner tuner;
  const f3d::EngineChoice probed =
      f3d::select_engine(grid, cfg, &tuner, /*repeats=*/1);
  EXPECT_FALSE(probed.from_db);
  EXPECT_GT(probed.seconds, 0.0);
  f3d::EngineKind parsed;
  ASSERT_TRUE(
      f3d::parse_engine(f3d::engine_name(probed.kind), &parsed));
  EXPECT_EQ(parsed, probed.kind);

  // Second call must short-circuit on the committed DB row: same decision,
  // no re-probe (from_db flips).
  const f3d::EngineChoice cached =
      f3d::select_engine(grid, cfg, &tuner, /*repeats=*/1);
  EXPECT_TRUE(cached.from_db);
  EXPECT_EQ(cached.kind, probed.kind);
  EXPECT_EQ(cached.seconds, probed.seconds);

  // And the decision survives a save/load round trip through the text DB.
  const auto path = std::filesystem::temp_directory_path() /
                    "llp_engine_select_roundtrip.tsv";
  tuner.save_db(path.string());
  llp::tune::Tuner fresh;
  ASSERT_TRUE(fresh.load_db(path.string()));
  const f3d::EngineChoice loaded =
      f3d::select_engine(grid, cfg, &fresh, /*repeats=*/1);
  EXPECT_TRUE(loaded.from_db);
  EXPECT_EQ(loaded.kind, probed.kind);
  std::filesystem::remove(path);
}

TEST(EngineSelect, RunsWithoutATuner) {
  llp::Runtime rt(1);
  llp::RuntimeScope scope(rt);
  const auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "engsel.notuner";
  const f3d::EngineChoice c = f3d::select_engine(grid, cfg, nullptr, 1);
  EXPECT_FALSE(c.from_db);
  EXPECT_GT(c.seconds, 0.0);
}

}  // namespace
