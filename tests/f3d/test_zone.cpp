#include "f3d/zone.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using f3d::FreeStream;
using f3d::Zone;
using f3d::ZoneDims;

TEST(Zone, DimsAndPoints) {
  Zone z({4, 5, 6}, 0.1, 0.1, 0.1);
  EXPECT_EQ(z.jmax(), 4);
  EXPECT_EQ(z.kmax(), 5);
  EXPECT_EQ(z.lmax(), 6);
  EXPECT_EQ(z.interior_points(), 120u);
}

TEST(Zone, RejectsBadDims) {
  EXPECT_THROW(Zone({0, 5, 5}, 0.1, 0.1, 0.1), llp::Error);
  EXPECT_THROW(Zone({5, 5, 5}, 0.0, 0.1, 0.1), llp::Error);
}

TEST(Zone, GhostIndicesAddressDistinctStorage) {
  Zone z({3, 3, 3}, 1.0, 1.0, 1.0);
  z.q(0, -2, 0, 0) = 1.0;
  z.q(0, -1, 0, 0) = 2.0;
  z.q(0, 0, 0, 0) = 3.0;
  z.q(0, 3, 0, 0) = 4.0;
  z.q(0, 4, 0, 0) = 5.0;
  EXPECT_DOUBLE_EQ(z.q(0, -2, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(z.q(0, -1, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(z.q(0, 0, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(z.q(0, 3, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(z.q(0, 4, 0, 0), 5.0);
}

TEST(Zone, CellCenterCoordinates) {
  Zone z({4, 4, 4}, 0.5, 0.25, 1.0, 10.0, 0.0, -2.0);
  EXPECT_DOUBLE_EQ(z.x(0), 10.25);
  EXPECT_DOUBLE_EQ(z.x(1), 10.75);
  EXPECT_DOUBLE_EQ(z.y(2), 0.625);
  EXPECT_DOUBLE_EQ(z.z(0), -1.5);
}

TEST(Zone, GhostCoordinatesExtendGrid) {
  Zone z({4, 4, 4}, 0.5, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(z.x(-1), z.x(0) - 0.5);
  EXPECT_DOUBLE_EQ(z.x(4), z.x(3) + 0.5);
}

TEST(Zone, SetFreestreamFillsGhostsToo) {
  Zone z({3, 3, 3}, 1.0, 1.0, 1.0);
  FreeStream fs;
  fs.mach = 2.0;
  z.set_freestream(fs);
  double qinf[f3d::kNumVars];
  fs.conservative(qinf);
  for (int n = 0; n < f3d::kNumVars; ++n) {
    EXPECT_DOUBLE_EQ(z.q(n, -2, -2, -2), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, 4, 4, 4), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, 1, 1, 1), qinf[n]);
  }
}

TEST(Zone, QPointMatchesComponentAccess) {
  Zone z({3, 3, 3}, 1.0, 1.0, 1.0);
  double* p = z.q_point(1, 2, 0);
  p[3] = 42.0;
  EXPECT_DOUBLE_EQ(z.q(3, 1, 2, 0), 42.0);
}

TEST(ZoneDims, PointsProduct) {
  ZoneDims d{15, 75, 70};
  EXPECT_EQ(d.points(), 78750u);
}

}  // namespace
