#include "f3d/gas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using f3d::FreeStream;
using f3d::kGamma;
using f3d::kNumVars;
using f3d::Prim;

Prim random_state(llp::SplitMix64& rng) {
  Prim s;
  s.rho = rng.uniform(0.2, 3.0);
  s.u = rng.uniform(-2.0, 2.0);
  s.v = rng.uniform(-2.0, 2.0);
  s.w = rng.uniform(-2.0, 2.0);
  s.p = rng.uniform(0.1, 3.0);
  return s;
}

TEST(Gas, PrimConservativeRoundTrip) {
  llp::SplitMix64 rng(11);
  for (int i = 0; i < 200; ++i) {
    const Prim s = random_state(rng);
    double q[kNumVars];
    f3d::to_conservative(s, q);
    const Prim back = f3d::to_prim(q);
    EXPECT_NEAR(back.rho, s.rho, 1e-13);
    EXPECT_NEAR(back.u, s.u, 1e-13);
    EXPECT_NEAR(back.v, s.v, 1e-13);
    EXPECT_NEAR(back.w, s.w, 1e-13);
    EXPECT_NEAR(back.p, s.p, 1e-12);
  }
}

TEST(Gas, PressureOfKnownState) {
  // rho=1, V=0, E = p/(g-1): pressure recovers exactly.
  double q[kNumVars] = {1.0, 0.0, 0.0, 0.0, 2.5};
  EXPECT_NEAR(f3d::pressure(q), (kGamma - 1.0) * 2.5, 1e-15);
}

TEST(Gas, SoundSpeedOfFreeStreamIsOne) {
  // The nondimensionalization fixes a_inf = 1.
  FreeStream fs;
  fs.mach = 2.0;
  double q[kNumVars];
  fs.conservative(q);
  EXPECT_NEAR(f3d::sound_speed(q), 1.0, 1e-13);
}

TEST(Gas, FreeStreamVelocityMagnitudeIsMach) {
  for (double mach : {0.5, 1.0, 2.0, 3.0}) {
    FreeStream fs;
    fs.mach = mach;
    fs.alpha_deg = 2.0;
    const Prim s = fs.prim();
    const double v = std::sqrt(s.u * s.u + s.v * s.v + s.w * s.w);
    EXPECT_NEAR(v, mach, 1e-13) << mach;
  }
}

TEST(Gas, AlphaPitchesIntoY) {
  FreeStream fs;
  fs.mach = 1.0;
  fs.alpha_deg = 90.0;
  const Prim s = fs.prim();
  EXPECT_NEAR(s.u, 0.0, 1e-13);
  EXPECT_NEAR(s.v, 1.0, 1e-13);
}

TEST(Gas, BetaYawsIntoZ) {
  FreeStream fs;
  fs.mach = 1.0;
  fs.beta_deg = 90.0;
  const Prim s = fs.prim();
  EXPECT_NEAR(s.w, 1.0, 1e-13);
}

TEST(Gas, FluxMassComponentIsMomentum) {
  llp::SplitMix64 rng(5);
  for (int i = 0; i < 50; ++i) {
    const Prim s = random_state(rng);
    double q[kNumVars], f[kNumVars];
    f3d::to_conservative(s, q);
    for (int dir = 0; dir < 3; ++dir) {
      f3d::flux(dir, q, f);
      EXPECT_NEAR(f[0], q[1 + dir], 1e-12);
    }
  }
}

TEST(Gas, FluxOfStagnantGasIsPurePressure) {
  Prim s;
  s.rho = 1.0;
  s.u = s.v = s.w = 0.0;
  s.p = 2.0;
  double q[kNumVars], f[kNumVars];
  f3d::to_conservative(s, q);
  f3d::flux(0, q, f);
  EXPECT_NEAR(f[0], 0.0, 1e-15);
  EXPECT_NEAR(f[1], 2.0, 1e-15);  // pressure in the normal momentum slot
  EXPECT_NEAR(f[2], 0.0, 1e-15);
  EXPECT_NEAR(f[3], 0.0, 1e-15);
  EXPECT_NEAR(f[4], 0.0, 1e-15);
}

TEST(Gas, FluxDirectionsPermuteConsistently) {
  // A state with velocity along y must produce in the y-flux what a
  // velocity along x produces in the x-flux (with momenta permuted).
  Prim sx;
  sx.u = 1.3;
  sx.v = 0.0;
  sx.w = 0.0;
  sx.rho = 1.1;
  sx.p = 0.9;
  Prim sy = sx;
  sy.u = 0.0;
  sy.v = 1.3;
  double qx[kNumVars], qy[kNumVars], fx[kNumVars], fy[kNumVars];
  f3d::to_conservative(sx, qx);
  f3d::to_conservative(sy, qy);
  f3d::flux(0, qx, fx);
  f3d::flux(1, qy, fy);
  EXPECT_NEAR(fx[0], fy[0], 1e-13);
  EXPECT_NEAR(fx[1], fy[2], 1e-13);  // normal momentum slots
  EXPECT_NEAR(fx[4], fy[4], 1e-13);
}

TEST(Gas, SpectralRadiusIsVelocityPlusSound) {
  FreeStream fs;
  fs.mach = 2.0;
  double q[kNumVars];
  fs.conservative(q);
  EXPECT_NEAR(f3d::spectral_radius(0, q), 2.0 + 1.0, 1e-10);
}

}  // namespace
