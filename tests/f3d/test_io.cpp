#include "f3d/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "util/error.hpp"

namespace {

TEST(SolutionIo, RoundTripIsBitwise) {
  auto spec = f3d::paper_1m_case(0.08);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.07, 2.0);
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  auto restored = f3d::build_grid(spec);
  f3d::read_solution(stream, restored);
  EXPECT_EQ(f3d::checksum(grid), f3d::checksum(restored));
  EXPECT_DOUBLE_EQ(f3d::linf_diff(grid, restored), 0.0);
}

TEST(SolutionIo, RejectsWrongMagic) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream("NOTQ 1\n6 6 6\n");
  EXPECT_THROW(f3d::read_solution(stream, grid), llp::Error);
}

TEST(SolutionIo, RejectsZoneCountMismatch) {
  auto one = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, one);
  auto three = f3d::build_grid(f3d::paper_1m_case(0.08));
  EXPECT_THROW(f3d::read_solution(stream, three), llp::Error);
}

TEST(SolutionIo, RejectsDimensionMismatch) {
  auto small = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, small);
  auto big = f3d::build_grid(f3d::wall_compression_case(8));
  EXPECT_THROW(f3d::read_solution(stream, big), llp::Error);
}

TEST(SolutionIo, RejectsTruncatedPayload) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(f3d::read_solution(cut, grid), llp::Error);
}

TEST(SolutionIo, MalformedInputThrowsTypedIoError) {
  // Hardened loaders throw llp::IoError specifically, so recovery layers
  // can tell "bad file" from programming errors.
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream bad_magic("NOTQ 1\n6 6 6\n");
  EXPECT_THROW(f3d::read_solution(bad_magic, grid), llp::IoError);
  std::stringstream empty("");
  EXPECT_THROW(f3d::read_solution(empty, grid), llp::IoError);
  EXPECT_THROW(f3d::load_solution("/nonexistent/llp.q", grid), llp::IoError);
}

TEST(SolutionIo, RejectsImplausibleZoneCountAndDims) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  // A header claiming a million zones is corruption, not a big file — the
  // loader must refuse before allocating anything.
  std::stringstream zones("F3DQ1 1000000\n");
  EXPECT_THROW(f3d::read_solution(zones, grid), llp::IoError);
  std::stringstream negative("F3DQ1 -2\n");
  EXPECT_THROW(f3d::read_solution(negative, grid), llp::IoError);
  std::stringstream dims("F3DQ1 1\n6 6 999999999\n");
  EXPECT_THROW(f3d::read_solution(dims, grid), llp::IoError);
  std::stringstream zero_dim("F3DQ1 1\n6 0 6\n");
  EXPECT_THROW(f3d::read_solution(zero_dim, grid), llp::IoError);
}

TEST(SolutionIo, RejectsNonFinitePayload) {
  auto spec = f3d::wall_compression_case(6);
  auto grid = f3d::build_grid(spec);
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  std::string data = stream.str();
  // Poison one payload double with a quiet NaN.
  const double nan = std::nan("");
  std::memcpy(data.data() + data.size() - 64, &nan, sizeof(nan));
  std::stringstream poisoned(data);
  auto target = f3d::build_grid(spec);
  EXPECT_THROW(f3d::read_solution(poisoned, target), llp::IoError);
}

TEST(SolutionIo, RejectedLoadDoesNotMutateTheGrid) {
  auto spec = f3d::wall_compression_case(6);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  std::string data = stream.str();

  auto target = f3d::build_grid(spec);
  const std::uint64_t before = f3d::checksum(target);

  // Truncated mid-payload: the header and the first values are readable,
  // but nothing may land in the grid.
  std::stringstream cut(data.substr(0, data.size() - 100));
  EXPECT_THROW(f3d::read_solution(cut, target), llp::IoError);
  EXPECT_EQ(f3d::checksum(target), before);

  // NaN in the last zone values: everything validated up front, still no
  // partial restore.
  const double nan = std::nan("");
  std::memcpy(data.data() + data.size() - 8, &nan, sizeof(nan));
  std::stringstream poisoned(data);
  EXPECT_THROW(f3d::read_solution(poisoned, target), llp::IoError);
  EXPECT_EQ(f3d::checksum(target), before);
}

TEST(SolutionIo, PackUnpackRoundTripsCanonicalOrder) {
  auto spec = f3d::wall_compression_case(6);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  std::vector<double> buf;
  f3d::pack_zone_interior(grid.zone(0), buf);
  EXPECT_EQ(buf.size(), grid.zone(0).interior_points() *
                            static_cast<std::size_t>(f3d::kNumVars));
  auto target = f3d::build_grid(spec);
  f3d::unpack_zone_interior(buf, target.zone(0));
  EXPECT_DOUBLE_EQ(f3d::linf_diff(grid, target), 0.0);

  std::vector<double> wrong(buf.begin(), buf.end() - 1);
  EXPECT_THROW(f3d::unpack_zone_interior(wrong, target.zone(0)),
               llp::IoError);
  buf[3] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(f3d::unpack_zone_interior(buf, target.zone(0)), llp::IoError);
}

TEST(SolutionIo, CheckpointRestartContinuesExactly) {
  // The §6 discipline applied to restart: run(10) must equal
  // run(5) + save + load-into-fresh-grid + run(5), bit for bit.
  auto spec = f3d::wall_compression_case(10);

  auto straight = f3d::build_grid(spec);
  f3d::add_kmin_wall(straight);
  f3d::add_gaussian_pulse(straight, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "io.straight";
  f3d::Solver solver_a(straight, cfg);
  solver_a.run(10);

  auto first = f3d::build_grid(spec);
  f3d::add_kmin_wall(first);
  f3d::add_gaussian_pulse(first, 0.05, 2.0);
  cfg.region_prefix = "io.first";
  f3d::Solver solver_b(first, cfg);
  solver_b.run(5);
  std::stringstream checkpoint;
  f3d::write_solution(checkpoint, first);

  auto resumed = f3d::build_grid(spec);
  f3d::add_kmin_wall(resumed);
  f3d::read_solution(checkpoint, resumed);
  cfg.region_prefix = "io.resumed";
  f3d::Solver solver_c(resumed, cfg);
  solver_c.run(5);

  EXPECT_EQ(f3d::checksum(straight), f3d::checksum(resumed));
}

TEST(SolutionIo, PlaneCsvHasHeaderAndRows) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream out;
  f3d::write_plane_csv(out, grid.zone(0), 2);
  const std::string s = out.str();
  EXPECT_EQ(s.rfind("x,z,rho,u,v,w,p\n", 0), 0u);
  // 6x6 data rows + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 37);
}

TEST(SolutionIo, PlaneCsvRejectsBadPlane) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream out;
  EXPECT_THROW(f3d::write_plane_csv(out, grid.zone(0), 6), llp::Error);
}

}  // namespace
namespace {

TEST(SolutionIo, FilePathWrappersRoundTrip) {
  const std::string path = ::testing::TempDir() + "/llp_io_roundtrip.q";
  auto spec = f3d::wall_compression_case(7);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.06, 2.0);
  f3d::save_solution(path, grid);
  auto restored = f3d::build_grid(spec);
  f3d::load_solution(path, restored);
  EXPECT_EQ(f3d::checksum(grid), f3d::checksum(restored));
  std::remove(path.c_str());
}

TEST(SolutionIo, MissingFileThrows) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  EXPECT_THROW(f3d::load_solution("/nonexistent/llp.q", grid), llp::Error);
}

}  // namespace
