#include "f3d/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "util/error.hpp"

namespace {

TEST(SolutionIo, RoundTripIsBitwise) {
  auto spec = f3d::paper_1m_case(0.08);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.07, 2.0);
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  auto restored = f3d::build_grid(spec);
  f3d::read_solution(stream, restored);
  EXPECT_EQ(f3d::checksum(grid), f3d::checksum(restored));
  EXPECT_DOUBLE_EQ(f3d::linf_diff(grid, restored), 0.0);
}

TEST(SolutionIo, RejectsWrongMagic) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream("NOTQ 1\n6 6 6\n");
  EXPECT_THROW(f3d::read_solution(stream, grid), llp::Error);
}

TEST(SolutionIo, RejectsZoneCountMismatch) {
  auto one = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, one);
  auto three = f3d::build_grid(f3d::paper_1m_case(0.08));
  EXPECT_THROW(f3d::read_solution(stream, three), llp::Error);
}

TEST(SolutionIo, RejectsDimensionMismatch) {
  auto small = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, small);
  auto big = f3d::build_grid(f3d::wall_compression_case(8));
  EXPECT_THROW(f3d::read_solution(stream, big), llp::Error);
}

TEST(SolutionIo, RejectsTruncatedPayload) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream stream;
  f3d::write_solution(stream, grid);
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(f3d::read_solution(cut, grid), llp::Error);
}

TEST(SolutionIo, CheckpointRestartContinuesExactly) {
  // The §6 discipline applied to restart: run(10) must equal
  // run(5) + save + load-into-fresh-grid + run(5), bit for bit.
  auto spec = f3d::wall_compression_case(10);

  auto straight = f3d::build_grid(spec);
  f3d::add_kmin_wall(straight);
  f3d::add_gaussian_pulse(straight, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "io.straight";
  f3d::Solver solver_a(straight, cfg);
  solver_a.run(10);

  auto first = f3d::build_grid(spec);
  f3d::add_kmin_wall(first);
  f3d::add_gaussian_pulse(first, 0.05, 2.0);
  cfg.region_prefix = "io.first";
  f3d::Solver solver_b(first, cfg);
  solver_b.run(5);
  std::stringstream checkpoint;
  f3d::write_solution(checkpoint, first);

  auto resumed = f3d::build_grid(spec);
  f3d::add_kmin_wall(resumed);
  f3d::read_solution(checkpoint, resumed);
  cfg.region_prefix = "io.resumed";
  f3d::Solver solver_c(resumed, cfg);
  solver_c.run(5);

  EXPECT_EQ(f3d::checksum(straight), f3d::checksum(resumed));
}

TEST(SolutionIo, PlaneCsvHasHeaderAndRows) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream out;
  f3d::write_plane_csv(out, grid.zone(0), 2);
  const std::string s = out.str();
  EXPECT_EQ(s.rfind("x,z,rho,u,v,w,p\n", 0), 0u);
  // 6x6 data rows + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 37);
}

TEST(SolutionIo, PlaneCsvRejectsBadPlane) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  std::stringstream out;
  EXPECT_THROW(f3d::write_plane_csv(out, grid.zone(0), 6), llp::Error);
}

}  // namespace
namespace {

TEST(SolutionIo, FilePathWrappersRoundTrip) {
  const std::string path = ::testing::TempDir() + "/llp_io_roundtrip.q";
  auto spec = f3d::wall_compression_case(7);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.06, 2.0);
  f3d::save_solution(path, grid);
  auto restored = f3d::build_grid(spec);
  f3d::load_solution(path, restored);
  EXPECT_EQ(f3d::checksum(grid), f3d::checksum(restored));
  std::remove(path.c_str());
}

TEST(SolutionIo, MissingFileThrows) {
  auto grid = f3d::build_grid(f3d::wall_compression_case(6));
  EXPECT_THROW(f3d::load_solution("/nonexistent/llp.q", grid), llp::Error);
}

}  // namespace
