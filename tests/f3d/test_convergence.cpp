// Accuracy and stability property tests on the isentropic vortex.
#include <gtest/gtest.h>

#include <cmath>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"

namespace {

// Advect the vortex for a fixed physical time on an n^3-ish grid and return
// the density L2 error against the exact translated solution.
double vortex_error(int n, double target_time, f3d::EngineKind engine) {
  const auto spec = f3d::vortex_case(n);
  auto grid = f3d::build_grid(spec);
  f3d::make_periodic(grid);
  f3d::Vortex v;
  v.x0 = 5.0;
  v.y0 = 5.0;
  f3d::initialize_vortex(grid, spec.freestream, v);

  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = 0.8;
  cfg.engine = engine;
  cfg.region_prefix = "conv.n" + std::to_string(n);
  f3d::Solver s(grid, cfg);

  // Integer step count closest to the target time.
  const int steps = std::max(1, static_cast<int>(target_time / s.dt()));
  s.run(steps);
  return f3d::vortex_l2_error(grid, spec.freestream, v,
                              steps * s.dt(), 10.0);
}

TEST(Convergence, ErrorShrinksWithRefinement) {
  const double coarse = vortex_error(12, 1.0, f3d::EngineKind::kPencilScalar);
  const double fine = vortex_error(24, 1.0, f3d::EngineKind::kPencilScalar);
  EXPECT_LT(fine, coarse * 0.75);
}

TEST(Convergence, ObservedOrderAtLeastFirst) {
  const double e1 = vortex_error(12, 1.0, f3d::EngineKind::kPencilScalar);
  const double e2 = vortex_error(24, 1.0, f3d::EngineKind::kPencilScalar);
  const double order = std::log2(e1 / e2);
  EXPECT_GE(order, 0.9);
}

TEST(Convergence, AllEnginesConvergeIdentically) {
  // "No changes to the algorithm or the convergence properties": every
  // registered engine lands on the same discretization error (the SIMD
  // engine to FMA rounding, which 1e-10 relative comfortably covers).
  const double er = vortex_error(12, 0.5, f3d::EngineKind::kPencilScalar);
  const double ev = vortex_error(12, 0.5, f3d::EngineKind::kPlaneVector);
  const double es = vortex_error(12, 0.5, f3d::EngineKind::kPencilSimd);
  EXPECT_NEAR(er, ev, 1e-10 * (1.0 + er));
  EXPECT_NEAR(er, es, 1e-10 * (1.0 + er));
}

TEST(Stability, SurvivesLargeCfl) {
  // Implicit scheme: stable at CFL well above the explicit limit.
  const auto spec = f3d::vortex_case(12);
  auto grid = f3d::build_grid(spec);
  f3d::make_periodic(grid);
  f3d::Vortex v;
  v.x0 = 5.0;
  v.y0 = 5.0;
  f3d::initialize_vortex(grid, spec.freestream, v);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = 5.0;
  cfg.region_prefix = "conv.cfl5";
  f3d::Solver s(grid, cfg);
  s.run(30);
  // Solution remains finite and physical.
  for (int l = 0; l < grid.zone(0).lmax(); ++l)
    for (int k = 0; k < grid.zone(0).kmax(); ++k)
      for (int j = 0; j < grid.zone(0).jmax(); ++j) {
        const double* q = grid.zone(0).q_point(j, k, l);
        ASSERT_TRUE(std::isfinite(q[0]));
        ASSERT_GT(q[0], 0.0);
        ASSERT_GT(f3d::pressure(q), 0.0);
      }
}

TEST(Stability, SupersonicMultiZoneLongRun) {
  const auto spec = f3d::paper_1m_case(0.09);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.1, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "conv.mz";
  f3d::Solver s(grid, cfg);
  f3d::RunHistory h;
  for (int i = 0; i < 40; ++i) {
    s.step();
    h.record(s.residual(), 0);
    ASSERT_TRUE(std::isfinite(s.residual())) << i;
  }
  EXPECT_TRUE(f3d::residual_decreasing(h, 0.6));
}

}  // namespace
