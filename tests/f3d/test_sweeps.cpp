#include "f3d/sweeps.hpp"

#include <gtest/gtest.h>

#include "core/llp.hpp"
#include "f3d/rhs.hpp"
#include "util/rng.hpp"

namespace {

using f3d::RiscSweeps;
using f3d::VectorSweeps;
using f3d::Zone;

void randomize(Zone& z, llp::Array4D<double>& rhs, std::uint64_t seed) {
  llp::SplitMix64 rng(seed);
  const int ng = Zone::kGhost;
  for (int l = -ng; l < z.lmax() + ng; ++l)
    for (int k = -ng; k < z.kmax() + ng; ++k)
      for (int j = -ng; j < z.jmax() + ng; ++j) {
        f3d::Prim s;
        s.rho = rng.uniform(0.5, 1.5);
        s.u = rng.uniform(-1.0, 1.0);
        s.v = rng.uniform(-1.0, 1.0);
        s.w = rng.uniform(-1.0, 1.0);
        s.p = rng.uniform(0.5, 1.5);
        f3d::to_conservative(s, z.q_point(j, k, l));
        if (l >= 0 && l < z.lmax() && k >= 0 && k < z.kmax() && j >= 0 &&
            j < z.jmax()) {
          for (int n = 0; n < f3d::kNumVars; ++n) {
            rhs(n, j + ng, k + ng, l + ng) = rng.uniform(-0.1, 0.1);
          }
        }
      }
}

llp::Array4D<double> make_work(const Zone& z) {
  return llp::Array4D<double>(f3d::kNumVars, z.jmax() + 2 * Zone::kGhost,
                              z.kmax() + 2 * Zone::kGhost,
                              z.lmax() + 2 * Zone::kGhost);
}

class SweepDirections : public ::testing::TestWithParam<int> {};

TEST_P(SweepDirections, ZeroDtIsIdentity) {
  const int dir = GetParam();
  Zone z({7, 6, 5}, 0.1, 0.1, 0.1);
  auto rhs = make_work(z);
  randomize(z, rhs, 41);
  auto before = rhs;
  RiscSweeps engine;
  const auto region = llp::regions().define("sw.zero_dt");
  engine.sweep(z, dir, 0.0, 0.25, rhs, region);
  const int ng = Zone::kGhost;
  for (int l = 0; l < z.lmax(); ++l)
    for (int k = 0; k < z.kmax(); ++k)
      for (int j = 0; j < z.jmax(); ++j)
        for (int n = 0; n < f3d::kNumVars; ++n) {
          EXPECT_NEAR(rhs(n, j + ng, k + ng, l + ng),
                      before(n, j + ng, k + ng, l + ng), 1e-12)
              << "dir=" << dir;
        }
}

TEST_P(SweepDirections, VectorAndRiscAgree) {
  const int dir = GetParam();
  Zone z({8, 7, 6}, 0.1, 0.12, 0.09);
  auto rhs_a = make_work(z);
  randomize(z, rhs_a, 77);
  auto rhs_b = rhs_a;

  RiscSweeps risc;
  VectorSweeps vec;
  const auto ra = llp::regions().define("sw.agree_risc");
  const auto rb = llp::regions().define("sw.agree_vec", llp::RegionKind::kSerial);
  risc.sweep(z, dir, 0.04, 0.25, rhs_a, ra);
  vec.sweep(z, dir, 0.04, 0.25, rhs_b, rb);

  const int ng = Zone::kGhost;
  for (int l = 0; l < z.lmax(); ++l)
    for (int k = 0; k < z.kmax(); ++k)
      for (int j = 0; j < z.jmax(); ++j)
        for (int n = 0; n < f3d::kNumVars; ++n) {
          EXPECT_NEAR(rhs_a(n, j + ng, k + ng, l + ng),
                      rhs_b(n, j + ng, k + ng, l + ng), 1e-12)
              << "dir=" << dir;
        }
}

TEST_P(SweepDirections, ThreadCountDoesNotChangeResult) {
  const int dir = GetParam();
  Zone z({7, 7, 7}, 0.1, 0.1, 0.1);
  auto rhs_1 = make_work(z);
  randomize(z, rhs_1, 55);
  auto rhs_4 = rhs_1;

  const int orig = llp::num_threads();
  RiscSweeps engine;
  const auto region = llp::regions().define("sw.threads");

  llp::set_num_threads(1);
  engine.sweep(z, dir, 0.03, 0.25, rhs_1, region);
  llp::set_num_threads(4);
  RiscSweeps engine4;
  engine4.sweep(z, dir, 0.03, 0.25, rhs_4, region);
  llp::set_num_threads(orig);

  const int ng = Zone::kGhost;
  for (int l = 0; l < z.lmax(); ++l)
    for (int k = 0; k < z.kmax(); ++k)
      for (int j = 0; j < z.jmax(); ++j)
        for (int n = 0; n < f3d::kNumVars; ++n) {
          // Identical per-line arithmetic regardless of which lane ran it.
          EXPECT_DOUBLE_EQ(rhs_1(n, j + ng, k + ng, l + ng),
                           rhs_4(n, j + ng, k + ng, l + ng))
              << "dir=" << dir;
        }
}

INSTANTIATE_TEST_SUITE_P(AllDirections, SweepDirections,
                         ::testing::Values(0, 1, 2));

TEST(Sweeps, RegionRecordsOuterLoopTrips) {
  Zone z({6, 9, 8}, 0.1, 0.1, 0.1);
  auto rhs = make_work(z);
  randomize(z, rhs, 3);
  RiscSweeps engine;
  auto& reg = llp::regions();
  const auto region = reg.define("sw.trips");
  reg.reset_stats();
  engine.sweep(z, 0, 0.02, 0.25, rhs, region);  // J sweep: outer loop is L
  EXPECT_EQ(reg.stats(region).total_trips, 8u);
  engine.sweep(z, 2, 0.02, 0.25, rhs, region);  // L sweep: outer loop is K
  EXPECT_EQ(reg.stats(region).total_trips, 8u + 9u);
}

TEST(Sweeps, VectorScratchIsPlaneProportional) {
  Zone small({6, 6, 6}, 0.1, 0.1, 0.1);
  Zone big({40, 40, 40}, 0.1, 0.1, 0.1);
  auto rhs_s = make_work(small);
  auto rhs_b = make_work(big);
  randomize(small, rhs_s, 1);
  randomize(big, rhs_b, 2);

  VectorSweeps vs, vb;
  const auto r = llp::regions().define("sw.scratch", llp::RegionKind::kSerial);
  vs.sweep(small, 1, 0.02, 0.25, rhs_s, r);
  vb.sweep(big, 1, 0.02, 0.25, rhs_b, r);
  // The big zone's K-plane (40x6... K sweep plane is kmax x jmax) dwarfs
  // the small zone's; scratch grows accordingly. This is the §4 cache
  // problem in one assertion.
  EXPECT_GT(vb.scratch_bytes(), 10 * vs.scratch_bytes());
}

TEST(SweepShape, MatchesPaperParallelization) {
  // J and K sweeps parallelize over L; the L sweep parallelizes over K —
  // so for the paper's zones the available parallelism is the 70/75 (or
  // 350/450) transverse dimensions, never the small J.
  Zone z({15, 75, 70}, 0.1, 0.1, 0.1);
  EXPECT_EQ(f3d::sweep_shape(z, 0).outer_n, 70);
  EXPECT_EQ(f3d::sweep_shape(z, 1).outer_n, 70);
  EXPECT_EQ(f3d::sweep_shape(z, 2).outer_n, 75);
  EXPECT_EQ(f3d::sweep_shape(z, 0).line_n, 15);
}

TEST(PencilWorkspace, EnsureGrowsMonotonically) {
  f3d::PencilWorkspace ws;
  ws.ensure(10);
  EXPECT_GE(ws.capacity, 10);
  EXPECT_EQ(ws.q.size(), 50u);
  ws.ensure(5);  // no shrink
  EXPECT_GE(ws.capacity, 10);
  ws.ensure(100);
  EXPECT_EQ(ws.d.size(), 100u);
}

}  // namespace
namespace {

TEST(Sweeps, VectorAndRiscAgreeOnPeriodicLines) {
  Zone z({8, 8, 8}, 0.1, 0.1, 0.1);
  auto rhs_a = make_work(z);
  randomize(z, rhs_a, 91);
  auto rhs_b = rhs_a;
  RiscSweeps risc;
  VectorSweeps vec;
  const auto ra = llp::regions().define("sw.per_risc");
  const auto rb = llp::regions().define("sw.per_vec", llp::RegionKind::kSerial);
  for (int dir = 0; dir < 3; ++dir) {
    risc.sweep(z, dir, 0.04, 0.25, rhs_a, ra, /*periodic=*/true);
    vec.sweep(z, dir, 0.04, 0.25, rhs_b, rb, /*periodic=*/true);
  }
  const int ng = Zone::kGhost;
  for (int l = 0; l < z.lmax(); ++l)
    for (int k = 0; k < z.kmax(); ++k)
      for (int j = 0; j < z.jmax(); ++j)
        for (int n = 0; n < f3d::kNumVars; ++n) {
          ASSERT_NEAR(rhs_a(n, j + ng, k + ng, l + ng),
                      rhs_b(n, j + ng, k + ng, l + ng), 1e-12);
        }
}

TEST(Sweeps, PeriodicSweepCouplesAcrossTheSeam) {
  // With periodic lines, perturbing the rhs at one end must influence the
  // solution at the other end (the cyclic solver couples them); with
  // non-periodic boundary rows it must not.
  Zone z({10, 6, 6}, 0.1, 0.1, 0.1);
  f3d::FreeStream fs;
  fs.mach = 0.8;
  z.set_freestream(fs);

  auto run_dir0 = [&](bool periodic) {
    auto rhs = make_work(z);
    rhs.fill(0.0);
    const int ng = Zone::kGhost;
    rhs(0, 9 + ng, 3 + ng, 3 + ng) = 1.0;  // pulse at the last j cell
    RiscSweeps engine;
    const auto region = llp::regions().define("sw.seam");
    engine.sweep(z, 0, 0.5, 0.25, rhs, region, periodic);
    return rhs(0, 0 + ng, 3 + ng, 3 + ng);  // response at the first j cell
  };

  const double coupled = run_dir0(true);
  const double uncoupled = run_dir0(false);
  EXPECT_GT(std::abs(coupled), 1e-8);
  EXPECT_LT(std::abs(uncoupled), std::abs(coupled) * 0.5);
}

}  // namespace
