// Construction hardening: degenerate inputs anywhere in the Zone ->
// MultiZoneGrid -> Solver chain must raise llp::ValidationError before any
// storage is sized or any sweep runs — never UB, never a silent default.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"
#include "f3d/zone.hpp"
#include "util/error.hpp"

namespace {

using f3d::MultiZoneGrid;
using f3d::Solver;
using f3d::SolverConfig;
using f3d::Zone;
using f3d::ZoneDims;
using llp::ValidationError;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Hardening, ZoneRejectsDegenerateExtents) {
  EXPECT_THROW(Zone(ZoneDims{0, 5, 5}, 0.1, 0.1, 0.1), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{5, -3, 5}, 0.1, 0.1, 0.1), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{5, 5, std::numeric_limits<int>::min()}, 0.1,
                    0.1, 0.1),
               ValidationError);
  EXPECT_THROW(Zone(ZoneDims{Zone::kMaxDim + 1, 5, 5}, 0.1, 0.1, 0.1),
               ValidationError);
  EXPECT_NO_THROW(Zone(ZoneDims{1, 1, 1}, 0.1, 0.1, 0.1));
}

TEST(Hardening, ZoneRejectsOverflowingStorageProducts) {
  // Each extent is individually legal (<= kMaxDim) but their padded
  // product would wrap std::size_t on the allocation request.
  constexpr int big = Zone::kMaxDim;
  EXPECT_THROW(Zone(ZoneDims{big, big, big}, 0.1, 0.1, 0.1), ValidationError);
}

TEST(Hardening, ZoneRejectsNonFiniteGeometry) {
  EXPECT_THROW(Zone(ZoneDims{4, 4, 4}, kNan, 0.1, 0.1), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{4, 4, 4}, 0.1, kInf, 0.1), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{4, 4, 4}, 0.1, 0.1, 0.0), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{4, 4, 4}, 0.1, 0.1, -0.1), ValidationError);
  EXPECT_THROW(Zone(ZoneDims{4, 4, 4}, 0.1, 0.1, 0.1, kNan), ValidationError);
}

TEST(Hardening, GridRejectsBadZoneListsAndSpacing) {
  EXPECT_THROW(MultiZoneGrid({}, 0.1), ValidationError);
  EXPECT_THROW(MultiZoneGrid({ZoneDims{6, 6, 6}}, 0.0), ValidationError);
  EXPECT_THROW(MultiZoneGrid({ZoneDims{6, 6, 6}}, -0.1), ValidationError);
  EXPECT_THROW(MultiZoneGrid({ZoneDims{6, 6, 6}}, kNan), ValidationError);
  EXPECT_THROW(MultiZoneGrid({ZoneDims{6, 6, 6}}, kInf), ValidationError);
  // Mismatched K/L across zones breaks the exchange.
  EXPECT_THROW(MultiZoneGrid({ZoneDims{6, 6, 6}, ZoneDims{6, 7, 6}}, 0.1),
               ValidationError);
}

TEST(Hardening, SolverRejectsDimsBelowTheStencilFloor) {
  // A zone shallower than kMinZoneDim per axis would let the 4th-difference
  // stencil's ghost reads and writes overlap.
  MultiZoneGrid thin({ZoneDims{6, f3d::kMinZoneDim - 1, 6}}, 0.1);
  EXPECT_THROW(Solver(thin, SolverConfig{}), ValidationError);
  MultiZoneGrid ok({ZoneDims{f3d::kMinZoneDim, f3d::kMinZoneDim,
                             f3d::kMinZoneDim}},
                   0.1);
  EXPECT_NO_THROW(Solver(ok, SolverConfig{}));
}

TEST(Hardening, SolverRejectsNonFiniteConfig) {
  MultiZoneGrid grid({ZoneDims{6, 6, 6}}, 0.1);
  auto with = [](auto&& tweak) {
    SolverConfig cfg;
    tweak(cfg);
    return cfg;
  };
  EXPECT_THROW(Solver(grid, with([](SolverConfig& c) { c.cfl = kNan; })),
               ValidationError);
  EXPECT_THROW(Solver(grid, with([](SolverConfig& c) { c.cfl = 0.0; })),
               ValidationError);
  EXPECT_THROW(Solver(grid, with([](SolverConfig& c) { c.cfl = -2.0; })),
               ValidationError);
  EXPECT_THROW(Solver(grid, with([](SolverConfig& c) { c.kappa_i = kInf; })),
               ValidationError);
  EXPECT_THROW(
      Solver(grid, with([](SolverConfig& c) { c.cfl_growth = kNan; })),
      ValidationError);
  EXPECT_THROW(Solver(grid, with([](SolverConfig& c) { c.cfl_max = kNan; })),
               ValidationError);
  EXPECT_THROW(
      Solver(grid, with([](SolverConfig& c) { c.freestream.mach = kNan; })),
      ValidationError);
  EXPECT_NO_THROW(Solver(grid, SolverConfig{}));
}

}  // namespace
