#include "f3d/validation.hpp"

#include <gtest/gtest.h>

#include "f3d/cases.hpp"
#include "util/error.hpp"

namespace {

TEST(Checksum, IdenticalGridsMatch) {
  const auto spec = f3d::wall_compression_case(8);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  EXPECT_EQ(f3d::checksum(a), f3d::checksum(b));
}

TEST(Checksum, SensitiveToSingleValue) {
  const auto spec = f3d::wall_compression_case(8);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  b.zone(0).q(2, 3, 4, 5) += 1e-14;
  EXPECT_NE(f3d::checksum(a), f3d::checksum(b));
}

TEST(Checksum, IgnoresGhostCells) {
  const auto spec = f3d::wall_compression_case(8);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  b.zone(0).q(0, -1, 0, 0) = 999.0;
  EXPECT_EQ(f3d::checksum(a), f3d::checksum(b));
}

TEST(Diff, ZeroForIdentical) {
  const auto spec = f3d::paper_1m_case(0.08);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  EXPECT_DOUBLE_EQ(f3d::linf_diff(a, b), 0.0);
  EXPECT_DOUBLE_EQ(f3d::l2_diff(a, b), 0.0);
}

TEST(Diff, LinfPicksLargestDeviation) {
  const auto spec = f3d::wall_compression_case(8);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  b.zone(0).q(0, 1, 1, 1) += 0.5;
  b.zone(0).q(1, 2, 2, 2) += 0.25;
  EXPECT_DOUBLE_EQ(f3d::linf_diff(a, b), 0.5);
}

TEST(Diff, L2AveragesOverAllValues) {
  const auto spec = f3d::wall_compression_case(8);
  auto a = f3d::build_grid(spec);
  auto b = f3d::build_grid(spec);
  b.zone(0).q(0, 1, 1, 1) += 3.0;
  const double count = 8.0 * 8.0 * 8.0 * 5.0;
  EXPECT_NEAR(f3d::l2_diff(a, b), std::sqrt(9.0 / count), 1e-12);
}

TEST(Diff, ShapeMismatchRejected) {
  auto a = f3d::build_grid(f3d::wall_compression_case(8));
  auto b = f3d::build_grid(f3d::wall_compression_case(10));
  EXPECT_THROW(f3d::linf_diff(a, b), llp::Error);
}

TEST(RunHistory, FirstDivergenceFindsChecksumMismatch) {
  f3d::RunHistory a, b;
  for (int i = 0; i < 10; ++i) {
    a.record(1.0 / (i + 1), 100 + i);
    b.record(1.0 / (i + 1), i == 6 ? 999u : 100u + i);
  }
  EXPECT_EQ(f3d::first_divergence(a, b), 6);
}

TEST(RunHistory, FirstDivergenceFindsResidualDrift) {
  f3d::RunHistory a, b;
  for (int i = 0; i < 10; ++i) {
    a.record(1.0, 0);
    b.record(i >= 4 ? 1.001 : 1.0, 0);
  }
  EXPECT_EQ(f3d::first_divergence(a, b, 1e-6), 4);
}

TEST(RunHistory, AgreementGivesMinusOne) {
  f3d::RunHistory a, b;
  for (int i = 0; i < 5; ++i) {
    a.record(0.5, 42);
    b.record(0.5, 42);
  }
  EXPECT_EQ(f3d::first_divergence(a, b), -1);
}

TEST(RunHistory, ComparesOnlyCommonPrefix) {
  f3d::RunHistory a, b;
  a.record(1.0, 1);
  b.record(1.0, 1);
  b.record(2.0, 2);  // extra step in b
  EXPECT_EQ(f3d::first_divergence(a, b), -1);
}

TEST(ResidualDecreasing, DetectsDecay) {
  f3d::RunHistory h;
  for (int i = 0; i < 20; ++i) h.record(std::pow(0.8, i), 0);
  EXPECT_TRUE(f3d::residual_decreasing(h));
}

TEST(ResidualDecreasing, RejectsFlatHistory) {
  f3d::RunHistory h;
  for (int i = 0; i < 20; ++i) h.record(1.0, 0);
  EXPECT_FALSE(f3d::residual_decreasing(h));
}

TEST(ResidualDecreasing, NeedsEnoughSteps) {
  f3d::RunHistory h;
  for (int i = 0; i < 4; ++i) h.record(1.0, 0);
  EXPECT_THROW(f3d::residual_decreasing(h), llp::Error);
}

}  // namespace
