// Solvers on per-tenant runtimes: the 3-arg constructor binds a specific
// llp::Runtime, every parallel construct in the step dispatches there, and
// — the regression that motivated the refactor — a tenant runtime with
// MORE lanes than the process default must not overflow any workspace
// sized off the global singleton.
#include "f3d/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>

#include "core/runtime.hpp"
#include "f3d/cases.hpp"

namespace {

using f3d::Solver;
using f3d::SolverConfig;

SolverConfig config_for(const f3d::CaseSpec& spec, const std::string& prefix) {
  SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = prefix;
  return cfg;
}

f3d::MultiZoneGrid disturbed_grid(int n) {
  auto spec = f3d::wall_compression_case(n);
  auto grid = f3d::build_grid(spec);
  f3d::add_kmin_wall(grid);
  f3d::add_gaussian_pulse(grid, 0.1, 2.5);
  return grid;
}

TEST(SolverTenant, DefaultConstructorBindsTheCurrentRuntime) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  llp::Runtime rt(2);
  llp::RuntimeScope scope(rt);
  Solver s(grid, config_for(spec, "tenant.bind"));
  EXPECT_EQ(&s.runtime(), &rt);
}

TEST(SolverTenant, ExplicitRuntimeWinsOverTheScope) {
  auto spec = f3d::wall_compression_case(8);
  auto grid = f3d::build_grid(spec);
  llp::Runtime scoped(2);
  llp::Runtime chosen(3);
  llp::RuntimeScope scope(scoped);
  Solver s(grid, config_for(spec, "tenant.explicit"), chosen);
  EXPECT_EQ(&s.runtime(), &chosen);
}

TEST(SolverTenant, MoreLanesThanTheProcessDefaultIsSafe) {
  // The old workspace-sizing bug: sweep scratch was sized off the global
  // singleton's lane count, so a runtime with more lanes scribbled out of
  // bounds. Shrink the process default, run a tenant solver with far more
  // lanes, and require a clean finite trajectory.
  auto& process = llp::Runtime::instance();
  const int saved = process.num_threads();
  process.set_num_threads(1);
  {
    llp::Runtime wide(8);
    auto grid = disturbed_grid(10);
    auto spec = f3d::wall_compression_case(10);
    Solver s(grid, config_for(spec, "tenant.wide"), wide);
    for (int i = 0; i < 10; ++i) s.step();
    EXPECT_TRUE(std::isfinite(s.residual()));
    EXPECT_GT(s.residual(), 0.0);
  }
  process.set_num_threads(saved);
}

TEST(SolverTenant, PinnedTenantsReproduceBitwise) {
  // Two solvers for the same case on two distinct 2-lane runtimes must
  // walk the identical residual trajectory — lane-count pinning is the
  // determinism contract the serve daemon sells.
  llp::Runtime rt_a(2);
  llp::Runtime rt_b(2);
  auto grid_a = disturbed_grid(10);
  auto grid_b = disturbed_grid(10);
  auto spec = f3d::wall_compression_case(10);
  Solver sa(grid_a, config_for(spec, "tenant.pin"), rt_a);
  Solver sb(grid_b, config_for(spec, "tenant.pin"), rt_b);
  for (int i = 0; i < 12; ++i) {
    sa.step();
    sb.step();
    ASSERT_EQ(sa.residual(), sb.residual()) << "diverged at step " << i + 1;
  }
}

TEST(SolverTenant, ConcurrentTenantSolversDoNotInterfere) {
  // Two tenants step concurrently on their own runtimes; both must match
  // the trajectory of a serial reference on an identical pinned runtime.
  llp::Runtime rt_ref(2);
  auto grid_ref = disturbed_grid(10);
  auto spec = f3d::wall_compression_case(10);
  Solver ref(grid_ref, config_for(spec, "tenant.conc"), rt_ref);
  ref.run(10);

  double got[2] = {0.0, 0.0};
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([&, w] {
      llp::Runtime rt(2);
      auto grid = disturbed_grid(10);
      Solver s(grid, config_for(spec, "tenant.conc"), rt);
      s.run(10);
      got[w] = s.residual();
    });
  }
  workers[0].join();
  workers[1].join();
  EXPECT_EQ(got[0], ref.residual());
  EXPECT_EQ(got[1], ref.residual());
}

}  // namespace
