#include "f3d/tridiag.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

// Reference: dense Gaussian elimination on the full (possibly cyclic)
// matrix, partial pivoting.
std::vector<double> dense_solve(std::vector<std::vector<double>> A,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(A[r][col]) > std::abs(A[piv][col])) piv = r;
    }
    std::swap(A[piv], A[col]);
    std::swap(b[piv], b[col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = A[r][col] / A[col][col];
      for (std::size_t c = col; c < n; ++c) A[r][c] -= m * A[col][c];
      b[r] -= m * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= A[i][c] * x[c];
    x[i] = s / A[i][i];
  }
  return x;
}

struct System {
  std::vector<double> a, b, c, d;
};

System random_dd_system(int n, llp::SplitMix64& rng) {
  System s;
  s.a.resize(n);
  s.b.resize(n);
  s.c.resize(n);
  s.d.resize(n);
  for (int i = 0; i < n; ++i) {
    s.a[i] = rng.uniform(-1.0, 1.0);
    s.c[i] = rng.uniform(-1.0, 1.0);
    s.b[i] = 3.0 + rng.uniform(0.0, 1.0);  // diagonally dominant
    s.d[i] = rng.uniform(-5.0, 5.0);
  }
  return s;
}

class TridiagSizes : public ::testing::TestWithParam<int> {};

TEST_P(TridiagSizes, MatchesDenseSolve) {
  const int n = GetParam();
  llp::SplitMix64 rng(100 + n);
  System s = random_dd_system(n, rng);

  std::vector<std::vector<double>> A(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    A[i][i] = s.b[i];
    if (i > 0) A[i][i - 1] = s.a[i];
    if (i < n - 1) A[i][i + 1] = s.c[i];
  }
  const auto xref = dense_solve(A, s.d);

  f3d::solve_tridiagonal(s.a, s.b, s.c, s.d);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(s.d[i], xref[i], 1e-10) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSizes,
                         ::testing::Values(1, 2, 3, 5, 17, 64, 450));

TEST(Tridiag, IdentityMatrixReturnsRhs) {
  std::vector<double> a(5, 0.0), b(5, 1.0), c(5, 0.0);
  std::vector<double> d = {1.0, 2.0, 3.0, 4.0, 5.0};
  f3d::solve_tridiagonal(a, b, c, d);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(d[i], i + 1.0);
}

TEST(Tridiag, RejectsMismatchedSpans) {
  std::vector<double> a(4), b(5, 1.0), c(5), d(5);
  EXPECT_THROW(f3d::solve_tridiagonal(a, b, c, d), llp::Error);
}

TEST(Tridiag, RejectsEmptySystem) {
  std::vector<double> e;
  EXPECT_THROW(f3d::solve_tridiagonal(e, e, e, e), llp::Error);
}

TEST(TridiagBatch, MatchesPerSystemSolves) {
  const int n = 33, m = 7;
  llp::SplitMix64 rng(7);
  // Build m independent systems and their batched (vector layout) copy.
  std::vector<System> systems;
  std::vector<double> A(n * m), B(n * m), C(n * m), D(n * m);
  for (int s = 0; s < m; ++s) systems.push_back(random_dd_system(n, rng));
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < m; ++s) {
      A[i * m + s] = systems[s].a[i];
      B[i * m + s] = systems[s].b[i];
      C[i * m + s] = systems[s].c[i];
      D[i * m + s] = systems[s].d[i];
    }
  }
  f3d::solve_tridiagonal_batch_vector_layout(A, B, C, D, n, m);
  for (int s = 0; s < m; ++s) {
    System sys = systems[s];
    f3d::solve_tridiagonal(sys.a, sys.b, sys.c, sys.d);
    for (int i = 0; i < n; ++i) {
      // Same arithmetic in a different order: bitwise identical.
      EXPECT_DOUBLE_EQ(D[i * m + s], sys.d[i]) << "s=" << s << " i=" << i;
    }
  }
}

TEST(TridiagBatch, SingleSystemDegeneratesToPlain) {
  const int n = 20;
  llp::SplitMix64 rng(3);
  System s = random_dd_system(n, rng);
  System copy = s;
  f3d::solve_tridiagonal_batch_vector_layout(s.a, s.b, s.c, s.d, n, 1);
  f3d::solve_tridiagonal(copy.a, copy.b, copy.c, copy.d);
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(s.d[i], copy.d[i]);
}

TEST(TridiagBatch, RejectsBadShape) {
  std::vector<double> v(10, 1.0);
  EXPECT_THROW(
      f3d::solve_tridiagonal_batch_vector_layout(v, v, v, v, 3, 4),  // 12!=10
      llp::Error);
}

TEST(TridiagPeriodic, MatchesDenseCyclicSolve) {
  for (int n : {3, 8, 33}) {
    llp::SplitMix64 rng(200 + n);
    System s = random_dd_system(n, rng);
    std::vector<std::vector<double>> A(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i) {
      A[i][i] = s.b[i];
      A[i][(i + n - 1) % n] += s.a[i];
      A[i][(i + 1) % n] += s.c[i];
    }
    const auto xref = dense_solve(A, s.d);
    f3d::solve_periodic_tridiagonal(s.a, s.b, s.c, s.d);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(s.d[i], xref[i], 1e-9) << n;
  }
}

TEST(TridiagPeriodic, RequiresAtLeastThree) {
  std::vector<double> v(2, 1.0);
  EXPECT_THROW(f3d::solve_periodic_tridiagonal(v, v, v, v), llp::Error);
}

TEST(Tridiag, FlopCountPositive) {
  EXPECT_GT(f3d::tridiag_flops(10), 0.0);
  EXPECT_DOUBLE_EQ(f3d::tridiag_flops(100), 10.0 * f3d::tridiag_flops(10));
}

}  // namespace
