#include "f3d/bc.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using f3d::BcType;
using f3d::BoundarySet;
using f3d::Face;
using f3d::FreeStream;
using f3d::Zone;

// Fill the interior with a deterministic non-uniform field.
void fill_interior(Zone& z, std::uint64_t seed) {
  llp::SplitMix64 rng(seed);
  for (int l = 0; l < z.lmax(); ++l)
    for (int k = 0; k < z.kmax(); ++k)
      for (int j = 0; j < z.jmax(); ++j) {
        f3d::Prim s;
        s.rho = rng.uniform(0.5, 1.5);
        s.u = rng.uniform(-1.0, 1.0);
        s.v = rng.uniform(-1.0, 1.0);
        s.w = rng.uniform(-1.0, 1.0);
        s.p = rng.uniform(0.5, 1.5);
        f3d::to_conservative(s, z.q_point(j, k, l));
      }
}

TEST(Bc, FreeStreamFillsGhosts) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 1);
  FreeStream fs;
  fs.mach = 2.0;
  BoundarySet bcs = BoundarySet::uniform(BcType::kFreeStream);
  f3d::apply_boundary_conditions(z, bcs, fs);
  double qinf[f3d::kNumVars];
  fs.conservative(qinf);
  for (int n = 0; n < f3d::kNumVars; ++n) {
    EXPECT_DOUBLE_EQ(z.q(n, -1, 2, 2), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, -2, 2, 2), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, 4, 2, 2), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, 2, -1, 2), qinf[n]);
    EXPECT_DOUBLE_EQ(z.q(n, 2, 2, 5), qinf[n]);
  }
}

TEST(Bc, ExtrapolateCopiesFaceCell) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 2);
  BoundarySet bcs = BoundarySet::uniform(BcType::kExtrapolate);
  f3d::apply_boundary_conditions(z, bcs, FreeStream{});
  for (int n = 0; n < f3d::kNumVars; ++n) {
    EXPECT_DOUBLE_EQ(z.q(n, -1, 1, 2), z.q(n, 0, 1, 2));
    EXPECT_DOUBLE_EQ(z.q(n, -2, 1, 2), z.q(n, 0, 1, 2));
    EXPECT_DOUBLE_EQ(z.q(n, 4, 1, 2), z.q(n, 3, 1, 2));
    EXPECT_DOUBLE_EQ(z.q(n, 5, 1, 2), z.q(n, 3, 1, 2));
    EXPECT_DOUBLE_EQ(z.q(n, 1, -1, 2), z.q(n, 1, 0, 2));
    EXPECT_DOUBLE_EQ(z.q(n, 1, 2, 4), z.q(n, 1, 2, 3));
  }
}

TEST(Bc, SlipWallMirrorsNormalMomentum) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 3);
  BoundarySet bcs = BoundarySet::uniform(BcType::kExtrapolate);
  bcs[Face::kKMin] = BcType::kSlipWall;
  f3d::apply_boundary_conditions(z, bcs, FreeStream{});
  for (int j = 0; j < 4; ++j) {
    for (int l = 0; l < 4; ++l) {
      // depth 1 ghost mirrors the first interior cell.
      EXPECT_DOUBLE_EQ(z.q(0, j, -1, l), z.q(0, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(1, j, -1, l), z.q(1, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(2, j, -1, l), -z.q(2, j, 0, l));  // rho*v flips
      EXPECT_DOUBLE_EQ(z.q(3, j, -1, l), z.q(3, j, 0, l));
      EXPECT_DOUBLE_EQ(z.q(4, j, -1, l), z.q(4, j, 0, l));
      // depth 2 mirrors the second interior cell.
      EXPECT_DOUBLE_EQ(z.q(2, j, -2, l), -z.q(2, j, 1, l));
    }
  }
}

TEST(Bc, SlipWallPreservesDensityAndEnergy) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 4);
  BoundarySet bcs = BoundarySet::uniform(BcType::kSlipWall);
  f3d::apply_boundary_conditions(z, bcs, FreeStream{});
  // LMax face: normal momentum is rho*w.
  EXPECT_DOUBLE_EQ(z.q(0, 1, 1, 4), z.q(0, 1, 1, 3));
  EXPECT_DOUBLE_EQ(z.q(3, 1, 1, 4), -z.q(3, 1, 1, 3));
  EXPECT_DOUBLE_EQ(z.q(4, 1, 1, 4), z.q(4, 1, 1, 3));
}

TEST(Bc, PeriodicWrapsAround) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 5);
  BoundarySet bcs = BoundarySet::uniform(BcType::kPeriodic);
  f3d::apply_boundary_conditions(z, bcs, FreeStream{});
  for (int n = 0; n < f3d::kNumVars; ++n) {
    EXPECT_DOUBLE_EQ(z.q(n, -1, 1, 1), z.q(n, 3, 1, 1));
    EXPECT_DOUBLE_EQ(z.q(n, -2, 1, 1), z.q(n, 2, 1, 1));
    EXPECT_DOUBLE_EQ(z.q(n, 4, 1, 1), z.q(n, 0, 1, 1));
    EXPECT_DOUBLE_EQ(z.q(n, 5, 1, 1), z.q(n, 1, 1, 1));
    EXPECT_DOUBLE_EQ(z.q(n, 1, -1, 1), z.q(n, 1, 3, 1));
    EXPECT_DOUBLE_EQ(z.q(n, 1, 1, 4), z.q(n, 1, 1, 0));
  }
}

TEST(Bc, InterfaceFacesAreLeftUntouched) {
  Zone z({4, 4, 4}, 1, 1, 1);
  fill_interior(z, 6);
  // Mark the JMax ghosts with a sentinel, then apply interface BC there.
  for (int k = 0; k < 4; ++k)
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < f3d::kNumVars; ++n) {
        z.q(n, 4, k, l) = -777.0;
      }
  BoundarySet bcs = BoundarySet::uniform(BcType::kExtrapolate);
  bcs[Face::kJMax] = BcType::kInterface;
  f3d::apply_boundary_conditions(z, bcs, FreeStream{});
  EXPECT_DOUBLE_EQ(z.q(0, 4, 1, 1), -777.0);
}

TEST(Bc, DefaultBoundarySetIsInflowOutflow) {
  BoundarySet b;
  EXPECT_EQ(b[Face::kJMin], BcType::kFreeStream);
  EXPECT_EQ(b[Face::kJMax], BcType::kExtrapolate);
}

}  // namespace
