// Shrinker: minimal repros that preserve the exact bucket signature.
#include "fuzz/shrink.hpp"

#include <gtest/gtest.h>

namespace llp::fuzz {
namespace {

Scenario noisy_failure() {
  // A deliberately over-complicated failing case: big-ish grid, two zones,
  // extra knobs turned, two fault specs of which only the throw matters —
  // with no recovery budget the run is guaranteed budget-exhausted on
  // every grid shape, so the shrinker has lots of slack to remove.
  Scenario s;
  s.zones = {f3d::ZoneDims{8, 8, 8}, f3d::ZoneDims{10, 8, 8}};
  s.steps = 10;
  s.threads = 4;
  s.pulse = 0.05;
  s.alpha_deg = 2.0;
  s.bc = BcCombo::kKminWall;
  s.cfl_growth = 1.02;
  s.fault = fault::FaultPlan::parse(
      "throw:fz.z0.rhs:*:0:count=0;delay:fz.z1.rhs:*:1:delay=1:count=2");
  return s;
}

TEST(Shrink, PreservesSignatureAndReduces) {
  const Scenario original = noisy_failure();
  const CaseResult verdict = run_case(original, {});
  ASSERT_FALSE(verdict.passed()) << describe(verdict);
  ASSERT_EQ(verdict.oracle, OracleId::kValidation);

  const ShrinkResult r = shrink(original, verdict, {}, 80);
  EXPECT_EQ(r.signature, verdict.signature());
  EXPECT_GT(r.evaluations, 0);
  EXPECT_LE(r.evaluations, 80);

  // The shrunken case must still fail identically when replayed cold.
  const CaseResult replay = run_case(r.scenario, {});
  EXPECT_EQ(replay.signature(), verdict.signature()) << describe(replay);

  // And it must be strictly simpler: the irrelevant delay spec dropped,
  // zones/steps/threads reduced.
  EXPECT_EQ(r.scenario.fault.specs.size(), 1u)
      << r.scenario.fault.to_string();
  EXPECT_EQ(r.scenario.fault.specs[0].kind, fault::FaultKind::kThrow);
  EXPECT_LE(r.scenario.zones.size(), original.zones.size());
  EXPECT_LE(r.scenario.steps, original.steps);
  EXPECT_LE(r.scenario.threads, original.threads);
  EXPECT_LE(r.scenario.zones[0].points(), original.zones[0].points());
}

TEST(Shrink, IsDeterministic) {
  const Scenario original = noisy_failure();
  const CaseResult verdict = run_case(original, {});
  ASSERT_FALSE(verdict.passed());
  const ShrinkResult a = shrink(original, verdict, {}, 60);
  const ShrinkResult b = shrink(original, verdict, {}, 60);
  EXPECT_EQ(a.scenario.to_line(), b.scenario.to_line());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Shrink, RespectsEvaluationBudget) {
  const Scenario original = noisy_failure();
  const CaseResult verdict = run_case(original, {});
  ASSERT_FALSE(verdict.passed());
  const ShrinkResult r = shrink(original, verdict, {}, 5);
  EXPECT_LE(r.evaluations, 5);
  // Even under a tiny budget the result must carry the right signature.
  EXPECT_EQ(run_case(r.scenario, {}).signature(), verdict.signature());
}

}  // namespace
}  // namespace llp::fuzz
