// Property tests for the FaultPlan grammar: parse(to_string()) is the
// identity on randomly generated plans across every kind and option, and
// malformed specs are rejected with a typed error, never accepted silently.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace llp::fault {
namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kThrow,   FaultKind::kNan,    FaultKind::kDelay,
    FaultKind::kHang,    FaultKind::kIoShort, FaultKind::kIoFlip,
    FaultKind::kIoEnospc, FaultKind::kIoCrash};

FaultSpec random_spec(SplitMix64& rng) {
  FaultSpec spec;
  spec.kind = kAllKinds[rng.below(8)];
  if (is_io_kind(spec.kind)) {
    spec.region = "ckpt";
  } else {
    spec.region = "fz.z" + std::to_string(rng.below(3)) + ".rhs";
  }
  spec.any_invocation = rng.below(4) == 0;
  if (!spec.any_invocation) spec.invocation = rng.below(100);
  spec.any_lane = rng.below(4) == 0;
  if (!spec.any_lane) spec.lane = static_cast<int>(rng.below(8));
  if (spec.kind == FaultKind::kDelay && rng.below(2) == 0) {
    spec.delay_ms = static_cast<double>(1 + rng.below(50));
  }
  if (spec.kind == FaultKind::kNan && rng.below(2) == 0) {
    spec.array = "q" + std::to_string(rng.below(3));
  }
  if (spec.kind == FaultKind::kIoFlip && rng.below(2) == 0) {
    spec.bit = static_cast<std::int64_t>(rng.below(4096));
  }
  if (rng.below(3) == 0) spec.count = static_cast<int>(rng.below(5));
  if (rng.below(4) == 0) {
    // Probabilities the %g printer renders exactly, so the round-trip
    // comparison stays byte-exact.
    spec.probability = static_cast<double>(1 + rng.below(15)) / 16.0;
  }
  return spec;
}

TEST(FaultPlanFuzz, RandomPlansRoundTripExactly) {
  SplitMix64 rng(0xfa017ab5ULL);
  for (int trial = 0; trial < 500; ++trial) {
    FaultPlan plan;
    const std::uint64_t nspecs = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < nspecs; ++i) {
      plan.specs.push_back(random_spec(rng));
    }
    if (rng.below(2) == 0) plan.seed = rng.next();

    const std::string text = plan.to_string();
    FaultPlan back;
    ASSERT_NO_THROW(back = FaultPlan::parse(text)) << text;
    EXPECT_EQ(back.to_string(), text) << "not a fixpoint: " << text;
    ASSERT_EQ(back.specs.size(), plan.specs.size()) << text;
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
      EXPECT_EQ(back.specs[i].kind, plan.specs[i].kind) << text;
      EXPECT_EQ(back.specs[i].region, plan.specs[i].region) << text;
      EXPECT_EQ(back.specs[i].any_invocation, plan.specs[i].any_invocation);
      EXPECT_EQ(back.specs[i].any_lane, plan.specs[i].any_lane);
      EXPECT_EQ(back.specs[i].count, plan.specs[i].count) << text;
    }
  }
}

TEST(FaultPlanFuzz, ParseIsIdempotent) {
  // parse . to_string must be a projection: applying it twice changes
  // nothing even for hand-written specs with default-valued options.
  const char* specs[] = {
      "throw:run.z0.rhs:3:1",
      "nan:run.z0.rhs:6:0:array=q0",
      "delay:run.z0.sweep_j:*:2:delay=20:count=5",
      "ioflip:ckpt:1:0:bit=12",
      "iocrash:ckpt:2:1;seed=42",
      "throw:a:0:0;nan:b:1:1;delay:c:*:*",
  };
  for (const char* text : specs) {
    const std::string once = FaultPlan::parse(text).to_string();
    EXPECT_EQ(FaultPlan::parse(once).to_string(), once) << text;
  }
}

TEST(FaultPlanFuzz, MalformedSpecsAreRejected) {
  const char* bad[] = {
      "explode:r:0:0",          // unknown kind
      "throw",                  // missing fields
      "throw:r",                // missing fields
      "throw:r:0",              // missing lane
      "throw:r:x:0",            // bad invocation
      "throw:r:0:y",            // bad lane
      "throw::0:0",             // empty region
      "throw:r:0:0:delay",      // option without value
      "throw:r:0:0:bogus=1",    // unknown option
      "delay:r:0:0:delay=fast", // bad option value
      "ioflip:ckpt:0:0:bit=x",  // bad bit
      "throw:r:0:0:p=2",        // probability out of range
      "seed=",                  // empty seed
      "seed=abc",               // bad seed
  };
  for (const char* text : bad) {
    EXPECT_THROW(FaultPlan::parse(text), Error) << text;
  }
}

TEST(FaultPlanFuzz, RandomGarbageNeverCrashesTheParser) {
  // Fuzz the parser itself with printable noise: every outcome must be
  // either a valid plan or a typed llp::Error — nothing else escapes.
  const char alphabet[] = "throwandelayispc:;=*.0123456789qz ";
  SplitMix64 rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const std::uint64_t len = rng.below(40);
    for (std::uint64_t i = 0; i < len; ++i) {
      text += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    try {
      const FaultPlan plan = FaultPlan::parse(text);
      // Accepted garbage must at least round-trip.
      EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(),
                plan.to_string())
          << text;
    } catch (const Error&) {
      // Typed rejection is the expected outcome for noise.
    }
  }
}

}  // namespace
}  // namespace llp::fault
