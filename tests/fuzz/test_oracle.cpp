// The oracle stack: clean passes, provoked failures, hostile rejections,
// and crash-resume through the checkpoint ladder.
#include "fuzz/oracle.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/error.hpp"

namespace llp::fuzz {
namespace {

namespace fs = std::filesystem;

std::string work_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_fuzz_oracle_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Scenario small_clean() {
  Scenario s;
  s.zones = {f3d::ZoneDims{6, 6, 6}};
  s.steps = 4;
  s.threads = 2;
  return s;
}

TEST(Oracle, CleanCasePasses) {
  const CaseResult r = run_case(small_clean(), {});
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.signature(), "pass");
  EXPECT_EQ(r.steps_completed, 4);
}

TEST(Oracle, HostileCaseIsRejectedNotCrashed) {
  Scenario s = small_clean();
  s.cfl = -1.0;
  CaseResult r = run_case(s, {});
  EXPECT_TRUE(r.rejected) << describe(r);
  EXPECT_EQ(r.signature(), "rejected");

  s = small_clean();
  s.zones = {f3d::ZoneDims{0, 6, 6}};
  r = run_case(s, {});
  EXPECT_TRUE(r.rejected) << describe(r);

  s = small_clean();
  s.spacing = 0.0;
  r = run_case(s, {});
  EXPECT_TRUE(r.rejected) << describe(r);
}

TEST(Oracle, NanFaultTripsValidationOracle) {
  // Inject on the final update (invocation steps-1) so the poisoned cell
  // cannot be refreshed by a later boundary fill before the health check.
  Scenario s = small_clean();
  s.fault = fault::FaultPlan::parse("nan:fz.z0.update:3:0:array=q0");
  const CaseResult r = run_case(s, {});
  ASSERT_FALSE(r.passed()) << describe(r);
  EXPECT_EQ(r.oracle, OracleId::kValidation);
  EXPECT_EQ(r.error_type, "non-finite");
}

TEST(Oracle, ExhaustedRecoveryBudgetTripsValidationOracle) {
  Scenario s = small_clean();
  s.max_recoveries = 1;
  s.fault = fault::FaultPlan::parse("throw:fz.z0.rhs:*:0:count=3");
  const CaseResult r = run_case(s, {});
  ASSERT_FALSE(r.passed()) << describe(r);
  EXPECT_EQ(r.oracle, OracleId::kValidation);
  EXPECT_EQ(r.error_type, "budget-exhausted");
  EXPECT_EQ(r.region, "fz.z0.rhs");
}

TEST(Oracle, RecoveredFaultStillPasses) {
  Scenario s = small_clean();
  s.max_recoveries = 2;
  s.mem_ckpt_every = 1;
  s.fault = fault::FaultPlan::parse("throw:fz.z0.rhs:2:0");
  const CaseResult r = run_case(s, {});
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.recoveries, 1);
}

TEST(Oracle, DifferentialRunsOnCleanCases) {
  // Every registered engine as the primary: the all-pairs differential
  // oracle passes on the shipped solver (the regression canary for
  // oracle 3, which re-runs the case under every other engine).
  for (const f3d::EngineInfo& info : f3d::engines()) {
    Scenario s = small_clean();
    s.engine = info.kind;
    const CaseResult r = run_case(s, {});
    EXPECT_TRUE(r.passed())
        << "primary=" << std::string(info.name) << ": " << describe(r);
  }
}

TEST(Oracle, CrashIsResumedThroughTheStore) {
  // iocrash mid-checkpoint-write: the run "dies", and the restart oracle
  // must bring it back from the newest intact generation.
  Scenario s = small_clean();
  s.steps = 6;
  s.ckpt_every = 2;
  s.fault = fault::FaultPlan::parse("iocrash:ckpt:2:1");
  RunCaseOptions opt;
  opt.work_dir = work_dir("crash_resume");
  const CaseResult r = run_case(s, opt);
  EXPECT_TRUE(r.crashed) << describe(r);
  EXPECT_TRUE(r.passed()) << describe(r);
}

TEST(Oracle, CleanCheckpointedRunOwesRestartParity) {
  Scenario s = small_clean();
  s.steps = 6;
  s.ckpt_every = 2;
  RunCaseOptions opt;
  opt.work_dir = work_dir("parity");
  const CaseResult r = run_case(s, opt);
  EXPECT_TRUE(r.passed()) << describe(r);
}

TEST(Oracle, CheckpointScenarioWithoutWorkDirIsAnError) {
  Scenario s = small_clean();
  s.ckpt_every = 2;
  EXPECT_THROW(run_case(s, {}), Error);
}

TEST(Oracle, SignatureComposesOracleErrorAndRegion) {
  CaseResult r;
  r.oracle = OracleId::kValidation;
  r.error_type = "budget-exhausted";
  r.region = "fz.z0.rhs";
  EXPECT_EQ(r.signature(), "validation/budget-exhausted/fz.z0.rhs");
  r.region.clear();
  EXPECT_EQ(r.signature(), "validation/budget-exhausted");
}

TEST(Oracle, DeterministicVerdicts) {
  // The whole stack is a pure function of (scenario, options): same case,
  // same verdict, byte-for-byte.
  Scenario s = small_clean();
  s.fault = fault::FaultPlan::parse("nan:fz.z0.update:3:0:array=q0");
  const CaseResult a = run_case(s, {});
  const CaseResult b = run_case(s, {});
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.steps_completed, b.steps_completed);
}

}  // namespace
}  // namespace llp::fuzz
