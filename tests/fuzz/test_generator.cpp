// Generator determinism and distribution guarantees.
#include "fuzz/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace llp::fuzz {
namespace {

std::vector<std::string> specs(std::uint64_t seed, int n,
                               GeneratorConfig cfg = {}) {
  Generator gen(seed, cfg);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(gen.next().to_line());
  return out;
}

TEST(Generator, SameSeedSameSequence) {
  EXPECT_EQ(specs(42, 50), specs(42, 50));
}

TEST(Generator, DifferentSeedsDiverge) {
  EXPECT_NE(specs(1, 20), specs(2, 20));
}

TEST(Generator, SequenceHasVariety) {
  // 80 cases must cover more than one of each axis the fuzzer claims to
  // explore: zone counts, engines, thread counts, checkpoint cadences.
  Generator gen(7);
  std::set<std::size_t> zone_counts;
  std::set<int> threads;
  std::set<f3d::EngineKind> engines;
  bool saw_ckpt = false, saw_fault = false;
  for (int i = 0; i < 80; ++i) {
    const Scenario s = gen.next();
    zone_counts.insert(s.zones.size());
    threads.insert(s.threads);
    engines.insert(s.engine);
    saw_ckpt |= s.ckpt_every > 0;
    saw_fault |= !s.fault.empty();
  }
  EXPECT_GT(zone_counts.size(), 1u);
  EXPECT_GT(threads.size(), 1u);
  // Every registered engine must appear in the population.
  EXPECT_EQ(engines.size(), static_cast<std::size_t>(f3d::kNumEngines));
  EXPECT_TRUE(saw_ckpt);
  EXPECT_TRUE(saw_fault);
}

TEST(Generator, NeverEmitsHangFaults) {
  // An in-process fuzzer cannot afford leaked lanes: 'hang' is banned.
  Generator gen(3);
  for (int i = 0; i < 200; ++i) {
    const Scenario s = gen.next();
    for (const auto& spec : s.fault.specs) {
      EXPECT_NE(spec.kind, fault::FaultKind::kHang) << s.to_line();
    }
  }
}

TEST(Generator, IoFaultsOnlyWithCheckpointStore) {
  // An io fault against a scenario with no durable store can never fire;
  // generating one would waste the whole case.
  Generator gen(9);
  for (int i = 0; i < 200; ++i) {
    const Scenario s = gen.next();
    for (const auto& spec : s.fault.specs) {
      if (fault::is_io_kind(spec.kind)) {
        EXPECT_GT(s.ckpt_every, 0) << s.to_line();
      }
    }
  }
}

TEST(Generator, HostileCasesCanBeDisabled) {
  GeneratorConfig cfg;
  cfg.allow_hostile = false;
  Generator gen(5, cfg);
  for (int i = 0; i < 120; ++i) {
    const Scenario s = gen.next();
    // With hostile generation off, every case must be constructible.
    EXPECT_NO_THROW(s.validate()) << s.to_line();
    for (const auto& z : s.zones) {
      EXPECT_GE(z.jmax, cfg.min_dim) << s.to_line();
      EXPECT_GE(z.kmax, cfg.min_dim) << s.to_line();
      EXPECT_GE(z.lmax, cfg.min_dim) << s.to_line();
    }
    EXPECT_GT(s.cfl, 0.0) << s.to_line();
    EXPECT_GT(s.spacing, 0.0) << s.to_line();
  }
}

TEST(Generator, HostileCasesAppearWhenAllowed) {
  Generator gen(5);
  bool saw_hostile = false;
  for (int i = 0; i < 120 && !saw_hostile; ++i) {
    const Scenario s = gen.next();
    for (const auto& z : s.zones) {
      if (z.jmax < 4 || z.kmax < 4 || z.lmax < 4) saw_hostile = true;
    }
    if (s.cfl <= 0.0 || s.spacing <= 0.0) saw_hostile = true;
  }
  EXPECT_TRUE(saw_hostile);
}

TEST(Generator, MutateIsDeterministicAndDependsOnlyOnSeed) {
  Generator gen(11);
  const Scenario base = gen.next();
  // Same (base, mseed) always yields the same mutant, regardless of how
  // far the generator's own chain has advanced.
  const std::string a = gen.mutate(base, 77).to_line();
  for (int i = 0; i < 10; ++i) gen.next();
  EXPECT_EQ(gen.mutate(base, 77).to_line(), a);
  EXPECT_NE(gen.mutate(base, 78).to_line(), a);
}

TEST(Generator, EveryGeneratedSpecRoundTrips) {
  // Generator output is the corpus format; everything it emits must
  // survive parse(to_line) byte-exactly.
  Generator gen(13);
  for (int i = 0; i < 100; ++i) {
    const std::string line = gen.next().to_line();
    EXPECT_EQ(Scenario::parse(line).to_line(), line);
  }
}

}  // namespace
}  // namespace llp::fuzz
