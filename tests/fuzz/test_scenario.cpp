// Scenario spec grammar: round-trips, defaults, and malformed rejection.
#include "fuzz/scenario.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace llp::fuzz {
namespace {

TEST(Scenario, DefaultRoundTrips) {
  const Scenario s;
  const Scenario back = Scenario::parse(s.to_line());
  EXPECT_EQ(back.to_line(), s.to_line());
}

TEST(Scenario, FullyPopulatedRoundTripsByteExact) {
  Scenario s;
  s.seed = 0xdeadbeefULL;
  s.zones = {f3d::ZoneDims{5, 7, 9}, f3d::ZoneDims{11, 7, 9}};
  s.spacing = 0.30000000000000004;  // a value %.15g cannot render exactly
  s.mach = 1.25;
  s.alpha_deg = -2.5;
  s.bc = BcCombo::kKminWall;
  s.pulse = 0.07;
  s.cfl = 1.9;
  s.cfl_growth = 1.05;
  s.cfl_max = 6.5;
  s.steps = 11;
  s.engine = f3d::EngineKind::kPlaneVector;
  s.threads = 3;
  s.max_recoveries = 2;
  s.mem_ckpt_every = 3;
  s.ckpt_every = 2;
  s.fault = fault::FaultPlan::parse("throw:fz.z1.rhs:4:0;seed=99");

  const std::string line = s.to_line();
  const Scenario back = Scenario::parse(line);
  EXPECT_EQ(back.to_line(), line);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.zones.size(), 2u);
  EXPECT_EQ(back.zones[1].jmax, 11);
  EXPECT_DOUBLE_EQ(back.spacing, s.spacing);
  EXPECT_EQ(back.bc, BcCombo::kKminWall);
  EXPECT_EQ(back.engine, f3d::EngineKind::kPlaneVector);
  EXPECT_EQ(back.fault.specs.size(), 1u);
  EXPECT_EQ(back.fault.seed, 99u);
}

TEST(Scenario, MissingKeysKeepDefaults) {
  const Scenario s = Scenario::parse("v1 seed=5 zones=6x6x6");
  EXPECT_EQ(s.seed, 5u);
  EXPECT_EQ(s.steps, Scenario{}.steps);
  EXPECT_EQ(s.threads, Scenario{}.threads);
  EXPECT_TRUE(s.fault.empty());
}

TEST(Scenario, MalformedSpecsAreTypedErrors) {
  // Each malformed line must raise ValidationError — never crash, never
  // silently default.
  const char* bad[] = {
      "",                                   // no version tag
      "v2 seed=1",                          // wrong version
      "v1 seed=banana",                     // bad integer
      "v1 seed=-3",                         // negative unsigned
      "v1 zones=",                          // empty zone list
      "v1 zones=6x6",                       // not JxKxL
      "v1 zones=6x6x6x6",                   // too many dims
      "v1 cfl=fast",                        // bad double
      "v1 bc=slippery",                     // unknown bc
      "v1 mode=quantum",                    // unknown engine
      "v1 frobnicate=1",                    // unknown key
      "v1 seed",                            // not key=value
      "v1 fault=explode:fz.z0.rhs:0:0",     // unknown fault kind
  };
  for (const char* line : bad) {
    EXPECT_THROW(Scenario::parse(line), ValidationError) << line;
  }
}

TEST(Scenario, ValidateRejectsStructuralNonsense) {
  Scenario s;
  s.zones.clear();
  EXPECT_THROW(s.validate(), ValidationError);

  s = Scenario{};
  s.steps = 0;
  EXPECT_THROW(s.validate(), ValidationError);

  s = Scenario{};
  s.threads = -1;
  EXPECT_THROW(s.validate(), ValidationError);

  s = Scenario{};
  s.zones = {f3d::ZoneDims{6, 6, 6}, f3d::ZoneDims{6, 6, 6}};
  s.bc = BcCombo::kPeriodic;  // periodic needs exactly one zone
  EXPECT_THROW(s.validate(), ValidationError);

  EXPECT_NO_THROW(Scenario{}.validate());
}

TEST(Scenario, GridAndConfigBuildersHonorTheSpec) {
  Scenario s;
  s.zones = {f3d::ZoneDims{5, 6, 7}, f3d::ZoneDims{8, 6, 7}};
  s.bc = BcCombo::kKminWall;
  s.pulse = 0.05;
  s.mach = 1.5;
  f3d::MultiZoneGrid grid = build_scenario_grid(s);
  EXPECT_EQ(grid.num_zones(), 2);
  EXPECT_EQ(grid.zone(1).jmax(), 8);
  EXPECT_EQ(grid.bcs(0)[f3d::Face::kKMin], f3d::BcType::kSlipWall);

  const f3d::SolverConfig cfg = build_scenario_config(s);
  EXPECT_EQ(cfg.region_prefix, kRegionPrefix);
  EXPECT_DOUBLE_EQ(cfg.freestream.mach, 1.5);
}

}  // namespace
}  // namespace llp::fuzz
