// The cluster knobs of the scenario grammar and oracle 5: workers=/kill=/
// hang= round-trip, their validation fences, and the sharded backend
// actually running (fork+exec'd via F3D_CLUSTER_PATH, sanitizer-safe).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"
#include "util/error.hpp"

namespace llp::fuzz {
namespace {

namespace fs = std::filesystem;

Scenario cluster_scenario() {
  Scenario s;
  s.seed = 42;
  s.zones = {f3d::ZoneDims{6, 6, 6}, f3d::ZoneDims{6, 6, 6}};
  s.spacing = 0.2;
  s.mach = 1.5;
  s.bc = BcCombo::kKminWall;
  s.pulse = 0.05;
  s.cfl = 1.5;
  s.steps = 6;
  s.threads = 1;
  s.ckpt_every = 2;
  s.workers = 2;
  return s;
}

RunCaseOptions cluster_options(const std::string& leaf) {
  RunCaseOptions options;
  options.work_dir = ::testing::TempDir() + "llp_fuzz_cluster_" + leaf;
  fs::remove_all(options.work_dir);
  fs::create_directories(options.work_dir);
  options.cluster_exe = F3D_CLUSTER_PATH;
  return options;
}

TEST(ClusterScenario, KnobsRoundTripThroughTheSpecLine) {
  Scenario s = cluster_scenario();
  s.kill_worker = 1;
  s.kill_step = 3;
  s.hang_worker = 0;
  s.hang_step = 4;
  const std::string line = s.to_line();
  EXPECT_NE(line.find("workers=2"), std::string::npos) << line;
  EXPECT_NE(line.find("kill=1:3"), std::string::npos) << line;
  EXPECT_NE(line.find("hang=0:4"), std::string::npos) << line;
  const Scenario back = Scenario::parse(line);
  EXPECT_EQ(back.workers, 2);
  EXPECT_EQ(back.kill_worker, 1);
  EXPECT_EQ(back.kill_step, 3);
  EXPECT_EQ(back.hang_worker, 0);
  EXPECT_EQ(back.hang_step, 4);
  EXPECT_EQ(back.to_line(), line);
}

TEST(ClusterScenario, InProcessCasesOmitTheKnobs) {
  Scenario s;
  EXPECT_EQ(s.to_line().find("workers="), std::string::npos);
  EXPECT_EQ(s.to_line().find("kill="), std::string::npos);
}

TEST(ClusterScenario, ValidateFencesTheClusterEnvelope) {
  // workers beyond the zone count
  Scenario s = cluster_scenario();
  s.workers = 3;
  EXPECT_THROW(s.validate(), ValidationError);
  // one worker is not a cluster
  s = cluster_scenario();
  s.workers = 1;
  EXPECT_THROW(s.validate(), ValidationError);
  // the cluster pins the CFL ramp off
  s = cluster_scenario();
  s.cfl_growth = 1.1;
  EXPECT_THROW(s.validate(), ValidationError);
  // an in-process fault plan would rewrite the reference trajectory
  s = cluster_scenario();
  s.fault = fault::FaultPlan::parse("throw:fz.z0.rhs:2:0");
  EXPECT_THROW(s.validate(), ValidationError);
  // kill= without a cluster
  s = cluster_scenario();
  s.workers = 0;
  s.kill_worker = 0;
  s.kill_step = 1;
  EXPECT_THROW(s.validate(), ValidationError);
  // kill= outside the worker/step range
  s = cluster_scenario();
  s.kill_worker = 2;
  s.kill_step = 1;
  EXPECT_THROW(s.validate(), ValidationError);
  s = cluster_scenario();
  s.hang_worker = 0;
  s.hang_step = 99;
  EXPECT_THROW(s.validate(), ValidationError);
  // the happy path stays legal
  EXPECT_NO_THROW(cluster_scenario().validate());
}

TEST(ClusterScenario, BadKillSyntaxIsTyped) {
  EXPECT_THROW(Scenario::parse("v1 kill=3"), ValidationError);
  EXPECT_THROW(Scenario::parse("v1 kill=a:b"), ValidationError);
  EXPECT_THROW(Scenario::parse("v1 hang=1:"), ValidationError);
}

TEST(ClusterOracle, CleanClusterCaseMatchesInProcess) {
  const Scenario s = cluster_scenario();
  const CaseResult r = run_case(s, cluster_options("clean"));
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.signature(), "pass");
}

TEST(ClusterOracle, KilledWorkerRecoversOntoCleanTrajectory) {
  Scenario s = cluster_scenario();
  s.kill_worker = 1;
  s.kill_step = 3;
  const CaseResult r = run_case(s, cluster_options("kill"));
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.recoveries, 1) << "the injected kill never fired";
}

}  // namespace
}  // namespace llp::fuzz
