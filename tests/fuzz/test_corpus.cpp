// Corpus files: save/load round-trips, listing, buckets, and the
// checked-in seed corpus (FUZZ_CORPUS_DIR) staying parseable.
#include "fuzz/corpus.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace llp::fuzz {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_fuzz_corpus_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Corpus, SaveLoadRoundTrip) {
  const std::string dir = temp_dir("roundtrip");
  Scenario s;
  s.seed = 99;
  s.zones = {f3d::ZoneDims{5, 6, 7}};
  s.fault = fault::FaultPlan::parse("throw:fz.z0.rhs:2:0");

  CaseResult r;
  r.oracle = OracleId::kValidation;
  r.error_type = "budget-exhausted";
  r.region = "fz.z0.rhs";
  r.detail = "lane 0 threw";

  const std::string path = dir + "/" + case_filename(s, r);
  save_case(path, s, r);
  const Scenario back = load_case(path);
  EXPECT_EQ(back.to_line(), s.to_line());
}

TEST(Corpus, SavedFileCarriesSignatureComment) {
  const std::string dir = temp_dir("comments");
  Scenario s;
  CaseResult r;
  r.oracle = OracleId::kRace;
  r.error_type = "write-write";
  const std::string path = dir + "/x.case";
  save_case(path, s, r);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("#", 0), 0u) << first;
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("race/write-write"), std::string::npos);
}

TEST(Corpus, CaseFilenameIsFilesystemSafe) {
  Scenario s;
  s.seed = 12;
  CaseResult r;
  r.oracle = OracleId::kValidation;
  r.error_type = "non-finite";
  r.region = "fz.z0.update";
  const std::string name = case_filename(s, r);
  EXPECT_EQ(name.find('/'), std::string::npos) << name;
  EXPECT_NE(name.find("12"), std::string::npos) << name;
  EXPECT_NE(name.find(".case"), std::string::npos) << name;
}

TEST(Corpus, ListCasesSortedAndFiltered) {
  const std::string dir = temp_dir("list");
  Scenario s;
  CaseResult r;
  save_case(dir + "/b.case", s, r);
  save_case(dir + "/a.case", s, r);
  std::ofstream(dir + "/notes.txt") << "not a case\n";
  const auto cases = list_cases(dir);
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_NE(cases[0].find("a.case"), std::string::npos);
  EXPECT_NE(cases[1].find("b.case"), std::string::npos);
}

TEST(Corpus, ListCasesMissingDirIsEmpty) {
  EXPECT_TRUE(list_cases(::testing::TempDir() + "does_not_exist_xyz").empty());
}

TEST(Corpus, LoadRejectsEmptyAndMalformed) {
  const std::string dir = temp_dir("bad");
  std::ofstream(dir + "/empty.case") << "# only comments\n\n";
  EXPECT_THROW(load_case(dir + "/empty.case"), ValidationError);
  std::ofstream(dir + "/garbage.case") << "v1 frobnicate=1\n";
  EXPECT_THROW(load_case(dir + "/garbage.case"), ValidationError);
  EXPECT_THROW(load_case(dir + "/missing.case"), IoError);
}

TEST(Corpus, BucketSetCountsAndSummarizes) {
  BucketSet buckets;
  EXPECT_TRUE(buckets.record("validation/non-finite"));
  EXPECT_FALSE(buckets.record("validation/non-finite"));
  EXPECT_TRUE(buckets.record("race/write-write"));
  EXPECT_EQ(buckets.count("validation/non-finite"), 2);
  EXPECT_EQ(buckets.count("race/write-write"), 1);
  EXPECT_EQ(buckets.count("never-seen"), 0);
  EXPECT_EQ(buckets.size(), 2u);
  const std::string summary = buckets.summary();
  EXPECT_NE(summary.find("validation/non-finite x2"), std::string::npos)
      << summary;
}

TEST(Corpus, CheckedInSeedCorpusParsesAndRoundTrips) {
  // The shipped corpus/ seeds must stay loadable forever: they are the
  // fuzz-smoke CI's replay inputs and the known-bad canaries.
  const auto cases = list_cases(FUZZ_CORPUS_DIR);
  ASSERT_GE(cases.size(), 5u);
  for (const auto& path : cases) {
    const Scenario s = load_case(path);
    EXPECT_EQ(Scenario::parse(s.to_line()).to_line(), s.to_line()) << path;
  }
}

}  // namespace
}  // namespace llp::fuzz
