// Exception semantics and cooperative cancellation of the parallel
// constructs: exactly one error is rethrown, siblings stop within one chunk
// of a failure, partial reductions are discarded, and the shared pool stays
// usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/llp.hpp"
#include "util/error.hpp"

namespace {

llp::ForOptions dynamic_opts(int threads, std::int64_t chunk) {
  return llp::ForOptions{}
      .with_schedule(llp::Schedule::kDynamic)
      .with_chunk(chunk)
      .with_threads(threads);
}

TEST(Cancel, CancelledIsFalseOutsideParallelConstructs) {
  EXPECT_FALSE(llp::cancelled());
}

TEST(Cancel, ParallelForRethrowsExactlyOneError) {
  // Several lanes throw; the caller must observe exactly one exception
  // (first error wins) and the dispatch must not terminate or deadlock.
  std::atomic<int> caught{0};
  try {
    llp::parallel_for(
        0, 64, [](std::int64_t i) {
          if (i % 8 == 0) {
            throw std::runtime_error("lane error at " + std::to_string(i));
          }
        },
        dynamic_opts(4, 1));
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_NE(std::string(e.what()).find("lane error at"), std::string::npos);
  }
  EXPECT_EQ(caught.load(), 1);
}

TEST(Cancel, SiblingsStopWithinOneChunkOfAFailure) {
  // chunk = 1 and a body slow enough that cancellation must land long
  // before the range is exhausted. If siblings ignored the cancel token
  // they would execute all n - 1 healthy iterations.
  const std::int64_t n = 1000;
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(
      llp::parallel_for(
          0, n,
          [&](std::int64_t i) {
            if (i == 0) throw std::runtime_error("fail fast");
            executed.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          },
          dynamic_opts(4, 1)),
      std::runtime_error);
  EXPECT_LT(executed.load(), n / 2)
      << "siblings kept running long after the failing lane threw";
}

TEST(Cancel, ParallelReduceDiscardsPartialsAndPoolStaysUsable) {
  EXPECT_THROW(
      llp::parallel_reduce<std::int64_t>(
          0, 100, 0, [](std::int64_t a, std::int64_t b) { return a + b; },
          [](std::int64_t i, std::int64_t& acc) {
            if (i == 50) throw std::runtime_error("reduce fault");
            acc += i;
          },
          dynamic_opts(4, 4)),
      std::runtime_error);

  // The same pool serves the next loop, and the failed run's partial
  // accumulators have no way to leak into it.
  const std::int64_t sum = llp::parallel_reduce<std::int64_t>(
      0, 100, 0, [](std::int64_t a, std::int64_t b) { return a + b; },
      [](std::int64_t i, std::int64_t& acc) { acc += i; },
      dynamic_opts(4, 4));
  EXPECT_EQ(sum, 100 * 99 / 2);
}

TEST(Cancel, ParallelFor2dRethrows) {
  const llp::ForOptions o = llp::ForOptions{}.with_threads(4);
  EXPECT_THROW(llp::parallel_for_2d(
                   8, 8,
                   [](std::int64_t i, std::int64_t j) {
                     if (i == 3 && j == 3) throw std::runtime_error("2d");
                   },
                   o),
               std::runtime_error);
  // And the pool remains usable.
  std::atomic<std::int64_t> cells{0};
  llp::parallel_for_2d(
      8, 8, [&](std::int64_t, std::int64_t) { ++cells; }, o);
  EXPECT_EQ(cells.load(), 64);
}

TEST(Cancel, SerialPathPropagates) {
  const llp::ForOptions o = llp::ForOptions{}.with_threads(1);
  EXPECT_THROW(llp::parallel_for(
                   0, 4,
                   [](std::int64_t i) {
                     if (i == 2) throw std::runtime_error("serial");
                   },
                   o),
               std::runtime_error);
}

TEST(Cancel, EveryScheduleRethrows) {
  for (const llp::Schedule s :
       {llp::Schedule::kStaticBlock, llp::Schedule::kStaticChunked,
        llp::Schedule::kDynamic, llp::Schedule::kGuided}) {
    const llp::ForOptions o =
        llp::ForOptions{}.with_schedule(s).with_chunk(2).with_threads(4);
    EXPECT_THROW(llp::parallel_for(
                     0, 64,
                     [](std::int64_t i) {
                       if (i == 17) throw std::runtime_error("schedule");
                     },
                     o),
                 std::runtime_error)
        << "schedule " << static_cast<int>(s);
  }
}

}  // namespace
