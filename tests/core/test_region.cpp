#include "core/region.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"

namespace {

using llp::RegionKind;
using llp::RegionRegistry;

TEST(RegionRegistry, DefineReturnsDenseIds) {
  RegionRegistry reg;
  EXPECT_EQ(reg.define("a"), 0u);
  EXPECT_EQ(reg.define("b"), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegionRegistry, DefineIsIdempotentByName) {
  RegionRegistry reg;
  const auto id = reg.define("loop");
  EXPECT_EQ(reg.define("loop"), id);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegionRegistry, FindByName) {
  RegionRegistry reg;
  reg.define("x");
  const auto id = reg.define("y");
  EXPECT_EQ(reg.find("y"), id);
  EXPECT_EQ(reg.find("missing"), llp::kNoRegion);
}

TEST(RegionRegistry, ParallelLoopDefaultsEnabled) {
  RegionRegistry reg;
  const auto id = reg.define("loop", RegionKind::kParallelLoop);
  EXPECT_TRUE(reg.parallel_enabled(id));
}

TEST(RegionRegistry, SerialDefaultsDisabled) {
  RegionRegistry reg;
  const auto id = reg.define("bc", RegionKind::kSerial);
  EXPECT_FALSE(reg.parallel_enabled(id));
}

TEST(RegionRegistry, EnableDisableToggle) {
  RegionRegistry reg;
  const auto id = reg.define("loop");
  reg.set_parallel_enabled(id, false);
  EXPECT_FALSE(reg.parallel_enabled(id));
  reg.set_parallel_enabled(id, true);
  EXPECT_TRUE(reg.parallel_enabled(id));
}

TEST(RegionRegistry, SetAllParallelSkipsSerialRegions) {
  RegionRegistry reg;
  const auto loop = reg.define("loop", RegionKind::kParallelLoop);
  const auto bc = reg.define("bc", RegionKind::kSerial);
  reg.set_all_parallel(true);
  EXPECT_TRUE(reg.parallel_enabled(loop));
  EXPECT_FALSE(reg.parallel_enabled(bc));
}

TEST(RegionRegistry, RecordAccumulates) {
  RegionRegistry reg;
  const auto id = reg.define("loop");
  reg.record(id, 100, 0.5);
  reg.record(id, 100, 0.25);
  const auto s = reg.stats(id);
  EXPECT_EQ(s.invocations, 2u);
  EXPECT_EQ(s.total_trips, 200u);
  EXPECT_DOUBLE_EQ(s.seconds, 0.75);
  EXPECT_DOUBLE_EQ(s.mean_trips(), 100.0);
}

TEST(RegionRegistry, FlopsAndBytesAccumulate) {
  RegionRegistry reg;
  const auto id = reg.define("loop");
  reg.add_flops(id, 1e6);
  reg.add_flops(id, 2e6);
  reg.add_bytes(id, 500.0);
  const auto s = reg.stats(id);
  EXPECT_DOUBLE_EQ(s.flops, 3e6);
  EXPECT_DOUBLE_EQ(s.bytes, 500.0);
}

TEST(RegionRegistry, ResetStatsKeepsDefinitionsAndFlags) {
  RegionRegistry reg;
  const auto id = reg.define("loop");
  reg.set_parallel_enabled(id, false);
  reg.record(id, 10, 0.1);
  reg.reset_stats();
  const auto s = reg.stats(id);
  EXPECT_EQ(s.invocations, 0u);
  EXPECT_DOUBLE_EQ(s.seconds, 0.0);
  EXPECT_FALSE(reg.parallel_enabled(id));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegionRegistry, BadIdThrows) {
  RegionRegistry reg;
  EXPECT_THROW(reg.stats(3), llp::Error);
  EXPECT_THROW(reg.record(0, 1, 0.1), llp::Error);
  EXPECT_THROW(reg.set_parallel_enabled(9, true), llp::Error);
}

TEST(RegionRegistry, SnapshotInDefinitionOrder) {
  RegionRegistry reg;
  reg.define("first");
  reg.define("second");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "first");
  EXPECT_EQ(snap[1].name, "second");
}

TEST(RegionRegistry, ProfileReportSortsByTime) {
  RegionRegistry reg;
  const auto fast = reg.define("fast");
  const auto slow = reg.define("slow");
  reg.record(fast, 1, 0.01);
  reg.record(slow, 1, 1.0);
  const std::string report = reg.profile_report();
  EXPECT_LT(report.find("slow"), report.find("fast"));
}

TEST(RegionRegistry, ConcurrentDefineIsSafe) {
  RegionRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 100; ++i) {
        reg.define("shared" + std::to_string(i % 10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.size(), 10u);
}

TEST(RegionStats, MeanTripsZeroWithoutInvocations) {
  llp::RegionStats s;
  EXPECT_DOUBLE_EQ(s.mean_trips(), 0.0);
}

}  // namespace
namespace {

TEST(RegionRegistry, LaneTimesAccumulateAndComputeImbalance) {
  llp::RegionRegistry reg;
  const auto id = reg.define("lanes");
  reg.record_lanes(id, 0.4, 0.2);
  reg.record_lanes(id, 0.2, 0.1);
  const auto s = reg.stats(id);
  EXPECT_DOUBLE_EQ(s.lane_max_seconds, 0.6);
  EXPECT_DOUBLE_EQ(s.lane_mean_seconds, 0.3);
  EXPECT_DOUBLE_EQ(s.imbalance(), 2.0);
}

TEST(RegionRegistry, ImbalanceZeroWithoutLaneData) {
  llp::RegionStats s;
  EXPECT_DOUBLE_EQ(s.imbalance(), 0.0);
}

TEST(RegionRegistry, ResetClearsLaneTimes) {
  llp::RegionRegistry reg;
  const auto id = reg.define("lanes2");
  reg.record_lanes(id, 0.4, 0.2);
  reg.reset_stats();
  EXPECT_DOUBLE_EQ(reg.stats(id).lane_max_seconds, 0.0);
  EXPECT_DOUBLE_EQ(reg.stats(id).imbalance(), 0.0);
}

}  // namespace
