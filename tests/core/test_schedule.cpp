#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace {

using llp::IterRange;
using llp::static_block;
using llp::static_chunks;

// Property: blocks partition [0,n) exactly — disjoint, complete, in order.
class StaticBlockPartition
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StaticBlockPartition, CoversRangeExactlyOnce) {
  const auto [n, threads] = GetParam();
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  std::int64_t prev_end = 0;
  for (int t = 0; t < threads; ++t) {
    const IterRange r = static_block(n, t, threads);
    EXPECT_EQ(r.begin, prev_end) << "blocks must be contiguous";
    prev_end = r.end;
    for (std::int64_t i = r.begin; i < r.end; ++i) hits[i]++;
  }
  EXPECT_EQ(prev_end, n);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_P(StaticBlockPartition, NoBlockExceedsCeil) {
  const auto [n, threads] = GetParam();
  const std::int64_t limit = llp::max_block_size(n, threads);
  for (int t = 0; t < threads; ++t) {
    EXPECT_LE(static_block(n, t, threads).size(), limit);
  }
}

TEST_P(StaticBlockPartition, BlockSizesDifferByAtMostOne) {
  const auto [n, threads] = GetParam();
  std::int64_t lo = n + 1, hi = -1;
  for (int t = 0; t < threads; ++t) {
    const auto sz = static_block(n, t, threads).size();
    lo = std::min(lo, sz);
    hi = std::max(hi, sz);
  }
  EXPECT_LE(hi - lo, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticBlockPartition,
    ::testing::Combine(::testing::Values(0, 1, 7, 15, 64, 75, 450, 1000),
                       ::testing::Values(1, 2, 3, 7, 16, 64, 128)));

TEST(MaxBlockSize, IsCeilDivision) {
  EXPECT_EQ(llp::max_block_size(15, 2), 8);
  EXPECT_EQ(llp::max_block_size(15, 4), 4);
  EXPECT_EQ(llp::max_block_size(15, 15), 1);
  EXPECT_EQ(llp::max_block_size(0, 4), 0);
  EXPECT_EQ(llp::max_block_size(1, 128), 1);
}

TEST(StaticChunks, UnionCoversRange) {
  const int n = 103, threads = 4;
  const std::int64_t chunk = 7;
  std::vector<int> hits(n, 0);
  for (int t = 0; t < threads; ++t) {
    for (const IterRange& r : static_chunks(n, t, threads, chunk)) {
      for (std::int64_t i = r.begin; i < r.end; ++i) hits[i]++;
    }
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(StaticChunks, RoundRobinAssignment) {
  // With chunk=2, thread 1 of 3 owns [2,4), [8,10), ...
  const auto rs = static_chunks(12, 1, 3, 2);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].begin, 2);
  EXPECT_EQ(rs[0].end, 4);
  EXPECT_EQ(rs[1].begin, 8);
  EXPECT_EQ(rs[1].end, 10);
}

TEST(StaticChunks, RejectsBadArgs) {
  EXPECT_THROW(llp::static_chunks(10, 0, 2, 0), llp::Error);
  EXPECT_THROW(llp::static_chunks(10, 2, 2, 1), llp::Error);
}

TEST(GuidedChunk, ShrinksWithRemaining) {
  const std::int64_t c1 = llp::guided_chunk(1000, 4, 1);
  const std::int64_t c2 = llp::guided_chunk(100, 4, 1);
  EXPECT_GT(c1, c2);
}

TEST(GuidedChunk, NeverBelowMinimum) {
  EXPECT_EQ(llp::guided_chunk(3, 8, 5), 5);
  EXPECT_EQ(llp::guided_chunk(0, 8, 2), 2);
}

TEST(IterRange, SizeAndEmpty) {
  EXPECT_TRUE((IterRange{3, 3}).empty());
  EXPECT_TRUE((IterRange{5, 3}).empty());
  EXPECT_EQ((IterRange{2, 9}).size(), 7);
}

}  // namespace
