// The RuntimeObserver seam: event dispatch, registration semantics, and
// equivalence between the legacy set_tuner / set_fault_hook entry points
// and a self-registered observer exposing the same facets.
#include "core/observer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/llp.hpp"
#include "core/runtime.hpp"

namespace {

llp::RegionId test_region(const char* name) {
  auto& reg = llp::regions();
  const llp::RegionId existing = reg.find(name);
  return existing == llp::kNoRegion ? reg.define(name) : existing;
}

// Counts events per kind; thread-safe the cheap way (atomics).
class CountingObserver : public llp::RuntimeObserver {
public:
  void on_event(const llp::Event& event) override {
    counts_[static_cast<std::size_t>(event.kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  int count(llp::EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)].load();
  }
  int total() const {
    int n = 0;
    for (const auto& c : counts_) n += c.load();
    return n;
  }

private:
  std::array<std::atomic<int>, llp::kNumEventKinds> counts_{};
};

class RecordingTuner : public llp::LoopTuner {
public:
  llp::LoopConfig choose(llp::RegionId, std::int64_t) override {
    ++chooses;
    llp::LoopConfig c;
    c.schedule = llp::Schedule::kDynamic;
    c.chunk = 4;
    c.num_threads = 2;
    return c;
  }
  void report(llp::RegionId, std::int64_t, const llp::LoopConfig& used,
              double, double, bool valid) override {
    ++reports;
    last_used = used;
    last_valid = valid;
  }
  int chooses = 0;
  int reports = 0;
  llp::LoopConfig last_used;
  bool last_valid = false;
};

class CountingFaultHook : public llp::FaultHook {
public:
  std::uint64_t begin(llp::RegionId) override { return invocations++; }
  void on_lane(llp::RegionId, std::uint64_t, int) override { ++lane_calls; }
  bool tainted(llp::RegionId, std::uint64_t) override { return false; }
  std::atomic<std::uint64_t> invocations{0};
  std::atomic<int> lane_calls{0};
};

// An observer offering facets, as src/tune or src/fault could self-register.
class FacetObserver : public llp::RuntimeObserver {
public:
  explicit FacetObserver(llp::LoopTuner* t, llp::FaultHook* f)
      : tuner_(t), fault_(f) {}
  llp::LoopTuner* tuner_facet() override { return tuner_; }
  llp::FaultHook* fault_facet() override { return fault_; }

private:
  llp::LoopTuner* tuner_;
  llp::FaultHook* fault_;
};

void run_region_loop(llp::RegionId region) {
  llp::parallel_for(
      0, 32, [](std::int64_t) {},
      llp::ForOptions::in_region(region).with_threads(2));
}

TEST(Observer, RegisteredObserverSeesRegionLifecycle) {
  CountingObserver obs;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&obs);
  run_region_loop(test_region("core.observer.lifecycle"));
  rt.remove_observer(&obs);

  EXPECT_EQ(obs.count(llp::EventKind::kRegionEnter), 1);
  EXPECT_EQ(obs.count(llp::EventKind::kRegionExit), 1);
  EXPECT_EQ(obs.count(llp::EventKind::kLaneBegin),
            obs.count(llp::EventKind::kLaneEnd));
  EXPECT_GE(obs.count(llp::EventKind::kLaneBegin), 1);
}

TEST(Observer, UnobservedLoopEmitsNothing) {
  CountingObserver obs;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&obs);
  rt.remove_observer(&obs);
  run_region_loop(test_region("core.observer.unobserved"));
  EXPECT_EQ(obs.total(), 0);
}

TEST(Observer, DuplicateAddDispatchesOnce) {
  CountingObserver obs;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&obs);
  rt.add_observer(&obs);  // no-op, not a double registration
  run_region_loop(test_region("core.observer.duplicate"));
  rt.remove_observer(&obs);
  EXPECT_EQ(obs.count(llp::EventKind::kRegionEnter), 1);
}

TEST(Observer, AllRegisteredObserversReceiveEachEvent) {
  CountingObserver a, b;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&a);
  rt.add_observer(&b);
  run_region_loop(test_region("core.observer.fanout"));
  rt.remove_observer(&a);
  rt.remove_observer(&b);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_GT(a.total(), 0);
}

TEST(Observer, EmitStampsTimestampWhenZero) {
  CountingObserver obs;
  llp::ObserverList list{&obs};
  llp::Event e;
  e.kind = llp::EventKind::kMark;
  EXPECT_EQ(e.t_ns, 0u);
  llp::emit_event(list, e);
  EXPECT_EQ(obs.count(llp::EventKind::kMark), 1);

  // Runtime::emit reaches registered observers the same way.
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&obs);
  rt.emit(e);
  rt.remove_observer(&obs);
  EXPECT_EQ(obs.count(llp::EventKind::kMark), 2);
}

TEST(Observer, LaneContextMarkReachesObservers) {
  CountingObserver obs;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&obs);
  llp::parallel_for(
      0, 8,
      [](std::int64_t i, const llp::LaneContext& ctx) { ctx.mark(i, 99); },
      llp::ForOptions::in_region(test_region("core.observer.mark"))
          .with_threads(2));
  rt.remove_observer(&obs);
  EXPECT_EQ(obs.count(llp::EventKind::kMark), 8);
}

TEST(Observer, SetTunerAndFacetObserverAreEquivalent) {
  const llp::RegionId region = test_region("core.observer.tuner_equiv");
  auto& rt = llp::Runtime::instance();
  rt.set_auto_tune_enabled(true);

  auto run_auto = [&] {
    llp::parallel_for(0, 64, [](std::int64_t) {},
                      llp::ForOptions::auto_tuned(region));
  };

  // Path 1: the legacy entry point (now an internal adapter observer).
  RecordingTuner legacy;
  rt.set_tuner(&legacy);
  run_auto();
  rt.set_tuner(nullptr);

  // Path 2: a self-registered observer exposing the facet.
  RecordingTuner modern;
  FacetObserver facet(&modern, nullptr);
  rt.add_observer(&facet);
  run_auto();
  rt.remove_observer(&facet);

  EXPECT_EQ(legacy.chooses, 1);
  EXPECT_EQ(legacy.reports, 1);
  EXPECT_EQ(modern.chooses, legacy.chooses);
  EXPECT_EQ(modern.reports, legacy.reports);
  EXPECT_EQ(modern.last_used, legacy.last_used);
  EXPECT_TRUE(legacy.last_valid);
  EXPECT_TRUE(modern.last_valid);

  rt.set_auto_tune_enabled(false);
}

TEST(Observer, SetFaultHookAndFacetObserverAreEquivalent) {
  const llp::RegionId region = test_region("core.observer.fault_equiv");
  auto& rt = llp::Runtime::instance();

  CountingFaultHook legacy;
  rt.set_fault_hook(&legacy);
  run_region_loop(region);
  rt.set_fault_hook(nullptr);

  CountingFaultHook modern;
  FacetObserver facet(nullptr, &modern);
  rt.add_observer(&facet);
  run_region_loop(region);
  rt.remove_observer(&facet);

  EXPECT_EQ(legacy.invocations.load(), 1u);
  EXPECT_EQ(modern.invocations.load(), legacy.invocations.load());
  EXPECT_EQ(modern.lane_calls.load(), legacy.lane_calls.load());
  EXPECT_GE(legacy.lane_calls.load(), 1);
}

TEST(Observer, FindFacetsScanRegistrationOrder) {
  RecordingTuner tuner;
  CountingFaultHook hook;
  FacetObserver facet(&tuner, &hook);
  CountingObserver plain;
  auto& rt = llp::Runtime::instance();
  rt.add_observer(&plain);   // no facets — must be skipped by the scan
  rt.add_observer(&facet);

  const llp::ObserverSnapshot snap = rt.observers();
  EXPECT_EQ(llp::find_tuner(*snap), &tuner);
  EXPECT_EQ(llp::find_fault_hook(*snap), &hook);

  rt.remove_observer(&facet);
  rt.remove_observer(&plain);
  const llp::ObserverSnapshot after = rt.observers();
  EXPECT_EQ(llp::find_tuner(*after), nullptr);
  EXPECT_EQ(llp::find_fault_hook(*after), nullptr);
}

}  // namespace
