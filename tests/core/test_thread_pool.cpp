#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace {

TEST(ThreadPool, RejectsZeroSize) {
  EXPECT_THROW(llp::ThreadPool(0), llp::Error);
}

TEST(ThreadPool, SizeOneRunsOnCaller) {
  llp::ThreadPool pool(1);
  int lane_seen = -1;
  pool.run([&](int lane) { lane_seen = lane; });
  EXPECT_EQ(lane_seen, 0);
}

TEST(ThreadPool, AllLanesExecuteExactlyOnce) {
  for (int size : {1, 2, 4, 8}) {
    llp::ThreadPool pool(size);
    std::vector<std::atomic<int>> counts(static_cast<std::size_t>(size));
    pool.run([&](int lane) { counts[static_cast<std::size_t>(lane)]++; });
    for (int i = 0; i < size; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPool, RepeatedRunsWork) {
  llp::ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, SyncEventsCountRuns) {
  llp::ThreadPool pool(3);
  EXPECT_EQ(pool.sync_events(), 0u);
  pool.run([](int) {});
  pool.run([](int) {});
  EXPECT_EQ(pool.sync_events(), 2u);
}

TEST(ThreadPool, ExceptionFromWorkerPropagates) {
  llp::ThreadPool pool(4);
  // Worker lanes are 1..3; lane 2 throws.
  EXPECT_THROW(pool.run([](int lane) {
                 if (lane == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPool, ExceptionFromCallerLanePropagates) {
  llp::ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int lane) {
                 if (lane == 0) throw std::runtime_error("caller");
               }),
               std::runtime_error);
  // Regression: a throwing run must not leave the pool's run state set
  // (stale task / in_run), so the next run works normally.
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, ReentrantRunThrows) {
  llp::ThreadPool pool(2);
  EXPECT_THROW(pool.run([&](int lane) {
                 if (lane == 0) pool.run([](int) {});
               }),
               llp::Error);
}

TEST(ThreadPool, UsableAfterReentrantRunThrows) {
  // The reentrancy error unwinds out of lane 0's body; in_run and the task
  // slot must be reset on that path too.
  llp::ThreadPool pool(2);
  EXPECT_THROW(pool.run([&](int lane) {
                 if (lane == 0) pool.run([](int) {});
               }),
               llp::Error);
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, CancelTokenVisibleToLanes) {
  // Once one lane throws, llp::cancelled() flips for the siblings.
  llp::ThreadPool pool(2);
  std::atomic<bool> thrown{false};
  std::atomic<bool> sibling_saw_cancel{false};
  EXPECT_THROW(
      pool.run([&](int lane) {
        if (lane == 0) {
          thrown.store(true);
          throw std::runtime_error("boom");
        }
        // Wait (bounded) for the cancel flag to become visible.
        for (int i = 0; i < 20000; ++i) {
          if (llp::cancelled()) {
            sibling_saw_cancel.store(true);
            return;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }),
      std::runtime_error);
  EXPECT_TRUE(thrown.load());
  EXPECT_TRUE(sibling_saw_cancel.load());
}

TEST(ThreadPool, StragglerWithinDeadlineIsNotATimeout) {
  llp::ThreadPool pool(2);
  pool.set_deadline(5.0);
  pool.run([](int lane) {
    if (lane == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  EXPECT_FALSE(pool.abandoned());
  // And the pool still runs.
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, WatchdogConvertsHangToTimeoutError) {
  // Lane 1 "hangs" until released. The watchdog must convert the missed
  // join into llp::TimeoutError on the caller instead of deadlocking; once
  // the straggler finally arrives, the pool heals and runs again.
  llp::ThreadPool pool(2);
  pool.set_deadline(0.05);
  std::atomic<bool> release{false};
  EXPECT_THROW(pool.run([&](int lane) {
                 if (lane == 1) {
                   // Deliberately ignores llp::cancelled(): a
                   // non-cooperative hang.
                   while (!release.load()) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(1));
                   }
                 }
               }),
               llp::TimeoutError);
  EXPECT_TRUE(pool.abandoned());
  EXPECT_THROW(pool.run([](int) {}), llp::Error);  // refuses while abandoned

  release.store(true);
  // The straggler reaches the join; the pool reports healthy again.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.abandoned() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(pool.abandoned());
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, ManyPoolsCreateAndDestroy) {
  for (int i = 0; i < 20; ++i) {
    llp::ThreadPool pool(3);
    std::atomic<int> n{0};
    pool.run([&](int) { n++; });
    EXPECT_EQ(n.load(), 3);
  }
}

TEST(ThreadPool, LanesAreDistinct) {
  llp::ThreadPool pool(8);
  std::mutex mu;
  std::set<int> lanes;
  pool.run([&](int lane) {
    std::lock_guard<std::mutex> lock(mu);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes.size(), 8u);
  EXPECT_EQ(*lanes.begin(), 0);
  EXPECT_EQ(*lanes.rbegin(), 7);
}

}  // namespace
