#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace {

TEST(ThreadPool, RejectsZeroSize) {
  EXPECT_THROW(llp::ThreadPool(0), llp::Error);
}

TEST(ThreadPool, SizeOneRunsOnCaller) {
  llp::ThreadPool pool(1);
  int lane_seen = -1;
  pool.run([&](int lane) { lane_seen = lane; });
  EXPECT_EQ(lane_seen, 0);
}

TEST(ThreadPool, AllLanesExecuteExactlyOnce) {
  for (int size : {1, 2, 4, 8}) {
    llp::ThreadPool pool(size);
    std::vector<std::atomic<int>> counts(static_cast<std::size_t>(size));
    pool.run([&](int lane) { counts[static_cast<std::size_t>(lane)]++; });
    for (int i = 0; i < size; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPool, RepeatedRunsWork) {
  llp::ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, SyncEventsCountRuns) {
  llp::ThreadPool pool(3);
  EXPECT_EQ(pool.sync_events(), 0u);
  pool.run([](int) {});
  pool.run([](int) {});
  EXPECT_EQ(pool.sync_events(), 2u);
}

TEST(ThreadPool, ExceptionFromWorkerPropagates) {
  llp::ThreadPool pool(4);
  // Worker lanes are 1..3; lane 2 throws.
  EXPECT_THROW(pool.run([](int lane) {
                 if (lane == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPool, ExceptionFromCallerLanePropagates) {
  llp::ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int lane) {
                 if (lane == 0) throw std::runtime_error("caller");
               }),
               std::runtime_error);
}

TEST(ThreadPool, ReentrantRunThrows) {
  llp::ThreadPool pool(2);
  EXPECT_THROW(pool.run([&](int lane) {
                 if (lane == 0) pool.run([](int) {});
               }),
               llp::Error);
}

TEST(ThreadPool, ManyPoolsCreateAndDestroy) {
  for (int i = 0; i < 20; ++i) {
    llp::ThreadPool pool(3);
    std::atomic<int> n{0};
    pool.run([&](int) { n++; });
    EXPECT_EQ(n.load(), 3);
  }
}

TEST(ThreadPool, LanesAreDistinct) {
  llp::ThreadPool pool(8);
  std::mutex mu;
  std::set<int> lanes;
  pool.run([&](int lane) {
    std::lock_guard<std::mutex> lock(mu);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes.size(), 8u);
  EXPECT_EQ(*lanes.begin(), 0);
  EXPECT_EQ(*lanes.rbegin(), 7);
}

}  // namespace
