#include "core/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <type_traits>
#include <vector>

#include "core/runtime.hpp"
#include "util/error.hpp"

namespace {

using llp::ForOptions;
using llp::Schedule;

// Every (schedule, thread-count) combination must produce identical results.
class ParallelForMatrix
    : public ::testing::TestWithParam<std::tuple<Schedule, int>> {};

TEST_P(ParallelForMatrix, EveryIterationRunsExactlyOnce) {
  const auto [sched, threads] = GetParam();
  const std::int64_t n = 257;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  const ForOptions opts =
      ForOptions{}.with_schedule(sched).with_chunk(3).with_threads(threads);
  llp::parallel_for(0, n, [&](std::int64_t i) { hits[i]++; }, opts);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForMatrix, RespectsBeginOffset) {
  const auto [sched, threads] = GetParam();
  const ForOptions opts =
      ForOptions{}.with_schedule(sched).with_threads(threads);
  std::atomic<std::int64_t> sum{0};
  llp::parallel_for(10, 20, [&](std::int64_t i) { sum += i; }, opts);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST_P(ParallelForMatrix, LaneIndexInRange) {
  const auto [sched, threads] = GetParam();
  const ForOptions opts =
      ForOptions{}.with_schedule(sched).with_threads(threads);
  std::atomic<bool> bad{false};
  llp::parallel_for(
      0, 100,
      [&](std::int64_t, int lane) {
        if (lane < 0 || lane >= threads) bad = true;
      },
      opts);
  EXPECT_FALSE(bad.load());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelForMatrix,
    ::testing::Combine(::testing::Values(Schedule::kStaticBlock,
                                         Schedule::kStaticChunked,
                                         Schedule::kDynamic,
                                         Schedule::kGuided),
                       ::testing::Values(1, 2, 3, 8)));

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  llp::parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  llp::parallel_for(5, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ThreadsClampedToTripCount) {
  const ForOptions opts = ForOptions{}.with_threads(16);
  std::atomic<int> max_lane{0};
  llp::parallel_for(
      0, 3,
      [&](std::int64_t, int lane) {
        int cur = max_lane.load();
        while (lane > cur && !max_lane.compare_exchange_weak(cur, lane)) {
        }
      },
      opts);
  EXPECT_LT(max_lane.load(), 3);
}

TEST(ParallelFor, RejectsNonPositiveChunk) {
  const ForOptions opts = ForOptions{}.with_chunk(0);
  EXPECT_THROW(llp::parallel_for(0, 10, [](std::int64_t) {}, opts),
               llp::Error);
}

TEST(ParallelFor, BodyExceptionPropagates) {
  const ForOptions opts = ForOptions{}.with_threads(4);
  EXPECT_THROW(llp::parallel_for(
                   0, 100,
                   [](std::int64_t i) {
                     if (i == 57) throw std::runtime_error("body");
                   },
                   opts),
               std::runtime_error);
}

TEST(ParallelFor, DisabledRegionRunsSerially) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.disabled_region");
  reg.set_parallel_enabled(id, false);
  const ForOptions opts = ForOptions::in_region(id).with_threads(8);
  std::atomic<int> max_lane{-1};
  llp::parallel_for(
      0, 64,
      [&](std::int64_t, int lane) {
        int cur = max_lane.load();
        while (lane > cur && !max_lane.compare_exchange_weak(cur, lane)) {
        }
      },
      opts);
  EXPECT_EQ(max_lane.load(), 0);  // everything on the calling lane
}

TEST(ParallelFor, RegionRecordsTripsAndInvocations) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.recorded_region");
  reg.reset_stats();
  const ForOptions opts = ForOptions::in_region(id);
  llp::parallel_for(0, 42, [](std::int64_t) {}, opts);
  llp::parallel_for(0, 42, [](std::int64_t) {}, opts);
  const auto s = reg.stats(id);
  EXPECT_EQ(s.invocations, 2u);
  EXPECT_EQ(s.total_trips, 84u);
}

TEST(ParallelFor2D, CoversWholeGrid) {
  const std::int64_t n0 = 13, n1 = 17;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n0 * n1));
  const ForOptions opts = ForOptions{}.with_threads(4);
  llp::parallel_for_2d(
      n0, n1, [&](std::int64_t a, std::int64_t b) { hits[a * n1 + b]++; },
      opts);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2D, IndicesInBounds) {
  std::atomic<bool> bad{false};
  llp::parallel_for_2d(5, 7, [&](std::int64_t a, std::int64_t b) {
    if (a < 0 || a >= 5 || b < 0 || b >= 7) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ParallelReduce, SumMatchesSerial) {
  for (int threads : {1, 2, 4, 8}) {
    const ForOptions opts = ForOptions{}.with_threads(threads);
    const double sum = llp::parallel_reduce<double>(
        0, 1000, 0.0, [](double a, double b) { return a + b; },
        [](std::int64_t i, double& acc) { acc += static_cast<double>(i); },
        opts);
    EXPECT_DOUBLE_EQ(sum, 499500.0) << threads;
  }
}

TEST(ParallelReduce, MaxReduction) {
  const ForOptions opts = ForOptions{}.with_threads(4);
  const double m = llp::parallel_reduce<double>(
      0, 100, -1e300, [](double a, double b) { return a > b ? a : b; },
      [](std::int64_t i, double& acc) {
        const double v = static_cast<double>((i * 37) % 101);
        if (v > acc) acc = v;
      },
      opts);
  EXPECT_DOUBLE_EQ(m, 100.0);
}

TEST(ParallelReduce, DeterministicForFixedThreadCount) {
  const ForOptions opts = ForOptions{}.with_threads(4);
  auto run = [&] {
    return llp::parallel_reduce<double>(
        0, 10000, 0.0, [](double a, double b) { return a + b; },
        [](std::int64_t i, double& acc) { acc += 1.0 / (1.0 + i); }, opts);
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);  // bitwise: same partition, same combine order
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  const double v = llp::parallel_reduce<double>(
      3, 3, 0.0, [](double a, double b) { return a + b; },
      [](std::int64_t, double& acc) { acc += 1.0; });
  EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
namespace {

TEST(ParallelFor, InstrumentedLoopRecordsLaneImbalance) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.lane_imbalance");
  reg.reset_stats();
  const llp::ForOptions opts = llp::ForOptions::in_region(id).with_threads(4);
  llp::parallel_for(0, 64, [](std::int64_t i) {
    volatile double x = 0.0;
    for (std::int64_t k = 0; k < 200 * (i + 1); ++k) x = x + 1.0;
  }, opts);
  const auto s = reg.stats(id);
  EXPECT_GT(s.lane_mean_seconds, 0.0);
  EXPECT_GE(s.imbalance(), 1.0);
}

TEST(ParallelFor, SerialExecutionRecordsNoLaneData) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.serial_lanes");
  reg.reset_stats();
  const llp::ForOptions opts = llp::ForOptions::in_region(id).with_threads(1);
  llp::parallel_for(0, 16, [](std::int64_t) {}, opts);
  EXPECT_DOUBLE_EQ(reg.stats(id).lane_mean_seconds, 0.0);
}

}  // namespace

// ---------------------------------------------------------------------------
// ForOptions builder + LaneContext (the unified-event-API surface).

namespace {

TEST(ForOptionsBuilder, ChainsAndMatchesAggregateInit) {
  const llp::ForOptions built = llp::ForOptions{}
                                    .with_schedule(llp::Schedule::kGuided)
                                    .with_chunk(16)
                                    .with_threads(3);
  llp::ForOptions aggregate;
  aggregate.schedule = llp::Schedule::kGuided;
  aggregate.chunk = 16;
  aggregate.num_threads = 3;
  EXPECT_EQ(built.schedule, aggregate.schedule);
  EXPECT_EQ(built.chunk, aggregate.chunk);
  EXPECT_EQ(built.num_threads, aggregate.num_threads);
  EXPECT_EQ(built.region, llp::kNoRegion);
  EXPECT_FALSE(built.auto_tune);
}

TEST(ForOptionsBuilder, FactoriesSetRegionAndAutoTune) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.builder.factories");

  const llp::ForOptions in = llp::ForOptions::in_region(id);
  EXPECT_EQ(in.region, id);
  EXPECT_FALSE(in.auto_tune);

  const llp::ForOptions tuned = llp::ForOptions::auto_tuned(id);
  EXPECT_EQ(tuned.region, id);
  EXPECT_TRUE(tuned.auto_tune);

  EXPECT_TRUE(llp::ForOptions::kAuto.auto_tune);
  EXPECT_TRUE(llp::ForOptions{}.with_auto_tune().auto_tune);
}

TEST(LaneContextBody, ReceivesLaneAndRegion) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.ctx.identity");
  std::mutex mu;
  std::set<int> lanes;
  bool region_ok = true;
  llp::parallel_for(
      0, 64,
      [&](std::int64_t, const llp::LaneContext& ctx) {
        std::lock_guard<std::mutex> lock(mu);
        lanes.insert(ctx.lane());
        region_ok = region_ok && ctx.region() == id && !ctx.cancelled();
      },
      llp::ForOptions::in_region(id).with_threads(2));
  EXPECT_TRUE(region_ok);
  EXPECT_EQ(lanes.size(), 2u);
  EXPECT_TRUE(lanes.count(0));
  EXPECT_TRUE(lanes.count(1));
}

TEST(LaneContextBody, WorksOnSerialPathToo) {
  auto& reg = llp::regions();
  const auto id = reg.define("pf.ctx.serial");
  int calls = 0;
  llp::parallel_for(
      0, 8,
      [&](std::int64_t, const llp::LaneContext& ctx) {
        calls += ctx.lane() == 0 ? 1 : 100;  // serial path is lane 0
      },
      llp::ForOptions::in_region(id).with_threads(1));
  EXPECT_EQ(calls, 8);
}

TEST(LaneContextBody, BareLaneOverloadStillWins) {
  // A generic (i, lane) lambda must keep its historical int-lane meaning,
  // not be promoted to the LaneContext overload.
  std::atomic<int> max_lane{-1};
  llp::parallel_for(
      0, 32,
      [&](std::int64_t, auto lane) {
        static_assert(std::is_same_v<decltype(lane), int>);
        int seen = max_lane.load();
        while (lane > seen && !max_lane.compare_exchange_weak(seen, lane)) {
        }
      },
      llp::ForOptions{}.with_threads(2));
  EXPECT_GE(max_lane.load(), 0);
}

TEST(LaneContextBody, MarkIsNoOpWithoutObservers) {
  // No observers registered: mark() must be callable and free.
  llp::parallel_for(
      0, 4,
      [](std::int64_t i, const llp::LaneContext& ctx) { ctx.mark(i); },
      llp::ForOptions{}.with_threads(2));
  SUCCEED();
}

}  // namespace
