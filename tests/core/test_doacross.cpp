#include "core/doacross.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/runtime.hpp"

namespace {

TEST(Doacross, CreatesNamedRegionAndRuns) {
  std::atomic<std::int64_t> sum{0};
  const auto id = llp::doacross("da.sum_loop", 10,
                                [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
  EXPECT_EQ(llp::regions().find("da.sum_loop"), id);
}

TEST(Doacross, RecordsStats) {
  llp::regions().reset_stats();
  llp::doacross("da.stats_loop", 25, [](std::int64_t) {});
  const auto id = llp::regions().find("da.stats_loop");
  const auto s = llp::regions().stats(id);
  EXPECT_EQ(s.invocations, 1u);
  EXPECT_EQ(s.total_trips, 25u);
  EXPECT_GE(s.seconds, 0.0);
}

TEST(Doacross, ByIdAvoidsLookupButRecords) {
  const auto id = llp::regions().define("da.by_id");
  llp::regions().reset_stats();
  std::atomic<int> n{0};
  llp::doacross(id, 7, [&](std::int64_t) { n++; });
  llp::doacross(id, 7, [&](std::int64_t) { n++; });
  EXPECT_EQ(n.load(), 14);
  EXPECT_EQ(llp::regions().stats(id).invocations, 2u);
}

TEST(Doacross, DisabledRegionStillProducesCorrectResult) {
  const auto id = llp::regions().define("da.toggle");
  llp::regions().set_parallel_enabled(id, false);
  std::atomic<std::int64_t> sum{0};
  llp::doacross(id, 100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
  llp::regions().set_parallel_enabled(id, true);
  sum = 0;
  llp::doacross(id, 100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(SerialRegion, RecordsKindSerial) {
  int runs = 0;
  const auto id = llp::serial_region("da.serial_bit", [&] { ++runs; });
  EXPECT_EQ(runs, 1);
  const auto s = llp::regions().stats(id);
  EXPECT_EQ(s.kind, llp::RegionKind::kSerial);
  EXPECT_GE(s.invocations, 1u);
}

TEST(SerialRegion, TimesTheBody) {
  llp::regions().reset_stats();
  const auto id = llp::serial_region("da.timed_serial", [] {
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  });
  EXPECT_GT(llp::regions().stats(id).seconds, 0.0);
}

}  // namespace
