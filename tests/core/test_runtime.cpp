#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

TEST(Runtime, DefaultThreadCountIsPositive) {
  EXPECT_GE(llp::num_threads(), 1);
}

TEST(Runtime, SetNumThreadsChangesCount) {
  const int orig = llp::num_threads();
  llp::set_num_threads(3);
  EXPECT_EQ(llp::num_threads(), 3);
  llp::set_num_threads(orig);
}

TEST(Runtime, RejectsNonPositive) {
  EXPECT_THROW(llp::set_num_threads(0), llp::Error);
  EXPECT_THROW(llp::set_num_threads(-4), llp::Error);
}

TEST(Runtime, PoolMatchesConfiguredSize) {
  const int orig = llp::num_threads();
  llp::set_num_threads(5);
  EXPECT_EQ(llp::Runtime::instance().pool().size(), 5);
  llp::set_num_threads(2);
  EXPECT_EQ(llp::Runtime::instance().pool().size(), 2);
  llp::set_num_threads(orig);
}

TEST(Runtime, RegionsIsProcessWide) {
  auto& a = llp::regions();
  auto& b = llp::Runtime::instance().regions();
  EXPECT_EQ(&a, &b);
}

}  // namespace
