// Schedule edge cases: empty loops, chunks larger than the trip count, more
// threads than iterations, guided chunks that overshoot the remainder, and
// the determinism contract of parallel_reduce under each schedule. Also the
// parallel_for_2d collapsed-extent overflow guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/llp.hpp"
#include "util/error.hpp"

namespace {

const llp::Schedule kAllSchedules[] = {
    llp::Schedule::kStaticBlock, llp::Schedule::kStaticChunked,
    llp::Schedule::kDynamic, llp::Schedule::kGuided};

llp::ForOptions make_opts(llp::Schedule s, std::int64_t chunk, int threads) {
  return llp::ForOptions{}.with_schedule(s).with_chunk(chunk).with_threads(
      threads);
}

void expect_each_once(std::int64_t n, const llp::ForOptions& opts) {
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  llp::parallel_for(
      0, n, [&](std::int64_t i) { ++counts[static_cast<std::size_t>(i)]; },
      opts);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)], 1)
        << "i=" << i << " chunk=" << opts.chunk
        << " nt=" << opts.num_threads;
  }
}

TEST(ScheduleEdges, EmptyLoopRunsNoIterationsUnderAnySchedule) {
  for (llp::Schedule s : kAllSchedules) {
    int calls = 0;
    llp::parallel_for(0, 0, [&](std::int64_t) { ++calls; },
                      make_opts(s, 4, 4));
    EXPECT_EQ(calls, 0);
    // Inverted range behaves as empty too.
    llp::parallel_for(5, 2, [&](std::int64_t) { ++calls; },
                      make_opts(s, 4, 4));
    EXPECT_EQ(calls, 0);
  }
}

TEST(ScheduleEdges, ChunkLargerThanTripCountCoversEveryIteration) {
  for (llp::Schedule s : kAllSchedules) {
    expect_each_once(10, make_opts(s, 64, 4));
    expect_each_once(10, make_opts(s, 10, 4));  // chunk == n exactly
  }
}

TEST(ScheduleEdges, MoreThreadsThanIterationsClampsAndCovers) {
  for (llp::Schedule s : kAllSchedules) {
    expect_each_once(3, make_opts(s, 1, 16));
    expect_each_once(1, make_opts(s, 1, 8));
  }
}

TEST(ScheduleEdges, GuidedChunkFloorExceedingRemainingTakesTheRest) {
  // The chunk-size function itself: min_chunk wins even past the remainder;
  // run_lane clamps the resulting range to n.
  EXPECT_EQ(llp::guided_chunk(5, 8, 16), 16);
  EXPECT_EQ(llp::guided_chunk(1, 8, 1), 1);
  // And through the full loop: a guided floor far above n still covers
  // every iteration exactly once.
  expect_each_once(10, make_opts(llp::Schedule::kGuided, 64, 4));
}

TEST(ScheduleEdges, IntegerReduceMatchesSerialUnderEverySchedule) {
  constexpr std::int64_t kN = 97;  // deliberately not a multiple of lanes
  constexpr std::int64_t kExpected = kN * (kN - 1) / 2;
  for (llp::Schedule s : kAllSchedules) {
    for (int threads : {2, 4}) {
      const auto sum = llp::parallel_reduce<std::int64_t>(
          0, kN, 0, [](std::int64_t a, std::int64_t b) { return a + b; },
          [](std::int64_t i, std::int64_t& acc) { acc += i; },
          make_opts(s, 3, threads));
      EXPECT_EQ(sum, kExpected) << "nt=" << threads;
    }
  }
}

TEST(ScheduleEdges, DoubleReduceIsBitwiseDeterministicUnderStaticSchedules) {
  // Static schedules give each lane a fixed iteration set, and the lane
  // partials combine in lane order — so repeated runs are bitwise equal.
  // (Dynamic/guided shuffle iterations across lanes run-to-run, so only
  // static schedules make this promise.)
  constexpr std::int64_t kN = 127;
  const llp::Schedule static_schedules[] = {llp::Schedule::kStaticBlock,
                                            llp::Schedule::kStaticChunked};
  for (llp::Schedule s : static_schedules) {
    const auto run = [&] {
      return llp::parallel_reduce<double>(
          0, kN, 0.0, [](double a, double b) { return a + b; },
          [](std::int64_t i, double& acc) {
            acc += 1.0 / static_cast<double>(i + 1);
          },
          make_opts(s, 5, 4));
    };
    const double first = run();
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(run(), first);  // bitwise, not approximate
    }
  }
}

TEST(ScheduleEdges, ParallelFor2dRejectsOverflowingCollapsedExtent) {
  // Satellite regression: n0 * n1 used to overflow silently before the
  // guard; now it must refuse up front.
  const std::int64_t big = std::int64_t{1} << 32;
  EXPECT_THROW(
      llp::parallel_for_2d(big, big, [](std::int64_t, std::int64_t) {}),
      llp::Error);
  EXPECT_THROW(llp::parallel_for_2d(
                   std::numeric_limits<std::int64_t>::max(), 2,
                   [](std::int64_t, std::int64_t) {}),
               llp::Error);
  // Zero extents sidestep the guard entirely (no overflow when one side is
  // empty, and nothing runs).
  int calls = 0;
  llp::parallel_for_2d(0, big, [&](std::int64_t, std::int64_t) { ++calls; });
  llp::parallel_for_2d(big, 0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
