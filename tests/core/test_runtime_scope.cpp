// Per-tenant runtimes: RuntimeScope binding, isolation between Runtime
// instances, and the guarantee that parallel constructs dispatch to the
// CURRENT runtime — including from inside worker lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/parallel_for.hpp"
#include "core/runtime.hpp"

namespace {

TEST(RuntimeScope, CurrentDefaultsToTheProcessInstance) {
  EXPECT_EQ(&llp::Runtime::current(), &llp::Runtime::instance());
}

TEST(RuntimeScope, BindsAndRestoresOnExit) {
  llp::Runtime rt(2);
  {
    llp::RuntimeScope scope(rt);
    EXPECT_EQ(&llp::Runtime::current(), &rt);
  }
  EXPECT_EQ(&llp::Runtime::current(), &llp::Runtime::instance());
}

TEST(RuntimeScope, ScopesNest) {
  llp::Runtime outer(2);
  llp::Runtime inner(3);
  llp::RuntimeScope a(outer);
  {
    llp::RuntimeScope b(inner);
    EXPECT_EQ(&llp::Runtime::current(), &inner);
  }
  EXPECT_EQ(&llp::Runtime::current(), &outer);
}

TEST(RuntimeScope, BindingIsPerThread) {
  llp::Runtime rt(2);
  llp::RuntimeScope scope(rt);
  ASSERT_EQ(&llp::Runtime::current(), &rt);
  std::thread other([] {
    // A fresh thread has no binding: it sees the process default.
    EXPECT_EQ(&llp::Runtime::current(), &llp::Runtime::instance());
  });
  other.join();
}

TEST(RuntimeScope, ParallelForDispatchesToTheBoundRuntime) {
  llp::Runtime rt(3);
  llp::RuntimeScope scope(rt);
  std::mutex mu;
  std::set<int> lanes;
  std::atomic<std::int64_t> covered{0};
  llp::parallel_for(0, 3000, [&](std::int64_t, int lane) {
    covered.fetch_add(1, std::memory_order_relaxed);
    // Every lane the loop runs on must also see the scoped runtime as
    // current — workers inherit the dispatcher's binding.
    EXPECT_EQ(&llp::Runtime::current(), &rt);
    std::lock_guard<std::mutex> lock(mu);
    lanes.insert(lane);
  });
  EXPECT_EQ(covered.load(), 3000);
  // Lane ids come from the 3-lane tenant runtime, not the process pool.
  EXPECT_LE(lanes.size(), 3u);
  for (const int lane : lanes) EXPECT_LT(lane, 3);
}

TEST(RuntimeScope, InstancesHaveIndependentThreadCounts) {
  llp::Runtime a(2);
  llp::Runtime b(5);
  EXPECT_EQ(a.num_threads(), 2);
  EXPECT_EQ(b.num_threads(), 5);
  a.set_num_threads(4);
  EXPECT_EQ(a.num_threads(), 4);
  EXPECT_EQ(b.num_threads(), 5);
  EXPECT_NE(llp::Runtime::instance().num_threads(), 0);
}

TEST(RuntimeScope, InstancesHaveIndependentRegionRegistries) {
  llp::Runtime a(1);
  llp::Runtime b(1);
  {
    llp::RuntimeScope scope(a);
    const llp::RegionId id = llp::regions().define("tenant_a_only");
    llp::parallel_for(0, 10, [](std::int64_t) {},
                      llp::ForOptions::in_region(id));
  }
  // The region landed in tenant a's registry (via the scoped shorthand),
  // not in tenant b's and not in the process default's.
  EXPECT_NE(a.regions().find("tenant_a_only"), llp::kNoRegion);
  EXPECT_EQ(b.regions().find("tenant_a_only"), llp::kNoRegion);
  EXPECT_EQ(llp::Runtime::instance().regions().find("tenant_a_only"),
            llp::kNoRegion);
}

TEST(RuntimeScope, ConcurrentTenantsStayIsolated) {
  // Two tenants run loops concurrently on their own runtimes; each loop
  // must observe its own runtime as current in every lane, with no
  // cross-talk through the thread-local binding.
  llp::Runtime a(2);
  llp::Runtime b(3);
  std::atomic<int> mismatches{0};
  auto tenant = [&mismatches](llp::Runtime& rt, int reps) {
    llp::RuntimeScope scope(rt);
    for (int r = 0; r < reps; ++r) {
      llp::parallel_for(0, 512, [&](std::int64_t) {
        if (&llp::Runtime::current() != &rt) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  };
  std::thread ta(tenant, std::ref(a), 50);
  std::thread tb(tenant, std::ref(b), 50);
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(RuntimeScope, ReduceCombinesInLaneOrderPerRuntime) {
  // parallel_reduce on a pinned tenant runtime is deterministic: same
  // lanes, same partial order, same bits — the property the serve
  // daemon's pinned jobs rely on for bitwise-reproducible residuals.
  llp::Runtime rt(3);
  llp::RuntimeScope scope(rt);
  auto run = [] {
    return llp::parallel_reduce(
        0, 10000, 0.0, [](double x, double y) { return x + y; },
        [](std::int64_t i, double& acc) {
          acc += 1.0 / (1.0 + static_cast<double>(i));
        });
  };
  const double first = run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(run(), first);
}

}  // namespace
