#include "analyze/interval_set.hpp"

#include <gtest/gtest.h>

namespace llp::analyze {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.cardinality(), 0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.to_string(), "(empty)");
}

TEST(IntervalSet, IgnoresEmptyAndBackwardIntervals) {
  IntervalSet s;
  s.insert(5, 5);
  s.insert(9, 3);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CoalescesAdjacentAndOverlapping) {
  IntervalSet s;
  s.insert(0, 4);
  s.insert(4, 8);    // adjacent
  s.insert(6, 10);   // overlapping
  s.insert(20, 24);  // disjoint
  const auto& iv = s.intervals();
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{0, 10}));
  EXPECT_EQ(iv[1], (Interval{20, 24}));
  EXPECT_EQ(s.cardinality(), 14);
}

TEST(IntervalSet, CoalescesOutOfOrderInsertion) {
  IntervalSet s;
  s.insert(8, 12);
  s.insert(0, 4);
  s.insert(4, 8);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 12}));
}

TEST(IntervalSet, Contains) {
  IntervalSet s;
  s.insert(3, 6);
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));  // half-open
}

TEST(IntervalSet, QueriesStayCorrectAfterMoreInsertions) {
  IntervalSet s;
  s.insert(0, 2);
  EXPECT_EQ(s.cardinality(), 2);  // normalizes
  s.insert(2, 5);                 // dirties again
  EXPECT_EQ(s.cardinality(), 5);
  EXPECT_TRUE(s.contains(4));
}

TEST(IntervalSet, FirstOverlapFindsSmallestSharedCoordinate) {
  IntervalSet a, b;
  a.insert(0, 10);
  a.insert(30, 40);
  b.insert(12, 20);
  b.insert(35, 50);
  Interval mine, theirs;
  std::int64_t first = -1;
  ASSERT_TRUE(a.first_overlap(b, &mine, &theirs, &first));
  EXPECT_EQ(first, 35);
  EXPECT_EQ(mine, (Interval{30, 40}));
  EXPECT_EQ(theirs, (Interval{35, 50}));
}

TEST(IntervalSet, FirstOverlapDisjoint) {
  IntervalSet a, b;
  a.insert(0, 10);
  b.insert(10, 20);  // adjacent, not overlapping
  Interval mine, theirs;
  std::int64_t first = 0;
  EXPECT_FALSE(a.first_overlap(b, &mine, &theirs, &first));
}

TEST(IntervalSet, ToStringTruncates) {
  IntervalSet s;
  for (int i = 0; i < 6; ++i) s.insert(10 * i, 10 * i + 4);
  EXPECT_EQ(s.to_string(2), "[0,4) [10,14) ... (4 more)");
  EXPECT_EQ(s.to_string(), "[0,4) [10,14) [20,24) [30,34) [40,44) [50,54)");
}

}  // namespace
}  // namespace llp::analyze
