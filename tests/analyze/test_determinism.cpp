#include "analyze/determinism.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_for.hpp"
#include "core/runtime.hpp"

namespace llp::analyze {
namespace {

TEST(Determinism, LaneOrderedReductionIsDeterministic) {
  llp::set_num_threads(4);
  const auto report = check_determinism([] {
    // parallel_reduce promises lane-ordered combination: two runs with the
    // same thread count are bitwise identical even though FP addition does
    // not commute in rounding.
    std::vector<double> out(1);
    out[0] = llp::parallel_reduce<double>(
        0, 100000, 0.0, [](double a, double b) { return a + b; },
        [](std::int64_t i, double& acc) {
          acc += 1.0 / static_cast<double>(i + 1);
        });
    return out;
  });
  EXPECT_TRUE(report.deterministic) << report.message;
  EXPECT_EQ(report.crc_first, report.crc_second);
  EXPECT_NE(report.message.find("deterministic"), std::string::npos);
}

TEST(Determinism, StatefulWorkloadIsCaughtWithFirstMismatch) {
  int run = 0;
  const auto report = check_determinism([&run] {
    // A workload whose second run differs at element 2 — the shape of an
    // unordered (atomic) reduction that landed differently.
    std::vector<double> out = {1.0, 2.0, 3.0, 4.0};
    if (++run == 2) out[2] = 3.0000000001;
    return out;
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_EQ(report.first_mismatch, 2u);
  EXPECT_NE(report.crc_first, report.crc_second);
  EXPECT_NE(report.message.find("nondeterministic"), std::string::npos);
}

TEST(Determinism, SizeMismatchIsReported) {
  int run = 0;
  const auto report = check_determinism([&run] {
    return std::vector<double>(static_cast<std::size_t>(++run), 0.0);
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_NE(report.message.find("sizes differ"), std::string::npos);
}

TEST(Determinism, NegativeZeroVersusPositiveZeroDiffers) {
  int run = 0;
  const auto report = check_determinism([&run] {
    return std::vector<double>{++run == 1 ? 0.0 : -0.0};
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_EQ(report.first_mismatch, 0u);
}

}  // namespace
}  // namespace llp::analyze
