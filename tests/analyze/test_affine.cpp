// Unit vectors for the static dependence engine: the affine IR's footprint
// arithmetic, the GCD and Banerjee independence proofs on known-dependent /
// known-independent / symbolic-bound pairs, exact distance and direction
// vectors — and an exhaustive-enumeration property test: any pair the
// engine judges independent must have provably disjoint footprints across
// every iteration pair of a small concrete domain (the soundness contract
// the runtime cross-validation oracle enforces on real runs).
#include "analyze/static/dependence.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

namespace llp::analyze {
namespace {

constexpr std::int64_t kMax64 = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin64 = std::numeric_limits<std::int64_t>::min();

TEST(AffineAccess, FootprintBoundsAndVariation) {
  const AffineAccess point = AffineAccess::write("a", 4, 7);
  EXPECT_EQ(point.footprint_min(), 0);
  EXPECT_EQ(point.footprint_max(), 0);
  EXPECT_EQ(point.variation_gcd(), 0);  // one fixed element per iteration

  const AffineAccess slab = AffineAccess::write("a", 64, 8, /*span=*/16);
  EXPECT_EQ(slab.footprint_min(), 0);
  EXPECT_EQ(slab.footprint_max(), 15);
  EXPECT_EQ(slab.variation_gcd(), 1);  // span makes every offset reachable

  AffineAccess grid = AffineAccess::read("a", 256, 0);
  grid.with_inner(16, 4).with_inner(-4, 3);
  EXPECT_EQ(grid.footprint_min(), -8);   // j1 = 0, j2 = 2
  EXPECT_EQ(grid.footprint_max(), 48);   // j1 = 3, j2 = 0
  EXPECT_EQ(grid.variation_gcd(), 4);    // gcd(16, 4)

  AffineAccess unknown = AffineAccess::read("a", 1, 0);
  unknown.with_inner(8, /*extent=*/-1);  // unknown extent: unbounded above
  EXPECT_EQ(unknown.footprint_min(), 0);
  EXPECT_EQ(unknown.footprint_max(), kMax64);
}

TEST(AffineAccess, HelpersSaturateAndGcd) {
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(-4, 6), 2);
  EXPECT_GT(gcd64(kMin64, 2), 0);  // |kMin| saturates; result stays positive
  EXPECT_EQ(sat_add(kMax64, 1), kMax64);
  EXPECT_EQ(sat_add(kMin64, -1), kMin64);
  EXPECT_EQ(sat_mul(kMax64 / 2, 4), kMax64);
  EXPECT_EQ(sat_mul(kMin64 / 2, 4), kMin64);
}

TEST(AnalyzePair, EvenOddWritesAreGcdIndependent) {
  // W a[2i] vs R a[2i+1]: even vs odd elements — the classic GCD exclusion
  // (2 does not divide 1), independent for EVERY trip count.
  const PairDep dep = analyze_pair(AffineAccess::write("a", 2, 0),
                                   AffineAccess::read("a", 2, 1),
                                   kUnknownTrips);
  EXPECT_FALSE(dep.carried);
  EXPECT_FALSE(dep.intra);
  EXPECT_EQ(dep.proof, DepTest::kGcd);
}

TEST(AnalyzePair, DistantReadNeedsTheTripBound) {
  // W a[i] vs R a[i+100]: the dependence distance is exactly 100. With 50
  // trips Banerjee excludes it; with a symbolic bound the engine must stay
  // conservative and report the carried dependence.
  const AffineAccess w = AffineAccess::write("a", 1, 0);
  const AffineAccess r = AffineAccess::read("a", 1, 100);

  const PairDep bounded = analyze_pair(w, r, /*trips=*/50);
  EXPECT_FALSE(bounded.carried);
  EXPECT_FALSE(bounded.intra);
  EXPECT_EQ(bounded.proof, DepTest::kBanerjee);

  const PairDep symbolic = analyze_pair(w, r, kUnknownTrips);
  EXPECT_TRUE(symbolic.carried);
  ASSERT_TRUE(symbolic.bounded);
  EXPECT_EQ(symbolic.min_distance, 100);
  EXPECT_EQ(symbolic.max_distance, 100);
}

TEST(AnalyzePair, RecurrenceIsCarriedAtDistanceOneForward) {
  // a[i] written, a[i-1] read: the element written at i is read at i+1 —
  // sink later, direction '<'.
  const PairDep dep = analyze_pair(AffineAccess::write("a", 1, 0),
                                   AffineAccess::read("a", 1, -1), 1024);
  EXPECT_TRUE(dep.carried);
  ASSERT_TRUE(dep.bounded);
  EXPECT_EQ(dep.min_distance, 1);
  EXPECT_EQ(dep.max_distance, 1);
  EXPECT_TRUE(dep.direction.lt);
  EXPECT_FALSE(dep.direction.eq);
  EXPECT_FALSE(dep.direction.gt);
}

TEST(AnalyzePair, StrideAliasedWritesCollideBackward) {
  // W a[2i] vs W a[2i+2]: this iteration's first write lands on the
  // PREVIOUS iteration's second — sink earlier, direction '>'.
  const PairDep dep = analyze_pair(AffineAccess::write("a", 2, 0),
                                   AffineAccess::write("a", 2, 2), 1024);
  EXPECT_TRUE(dep.carried);
  ASSERT_TRUE(dep.bounded);
  EXPECT_EQ(dep.min_distance, 1);
  EXPECT_EQ(dep.max_distance, 1);
  EXPECT_TRUE(dep.direction.gt);
  EXPECT_FALSE(dep.direction.lt);
}

TEST(AnalyzePair, UnequalStridesSurvivingIsUnbounded) {
  // W a[i] vs R a[2i]: iteration i' = 2i reads what i wrote — the distance
  // grows with i, so no finite distance bound exists (SERIAL-grade).
  const PairDep dep = analyze_pair(AffineAccess::write("a", 1, 0),
                                   AffineAccess::read("a", 2, 0), 1024);
  EXPECT_TRUE(dep.carried);
  EXPECT_FALSE(dep.bounded);
  EXPECT_TRUE(dep.direction.lt);
  EXPECT_TRUE(dep.direction.gt);
}

TEST(AnalyzePair, UnequalStrideParityIsGcdIndependent) {
  // W a[2i] vs R a[4i'+1]: gcd(2, 4) = 2 does not divide the offset gap 1.
  const PairDep dep = analyze_pair(AffineAccess::write("a", 2, 0),
                                   AffineAccess::read("a", 4, 1),
                                   kUnknownTrips);
  EXPECT_FALSE(dep.carried);
  EXPECT_FALSE(dep.intra);
  EXPECT_EQ(dep.proof, DepTest::kGcd);
}

TEST(AnalyzePair, TripCountZeroAndOneCarryNothing) {
  const AffineAccess w = AffineAccess::write("a", 0, 0);  // worst case: same
  const AffineAccess r = AffineAccess::read("a", 0, 0);   // element always
  for (const std::int64_t trips : {std::int64_t{0}, std::int64_t{1}}) {
    const PairDep dep = analyze_pair(w, r, trips);
    EXPECT_FALSE(dep.carried) << "trips=" << trips;
    EXPECT_EQ(dep.proof, DepTest::kBanerjee);
  }
}

TEST(AnalyzePair, SameElementEveryIterationCarriesAtAllDistances) {
  // W a[0] against itself: every iteration pair conflicts.
  const AffineAccess w = AffineAccess::write("a", 0, 0);
  const PairDep dep = analyze_pair(w, w, 64);
  EXPECT_TRUE(dep.carried);
  EXPECT_TRUE(dep.intra);
  EXPECT_EQ(dep.min_distance, 1);
  EXPECT_TRUE(dep.direction.lt);
  EXPECT_TRUE(dep.direction.eq);
  EXPECT_TRUE(dep.direction.gt);
}

TEST(AnalyzePair, SpanSelfCollisionDependsOnOverlap) {
  // W a[4i ..+8): iteration i's slab reaches 4i+7, colliding with i+1's
  // slab at 4i+4 — a carried self-dependence at distance 1.
  const AffineAccess wide = AffineAccess::write("a", 4, 0, /*span=*/8);
  const PairDep overlap = analyze_pair(wide, wide, 256);
  EXPECT_TRUE(overlap.carried);
  ASSERT_TRUE(overlap.bounded);
  EXPECT_EQ(overlap.min_distance, 1);

  // W a[4i ..+4): slabs tile exactly; only the trivial same-iteration
  // overlap remains, which is not a carried dependence.
  const AffineAccess tiled = AffineAccess::write("a", 4, 0, /*span=*/4);
  const PairDep exact = analyze_pair(tiled, tiled, 256);
  EXPECT_FALSE(exact.carried);
  EXPECT_TRUE(exact.intra);
}

TEST(AnalyzePair, InnerDimensionDistanceIsExact) {
  // W a[16i + 4j], j in [0,4) vs R a[16i' + 64 + 4j']: the only reachable
  // equality is 16(i'-i) = -64 + 4(j-j') with |4(j-j')| <= 12, i.e.
  // i' - i = -4 exactly.
  AffineAccess w = AffineAccess::write("a", 16, 0);
  w.with_inner(4, 4);
  AffineAccess r = AffineAccess::read("a", 16, 64);
  r.with_inner(4, 4);
  const PairDep dep = analyze_pair(w, r, 1024);
  EXPECT_TRUE(dep.carried);
  ASSERT_TRUE(dep.bounded);
  EXPECT_EQ(dep.min_distance, 4);
  EXPECT_EQ(dep.max_distance, 4);
  EXPECT_TRUE(dep.direction.gt);
  EXPECT_FALSE(dep.direction.lt);
  EXPECT_FALSE(dep.direction.eq);
}

// ---------------------------------------------------------------------------
// Property test: soundness against exhaustive small-domain enumeration.

/// Every element access X makes at iteration i, by brute force.
std::set<std::int64_t> footprint_at(const AffineAccess& x, std::int64_t i) {
  std::set<std::int64_t> base{x.offset + x.stride * i};
  for (const AffineTerm& t : x.inner) {
    std::set<std::int64_t> next;
    for (const std::int64_t e : base) {
      for (std::int64_t j = 0; j < t.extent; ++j) next.insert(e + t.stride * j);
    }
    base.swap(next);
  }
  std::set<std::int64_t> out;
  for (const std::int64_t e : base) {
    for (std::int64_t s = 0; s < x.span; ++s) out.insert(e + s);
  }
  return out;
}

bool intersects(const std::set<std::int64_t>& a,
                const std::set<std::int64_t>& b) {
  for (const std::int64_t e : a) {
    if (b.count(e) != 0) return true;
  }
  return false;
}

TEST(AnalyzePairProperty, IndependentVerdictsNeverConflictUnderEnumeration) {
  // Deterministic xorshift64 generator: the same 4000 random pairs every
  // run, every host.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const auto pick = [&next](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  const auto random_access = [&](AccessKind kind) {
    AffineAccess x;
    x.array = "a";
    x.kind = kind;
    x.stride = pick(-4, 4);
    x.offset = pick(-8, 8);
    x.span = pick(1, 4);
    if (pick(0, 2) == 0) {  // one inner dim, a third of the time
      x.with_inner(pick(-3, 3), pick(1, 3));
    }
    return x;
  };

  std::size_t independent = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const AffineAccess a = random_access(AccessKind::kWrite);
    const AffineAccess b = random_access(pick(0, 1) == 0 ? AccessKind::kWrite
                                                         : AccessKind::kRead);
    const std::int64_t trips = pick(2, 8);
    const PairDep dep = analyze_pair(a, b, trips);
    if (!dep.carried && !dep.intra) ++independent;

    for (std::int64_t i = 0; i < trips; ++i) {
      const std::set<std::int64_t> fa = footprint_at(a, i);
      for (std::int64_t j = 0; j < trips; ++j) {
        if (!intersects(fa, footprint_at(b, j))) continue;
        const std::int64_t d = j - i;
        if (d == 0) {
          // A same-iteration overlap exists: intra must be reported.
          EXPECT_TRUE(dep.intra)
              << "missed intra overlap: " << a.to_string() << " vs "
              << b.to_string() << " at i=" << i;
        } else {
          // A carried conflict exists: the verdict must admit it, and any
          // claimed distance bounds / direction bits must contain it.
          EXPECT_TRUE(dep.carried)
              << "missed carried dep: " << a.to_string() << " vs "
              << b.to_string() << " at i=" << i << " i'=" << j;
          if (dep.carried && dep.bounded) {
            const std::int64_t ad = d < 0 ? -d : d;
            EXPECT_GE(ad, dep.min_distance);
            EXPECT_LE(ad, dep.max_distance);
          }
          if (dep.carried) {
            EXPECT_TRUE(d > 0 ? dep.direction.lt : dep.direction.gt)
                << "direction bit missing for d=" << d << ": "
                << a.to_string() << " vs " << b.to_string();
          }
        }
      }
    }
  }
  // The generator must actually exercise the independent path, or the
  // property is vacuous.
  EXPECT_GT(independent, 100u);
}

}  // namespace
}  // namespace llp::analyze
