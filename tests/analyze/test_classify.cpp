// Region classification, the signature registry, and the static/dynamic
// cross-validation contract: a deliberately WRONG DOALL declaration on a
// racing loop must surface FindingKind::kStaticContradiction — the
// analyzer indicting itself — while honest or absent declarations never do.
#include "analyze/static/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/access_logger.hpp"
#include "analyze/dep_check.hpp"
#include "core/parallel_for.hpp"
#include "core/runtime.hpp"

namespace llp::analyze {
namespace {

AffineSignature disjoint_writes(std::int64_t trips = kUnknownTrips) {
  AffineSignature sig;
  sig.trips = trips;
  sig.accesses.push_back(AffineAccess::write("a", 1, 0));
  return sig;
}

AffineSignature recurrence(std::int64_t trips = kUnknownTrips) {
  AffineSignature sig;
  sig.trips = trips;
  sig.accesses.push_back(AffineAccess::write("a", 1, 0));
  sig.accesses.push_back(AffineAccess::read("a", 1, -1));
  return sig;
}

class ClassifyTest : public ::testing::Test {
protected:
  void SetUp() override { clear_declarations(); }
  void TearDown() override { clear_declarations(); }
};

TEST_F(ClassifyTest, DirectionSetRoundTripsAllSubsets) {
  for (int bits = 0; bits < 8; ++bits) {
    DirectionSet d;
    d.lt = (bits & 1) != 0;
    d.eq = (bits & 2) != 0;
    d.gt = (bits & 4) != 0;
    DirectionSet back;
    ASSERT_TRUE(DirectionSet::parse(d.to_string(), &back)) << d.to_string();
    EXPECT_EQ(back, d) << d.to_string();
  }
  DirectionSet star;
  ASSERT_TRUE(DirectionSet::parse("(*)", &star));
  EXPECT_TRUE(star.lt && star.eq && star.gt);
  DirectionSet reordered;
  ASSERT_TRUE(DirectionSet::parse("(>=<)", &reordered));
  EXPECT_TRUE(reordered.lt && reordered.eq && reordered.gt);
  DirectionSet out;
  EXPECT_FALSE(DirectionSet::parse("<", &out));
  EXPECT_FALSE(DirectionSet::parse("(<<)", &out));
  EXPECT_FALSE(DirectionSet::parse("(x)", &out));
  EXPECT_FALSE(DirectionSet::parse("(*<)", &out));
}

TEST_F(ClassifyTest, DisjointWritesAreDoall) {
  const StaticVerdict v = classify(disjoint_writes());
  EXPECT_EQ(v.cls, LoopClass::kDoall);
  EXPECT_TRUE(v.parallel_ok());
  EXPECT_TRUE(v.witnesses.empty());
  EXPECT_EQ(v.pairs_checked, 1u);  // the write's self-pair
  EXPECT_EQ(v.class_string(), "DOALL");
}

TEST_F(ClassifyTest, DoacrossTakesTheMinimumCarriedDistance) {
  AffineSignature sig;
  sig.accesses.push_back(AffineAccess::write("a", 1, 0));
  sig.accesses.push_back(AffineAccess::read("a", 1, -2));  // distance 2
  sig.accesses.push_back(AffineAccess::write("b", 1, 0));
  sig.accesses.push_back(AffineAccess::read("b", 1, -5));  // distance 5
  const StaticVerdict v = classify(sig);
  EXPECT_EQ(v.cls, LoopClass::kDoacross);
  EXPECT_FALSE(v.parallel_ok());
  EXPECT_EQ(v.min_distance, 2);
  EXPECT_EQ(v.witnesses.size(), 2u);
  EXPECT_EQ(v.class_string(), "DOACROSS(d=2)");
}

TEST_F(ClassifyTest, AnyUnboundedPairMakesTheRegionSerial)  {
  AffineSignature sig;
  sig.accesses.push_back(AffineAccess::write("a", 1, 0));
  sig.accesses.push_back(AffineAccess::read("a", 1, -1));  // bounded, d=1
  sig.accesses.push_back(AffineAccess::read("a", 2, 0));   // unbounded
  const StaticVerdict v = classify(sig);
  EXPECT_EQ(v.cls, LoopClass::kSerial);
  EXPECT_EQ(v.class_string(), "SERIAL");
  EXPECT_EQ(v.witnesses.size(), 2u);
}

TEST_F(ClassifyTest, ProofCountersBucketByTest) {
  AffineSignature sig;
  sig.trips = 50;
  sig.accesses.push_back(AffineAccess::write("a", 2, 0));   // even elements
  sig.accesses.push_back(AffineAccess::read("a", 2, 1));    // odd: GCD
  sig.accesses.push_back(AffineAccess::write("b", 1, 0));
  sig.accesses.push_back(AffineAccess::read("b", 1, 100));  // > trips: Banerjee
  const StaticVerdict v = classify(sig);
  EXPECT_EQ(v.cls, LoopClass::kDoall);
  EXPECT_EQ(v.pairs_checked, 4u);
  EXPECT_EQ(v.gcd_independent, 1u);
  EXPECT_EQ(v.banerjee_independent, 1u);
  // The two write self-pairs clear via the trivial d == 0 intra case, so
  // they land in neither proof bucket.
}

TEST_F(ClassifyTest, RegistryDeclareFindOverwriteIfAbsentClear) {
  EXPECT_EQ(num_declared(), 0u);
  AffineSignature probe;
  EXPECT_FALSE(find_signature("cl.none", &probe));

  declare_access("cl.region", recurrence(64));
  EXPECT_EQ(num_declared(), 1u);
  ASSERT_TRUE(find_signature("cl.region", &probe));
  EXPECT_EQ(probe.trips, 64);
  EXPECT_EQ(probe.accesses.size(), 2u);

  // declare_access replaces; if_absent does not.
  declare_access("cl.region", disjoint_writes(32));
  ASSERT_TRUE(find_signature("cl.region", &probe));
  EXPECT_EQ(probe.accesses.size(), 1u);
  EXPECT_FALSE(declare_access_if_absent("cl.region", recurrence()));
  ASSERT_TRUE(find_signature("cl.region", &probe));
  EXPECT_EQ(probe.accesses.size(), 1u);
  EXPECT_TRUE(declare_access_if_absent("cl.other", recurrence()));
  EXPECT_EQ(num_declared(), 2u);

  const std::vector<ClassifiedRegion> table = classification_table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].region, "cl.other");  // sorted by name
  EXPECT_EQ(table[1].region, "cl.region");
  EXPECT_EQ(table[0].verdict.cls, LoopClass::kDoacross);
  EXPECT_EQ(table[1].verdict.cls, LoopClass::kDoall);

  clear_declarations();
  EXPECT_EQ(num_declared(), 0u);
  EXPECT_FALSE(find_signature("cl.region", &probe));
}

TEST_F(ClassifyTest, UndeclaredRegionsStayLegal) {
  const StaticLegality legality = static_legality("cl.never_declared");
  EXPECT_FALSE(legality.declared);
  EXPECT_TRUE(legality.parallel_ok());
}

TEST_F(ClassifyTest, CallerTripsRefineSymbolicSignatures) {
  // W a[i] + R a[i+100] declared with symbolic trips: conservative
  // (carried). A caller who KNOWS the loop runs 50 iterations gets the
  // Banerjee exclusion; a declared concrete trip count beats the caller's.
  AffineSignature sig;
  sig.accesses.push_back(AffineAccess::write("a", 1, 0));
  sig.accesses.push_back(AffineAccess::read("a", 1, 100));
  declare_access("cl.symbolic", sig);
  EXPECT_FALSE(static_legality("cl.symbolic").parallel_ok());
  EXPECT_TRUE(static_legality("cl.symbolic", 50).parallel_ok());
  EXPECT_FALSE(static_legality("cl.symbolic", 200).parallel_ok());

  sig.trips = 200;  // declared concrete count wins over the caller's 50
  declare_access("cl.concrete", sig);
  EXPECT_FALSE(static_legality("cl.concrete", 50).parallel_ok());
}

TEST_F(ClassifyTest, LegalScheduleStrings) {
  declare_access("cl.doall", disjoint_writes());
  declare_access("cl.carried", recurrence());
  const StaticLegality doall = static_legality("cl.doall");
  const StaticLegality carried = static_legality("cl.carried");
  EXPECT_NE(legal_schedules_string(doall.verdict).find("dynamic"),
            std::string::npos);
  EXPECT_EQ(legal_schedules_string(carried.verdict), "serial only");
}

// --- Cross-validation: the dynamic logger indicts a lying declaration. ---

class CrossValidationTest : public ::testing::Test {
protected:
  void SetUp() override {
    clear_declarations();
    llp::set_num_threads(4);
    llp::Runtime::instance().add_observer(&logger_);
  }
  void TearDown() override {
    llp::Runtime::instance().remove_observer(&logger_);
    clear_declarations();
  }

  /// A loop that genuinely races: every lane logs a write to the whole
  /// array, so the dynamic checker always finds a conflict.
  void run_racing_loop(const char* name) {
    const auto region = llp::regions().define(name);
    llp::parallel_for(
        0, 64,
        [&](std::int64_t, const llp::LaneContext& ctx) {
          ctx.log_write(ctx.array_id("a"), 0, 64);
        },
        llp::ForOptions::in_region(region));
  }

  AccessLogger logger_;
};

TEST_F(CrossValidationTest, LyingDoallDeclarationIsAContradiction) {
  // The declaration claims disjoint writes (DOALL); the body races.
  declare_access("cv.lie", disjoint_writes());
  run_racing_loop("cv.lie");
  ASSERT_GT(logger_.num_findings(), 1u);
  const std::vector<Finding> findings = logger_.findings();
  // The contradiction leads the finding list: the tooling failure is more
  // important than the race it was caught by.
  EXPECT_EQ(findings[0].kind, FindingKind::kStaticContradiction);
  EXPECT_EQ(findings[0].region, "cv.lie");
  EXPECT_NE(format_finding(findings[0]).find("static-analyzer contradiction"),
            std::string::npos);
}

TEST_F(CrossValidationTest, HonestCarriedDeclarationIsNotContradicted) {
  // The declaration already says DOACROSS; a dynamic race is then the
  // CASE's bug, not the analyzer's.
  declare_access("cv.honest", recurrence());
  run_racing_loop("cv.honest");
  ASSERT_GT(logger_.num_findings(), 0u);
  for (const Finding& f : logger_.findings()) {
    EXPECT_NE(f.kind, FindingKind::kStaticContradiction);
  }
}

TEST_F(CrossValidationTest, UndeclaredRacingRegionIsNotContradicted) {
  run_racing_loop("cv.undeclared");
  ASSERT_GT(logger_.num_findings(), 0u);
  for (const Finding& f : logger_.findings()) {
    EXPECT_NE(f.kind, FindingKind::kStaticContradiction);
  }
}

}  // namespace
}  // namespace llp::analyze
