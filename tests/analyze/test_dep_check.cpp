#include "analyze/dep_check.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace llp::analyze {
namespace {

AccessLog make_log(const std::string& region = "r") {
  AccessLog log;
  log.region_name = region;
  log.invocation = 7;
  log.lanes_used = 2;
  return log;
}

TEST(DepCheck, DisjointWritesAreClean) {
  AccessLog log = make_log();
  log.record(0, 0, AccessKind::kWrite, 0, 100);
  log.record(1, 0, AccessKind::kWrite, 100, 200);
  log.record(0, 0, AccessKind::kRead, 0, 100);
  log.record(1, 0, AccessKind::kRead, 100, 200);
  EXPECT_TRUE(check(log).empty());
}

TEST(DepCheck, SharedReadsAreClean) {
  // The doacross-common shape: everyone reads everything, writes own share.
  AccessLog log = make_log();
  log.record(0, 0, AccessKind::kRead, 0, 200);
  log.record(1, 0, AccessKind::kRead, 0, 200);
  log.record(0, 1, AccessKind::kWrite, 0, 100);
  log.record(1, 1, AccessKind::kWrite, 100, 200);
  EXPECT_TRUE(check(log).empty());
}

TEST(DepCheck, WriteWriteOverlapReportedOncePerPair) {
  AccessLog log = make_log();
  log.record(0, 0, AccessKind::kWrite, 0, 60);
  log.record(1, 0, AccessKind::kWrite, 50, 100);
  const auto findings = check(log);
  ASSERT_EQ(findings.size(), 1u);
  const Finding& f = findings[0];
  EXPECT_EQ(f.kind, FindingKind::kWriteWrite);
  EXPECT_EQ(f.lane_a, 0);
  EXPECT_EQ(f.lane_b, 1);
  EXPECT_EQ(f.first_conflict, 50);
  EXPECT_EQ(f.range_a, (Interval{0, 60}));
  EXPECT_EQ(f.range_b, (Interval{50, 100}));
}

TEST(DepCheck, ReadWriteDetectedInBothOrders) {
  // Lane 1 reads what lane 0 wrote — and vice versa on a second array.
  AccessLog log = make_log();
  log.record(0, 0, AccessKind::kWrite, 0, 10);
  log.record(1, 0, AccessKind::kRead, 9, 20);
  log.record(1, 1, AccessKind::kWrite, 30, 40);
  log.record(0, 1, AccessKind::kRead, 39, 50);
  const auto findings = check(log);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, FindingKind::kReadWrite);
  EXPECT_EQ(findings[0].lane_a, 0);  // the writer
  EXPECT_EQ(findings[0].lane_b, 1);
  EXPECT_EQ(findings[0].first_conflict, 9);
  EXPECT_EQ(findings[1].lane_a, 1);
  EXPECT_EQ(findings[1].lane_b, 0);
  EXPECT_EQ(findings[1].first_conflict, 39);
}

TEST(DepCheck, SameLaneNeverConflictsWithItself) {
  AccessLog log = make_log();
  log.record(0, 0, AccessKind::kWrite, 0, 100);
  log.record(0, 0, AccessKind::kRead, 0, 100);
  log.record(0, 0, AccessKind::kWrite, 50, 60);  // overlapping rewrites
  EXPECT_TRUE(check(log).empty());
}

TEST(DepCheck, SharedScratchNeedsTwoLanesAndPlaneSize) {
  AccessLog log = make_log();
  int buf_big = 0, buf_small = 0;
  // One big buffer touched by both lanes, one big private, one small shared.
  log.record_scratch(0, &buf_big, 1 << 20);
  log.record_scratch(1, &buf_big, 1 << 20);
  log.record_scratch(0, &buf_small, 512);
  log.record_scratch(1, &buf_small, 512);
  int private_buf = 0;
  log.record_scratch(0, &private_buf, 1 << 20);
  const auto findings = check(log);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kSharedScratch);
  EXPECT_EQ(findings[0].scratch_bytes, static_cast<std::size_t>(1 << 20));
  EXPECT_EQ(findings[0].lane_a, 0);
  EXPECT_EQ(findings[0].lane_b, 1);
}

TEST(DepCheck, MaxFindingsCapsOutput) {
  AccessLog log = make_log();
  log.lanes_used = 8;
  for (int lane = 0; lane < 8; ++lane) {
    log.record(lane, 0, AccessKind::kWrite, 0, 100);  // all-pairs conflict
  }
  CheckConfig config;
  config.max_findings = 3;
  EXPECT_EQ(check(log, config).size(), 3u);
}

TEST(DepCheck, FormatFindingMatchesContract) {
  AccessLog log = make_log("run.z0.rhs");
  log.arrays = {"a0"};
  log.record(0, 0, AccessKind::kWrite, 8, 16);
  log.record(1, 0, AccessKind::kRead, 15, 24);
  auto findings = check(log);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(format_finding(findings[0]),
            "loop-carried dependence in region run.z0.rhs (invocation 7, "
            "array a0): lane 0 wrote [8,16), lane 1 read [15,24) — first "
            "conflict at index 15");
}

TEST(DepCheck, LogSaveLoadRoundTripsThroughChecker) {
  AccessLog log = make_log("roundtrip");
  log.record(0, 0, AccessKind::kWrite, 0, 60);
  log.record(1, 0, AccessKind::kWrite, 50, 100);
  int buf = 0;
  log.record_scratch(0, &buf, 1 << 20);
  log.record_scratch(1, &buf, 1 << 20);

  std::stringstream ss;
  log.save(ss);
  AccessLog loaded;
  ASSERT_TRUE(loaded.load(ss));
  EXPECT_EQ(loaded.region_name, "roundtrip");
  EXPECT_EQ(loaded.invocation, 7u);

  const auto before = check(log);
  const auto after = check(loaded);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(format_finding(before[i]), format_finding(after[i]));
  }
}

TEST(DepCheck, LoadRejectsMalformedBlock) {
  std::stringstream ss("log r 0 2\nacc 0 0 Q 0 10\nend\n");
  AccessLog log;
  EXPECT_THROW(log.load(ss), llp::Error);
}

}  // namespace
}  // namespace llp::analyze
