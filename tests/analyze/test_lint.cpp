#include "analyze/lint.hpp"

#include <gtest/gtest.h>

namespace llp::analyze {
namespace {

std::vector<std::string> rules_of(std::string_view src) {
  std::vector<std::string> rules;
  for (const LintFinding& f : lint_source(src, "t.cpp")) {
    rules.push_back(f.rule);
  }
  return rules;
}

TEST(Lint, CleanLabeledLoopHasNoFindings) {
  const char* src = R"cpp(
    void f(std::vector<double>& a, llp::RegionId r) {
      llp::parallel_for(0, 100, [&](std::int64_t i) {
        a[i] = 2.0 * a[i];
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, MissingOptionsArgumentIsFlagged) {
  const char* src = R"cpp(
    void f(std::vector<double>& a) {
      llp::parallel_for(0, 100, [&](std::int64_t i) { a[i] = 1.0; });
    }
  )cpp";
  const auto rules = rules_of(src);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "missing-region");
}

TEST(Lint, TrailingOptionsVariableCountsAsLabeled) {
  const char* src = R"cpp(
    void f(std::vector<double>& a, const llp::ForOptions& opts) {
      llp::parallel_for(0, 100, [&](std::int64_t i) { a[i] = 1.0; }, opts);
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, EmptyDoacrossNameIsFlagged) {
  const char* src = R"cpp(
    void f(std::vector<double>& a) {
      llp::doacross("", 100, [&](std::int64_t i) { a[i] = 1.0; });
    }
  )cpp";
  const auto rules = rules_of(src);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "empty-region-name");
}

TEST(Lint, ShiftedIndexWriteIsFlagged) {
  const char* src = R"cpp(
    void f(double* a, llp::RegionId r) {
      llp::parallel_for(1, 100, [&](std::int64_t i) {
        a[i - 1] = a[i];
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  const auto findings = lint_source(src, "t.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "shifted-index-write");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("a[i - 1]"), std::string::npos);
}

TEST(Lint, UnshiftedOwnIndexWriteIsClean) {
  const char* src = R"cpp(
    void f(double* a, llp::RegionId r) {
      llp::parallel_for(0, 100, [&](std::int64_t i) {
        a[i] = 2.0 * a[i];
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, CapturedSharedWriteIsFlagged) {
  const char* src = R"cpp(
    void f(std::vector<double>& plane, llp::RegionId r) {
      llp::parallel_for(0, 100, [&](std::int64_t i) {
        plane[0] = 1.0;
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  const auto rules = rules_of(src);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "captured-shared-write");
}

TEST(Lint, BodyLocalScratchIsClean) {
  const char* src = R"cpp(
    void f(llp::RegionId r) {
      llp::parallel_for(0, 100, [&](std::int64_t i) {
        double pencil[64];
        pencil[0] = static_cast<double>(i);
        std::vector<double> tmp(64);
        tmp[0] = pencil[0];
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, LaneIndexedWriteIsClean) {
  const char* src = R"cpp(
    void f(std::vector<double>& partial, llp::RegionId r) {
      llp::parallel_for(0, 100, [&](std::int64_t i, int lane) {
        partial[lane] += static_cast<double>(i);
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, CapturedReductionIsFlagged) {
  const char* src = R"cpp(
    void f(llp::RegionId r) {
      double sum = 0.0;
      llp::parallel_for(0, 100, [&](std::int64_t i) {
        sum += static_cast<double>(i);
      }, llp::ForOptions::in_region(r));
    }
  )cpp";
  const auto rules = rules_of(src);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "captured-reduction");
}

TEST(Lint, ParallelReduceAccumulatorIsClean) {
  const char* src = R"cpp(
    double f(std::vector<double>& a, llp::RegionId r) {
      return llp::parallel_reduce<double>(
          0, 100, 0.0, [](double x, double y) { return x + y; },
          [&](std::int64_t i, double& acc) { acc += a[i]; },
          llp::ForOptions::in_region(r));
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, SuppressionCommentWaivesTheLine) {
  const char* src = R"cpp(
    void f(std::vector<double>& a) {
      llp::parallel_for(0, 100,  // llp-check: allow
                        [&](std::int64_t i) { a[i] = 1.0; });
    }
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, CommentsAndStringsDoNotTrigger) {
  const char* src = R"cpp(
    // llp::parallel_for(0, 100, [&](std::int64_t i) { a[i - 1] = 1.0; });
    /* llp::doacross("", 100, body); */
    const char* s = "parallel_for(0, n, body)";
  )cpp";
  EXPECT_TRUE(rules_of(src).empty());
}

TEST(Lint, FindingsAreSortedByLine) {
  const char* src = R"cpp(
    void f(double* a, double* b) {
      llp::parallel_for(1, 100, [&](std::int64_t i) { a[i + 1] = 0.0; });
      llp::parallel_for(1, 100, [&](std::int64_t i) { b[i + 1] = 0.0; });
    }
  )cpp";
  const auto findings = lint_source(src, "t.cpp");
  ASSERT_GE(findings.size(), 2u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].line, findings[i].line);
  }
}

TEST(Lint, FormatIncludesFileLineAndRule) {
  LintFinding f{"dir/x.cpp", 12, "missing-region", "msg"};
  EXPECT_EQ(format_lint_finding(f), "dir/x.cpp:12: [missing-region] msg");
}

}  // namespace
}  // namespace llp::analyze
