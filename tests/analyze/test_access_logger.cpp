// Dynamic-mode end-to-end tests: an AccessLogger registered with the real
// runtime, fed by real parallel loops through LaneContext / AccessSpan —
// plus the doacross legality edge cases (trip 0/1, chunk > trip, nested
// region re-entry) that the checker must survive.
#include "analyze/access_logger.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analyze/analyzer.hpp"
#include "core/access_span.hpp"
#include "core/doacross.hpp"
#include "core/parallel_for.hpp"
#include "core/runtime.hpp"

namespace llp::analyze {
namespace {

class AccessLoggerTest : public ::testing::Test {
protected:
  void SetUp() override {
    llp::set_num_threads(4);
    llp::Runtime::instance().add_observer(&logger_);
  }
  void TearDown() override {
    llp::Runtime::instance().remove_observer(&logger_);
  }

  AccessLogger logger_;
};

TEST_F(AccessLoggerTest, DisjointWritesAreClean) {
  constexpr std::int64_t kN = 1024;
  std::vector<double> a(kN, 0.0);
  const auto region = llp::regions().define("an.disjoint");
  llp::parallel_for(
      0, kN,
      [&](std::int64_t i, const llp::LaneContext& ctx) {
        llp::AccessSpan<double> as(a.data(), kN, ctx, "a");
        as.wr(i) = static_cast<double>(i);
      },
      llp::ForOptions::in_region(region));
  EXPECT_EQ(logger_.num_findings(), 0u);
  EXPECT_GE(logger_.invocations_checked(), 1u);
  EXPECT_NE(logger_.report().find("0 finding(s)"), std::string::npos);
}

TEST_F(AccessLoggerTest, SeededRecurrenceIsCaughtWithExactIndices) {
  constexpr std::int64_t kN = 1024;
  std::vector<double> a(kN, 0.0);
  const auto region = llp::regions().define("an.recurrence");
  llp::parallel_for(
      0, kN,
      [&](std::int64_t i, const llp::LaneContext& ctx) {
        // Log the recurrence's footprint exactly: write own element, read
        // the previous one (which belongs to another lane at partition
        // boundaries).
        const int id = ctx.array_id("a");
        ctx.log_write(id, i, i + 1);
        if (i > 0) ctx.log_read(id, i - 1, i);
      },
      llp::ForOptions::in_region(region));
  ASSERT_GT(logger_.num_findings(), 0u);
  const auto findings = logger_.findings();
  bool found = false;
  for (const Finding& f : findings) {
    if (f.kind != FindingKind::kReadWrite) continue;
    found = true;
    EXPECT_EQ(f.region, "an.recurrence");
    EXPECT_EQ(f.array, "a");
    // The conflict is exactly the reader's first index minus one — a
    // static-block boundary of the 4-lane partition of [0, 1024).
    EXPECT_EQ(f.first_conflict % 256, 255);
    EXPECT_NE(format_finding(f).find("loop-carried dependence in region "
                                     "an.recurrence"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST_F(AccessLoggerTest, SharedScratchIsCaught) {
  std::vector<double> plane(16 * 1024, 0.0);  // 128 KiB, over threshold
  const auto region = llp::regions().define("an.scratch");
  llp::parallel_for(
      0, 64,
      [&](std::int64_t, const llp::LaneContext& ctx) {
        ctx.note_scratch(plane.data(), plane.size() * sizeof(double));
      },
      llp::ForOptions::in_region(region));
  const auto findings = logger_.findings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kSharedScratch);
  EXPECT_EQ(findings[0].region, "an.scratch");
}

TEST_F(AccessLoggerTest, TripCountZeroAndOne) {
  std::vector<double> a(8, 0.0);
  const auto region = llp::regions().define("an.tiny");
  const auto body = [&](std::int64_t i, const llp::LaneContext& ctx) {
    llp::AccessSpan<double> as(a.data(), 8, ctx, "a");
    as.wr(i) = 1.0;
  };
  llp::parallel_for(0, 0, body, llp::ForOptions::in_region(region));
  llp::parallel_for(0, 1, body, llp::ForOptions::in_region(region));
  EXPECT_EQ(logger_.num_findings(), 0u);
  // Both invocations (even the empty one) enter and exit the region, so
  // both are checked.
  EXPECT_EQ(logger_.invocations_checked(), 2u);
}

TEST_F(AccessLoggerTest, DoacrossChunkLargerThanTrip) {
  std::vector<double> a(4, 0.0);
  llp::doacross(
      "an.chunk_gt_trip", 3,
      [&](std::int64_t i, const llp::LaneContext& ctx) {
        llp::AccessSpan<double> as(a.data(), 4, ctx, "a");
        as.wr(i) = 1.0;
      },
      llp::ForOptions{}.with_chunk(64));
  EXPECT_EQ(logger_.num_findings(), 0u);
  EXPECT_GE(logger_.invocations_checked(), 1u);
}

TEST_F(AccessLoggerTest, NestedRegionReentryMergesDepthCounted) {
  // Several lanes of an outer region each run a serial inner loop on the
  // SAME inner region concurrently. The logger depth-counts the inner
  // log: all entries merge into one invocation, checked when the last
  // exit closes it — and lane-disjoint writes stay clean.
  constexpr std::int64_t kN = 256;
  std::vector<double> a(kN, 0.0);
  const auto outer = llp::regions().define("an.outer");
  const auto inner = llp::regions().define("an.inner");
  llp::parallel_for(
      0, 4,
      [&](std::int64_t part) {
        // Serial nested loop (1 thread): re-enters `inner` from this lane.
        llp::parallel_for(
            part * (kN / 4), (part + 1) * (kN / 4),
            [&](std::int64_t i, const llp::LaneContext& ctx) {
              llp::AccessSpan<double> as(a.data(), kN, ctx, "a");
              as.wr(i) = 1.0;
            },
            llp::ForOptions::in_region(inner).with_threads(1));
      },
      llp::ForOptions::in_region(outer));
  EXPECT_EQ(logger_.num_findings(), 0u);
  EXPECT_GE(logger_.invocations_checked(), 2u);  // outer + merged inner
}

TEST_F(AccessLoggerTest, SaveLogsRoundTripsThroughReplay) {
  constexpr std::int64_t kN = 512;
  std::vector<double> a(kN, 0.0);
  const auto region = llp::regions().define("an.roundtrip");
  llp::parallel_for(
      0, kN,
      [&](std::int64_t i, const llp::LaneContext& ctx) {
        const int id = ctx.array_id("a");
        ctx.log_write(id, 0, kN);  // everyone writes everything: conflict
        (void)i;
      },
      llp::ForOptions::in_region(region));
  ASSERT_GT(logger_.num_findings(), 0u);

  std::stringstream ss;
  logger_.save_logs(ss);
  const auto logs = load_logs(ss);
  bool replayed = false;
  for (const AccessLog& log : logs) {
    if (log.region_name != "an.roundtrip") continue;
    replayed = true;
    EXPECT_FALSE(check(log).empty());
  }
  EXPECT_TRUE(replayed);
}

TEST_F(AccessLoggerTest, ResetClearsFindingsAndCounters) {
  const auto region = llp::regions().define("an.reset");
  llp::parallel_for(
      0, 64,
      [&](std::int64_t, const llp::LaneContext& ctx) {
        ctx.log_write(ctx.array_id("a"), 0, 64);
      },
      llp::ForOptions::in_region(region));
  ASSERT_GT(logger_.num_findings(), 0u);
  logger_.reset();
  EXPECT_EQ(logger_.num_findings(), 0u);
  EXPECT_EQ(logger_.invocations_checked(), 0u);
  std::stringstream ss;
  logger_.save_logs(ss);
  EXPECT_TRUE(load_logs(ss).empty());
}

TEST_F(AccessLoggerTest, UninstrumentedLoopsCostNothingAndLogNothing) {
  std::vector<double> a(64, 0.0);
  // No region: the loop is invisible to the analyzer by design.
  llp::parallel_for(0, 64, [&](std::int64_t i) { a[std::size_t(i)] = 1.0; });
  EXPECT_EQ(logger_.invocations_checked(), 0u);
}

TEST(AnalyzerGlobal, InstallIsIdempotentAndUninstallable) {
  AccessLogger& first = install();
  AccessLogger& second = install();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(global_logger(), &first);
  uninstall();
  EXPECT_EQ(global_logger(), nullptr);
  EXPECT_TRUE(llp::analyze::log_path().empty());
}

}  // namespace
}  // namespace llp::analyze
