// partition_zones / clamp_workers: the layout every process derives
// independently, so determinism and coverage are the whole contract.
#include "cluster/partition.hpp"

#include <gtest/gtest.h>

namespace llp::cluster {
namespace {

TEST(Partition, CoversAllZonesContiguouslyInRankOrder) {
  for (int zones = 1; zones <= 17; ++zones) {
    for (int workers = 1; workers <= zones; ++workers) {
      const auto ranges = partition_zones(zones, workers);
      ASSERT_EQ(ranges.size(), static_cast<std::size_t>(workers));
      int next = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.first, next) << zones << "z/" << workers << "w";
        EXPECT_GE(r.count, 1);
        next = r.end();
      }
      EXPECT_EQ(next, zones);
    }
  }
}

TEST(Partition, NearEqualBlocks) {
  const auto ranges = partition_zones(10, 4);
  int lo = 10, hi = 0;
  for (const auto& r : ranges) {
    lo = std::min(lo, r.count);
    hi = std::max(hi, r.count);
  }
  EXPECT_LE(hi - lo, 1);  // block partition never skews by more than one
}

TEST(Partition, SingleWorkerOwnsEverything) {
  const auto ranges = partition_zones(7, 1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (ZoneRange{0, 7}));
}

TEST(Partition, DeterministicAcrossCalls) {
  // Migration re-runs the same function over the survivor count; both
  // sides of a recovery must agree byte-for-byte.
  EXPECT_EQ(partition_zones(13, 5), partition_zones(13, 5));
  EXPECT_EQ(partition_zones(13, 4), partition_zones(13, 4));
}

TEST(Partition, ClampWorkers) {
  EXPECT_EQ(clamp_workers(8, 3), 3);
  EXPECT_EQ(clamp_workers(3, 8), 3);   // at most one worker per zone
  EXPECT_EQ(clamp_workers(1, 64), 1);
  EXPECT_EQ(clamp_workers(5, 1), 1);
}

}  // namespace
}  // namespace llp::cluster
