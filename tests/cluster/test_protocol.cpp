// Wire protocol round-trips: a respawned worker reconstructs its whole
// world from one INIT frame, so every field must survive the encoding.
#include "cluster/protocol.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace llp::cluster {
namespace {

TEST(HaloRoute, PacksAndUnpacksBothDirections) {
  for (int src = 0; src < 5; ++src) {
    for (int dest = 0; dest < 5; ++dest) {
      for (const bool rightward : {false, true}) {
        const std::uint64_t b = pack_halo_route(src, dest, rightward);
        int s = -1, d = -1;
        bool r = !rightward;
        unpack_halo_route(b, &s, &d, &r);
        EXPECT_EQ(s, src);
        EXPECT_EQ(d, dest);
        EXPECT_EQ(r, rightward);
      }
    }
  }
}

WorkerInit sample_init() {
  WorkerInit init;
  init.slot = 3;
  init.rank = 2;
  init.ranks = 4;
  init.attempt = 7;
  init.zone_first = 5;
  init.total_zones = 9;
  init.start_step = 12;
  init.total_steps = 40;
  init.ckpt_every = 5;
  init.worker_threads = 2;
  init.mode = 0;
  init.heartbeat_ms = 25;
  init.generation = 6;
  init.spacing = 0.0625;
  init.mach = 1.75;
  init.alpha_deg = 2.5;
  init.beta_deg = -1.25;
  init.cfl = 2.5;
  init.kappa_i = 0.3;
  init.state_cfl = 2.5;
  init.state_residual = 3.25e-3;
  init.state_prev_residual = 4.5e-3;
  init.ckpt_dir = "/tmp/ck";
  init.meta = "cluster cfl=2.5 mach=1.75";
  init.fault_spec = "iocrash:w1.step:3:0";
  init.region_prefix = "run.w3";
  WorkerZone z0;
  z0.dims = f3d::ZoneDims{8, 6, 6};
  z0.bc = {1, 2, 3, 4, 5, 0};
  WorkerZone z1;
  z1.dims = f3d::ZoneDims{7, 6, 6};
  z1.bc = {2, 1, 0, 3, 4, 5};
  init.zones = {z0, z1};
  return init;
}

TEST(Protocol, InitRoundTripsEveryField) {
  const WorkerInit init = sample_init();
  llp::msg::Frame f;
  f.type = static_cast<std::uint32_t>(MsgType::kInit);
  f.payload = encode_init(init);
  const WorkerInit out = decode_init(f);

  EXPECT_EQ(out.slot, init.slot);
  EXPECT_EQ(out.rank, init.rank);
  EXPECT_EQ(out.ranks, init.ranks);
  EXPECT_EQ(out.attempt, init.attempt);
  EXPECT_EQ(out.zone_first, init.zone_first);
  EXPECT_EQ(out.total_zones, init.total_zones);
  EXPECT_EQ(out.start_step, init.start_step);
  EXPECT_EQ(out.total_steps, init.total_steps);
  EXPECT_EQ(out.ckpt_every, init.ckpt_every);
  EXPECT_EQ(out.worker_threads, init.worker_threads);
  EXPECT_EQ(out.mode, init.mode);
  EXPECT_EQ(out.heartbeat_ms, init.heartbeat_ms);
  EXPECT_EQ(out.generation, init.generation);
  EXPECT_EQ(out.spacing, init.spacing);
  EXPECT_EQ(out.mach, init.mach);
  EXPECT_EQ(out.alpha_deg, init.alpha_deg);
  EXPECT_EQ(out.beta_deg, init.beta_deg);
  EXPECT_EQ(out.cfl, init.cfl);
  EXPECT_EQ(out.kappa_i, init.kappa_i);
  EXPECT_EQ(out.state_cfl, init.state_cfl);
  EXPECT_EQ(out.state_residual, init.state_residual);
  EXPECT_EQ(out.state_prev_residual, init.state_prev_residual);
  EXPECT_EQ(out.ckpt_dir, init.ckpt_dir);
  EXPECT_EQ(out.meta, init.meta);
  EXPECT_EQ(out.fault_spec, init.fault_spec);
  EXPECT_EQ(out.region_prefix, init.region_prefix);
  ASSERT_EQ(out.zones.size(), init.zones.size());
  for (std::size_t i = 0; i < init.zones.size(); ++i) {
    EXPECT_EQ(out.zones[i].dims.jmax, init.zones[i].dims.jmax);
    EXPECT_EQ(out.zones[i].dims.kmax, init.zones[i].dims.kmax);
    EXPECT_EQ(out.zones[i].dims.lmax, init.zones[i].dims.lmax);
    EXPECT_EQ(out.zones[i].bc, init.zones[i].bc);
  }
}

TEST(Protocol, TruncatedInitThrowsTyped) {
  llp::msg::Frame f;
  f.type = static_cast<std::uint32_t>(MsgType::kInit);
  f.payload = encode_init(sample_init());
  f.payload.resize(f.payload.size() / 2);
  EXPECT_THROW(decode_init(f), llp::IoError);
}

TEST(Protocol, StepDoneRoundTripsWithAndWithoutPayloads) {
  StepDone sd;
  sd.sumsq = 1.5e-4;
  sd.points5 = 3000.0;
  llp::msg::Frame f;
  f.type = static_cast<std::uint32_t>(MsgType::kStepDone);
  f.payload = encode_step_done(sd);
  StepDone out = decode_step_done(f);
  EXPECT_EQ(out.sumsq, sd.sumsq);
  EXPECT_EQ(out.points5, sd.points5);
  EXPECT_TRUE(out.zone_payloads.empty());

  sd.zone_payloads = {{1.0, 2.0, 3.0}, {}, {4.0}};  // empty zone is legal
  f.payload = encode_step_done(sd);
  out = decode_step_done(f);
  ASSERT_EQ(out.zone_payloads.size(), 3u);
  EXPECT_EQ(out.zone_payloads[0], (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(out.zone_payloads[1].empty());
  EXPECT_EQ(out.zone_payloads[2], (std::vector<double>{4.0}));
}

TEST(Protocol, UploadCadenceMirrorsGenerationSchedule) {
  // every 5 steps of 12: steps 4 and 9 are cadence, 11 is the final step.
  EXPECT_FALSE(is_upload_step(0, 5, 12));
  EXPECT_TRUE(is_upload_step(4, 5, 12));
  EXPECT_FALSE(is_upload_step(5, 5, 12));
  EXPECT_TRUE(is_upload_step(9, 5, 12));
  EXPECT_TRUE(is_upload_step(11, 5, 12));
  // cadence 0 = final step only.
  EXPECT_FALSE(is_upload_step(4, 0, 12));
  EXPECT_TRUE(is_upload_step(11, 0, 12));
}

}  // namespace
}  // namespace llp::cluster
