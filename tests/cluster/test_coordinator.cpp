// run_cluster() end to end: parity against the in-process solver, bitwise
// recovery after an injected worker kill, spawn-failure migration, and the
// typed exhaustion error. Workers are fork+exec'd (F3D_CLUSTER_PATH), so
// these tests stay valid under TSan — no fork from a threaded parent.
#include "cluster/coordinator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/runtime.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "util/error.hpp"

namespace llp::cluster {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / ("llp_cluster_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ClusterConfig base_config(const std::string& ckpt_dir) {
  ClusterConfig cfg;
  cfg.case_spec.zones = {f3d::ZoneDims{6, 8, 8}, f3d::ZoneDims{6, 8, 8}};
  cfg.case_spec.freestream.mach = 2.0;
  cfg.case_spec.spacing = 0.1;
  cfg.init_grid = [](f3d::MultiZoneGrid& grid) {
    f3d::add_kmin_wall(grid);
    f3d::add_gaussian_pulse(grid, 0.05, 3.0);
  };
  cfg.steps = 6;
  cfg.workers = 2;
  cfg.ckpt_dir = ckpt_dir;
  cfg.ckpt_every = 2;
  cfg.worker_exe = F3D_CLUSTER_PATH;
  return cfg;
}

/// The same physics, one process, one solver: what the shards must match.
double in_process_residual(const ClusterConfig& cfg) {
  f3d::MultiZoneGrid grid = f3d::build_grid(cfg.case_spec);
  if (cfg.init_grid) cfg.init_grid(grid);
  llp::Runtime rt(cfg.worker_threads);
  llp::RuntimeScope scope(rt);
  f3d::SolverConfig sc;
  sc.freestream = cfg.case_spec.freestream;
  sc.cfl = cfg.cfl;
  sc.kappa_i = cfg.kappa_i;
  sc.engine = cfg.engine;
  sc.cfl_growth = 1.0;  // the cluster pins the CFL ramp off
  f3d::Solver solver(grid, sc, rt);
  return solver.run(cfg.steps);
}

TEST(Coordinator, CleanRunMatchesInProcessSolver) {
  const std::string dir = fresh_dir("clean");
  const ClusterConfig cfg = base_config(dir);
  const ClusterReport report = run_cluster(cfg);

  EXPECT_EQ(report.steps_completed, cfg.steps);
  EXPECT_EQ(report.workers_initial, 2);
  EXPECT_EQ(report.workers_final, 2);
  EXPECT_EQ(report.recoveries, 0);
  EXPECT_EQ(report.respawns, 0);
  EXPECT_EQ(report.detector_faults, 0u);
  ASSERT_EQ(report.residuals.size(), static_cast<std::size_t>(cfg.steps));

  const double solo = in_process_residual(cfg);
  ASSERT_TRUE(std::isfinite(report.final_residual));
  EXPECT_NEAR(report.final_residual, solo, 1e-9 * std::abs(solo))
      << "sharded combine diverged from the single-solver residual";
}

TEST(Coordinator, KilledWorkerRecoversBitwise) {
  const std::string clean_dir = fresh_dir("kill_clean");
  const ClusterReport clean = run_cluster(base_config(clean_dir));

  const std::string dir = fresh_dir("kill");
  ClusterConfig cfg = base_config(dir);
  cfg.fault_spec = "iocrash:w1.step:3:0";  // SIGKILL mid-run, one shot
  const ClusterReport report = run_cluster(cfg);

  // >= 1, not == 1: a loaded machine can add spurious liveness rollbacks,
  // and those must also land bitwise below.
  EXPECT_GE(report.recoveries, 1);
  EXPECT_GE(report.respawns, 2);  // global rollback respawns both workers
  EXPECT_EQ(report.migrations, 0);
  EXPECT_EQ(report.steps_completed, cfg.steps);
  // Same partition, same thread counts: the recovered trajectory must be
  // bitwise identical, not merely close.
  EXPECT_EQ(report.final_residual, clean.final_residual);
  ASSERT_EQ(report.residuals.size(), clean.residuals.size());
  for (std::size_t i = 0; i < clean.residuals.size(); ++i) {
    EXPECT_EQ(report.residuals[i], clean.residuals[i]) << "step " << i;
  }
}

TEST(Coordinator, SpawnFailureMigratesOntoSurvivors) {
  const std::string dir = fresh_dir("migrate");
  ClusterConfig cfg = base_config(dir);
  // Slot 1 can never spawn (count=0 = unlimited); after max_respawns
  // consecutive failures its zones migrate onto slot 0.
  cfg.fault_spec = "throw:w1.spawn:*:0:count=0";
  cfg.max_respawns = 1;
  cfg.max_recoveries = 8;
  cfg.step_deadline_ms = 2000;
  const ClusterReport report = run_cluster(cfg);

  EXPECT_EQ(report.migrations, 1);
  EXPECT_EQ(report.workers_final, 1);
  EXPECT_EQ(report.steps_completed, cfg.steps);
  ASSERT_TRUE(std::isfinite(report.final_residual));
  // The survivor owns the whole grid; the physics must still match the
  // single-solver run to combine tolerance (partition changed, so bitwise
  // equality is not owed).
  const double solo = in_process_residual(cfg);
  EXPECT_NEAR(report.final_residual, solo, 1e-9 * std::abs(solo));
}

TEST(Coordinator, RecoveryBudgetExhaustionIsTyped) {
  const std::string dir = fresh_dir("exhaust");
  ClusterConfig cfg = base_config(dir);
  cfg.fault_spec = "iocrash:w0.step:*:0:count=0";  // crashes every epoch
  cfg.max_respawns = 99;  // never migrate; burn the global budget instead
  cfg.max_recoveries = 2;
  EXPECT_THROW(run_cluster(cfg), llp::ClusterError);
}

TEST(Coordinator, RejectsMissingCheckpointDir) {
  ClusterConfig cfg = base_config("");
  cfg.ckpt_dir.clear();
  EXPECT_THROW(run_cluster(cfg), llp::ValidationError);
}

TEST(Coordinator, ClampsWorkersToZoneCount) {
  const std::string dir = fresh_dir("clamp");
  ClusterConfig cfg = base_config(dir);
  cfg.workers = 16;  // only two zones exist
  const ClusterReport report = run_cluster(cfg);
  EXPECT_EQ(report.workers_initial, 2);
  EXPECT_EQ(report.steps_completed, cfg.steps);
}

}  // namespace
}  // namespace llp::cluster
