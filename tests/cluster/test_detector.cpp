// FailureDetector: the externally-clocked liveness ladder. Every
// transition is driven with injected millisecond timestamps — no sleeps.
#include "cluster/detector.hpp"

#include <gtest/gtest.h>

#include "fault/health.hpp"

namespace llp::cluster {
namespace {

DetectorConfig fast_cfg() {
  DetectorConfig cfg;
  cfg.heartbeat_ms = 10;
  cfg.heartbeat_misses = 3;  // liveness window = 30 ms
  cfg.step_deadline_ms = 100;
  return cfg;
}

TEST(Detector, SpawnToReadyWithinDeadlineIsHealthy) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(1000);
  EXPECT_EQ(det.state(), WorkerHealth::kSpawning);
  EXPECT_EQ(det.check(1099), FailureKind::kNone);
  det.on_ready(1099);
  EXPECT_EQ(det.state(), WorkerHealth::kRunning);
}

TEST(Detector, ReadyTimeoutWhenInitNeverAcked) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(1000);
  EXPECT_EQ(det.check(1100), FailureKind::kNone);  // exactly at budget: ok
  EXPECT_EQ(det.check(1101), FailureKind::kReadyTimeout);
  EXPECT_EQ(det.state(), WorkerHealth::kDead);
}

TEST(Detector, HeartbeatKeepsSilentWorkerAlive) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(10);
  for (std::int64_t t = 20; t <= 90; t += 10) det.on_frame(t);
  EXPECT_EQ(det.check(100), FailureKind::kNone);
}

TEST(Detector, HeartbeatTimeoutAfterMissedWindow) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(10);
  det.on_frame(20);
  // Silence past heartbeat_ms * misses = 30 ms.
  EXPECT_EQ(det.check(50), FailureKind::kNone);
  EXPECT_EQ(det.check(51), FailureKind::kHeartbeatTimeout);
}

TEST(Detector, StepDeadlineFiresWhileHeartbeatsFlow) {
  // The hang discrimination: beacon thread keeps beating, main loop stalls.
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(0);
  det.on_progress(0, 10);
  std::int64_t t = 10;
  while (t < 110) {
    t += 10;
    det.on_frame(t);  // heartbeats keep the liveness window fresh
  }
  EXPECT_EQ(det.check(110), FailureKind::kNone);   // exactly at budget
  det.on_frame(111);
  EXPECT_EQ(det.check(111), FailureKind::kStepDeadline);
  EXPECT_EQ(det.last_step(), 0);
}

TEST(Detector, ProgressResetsTheStepClock) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(0);
  det.on_progress(0, 90);
  det.on_frame(120);
  det.on_frame(150);
  det.on_progress(1, 180);
  det.on_frame(210);
  det.on_frame(240);
  det.on_frame(270);
  EXPECT_EQ(det.check(280), FailureKind::kNone);
  EXPECT_EQ(det.last_step(), 1);
}

TEST(Detector, WouldFailIsPureCheckLatches) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(0);
  // would_fail evaluates without declaring: state stays kRunning no matter
  // how many times the coordinator polls the question.
  EXPECT_EQ(det.would_fail(500), FailureKind::kHeartbeatTimeout);
  EXPECT_EQ(det.would_fail(500), FailureKind::kHeartbeatTimeout);
  EXPECT_EQ(det.state(), WorkerHealth::kRunning);
  // check() is would_fail + declare.
  EXPECT_EQ(det.check(500), FailureKind::kHeartbeatTimeout);
  EXPECT_EQ(det.state(), WorkerHealth::kDead);
  // Dead workers never fail again (one declaration per failure).
  EXPECT_EQ(det.would_fail(9999), FailureKind::kNone);
  EXPECT_EQ(det.check(9999), FailureKind::kNone);
}

TEST(Detector, FinishedWorkerIsExemptFromEveryDeadline) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.on_ready(0);
  det.on_progress(7, 10);
  det.on_finished();
  EXPECT_EQ(det.check(100000), FailureKind::kNone);
  EXPECT_EQ(det.state(), WorkerHealth::kFinished);
}

TEST(Detector, DeclaredFailuresLandInHealthMonitor) {
  llp::fault::HealthMonitor health;
  FailureDetector det(fast_cfg(), &health);
  det.on_spawn(0);
  det.on_ready(0);
  det.on_progress(0, 10);
  det.declare(FailureKind::kCrashed);
  EXPECT_EQ(health.total_faults(), 1u);

  FailureDetector det2(fast_cfg(), &health);
  det2.on_spawn(0);
  EXPECT_EQ(det2.check(1000), FailureKind::kReadyTimeout);
  EXPECT_EQ(health.total_faults(), 2u);
}

TEST(Detector, RespawnReentersTheLadderCleanly) {
  FailureDetector det(fast_cfg(), nullptr);
  det.on_spawn(0);
  det.check(1000);  // kReadyTimeout; dead
  det.on_spawn(2000);  // respawned: the ladder restarts from kSpawning
  EXPECT_EQ(det.state(), WorkerHealth::kSpawning);
  EXPECT_EQ(det.check(2050), FailureKind::kNone);
  det.on_ready(2050);
  det.on_frame(2075);  // heartbeats resume inside the liveness window
  EXPECT_EQ(det.check(2100), FailureKind::kNone);
}

}  // namespace
}  // namespace llp::cluster
