#include "model/sync_cost.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::model::min_work_for_efficiency;
using llp::model::sync_overhead_fraction;

// Paper Table 1, all twelve cells.
struct Table1Row {
  int processors;
  std::int64_t sync;
  std::int64_t expected;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, MatchesPaperExactly) {
  const auto& row = GetParam();
  EXPECT_EQ(min_work_for_efficiency(row.processors, row.sync), row.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1,
    ::testing::Values(
        Table1Row{2, 10000, 2000000}, Table1Row{2, 100000, 20000000},
        Table1Row{2, 1000000, 200000000}, Table1Row{8, 10000, 8000000},
        Table1Row{8, 100000, 80000000}, Table1Row{8, 1000000, 800000000},
        Table1Row{32, 10000, 32000000}, Table1Row{32, 100000, 320000000},
        Table1Row{32, 1000000, 3200000000LL},
        Table1Row{128, 10000, 128000000},
        Table1Row{128, 100000, 1280000000LL},
        Table1Row{128, 1000000, 12800000000LL}));

TEST(MinWork, ScalesLinearlyInProcessors) {
  EXPECT_EQ(min_work_for_efficiency(64, 10000),
            2 * min_work_for_efficiency(32, 10000));
}

TEST(MinWork, LooserToleranceNeedsLessWork) {
  EXPECT_LT(min_work_for_efficiency(8, 10000, 0.05),
            min_work_for_efficiency(8, 10000, 0.01));
}

TEST(MinWork, RejectsBadArgs) {
  EXPECT_THROW(min_work_for_efficiency(0, 1000), llp::Error);
  EXPECT_THROW(min_work_for_efficiency(2, -1), llp::Error);
  EXPECT_THROW(min_work_for_efficiency(2, 1000, 0.0), llp::Error);
  EXPECT_THROW(min_work_for_efficiency(2, 1000, 1.5), llp::Error);
}

TEST(OverheadFraction, AtThresholdWorkIsAboutOnePercent) {
  const std::int64_t w = min_work_for_efficiency(8, 10000);
  const double f = sync_overhead_fraction(w, 8, 10000);
  EXPECT_NEAR(f, 0.01, 0.001);
}

TEST(OverheadFraction, GrowsWithProcessors) {
  const std::int64_t w = 1000000;
  EXPECT_LT(sync_overhead_fraction(w, 2, 10000),
            sync_overhead_fraction(w, 32, 10000));
}

TEST(OverheadFraction, ZeroSyncIsFree) {
  EXPECT_DOUBLE_EQ(sync_overhead_fraction(1000, 4, 0), 0.0);
}

TEST(OverheadFraction, BoundedByOne) {
  EXPECT_LE(sync_overhead_fraction(1, 128, 1000000), 1.0);
}

}  // namespace
