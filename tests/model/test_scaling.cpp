#include "model/scaling.hpp"

#include <gtest/gtest.h>

#include "model/stairstep.hpp"
#include "util/error.hpp"

namespace {

using llp::model::LoopWork;
using llp::model::MachineConfig;
using llp::model::predict_step_time;
using llp::model::WorkTrace;

MachineConfig test_machine() {
  MachineConfig m = llp::model::origin2000_r12k_300();
  return m;
}

WorkTrace single_loop_trace(double flops, std::int64_t trips,
                            double invocations = 1.0) {
  WorkTrace t;
  LoopWork w;
  w.name = "loop";
  w.flops_per_step = flops;
  w.trips = trips;
  w.invocations_per_step = invocations;
  w.parallel = true;
  t.loops.push_back(w);
  return t;
}

TEST(WorkTrace, Totals) {
  WorkTrace t = single_loop_trace(1e9, 100);
  t.loops.push_back(
      LoopWork{"serial", 1e8, 1, 1.0, false, 0.0});
  EXPECT_DOUBLE_EQ(t.total_flops(), 1.1e9);
  EXPECT_NEAR(t.serial_fraction(), 1e8 / 1.1e9, 1e-12);
}

TEST(PredictStep, SingleProcessorMatchesDeliveredRate) {
  const auto m = test_machine();
  const auto t = single_loop_trace(237e6, 100);
  const auto s = predict_step_time(t, m, 1);
  EXPECT_NEAR(s.total(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.sync_s, 0.0);  // p=1 issues no parallel sync
}

TEST(PredictStep, PerfectDivisorGivesIdealScaling) {
  const auto m = test_machine();
  const auto t = single_loop_trace(237e6, 100);
  const auto s1 = predict_step_time(t, m, 1);
  const auto s4 = predict_step_time(t, m, 4);
  // 100 trips on 4 procs: compute scales by exactly 1/4; only sync is added.
  EXPECT_NEAR(s4.compute_s, s1.total() / 4.0, 1e-9);
  EXPECT_GT(s4.sync_s, 0.0);
}

TEST(PredictStep, StairStepFlatBetweenJumps) {
  const auto m = test_machine();
  const auto t = single_loop_trace(1e9, 70);  // the 1M case's L dimension
  // ceil(70/p) = 2 for p in 35..69: compute time identical across the flat.
  const auto s35 = predict_step_time(t, m, 35);
  const auto s48 = predict_step_time(t, m, 48);
  const auto s64 = predict_step_time(t, m, 64);
  EXPECT_DOUBLE_EQ(s35.compute_s, s48.compute_s);
  EXPECT_DOUBLE_EQ(s48.compute_s, s64.compute_s);
  // And the jump at 70 is real.
  const auto s70 = predict_step_time(t, m, 70);
  EXPECT_LT(s70.compute_s, s64.compute_s * 0.51);
}

TEST(PredictStep, ComputeShareMatchesStairstepModel) {
  const auto m = test_machine();
  for (int p : {2, 7, 16, 33, 100}) {
    const auto t = single_loop_trace(1e9, 75);
    const auto s1 = predict_step_time(t, m, 1);
    const auto sp = predict_step_time(t, m, p);
    const double expect =
        s1.total() / llp::model::stairstep_speedup(75, p);
    EXPECT_NEAR(sp.compute_s, expect, 1e-12) << p;
  }
}

TEST(PredictStep, SerialRegionsDoNotScale) {
  const auto m = test_machine();
  WorkTrace t;
  t.loops.push_back(LoopWork{"serial", 237e6, 1, 1.0, false, 0.0});
  const auto s1 = predict_step_time(t, m, 1);
  const auto s64 = predict_step_time(t, m, 64);
  EXPECT_DOUBLE_EQ(s1.total(), s64.total());
}

TEST(PredictStep, SyncScalesWithInvocations) {
  const auto m = test_machine();
  const auto t1 = single_loop_trace(1e9, 64, 1.0);
  const auto t100 = single_loop_trace(1e9, 64, 100.0);
  const auto s1 = predict_step_time(t1, m, 16);
  const auto s100 = predict_step_time(t100, m, 16);
  EXPECT_NEAR(s100.sync_s, 100.0 * s1.sync_s, 1e-12);
}

TEST(PredictStep, NumaSlowdownKicksInForHugeTraffic) {
  const auto m = test_machine();
  auto t = single_loop_trace(237e6, 128);
  const auto before = predict_step_time(t, m, 64);
  // Saturating traffic: thousands of MB/s per processor of demand.
  t.loops[0].bytes_per_step = 1e13;
  const auto after = predict_step_time(t, m, 64);
  EXPECT_GT(after.compute_s, before.compute_s * 10.0);
}

TEST(PredictStep, LowTrafficUnaffected) {
  const auto m = test_machine();
  auto t = single_loop_trace(237e6, 128);
  const auto base = predict_step_time(t, m, 64);
  t.loops[0].bytes_per_step = 1e6;  // tiny
  const auto low = predict_step_time(t, m, 64);
  EXPECT_DOUBLE_EQ(base.compute_s, low.compute_s);
}

TEST(PredictStep, RejectsOverMaxProcessors) {
  const auto m = llp::model::hp_v2500();  // 16 procs
  const auto t = single_loop_trace(1e9, 64);
  EXPECT_THROW(predict_step_time(t, m, 17), llp::Error);
}

TEST(Amdahl, KnownValues) {
  EXPECT_DOUBLE_EQ(llp::model::amdahl_speedup(0.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(llp::model::amdahl_speedup(1.0, 8), 1.0);
  EXPECT_NEAR(llp::model::amdahl_speedup(0.05, 1e9), 20.0, 0.01);
}

TEST(Amdahl, RejectsBadArgs) {
  EXPECT_THROW(llp::model::amdahl_speedup(-0.1, 4), llp::Error);
  EXPECT_THROW(llp::model::amdahl_speedup(0.5, 0), llp::Error);
}

TEST(ScaleTrace, ScalesWorkAndTrips) {
  auto t = single_loop_trace(1e6, 10);
  t.loops[0].bytes_per_step = 100.0;
  const auto big = llp::model::scale_trace(t, 59.0, 5.0);
  EXPECT_DOUBLE_EQ(big.loops[0].flops_per_step, 59e6);
  EXPECT_DOUBLE_EQ(big.loops[0].bytes_per_step, 5900.0);
  EXPECT_EQ(big.loops[0].trips, 50);
  EXPECT_DOUBLE_EQ(big.loops[0].invocations_per_step, 1.0);
}

TEST(ScaleTrace, TripsNeverBelowOne) {
  const auto t = single_loop_trace(1e6, 3);
  const auto small = llp::model::scale_trace(t, 0.01, 0.01);
  EXPECT_EQ(small.loops[0].trips, 1);
}

TEST(ScaleTrace, RejectsBadScales) {
  const auto t = single_loop_trace(1e6, 3);
  EXPECT_THROW(llp::model::scale_trace(t, 0.0, 1.0), llp::Error);
  EXPECT_THROW(llp::model::scale_trace(t, 1.0, -2.0), llp::Error);
}

}  // namespace
