#include "model/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace {

using llp::model::MachineConfig;

std::vector<MachineConfig> all_machines() {
  return {llp::model::origin2000_r12k_300(),
          llp::model::origin2000_r10k_195(64),
          llp::model::origin2000_r10k_195(128),
          llp::model::sun_hpc10000(),
          llp::model::hp_v2500(),
          llp::model::sgi_power_challenge(),
          llp::model::convex_spp1000(),
          llp::model::software_dsm_cluster()};
}

TEST(Machines, SustainedBelowPeak) {
  for (const auto& m : all_machines()) {
    EXPECT_LT(m.sustained_mflops_per_proc, m.peak_mflops_per_proc) << m.name;
    EXPECT_GT(m.sustained_mflops_per_proc, 0.0) << m.name;
  }
}

TEST(Machines, SyncCostInPaperRange) {
  // §3: "the synchronization cost (for scalable systems) ranges from 2,000
  // to 1-million cycles (or more)".
  for (const auto& m : all_machines()) {
    for (int p : {2, 8, 32}) {
      if (p > m.max_processors) continue;
      const double cycles = m.sync_cycles(p);
      EXPECT_GE(cycles, 2000.0) << m.name << " p=" << p;
      EXPECT_LE(cycles, 100e6) << m.name << " p=" << p;
    }
  }
}

TEST(Machines, SyncCostGrowsWithProcessors) {
  for (const auto& m : all_machines()) {
    EXPECT_LT(m.sync_seconds(2), m.sync_seconds(m.max_processors)) << m.name;
  }
}

TEST(Machines, SecondsForFlopsMatchesRate) {
  const auto m = llp::model::origin2000_r12k_300();
  // 237 MFLOPS -> 1e6 flops in 1/237 ms.
  EXPECT_NEAR(m.seconds_for_flops(237e6), 1.0, 1e-9);
}

TEST(Machines, SecondsForFlopsRejectsNegative) {
  const auto m = llp::model::sun_hpc10000();
  EXPECT_THROW(m.seconds_for_flops(-1.0), llp::Error);
}

TEST(Origin2000, SustainedMatchesTable4Anchor) {
  // Table 4, p=1, 1M case: 237 MFLOPS delivered of 600 peak.
  const auto m = llp::model::origin2000_r12k_300();
  EXPECT_DOUBLE_EQ(m.sustained_mflops_per_proc, 237.0);
  EXPECT_DOUBLE_EQ(m.peak_mflops_per_proc, 600.0);
  EXPECT_EQ(m.max_processors, 128);
}

TEST(Hpc10000, SustainedMatchesTable4Anchor) {
  // Table 4, p=1, 1M case: 180 MFLOPS delivered of 800 peak.
  const auto m = llp::model::sun_hpc10000();
  EXPECT_DOUBLE_EQ(m.sustained_mflops_per_proc, 180.0);
  EXPECT_DOUBLE_EQ(m.peak_mflops_per_proc, 800.0);
  EXPECT_EQ(m.max_processors, 64);
}

TEST(Table4Observation, DeliveredPerProcSimilarAcrossVendors) {
  // §5: despite 800 vs 600 peak, the delivered per-processor rates of the
  // two machines are "actually very similar" — within 35% of each other.
  const auto a = llp::model::origin2000_r12k_300();
  const auto b = llp::model::sun_hpc10000();
  const double ratio =
      a.sustained_mflops_per_proc / b.sustained_mflops_per_proc;
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.35);
}

TEST(Origin195, ClockScaledFrom300) {
  const auto m = llp::model::origin2000_r10k_195(64);
  EXPECT_DOUBLE_EQ(m.clock_hz, 195e6);
  EXPECT_EQ(m.max_processors, 64);
  EXPECT_LT(m.sustained_mflops_per_proc,
            llp::model::origin2000_r12k_300().sustained_mflops_per_proc);
}

TEST(Origin195, OnlyPaperConfigsAllowed) {
  EXPECT_THROW(llp::model::origin2000_r10k_195(32), llp::Error);
}

TEST(V2500, SixteenProcessors) {
  EXPECT_EQ(llp::model::hp_v2500().max_processors, 16);
}

TEST(SyncSeconds, RejectsBadProcessorCount) {
  EXPECT_THROW(llp::model::sun_hpc10000().sync_seconds(0), llp::Error);
}

}  // namespace
namespace {

TEST(CrayC90, VectorMachineCharacteristics) {
  const auto m = llp::model::cray_c90();
  EXPECT_EQ(m.max_processors, 16);
  EXPECT_DOUBLE_EQ(m.l2_cache_bytes, 0.0);  // vector machines: no cache (§3)
  EXPECT_DOUBLE_EQ(m.numa.local_latency_ns, m.numa.remote_latency_ns);
  EXPECT_GT(m.sustained_mflops_per_proc,
            llp::model::origin2000_r12k_300().sustained_mflops_per_proc);
}

TEST(CrayC90, ModestRiscCountMatchesOneVectorProcessor) {
  // §2: the premise that makes vectorizable codes the right target class.
  const auto c90 = llp::model::cray_c90();
  const auto origin = llp::model::origin2000_r12k_300();
  const double ratio =
      c90.sustained_mflops_per_proc / origin.sustained_mflops_per_proc;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 8.0);  // "modest number"
}

}  // namespace
