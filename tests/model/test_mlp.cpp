#include "model/mlp.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace {

using llp::model::LoopWork;
using llp::model::MachineConfig;
using llp::model::partition_processors;
using llp::model::predict_step_time;
using llp::model::predict_step_time_mlp;
using llp::model::WorkTrace;
using llp::model::zone_of_region;

TEST(ZoneOfRegion, ParsesZonePrefixes) {
  EXPECT_EQ(zone_of_region("z0.sweep_j"), 0);
  EXPECT_EQ(zone_of_region("z12.rhs"), 12);
  EXPECT_EQ(zone_of_region("t4.m1.z2.update"), 2);
  EXPECT_EQ(zone_of_region("bc"), -1);
  EXPECT_EQ(zone_of_region("proj.exchange"), -1);
  EXPECT_EQ(zone_of_region("zebra.loop"), -1);
}

TEST(PartitionProcessors, ProportionalWithFloorOfOne) {
  const auto g = partition_processors({1.0, 1.0, 8.0}, 10);
  EXPECT_EQ(std::accumulate(g.begin(), g.end(), 0), 10);
  EXPECT_GE(g[0], 1);
  EXPECT_GE(g[1], 1);
  EXPECT_GE(g[2], 6);  // the big zone gets the bulk
}

TEST(PartitionProcessors, EqualZonesSplitEvenly) {
  const auto g = partition_processors({1.0, 1.0, 1.0, 1.0}, 16);
  for (int x : g) EXPECT_EQ(x, 4);
}

TEST(PartitionProcessors, ExactlyOneEach) {
  const auto g = partition_processors({5.0, 1.0, 1.0}, 3);
  for (int x : g) EXPECT_EQ(x, 1);
}

TEST(PartitionProcessors, RejectsTooFewProcessors) {
  EXPECT_THROW(partition_processors({1.0, 1.0, 1.0}, 2), llp::Error);
  EXPECT_THROW(partition_processors({}, 2), llp::Error);
}

WorkTrace three_zone_trace(double z0, double z1, double z2,
                           std::int64_t trips = 70,
                           double invocations = 4.0) {
  WorkTrace t;
  t.loops.push_back(LoopWork{"z0.sweeps", z0, trips, invocations, true, 0});
  t.loops.push_back(LoopWork{"z1.sweeps", z1, trips, invocations, true, 0});
  t.loops.push_back(LoopWork{"z2.sweeps", z2, trips, invocations, true, 0});
  t.loops.push_back(LoopWork{"bc", 0.002 * (z0 + z1 + z2), 1, 1.0, false, 0});
  return t;
}

TEST(Mlp, BalancedZonesBeatPlainLlpAtHighProcessorCounts) {
  // Equal zones, trips = 70, p = 120: plain LLP wastes processors past the
  // trip count (ceil(70/120)=1 but only 70 run) and pays 120-wide syncs;
  // MLP gives each zone 40 processors (ceil(70/40)=2... still the finer
  // point is the cheaper sync and concurrent zones).
  const MachineConfig m = llp::model::origin2000_r12k_300();
  const auto trace = three_zone_trace(1e9, 1e9, 1e9);
  const double llp_s = predict_step_time(trace, m, 120).total();
  const auto mlp = predict_step_time_mlp(trace, m, 120);
  EXPECT_LT(mlp.seconds_per_step, llp_s);
}

TEST(Mlp, ImbalancedZonesFavorPlainLlp) {
  // One tiny and one huge zone at a modest processor count: MLP's integer
  // groups cannot balance and the big zone's group is the bottleneck,
  // while plain LLP applies all processors to both zones in sequence.
  const MachineConfig m = llp::model::origin2000_r12k_300();
  WorkTrace t;
  t.loops.push_back(LoopWork{"z0.sweeps", 1e8, 450, 1.0, true, 0});
  t.loops.push_back(LoopWork{"z1.sweeps", 2e10, 450, 1.0, true, 0});
  const double llp_s = predict_step_time(t, m, 8).total();
  const auto mlp = predict_step_time_mlp(t, m, 8);
  EXPECT_GT(mlp.seconds_per_step, llp_s);
  EXPECT_GT(mlp.group_imbalance(), 1.0);
}

TEST(Mlp, GroupSizesSumToProcessors) {
  const auto trace = three_zone_trace(1e9, 5e9, 6e9);
  const auto mlp =
      predict_step_time_mlp(trace, llp::model::sun_hpc10000(), 64);
  EXPECT_EQ(std::accumulate(mlp.group_sizes.begin(), mlp.group_sizes.end(), 0),
            64);
}

TEST(Mlp, SerialTailAddsOnce) {
  const MachineConfig m = llp::model::origin2000_r12k_300();
  auto trace = three_zone_trace(1e9, 1e9, 1e9);
  const auto base = predict_step_time_mlp(trace, m, 30);
  trace.loops.push_back(LoopWork{"exchange", 237e6, 1, 1.0, false, 0});
  const auto with_serial = predict_step_time_mlp(trace, m, 30);
  EXPECT_NEAR(with_serial.seconds_per_step - base.seconds_per_step, 1.0,
              1e-9);
}

TEST(Mlp, RejectsTraceWithoutZones) {
  WorkTrace t;
  t.loops.push_back(LoopWork{"loop", 1e9, 64, 1.0, true, 0});
  EXPECT_THROW(
      predict_step_time_mlp(t, llp::model::origin2000_r12k_300(), 8),
      llp::Error);
}

TEST(Mlp, MatchesLlpWhenOneZoneDominatesCompletely) {
  // All work in one zone: MLP assigns nearly all processors there and the
  // prediction approaches the plain one.
  const MachineConfig m = llp::model::origin2000_r12k_300();
  WorkTrace t;
  t.loops.push_back(LoopWork{"z0.sweeps", 1e4, 64, 1.0, true, 0});
  t.loops.push_back(LoopWork{"z1.sweeps", 1e10, 450, 1.0, true, 0});
  const double llp_s = predict_step_time(t, m, 64).total();
  const auto mlp = predict_step_time_mlp(t, m, 64);
  EXPECT_NEAR(mlp.seconds_per_step, llp_s, 0.05 * llp_s);
}

}  // namespace
namespace {

TEST(PartitionProcessors, DeterministicAndExhaustive) {
  // Same inputs, same outputs; sums always equal p across a sweep.
  for (int p = 3; p <= 128; p += 11) {
    const auto a = partition_processors({15.0, 87.0, 89.0}, p);
    const auto b = partition_processors({15.0, 87.0, 89.0}, p);
    EXPECT_EQ(a, b);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), p) << p;
    for (int g : a) EXPECT_GE(g, 1);
  }
}

}  // namespace
