#include "model/work_per_sync.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::model::LoopLevel;
using llp::model::work_per_sync_1d;
using llp::model::work_per_sync_2d;
using llp::model::work_per_sync_3d;
using llp::model::work_per_sync_boundary;

// Paper Table 2: a 1-million grid point zone at 10/100/1000 cycles/point.
class Table2Work : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Table2Work, OneDimensional) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_1d(1000000, w), 1000000 * w);
}

TEST_P(Table2Work, TwoDimensionalInner) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_2d(1000, 1000, LoopLevel::kInner, w), 1000 * w);
}

TEST_P(Table2Work, TwoDimensionalOuter) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_2d(1000, 1000, LoopLevel::kOuter, w),
            1000000 * w);
}

TEST_P(Table2Work, TwoDimensionalBoundary) {
  const std::int64_t w = GetParam();
  // A 2-D zone's boundary is a line of 1000 points; parallelizing its only
  // loop gives one line of work per sync.
  EXPECT_EQ(work_per_sync_1d(1000, w), 1000 * w);
}

TEST_P(Table2Work, ThreeDimensionalInner) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_3d(100, 100, 100, LoopLevel::kInner, w), 100 * w);
}

TEST_P(Table2Work, ThreeDimensionalMiddle) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_3d(100, 100, 100, LoopLevel::kMiddle, w),
            10000 * w);
}

TEST_P(Table2Work, ThreeDimensionalOuter) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_3d(100, 100, 100, LoopLevel::kOuter, w),
            1000000 * w);
}

TEST_P(Table2Work, BoundaryInnerLoop) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_boundary(100, 100, LoopLevel::kInner, w), 100 * w);
}

TEST_P(Table2Work, BoundaryOuterLoop) {
  const std::int64_t w = GetParam();
  EXPECT_EQ(work_per_sync_boundary(100, 100, LoopLevel::kOuter, w),
            10000 * w);
}

INSTANTIATE_TEST_SUITE_P(Paper, Table2Work,
                         ::testing::Values(10, 100, 1000));

TEST(WorkPerSync, OuterBeatsInnerByGridFactor) {
  // The reason to parallelize outer loops: 4 orders of magnitude more work
  // per sync for the paper's 100^3 zone.
  const auto inner = work_per_sync_3d(100, 100, 100, LoopLevel::kInner, 10);
  const auto outer = work_per_sync_3d(100, 100, 100, LoopLevel::kOuter, 10);
  EXPECT_EQ(outer / inner, 10000);
}

TEST(WorkPerSync, MiddleInvalidFor2D) {
  EXPECT_THROW(work_per_sync_2d(10, 10, LoopLevel::kMiddle, 1), llp::Error);
}

TEST(WorkPerSync, MiddleInvalidForBoundary) {
  EXPECT_THROW(work_per_sync_boundary(10, 10, LoopLevel::kMiddle, 1),
               llp::Error);
}

TEST(WorkPerSync, RejectsNonPositiveArgs) {
  EXPECT_THROW(work_per_sync_1d(0, 10), llp::Error);
  EXPECT_THROW(work_per_sync_3d(10, 10, 10, LoopLevel::kOuter, 0),
               llp::Error);
}

}  // namespace
