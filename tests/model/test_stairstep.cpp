#include "model/stairstep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace {

using llp::model::composite_stairstep_speedup;
using llp::model::equivalent_processors;
using llp::model::max_units_per_processor;
using llp::model::speedup_jump_points;
using llp::model::stairstep_efficiency;
using llp::model::stairstep_speedup;

// Paper Table 3: a loop with 15 units of parallelism.
struct Table3Row {
  int processors;
  std::int64_t max_units;
  double speedup;
};

class Table3 : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3, MatchesPaper) {
  const auto& row = GetParam();
  EXPECT_EQ(max_units_per_processor(15, row.processors), row.max_units);
  EXPECT_DOUBLE_EQ(stairstep_speedup(15, row.processors), row.speedup);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table3,
    ::testing::Values(Table3Row{1, 15, 1.0}, Table3Row{2, 8, 15.0 / 8.0},
                      Table3Row{3, 5, 3.0}, Table3Row{4, 4, 3.75},
                      Table3Row{5, 3, 5.0}, Table3Row{6, 3, 5.0},
                      Table3Row{7, 3, 5.0}, Table3Row{8, 2, 7.5},
                      Table3Row{10, 2, 7.5}, Table3Row{14, 2, 7.5},
                      Table3Row{15, 1, 15.0}));

// Properties of the stair-step over a wide sweep.
class StairStepProperties
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(StairStepProperties, SpeedupNeverExceedsProcessorsOrUnits) {
  const auto [n, p] = GetParam();
  const double s = stairstep_speedup(n, p);
  EXPECT_LE(s, static_cast<double>(p) + 1e-12);
  EXPECT_LE(s, static_cast<double>(n) + 1e-12);
  EXPECT_GE(s, 1.0);
}

TEST_P(StairStepProperties, MonotoneNondecreasingInProcessors) {
  const auto [n, p] = GetParam();
  EXPECT_LE(stairstep_speedup(n, p), stairstep_speedup(n, p + 1) + 1e-12);
}

TEST_P(StairStepProperties, EfficiencyIsOneAtDivisors) {
  const auto [n, p] = GetParam();
  if (n % p == 0) {
    EXPECT_DOUBLE_EQ(stairstep_efficiency(n, p), 1.0);
  } else {
    EXPECT_LT(stairstep_efficiency(n, p), 1.0);
  }
}

TEST_P(StairStepProperties, EquivalentProcessorsGiveSameSpeedup) {
  const auto [n, p] = GetParam();
  const int eq = equivalent_processors(n, p);
  EXPECT_LE(eq, p);
  EXPECT_DOUBLE_EQ(stairstep_speedup(n, eq), stairstep_speedup(n, p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StairStepProperties,
    ::testing::Combine(::testing::Values<std::int64_t>(5, 15, 25, 45, 70, 75,
                                                       350, 450, 1000),
                       ::testing::Values(1, 2, 3, 5, 16, 48, 64, 88, 104,
                                         127)));

TEST(StairStep, FullSpeedupAtUnitCount) {
  EXPECT_DOUBLE_EQ(stairstep_speedup(450, 450), 450.0);
}

TEST(JumpPoints, For15UnitsMatchTable3Boundaries) {
  // Speedup changes at p = 1,2,3,4,5,8,15 (Table 3's row boundaries).
  const auto jumps = speedup_jump_points(15, 20);
  const std::vector<int> expected = {1, 2, 3, 4, 5, 8, 15};
  EXPECT_EQ(jumps, expected);
}

TEST(JumpPoints, PaperK450JumpsNearMeasuredFlats) {
  // For the 59M case's K = 450 loops, the paper reports nearly flat
  // performance between 88 and 104 processors. ceil(450/p) = 5 for all of
  // 90..112, so the model predicts a flat covering [90, 112] with jumps at
  // its ends.
  const auto jumps = speedup_jump_points(450, 128);
  bool has90 = false, has113 = false;
  for (int j : jumps) {
    if (j == 90) has90 = true;
    if (j == 113) has113 = true;
    EXPECT_FALSE(j > 90 && j < 113) << "no jump inside the flat, got " << j;
  }
  EXPECT_TRUE(has90);
  EXPECT_TRUE(has113);
}

TEST(JumpPoints, JumpsAreAtMOverK) {
  // Jumps land at ceil(M/k) for integer k: M/5, M/4, M/3, M/2, M (paper §5).
  const auto jumps = speedup_jump_points(100, 100);
  for (int j : {20, 25, 34, 50, 100}) {
    EXPECT_NE(std::find(jumps.begin(), jumps.end(), j), jumps.end()) << j;
  }
}

TEST(Composite, SingleLoopReducesToPlainStairstep) {
  EXPECT_DOUBLE_EQ(composite_stairstep_speedup({15}, {1.0}, 4),
                   stairstep_speedup(15, 4));
}

TEST(Composite, WeightsByTimeFraction) {
  // Half the time in a 15-unit loop, half in a 450-unit loop, on p=15:
  // t = 0.5/15 + 0.5/15 = 1/15 (450-unit loop also gives exactly 15).
  const double s = composite_stairstep_speedup({15, 450}, {0.5, 0.5}, 15);
  EXPECT_DOUBLE_EQ(s, 15.0);
}

TEST(Composite, ShortLoopDragsDownLongLoop) {
  const double s = composite_stairstep_speedup({10, 1000}, {0.5, 0.5}, 64);
  EXPECT_LT(s, 20.0);  // the 10-unit loop caps its half at 10x
  EXPECT_GT(s, 10.0);
}

TEST(Composite, RejectsBadFractions) {
  EXPECT_THROW(composite_stairstep_speedup({10, 10}, {0.7, 0.7}, 4),
               llp::Error);
  EXPECT_THROW(composite_stairstep_speedup({10}, {1.0, 0.0}, 4), llp::Error);
}

TEST(StairStep, RejectsBadArgs) {
  EXPECT_THROW(stairstep_speedup(0, 4), llp::Error);
  EXPECT_THROW(stairstep_speedup(10, 0), llp::Error);
}

}  // namespace
