#include "model/numa.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::model::latency_limited_bandwidth_mbs;
using llp::model::NumaModel;

TEST(LatencyBandwidth, PaperLocalNumber) {
  // §7: 128 B at 310 ns -> 412 MB/s.
  EXPECT_NEAR(latency_limited_bandwidth_mbs(128.0, 310.0), 412.0, 1.0);
}

TEST(LatencyBandwidth, PaperRemoteNumber) {
  // §7: 128 B at 945 ns -> 135 MB/s.
  EXPECT_NEAR(latency_limited_bandwidth_mbs(128.0, 945.0), 135.0, 1.0);
}

TEST(LatencyBandwidth, SoftwareDsmNumber) {
  // §8: 128 B at 100 us -> 1.3 MB/s, the SDSM killer.
  EXPECT_NEAR(latency_limited_bandwidth_mbs(128.0, 100000.0), 1.3, 0.05);
}

TEST(LatencyBandwidth, RejectsBadArgs) {
  EXPECT_THROW(latency_limited_bandwidth_mbs(0.0, 100.0), llp::Error);
  EXPECT_THROW(latency_limited_bandwidth_mbs(64.0, 0.0), llp::Error);
}

TEST(Origin2000Numa, DefaultsMatchPaper) {
  const NumaModel m = llp::model::origin2000_numa();
  EXPECT_NEAR(m.local_bandwidth_mbs(), 412.0, 1.0);
  EXPECT_NEAR(m.remote_bandwidth_mbs(), 135.0, 1.0);
  EXPECT_DOUBLE_EQ(m.overlapped_offnode_mbs, 195.0);
}

TEST(Origin2000Numa, TunedCodeTrafficIsUmaLike) {
  // The paper's tuned F3D generates 68 MB/s per processor — below even the
  // worst-case remote bandwidth, so the Origin can be treated as UMA.
  const NumaModel m = llp::model::origin2000_numa();
  EXPECT_TRUE(m.uma_like(68.0));
}

TEST(Origin2000Numa, HighTrafficIsNotUmaLike) {
  const NumaModel m = llp::model::origin2000_numa();
  EXPECT_FALSE(m.uma_like(500.0));
}

TEST(BandwidthSlowdown, NoPenaltyUnderLimit) {
  const NumaModel m = llp::model::origin2000_numa();
  EXPECT_DOUBLE_EQ(m.bandwidth_slowdown(68.0), 1.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_slowdown(0.0), 1.0);
}

TEST(BandwidthSlowdown, ScalesAboveLimit) {
  const NumaModel m = llp::model::origin2000_numa();
  const double s = m.bandwidth_slowdown(390.0);
  EXPECT_NEAR(s, 2.0, 0.01);  // 390 / 195
}

TEST(BandwidthSlowdown, RejectsNegativeTraffic) {
  const NumaModel m = llp::model::origin2000_numa();
  EXPECT_THROW(m.bandwidth_slowdown(-1.0), llp::Error);
}

TEST(ExemplarNuma, MuchWorseThanOrigin) {
  const NumaModel ex = llp::model::exemplar_numa();
  const NumaModel org = llp::model::origin2000_numa();
  EXPECT_LT(ex.remote_bandwidth_mbs(), org.remote_bandwidth_mbs());
  // The tuned code's 68 MB/s does NOT fit under the Exemplar's off-node
  // path — consistent with the paper's unsolved Exemplar problems.
  EXPECT_FALSE(ex.uma_like(68.0));
}

TEST(SoftwareDsmNuma, OffNodeEffectivelyUnusable) {
  const NumaModel m = llp::model::software_dsm_numa();
  EXPECT_LT(m.remote_bandwidth_mbs(), 2.0);
  EXPECT_GT(m.bandwidth_slowdown(68.0), 10.0);
}

}  // namespace
