#include "util/format.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Strfmt, BasicSubstitution) {
  EXPECT_EQ(llp::strfmt("%d-%s", 7, "x"), "7-x");
}

TEST(Strfmt, FloatPrecision) {
  EXPECT_EQ(llp::strfmt("%.3f", 1.23456), "1.235");
}

TEST(Strfmt, EmptyFormat) { EXPECT_EQ(llp::strfmt("%s", ""), ""); }

TEST(Strfmt, LongOutput) {
  const std::string s = llp::strfmt("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '1');
}

TEST(WithCommas, SmallNumbersUnchanged) {
  EXPECT_EQ(llp::with_commas(0), "0");
  EXPECT_EQ(llp::with_commas(999), "999");
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(llp::with_commas(1000), "1,000");
  EXPECT_EQ(llp::with_commas(2000000), "2,000,000");
  EXPECT_EQ(llp::with_commas(12800000000LL), "12,800,000,000");
}

TEST(WithCommas, Negative) {
  EXPECT_EQ(llp::with_commas(-1234567), "-1,234,567");
}

}  // namespace
