#include "util/array.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace {

using llp::Array3D;
using llp::Array4D;

TEST(Array3D, DimensionsAndSize) {
  Array3D<double> a(3, 5, 7);
  EXPECT_EQ(a.jmax(), 3);
  EXPECT_EQ(a.kmax(), 5);
  EXPECT_EQ(a.lmax(), 7);
  EXPECT_EQ(a.size(), 3u * 5u * 7u);
}

TEST(Array3D, FortranOrderFirstIndexFastest) {
  Array3D<double> a(4, 3, 2);
  EXPECT_EQ(a.index(0, 0, 0), 0u);
  EXPECT_EQ(a.index(1, 0, 0), 1u);  // j is stride 1
  EXPECT_EQ(a.index(0, 1, 0), 4u);  // k is stride jmax
  EXPECT_EQ(a.index(0, 0, 1), 12u); // l is stride jmax*kmax
}

TEST(Array3D, IndexCoversAllSlotsExactlyOnce) {
  Array3D<int> a(5, 4, 3);
  std::vector<int> seen(a.size(), 0);
  for (int l = 0; l < 3; ++l)
    for (int k = 0; k < 4; ++k)
      for (int j = 0; j < 5; ++j) seen[a.index(j, k, l)]++;
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Array3D, ReadWriteRoundTrip) {
  Array3D<double> a(3, 3, 3);
  a(1, 2, 0) = 42.5;
  EXPECT_DOUBLE_EQ(a(1, 2, 0), 42.5);
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 0.0);  // default init
}

TEST(Array3D, FillSetsEveryElement) {
  Array3D<double> a(2, 2, 2);
  a.fill(3.25);
  for (int l = 0; l < 2; ++l)
    for (int k = 0; k < 2; ++k)
      for (int j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(a(j, k, l), 3.25);
}

TEST(Array3D, InitValuePropagates) {
  Array3D<int> a(2, 2, 2, 7);
  EXPECT_EQ(a(1, 1, 1), 7);
}

TEST(Array3D, RejectsNonPositiveDims) {
  EXPECT_THROW(Array3D<double>(0, 1, 1), llp::Error);
  EXPECT_THROW(Array3D<double>(1, -1, 1), llp::Error);
}

TEST(Array3D, DataIsCacheLineAligned) {
  Array3D<double> a(17, 13, 11);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % llp::kCacheLineBytes,
            0u);
}

TEST(Array4D, ComponentIndexFastest) {
  Array4D<double> a(5, 4, 3, 2);
  EXPECT_EQ(a.index(0, 0, 0, 0), 0u);
  EXPECT_EQ(a.index(1, 0, 0, 0), 1u);   // n stride 1
  EXPECT_EQ(a.index(0, 1, 0, 0), 5u);   // j stride nvar
  EXPECT_EQ(a.index(0, 0, 1, 0), 20u);  // k stride nvar*jmax
  EXPECT_EQ(a.index(0, 0, 0, 1), 60u);  // l stride nvar*jmax*kmax
}

TEST(Array4D, PointReturnsContiguousComponents) {
  Array4D<double> a(5, 3, 3, 3);
  double* p = a.point(1, 2, 0);
  for (int n = 0; n < 5; ++n) p[n] = 10.0 + n;
  for (int n = 0; n < 5; ++n) EXPECT_DOUBLE_EQ(a(n, 1, 2, 0), 10.0 + n);
  // Adjacent components are adjacent in memory.
  EXPECT_EQ(&a(1, 1, 2, 0) - &a(0, 1, 2, 0), 1);
}

TEST(Array4D, SizeAndFill) {
  Array4D<float> a(2, 3, 4, 5);
  EXPECT_EQ(a.size(), 2u * 3u * 4u * 5u);
  a.fill(1.5f);
  EXPECT_FLOAT_EQ(a(1, 2, 3, 4), 1.5f);
}

TEST(Array4D, RejectsNonPositiveDims) {
  EXPECT_THROW(Array4D<double>(0, 1, 1, 1), llp::Error);
  EXPECT_THROW(Array4D<double>(5, 1, 0, 1), llp::Error);
}

TEST(AlignedVector, AllocationAligned) {
  llp::AlignedVector<double> v(1001);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % llp::kCacheLineBytes,
            0u);
}

TEST(AlignedVector, WorksWithOddSizes) {
  for (std::size_t n : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    llp::AlignedVector<int> v(n, 3);
    EXPECT_EQ(v.size(), n);
    EXPECT_EQ(v[n - 1], 3);
  }
}

}  // namespace
