#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

// Sets a test-only variable for one test body and always restores unset.
class ScopedEnv {
public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_.c_str()); }

private:
  std::string name_;
};

constexpr const char* kVar = "LLP_TEST_ENV_VAR";

TEST(Env, RawDistinguishesUnsetFromEmpty) {
  ::unsetenv(kVar);
  EXPECT_FALSE(llp::env::raw(kVar).has_value());
  ScopedEnv e(kVar, "");
  ASSERT_TRUE(llp::env::raw(kVar).has_value());
  EXPECT_EQ(*llp::env::raw(kVar), "");
}

TEST(Env, GetStringFallsBackOnUnsetOrEmpty) {
  ::unsetenv(kVar);
  EXPECT_EQ(llp::env::get_string(kVar, "dflt"), "dflt");
  {
    ScopedEnv e(kVar, "");
    EXPECT_EQ(llp::env::get_string(kVar, "dflt"), "dflt");
  }
  ScopedEnv e(kVar, "value");
  EXPECT_EQ(llp::env::get_string(kVar, "dflt"), "value");
}

TEST(Env, GetFlagSemantics) {
  ::unsetenv(kVar);
  EXPECT_FALSE(llp::env::get_flag(kVar));
  for (const char* on : {"1", "yes", "true", "2"}) {
    ScopedEnv e(kVar, on);
    EXPECT_TRUE(llp::env::get_flag(kVar)) << on;
  }
  for (const char* off : {"", "0", "0garbage"}) {
    ScopedEnv e(kVar, off);
    EXPECT_FALSE(llp::env::get_flag(kVar)) << off;
  }
}

TEST(Env, GetIntParsesWholeTokenInRange) {
  ::unsetenv(kVar);
  EXPECT_EQ(llp::env::get_int(kVar, 7, 0, 100), 7);
  {
    ScopedEnv e(kVar, "42");
    EXPECT_EQ(llp::env::get_int(kVar, 7, 0, 100), 42);
  }
  {
    ScopedEnv e(kVar, "-3");
    EXPECT_EQ(llp::env::get_int(kVar, 7, -10, 100), -3);
  }
}

TEST(Env, GetIntRejectsMalformedAndOutOfRange) {
  for (const char* bad : {"banana", "12abc", "", "1e3"}) {
    ScopedEnv e(kVar, bad);
    EXPECT_EQ(llp::env::get_int(kVar, 7, 0, 100), 7) << bad;
  }
  {
    ScopedEnv e(kVar, "101");
    EXPECT_EQ(llp::env::get_int(kVar, 7, 0, 100), 7);
  }
  ScopedEnv e(kVar, "-1");
  EXPECT_EQ(llp::env::get_int(kVar, 7, 0, 100), 7);
}

TEST(Env, GetDoubleParsesAndRejects) {
  ::unsetenv(kVar);
  EXPECT_DOUBLE_EQ(llp::env::get_double(kVar, 1.5, 0.0, 10.0), 1.5);
  {
    ScopedEnv e(kVar, "2.25");
    EXPECT_DOUBLE_EQ(llp::env::get_double(kVar, 1.5, 0.0, 10.0), 2.25);
  }
  for (const char* bad : {"nan", "banana", "2.5x", "11.0", "-0.5"}) {
    ScopedEnv e(kVar, bad);
    EXPECT_DOUBLE_EQ(llp::env::get_double(kVar, 1.5, 0.0, 10.0), 1.5) << bad;
  }
}

}  // namespace
