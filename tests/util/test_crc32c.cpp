// CRC32C (Castagnoli) against published vectors — the checkpoint format's
// integrity primitive must match the standard polynomial exactly, or files
// written here would be unreadable by any external tool (and vice versa).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/crc32c.hpp"

namespace {

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(llp::crc32c(nullptr, 0), 0u);
  EXPECT_EQ(llp::crc32c("x", 0), 0u);
}

TEST(Crc32c, StandardCheckVector) {
  // The canonical CRC32C check value (RFC 3720 appendix, zlib test suite).
  EXPECT_EQ(llp::crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, Rfc3720Vectors) {
  // iSCSI CRC test patterns from RFC 3720 §B.4.
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(llp::crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(llp::crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<std::uint8_t> incr(32);
  for (std::size_t i = 0; i < incr.size(); ++i) {
    incr[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(llp::crc32c(incr.data(), incr.size()), 0x46DD794Eu);
  std::vector<std::uint8_t> decr(32);
  for (std::size_t i = 0; i < decr.size(); ++i) {
    decr[i] = static_cast<std::uint8_t>(31 - i);
  }
  EXPECT_EQ(llp::crc32c(decr.data(), decr.size()), 0x113FDB5Cu);
}

TEST(Crc32c, SeedChainsIncrementalComputation) {
  // crc(a+b) == crc(b, seed=crc(a)) — the writer checksums payloads in one
  // shot today, but the property guards the implementation's seed handling.
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = llp::crc32c(msg.data(), msg.size());
  for (std::size_t cut : {std::size_t{1}, std::size_t{7}, msg.size() - 1}) {
    const std::uint32_t first = llp::crc32c(msg.data(), cut);
    const std::uint32_t chained =
        llp::crc32c(msg.data() + cut, msg.size() - cut, first);
    EXPECT_EQ(chained, whole) << "split at " << cut;
  }
}

TEST(Crc32c, SingleBitFlipChangesDigest) {
  std::vector<std::uint8_t> buf(257, 0xA5);
  const std::uint32_t clean = llp::crc32c(buf.data(), buf.size());
  for (std::size_t byte : {std::size_t{0}, std::size_t{128}, buf.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(llp::crc32c(buf.data(), buf.size()), clean)
          << "flip at byte " << byte << " bit " << bit;
      buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
  EXPECT_EQ(llp::crc32c(buf.data(), buf.size()), clean);
}

TEST(Crc32c, UnalignedStartMatchesAligned) {
  // Slicing-by-8 has an alignment prologue; digests must not depend on the
  // buffer's address.
  std::vector<std::uint8_t> storage(64 + 16, 0);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    storage[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint32_t base = llp::crc32c(storage.data() + 8, 64);
  for (std::size_t shift = 0; shift < 8; ++shift) {
    std::vector<std::uint8_t> copy(storage.begin() + 8, storage.begin() + 72);
    std::vector<std::uint8_t> shifted(shift, 0);
    shifted.insert(shifted.end(), copy.begin(), copy.end());
    EXPECT_EQ(llp::crc32c(shifted.data() + shift, 64), base)
        << "offset " << shift;
  }
}

}  // namespace
