#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace {

TEST(SplitMix64, DeterministicForSeed) {
  llp::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  llp::SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, UniformInUnitInterval) {
  llp::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, UniformRangeRespectsBounds) {
  llp::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(SplitMix64, UniformMeanReasonable) {
  llp::SplitMix64 rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SplitMix64, BelowStaysInRange) {
  llp::SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

}  // namespace
