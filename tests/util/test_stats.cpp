#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace {

TEST(Summarize, EmptyGivesZeros) {
  const llp::Summary s = llp::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::array<double, 1> xs = {4.0};
  const llp::Summary s = llp::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  const llp::Summary s = llp::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(RelDiff, ZeroForEqual) {
  EXPECT_DOUBLE_EQ(llp::rel_diff(3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(llp::rel_diff(0.0, 0.0), 0.0);
}

TEST(RelDiff, Symmetric) {
  EXPECT_DOUBLE_EQ(llp::rel_diff(1.0, 2.0), llp::rel_diff(2.0, 1.0));
}

TEST(RelDiff, ScalesByLarger) {
  EXPECT_DOUBLE_EQ(llp::rel_diff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(llp::rel_diff(-1.0, 1.0), 2.0);
}

TEST(GeometricMean, KnownValues) {
  const std::array<double, 2> xs = {1.0, 4.0};
  EXPECT_NEAR(llp::geometric_mean(xs), 2.0, 1e-12);
}

TEST(GeometricMean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(llp::geometric_mean({}), llp::Error);
  const std::array<double, 2> bad = {1.0, 0.0};
  EXPECT_THROW(llp::geometric_mean(bad), llp::Error);
}

TEST(LogLogSlope, RecoversExactPowerLaw) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // slope 2
  }
  EXPECT_NEAR(llp::loglog_slope(x, y), 2.0, 1e-12);
}

TEST(LogLogSlope, NegativeSlope) {
  std::vector<double> x = {1.0, 10.0, 100.0};
  std::vector<double> y = {100.0, 10.0, 1.0};
  EXPECT_NEAR(llp::loglog_slope(x, y), -1.0, 1e-12);
}

TEST(LogLogSlope, RequiresMatchingPositiveData) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {1.0};
  EXPECT_THROW(llp::loglog_slope(x, y), llp::Error);
  std::vector<double> y2 = {1.0, -1.0};
  EXPECT_THROW(llp::loglog_slope(x, y2), llp::Error);
}

}  // namespace
