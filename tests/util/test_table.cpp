#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(llp::Table({}), llp::Error);
}

TEST(Table, RejectsRowWidthMismatch) {
  llp::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), llp::Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), llp::Error);
}

TEST(Table, RendersHeaderAndRule) {
  llp::Table t({"name", "value"});
  t.add_row({"x", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, PadsColumnsToWidestCell) {
  llp::Table t({"c"});
  t.add_row({"short"});
  t.add_row({"much-longer-cell"});
  const std::string s = t.to_string();
  // Each line (after the header) should have the same length.
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = nl + 1;
  }
}

TEST(Table, NumericCellsRightAligned) {
  llp::Table t({"n"});
  t.add_row({"5"});
  t.add_row({"12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("    5\n"), std::string::npos);
}

TEST(Table, TextCellsLeftAligned) {
  llp::Table t({"word"});
  t.add_row({"ab"});
  t.add_row({"abcdef"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ab    \n"), std::string::npos);
}

TEST(Table, RowsCount) {
  llp::Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CommaAndScientificCellsCountAsNumeric) {
  llp::Table t({"v"});
  t.add_row({"12,800,000,000"});
  t.add_row({"3.64E3"});
  t.add_row({"x"});
  const std::string s = t.to_string();
  // The scientific cell is right-aligned: preceded by spaces.
  EXPECT_NE(s.find("        3.64E3"), std::string::npos);
}

}  // namespace
