// FaultPlan spec grammar: parsing, defaults, wildcards, options, seed,
// round-tripping, and rejection of malformed input.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "util/error.hpp"

namespace {

using llp::fault::FaultKind;
using llp::fault::FaultPlan;
using llp::fault::FaultSpec;

TEST(FaultPlan, ParsesSingleThrowEntry) {
  const auto plan = FaultPlan::parse("throw:run.z0.rhs:3:1");
  ASSERT_EQ(plan.specs.size(), 1u);
  const FaultSpec& s = plan.specs[0];
  EXPECT_EQ(s.kind, FaultKind::kThrow);
  EXPECT_EQ(s.region, "run.z0.rhs");
  EXPECT_EQ(s.invocation, 3u);
  EXPECT_FALSE(s.any_invocation);
  EXPECT_EQ(s.lane, 1);
  EXPECT_FALSE(s.any_lane);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.probability, 1.0);
}

TEST(FaultPlan, ParsesAllKinds) {
  const auto plan =
      FaultPlan::parse("throw:r:0:0;nan:r:0:0;delay:r:0:0;hang:r:0:0");
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kThrow);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kNan);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.specs[3].kind, FaultKind::kHang);
}

TEST(FaultPlan, ParsesWildcardsAndOptions) {
  const auto plan = FaultPlan::parse(
      "delay:z0.sweep_j:*:2:delay=20:count=5;nan:z0.rhs:6:*:array=q0:p=0.25");
  ASSERT_EQ(plan.specs.size(), 2u);
  const FaultSpec& d = plan.specs[0];
  EXPECT_TRUE(d.any_invocation);
  EXPECT_FALSE(d.any_lane);
  EXPECT_EQ(d.lane, 2);
  EXPECT_DOUBLE_EQ(d.delay_ms, 20.0);
  EXPECT_EQ(d.count, 5);
  const FaultSpec& n = plan.specs[1];
  EXPECT_FALSE(n.any_invocation);
  EXPECT_EQ(n.invocation, 6u);
  EXPECT_TRUE(n.any_lane);
  EXPECT_EQ(n.array, "q0");
  EXPECT_DOUBLE_EQ(n.probability, 0.25);
}

TEST(FaultPlan, ParsesSeedEntryAndTolersWhitespace) {
  const auto plan = FaultPlan::parse(" throw:r:0:0 ; seed=42 ");
  ASSERT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.seed, 42u);
}

TEST(FaultPlan, EmptyTextIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ; ").empty());
}

TEST(FaultPlan, RoundTrips) {
  const char* text =
      "throw:run.z0.rhs:3:1;"
      "nan:run.z0.rhs:6:0:array=q0;"
      "delay:z0.sweep_j:*:2:delay=20:count=5;"
      "hang:z0.update:2:*:p=0.5;"
      "seed=7";
  const auto plan = FaultPlan::parse(text);
  const auto again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.specs.size(), plan.specs.size());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, ParsesIoKinds) {
  const auto plan = FaultPlan::parse(
      "ioshort:ckpt:1:0;ioflip:ckpt:2:1:bit=12;ioenospc:ckpt:*:0;"
      "iocrash:ckpt:3:2");
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kIoShort);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kIoFlip);
  EXPECT_EQ(plan.specs[1].bit, 12);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kIoEnospc);
  EXPECT_TRUE(plan.specs[2].any_invocation);
  EXPECT_EQ(plan.specs[3].kind, FaultKind::kIoCrash);
  EXPECT_EQ(plan.specs[3].lane, 2);
  for (const auto& s : plan.specs) {
    EXPECT_TRUE(llp::fault::is_io_kind(s.kind));
    EXPECT_EQ(s.region, "ckpt") << "stream name rides in the region field";
  }
  EXPECT_FALSE(llp::fault::is_io_kind(FaultKind::kThrow));
  EXPECT_FALSE(llp::fault::is_io_kind(FaultKind::kNan));
  EXPECT_EQ(plan.specs[0].bit, -1) << "unset bit stays seed-derived";
}

TEST(FaultPlan, IoKindsRoundTrip) {
  const char* text =
      "ioshort:ckpt:1:0;"
      "ioflip:ckpt:2:1:bit=12;"
      "ioenospc:ckpt:*:0:count=2;"
      "iocrash:ckpt:3:2;"
      "seed=9";
  const auto plan = FaultPlan::parse(text);
  const auto again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.specs.size(), plan.specs.size());
  EXPECT_EQ(again.specs[1].bit, 12);
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, MatchesRespectsWildcards) {
  FaultSpec s;
  s.region = "r";
  s.any_invocation = true;
  s.lane = 3;
  EXPECT_TRUE(s.matches("r", 17, 3));
  EXPECT_FALSE(s.matches("r", 17, 2));
  EXPECT_FALSE(s.matches("other", 17, 3));
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("throw:r:0"), llp::Error);     // too few fields
  EXPECT_THROW(FaultPlan::parse("boom:r:0:0"), llp::Error);    // unknown kind
  EXPECT_THROW(FaultPlan::parse("throw::0:0"), llp::Error);    // empty region
  EXPECT_THROW(FaultPlan::parse("throw:r:x:0"), llp::Error);   // bad invocation
  EXPECT_THROW(FaultPlan::parse("throw:r:0:0:swizzle=1"), llp::Error);
  EXPECT_THROW(FaultPlan::parse("throw:r:0:0:count"), llp::Error);
  EXPECT_THROW(FaultPlan::parse("nan:r:0:0:p=1.5"), llp::Error);
  EXPECT_THROW(FaultPlan::parse("delay:r:0:0:delay=-3"), llp::Error);
  EXPECT_THROW(FaultPlan::parse("seed=banana"), llp::Error);
}

}  // namespace
