// Injector behavior: deterministic firing at the keyed (region, invocation,
// lane) points, count budgets, seeded probability, NaN poisoning of
// registered arrays, invocation tainting, and the health/registry mirrors.
//
// These tests drive the FaultHook interface directly (begin/on_lane) so the
// timeline is explicit; the end-to-end path through parallel_for is covered
// at the bottom and in tests/integration/test_recovery.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace {

using llp::fault::FaultKind;
using llp::fault::FaultPlan;
using llp::fault::Injector;

llp::RegionId define_region(const std::string& name) {
  return llp::regions().define(name);
}

TEST(Injector, FiresOnlyAtTheKeyedPoint) {
  const auto region = define_region("inj.keyed");
  Injector inj(FaultPlan::parse("throw:inj.keyed:2:1"));

  for (std::uint64_t want = 0; want < 4; ++want) {
    const std::uint64_t inv = inj.begin(region);
    ASSERT_EQ(inv, want);
    for (int lane = 0; lane < 4; ++lane) {
      if (inv == 2 && lane == 1) {
        try {
          inj.on_lane(region, inv, lane);
          FAIL() << "expected LaneError";
        } catch (const llp::LaneError& e) {
          EXPECT_EQ(e.region(), region);
          EXPECT_EQ(e.lane(), 1);
        }
      } else {
        EXPECT_NO_THROW(inj.on_lane(region, inv, lane));
      }
    }
  }
  EXPECT_EQ(inj.faults_injected(), 1u);
  EXPECT_EQ(inj.faults_injected(FaultKind::kThrow), 1u);
}

TEST(Injector, CountLimitsFirings) {
  const auto region = define_region("inj.count");
  // Zero-delay "delay" faults are recordable but harmless — the easiest
  // kind to count.
  Injector inj(FaultPlan::parse("delay:inj.count:*:0:delay=0:count=2"));
  for (int i = 0; i < 5; ++i) {
    inj.on_lane(region, inj.begin(region), 0);
  }
  EXPECT_EQ(inj.faults_injected(FaultKind::kDelay), 2u);
}

TEST(Injector, ResetInvocationsRestartsTheTimeline) {
  const auto region = define_region("inj.reset");
  Injector inj(FaultPlan::parse("delay:inj.reset:3:0:delay=0"));
  for (int i = 0; i < 5; ++i) inj.on_lane(region, inj.begin(region), 0);
  EXPECT_EQ(inj.faults_injected(), 1u);

  inj.reset_invocations();
  EXPECT_EQ(inj.begin(region), 0u);  // timeline restarted
  for (std::uint64_t inv = 1; inv < 5; ++inv) {
    inj.on_lane(region, inv, 0);
  }
  EXPECT_EQ(inj.faults_injected(), 2u)
      << "the same entry must fire again on the restarted timeline";
}

TEST(Injector, NanPoisonsOnlyTheNamedRegisteredArray) {
  const auto region = define_region("inj.nan");
  Injector inj(FaultPlan::parse("nan:inj.nan:0:0:array=a"));
  std::vector<double> a(64, 1.0);
  std::vector<double> b(64, 1.0);
  inj.register_array("a", a.data(), a.size());
  inj.register_array("b", b.data(), b.size());
  EXPECT_EQ(inj.registered_arrays(), 2u);

  inj.on_lane(region, inj.begin(region), 0);

  int nans_a = 0;
  for (double v : a) nans_a += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans_a, 1) << "exactly one cell of the named array is poisoned";
  for (double v : b) EXPECT_FALSE(std::isnan(v));
  EXPECT_EQ(inj.faults_injected(FaultKind::kNan), 1u);
}

TEST(Injector, NanIndexIsSeedDeterministic) {
  const auto region = define_region("inj.nan_det");
  auto poisoned_index = [&](std::uint64_t seed) {
    auto plan = FaultPlan::parse("nan:inj.nan_det:0:0:array=q");
    plan.seed = seed;
    Injector inj(std::move(plan));
    std::vector<double> q(1024, 0.0);
    inj.register_array("q", q.data(), q.size());
    inj.on_lane(region, inj.begin(region), 0);
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (std::isnan(q[i])) return static_cast<long>(i);
    }
    return -1L;
  };
  const long first = poisoned_index(7);
  EXPECT_GE(first, 0);
  EXPECT_EQ(first, poisoned_index(7)) << "same seed, same cell";
}

TEST(Injector, ProbabilisticFiringIsSeedDeterministic) {
  const auto region = define_region("inj.prob");
  auto fired_pattern = [&] {
    Injector inj(FaultPlan::parse(
        "delay:inj.prob:*:0:delay=0:count=0:p=0.5;seed=99"));
    std::vector<bool> fired;
    std::uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t inv = inj.begin(region);
      inj.on_lane(region, inv, 0);
      const std::uint64_t now = inj.faults_injected();
      fired.push_back(now > last);
      last = now;
    }
    return fired;
  };
  const auto a = fired_pattern();
  const auto b = fired_pattern();
  EXPECT_EQ(a, b) << "p<1 entries must fire identically run-to-run";
  const long count = std::count(a.begin(), a.end(), true);
  EXPECT_GT(count, 50);   // ~100 expected out of 200
  EXPECT_LT(count, 150);
}

TEST(Injector, DelayActuallyDelays) {
  const auto region = define_region("inj.delay");
  Injector inj(FaultPlan::parse("delay:inj.delay:0:0:delay=30"));
  const auto t0 = std::chrono::steady_clock::now();
  inj.on_lane(region, inj.begin(region), 0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 25.0);
}

TEST(Injector, FiringTaintsTheInvocation) {
  const auto region = define_region("inj.taint");
  Injector inj(FaultPlan::parse("delay:inj.taint:1:0:delay=0"));
  const std::uint64_t i0 = inj.begin(region);
  inj.on_lane(region, i0, 0);
  const std::uint64_t i1 = inj.begin(region);
  inj.on_lane(region, i1, 0);
  EXPECT_FALSE(inj.tainted(region, i0));
  EXPECT_TRUE(inj.tainted(region, i1));
}

TEST(Injector, FaultsMirrorIntoHealthAndRegistry) {
  const auto region = define_region("inj.health");
  const auto before = llp::regions().stats(region).faults;
  Injector inj(FaultPlan::parse("delay:inj.health:*:0:delay=0:count=3"));
  for (int i = 0; i < 5; ++i) inj.on_lane(region, inj.begin(region), 0);

  EXPECT_EQ(inj.health().total_faults(), 3u);
  EXPECT_EQ(inj.health().faults(FaultKind::kDelay), 3u);
  EXPECT_EQ(llp::regions().stats(region).faults, before + 3);

  inj.health().note_recovery(region);
  EXPECT_EQ(inj.health().total_recoveries(), 1u);
  const std::string report = inj.health().report();
  EXPECT_NE(report.find("inj.health"), std::string::npos);
}

TEST(Injector, InstalledHookFiresInsideParallelFor) {
  const auto region = define_region("inj.loop");
  Injector inj(FaultPlan::parse("throw:inj.loop:1:0"));
  llp::fault::install(&inj);
  const llp::ForOptions opts =
      llp::ForOptions::in_region(region).with_threads(2);
  auto body = [](std::int64_t) {};

  EXPECT_NO_THROW(llp::parallel_for(0, 16, body, opts));  // invocation 0
  EXPECT_THROW(llp::parallel_for(0, 16, body, opts), llp::LaneError);
  // The pool survives the injected fault and the next invocation is clean.
  EXPECT_NO_THROW(llp::parallel_for(0, 16, body, opts));
  llp::fault::install(nullptr);
  EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST(Injector, UninstalledHookIsInert) {
  const auto region = define_region("inj.uninstalled");
  Injector inj(FaultPlan::parse("throw:inj.uninstalled:*:*:count=0"));
  // Never installed: loops on the region run clean.
  const llp::ForOptions opts =
      llp::ForOptions::in_region(region).with_threads(2);
  EXPECT_NO_THROW(llp::parallel_for(0, 16, [](std::int64_t) {}, opts));
  EXPECT_EQ(inj.faults_injected(), 0u);
}

}  // namespace
