// Paper §7, Example 4: the three access orderings over A(JMAX,KMAX,LMAX)
// under page-granularity interleaving. This test drives the contention
// analyzer with the exact index patterns of the paper's three code fragments
// and checks the qualitative ranking: (a) best, (b) acceptable, (c)
// unacceptable.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "simsmp/page_memory.hpp"
#include "util/array.hpp"

namespace {

using llp::simsmp::ContentionAnalyzer;
using llp::simsmp::ContentionReport;

// Dims chosen so one L plane is exactly four pages: a page never mixes
// rows from different analysis corner cases and the geometry is easy to
// reason about (j-row = 256 B, 16 k-rows per 4096-B page).
constexpr int kJ = 32, kK = 64, kL = 32;
constexpr int kProcs = 8;
constexpr std::uint64_t kPage = 4096;

// Address of A(j,k,l) for an 8-byte Fortran-ordered array.
std::uint64_t addr(int j, int k, int l) {
  const llp::Array3D<double> shape(kJ, kK, kL);  // only for the index math
  return shape.index(j, k, l) * 8;
}

// (a) C$doacross over L, stride-1 J inside: contiguous slabs per processor.
ContentionReport ordering_a() {
  ContentionAnalyzer an(kPage, kProcs, 2);
  for (int p = 0; p < kProcs; ++p) {
    const auto r = llp::static_block(kL, p, kProcs);
    for (int l = static_cast<int>(r.begin); l < static_cast<int>(r.end); ++l)
      for (int k = 0; k < kK; ++k)
        for (int j = 0; j < kJ; ++j) an.access(p, addr(j, k, l));
  }
  return an.report();
}

// (b) C$doacross over K, L inside: striped footprints.
ContentionReport ordering_b() {
  ContentionAnalyzer an(kPage, kProcs, 2);
  for (int p = 0; p < kProcs; ++p) {
    const auto r = llp::static_block(kK, p, kProcs);
    for (int k = static_cast<int>(r.begin); k < static_cast<int>(r.end); ++k)
      for (int l = 0; l < kL; ++l)
        for (int j = 0; j < kJ; ++j) an.access(p, addr(j, k, l));
  }
  return an.report();
}

// (c) C$doacross over J batching a K-buffer: every processor strides
// through the whole array (the paper's unacceptable pattern).
ContentionReport ordering_c() {
  ContentionAnalyzer an(kPage, kProcs, 2);
  for (int p = 0; p < kProcs; ++p) {
    const auto r = llp::static_block(kJ, p, kProcs);
    for (int j = static_cast<int>(r.begin); j < static_cast<int>(r.end); ++j)
      for (int l = 0; l < kL; ++l)
        for (int k = 0; k < kK; ++k) an.access(p, addr(j, k, l));
  }
  return an.report();
}

TEST(Example4, OrderingAHasLittleSharing) {
  const auto r = ordering_a();
  // Slab boundaries can share a page, but the interior cannot.
  EXPECT_LT(r.shared_access_fraction(), 0.15);
}

TEST(Example4, OrderingCSharesEverything) {
  const auto r = ordering_c();
  EXPECT_GT(r.shared_access_fraction(), 0.95);
  EXPECT_DOUBLE_EQ(r.max_sharers, kProcs);
}

TEST(Example4, RankingMatchesPaper) {
  // Ideal < acceptable < unacceptable, measured as the access-weighted mean
  // number of processors sharing each page.
  const auto a = ordering_a();
  const auto b = ordering_b();
  const auto c = ordering_c();
  EXPECT_LT(a.mean_sharers, b.mean_sharers);
  EXPECT_LT(b.mean_sharers, c.mean_sharers);
  EXPECT_NEAR(c.mean_sharers, kProcs, 1e-12);
  // (b) is *acceptable*: a page is shared by a couple of neighbors, not by
  // everyone.
  EXPECT_LT(b.mean_sharers, kProcs / 2.0);
}

TEST(Example4, AllOrderingsTouchSamePages) {
  // Same footprint, different sharing — the problem is *who* touches a
  // page, not how much memory is used.
  const auto a = ordering_a();
  const auto c = ordering_c();
  EXPECT_EQ(a.pages, c.pages);
  EXPECT_EQ(a.accesses, c.accesses);
}

TEST(Example4, PageMigrationCannotFixOrderingC) {
  // §7: "no amount of page migration solves this problem". Migration can
  // only change a page's home; with all processors touching every page,
  // the remote fraction cannot drop below (nodes-1)/nodes no matter which
  // node a page lands on.
  const auto c = ordering_c();
  const int nodes = kProcs / 2;
  // Every page is touched by all nodes equally, so at best 1/nodes of the
  // accesses can be local.
  EXPECT_GT(c.remote_access_fraction(), 1.0 - 1.0 / nodes - 0.05);
}

}  // namespace
