#include "simsmp/page_migration.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::simsmp::EpochStats;
using llp::simsmp::MigratingPageMemory;
using llp::simsmp::MigrationPolicy;

constexpr std::uint64_t kPage = 4096;

TEST(PageMigration, FirstTouchHomesLocally) {
  MigratingPageMemory mem(kPage, 4, 2);
  mem.access(0, 0);
  mem.access(0, 8);
  const auto s = mem.end_epoch(MigrationPolicy::kNone);
  EXPECT_EQ(s.accesses, 2u);
  EXPECT_EQ(s.remote, 0u);
}

TEST(PageMigration, MisplacedPrivatePageFixedInOneEpoch) {
  // Proc 0 (node 0) touches first (bad placement for proc 6/node 3).
  MigratingPageMemory mem(kPage, 4, 2);
  mem.access(0, 0);
  for (int i = 0; i < 99; ++i) mem.access(6, 8);
  const auto e1 = mem.end_epoch(MigrationPolicy::kMigrateToMajority);
  EXPECT_NEAR(e1.remote_fraction(), 0.99, 0.001);
  EXPECT_EQ(e1.migrations, 1u);
  // Next epoch: the page lives on node 3 and proc 6 is local.
  for (int i = 0; i < 100; ++i) mem.access(6, 8);
  const auto e2 = mem.end_epoch(MigrationPolicy::kMigrateToMajority);
  EXPECT_DOUBLE_EQ(e2.remote_fraction(), 0.0);
}

TEST(PageMigration, TrulySharedPageCannotBeFixedByMigration) {
  // The paper's point: 8 nodes all hammer the same page equally; whichever
  // node it is homed on, 7/8 of the traffic is remote, every epoch.
  MigratingPageMemory mem(kPage, 8, 1);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int p = 0; p < 8; ++p) {
      for (int i = 0; i < 10; ++i) mem.access(p, 100, /*write=*/true);
    }
    const auto s = mem.end_epoch(MigrationPolicy::kMigrateToMajority);
    EXPECT_GE(s.remote_fraction(), 7.0 / 8.0 - 1e-12) << "epoch " << epoch;
  }
}

TEST(PageMigration, ReplicationFixesReadOnlySharing) {
  MigratingPageMemory mem(kPage, 8, 1);
  // Epoch 1: everyone reads the same page -> replicated at epoch end.
  for (int p = 0; p < 8; ++p) mem.access(p, 100, /*write=*/false, 10);
  const auto e1 = mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  EXPECT_GT(e1.remote_fraction(), 0.8);
  EXPECT_EQ(e1.replicated_pages, 1u);
  // Epoch 2: reads are served locally by replicas.
  for (int p = 0; p < 8; ++p) mem.access(p, 100, /*write=*/false, 10);
  const auto e2 = mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  EXPECT_DOUBLE_EQ(e2.remote_fraction(), 0.0);
}

TEST(PageMigration, WriteInvalidatesReplicas) {
  MigratingPageMemory mem(kPage, 4, 1);
  for (int p = 0; p < 4; ++p) mem.access(p, 100, false, 10);
  mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  // One write drops the replica; subsequent remote reads pay again.
  mem.access(1, 100, /*write=*/true);
  for (int p = 0; p < 4; ++p) mem.access(p, 100, false, 10);
  const auto s = mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  EXPECT_GT(s.remote_fraction(), 0.5);
}

TEST(PageMigration, ReplicatePolicyStillMigratesWrittenPages) {
  MigratingPageMemory mem(kPage, 4, 1);
  mem.access(0, 0, true);                       // node 0 homes it
  for (int i = 0; i < 50; ++i) mem.access(3, 8, true);
  const auto e1 = mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  EXPECT_EQ(e1.migrations, 1u);  // majority node 3 takes it
  for (int i = 0; i < 50; ++i) mem.access(3, 8, true);
  const auto e2 = mem.end_epoch(MigrationPolicy::kReplicateReadOnly);
  EXPECT_DOUBLE_EQ(e2.remote_fraction(), 0.0);
}

TEST(PageMigration, NonePolicyNeverMoves) {
  MigratingPageMemory mem(kPage, 4, 1);
  mem.access(0, 0);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 10; ++i) mem.access(3, 8);
    const auto s = mem.end_epoch(MigrationPolicy::kNone);
    EXPECT_EQ(s.migrations, 0u);
    EXPECT_GT(s.remote_fraction(), 0.9);
  }
}

TEST(PageMigration, RejectsBadConfigAndProc) {
  EXPECT_THROW(MigratingPageMemory(0, 4, 1), llp::Error);
  MigratingPageMemory mem(kPage, 2, 2);
  EXPECT_THROW(mem.access(4, 0), llp::Error);  // node 2 of 2
  EXPECT_THROW(mem.access(-1, 0), llp::Error);
}

}  // namespace
