#include "simsmp/smp_simulator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::model::LoopWork;
using llp::model::WorkTrace;
using llp::simsmp::SmpSimulator;
using llp::simsmp::table4_processor_counts;

WorkTrace f3d_like_trace() {
  // Shaped like the solver's per-step trace for the 1M case: three zones'
  // sweeps (trips 70/70/75), an RHS (trips 70), and a serial BC tail.
  WorkTrace t;
  t.loops.push_back(LoopWork{"rhs", 1.5e9, 70, 3.0, true, 1e8});
  t.loops.push_back(LoopWork{"sweep_j", 1e9, 70, 3.0, true, 1e8});
  t.loops.push_back(LoopWork{"sweep_k", 1e9, 70, 3.0, true, 1e8});
  t.loops.push_back(LoopWork{"sweep_l", 1e9, 75, 3.0, true, 1e8});
  t.loops.push_back(LoopWork{"bc", 2e7, 1, 1.0, false, 1e6});
  return t;
}

TEST(SmpSimulator, SingleProcessorAnchors) {
  SmpSimulator sim(llp::model::origin2000_r12k_300());
  const auto pt = sim.run(f3d_like_trace(), 1);
  EXPECT_EQ(pt.processors, 1);
  EXPECT_DOUBLE_EQ(pt.speedup, 1.0);
  EXPECT_DOUBLE_EQ(pt.efficiency, 1.0);
  // Delivered MFLOPS at p=1 equals the machine's sustained rating.
  EXPECT_NEAR(pt.mflops, 237.0, 0.5);
}

TEST(SmpSimulator, StepsPerHourInvertsSeconds) {
  SmpSimulator sim(llp::model::origin2000_r12k_300());
  const auto pt = sim.run(f3d_like_trace(), 16);
  EXPECT_NEAR(pt.steps_per_hour * pt.seconds_per_step, 3600.0, 1e-6);
}

TEST(SmpSimulator, SpeedupMonotoneUpToParallelismLimit) {
  SmpSimulator sim(llp::model::origin2000_r12k_300());
  const auto trace = f3d_like_trace();
  double prev = 0.0;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    const auto pt = sim.run(trace, p);
    EXPECT_GE(pt.speedup, prev * 0.999) << p;
    prev = pt.speedup;
  }
}

TEST(SmpSimulator, FlatWhereCeilIsConstant) {
  SmpSimulator sim(llp::model::origin2000_r12k_300());
  const auto trace = f3d_like_trace();
  // ceil(70/p)=2 and ceil(75/p)=2 for p in 38..64: the Table 4 flat.
  const auto a = sim.run(trace, 48);
  const auto b = sim.run(trace, 64);
  EXPECT_NEAR(a.steps_per_hour, b.steps_per_hour,
              0.02 * a.steps_per_hour);
  // And 72 sits on the next step up (ceil(75/72)=ceil(70/72)=1).
  const auto c = sim.run(trace, 72);
  EXPECT_GT(c.steps_per_hour, 1.3 * b.steps_per_hour);
}

TEST(SmpSimulator, SerialTailCapsSpeedup) {
  SmpSimulator sim(llp::model::origin2000_r12k_300());
  WorkTrace t = f3d_like_trace();
  t.loops.push_back(LoopWork{"huge_serial", 2e9, 1, 1.0, false, 0.0});
  const auto pt = sim.run(t, 64);
  // Serial fraction ~31%: Amdahl caps speedup near 3.
  EXPECT_LT(pt.speedup, 4.0);
}

TEST(SmpSimulator, SweepMatchesIndividualRuns) {
  SmpSimulator sim(llp::model::sun_hpc10000());
  const auto trace = f3d_like_trace();
  const auto pts = sim.sweep(trace, {1, 16, 32});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[1].seconds_per_step, sim.run(trace, 16).seconds_per_step);
}

TEST(SmpSimulator, EmptyTraceRejected) {
  SmpSimulator sim(llp::model::sun_hpc10000());
  EXPECT_THROW(sim.run(WorkTrace{}, 1), llp::Error);
}

TEST(Table4Counts, ClippedToMachine) {
  const auto counts128 = table4_processor_counts(128);
  EXPECT_EQ(counts128.back(), 124);
  const auto counts64 = table4_processor_counts(64);
  EXPECT_EQ(counts64.back(), 64);
  for (int p : counts64) EXPECT_LE(p, 64);
}

TEST(FormatSweep, ContainsTitleAndRows) {
  SmpSimulator sim(llp::model::hp_v2500());
  const auto pts = sim.sweep(f3d_like_trace(), {1, 8, 16});
  const std::string s = SmpSimulator::format_sweep("HP V2500", pts);
  EXPECT_NE(s.find("HP V2500"), std::string::npos);
  EXPECT_NE(s.find("steps/hr"), std::string::npos);
  EXPECT_NE(s.find("16"), std::string::npos);
}

}  // namespace
