#include "simsmp/page_memory.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::simsmp::ContentionAnalyzer;
using llp::simsmp::PagePlacement;

TEST(PagePlacement, RoundRobinAcrossNodes) {
  PagePlacement p(4096, 4);
  EXPECT_EQ(p.node_of(0), 0);
  EXPECT_EQ(p.node_of(4096), 1);
  EXPECT_EQ(p.node_of(2 * 4096), 2);
  EXPECT_EQ(p.node_of(3 * 4096), 3);
  EXPECT_EQ(p.node_of(4 * 4096), 0);
}

TEST(PagePlacement, WithinPageSameNode) {
  PagePlacement p(16384, 8);
  EXPECT_EQ(p.node_of(100), p.node_of(16383));
}

TEST(PagePlacement, Validation) {
  EXPECT_THROW(PagePlacement(0, 4), llp::Error);
  EXPECT_THROW(PagePlacement(4096, 0), llp::Error);
}

TEST(ContentionAnalyzer, DisjointPagesNoSharing) {
  ContentionAnalyzer a(4096, 4, 2);
  for (int p = 0; p < 4; ++p) {
    a.access(p, static_cast<std::uint64_t>(p) * 4096, 10);
  }
  const auto r = a.report();
  EXPECT_EQ(r.pages, 4u);
  EXPECT_EQ(r.shared_pages, 0u);
  EXPECT_DOUBLE_EQ(r.shared_access_fraction(), 0.0);
  EXPECT_EQ(r.accesses, 40u);
}

TEST(ContentionAnalyzer, EveryoneOnOnePageFullySharing) {
  ContentionAnalyzer a(4096, 8, 2);
  for (int p = 0; p < 8; ++p) a.access(p, 100);
  const auto r = a.report();
  EXPECT_EQ(r.pages, 1u);
  EXPECT_EQ(r.shared_pages, 1u);
  EXPECT_DOUBLE_EQ(r.shared_page_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.max_sharers, 8.0);
}

TEST(ContentionAnalyzer, FirstTouchHomesPagesAndCountsRemote) {
  ContentionAnalyzer a(4096, 4, 2);  // nodes: {0,1}, {2,3}
  a.access(0, 0);      // proc 0 (node 0) homes the page
  a.access(1, 8);      // proc 1: same node, not remote
  a.access(2, 16);     // proc 2 (node 1): remote
  a.access(3, 24, 5);  // proc 3 (node 1): 5 remote accesses
  const auto r = a.report();
  EXPECT_EQ(r.remote_accesses, 6u);
  EXPECT_NEAR(r.remote_access_fraction(), 6.0 / 8.0, 1e-12);
}

TEST(ContentionAnalyzer, ProcessorsAbove64Tracked) {
  ContentionAnalyzer a(4096, 128, 2);
  a.access(0, 0);
  a.access(127, 0);
  const auto r = a.report();
  EXPECT_DOUBLE_EQ(r.max_sharers, 2.0);
  EXPECT_EQ(r.shared_pages, 1u);
}

TEST(ContentionAnalyzer, ResetClears) {
  ContentionAnalyzer a(4096, 2, 1);
  a.access(0, 0);
  a.reset();
  const auto r = a.report();
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_EQ(r.pages, 0u);
}

TEST(ContentionAnalyzer, RejectsBadProcessor) {
  ContentionAnalyzer a(4096, 4, 2);
  EXPECT_THROW(a.access(4, 0), llp::Error);
  EXPECT_THROW(a.access(-1, 0), llp::Error);
}

TEST(ContentionAnalyzer, RejectsTooManyProcessors) {
  EXPECT_THROW(ContentionAnalyzer(4096, 129, 2), llp::Error);
}

}  // namespace
