#include "simsmp/cache_sim.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::simsmp::CacheConfig;
using llp::simsmp::CacheSim;
using llp::simsmp::MemoryHierarchy;
using llp::simsmp::TlbConfig;
using llp::simsmp::TlbSim;

TEST(CacheSim, ConfigValidation) {
  EXPECT_THROW(CacheSim({1024, 63, 4}), llp::Error);   // non-pow2 line
  EXPECT_THROW(CacheSim({100, 64, 4}), llp::Error);    // size < one set
  EXPECT_NO_THROW(CacheSim({1024, 64, 4}));
}

TEST(CacheSim, FirstAccessMissesSecondHits) {
  CacheSim c({1024, 64, 2});
  EXPECT_EQ(c.access(0), 1);
  EXPECT_EQ(c.access(0), 0);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheSim, SameLineSharesEntry) {
  CacheSim c({1024, 64, 2});
  c.access(0);
  EXPECT_EQ(c.access(56), 0);  // same 64-byte line
  EXPECT_EQ(c.access(64), 1);  // next line
}

TEST(CacheSim, AccessSpanningTwoLines) {
  CacheSim c({1024, 64, 2});
  const int misses = c.access(60, 8);  // straddles lines 0 and 1
  EXPECT_EQ(misses, 2);
}

TEST(CacheSim, SequentialStreamMissRateIsLineFraction) {
  // Streaming 8-byte accesses through a huge array: one miss per 64-byte
  // line -> miss rate 1/8.
  CacheSim c({32 * 1024, 64, 4});
  for (std::uint64_t addr = 0; addr < 1 << 20; addr += 8) c.access(addr);
  EXPECT_NEAR(c.miss_rate(), 0.125, 1e-6);
}

TEST(CacheSim, WorkingSetThatFitsHitsOnRepass) {
  CacheSim c({32 * 1024, 64, 4});
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 8) c.access(addr);
  }
  // Second pass is all hits: total misses == lines of the working set.
  EXPECT_EQ(c.misses(), 16u * 1024u / 64u);
}

TEST(CacheSim, WorkingSetTooBigThrashes) {
  CacheSim c({4 * 1024, 64, 2});
  // 64 KB working set in a 4 KB cache, streamed twice: LRU gives ~0 reuse.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) c.access(addr);
  }
  EXPECT_GT(c.miss_rate(), 0.99);
}

TEST(CacheSim, LruEvictsOldest) {
  // Direct-mapped-ish: 2 sets x 2 ways x 64 B = 256 B cache.
  CacheSim c({256, 64, 2});
  // Three lines mapping to set 0: line addresses 0, 2, 4 (stride 128 B).
  c.access(0);
  c.access(256);
  c.access(512);  // evicts line 0 (LRU)
  EXPECT_EQ(c.access(256), 0);  // still resident
  EXPECT_EQ(c.access(0), 1);    // was evicted
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim c({1024, 64, 2});
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.access(0), 1);  // cold again
}

TEST(TlbSim, HitsWithinPage) {
  TlbSim t({4, 4096});
  t.access(0);
  EXPECT_EQ(t.misses(), 1u);
  t.access(4000);
  EXPECT_EQ(t.hits(), 1u);
}

TEST(TlbSim, LruReplacement) {
  TlbSim t({2, 4096});
  t.access(0 * 4096);
  t.access(1 * 4096);
  t.access(2 * 4096);            // evicts page 0
  t.access(1 * 4096);            // hit
  EXPECT_EQ(t.hits(), 1u);
  t.access(0 * 4096);            // miss again
  EXPECT_EQ(t.misses(), 4u);
}

TEST(TlbSim, StridedPageWalkMissesEveryPage) {
  TlbSim t({64, 16384});
  for (std::uint64_t p = 0; p < 1000; ++p) t.access(p * 16384);
  EXPECT_EQ(t.misses(), 1000u);
}

TEST(MemoryHierarchy, L1MissesGoToL2) {
  MemoryHierarchy h({1024, 64, 2}, {32 * 1024, 64, 4}, {16, 4096});
  h.access(0);
  EXPECT_EQ(h.l1().misses(), 1u);
  EXPECT_EQ(h.l2().misses(), 1u);
  h.access(0);
  EXPECT_EQ(h.l1().hits(), 1u);
  EXPECT_EQ(h.l2().misses(), 1u);  // L1 hit never reaches L2
}

TEST(MemoryHierarchy, FitsInL2ButNotL1) {
  MemoryHierarchy h({1024, 64, 2}, {64 * 1024, 64, 4}, {64, 4096});
  // 16 KB working set: bigger than L1, fits L2.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 16 * 1024; a += 64) h.access(a);
  }
  EXPECT_EQ(h.l2().misses(), 256u);  // only the cold pass
  EXPECT_GT(h.l1().misses(), 256u);  // L1 keeps missing
}

TEST(MemoryHierarchy, EstimatedCyclesMonotoneInMisses) {
  MemoryHierarchy cold({1024, 64, 2}, {32 * 1024, 64, 4}, {16, 4096});
  MemoryHierarchy warm({1024, 64, 2}, {32 * 1024, 64, 4}, {16, 4096});
  for (std::uint64_t a = 0; a < 8 * 1024; a += 8) cold.access(a);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 512; a += 8) warm.access(a);
  }
  const double cold_cpa = cold.estimated_cycles() / cold.l1().accesses();
  const double warm_cpa = warm.estimated_cycles() / warm.l1().accesses();
  EXPECT_GT(cold_cpa, warm_cpa);
}

TEST(MemoryHierarchy, TrafficCountsL2MissBytes) {
  MemoryHierarchy h({1024, 64, 2}, {32 * 1024, 64, 4}, {16, 4096});
  for (std::uint64_t a = 0; a < 4096; a += 64) h.access(a);
  EXPECT_DOUBLE_EQ(h.memory_traffic_bytes(), 4096.0);
}

}  // namespace
namespace {

// LRU inclusion property: for the same access stream, a bigger
// fully-associative LRU cache can never miss more.
class LruInclusion : public ::testing::TestWithParam<int> {};

TEST_P(LruInclusion, BiggerCacheNeverMissesMore) {
  const int seed = GetParam();
  // Pseudo-random working set with locality.
  std::vector<std::uint64_t> stream;
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  std::uint64_t cursor = 0;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((state >> 60) < 12) {
      cursor = (state >> 8) % (1 << 16);  // jump
    } else {
      cursor += 8;  // stride
    }
    stream.push_back(cursor);
  }
  // Fully associative LRU: sets == 1 requires size == line * assoc.
  std::uint64_t prev_misses = ~0ULL;
  for (int assoc : {8, 16, 32, 64}) {
    CacheSim c({64ULL * static_cast<std::uint64_t>(assoc), 64, assoc});
    for (auto a : stream) c.access(a);
    EXPECT_LE(c.misses(), prev_misses) << "assoc=" << assoc;
    prev_misses = c.misses();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusion, ::testing::Values(1, 2, 3, 4));

TEST(CacheSim, FullyAssociativeAvoidsConflictMisses) {
  // Two lines mapping to the same set thrash a direct-mapped cache but
  // coexist in a 2-way one.
  CacheSim direct({128, 64, 1});
  CacheSim assoc({128, 64, 2});
  for (int i = 0; i < 100; ++i) {
    direct.access(0);
    direct.access(128);  // same set in the 2-set direct-mapped cache
    assoc.access(0);
    assoc.access(128);
  }
  EXPECT_GT(direct.misses(), 100u);
  EXPECT_EQ(assoc.misses(), 2u);
}

}  // namespace
