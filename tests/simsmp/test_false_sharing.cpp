// False sharing at cache-line granularity: the ContentionAnalyzer is
// granularity-parametric, so analyzing with 64-byte "pages" detects
// line-level sharing — the reason llp::parallel_reduce pads its per-lane
// accumulator slots to kCacheLineBytes.
#include <gtest/gtest.h>

#include "core/parallel_for.hpp"
#include "simsmp/page_memory.hpp"
#include "util/aligned.hpp"

namespace {

using llp::simsmp::ContentionAnalyzer;

TEST(FalseSharing, UnpaddedReductionSlotsShareALine) {
  // 8 lanes each updating an 8-byte slot in a packed array: all eight
  // slots live in one 64-byte line.
  ContentionAnalyzer lines(64, 8, 1);
  for (int lane = 0; lane < 8; ++lane) {
    lines.access(lane, static_cast<std::uint64_t>(lane) * 8, 1000);
  }
  const auto r = lines.report();
  EXPECT_EQ(r.pages, 1u);  // one line
  EXPECT_DOUBLE_EQ(r.max_sharers, 8.0);
  EXPECT_DOUBLE_EQ(r.shared_access_fraction(), 1.0);
}

TEST(FalseSharing, PaddedSlotsAreprivate) {
  ContentionAnalyzer lines(64, 8, 1);
  for (int lane = 0; lane < 8; ++lane) {
    lines.access(lane, static_cast<std::uint64_t>(lane) * llp::kCacheLineBytes,
                 1000);
  }
  const auto r = lines.report();
  EXPECT_EQ(r.pages, 8u);
  EXPECT_EQ(r.shared_pages, 0u);
  EXPECT_DOUBLE_EQ(r.mean_sharers, 1.0);
}

TEST(FalseSharing, ParallelReduceSlotsAreActuallyPadded) {
  // Verify the runtime's own mitigation: reduce with lane-visible slot
  // addresses and check the spacing is at least a cache line.
  std::vector<const void*> addrs(4, nullptr);
  const llp::ForOptions opts = llp::ForOptions{}.with_threads(4);
  llp::parallel_reduce<double>(
      0, 4, 0.0, [](double a, double b) { return a + b; },
      [&](std::int64_t, double& acc, int lane) {
        addrs[static_cast<std::size_t>(lane)] = &acc;
        acc += 1.0;
      },
      opts);
  for (int a = 0; a < 4; ++a) {
    ASSERT_NE(addrs[a], nullptr);
    for (int b = a + 1; b < 4; ++b) {
      const auto da = reinterpret_cast<std::uintptr_t>(addrs[a]);
      const auto db = reinterpret_cast<std::uintptr_t>(addrs[b]);
      EXPECT_GE(da > db ? da - db : db - da, llp::kCacheLineBytes);
    }
  }
}

TEST(FalseSharing, InterleavedColumnWritesShareEveryLine) {
  // Two lanes writing alternating 8-byte elements of one array: every
  // line is written by both — the classic false-sharing pattern.
  ContentionAnalyzer lines(64, 2, 1);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    lines.access(static_cast<int>(i % 2), i * 8);
  }
  const auto r = lines.report();
  EXPECT_DOUBLE_EQ(r.shared_page_fraction(), 1.0);
}

TEST(FalseSharing, BlockedWritesShareOnlyBoundaryLines) {
  // The same array split into two contiguous halves: at most one
  // boundary line is shared.
  ContentionAnalyzer lines(64, 2, 1);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    lines.access(i < 512 ? 0 : 1, i * 8);
  }
  const auto r = lines.report();
  EXPECT_LE(r.shared_pages, 1u);
}

}  // namespace
