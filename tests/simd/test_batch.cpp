// interleave/deinterleave: the lane transposes under the SIMD pencil
// kernels. Round trips must be exact (pure copies, no arithmetic) at every
// count from 1 to W, including strided sources and the replicated-tail
// policy for partial batches.
#include "simd/batch.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

constexpr int kW = 4;

TEST(Batch, FullBatchRoundTripIsExact) {
  const int n = 17;
  std::vector<std::vector<double>> pencils(kW, std::vector<double>(n));
  for (int p = 0; p < kW; ++p)
    for (int i = 0; i < n; ++i) pencils[p][i] = 100.0 * p + i + 0.25;

  const double* srcs[kW];
  for (int p = 0; p < kW; ++p) srcs[p] = pencils[p].data();
  std::vector<double> lanes(static_cast<std::size_t>(n) * kW, -1.0);
  simd::interleave<kW>(srcs, kW, n, lanes.data());

  // Lane layout: element i of pencil p at i*W + p.
  for (int i = 0; i < n; ++i)
    for (int p = 0; p < kW; ++p)
      ASSERT_EQ(lanes[static_cast<std::size_t>(i) * kW + p], pencils[p][i]);

  std::vector<std::vector<double>> back(kW, std::vector<double>(n, 0.0));
  double* dsts[kW];
  for (int p = 0; p < kW; ++p) dsts[p] = back[p].data();
  simd::deinterleave<kW>(lanes.data(), kW, n, dsts);
  for (int p = 0; p < kW; ++p) EXPECT_EQ(back[p], pencils[p]);
}

TEST(Batch, OddTailCountsRoundTripAndReplicate) {
  const int n = 9;
  for (int count = 1; count < kW; ++count) {
    std::vector<std::vector<double>> pencils(count, std::vector<double>(n));
    for (int p = 0; p < count; ++p)
      for (int i = 0; i < n; ++i) pencils[p][i] = 10.0 * p - i;

    std::vector<const double*> srcs(count);
    for (int p = 0; p < count; ++p) srcs[p] = pencils[p].data();
    std::vector<double> lanes(static_cast<std::size_t>(n) * kW, -7.0);
    simd::interleave<kW>(srcs.data(), count, n, lanes.data());

    // Padding lanes replicate the last real pencil so the kernel always
    // runs well-conditioned data in every lane.
    for (int i = 0; i < n; ++i)
      for (int p = count; p < kW; ++p)
        ASSERT_EQ(lanes[static_cast<std::size_t>(i) * kW + p],
                  pencils[count - 1][i])
            << "count " << count << " i " << i << " lane " << p;

    // Scribble on the padding lanes: deinterleave must never read them.
    for (int i = 0; i < n; ++i)
      for (int p = count; p < kW; ++p)
        lanes[static_cast<std::size_t>(i) * kW + p] = 1e300;

    std::vector<std::vector<double>> back(count, std::vector<double>(n));
    std::vector<double*> dsts(count);
    for (int p = 0; p < count; ++p) dsts[p] = back[p].data();
    simd::deinterleave<kW>(lanes.data(), count, n, dsts.data());
    for (int p = 0; p < count; ++p)
      EXPECT_EQ(back[p], pencils[p]) << "count " << count;
  }
}

TEST(Batch, StridedSourcesAndDestinations) {
  // Pencils embedded in a larger array with stride 3 (the shape of a
  // variable slice inside an interleaved multi-variable buffer).
  const int n = 6, stride = 3;
  std::vector<double> host(static_cast<std::size_t>(n) * stride * kW, -1.0);
  const double* srcs[kW];
  for (int p = 0; p < kW; ++p) {
    double* base = host.data() + static_cast<std::size_t>(p) * n * stride;
    for (int i = 0; i < n; ++i) base[i * stride] = p + 0.1 * i;
    srcs[p] = base;
  }
  std::vector<double> lanes(static_cast<std::size_t>(n) * kW);
  simd::interleave<kW>(srcs, kW, n, lanes.data(), stride);
  for (int i = 0; i < n; ++i)
    for (int p = 0; p < kW; ++p)
      ASSERT_EQ(lanes[static_cast<std::size_t>(i) * kW + p], p + 0.1 * i);

  std::vector<double> out(host.size(), 0.0);
  double* dsts[kW];
  for (int p = 0; p < kW; ++p)
    dsts[p] = out.data() + static_cast<std::size_t>(p) * n * stride;
  simd::deinterleave<kW>(lanes.data(), kW, n, dsts, stride);
  for (int p = 0; p < kW; ++p)
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(dsts[p][i * stride], p + 0.1 * i);
  // Gaps between strided elements stay untouched.
  EXPECT_EQ(out[1], 0.0);
}

TEST(Batch, SingleElementLines) {
  // n = 1 is legal (degenerate pencils) and must still transpose.
  const double v0 = 3.5, v1 = -2.0;
  const double* srcs[2] = {&v0, &v1};
  double lanes[kW] = {};
  simd::interleave<kW>(srcs, 2, 1, lanes);
  EXPECT_EQ(lanes[0], 3.5);
  EXPECT_EQ(lanes[1], -2.0);
  EXPECT_EQ(lanes[2], -2.0);  // replicated tail
  EXPECT_EQ(lanes[3], -2.0);
  double o0 = 0.0, o1 = 0.0;
  double* dsts[2] = {&o0, &o1};
  simd::deinterleave<kW>(lanes, 2, 1, dsts);
  EXPECT_EQ(o0, 3.5);
  EXPECT_EQ(o1, -2.0);
}

}  // namespace
