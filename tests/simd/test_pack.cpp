// simd::pack — every operation checked against a scalar reference, on both
// the arch-selected pack (whatever this TU resolves arch::Auto to) and the
// always-scalar pack, so the same assertions cover the vector
// specializations on vector builds and the fallback everywhere.
#include "simd/pack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/detect.hpp"

namespace {

template <class P>
class PackOps : public ::testing::Test {};

using PackImpls =
    ::testing::Types<simd::pack<double, 4>,
                     simd::pack<double, 4, simd::arch::Scalar>,
                     simd::pack<double, 2, simd::arch::Scalar>,
                     simd::pack<double, 8, simd::arch::Scalar>>;
TYPED_TEST_SUITE(PackOps, PackImpls);

// Deterministic but non-trivial lane values, including negatives and
// magnitudes spanning a few orders. The volatile store blocks FP
// contraction: under -ffp-contract=fast (the gcc default at
// -march=x86-64-v3) `base + step * i` can fuse into an fma at one call
// site and not another, making the pack fill and the scalar reference
// disagree in the last ulp. Rounding the product to memory first makes
// every caller compute the identical two-rounding value.
inline double lane_value(double base, double step, int i) {
  volatile double prod = step * i;
  return base + prod;
}

template <class P>
P iota_pack(double base, double step) {
  constexpr int w = P::width;
  double buf[w];
  for (int i = 0; i < w; ++i) buf[i] = lane_value(base, step, i);
  return P::load(buf);
}

TYPED_TEST(PackOps, LoadStoreRoundTrip) {
  constexpr int w = TypeParam::width;
  std::vector<double> in(w), out(w, 0.0);
  for (int i = 0; i < w; ++i) in[i] = 0.5 * i - 1.25;
  TypeParam::load(in.data()).store(out.data());
  for (int i = 0; i < w; ++i) EXPECT_EQ(out[i], in[i]) << i;
}

TYPED_TEST(PackOps, ArithmeticMatchesScalarBitwise) {
  constexpr int w = TypeParam::width;
  const TypeParam a = iota_pack<TypeParam>(-1.75, 0.9);
  const TypeParam b = iota_pack<TypeParam>(2.0, -0.7);
  const TypeParam sum = a + b, dif = a - b, prd = a * b, quo = a / b;
  for (int i = 0; i < w; ++i) {
    const double x = lane_value(-1.75, 0.9, i), y = lane_value(2.0, -0.7, i);
    EXPECT_EQ(sum[i], x + y) << i;
    EXPECT_EQ(dif[i], x - y) << i;
    EXPECT_EQ(prd[i], x * y) << i;
    EXPECT_EQ(quo[i], x / y) << i;
  }
}

TYPED_TEST(PackOps, MinMaxAbsMatchScalar) {
  constexpr int w = TypeParam::width;
  const TypeParam a = iota_pack<TypeParam>(-2.0, 1.1);
  const TypeParam b = iota_pack<TypeParam>(1.5, -1.0);
  const TypeParam mn = TypeParam::min(a, b), mx = TypeParam::max(a, b);
  const TypeParam ab = TypeParam::abs(a);
  for (int i = 0; i < w; ++i) {
    const double x = lane_value(-2.0, 1.1, i), y = lane_value(1.5, -1.0, i);
    EXPECT_EQ(mn[i], std::min(x, y)) << i;
    EXPECT_EQ(mx[i], std::max(x, y)) << i;
    EXPECT_EQ(ab[i], std::abs(x)) << i;
  }
}

TYPED_TEST(PackOps, FmaWithinOneRoundingOfScalar) {
  // fma is the documented rounding exception: fused on vector paths,
  // two roundings on the scalar reference. Bound the gap, don't EQ it.
  constexpr int w = TypeParam::width;
  const TypeParam a = iota_pack<TypeParam>(1.0 / 3.0, 0.25);
  const TypeParam b = iota_pack<TypeParam>(-0.7, 0.5);
  const TypeParam c = iota_pack<TypeParam>(10.0, -2.5);
  const TypeParam r = TypeParam::fma(a, b, c);
  const TypeParam s = TypeParam::fnma(a, b, c);
  for (int i = 0; i < w; ++i) {
    const double x = lane_value(1.0 / 3.0, 0.25, i),
                 y = lane_value(-0.7, 0.5, i), z = lane_value(10.0, -2.5, i);
    EXPECT_NEAR(r[i], x * y + z, 1e-14 * (1.0 + std::abs(z))) << i;
    EXPECT_NEAR(s[i], z - x * y, 1e-14 * (1.0 + std::abs(z))) << i;
  }
}

TYPED_TEST(PackOps, BlendSelectsPerLane) {
  constexpr int w = TypeParam::width;
  const TypeParam a = iota_pack<TypeParam>(0.0, 1.0);   // 0, 1, 2, ...
  const TypeParam b = iota_pack<TypeParam>(double(w), -1.0);
  const TypeParam lo = TypeParam::blend(a < b, a, b);
  const TypeParam hi = TypeParam::blend(a <= b, b, a);
  for (int i = 0; i < w; ++i) {
    const double x = i, y = double(w) - i;
    EXPECT_EQ(lo[i], x < y ? x : y) << i;
    EXPECT_EQ(hi[i], x <= y ? y : x) << i;
  }
}

TYPED_TEST(PackOps, SumUsesFixedTreeOrder) {
  constexpr int w = TypeParam::width;
  // Values chosen so the reduction order is observable: a naive
  // left-to-right sum of these differs in the last ulp from the tree.
  double buf[w];
  for (int i = 0; i < w; ++i) buf[i] = (i % 2 ? 1.0 : 1e-16) * (i + 1);
  // Reference: the documented tree — pairwise with stride ceil(half).
  double acc[w];
  for (int i = 0; i < w; ++i) acc[i] = buf[i];
  int half = w;
  while (half > 1) {
    const int next = (half + 1) / 2;
    for (int i = 0; i + next < half; ++i) acc[i] += acc[i + next];
    half = next;
  }
  EXPECT_EQ(TypeParam::load(buf).sum(), acc[0]);
}

TYPED_TEST(PackOps, BroadcastAndZero) {
  constexpr int w = TypeParam::width;
  const TypeParam b = TypeParam::broadcast(-3.25);
  const TypeParam z = TypeParam::zero();
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(b[i], -3.25) << i;
    EXPECT_EQ(z[i], 0.0) << i;
  }
}

TEST(PackArch, AutoAgreesWithScalarOnPlainOps) {
  // Whatever arch::Auto resolved to in this TU, the plain operators must be
  // bitwise identical to the scalar reference (the rounding contract).
  using Auto = simd::pack<double, 4>;
  using Ref = simd::pack<double, 4, simd::arch::Scalar>;
  const double xs[4] = {1.0 / 3.0, -2.5e-8, 7.75, -123.0625};
  const double ys[4] = {0.1, 3.0, -1.0 / 7.0, 2.5e8};
  const Auto a1 = Auto::load(xs), a2 = Auto::load(ys);
  const Ref r1 = Ref::load(xs), r2 = Ref::load(ys);
  double got[4], want[4];
  (a1 + a2).store(got), (r1 + r2).store(want);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << "+ lane " << i;
  (a1 * a2).store(got), (r1 * r2).store(want);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << "* lane " << i;
  (a1 / a2).store(got), (r1 / r2).store(want);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << "/ lane " << i;
  EXPECT_EQ((a1 + a2).sum(), (r1 + r2).sum());
}

TEST(Detect, RuntimeAndCompiledFlagsAreConsistent) {
  // active width is 4 exactly when both the TU compiled the AVX2 pack and
  // the host executes it; otherwise 1. Under LLP_SIMD_FORCE_SCALAR both
  // compiled_with_avx2() and runtime_has_avx2() must report false.
  const int w = simd::active_double_width();
  if (simd::compiled_with_avx2() && simd::runtime_has_avx2()) {
    EXPECT_EQ(w, 4);
  } else {
    EXPECT_EQ(w, 1);
  }
#if defined(LLP_SIMD_FORCE_SCALAR)
  EXPECT_FALSE(simd::compiled_with_avx2());
  EXPECT_FALSE(simd::runtime_has_avx2());
  EXPECT_EQ(w, 1);
#endif
}

}  // namespace
