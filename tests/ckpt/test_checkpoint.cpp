// Durable checkpoint/restart: format round-trip, generation rotation, the
// deferred-seal hook protocol under run_protected, and the corruption
// fallback ladder — truncation at every frame boundary, bit flips in header
// and payload, CRC-consistent corruption caught only by the end-to-end grid
// checksum, and config-fingerprint mismatches.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "f3d/cases.hpp"
#include "f3d/io.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

using f3d::ckpt::CheckpointStore;
using f3d::ckpt::Manifest;

// A fresh per-test directory under the gtest temp root.
std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

f3d::MultiZoneGrid make_grid() {
  auto grid = f3d::build_grid(f3d::paper_1m_case(0.08));
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  return grid;
}

f3d::SolverConfig solver_config() {
  f3d::SolverConfig cfg;
  cfg.freestream = f3d::paper_1m_case(0.08).freestream;
  cfg.region_prefix = "ckpt_test";
  return cfg;
}

f3d::ckpt::Config store_config(const std::string& dir) {
  f3d::ckpt::Config cc;
  cc.dir = dir;
  cc.every = 2;
  cc.keep_generations = 3;
  cc.meta = "case=test n=8";
  return cc;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Checkpoint, SaveLoadRoundTripRestoresBitsAndState) {
  const std::string dir = test_dir("roundtrip");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.run(3);
  const std::uint64_t digest = f3d::checksum(grid);

  CheckpointStore store(store_config(dir));
  const int gen = store.save(grid, solver.state());
  EXPECT_EQ(gen, 0);
  EXPECT_EQ(store.saves_completed(), 1);
  EXPECT_EQ(store.last_written_generation(), 0);
  ASSERT_TRUE(fs::exists(f3d::ckpt::state_path(dir, 0)));

  auto fresh = make_grid();
  EXPECT_NE(f3d::checksum(fresh), digest) << "3 steps must change the grid";
  const Manifest man = store.load(0, fresh);
  EXPECT_EQ(f3d::checksum(fresh), digest);
  EXPECT_EQ(man.state.steps, 3);
  EXPECT_DOUBLE_EQ(man.state.cfl, solver.cfl());
  EXPECT_DOUBLE_EQ(man.state.residual, solver.residual());
  EXPECT_EQ(man.grid_checksum, digest);
  EXPECT_EQ(man.meta, "case=test n=8");
  EXPECT_FALSE(man.sealed()) << "save() without a replay residual is unsealed";
}

TEST(Checkpoint, RunProtectedSealsGenerationsOneStepLate) {
  const std::string dir = test_dir("sealed");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  CheckpointStore store(store_config(dir));  // every=2
  solver.set_checkpoint_hook(&store);

  const f3d::RunReport report = solver.run_protected(7);
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.ckpt_write_failures, 0);
  // Snapshots at steps 1, 3, 5 are sealed at steps 2, 4, 6; the step-7
  // snapshot is flushed unsealed at end of run — 4 generations total.
  EXPECT_EQ(report.durable_checkpoints, 4);
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), 3u) << "keep_generations=3 must prune the oldest";
  EXPECT_EQ(gens, (std::vector<int>{3, 2, 1}));

  const Manifest newest = store.read_manifest(3);
  EXPECT_EQ(newest.state.steps, 7);
  EXPECT_FALSE(newest.sealed()) << "end-of-run flush has no next residual";

  const Manifest sealed = store.read_manifest(2);
  EXPECT_EQ(sealed.state.steps, 5);
  ASSERT_TRUE(sealed.sealed());

  // The sealed first-replay contract: restore step 5, replay one step, and
  // the residual must match what the uninterrupted run produced at step 6.
  auto replay = make_grid();
  const Manifest loaded = store.load(2, replay);
  f3d::Solver resumed(replay, solver_config());
  resumed.restore(loaded.state);
  std::string why;
  EXPECT_TRUE(f3d::ckpt::verify_first_replay(resumed, loaded, 1e-12, &why))
      << why;
  EXPECT_EQ(resumed.steps_taken(), 6);
}

TEST(Checkpoint, ResumedRunMatchesUninterruptedBitForBit) {
  const std::string dir = test_dir("resume_exact");

  // Uninterrupted reference: 9 steps straight through.
  auto ref = make_grid();
  f3d::Solver ref_solver(ref, solver_config());
  ref_solver.run(9);
  const std::uint64_t want = f3d::checksum(ref);

  // Interrupted run: 5 steps, durable save, then restart from disk.
  auto first = make_grid();
  f3d::Solver first_solver(first, solver_config());
  first_solver.run(5);
  CheckpointStore store(store_config(dir));
  store.save(first, first_solver.state());

  auto second = make_grid();
  const Manifest man = store.load(0, second);
  f3d::Solver second_solver(second, solver_config());
  second_solver.restore(man.state);
  EXPECT_EQ(second_solver.steps_taken(), 5);
  second_solver.run(4);
  EXPECT_EQ(f3d::checksum(second), want)
      << "restart must continue the exact trajectory, not a similar one";
}

TEST(Checkpoint, RotationKeepsNewestK) {
  const std::string dir = test_dir("rotate");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  auto cc = store_config(dir);
  cc.keep_generations = 2;
  CheckpointStore store(cc);
  for (int i = 0; i < 5; ++i) {
    solver.step();
    store.save(grid, solver.state());
  }
  EXPECT_EQ(store.saves_completed(), 5);
  EXPECT_EQ(store.generations(), (std::vector<int>{4, 3}));
  EXPECT_FALSE(fs::exists(f3d::ckpt::state_path(dir, 2)));
}

TEST(Checkpoint, NumberingContinuesPastPrunedGenerations) {
  const std::string dir = test_dir("numbering");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  auto cc = store_config(dir);
  cc.keep_generations = 1;
  CheckpointStore store(cc);
  store.save(grid, solver.state());
  store.save(grid, solver.state());
  store.save(grid, solver.state());
  // A second store (a restarted process) keeps counting upward — generation
  // numbers are a timeline, never reused.
  CheckpointStore again(cc);
  const int gen = again.save(grid, solver.state());
  EXPECT_EQ(gen, 3);
  EXPECT_EQ(again.generations(), (std::vector<int>{3}));
}

TEST(Checkpoint, TruncationAtEveryFrameBoundaryIsRejectedWithFallback) {
  const std::string dir = test_dir("truncate");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  CheckpointStore store(store_config(dir));
  solver.run(2);
  store.save(grid, solver.state());  // generation 0: the fallback target
  const std::uint64_t old_digest = f3d::checksum(grid);
  solver.run(2);
  store.save(grid, solver.state());  // generation 1: the victim

  const std::string path = f3d::ckpt::state_path(dir, 1);
  const std::string intact = slurp(path);
  const auto offsets = f3d::ckpt::frame_offsets(path);
  ASSERT_GE(offsets.size(), 4u) << "magic + HDR0 + zones + END0 expected";
  ASSERT_EQ(offsets.back(), intact.size());

  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    // Truncate exactly at a frame boundary — and just past it, mid-header —
    // the torn-write shapes a crash can leave behind.
    for (const std::size_t cut : {offsets[i], offsets[i] + 1}) {
      spit(path, intact.substr(0, cut));
      auto probe = make_grid();
      EXPECT_THROW(store.load(1, probe), llp::IoError) << "cut at " << cut;

      auto fallback = make_grid();
      int gen = -1;
      std::string ladder;
      const Manifest man = store.load_newest_intact(fallback, &gen, &ladder);
      EXPECT_EQ(gen, 0) << "must fall back to the older intact generation";
      EXPECT_EQ(man.state.steps, 2);
      EXPECT_EQ(f3d::checksum(fallback), old_digest);
      EXPECT_NE(ladder.find("ckpt.1:"), std::string::npos) << ladder;
    }
  }
  spit(path, intact);
  auto healed = make_grid();
  int gen = -1;
  store.load_newest_intact(healed, &gen);
  EXPECT_EQ(gen, 1) << "restored file must be newest-intact again";
}

TEST(Checkpoint, BitFlipsInHeaderAndPayloadAreRejected) {
  const std::string dir = test_dir("bitflip");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.run(2);
  CheckpointStore store(store_config(dir));
  store.save(grid, solver.state());

  const std::string path = f3d::ckpt::state_path(dir, 0);
  const std::string intact = slurp(path);
  const auto offsets = f3d::ckpt::frame_offsets(path);
  ASSERT_GE(offsets.size(), 4u);

  // offsets[1] is the HDR0 frame start, offsets[2] the first ZON0 frame.
  const std::size_t header_byte = offsets[1] + 20 + 4;  // inside the manifest
  const std::size_t payload_byte = offsets[2] + 20 + 64;  // inside zone 0's Q
  for (const std::size_t at : {header_byte, payload_byte}) {
    ASSERT_LT(at, intact.size());
    std::string bad = intact;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    spit(path, bad);
    auto probe = make_grid();
    EXPECT_THROW(store.load(0, probe), llp::IoError) << "flip at " << at;
  }
  // A header flip fails even the manifest-only read; a payload flip leaves
  // the manifest parseable and the load fails on the zone frame's CRC.
  std::string bad = intact;
  bad[header_byte] = static_cast<char>(bad[header_byte] ^ 0x10);
  spit(path, bad);
  EXPECT_THROW(store.read_manifest(0), llp::IoError);
  bad = intact;
  bad[payload_byte] = static_cast<char>(bad[payload_byte] ^ 0x01);
  spit(path, bad);
  EXPECT_NO_THROW(store.read_manifest(0));
  auto probe = make_grid();
  try {
    store.load(0, probe);
    FAIL() << "corrupt zone payload must not load";
  } catch (const llp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, CrcConsistentCorruptionIsCaughtByGridChecksum) {
  const std::string dir = test_dir("endtoend");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.run(2);
  CheckpointStore store(store_config(dir));
  store.save(grid, solver.state());

  // An adversarial (or buggy-writer) corruption that keeps the frame CRC
  // valid: swap two doubles inside zone 0's payload and recompute the CRC.
  // Every per-frame rung passes; only the end-to-end grid checksum in the
  // manifest can catch it.
  const std::string path = f3d::ckpt::state_path(dir, 0);
  std::string data = slurp(path);
  const auto offsets = f3d::ckpt::frame_offsets(path);
  ASSERT_GE(offsets.size(), 4u);
  const std::size_t frame = offsets[2];  // ZON0 for zone 0
  std::uint64_t len = 0;
  std::memcpy(&len, data.data() + frame + 8, sizeof(len));
  ASSERT_GE(len, 40u);
  // Swap the first point's density and energy — guaranteed distinct finite
  // values, so every finite-ness rung passes too.
  char* payload = data.data() + frame + 20;
  char tmp[8];
  std::memcpy(tmp, payload, 8);
  std::memcpy(payload, payload + 32, 8);
  std::memcpy(payload + 32, tmp, 8);
  const std::uint32_t crc =
      llp::crc32c(payload, static_cast<std::size_t>(len));
  std::memcpy(data.data() + frame + 16, &crc, sizeof(crc));
  spit(path, data);

  auto probe = make_grid();
  try {
    store.load(0, probe);
    FAIL() << "CRC-consistent corruption must still be rejected";
  } catch (const llp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("grid checksum"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, ConfigFingerprintMismatchIsRejected) {
  const std::string dir = test_dir("meta");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.step();
  CheckpointStore store(store_config(dir));
  store.save(grid, solver.state());

  auto other_cfg = store_config(dir);
  other_cfg.meta = "case=test n=8 viscous=100";  // different physics
  CheckpointStore other(other_cfg);
  auto probe = make_grid();
  try {
    other.load(0, probe);
    FAIL() << "a checkpoint from a different run config must not load";
  } catch (const llp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
  // An empty expected fingerprint skips the check (tools that only
  // inspect).
  auto lax_cfg = store_config(dir);
  lax_cfg.meta.clear();
  CheckpointStore lax(lax_cfg);
  EXPECT_NO_THROW(lax.load(0, probe));
}

TEST(Checkpoint, WrongGridShapeIsRejectedBeforeMutation) {
  const std::string dir = test_dir("shape");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.step();
  CheckpointStore store(store_config(dir));
  store.save(grid, solver.state());

  auto small = f3d::build_grid(f3d::wall_compression_case(8));
  const std::uint64_t before = f3d::checksum(small);
  EXPECT_THROW(store.load(0, small), llp::IoError);
  EXPECT_EQ(f3d::checksum(small), before)
      << "a rejected load must not touch the grid";
}

TEST(Checkpoint, StaleTempDirectoriesAreSweptOnNextSave) {
  const std::string dir = test_dir("tmpsweep");
  fs::create_directories(dir + "/ckpt.7.tmp");
  spit(dir + "/ckpt.7.tmp/state.f3dc", "partial garbage from a dead run");

  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  CheckpointStore store(store_config(dir));
  const int gen = store.save(grid, solver.state());
  EXPECT_EQ(gen, 0) << "temp dirs must not claim generation numbers";
  EXPECT_FALSE(fs::exists(dir + "/ckpt.7.tmp")) << "stale temp must be swept";
  EXPECT_EQ(store.generations(), (std::vector<int>{0}));
}

TEST(Checkpoint, OnRollbackDropsStalePendingSnapshot) {
  const std::string dir = test_dir("rollback");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  CheckpointStore store(store_config(dir));

  // Snapshot at step 1 (pending), then a rollback to step 0: the pending
  // snapshot is off the standing timeline and must never be written.
  solver.step();
  store.on_healthy_step(grid, solver.state());
  store.on_rollback(0);
  solver.step();
  EXPECT_FALSE(store.on_healthy_step(grid, solver.state()))
      << "the dropped snapshot must not be sealed";
  EXPECT_EQ(store.generations().size(), 0u);
  // The cadence re-arms: flush still persists the standing state.
  EXPECT_TRUE(store.flush(grid, solver.state()));
  EXPECT_EQ(store.generations().size(), 1u);
  EXPECT_EQ(store.read_manifest(store.generations().front()).state.steps, 2);
}

TEST(Checkpoint, VerifyFirstReplayRejectsWrongTrajectory) {
  const std::string dir = test_dir("verify");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  solver.run(3);
  CheckpointStore store(store_config(dir));
  // Seal with a residual the replay cannot reproduce — as if the
  // checkpoint belonged to a different trajectory.
  store.save(grid, solver.state(), 123.456);

  auto replay = make_grid();
  const Manifest man = store.load(0, replay);
  ASSERT_TRUE(man.sealed());
  f3d::Solver resumed(replay, solver_config());
  resumed.restore(man.state);
  std::string why;
  EXPECT_FALSE(f3d::ckpt::verify_first_replay(resumed, man, 1e-6, &why));
  EXPECT_NE(why.find("disagrees"), std::string::npos) << why;
}

TEST(Checkpoint, RestoreRejectsGarbageState) {
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config());
  f3d::SolverState bad;
  bad.steps = -1;
  bad.cfl = 2.0;
  EXPECT_THROW(solver.restore(bad), llp::Error);
  bad.steps = 3;
  bad.cfl = 0.0;
  EXPECT_THROW(solver.restore(bad), llp::Error);
  bad.cfl = std::nan("");
  EXPECT_THROW(solver.restore(bad), llp::Error);
}

TEST(Checkpoint, StoreConfigIsValidatedUpFront) {
  f3d::ckpt::Config cc;
  cc.dir = "";
  EXPECT_THROW(CheckpointStore{cc}, llp::Error);
  cc.dir = test_dir("cfg");
  cc.keep_generations = 0;
  EXPECT_THROW(CheckpointStore{cc}, llp::Error);
  cc.keep_generations = 1;
  cc.replay_tol = -1.0;
  EXPECT_THROW(CheckpointStore{cc}, llp::Error);
}

TEST(Checkpoint, MissingDirectoryHasNoGenerations) {
  auto cc = store_config(test_dir("nodir"));
  CheckpointStore store(cc);
  EXPECT_TRUE(store.generations().empty());
  auto grid = make_grid();
  EXPECT_THROW(store.load_newest_intact(grid), llp::IoError);
}

}  // namespace
