// Injected I/O faults against the checkpoint writer: torn writes, bit rot,
// ENOSPC, and mid-write crashes, keyed (stream, write-op, frame) on the
// same deterministic grammar as loop faults. The invariants under test:
// nothing corrupt is ever published as the newest intact generation, a
// clean failure loses at most one generation, and a simulated crash
// propagates as llp::CrashError past every recovery layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

using f3d::ckpt::CheckpointStore;
using f3d::ckpt::Manifest;
using llp::fault::FaultKind;
using llp::fault::FaultPlan;
using llp::fault::Injector;

std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_ckpt_fault_" + name;
  fs::remove_all(dir);
  return dir;
}

f3d::MultiZoneGrid make_grid() {
  auto grid = f3d::build_grid(f3d::paper_1m_case(0.08));
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  return grid;
}

f3d::SolverConfig solver_config(const std::string& prefix) {
  f3d::SolverConfig cfg;
  cfg.freestream = f3d::paper_1m_case(0.08).freestream;
  cfg.region_prefix = prefix;
  return cfg;
}

f3d::ckpt::Config store_config(const std::string& dir, Injector* inj) {
  f3d::ckpt::Config cc;
  cc.dir = dir;
  cc.every = 2;
  cc.keep_generations = 4;
  cc.injector = inj;
  return cc;
}

bool has_tmp_dir(const std::string& dir) {
  if (!fs::exists(dir)) return false;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      return true;
    }
  }
  return false;
}

TEST(CkptFaults, TornWriteIsPublishedButNeverLoads) {
  const std::string dir = test_dir("ioshort");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.short"));
  solver.run(2);

  // Write-op 1 (the second save), frame 1 (zone 0's payload) is torn: the
  // file ends mid-frame, exactly like a crash between write() and fsync().
  Injector inj(FaultPlan::parse("ioshort:ckpt:1:1"));
  CheckpointStore store(store_config(dir, &inj));
  store.save(grid, solver.state());
  const std::uint64_t good_digest = f3d::checksum(grid);
  solver.run(2);
  store.save(grid, solver.state());
  EXPECT_EQ(inj.faults_injected(FaultKind::kIoShort), 1u);

  auto probe = make_grid();
  EXPECT_THROW(store.load(1, probe), llp::IoError);
  int gen = -1;
  std::string ladder;
  const Manifest man = store.load_newest_intact(probe, &gen, &ladder);
  EXPECT_EQ(gen, 0) << ladder;
  EXPECT_EQ(man.state.steps, 2);
  EXPECT_EQ(f3d::checksum(probe), good_digest);
  EXPECT_NE(ladder.find("ckpt.1:"), std::string::npos);
}

TEST(CkptFaults, BitFlipIsCaughtByFrameCrc) {
  const std::string dir = test_dir("ioflip");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.flip"));
  solver.step();

  // bit= pins the flipped payload bit; without it the bit is seed-derived
  // but still deterministic.
  Injector inj(FaultPlan::parse("ioflip:ckpt:0:1:bit=12"));
  CheckpointStore store(store_config(dir, &inj));
  store.save(grid, solver.state());
  EXPECT_EQ(inj.faults_injected(FaultKind::kIoFlip), 1u);

  auto probe = make_grid();
  try {
    store.load(0, probe);
    FAIL() << "a flipped payload bit must fail the frame CRC";
  } catch (const llp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
  // The header frame is untouched (frame 0 ≠ lane 1): manifest still reads.
  EXPECT_NO_THROW(store.read_manifest(0));
}

TEST(CkptFaults, EnospcFailsCleanlyAndPublishesNothing) {
  const std::string dir = test_dir("ioenospc");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.enospc"));
  solver.run(2);

  Injector inj(FaultPlan::parse("ioenospc:ckpt:1:0"));
  CheckpointStore store(store_config(dir, &inj));
  store.save(grid, solver.state());
  solver.run(2);
  EXPECT_THROW(store.save(grid, solver.state()), llp::IoError);
  EXPECT_EQ(inj.faults_injected(FaultKind::kIoEnospc), 1u);

  // A clean write failure publishes nothing and leaves no litter: no
  // ckpt.1, no temp directory, and generation 0 still loads intact.
  EXPECT_FALSE(fs::exists(dir + "/ckpt.1"));
  EXPECT_FALSE(has_tmp_dir(dir));
  auto probe = make_grid();
  int gen = -1;
  EXPECT_NO_THROW(store.load_newest_intact(probe, &gen));
  EXPECT_EQ(gen, 0);
}

TEST(CkptFaults, CrashThrowsCrashErrorAndLeavesPartialTemp) {
  const std::string dir = test_dir("iocrash");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.crash"));
  solver.run(2);

  Injector inj(FaultPlan::parse("iocrash:ckpt:1:2"));
  CheckpointStore store(store_config(dir, &inj));
  store.save(grid, solver.state());
  solver.run(2);

  // CrashError is deliberately NOT an IoError: a handler that absorbs write
  // failures must not absorb a process death.
  try {
    store.save(grid, solver.state());
    FAIL() << "the injected crash must propagate";
  } catch (const llp::IoError&) {
    FAIL() << "CrashError must not be catchable as IoError";
  } catch (const llp::CrashError&) {
  }
  EXPECT_EQ(inj.faults_injected(FaultKind::kIoCrash), 1u);
  EXPECT_TRUE(has_tmp_dir(dir)) << "a crash leaves its partial temp behind";

  // The next incarnation of the process: the stale temp is swept by the
  // next save, the torn generation was never published, and restart sees
  // only generation 0.
  CheckpointStore reborn(store_config(dir, nullptr));
  EXPECT_EQ(reborn.generations(), (std::vector<int>{0}));
  auto probe = make_grid();
  int gen = -1;
  EXPECT_NO_THROW(reborn.load_newest_intact(probe, &gen));
  EXPECT_EQ(gen, 0);
  reborn.save(grid, solver.state());
  EXPECT_FALSE(has_tmp_dir(dir));
  EXPECT_EQ(reborn.generations(), (std::vector<int>{1, 0}));
}

TEST(CkptFaults, RunProtectedSurvivesWriteFailureAndReportsIt) {
  const std::string dir = test_dir("run_enospc");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.run"));
  Injector inj(FaultPlan::parse("ioenospc:ckpt:1:0"));
  CheckpointStore store(store_config(dir, &inj));  // every=2
  solver.set_checkpoint_hook(&store);

  const f3d::RunReport report = solver.run_protected(7);
  EXPECT_FALSE(report.failed) << "a lost checkpoint must not fail the run";
  EXPECT_EQ(report.steps_completed, 7);
  EXPECT_EQ(report.ckpt_write_failures, 1);
  EXPECT_NE(report.ckpt_failure_reason.find("no space"), std::string::npos)
      << report.ckpt_failure_reason;
  // Seals at steps 2, 4, 6 minus the failed one, plus the unsealed flush:
  // the step-3 generation is simply missing, everything else stands.
  EXPECT_EQ(report.durable_checkpoints, 3);
  EXPECT_EQ(store.generations().size(), 3u);
  const auto summary = report.summary();
  EXPECT_NE(summary.find("ckpt-write-failures"), std::string::npos)
      << summary;
}

TEST(CkptFaults, RunProtectedDoesNotAbsorbAnInjectedCrash) {
  const std::string dir = test_dir("run_crash");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.runcrash"));
  Injector inj(FaultPlan::parse("iocrash:ckpt:0:0"));
  CheckpointStore store(store_config(dir, &inj));
  solver.set_checkpoint_hook(&store);
  EXPECT_THROW(solver.run_protected(7), llp::CrashError);
}

TEST(CkptFaults, IoFaultTimelineIsDeterministic) {
  // Same plan, two runs through reset_invocations: the same write-op
  // faults, byte-for-byte identical ladders.
  const std::string dir_a = test_dir("determ_a");
  const std::string dir_b = test_dir("determ_b");
  auto grid = make_grid();
  f3d::Solver solver(grid, solver_config("cfault.determ"));
  solver.run(2);

  Injector inj(FaultPlan::parse("ioflip:ckpt:1:1"));
  CheckpointStore a(store_config(dir_a, &inj));
  a.save(grid, solver.state());
  a.save(grid, solver.state());
  inj.reset_invocations();
  CheckpointStore b(store_config(dir_b, &inj));
  b.save(grid, solver.state());
  b.save(grid, solver.state());
  EXPECT_EQ(inj.faults_injected(FaultKind::kIoFlip), 2u);

  auto probe = make_grid();
  for (const auto* d : {&dir_a, &dir_b}) {
    CheckpointStore reader(store_config(*d, nullptr));
    int gen = -1;
    EXPECT_NO_THROW(reader.load_newest_intact(probe, &gen)) << *d;
    EXPECT_EQ(gen, 0) << "generation 1 must be the flipped one in " << *d;
  }
}

}  // namespace
