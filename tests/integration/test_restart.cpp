// End-to-end kill-and-resume: the real f3d_run binary is killed mid-run —
// by an injected iocrash (deterministic, dies inside a checkpoint write)
// and by an honest SIGKILL from outside — and a `--restart=auto` rerun must
// finish with the same final residual as an uninterrupted run. This is the
// whole durability story exercised through the CLI: generation rotation,
// torn-write rejection, fallback, replay verification, exact continuation.
//
// The binary's path arrives via the F3D_RUN_PATH compile definition.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;   // WEXITSTATUS, or -1 if signaled
  int signal = 0;       // the terminating signal, 0 if exited
  std::string output;   // combined stdout+stderr
};

std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_restart_" + name;
  fs::remove_all(dir);
  return dir;
}

// fork/exec f3d_run with `args`, capturing output. When kill_after_ms > 0,
// the child gets SIGKILL after that delay (unless it finished first).
RunResult run_f3d(const std::vector<std::string>& args,
                  int kill_after_ms = 0) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::dup2(pipefd[1], STDERR_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(F3D_RUN_PATH));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(F3D_RUN_PATH, argv.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);

  if (kill_after_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
    ::kill(pid, SIGKILL);  // no warning, no cleanup — the real thing
  }

  RunResult r;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(pipefd[0], buf, sizeof(buf))) > 0) {
    r.output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
  }
  return r;
}

// The parseable residual line f3d_run prints at the end of every run.
double final_residual(const RunResult& r) {
  const auto at = r.output.rfind("final residual ");
  EXPECT_NE(at, std::string::npos) << r.output;
  if (at == std::string::npos) return std::nan("");
  return std::strtod(r.output.c_str() + at + std::strlen("final residual "),
                     nullptr);
}

std::vector<std::string> base_args(const std::string& ckpt_dir) {
  return {"--case", "cube",   "--n",     "12",     "--steps",
          "12",     "--cfl",  "1.5",     "--wall", "--pulse",
          "0.05",   "--threads", "2",    "--ckpt-dir", ckpt_dir,
          "--ckpt-every", "2"};
}

TEST(Restart, InjectedCrashThenAutoRestartMatchesUninterrupted) {
  // Reference: the same case straight through (its checkpoint dir is its
  // own — durable checkpointing must not perturb the trajectory).
  const auto ref = run_f3d(base_args(test_dir("crash_ref")));
  ASSERT_EQ(ref.exit_code, 0) << ref.output;
  const double want = final_residual(ref);
  ASSERT_TRUE(std::isfinite(want));

  // The victim dies inside its third checkpoint write (op 2, header
  // frame): deterministic mid-write process death, torn temp left behind.
  const std::string dir = test_dir("crash");
  auto crash_args = base_args(dir);
  crash_args.push_back("--fault");
  crash_args.push_back("iocrash:ckpt:2:0");
  const auto crashed = run_f3d(crash_args);
  EXPECT_EQ(crashed.exit_code, 42) << crashed.output;
  EXPECT_NE(crashed.output.find("injected crash"), std::string::npos)
      << crashed.output;

  // Resume: must report the resumption and land on the same trajectory.
  auto resume_args = base_args(dir);
  resume_args.push_back("--restart=auto");
  const auto resumed = run_f3d(resume_args);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("restart: resumed from generation"),
            std::string::npos)
      << resumed.output;
  const double got = final_residual(resumed);
  EXPECT_NEAR(got, want, std::abs(want) * 1e-9)
      << "resumed trajectory diverged from the uninterrupted one";
}

TEST(Restart, SigkillMidRunThenAutoRestartMatchesUninterrupted) {
  // A heavier case than the others so the kill reliably lands mid-run
  // (~0.75 s uninterrupted at these sizes).
  auto args_for = [](const std::string& dir) -> std::vector<std::string> {
    return {"--case", "cube", "--n",   "24",     "--steps",    "80",
            "--cfl",  "1.5",  "--wall", "--pulse", "0.05",     "--threads",
            "2",      "--ckpt-dir", dir, "--ckpt-every", "2"};
  };
  const auto ref = run_f3d(args_for(test_dir("kill_ref")));
  ASSERT_EQ(ref.exit_code, 0) << ref.output;
  const double want = final_residual(ref);

  // SIGKILL at an arbitrary point: the run may have written zero, some, or
  // all generations — every one of those states must resume correctly
  // (auto falls back to a fresh start when nothing intact exists).
  const std::string dir = test_dir("kill");
  const auto killed = run_f3d(args_for(dir), /*kill_after_ms=*/250);
  if (killed.signal != SIGKILL) {
    GTEST_SKIP() << "run finished before the kill landed; nothing to resume";
  }

  auto resume_args = args_for(dir);
  resume_args.push_back("--restart=auto");
  const auto resumed = run_f3d(resume_args);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  const double got = final_residual(resumed);
  EXPECT_NEAR(got, want, std::abs(want) * 1e-9)
      << "post-SIGKILL resume diverged; output:\n"
      << resumed.output;
}

TEST(Restart, StrictRestartFailsWithoutCheckpoints) {
  auto args = base_args(test_dir("strict_empty"));
  args.push_back("--restart");
  const auto r = run_f3d(args);
  // I/O error per the shared exit-code contract (util/exit_codes.hpp).
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("no intact checkpoint generation"),
            std::string::npos)
      << r.output;
}

TEST(Restart, MismatchedConfigIsRefused) {
  const std::string dir = test_dir("fingerprint");
  const auto first = run_f3d(base_args(dir));
  ASSERT_EQ(first.exit_code, 0) << first.output;

  // Same directory, different physics: every generation must be rejected
  // by the fingerprint rung, and strict restart must fail.
  auto args = base_args(dir);
  args.push_back("--viscous");
  args.push_back("500");
  args.push_back("--restart");
  const auto r = run_f3d(args);
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("fingerprint"), std::string::npos) << r.output;
}

TEST(Restart, BadArgumentsAreUsageErrors) {
  EXPECT_EQ(run_f3d({"--cfl", "-1"}).exit_code, 2);
  EXPECT_EQ(run_f3d({"--cfl", "inf"}).exit_code, 2);
  EXPECT_EQ(run_f3d({"--steps", "0"}).exit_code, 2);
  EXPECT_EQ(run_f3d({"--n", "banana"}).exit_code, 2);
  EXPECT_EQ(run_f3d({"--ckpt-every", "0"}).exit_code, 2);
  EXPECT_EQ(run_f3d({"--restart=sometimes"}).exit_code, 2);
  const auto r = run_f3d({"--frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

}  // namespace
