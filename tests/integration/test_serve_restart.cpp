// End-to-end daemon durability: a real f3d_serve process hosting three
// pinned-thread jobs is SIGKILLed mid-flight; a restarted daemon on the
// same state directory must recover all three and finish each with the
// bitwise-identical final residual of an uninterrupted run (pinned lane
// counts make the trajectory reproducible, and residuals cross the wire
// as %.17g text, so string equality IS bitwise equality).
//
// Binary paths arrive via the F3D_SERVE_PATH / F3D_SUBMIT_PATH compile
// definitions.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  int signal = 0;
  std::string output;
};

std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_serve_restart_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// fork/exec `path args`, capturing combined output. kill_after_ms > 0
// sends SIGKILL after the delay (unless the child finished first).
RunResult run_tool(const char* path, const std::vector<std::string>& args,
                   int kill_after_ms = 0) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::dup2(pipefd[1], STDERR_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(path));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(path, argv.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);
  if (kill_after_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
    ::kill(pid, SIGKILL);
  }
  RunResult r;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(pipefd[0], buf, sizeof(buf))) > 0) {
    r.output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
  }
  return r;
}

// A daemon process handle: spawned detached, killed/reaped on demand.
struct Daemon {
  pid_t pid = -1;
  std::string socket;
  std::string state;

  void spawn() {
    // A SIGKILLed daemon leaves its socket file behind; remove it so the
    // bind-wait below observes the NEW daemon's socket, not the corpse's.
    ::unlink(socket.c_str());
    pid = ::fork();
    if (pid == 0) {
      const int devnull = ::open("/dev/null", O_WRONLY);
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::execl(F3D_SERVE_PATH, F3D_SERVE_PATH, "--socket", socket.c_str(),
              "--state", state.c_str(), "--threads", "4", "--max-jobs", "3",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    // Wait for the socket to appear (the daemon binds before serving).
    for (int i = 0; i < 500 && !fs::exists(socket); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(fs::exists(socket)) << "daemon never bound " << socket;
  }

  void sigkill() {
    ASSERT_GT(pid, 0);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  void shutdown() {
    if (pid <= 0) return;
    run_tool(F3D_SUBMIT_PATH, {"--socket", socket, "shutdown"});
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

// Final residual as the exact %.17g STRING the tool printed — the
// comparison below is on bytes, not on reparsed doubles.
std::string final_residual_text(const RunResult& r) {
  const std::string tag = "final residual ";
  const auto at = r.output.rfind(tag);
  EXPECT_NE(at, std::string::npos) << r.output;
  if (at == std::string::npos) return {};
  auto end = r.output.find('\n', at);
  if (end == std::string::npos) end = r.output.size();
  return r.output.substr(at + tag.size(), end - at - tag.size());
}

// The three tenants: distinct pinned lane counts and step counts, all
// heavy enough (~seconds each on shared lanes) that a 1.5 s kill lands
// with every job mid-flight.
struct Tenant {
  const char* n;
  const char* steps;
  const char* threads;
};
constexpr Tenant kTenants[] = {
    {"16", "1200", "1"},
    {"16", "1000", "2"},
    {"14", "1600", "1"},
};

std::vector<std::string> submit_args(const std::string& socket,
                                     const Tenant& t) {
  return {"--socket", socket,   "submit",     "--case",  "cube",
          "--n",      t.n,      "--steps",    t.steps,   "--wall",
          "--pulse",  "0.05",   "--threads",  t.threads, "--ckpt-every",
          "25"};
}

TEST(ServeRestartIntegration, SigkillWithThreeJobsInFlightResumesBitwise) {
  // Reference residuals: each tenant run uninterrupted through the batch
  // CLI with the same pinned lane count (the whole point of pinning).
  std::vector<std::string> want;
  for (const Tenant& t : kTenants) {
    const auto ref = run_tool(
        F3D_RUN_PATH,
        {"--case", "cube", "--n", t.n, "--steps", t.steps, "--wall",
         "--pulse", "0.05", "--threads", t.threads});
    ASSERT_EQ(ref.exit_code, 0) << ref.output;
    want.push_back(final_residual_text(ref));
    ASSERT_FALSE(want.back().empty());
  }

  Daemon daemon;
  daemon.socket = test_dir("kill3") + "/d.sock";
  daemon.state = test_dir("kill3_state");
  daemon.spawn();
  if (::testing::Test::HasFatalFailure()) return;

  for (const Tenant& t : kTenants) {
    const auto sub = run_tool(F3D_SUBMIT_PATH, submit_args(daemon.socket, t));
    ASSERT_EQ(sub.exit_code, 0) << sub.output;
    ASSERT_NE(sub.output.find("job "), std::string::npos) << sub.output;
  }

  // Let all three make checkpointed progress, then kill without warning.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  daemon.sigkill();

  // Restart on the same state. Every non-terminal job must be recovered.
  daemon.spawn();
  if (::testing::Test::HasFatalFailure()) return;

  // Jobs that were still in flight at the kill resume from their newest
  // generation; wait each to completion and compare residual BYTES.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto job = std::to_string(i + 1);
    const auto done = run_tool(
        F3D_SUBMIT_PATH,
        {"--socket", daemon.socket, "wait", job, "--timeout-ms", "300000"});
    ASSERT_EQ(done.exit_code, 0) << done.output;
    EXPECT_EQ(final_residual_text(done), want[i])
        << "job " << job << " diverged after the SIGKILL resume";
  }

  // The recovered jobs really did resume rather than restart: at least
  // one replays a "resumed" event (a job that finished pre-kill keeps its
  // terminal record instead — also fine, but with a 1.5 s kill against
  // multi-second jobs all three should be mid-flight).
  int resumed = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto ev = run_tool(F3D_SUBMIT_PATH,
                             {"--socket", daemon.socket, "events",
                              std::to_string(i + 1), "--no-follow"});
    if (ev.output.find("\"event\":\"resumed\"") != std::string::npos) {
      ++resumed;
    }
  }
  EXPECT_GE(resumed, 1) << "no job reported resuming from a checkpoint";

  daemon.shutdown();
}

TEST(ServeRestartIntegration, CompatModeMatchesDaemonDoneEvent) {
  // The --serve-compat line of a batch run and the daemon's done event for
  // the same pinned job must be byte-identical after normalizing the job
  // id — both sides serialize through the same done_event_line().
  const char* kN = "12";
  const char* kSteps = "40";
  const auto batch = run_tool(
      F3D_RUN_PATH, {"--case", "cube", "--n", kN, "--steps", kSteps,
                     "--wall", "--pulse", "0.05", "--threads", "2",
                     "--serve-compat"});
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  const std::string tag = "serve-compat: ";
  const auto at = batch.output.find(tag);
  ASSERT_NE(at, std::string::npos) << batch.output;
  auto end = batch.output.find('\n', at);
  std::string compat =
      batch.output.substr(at + tag.size(), end - at - tag.size());
  // Batch mode stamps job 0; the daemon will assign id 1.
  const std::string from = "\"job\":0";
  const auto jat = compat.find(from);
  ASSERT_NE(jat, std::string::npos) << compat;
  compat.replace(jat, from.size(), "\"job\":1");

  Daemon daemon;
  daemon.socket = test_dir("compat") + "/d.sock";
  daemon.state = test_dir("compat_state");
  daemon.spawn();
  if (::testing::Test::HasFatalFailure()) return;
  const auto sub = run_tool(
      F3D_SUBMIT_PATH,
      {"--socket", daemon.socket, "submit", "--case", "cube", "--n", kN,
       "--steps", kSteps, "--wall", "--pulse", "0.05", "--threads", "2",
       "--events"});
  ASSERT_EQ(sub.exit_code, 0) << sub.output;
  EXPECT_NE(sub.output.find(compat), std::string::npos)
      << "daemon done event differs from --serve-compat:\n"
      << compat << "\nvs\n"
      << sub.output;
  daemon.shutdown();
}

}  // namespace
