// The paper's §4 methodology as an integration test: profile, parallelize
// the expensive loops one at a time, verify the answer never changes, and
// watch the predicted scaling improve with each enabled loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "perf/trace_builder.hpp"
#include "simsmp/smp_simulator.hpp"

namespace {

std::vector<llp::RegionId> solver_loop_regions(const std::string& prefix) {
  std::vector<llp::RegionId> ids;
  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind(prefix + ".", 0) == 0 &&
        r.kind == llp::RegionKind::kParallelLoop) {
      ids.push_back(llp::regions().find(r.name));
    }
  }
  return ids;
}

TEST(Incremental, DisablingLoopsNeverChangesTheSolution) {
  const auto spec = f3d::wall_compression_case(10);

  auto run_with_enabled = [&](bool enabled) {
    auto grid = f3d::build_grid(spec);
    f3d::add_gaussian_pulse(grid, 0.05, 2.0);
    f3d::SolverConfig cfg;
    cfg.freestream = spec.freestream;
    cfg.region_prefix = "inc.sol";
    f3d::Solver s(grid, cfg);
    for (auto id : solver_loop_regions("inc.sol")) {
      llp::regions().set_parallel_enabled(id, enabled);
    }
    s.run(5);
    return f3d::checksum(grid);
  };

  const auto serial = run_with_enabled(false);
  const auto parallel = run_with_enabled(true);
  EXPECT_EQ(serial, parallel);
}

TEST(Incremental, EachEnabledLoopImprovesPredictedScaling) {
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "inc.step";
  f3d::Solver s(grid, cfg);

  const auto loops = solver_loop_regions("inc.step");
  ASSERT_GE(loops.size(), 10u);

  llp::simsmp::SmpSimulator sim(llp::model::origin2000_r12k_300());
  double prev_speedup = 0.0;

  // Enable loops cumulatively: none -> all, measuring after each batch of 5.
  for (auto id : loops) llp::regions().set_parallel_enabled(id, false);
  for (std::size_t enabled = 0; enabled <= loops.size(); enabled += 5) {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      llp::regions().set_parallel_enabled(loops[i], i < enabled);
    }
    llp::regions().reset_stats();
    s.run(2);
    auto snap = llp::regions().snapshot();
    std::vector<llp::RegionStats> mine;
    for (auto& r : snap) {
      if (r.name.rfind("inc.step.", 0) == 0 && r.invocations > 0) {
        mine.push_back(r);
      }
    }
    // Extrapolate to the full-size case: at the measured toy scale the
    // sync cost dominates (correctly!), which would mask the trend.
    const auto trace = llp::model::scale_trace(
        llp::perf::build_trace(mine, 2), 1000.0, 10.0);
    const double speedup = sim.run(trace, 32).speedup;
    EXPECT_GE(speedup, prev_speedup * 0.999)
        << "enabling more loops must not hurt, at " << enabled;
    prev_speedup = speedup;
  }
  // With everything enabled the prediction must show real scaling.
  EXPECT_GT(prev_speedup, 5.0);
  for (auto id : loops) llp::regions().set_parallel_enabled(id, true);
}

TEST(Incremental, ProfileIdentifiesSweepsAsHottest) {
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "inc.prof";
  llp::regions().reset_stats();
  f3d::Solver s(grid, cfg);
  s.run(2);
  // The flat profile's biggest entries should be sweep or rhs kernels of
  // the biggest zones — not bc/exchange.
  double hottest_time = 0.0;
  std::string hottest;
  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind("inc.prof.", 0) == 0 && r.seconds > hottest_time) {
      hottest_time = r.seconds;
      hottest = r.name;
    }
  }
  EXPECT_TRUE(hottest.find("sweep") != std::string::npos ||
              hottest.find("rhs") != std::string::npos)
      << hottest;
}

}  // namespace
