// End-to-end fault tolerance through the f3d_cluster CLI: four workers,
// one SIGKILLed mid-step and one hung past its step deadline, must be
// detected within the liveness window, rolled back to the newest intact
// generation, and finish with a final residual bitwise identical to an
// uninterrupted run of the same partition. Plus the two exhaustion edges:
// a slot that can never spawn migrates its zones onto the survivors, and
// a burn-every-epoch fault exhausts the recovery budget into exit 6.
//
// The binary's path arrives via the F3D_CLUSTER_PATH compile definition.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;  // WEXITSTATUS, or -1 if signaled
  std::string output;  // combined stdout+stderr
};

std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "llp_cluster_it_" + name;
  fs::remove_all(dir);
  return dir;
}

RunResult run_cluster_cli(const std::vector<std::string>& args) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::dup2(pipefd[1], STDERR_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(F3D_CLUSTER_PATH));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(F3D_CLUSTER_PATH, argv.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);
  RunResult r;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(pipefd[0], buf, sizeof(buf))) > 0) {
    r.output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::vector<std::string> base_args(const std::string& ckpt_dir) {
  return {"--case", "cube",  "--n",          "16", "--zones",      "4",
          "--workers", "4",  "--steps",      "8",  "--ckpt-every", "2",
          "--ckpt-dir", ckpt_dir};
}

// The "N recoveries" count from the summary line. Tests assert a lower
// bound, not equality: a loaded machine can add spurious step-deadline
// rollbacks, and those must also land bitwise.
int recoveries_reported(const std::string& output) {
  const std::size_t pos = output.find(" recoveries");
  EXPECT_NE(pos, std::string::npos) << output;
  if (pos == std::string::npos) return -1;
  const std::size_t num = output.rfind(' ', pos - 1) + 1;
  return std::stoi(output.substr(num, pos - num));
}

// "final residual <17 significant digits>" — the exact-match handle.
std::string final_residual_line(const std::string& output) {
  const std::size_t pos = output.rfind("final residual ");
  EXPECT_NE(pos, std::string::npos) << output;
  if (pos == std::string::npos) return "";
  std::size_t end = output.find('\n', pos);
  if (end == std::string::npos) end = output.size();
  return output.substr(pos, end - pos);
}

TEST(ClusterRecovery, KillAndHangBothDetectedAndRecoveredBitwise) {
  // The uninterrupted baseline.
  const std::string clean_dir = test_dir("baseline");
  const RunResult clean = run_cluster_cli(base_args(clean_dir));
  ASSERT_EQ(clean.exit_code, 0) << clean.output;
  const std::string want = final_residual_line(clean.output);
  ASSERT_FALSE(want.empty());

  // SIGKILL worker 1 at step 2 and hang worker 2 at step 5 (after the
  // first recovery re-runs the early steps). Tight deadlines keep the
  // detection latency measurable in test time.
  const std::string dir = test_dir("kill_hang");
  std::vector<std::string> args = base_args(dir);
  args.insert(args.end(),
              {"--fault", "iocrash:w1.step:2:0;hang:w2.step:5:0",
               "--step-deadline-ms", "1000", "--heartbeat-ms", "25",
               "--verbose"});
  const RunResult faulted = run_cluster_cli(args);
  ASSERT_EQ(faulted.exit_code, 0) << faulted.output;

  // Both failures declared, both recovered, run completed: at least one
  // recovery per injected fault.
  EXPECT_GE(recoveries_reported(faulted.output), 2) << faulted.output;
  EXPECT_NE(faulted.output.find("pipe closed (crash)"), std::string::npos)
      << faulted.output;
  EXPECT_NE(faulted.output.find("step-deadline"), std::string::npos)
      << faulted.output;
  // The acceptance bar: bitwise-identical final residual, 17 digits.
  EXPECT_NE(faulted.output.find(want), std::string::npos)
      << "want '" << want << "' in:\n"
      << faulted.output;
}

TEST(ClusterRecovery, FrozenWorkerTripsHeartbeatTimeout) {
  // freeze = beacon stops too, so detection must come from the heartbeat
  // window (heartbeat_ms * misses), not the much larger step deadline.
  const std::string dir = test_dir("freeze");
  std::vector<std::string> args = base_args(dir);
  args.insert(args.end(),
              {"--fault", "hang:w3.freeze:3:0", "--heartbeat-ms", "20",
               "--heartbeat-misses", "4", "--step-deadline-ms", "60000",
               "--verbose"});
  const RunResult r = run_cluster_cli(args);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("heartbeat-timeout"), std::string::npos) << r.output;
  EXPECT_GE(recoveries_reported(r.output), 1) << r.output;
}

TEST(ClusterRecovery, UnspawnableSlotMigratesOntoSurvivors) {
  const std::string dir = test_dir("migrate");
  std::vector<std::string> args = base_args(dir);
  args.insert(args.end(), {"--fault", "throw:w2.spawn:*:0:count=0",
                           "--max-respawns", "2", "--step-deadline-ms",
                           "1000"});
  const RunResult r = run_cluster_cli(args);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("1 migrations"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("4->3 workers"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("final residual "), std::string::npos) << r.output;
}

TEST(ClusterRecovery, RecoveryBudgetExhaustionExitsSix) {
  const std::string dir = test_dir("exhaust");
  std::vector<std::string> args = base_args(dir);
  args.insert(args.end(), {"--fault", "iocrash:w0.step:*:0:count=0",
                           "--max-respawns", "99", "--max-recoveries", "2",
                           "--step-deadline-ms", "1000"});
  const RunResult r = run_cluster_cli(args);
  EXPECT_EQ(r.exit_code, 6) << r.output;
  EXPECT_NE(r.output.find("cluster failure"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("recovery budget exhausted"), std::string::npos)
      << r.output;
}

TEST(ClusterRecovery, SpawnRetrySucceedsWithinBackoffBudget) {
  // The spawn fault is one-shot: the first attempt dies pre-READY, the
  // supervisor consumes the spec, backs off, and the retry goes through —
  // no migration, run completes on the full worker set.
  const std::string dir = test_dir("retry");
  std::vector<std::string> args = base_args(dir);
  args.insert(args.end(), {"--fault", "throw:w1.spawn:*:0",
                           "--max-respawns", "5", "--step-deadline-ms",
                           "2000"});
  const RunResult r = run_cluster_cli(args);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 migrations"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("4->4 workers"), std::string::npos) << r.output;
}

}  // namespace
