// End-to-end pipeline: real solver run -> region profile -> work trace ->
// SMP simulation. This is exactly the path the Table 4 / Figure 2-3 benches
// take, asserted at small scale.
#include <gtest/gtest.h>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "perf/trace_builder.hpp"
#include "simsmp/smp_simulator.hpp"

namespace {

llp::model::WorkTrace measured_trace(const std::string& prefix, int steps) {
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = prefix;
  llp::regions().reset_stats();
  f3d::Solver s(grid, cfg);
  s.run(steps);
  // Keep only this run's regions.
  auto snap = llp::regions().snapshot();
  std::vector<llp::RegionStats> mine;
  for (auto& r : snap) {
    if (r.name.rfind(prefix + ".", 0) == 0 && r.invocations > 0) {
      mine.push_back(r);
    }
  }
  return llp::perf::build_trace(mine, steps);
}

TEST(Pipeline, TraceContainsAllSolverRegions) {
  const auto trace = measured_trace("pipe.a", 2);
  // 3 zones x 5 loop kernels + bc + exchange.
  EXPECT_EQ(trace.loops.size(), 17u);
  double flops = 0.0;
  int parallel = 0;
  for (const auto& l : trace.loops) {
    flops += l.flops_per_step;
    if (l.parallel) ++parallel;
  }
  EXPECT_GT(flops, 0.0);
  EXPECT_EQ(parallel, 15);
}

TEST(Pipeline, TraceTripsMatchZoneDims) {
  const auto trace = measured_trace("pipe.b", 2);
  const auto spec = f3d::paper_1m_case(0.1);
  for (const auto& l : trace.loops) {
    if (l.name.find("z0.sweep_j") != std::string::npos) {
      EXPECT_EQ(l.trips, spec.zones[0].lmax);
    }
    if (l.name.find("z2.sweep_l") != std::string::npos) {
      EXPECT_EQ(l.trips, spec.zones[2].kmax);
    }
  }
}

TEST(Pipeline, SimulatedSpeedupIsSubstantialAndBounded) {
  const auto trace = measured_trace("pipe.c", 2);
  // Extrapolate the scaled (0.1) run to full size: points scale ~1000x,
  // trips 10x.
  const auto full = llp::model::scale_trace(trace, 1000.0, 10.0);
  llp::simsmp::SmpSimulator sim(llp::model::origin2000_r12k_300());
  const auto p1 = sim.run(full, 1);
  const auto p64 = sim.run(full, 64);
  EXPECT_GT(p64.speedup, 20.0);
  EXPECT_LE(p64.speedup, 64.0);
  EXPECT_GT(p64.steps_per_hour, p1.steps_per_hour);
}

TEST(Pipeline, StairStepVisibleInSimulatedSweep) {
  const auto trace = measured_trace("pipe.d", 2);
  const auto full = llp::model::scale_trace(trace, 1000.0, 10.0);
  llp::simsmp::SmpSimulator sim(llp::model::origin2000_r12k_300());
  // The 1M case's parallel trips are 70 and 75: the 48->64 window is flat
  // (Table 4), then 72 jumps.
  const auto p48 = sim.run(full, 48);
  const auto p64 = sim.run(full, 64);
  const auto p72 = sim.run(full, 72);
  EXPECT_NEAR(p48.steps_per_hour, p64.steps_per_hour,
              0.05 * p48.steps_per_hour);
  EXPECT_GT(p72.steps_per_hour, 1.2 * p64.steps_per_hour);
}

TEST(Pipeline, SunAndSgiDeliveredRatesSimilarPerProcessor) {
  // §5: delivered per-processor performance of the two vendors is similar
  // despite very different peaks.
  const auto trace = measured_trace("pipe.e", 2);
  const auto full = llp::model::scale_trace(trace, 1000.0, 10.0);
  llp::simsmp::SmpSimulator sgi(llp::model::origin2000_r12k_300());
  llp::simsmp::SmpSimulator sun(llp::model::sun_hpc10000());
  const double sgi1 = sgi.run(full, 1).mflops;
  const double sun1 = sun.run(full, 1).mflops;
  EXPECT_LT(std::abs(sgi1 - sun1) / sgi1, 0.35);
}

}  // namespace
