// Integration: the message-passing zonal driver (paper §8, Behr's F3D
// port) must compute exactly what the shared-memory multi-zone solver
// computes — the paper's "no changes to the algorithm" requirement holds
// across programming models too.
#include <gtest/gtest.h>

#include <cmath>

#include "f3d/msg_driver.hpp"
#include "f3d/validation.hpp"

namespace {

// Deterministic, coordinate-free perturbation (same in both runs).
void perturb(f3d::Zone& z, int zone_index) {
  for (int l = 0; l < z.lmax(); ++l) {
    for (int k = 0; k < z.kmax(); ++k) {
      for (int j = 0; j < z.jmax(); ++j) {
        f3d::Prim s = f3d::to_prim(z.q_point(j, k, l));
        const double bump =
            1.0 + 0.04 * std::sin(0.7 * j + 1.3 * k + 2.1 * l +
                                  3.5 * zone_index);
        s.rho *= bump;
        s.p *= std::pow(bump, f3d::kGamma);
        f3d::to_conservative(s, z.q_point(j, k, l));
      }
    }
  }
}

struct SharedRun {
  std::vector<std::uint64_t> zone_digests;
  std::vector<double> residuals;
};

SharedRun shared_memory_run(const f3d::CaseSpec& spec, int steps,
                            const std::string& prefix) {
  auto grid = f3d::build_grid(spec);
  for (int z = 0; z < grid.num_zones(); ++z) perturb(grid.zone(z), z);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = prefix;
  f3d::Solver solver(grid, cfg);
  SharedRun out;
  for (int s = 0; s < steps; ++s) {
    solver.step();
    out.residuals.push_back(solver.residual());
  }
  out.zone_digests = f3d::per_zone_checksums(grid);
  return out;
}

TEST(MsgSolver, BitwiseAgreementWithSharedMemory) {
  const auto spec = f3d::paper_1m_case(0.1);
  const int steps = 5;

  const auto shared = shared_memory_run(spec, steps, "msgint.shared");

  f3d::SolverConfig cfg;
  cfg.region_prefix = "msgint.msg";
  const auto msg =
      f3d::run_message_passing_solver(spec, steps, cfg, perturb);

  ASSERT_EQ(msg.checksums.size(), shared.zone_digests.size());
  for (std::size_t z = 0; z < msg.checksums.size(); ++z) {
    EXPECT_EQ(msg.checksums[z], shared.zone_digests[z]) << "zone " << z;
  }
}

TEST(MsgSolver, ResidualHistoryMatches) {
  const auto spec = f3d::paper_1m_case(0.1);
  const int steps = 4;
  const auto shared = shared_memory_run(spec, steps, "msgint.res_s");
  f3d::SolverConfig cfg;
  cfg.region_prefix = "msgint.res_m";
  const auto msg = f3d::run_message_passing_solver(spec, steps, cfg, perturb);
  ASSERT_EQ(msg.residuals.size(), static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    EXPECT_NEAR(msg.residuals[s], shared.residuals[s],
                1e-12 * (1.0 + shared.residuals[s]))
        << "step " << s;
  }
}

TEST(MsgSolver, TrafficMatchesInterfaceCount) {
  const auto spec = f3d::paper_1m_case(0.1);
  const int steps = 3;
  f3d::SolverConfig cfg;
  cfg.region_prefix = "msgint.traffic";
  const auto msg = f3d::run_message_passing_solver(spec, steps, cfg);
  // 3 zones -> 2 interfaces -> 4 messages per step.
  EXPECT_EQ(msg.traffic.total_messages, static_cast<std::uint64_t>(4 * steps));
  EXPECT_GT(msg.traffic.total_bytes, 0u);
}

TEST(MsgSolver, SingleZoneNeedsNoMessages) {
  const auto spec = f3d::wall_compression_case(8);
  f3d::SolverConfig cfg;
  cfg.region_prefix = "msgint.single";
  const auto msg = f3d::run_message_passing_solver(spec, 2, cfg);
  EXPECT_EQ(msg.traffic.total_messages, 0u);
}

TEST(CombinedChecksum, OrderSensitive) {
  EXPECT_NE(f3d::combined_checksum({1, 2}), f3d::combined_checksum({2, 1}));
  EXPECT_EQ(f3d::combined_checksum({1, 2}), f3d::combined_checksum({1, 2}));
}

}  // namespace
