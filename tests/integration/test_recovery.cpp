// End-to-end fault recovery: deterministic injected faults (NaN poisoning,
// lane throws, lane hangs) against the real solver, recovered through
// run_protected's checkpoint/rollback/CFL-backoff loop.
//
// The acceptance demo lives here: a NaN injected at a fixed (region,
// invocation) mid-run is detected by the per-step health check, the solver
// rolls back and finishes, the final checksum is identical across two runs
// with the same plan and seed, and first_divergence against a fault-free
// run lands inside the rolled-back window only.
//
// Tests with "Hang" in the name leak one detached thread by design (that is
// what a hard hang is); sanitizer CI jobs exclude them via `ctest -E Hang`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/llp.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace {

using llp::fault::FaultKind;
using llp::fault::FaultPlan;
using llp::fault::Injector;

struct ProtectedRun {
  f3d::RunReport report;
  f3d::RunHistory history;
  std::uint64_t checksum = 0;
};

// One small real-solver run through the protected path. When an injector is
// given it is installed for the duration with every zone's Q storage
// registered as "q<zone>" and its fault timeline restarted, so repeated
// calls fault at identical points.
ProtectedRun run_case(const std::string& prefix, int steps,
                      const f3d::RecoveryConfig& recovery,
                      Injector* inj = nullptr) {
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  if (inj != nullptr) {
    for (int z = 0; z < grid.num_zones(); ++z) {
      auto& st = grid.zone(z).storage();
      inj->register_array("q" + std::to_string(z), st.data(), st.size());
    }
    inj->reset_invocations();
    llp::fault::install(inj);
  }

  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = prefix;
  cfg.recovery = recovery;
  f3d::Solver solver(grid, cfg);

  ProtectedRun out;
  out.report = solver.run_protected(steps, &out.history);
  out.checksum = f3d::checksum(grid);

  if (inj != nullptr) {
    llp::fault::install(nullptr);
    for (int z = 0; z < grid.num_zones(); ++z) {
      inj->unregister_array("q" + std::to_string(z));  // grid dies with us
    }
  }
  return out;
}

TEST(Recovery, FaultFreeProtectedRunMatchesPlainRun) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 3;
  rc.checkpoint_every = 3;
  const auto prot = run_case("rec.base", 6, rc);
  EXPECT_EQ(prot.report.recoveries, 0);
  EXPECT_FALSE(prot.report.failed);
  EXPECT_EQ(prot.report.steps_completed, 6);
  EXPECT_EQ(prot.history.steps(), 6u);

  // Same case through the unprotected loop: bit-identical solution — the
  // checkpoint machinery must be free when nothing faults.
  const auto spec = f3d::paper_1m_case(0.1);
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = "rec.base2";
  f3d::Solver solver(grid, cfg);
  solver.run(6);
  EXPECT_EQ(f3d::checksum(grid), prot.checksum);
}

// The acceptance demo: NaN poisoning of zone 0's Q array while the step-6
// right-hand side reads it (z0.rhs invocation 5), detected by the health
// check, recovered by rollback to the step-3 checkpoint with the CFL backed
// off.
TEST(Recovery, NanFaultRecoversDeterministically) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 2;
  rc.checkpoint_every = 3;
  const int steps = 10;

  // seed=4 places the deterministic poison index in the zone interior
  // (other seeds may land in a ghost cell, which the next BC pass erases
  // before the interior-only health check can see it).
  Injector inj(FaultPlan::parse("nan:rec.nan.z0.rhs:5:0:array=q0;seed=4"));
  const auto faulty = run_case("rec.nan", steps, rc, &inj);

  EXPECT_EQ(inj.faults_injected(FaultKind::kNan), 1u);
  EXPECT_EQ(faulty.report.recoveries, 1);
  EXPECT_FALSE(faulty.report.failed);
  EXPECT_EQ(faulty.report.steps_completed, steps);
  EXPECT_TRUE(std::isfinite(faulty.report.final_residual));
  ASSERT_EQ(faulty.report.recovery_steps.size(), 1u);
  EXPECT_EQ(faulty.report.recovery_steps[0], 6);
  EXPECT_EQ(faulty.history.steps(), static_cast<std::size_t>(steps));

  // Deterministic: the same plan and seed on a restarted timeline
  // reproduces the fault, the recovery, and the final solution bits.
  const auto again = run_case("rec.nan", steps, rc, &inj);
  EXPECT_EQ(again.report.recoveries, 1);
  EXPECT_EQ(again.checksum, faulty.checksum);
  EXPECT_EQ(again.history.checksums, faulty.history.checksums);

  // Against a fault-free run the recovered history diverges only inside the
  // rolled-back window [checkpoint step 3, fault step 6): the replayed
  // steps run at the backed-off CFL. Everything before the checkpoint is
  // untouched by the recovery.
  const auto clean = run_case("rec.nan", steps, rc);
  EXPECT_EQ(clean.report.recoveries, 0);
  const int fd = f3d::first_divergence(faulty.history, clean.history);
  EXPECT_GE(fd, 3) << "recovery must not disturb pre-checkpoint steps";
  EXPECT_LE(fd, 5) << "divergence must begin inside the rolled-back window";
}

TEST(Recovery, ThrownLaneErrorIsAttributedAndRecovered) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 2;
  rc.checkpoint_every = 3;

  Injector inj(FaultPlan::parse("throw:rec.thr.z0.sweep_j:4:0"));
  const auto run = run_case("rec.thr", 8, rc, &inj);

  EXPECT_EQ(inj.faults_injected(FaultKind::kThrow), 1u);
  EXPECT_EQ(run.report.recoveries, 1);
  EXPECT_FALSE(run.report.failed);
  EXPECT_EQ(run.report.steps_completed, 8);

  // LaneError carries the region, so the recovery is attributed in the
  // registry — "which loop keeps failing?" has an answer.
  const auto region = llp::regions().find("rec.thr.z0.sweep_j");
  ASSERT_NE(region, llp::kNoRegion);
  EXPECT_GE(llp::regions().stats(region).faults, 1u);
  EXPECT_GE(llp::regions().stats(region).recoveries, 1u);
}

TEST(Recovery, ExhaustedBudgetFailsWithDiagnosticsOnLastHealthyState) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 0;  // fail on first fault
  rc.checkpoint_every = 2;

  Injector inj(FaultPlan::parse("throw:rec.fail.z0.rhs:2:0"));
  const auto run = run_case("rec.fail", 6, rc, &inj);

  EXPECT_TRUE(run.report.failed);
  EXPECT_EQ(run.report.recoveries, 0);
  EXPECT_NE(run.report.failure_reason.find("injected fault"),
            std::string::npos);
  // Rolled back to the step-2 checkpoint: the caller gets a healthy
  // (finite) solution plus the diagnosis, not a poisoned grid.
  EXPECT_EQ(run.report.steps_completed, 2);
  EXPECT_TRUE(std::isfinite(run.report.final_residual));
  EXPECT_NE(run.report.summary().find("FAILED"), std::string::npos);
}

TEST(Recovery, PersistentRegionFaultTriggersEngineFallback) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 5;
  rc.checkpoint_every = 2;
  rc.persistent_fault_limit = 3;

  // The region faults on every invocation (three firings): each replay
  // re-faults until the budget of the spec runs out, and the third
  // consecutive same-region fault degrades the sweep engine.
  Injector inj(FaultPlan::parse("throw:rec.fb.z0.rhs:*:0:count=3"));
  const auto run = run_case("rec.fb", 6, rc, &inj);

  EXPECT_EQ(run.report.recoveries, 3);
  EXPECT_TRUE(run.report.engine_fallback);
  EXPECT_FALSE(run.report.failed);
  EXPECT_EQ(run.report.steps_completed, 6);
  EXPECT_TRUE(std::isfinite(run.report.final_residual));
}

TEST(Recovery, StragglerDelaysButDoesNotFault) {
  f3d::RecoveryConfig rc;
  rc.max_recoveries = 1;
  Injector inj(FaultPlan::parse("delay:rec.slow.z0.update:1:0:delay=30"));
  const auto run = run_case("rec.slow", 4, rc, &inj);
  EXPECT_EQ(inj.faults_injected(FaultKind::kDelay), 1u);
  EXPECT_EQ(run.report.recoveries, 0) << "a straggler is slow, not wrong";
  EXPECT_FALSE(run.report.failed);
}

// A hard lane hang must surface as llp::TimeoutError within the configured
// deadline (plus an equal cancellation grace period), never as a deadlocked
// join — and the runtime must hand out a fresh pool afterwards. Leaks the
// hung thread by design; excluded from sanitizer jobs by name.
TEST(Recovery, HangBecomesTimeoutErrorNotDeadlock) {
  const auto region = llp::regions().define("rec.hangloop");
  Injector inj(FaultPlan::parse("hang:rec.hangloop:0:1"));
  llp::fault::install(&inj);
  llp::Runtime::instance().set_watchdog_seconds(0.3);

  const llp::ForOptions opts =
      llp::ForOptions::in_region(region).with_threads(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(llp::parallel_for(0, 64, [](std::int64_t) {}, opts),
               llp::TimeoutError);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 10.0) << "watchdog must bound the wait";

  // The abandoned pool is rebuilt transparently; the next loop runs clean.
  std::atomic<int> ran{0};
  llp::parallel_for(0, 64, [&](std::int64_t) { ++ran; }, opts);
  EXPECT_EQ(ran.load(), 64);

  llp::Runtime::instance().set_watchdog_seconds(0.0);
  llp::fault::install(nullptr);
}

// Solver-level version: the watchdog converts a hung update lane into a
// structured error that the recovery loop rolls back and replays — a hang
// costs one leaked thread and one recovery, not the run. Excluded from
// sanitizer jobs by name.
TEST(Recovery, SolverRecoversFromLaneHangViaWatchdog) {
  const int saved_threads = llp::num_threads();
  llp::set_num_threads(2);  // the hang targets worker lane 1
  llp::Runtime::instance().set_watchdog_seconds(1.0);

  f3d::RecoveryConfig rc;
  rc.max_recoveries = 2;
  rc.checkpoint_every = 2;
  Injector inj(FaultPlan::parse("hang:rec.hang.z0.update:2:1"));
  const auto run = run_case("rec.hang", 5, rc, &inj);

  llp::Runtime::instance().set_watchdog_seconds(0.0);
  llp::set_num_threads(saved_threads);

  EXPECT_EQ(inj.faults_injected(FaultKind::kHang), 1u);
  EXPECT_EQ(run.report.recoveries, 1);
  EXPECT_FALSE(run.report.failed);
  EXPECT_EQ(run.report.steps_completed, 5);
  EXPECT_TRUE(std::isfinite(run.report.final_residual));
}

}  // namespace
