#include "perf/advisor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::perf::advise;
using llp::perf::Advice;

llp::RegionStats loop(const std::string& name, double flops,
                      std::uint64_t invocations, std::uint64_t trips,
                      llp::RegionKind kind = llp::RegionKind::kParallelLoop) {
  llp::RegionStats r;
  r.name = name;
  r.kind = kind;
  r.invocations = invocations;
  r.total_trips = trips * invocations;
  r.flops = flops;
  return r;
}

const llp::model::MachineConfig kMachine = llp::model::origin2000_r12k_300();

TEST(Advisor, HotOuterLoopRecommended) {
  const auto advice =
      advise({loop("sweep", 5e10, 10, 450)}, kMachine, 32);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_TRUE(advice[0].parallelize);
  EXPECT_GT(advice[0].work_cycles, advice[0].min_work_cycles);
}

TEST(Advisor, TinyLoopRejectedOnTable1Grounds) {
  // ~4000 flops per invocation: orders of magnitude below the threshold.
  const auto advice = advise({loop("bc_line", 4e4, 10, 100)}, kMachine, 32);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_FALSE(advice[0].parallelize);
  EXPECT_NE(advice[0].reason.find("Table 1"), std::string::npos);
}

TEST(Advisor, SerialRegionsKeptSerial) {
  const auto advice =
      advise({loop("bc", 1e10, 10, 0, llp::RegionKind::kSerial)}, kMachine, 32);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_FALSE(advice[0].parallelize);
  EXPECT_NE(advice[0].reason.find("Table 2"), std::string::npos);
}

TEST(Advisor, LowTripLoopFlaggedButRecommended) {
  const auto advice = advise({loop("short", 5e10, 10, 15)}, kMachine, 64);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_TRUE(advice[0].parallelize);
  EXPECT_NE(advice[0].reason.find("stair-step"), std::string::npos);
}

TEST(Advisor, SortedByWork) {
  const auto advice = advise({loop("small", 1e9, 10, 100),
                              loop("big", 1e11, 10, 100)},
                             kMachine, 16);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].region, "big");
}

TEST(Advisor, ThresholdGrowsWithProcessors) {
  const auto few = advise({loop("x", 1e9, 1, 100)}, kMachine, 2);
  const auto many = advise({loop("x", 1e9, 1, 100)}, kMachine, 128);
  ASSERT_EQ(few.size(), 1u);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_GT(many[0].min_work_cycles, few[0].min_work_cycles);
}

TEST(Advisor, SkipsRegionsWithoutMeasurements) {
  const auto advice = advise({loop("dead", 0.0, 0, 0)}, kMachine, 8);
  EXPECT_TRUE(advice.empty());
}

TEST(Advisor, Validation) {
  EXPECT_THROW(advise({}, kMachine, 0), llp::Error);
  EXPECT_THROW(advise({}, kMachine, 4, 0.0), llp::Error);
}

TEST(Advisor, FormatContainsVerdicts) {
  const auto advice = advise({loop("sweep", 5e10, 10, 450),
                              loop("tiny", 4e4, 10, 100)},
                             kMachine, 32);
  const std::string s = llp::perf::format_advice(advice);
  EXPECT_NE(s.find("PARALLELIZE"), std::string::npos);
  EXPECT_NE(s.find("keep serial"), std::string::npos);
}

}  // namespace
