#include "perf/trace_builder.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "util/error.hpp"

namespace {

using llp::RegionKind;
using llp::RegionStats;

RegionStats make_region(const std::string& name, RegionKind kind,
                        bool enabled, std::uint64_t invocations,
                        std::uint64_t trips, double flops, double bytes) {
  RegionStats r;
  r.name = name;
  r.kind = kind;
  r.parallel_enabled = enabled;
  r.invocations = invocations;
  r.total_trips = trips;
  r.flops = flops;
  r.bytes = bytes;
  return r;
}

TEST(TraceBuilder, DividesByStepCount) {
  std::vector<RegionStats> snap = {make_region(
      "loop", RegionKind::kParallelLoop, true, 10, 700, 1e9, 2e6)};
  const auto trace = llp::perf::build_trace(snap, 10);
  ASSERT_EQ(trace.loops.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.loops[0].flops_per_step, 1e8);
  EXPECT_DOUBLE_EQ(trace.loops[0].bytes_per_step, 2e5);
  EXPECT_DOUBLE_EQ(trace.loops[0].invocations_per_step, 1.0);
  EXPECT_EQ(trace.loops[0].trips, 70);
  EXPECT_TRUE(trace.loops[0].parallel);
}

TEST(TraceBuilder, SkipsNeverInvokedRegions) {
  std::vector<RegionStats> snap = {
      make_region("dead", RegionKind::kParallelLoop, true, 0, 0, 0, 0),
      make_region("live", RegionKind::kParallelLoop, true, 5, 50, 1e6, 0)};
  const auto trace = llp::perf::build_trace(snap, 5);
  ASSERT_EQ(trace.loops.size(), 1u);
  EXPECT_EQ(trace.loops[0].name, "live");
}

TEST(TraceBuilder, DisabledParallelLoopBecomesSerial) {
  std::vector<RegionStats> snap = {make_region(
      "off", RegionKind::kParallelLoop, false, 5, 350, 1e6, 0)};
  const auto trace = llp::perf::build_trace(snap, 5);
  ASSERT_EQ(trace.loops.size(), 1u);
  EXPECT_FALSE(trace.loops[0].parallel);
  EXPECT_EQ(trace.loops[0].trips, 1);
}

TEST(TraceBuilder, SerialRegionStaysSerial) {
  std::vector<RegionStats> snap = {
      make_region("bc", RegionKind::kSerial, false, 5, 0, 1e6, 0)};
  const auto trace = llp::perf::build_trace(snap, 5);
  ASSERT_EQ(trace.loops.size(), 1u);
  EXPECT_FALSE(trace.loops[0].parallel);
}

TEST(TraceBuilder, MultipleInvocationsPerStep) {
  // 3 zones -> the same region name pattern appears 3x per step; here one
  // region runs 30 times over 10 steps.
  std::vector<RegionStats> snap = {make_region(
      "multi", RegionKind::kParallelLoop, true, 30, 2100, 3e9, 0)};
  const auto trace = llp::perf::build_trace(snap, 10);
  EXPECT_DOUBLE_EQ(trace.loops[0].invocations_per_step, 3.0);
  EXPECT_EQ(trace.loops[0].trips, 70);  // mean trips per invocation
}

TEST(TraceBuilder, RejectsBadSteps) {
  EXPECT_THROW(llp::perf::build_trace({}, 0), llp::Error);
}

TEST(TraceBuilder, FromGlobalRegistry) {
  auto& reg = llp::regions();
  const auto id = reg.define("tb.from_registry");
  reg.reset_stats();
  reg.record(id, 42, 0.1);
  reg.add_flops(id, 4.2e6);
  const auto trace = llp::perf::build_trace_from_registry(1);
  bool found = false;
  for (const auto& l : trace.loops) {
    if (l.name == "tb.from_registry") {
      found = true;
      EXPECT_EQ(l.trips, 42);
      EXPECT_DOUBLE_EQ(l.flops_per_step, 4.2e6);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
