#include "perf/metrics.hpp"

#include <gtest/gtest.h>

#include "perf/timer.hpp"
#include "util/error.hpp"

namespace {

TEST(Metrics, TimeStepsPerHour) {
  EXPECT_DOUBLE_EQ(llp::perf::time_steps_per_hour(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(llp::perf::time_steps_per_hour(1.0), 3600.0);
  // Table 4 p=1 Origin row: 181 steps/hr ~ 19.9 s/step.
  EXPECT_NEAR(llp::perf::time_steps_per_hour(19.9), 181.0, 1.0);
}

TEST(Metrics, TimeStepsRejectsNonPositive) {
  EXPECT_THROW(llp::perf::time_steps_per_hour(0.0), llp::Error);
  EXPECT_THROW(llp::perf::time_steps_per_hour(-1.0), llp::Error);
}

TEST(Metrics, Mflops) {
  EXPECT_DOUBLE_EQ(llp::perf::mflops(1e6, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(llp::perf::mflops(4.83e9, 1.0), 4830.0);
  EXPECT_THROW(llp::perf::mflops(1e6, 0.0), llp::Error);
  EXPECT_THROW(llp::perf::mflops(-1.0, 1.0), llp::Error);
}

TEST(Metrics, ParallelEfficiency) {
  EXPECT_DOUBLE_EQ(llp::perf::parallel_efficiency(8.0, 1.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(llp::perf::parallel_efficiency(8.0, 2.0, 8), 0.5);
  EXPECT_THROW(llp::perf::parallel_efficiency(0.0, 1.0, 8), llp::Error);
}

TEST(Metrics, EformatMatchesPaperStyle) {
  // Table 4 prints MFLOPS like "3.64E3".
  EXPECT_EQ(llp::perf::eformat(3640.0), "3.64E3");
  EXPECT_EQ(llp::perf::eformat(180.0), "1.80E2");
  EXPECT_EQ(llp::perf::eformat(1.02e4), "1.02E4");
  EXPECT_EQ(llp::perf::eformat(0.0), "0.00E0");
}

TEST(Metrics, EformatNegativeAndSmall) {
  EXPECT_EQ(llp::perf::eformat(-3640.0), "-3.64E3");
  EXPECT_EQ(llp::perf::eformat(0.0123), "1.23E-2");
}

TEST(Timer, ElapsedIsNonNegativeAndGrows) {
  llp::perf::Timer t;
  const double a = t.elapsed();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double b = t.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestarts) {
  llp::perf::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double before = t.elapsed();
  t.reset();
  EXPECT_LE(t.elapsed(), before + 1e-3);
}

TEST(ScopedTimer, AccumulatesIntoSink) {
  double sink_time = 0.0;
  {
    llp::perf::ScopedTimer st(sink_time);
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(sink_time, 0.0);
}

}  // namespace
