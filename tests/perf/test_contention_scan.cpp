#include "perf/contention_scan.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using llp::perf::contention_scan;
using llp::perf::region_cpu_seconds;
using llp::perf::ScalingProfile;

llp::RegionStats region(const std::string& name, double wall_seconds,
                        llp::RegionKind kind = llp::RegionKind::kParallelLoop) {
  llp::RegionStats r;
  r.name = name;
  r.kind = kind;
  r.parallel_enabled = kind == llp::RegionKind::kParallelLoop;
  r.invocations = 1;
  r.seconds = wall_seconds;
  return r;
}

TEST(RegionCpuSeconds, SerialIsWallTime) {
  const auto r = region("bc", 2.0, llp::RegionKind::kSerial);
  EXPECT_DOUBLE_EQ(region_cpu_seconds(r, 16), 2.0);
}

TEST(RegionCpuSeconds, ParallelScalesByProcessors) {
  const auto r = region("loop", 0.5);
  EXPECT_DOUBLE_EQ(region_cpu_seconds(r, 8), 4.0);
}

TEST(RegionCpuSeconds, PrefersLaneTimingWhenPresent) {
  auto r = region("loop", 0.5);
  r.lane_mean_seconds = 0.3;  // lanes idle part of the wall time
  EXPECT_DOUBLE_EQ(region_cpu_seconds(r, 8), 2.4);
}

TEST(ContentionScan, HealthyRegionsNotFlagged) {
  // Wall time halves with doubled processors: CPU time constant.
  ScalingProfile p2{2, {region("healthy", 1.0)}};
  ScalingProfile p16{16, {region("healthy", 0.125)}};
  const auto suspects = contention_scan({p2, p16});
  EXPECT_TRUE(suspects.empty());
}

TEST(ContentionScan, ContendedRegionFlagged) {
  // The paper's signature: wall time refuses to drop (here it even grows),
  // so CPU time balloons with processors.
  ScalingProfile p2{2, {region("healthy", 1.0), region("contended", 0.5)}};
  ScalingProfile p16{16, {region("healthy", 0.125), region("contended", 0.6)}};
  const auto suspects = contention_scan({p2, p16});
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].region, "contended");
  EXPECT_NEAR(suspects[0].cpu_time_growth, (0.6 * 16) / (0.5 * 2), 1e-12);
  EXPECT_LT(suspects[0].wall_speedup, 1.0);
}

TEST(ContentionScan, SortsByGrowth) {
  ScalingProfile lo{2, {region("a", 1.0), region("b", 1.0)}};
  ScalingProfile hi{8, {region("a", 1.0), region("b", 2.0)}};
  const auto suspects = contention_scan({lo, hi});
  ASSERT_EQ(suspects.size(), 2u);
  EXPECT_EQ(suspects[0].region, "b");
}

TEST(ContentionScan, SerialRegionsAreNeverSuspects) {
  // Serial wall time is constant by construction: CPU time is flat.
  ScalingProfile lo{2, {region("bc", 0.2, llp::RegionKind::kSerial)}};
  ScalingProfile hi{32, {region("bc", 0.2, llp::RegionKind::kSerial)}};
  EXPECT_TRUE(contention_scan({lo, hi}).empty());
}

TEST(ContentionScan, UsesExtremeProcessorCounts) {
  // The middle profile is noise; only min and max are compared.
  ScalingProfile a{2, {region("x", 1.0)}};
  ScalingProfile mid{8, {region("x", 100.0)}};
  ScalingProfile b{16, {region("x", 0.125)}};
  EXPECT_TRUE(contention_scan({mid, a, b}).empty());
}

TEST(ContentionScan, Validation) {
  ScalingProfile only{4, {region("x", 1.0)}};
  EXPECT_THROW(contention_scan({only}), llp::Error);
  ScalingProfile dup{4, {region("x", 1.0)}};
  EXPECT_THROW(contention_scan({only, dup}), llp::Error);
  ScalingProfile other{8, {region("x", 1.0)}};
  EXPECT_THROW(contention_scan({only, other}, 1.0), llp::Error);
}

TEST(ContentionScan, RegionMissingFromHighProfileSkipped) {
  ScalingProfile lo{2, {region("gone", 1.0)}};
  ScalingProfile hi{16, {region("different", 1.0)}};
  EXPECT_TRUE(contention_scan({lo, hi}).empty());
}

}  // namespace
