// Predict how YOUR loop structure scales on classic SMPs.
//
// The scaling model needs only what you can read off your code: per-step
// work per region, the parallelized loop's trip count, fork-joins per
// step, and which regions stay serial. This example describes a typical
// 3-D implicit solver by hand (no measurement needed) and sweeps it across
// the paper's machines — a what-if tool for the Table 1/2/3 trade-offs.
//
// Build & run:  ./build/examples/predict_scaling
#include <cstdio>

#include "model/scaling.hpp"
#include "model/stairstep.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using llp::model::LoopWork;

  // Describe one time step of a 200 x 120 x 96 implicit solver:
  //   three sweeps (parallel over 96 / 96 / 120 trips), an RHS, an update,
  //   and serial boundary conditions worth ~1.5% of the work.
  llp::model::WorkTrace trace;
  const double point_flops = 900.0;
  const double points = 200.0 * 120.0 * 96.0;
  trace.loops.push_back(LoopWork{"rhs", 0.35 * points * point_flops, 96, 1, true, 0});
  trace.loops.push_back(LoopWork{"sweep_j", 0.2 * points * point_flops, 96, 1, true, 0});
  trace.loops.push_back(LoopWork{"sweep_k", 0.2 * points * point_flops, 96, 1, true, 0});
  trace.loops.push_back(LoopWork{"sweep_l", 0.2 * points * point_flops, 120, 1, true, 0});
  trace.loops.push_back(LoopWork{"update", 0.035 * points * point_flops, 96, 1, true, 0});
  trace.loops.push_back(LoopWork{"bc", 0.015 * points * point_flops, 1, 1, false, 0});

  std::printf("hand-described solver: %.0fM flops/step, serial fraction %.1f%%\n\n",
              trace.total_flops() / 1e6, 100.0 * trace.serial_fraction());

  const llp::model::MachineConfig machines[] = {
      llp::model::origin2000_r12k_300(), llp::model::sun_hpc10000(),
      llp::model::hp_v2500(), llp::model::convex_spp1000()};

  for (const auto& m : machines) {
    llp::simsmp::SmpSimulator sim(m);
    std::vector<int> counts;
    for (int p = 1; p <= m.max_processors; p *= 2) counts.push_back(p);
    if (counts.back() != m.max_processors) counts.push_back(m.max_processors);
    std::printf("%s\n",
                llp::simsmp::SmpSimulator::format_sweep(m.name,
                                                        sim.sweep(trace, counts))
                    .c_str());
  }

  // Where do the stair-step plateaus sit for the limiting loop?
  std::printf("speedup jump points for the 96-trip sweeps (p <= 64): ");
  for (int j : llp::model::speedup_jump_points(96, 64)) std::printf("%d ", j);
  std::printf(
      "\n\nRules of thumb encoded here (paper §3-§4): parallelize outer\n"
      "loops, keep sync below 1%% (Table 1), expect flats between n/k jump\n"
      "points (Table 3), and watch the serial BC tail at high processor\n"
      "counts.\n");
  return 0;
}
