// Projectile-like supersonic flow on a 3-zone grid — the application
// domain the paper's F3D work came from (Army Research Laboratory
// projectile aerodynamics).
//
// A Mach-2 stream at 2 degrees angle of attack flows over a slip wall
// (the body surface proxy) on a three-zone grid with the paper's 1M-case
// zone proportions. The run converges toward steady state; the example
// prints the residual history, the time steps/hour metric the paper
// prefers, and the final flat profile.
//
// Build & run:  ./build/examples/projectile_flow
#include <cstdio>

#include "core/llp.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"

int main() {
  llp::set_num_threads(2);

  // The paper's 1M-point case at 1/5 scale: zones 3/17/18 x 15 x 14
  // become 8k points — laptop-sized but with the real zonal structure.
  auto spec = f3d::paper_1m_case(0.2);
  spec.freestream.mach = 2.0;
  spec.freestream.alpha_deg = 2.0;
  auto grid = f3d::build_grid(spec);
  f3d::add_kmin_wall(grid);  // body surface under the flow

  std::printf("projectile flow: %d zones, %zu points, M=%.1f alpha=%.1f deg\n",
              grid.num_zones(), grid.total_points(), spec.freestream.mach,
              spec.freestream.alpha_deg);
  for (int z = 0; z < grid.num_zones(); ++z) {
    std::printf("  zone %d: %d x %d x %d\n", z, grid.zone(z).jmax(),
                grid.zone(z).kmax(), grid.zone(z).lmax());
  }

  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = 2.0;
  cfg.region_prefix = "proj";
  f3d::Solver solver(grid, cfg);

  f3d::RunHistory history;
  llp::perf::Timer wall;
  const int steps = 60;
  for (int i = 0; i < steps; ++i) {
    solver.step();
    history.record(solver.residual(), f3d::checksum(grid));
    if (i % 10 == 0 || i == steps - 1) {
      std::printf("step %3d  residual %.4e\n", i, solver.residual());
    }
  }
  const double per_step = wall.elapsed() / steps;

  std::printf("\nconverging: %s (first-quarter vs last-quarter residual)\n",
              f3d::residual_decreasing(history) ? "yes" : "no");
  std::printf("performance: %.1f time steps/hour, %.1f MFLOPS on this host\n",
              llp::perf::time_steps_per_hour(per_step),
              llp::perf::mflops(solver.flops_per_step(), per_step));

  std::printf("\nflat profile (what the paper's prof/SpeedShop pass showed):\n%s",
              llp::regions().profile_report().c_str());
  return 0;
}
