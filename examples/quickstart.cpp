// Quickstart: parallelize loops with the llp runtime.
//
// Shows the three constructs you need for the paper's methodology —
// parallel_for / doacross on OUTER loops, parallel_reduce for norms, and
// serial_region for the cheap code you deliberately leave alone — plus the
// flat profile that tells you what to parallelize next.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/llp.hpp"
#include "util/array.hpp"

int main() {
  llp::set_num_threads(4);
  std::printf("llp quickstart with %d threads\n\n", llp::num_threads());

  // A 3-D field, Fortran order (first index fastest) like the paper's CFD
  // arrays.
  const int jmax = 64, kmax = 64, lmax = 48;
  llp::Array3D<double> a(jmax, kmax, lmax);

  // 1. A doacross loop: parallelize the OUTER (L) loop; the inner loops
  //    stay serial inside the body — paper Example 1. The region is
  //    registered by name, so it shows up in the profile below.
  llp::doacross("init", lmax, [&](std::int64_t l) {
    for (int k = 0; k < kmax; ++k) {
      for (int j = 0; j < jmax; ++j) {
        a(j, k, static_cast<int>(l)) = 0.01 * j + 0.1 * k + 1.0 * l;
      }
    }
  });

  // 2. A reduction across the same iteration space. Naming the region
  //    keeps the loop visible to the profiler and the dependence analyzer
  //    (llp_check flags an unlabeled call).
  const double sum = llp::parallel_reduce<double>(
      0, lmax, 0.0, [](double x, double y) { return x + y; },
      [&](std::int64_t l, double& acc) {
        for (int k = 0; k < kmax; ++k) {
          for (int j = 0; j < jmax; ++j) {
            acc += a(j, k, static_cast<int>(l));
          }
        }
      },
      llp::ForOptions::in_region(llp::regions().define("field_sum")));
  std::printf("field sum = %.6e\n", sum);

  // 3. Cheap boundary work stays serial — Table 2 says a face offers too
  //    little work per synchronization event to be worth a fork-join.
  llp::serial_region("boundary_fixup", [&] {
    for (int k = 0; k < kmax; ++k) {
      for (int j = 0; j < jmax; ++j) {
        a(j, k, 0) = a(j, k, 1);
        a(j, k, lmax - 1) = a(j, k, lmax - 2);
      }
    }
  });

  // 4. Schedules other than the C$doacross default are one option away:
  //    the ForOptions builder names each knob at the call site.
  const llp::ForOptions dynamic_opts =
      llp::ForOptions{}.with_schedule(llp::Schedule::kDynamic).with_chunk(2);
  std::vector<double> norms(static_cast<std::size_t>(lmax));
  llp::parallel_for(
      0, lmax,
      [&](std::int64_t l) {
        double s = 0.0;
        for (int k = 0; k < kmax; ++k) {
          for (int j = 0; j < jmax; ++j) {
            const double v = a(j, k, static_cast<int>(l));
            s += v * v;
          }
        }
        norms[static_cast<std::size_t>(l)] = s;
      },
      dynamic_opts);
  std::printf("plane 0 sum of squares = %.6e\n", norms[0]);

  // 5. The flat profile — the tool that drives incremental
  //    parallelization (profile, parallelize the top entry, repeat).
  std::printf("\nflat profile:\n%s", llp::regions().profile_report().c_str());

  // 6. Any region can be flipped back to serial execution without touching
  //    the loop — handy while validating one change at a time.
  const auto id = llp::regions().find("init");
  llp::regions().set_parallel_enabled(id, false);
  llp::doacross(id, lmax, [&](std::int64_t l) {
    for (int k = 0; k < kmax; ++k)
      for (int j = 0; j < jmax; ++j) a(j, k, static_cast<int>(l)) += 1.0;
  });
  std::printf("\nregion 'init' re-ran serially (incremental-parallelization "
              "switch).\n");
  return 0;
}
