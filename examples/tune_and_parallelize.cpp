// The paper's §4 workflow, end to end, on the real solver:
//
//   1. run serially and profile (prof);
//   2. parallelize the most expensive loops ONE AT A TIME (the luxury
//      loop-level parallelism has over all-or-nothing MPI/HPF);
//   3. after every change, validate that the answer did not move
//      (checksums against the serial baseline — §6's discipline);
//   4. watch the predicted scaling on a 128-processor Origin 2000 improve
//      with each enabled loop.
//
// Build & run:  ./build/examples/tune_and_parallelize
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "perf/trace_builder.hpp"
#include "simsmp/smp_simulator.hpp"

namespace {

constexpr const char* kPrefix = "tap";
constexpr int kSteps = 3;

struct RunResult {
  std::uint64_t checksum = 0;
  double predicted_speedup_p64 = 0.0;
  std::vector<llp::RegionStats> profile;
};

// Fresh grid, chosen loops enabled, kSteps steps, then checksum + a
// full-size scaling prediction from the measured trace.
RunResult run_experiment(const f3d::CaseSpec& spec,
                         const std::set<std::string>& enabled) {
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.region_prefix = kPrefix;
  f3d::Solver solver(grid, cfg);

  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind(std::string(kPrefix) + ".", 0) == 0 &&
        r.kind == llp::RegionKind::kParallelLoop) {
      llp::regions().set_parallel_enabled(llp::regions().find(r.name),
                                          enabled.count(r.name) != 0);
    }
  }

  llp::regions().reset_stats();
  solver.run(kSteps);

  RunResult out;
  out.checksum = f3d::checksum(grid);
  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind(std::string(kPrefix) + ".", 0) == 0 &&
        r.invocations > 0) {
      out.profile.push_back(r);
    }
  }
  const auto trace = llp::model::scale_trace(
      llp::perf::build_trace(out.profile, kSteps), 1000.0, 10.0);
  llp::simsmp::SmpSimulator sim(llp::model::origin2000_r12k_300());
  out.predicted_speedup_p64 = sim.run(trace, 64).speedup;
  return out;
}

}  // namespace

int main() {
  const auto spec = f3d::paper_1m_case(0.1);

  // Step 1: serial baseline + profile.
  const RunResult baseline = run_experiment(spec, {});
  std::printf(
      "serial baseline: checksum %016llx, predicted p=64 speedup %.2fx\n\n",
      static_cast<unsigned long long>(baseline.checksum),
      baseline.predicted_speedup_p64);

  // The profile, hottest first — what prof/SpeedShop gave the authors.
  std::vector<llp::RegionStats> loops;
  for (const auto& r : baseline.profile) {
    if (r.kind == llp::RegionKind::kParallelLoop) loops.push_back(r);
  }
  std::sort(loops.begin(), loops.end(),
            [](const auto& a, const auto& b) { return a.seconds > b.seconds; });

  // Steps 2-4: enable one loop at a time, hottest first; validate; watch
  // the prediction climb.
  std::printf("%-24s %12s %20s %10s\n", "loop enabled (cum.)", "profile s",
              "predicted p=64", "answer");
  std::set<std::string> enabled;
  for (const auto& loop : loops) {
    enabled.insert(loop.name);
    const RunResult r = run_experiment(spec, enabled);
    std::printf("%-24s %12.6f %19.2fx %10s\n",
                loop.name.c_str() + std::string(kPrefix).size() + 1,
                loop.seconds, r.predicted_speedup_p64,
                r.checksum == baseline.checksum ? "unchanged" : "CHANGED!");
  }

  std::printf(
      "\nEvery parallelization step left the solution bit-identical to the\n"
      "serial baseline, and each enabled loop raised the predicted\n"
      "full-size speedup. The bc/exchange regions stay serial on purpose\n"
      "(Table 2); they are the small Amdahl tail in the final number.\n");
  return 0;
}
