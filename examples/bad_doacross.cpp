// bad_doacross — every classic doacross-legality mistake in one file, so
// both analyzer modes can be seen catching them:
//
//   * static:   llp_check lint examples/bad_doacross.cpp   exits 1 with
//               missing-region, shifted-index-write, captured-shared-write
//               and captured-reduction findings;
//   * dynamic:  running this binary exits 1, printing the loop-carried
//               dependence (exact region, lanes, and conflicting index
//               intervals) and the shared plane scratch the pencil rule
//               forbids;
//   * affine:   the declared access signatures classify bad.recurrence as
//               DOACROSS(d=1) and bad.stride_alias — a stride-aliased
//               write that this binary deliberately runs on ONE thread, so
//               the dynamic checker never sees it race — as carried too.
//               Only the static dependence tests catch Bug 4.
//
// Everything here is a bug on purpose. Do NOT use as a template; the
// correct versions of these loops are in examples/quickstart.cpp.
//
// Build & run:  ./build/examples/bad_doacross   (expected exit code: 1)
#include <cstdio>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/static/affine.hpp"
#include "analyze/static/registry.hpp"
#include "core/access_span.hpp"
#include "core/doacross.hpp"
#include "core/parallel_for.hpp"

namespace {

/// Declare the true affine shapes of the seeded loops so the static pass
/// can judge them without running anything. bad.recurrence's signature is
/// honest (W a[i], R a[i-1]); bad.stride_alias's is the canary the dynamic
/// mode cannot reach.
void declare_bad_signatures(std::int64_t recurrence_trips,
                            std::int64_t alias_trips) {
  using llp::analyze::AffineAccess;
  using llp::analyze::AffineSignature;

  AffineSignature recurrence;
  recurrence.trips = recurrence_trips;
  recurrence.accesses.push_back(AffineAccess::write("a", 1, 0));
  recurrence.accesses.push_back(AffineAccess::read("a", 1, -1));
  llp::analyze::declare_access("bad.recurrence", std::move(recurrence));

  // W b[2i] overlaps W b[2(i+1)] one iteration later: a carried output
  // dependence at distance 1 that serial execution hides from the logger.
  AffineSignature alias;
  alias.trips = alias_trips;
  alias.accesses.push_back(AffineAccess::write("b", 2, 0));
  alias.accesses.push_back(AffineAccess::write("b", 2, 2));
  llp::analyze::declare_access("bad.stride_alias", std::move(alias));
}

}  // namespace

int main() {
  // Deterministic lane layout: the seeded conflicts below sit on the
  // static-block partition boundaries of exactly four lanes.
  llp::set_num_threads(4);
  llp::analyze::install();

  // --- Bug 1: a first-order recurrence parallelized over its own
  // --- recurrence direction. a[i] needs a[i-1], so the first iteration of
  // --- every lane but lane 0 reads an element another lane writes: a
  // --- loop-carried dependence, reported with the exact index.
  constexpr std::int64_t kN = 1 << 14;
  std::vector<double> a(static_cast<std::size_t>(kN), 1.0);
  llp::doacross("bad.recurrence", kN,
                [&](std::int64_t i, const llp::LaneContext& ctx) {
                  llp::AccessSpan<double> as(a.data(), kN, ctx, "a");
                  if (i > 0) as.wr(i) = 0.5 * (as.rd(i) + as.rd(i - 1));
                });

  // --- Bug 2: a shared plane-sized scratch buffer written by every lane
  // --- (the vector organization's plane buffer), plus an unsynchronized
  // --- accumulation into a by-reference capture. The scratch must be a
  // --- per-lane pencil; the sum must be a parallel_reduce.
  constexpr int kJ = 96, kK = 96, kL = 48;
  std::vector<double> plane(static_cast<std::size_t>(kJ) * kK, 0.0);
  double checksum = 0.0;
  llp::doacross("bad.plane_scratch", kL,
                [&](std::int64_t l, const llp::LaneContext& ctx) {
                  ctx.note_scratch(plane.data(),
                                   plane.size() * sizeof(double));
                  plane[0] = static_cast<double>(l);
                  checksum += plane[0];
                });

  // --- Bug 3: raw index arithmetic through an unlabeled loop. The write
  // --- to raw[i - 1] bypasses any logged accessor AND the loop has no
  // --- region, so only the static linter can see it.
  double* raw = a.data();
  llp::parallel_for(1, kN, [&](std::int64_t i) { raw[i - 1] = raw[i]; });

  // --- Bug 4: a stride-aliased affine write — b[2i] this iteration collides
  // --- with b[2i+2] written by the PREVIOUS iteration — deliberately run on
  // --- one thread. One lane means the dynamic checker can never observe a
  // --- cross-lane conflict, so only the static GCD/Banerjee tests (over the
  // --- signature declared above) flag this loop: the affine canary.
  constexpr std::int64_t kM = 1 << 10;
  std::vector<double> b(static_cast<std::size_t>(2 * kM + 2), 0.0);
  declare_bad_signatures(kN, kM);
  llp::doacross(
      "bad.stride_alias", kM,
      [&](std::int64_t i, const llp::LaneContext& ctx) {
        llp::AccessSpan<double> bs(b.data(),
                                   static_cast<std::int64_t>(b.size()), ctx,
                                   "b");
        bs.wr(2 * i) = static_cast<double>(i);
        bs.wr(2 * i + 2) = static_cast<double>(i) + 0.5;
      },
      llp::ForOptions{}.with_threads(1));

  auto* logger = llp::analyze::global_logger();
  std::printf("%s", logger->report().c_str());
  std::printf("checksum (racy, do not trust): %g\n", checksum);

  // The static half of the verdict: classify every declared bad.* region.
  std::size_t static_flags = 0;
  for (const auto& row : llp::analyze::classification_table()) {
    const llp::analyze::StaticVerdict& v = row.verdict;
    std::printf("static %s: %s\n", row.region.c_str(),
                v.class_string().c_str());
    if (!v.parallel_ok()) {
      ++static_flags;
      for (const llp::analyze::DepWitness& w : v.witnesses) {
        std::printf("  carried dep on %s: %s\n", w.array.c_str(),
                    w.detail.c_str());
      }
    }
  }
  std::printf("static: %zu region(s) carried a dependence\n", static_flags);

  // A demo of bugs has succeeded when both analyzer modes failed the run:
  // the dynamic logger on Bugs 1-2, the static classifier on Bugs 1 and 4.
  return (logger->num_findings() > 0 || static_flags > 0) ? 1 : 0;
}
