// bad_doacross — every classic doacross-legality mistake in one file, so
// both analyzer modes can be seen catching them:
//
//   * static:   llp_check lint examples/bad_doacross.cpp   exits 1 with
//               missing-region, shifted-index-write, captured-shared-write
//               and captured-reduction findings;
//   * dynamic:  running this binary exits 1, printing the loop-carried
//               dependence (exact region, lanes, and conflicting index
//               intervals) and the shared plane scratch the pencil rule
//               forbids.
//
// Everything here is a bug on purpose. Do NOT use as a template; the
// correct versions of these loops are in examples/quickstart.cpp.
//
// Build & run:  ./build/examples/bad_doacross   (expected exit code: 1)
#include <cstdio>
#include <vector>

#include "analyze/analyzer.hpp"
#include "core/access_span.hpp"
#include "core/doacross.hpp"
#include "core/parallel_for.hpp"

int main() {
  // Deterministic lane layout: the seeded conflicts below sit on the
  // static-block partition boundaries of exactly four lanes.
  llp::set_num_threads(4);
  llp::analyze::install();

  // --- Bug 1: a first-order recurrence parallelized over its own
  // --- recurrence direction. a[i] needs a[i-1], so the first iteration of
  // --- every lane but lane 0 reads an element another lane writes: a
  // --- loop-carried dependence, reported with the exact index.
  constexpr std::int64_t kN = 1 << 14;
  std::vector<double> a(static_cast<std::size_t>(kN), 1.0);
  llp::doacross("bad.recurrence", kN,
                [&](std::int64_t i, const llp::LaneContext& ctx) {
                  llp::AccessSpan<double> as(a.data(), kN, ctx, "a");
                  if (i > 0) as.wr(i) = 0.5 * (as.rd(i) + as.rd(i - 1));
                });

  // --- Bug 2: a shared plane-sized scratch buffer written by every lane
  // --- (the vector organization's plane buffer), plus an unsynchronized
  // --- accumulation into a by-reference capture. The scratch must be a
  // --- per-lane pencil; the sum must be a parallel_reduce.
  constexpr int kJ = 96, kK = 96, kL = 48;
  std::vector<double> plane(static_cast<std::size_t>(kJ) * kK, 0.0);
  double checksum = 0.0;
  llp::doacross("bad.plane_scratch", kL,
                [&](std::int64_t l, const llp::LaneContext& ctx) {
                  ctx.note_scratch(plane.data(),
                                   plane.size() * sizeof(double));
                  plane[0] = static_cast<double>(l);
                  checksum += plane[0];
                });

  // --- Bug 3: raw index arithmetic through an unlabeled loop. The write
  // --- to raw[i - 1] bypasses any logged accessor AND the loop has no
  // --- region, so only the static linter can see it.
  double* raw = a.data();
  llp::parallel_for(1, kN, [&](std::int64_t i) { raw[i - 1] = raw[i]; });

  auto* logger = llp::analyze::global_logger();
  std::printf("%s", logger->report().c_str());
  std::printf("checksum (racy, do not trust): %g\n", checksum);

  // A demo of bugs has succeeded when the analyzer failed the run.
  return logger->num_findings() > 0 ? 1 : 0;
}
