// Cost of the fault-tolerance machinery on the healthy path: an installed
// injector whose plan never matches adds one begin() plus one on_lane() per
// lane to every instrumented loop, and the cooperative cancel poll rides
// every chunk boundary. Both must stay far below the fork-join cost itself
// (Table 1's floor) for the robustness layer to be free in production.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/llp.hpp"
#include "fault/injector.hpp"

namespace {

llp::RegionId bench_region() {
  static const llp::RegionId r = llp::regions().define("bench.fault.loop");
  return r;
}

void run_loop(std::int64_t n, std::vector<double>& out) {
  llp::parallel_for(
      0, n, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * 0.5; },
      llp::ForOptions::in_region(bench_region())
          .with_schedule(llp::Schedule::kDynamic)
          .with_chunk(64)
          .with_threads(2));
}

void BM_InstrumentedForNoHook(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    run_loop(n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InstrumentedForNoHook)->Arg(1000)->Arg(100000);

void BM_InstrumentedForWithIdleInjector(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  // A real plan that never matches this loop's region: the per-invocation
  // hook cost without any fault actually firing.
  llp::fault::Injector inj(
      llp::fault::FaultPlan::parse("throw:bench.fault.other:0:0"));
  llp::fault::install(&inj);
  for (auto _ : state) {
    run_loop(n, out);
    benchmark::DoNotOptimize(out.data());
  }
  llp::fault::install(nullptr);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["faults"] = static_cast<double>(inj.faults_injected());
}
BENCHMARK(BM_InstrumentedForWithIdleInjector)->Arg(1000)->Arg(100000);

void BM_FaultPlanParse(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = llp::fault::FaultPlan::parse(
        "nan:run.z0.rhs:6:0:array=q0;delay:z0.sweep_j:*:2:delay=20:count=5;"
        "seed=42");
    benchmark::DoNotOptimize(&plan);
  }
}
BENCHMARK(BM_FaultPlanParse);

}  // namespace

BENCHMARK_MAIN();
