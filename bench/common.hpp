// Shared machinery for the bench binaries. The measure-and-extrapolate
// method itself lives in the library (f3d/case_trace.hpp); this header
// just re-exports it into the bench namespace plus a heading helper.
#pragma once

#include <cstdio>
#include <string>

#include "f3d/case_trace.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "model/scaling.hpp"
#include "perf/trace_builder.hpp"

namespace bench {

inline llp::model::WorkTrace measure_full_size_trace(
    const f3d::CaseSpec& scaled, const f3d::CaseSpec& full,
    const std::string& prefix, int steps = 3) {
  return f3d::measure_full_size_trace(scaled, full, prefix, steps);
}

/// Print a heading in a uniform style.
inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
