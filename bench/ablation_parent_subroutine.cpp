// Ablation for §4 Example 3: hoisting the parallel directive from a
// callee's loop into a (possibly newly created) loop in the parent
// subroutine. The original code forks inside SUBB once per J iteration;
// the restructured code forks once, with each thread running its share of
// the J loop and calling SUBA/SUBB serially on cache-sized 1-D buffers.
// The paper: "in general this optimization reduces the number of
// synchronization events by 1-3 orders of magnitude".
#include <cstdio>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — Example 3, parallelizing a parent subroutine "
      "(J loop of 100 calls; SGI Origin 2000)");

  const auto machine = llp::model::origin2000_r12k_300();
  // F3D's J sweep over the 59M case's first zone (15 x 450 x 350) at
  // ~200 cycles/point. The original code loops over the 350 L planes in
  // the parent and forks inside the callee (parallel over the plane's 450
  // K lines); the restructured code forks once over L in the parent, with
  // each thread calling SUBA/SUBB serially on pencil buffers.
  const int lmax = 350, kmax = 450, jmax = 15;
  const double cycles_total =
      static_cast<double>(jmax) * kmax * lmax * 200.0;
  const double flops_total =
      cycles_total / machine.clock_hz * machine.sustained_mflops_per_proc *
      1e6;

  llp::model::WorkTrace callee;
  callee.loops.push_back(llp::model::LoopWork{
      "subb_inner", flops_total, kmax, static_cast<double>(lmax), true, 0.0});

  llp::model::WorkTrace parent;
  parent.loops.push_back(llp::model::LoopWork{
      "parent_l", flops_total, lmax, 1.0, true, 0.0});

  llp::simsmp::SmpSimulator sim(machine);
  llp::Table t({"procs", "callee-fork s/step", "callee sync s",
                "parent-fork s/step", "parent sync s", "gain"});
  for (int p : {2, 8, 32, 64, 128}) {
    const auto tc = sim.run(callee, p);
    const auto tp = sim.run(parent, p);
    t.add_row({std::to_string(p), llp::strfmt("%.5f", tc.seconds_per_step),
               llp::strfmt("%.5f", tc.breakdown.sync_s),
               llp::strfmt("%.5f", tp.seconds_per_step),
               llp::strfmt("%.5f", tp.breakdown.sync_s),
               llp::strfmt("%.1f%%",
                           100.0 * (tc.seconds_per_step - tp.seconds_per_step) /
                               tc.seconds_per_step)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nThe hoist cuts fork-joins from 350 per sweep to 1 — the paper's\n"
      "'1-3 orders of magnitude' — and the saving grows from noise at 2\n"
      "processors to a large fraction of the step at 128, where the\n"
      "callee version spends more time synchronizing than computing. The\n"
      "available parallelism changes only from 450 (K lines) to 350 (L\n"
      "planes), so the stair-step penalty is minor; hoisting above a loop\n"
      "with too few trips would instead trade sync for stair-step (the\n"
      "paper's caveat).\n");
  return 0;
}
