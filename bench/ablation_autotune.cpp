// Ablation — autotuned vs hand-picked vs worst-case loop configuration.
//
// The paper's humans picked each loop's schedule once, from prof output.
// src/tune automates that choice online. This bench runs the deterministic
// skewed-cost workload from ablation_schedules (triangular weights: the
// boundary-layer-clustering case where the C$doacross static default is at
// its worst), exhaustively measures every candidate configuration, then
// lets the Tuner search the same space and reports how close its converged
// choice lands to the exhaustive optimum — and how far the worst
// configuration (what a wrong hand-pick costs) is from both.
//
// On a host with few cores the absolute spreads are modest (scheduling
// quality matters most at high lane counts); the point is the mechanism:
// the tuner reaches within a few percent of the exhaustive best using a
// bounded number of the loop's own invocations.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "common.hpp"
#include "core/llp.hpp"
#include "tune/candidates.hpp"
#include "tune/tuner.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

constexpr std::int64_t kTrips = 96;
constexpr std::int64_t kSpinPerUnit = 600;

// Triangular iteration weights: w_i = i+1, the skew static block mishandles.
std::vector<double> weights() {
  std::vector<double> w;
  for (std::int64_t i = 0; i < kTrips; ++i) {
    w.push_back(static_cast<double>(i + 1));
  }
  return w;
}

double run_once(const std::vector<double>& w, const llp::ForOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  llp::parallel_for(
      0, kTrips,
      [&](std::int64_t i) {
        volatile double x = 0.0;
        const auto spins = static_cast<std::int64_t>(
            w[static_cast<std::size_t>(i)] * kSpinPerUnit);
        for (std::int64_t s = 0; s < spins; ++s) x = x + 1.0;
      },
      opts);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

double measure(const std::vector<double>& w, const llp::LoopConfig& c,
               int reps = 3) {
  const llp::ForOptions opts = llp::ForOptions{}
                                   .with_schedule(c.schedule)
                                   .with_chunk(c.chunk)
                                   .with_threads(c.num_threads);
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, run_once(w, opts));
  return best;
}

std::string config_name(const llp::LoopConfig& c) {
  return llp::strfmt("%s chunk=%lld nt=%d",
                     std::string(llp::tune::schedule_name(c.schedule)).c_str(),
                     static_cast<long long>(c.chunk), c.num_threads);
}

}  // namespace

int main() {
  bench::heading(
      "Ablation — autotuner vs hand-picked vs worst-case configuration "
      "(triangular skew, measured wall time)");

  const std::vector<double> w = weights();
  // Fixed lane count regardless of host cores (this repo's usual pattern:
  // threads exercise correctness and scheduling overhead; speed claims
  // route through simsmp). On few-core hosts the spread between rows is
  // scheduling + oversubscription overhead, which is real tuning signal.
  const int lanes = 4;
  llp::set_num_threads(lanes);

  // Exhaustive sweep over the tuner's own candidate space.
  const auto candidates = llp::tune::candidate_configs(kTrips, lanes);
  std::vector<double> times;
  std::size_t best_i = 0, worst_i = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    times.push_back(measure(w, candidates[i]));
    if (times[i] < times[best_i]) best_i = i;
    if (times[i] > times[worst_i]) worst_i = i;
  }

  // The hand-picked default: the C$doacross static block at full lanes
  // (candidate 0 by construction).
  const std::size_t hand_i = 0;

  // The tuner searches the same space online, on the loop's own
  // invocations (successive halving, as a tuning session would).
  llp::tune::TunerOptions topts;
  topts.policy = llp::tune::Policy::kSuccessiveHalving;
  topts.max_threads = lanes;
  llp::tune::Tuner tuner(topts);
  auto& rt = llp::Runtime::instance();
  rt.set_tuner(&tuner);
  rt.set_auto_tune_enabled(true);
  const auto region = llp::regions().define("autotune.triangular");
  const llp::ForOptions auto_opts = llp::ForOptions::auto_tuned(region);
  int invocations = 0;
  while (!tuner.converged(region, kTrips) && invocations < 128) {
    run_once(w, auto_opts);
    ++invocations;
  }
  rt.set_tuner(nullptr);
  rt.set_auto_tune_enabled(false);
  const llp::LoopConfig tuned = tuner.best(region, kTrips);
  const double tuned_time = measure(w, tuned);

  llp::Table t({"configuration", "how chosen", "time (ms)", "vs best"});
  auto row = [&](const std::string& how, const llp::LoopConfig& c, double s) {
    t.add_row({config_name(c), how, llp::strfmt("%.3f", s * 1e3),
               llp::strfmt("%.2fx", s / times[best_i])});
  };
  row("exhaustive best", candidates[best_i], times[best_i]);
  row(llp::strfmt("autotuned (%d invocations)", invocations), tuned,
      tuned_time);
  row("hand-picked default", candidates[hand_i], times[hand_i]);
  row("exhaustive worst", candidates[worst_i], times[worst_i]);
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "\nThe tuner spends a bounded number of the loop's own invocations\n"
      "and lands on a configuration competitive with the exhaustive best;\n"
      "the worst-case row is the price of hand-picking wrongly. With\n"
      "LLP_TUNE=1 the converged choice persists in the .llp_tune DB and\n"
      "later runs start from it directly.\n");
  return 0;
}
