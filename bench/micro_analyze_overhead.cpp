// Cost of the loop-safety analyzer on the paper's fig2 1-million-point F3D
// case, in both states the design promises:
//
//   * analyzer OFF (the production default): every logging call in the
//     solver is one null-pointer check, so the instrumented accessors must
//     be free — the OFF run here is the reference the ON run is judged
//     against;
//   * analyzer ON: access logging is interval-granular (a handful of
//     on_access calls per plane/pencil task, never per element), so a
//     fully checked run must stay under 3x the plain run.
//
// The bench exits nonzero when either bound is violated, so CI fails on an
// overhead regression, and also prints how many region invocations the ON
// run actually checked (a zero would mean the guard proved nothing).
//
// Results also land as one JSON line in BENCH_micro.json (shared with the
// other micro benches; --out overrides the path).
//
//   micro_analyze_overhead [--scale S] [--steps N] [--repeats R] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analyze/analyzer.hpp"
#include "bench_json.hpp"
#include "common.hpp"
#include "util/format.hpp"

namespace {

double run_steps(const f3d::CaseSpec& spec, int steps) {
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  f3d::Solver solver(grid, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) solver.step();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / steps;
}

double best_of(const f3d::CaseSpec& spec, int steps, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double s = run_steps(spec, steps);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.12;
  int steps = 5;
  int repeats = 3;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--scale" && (v = next())) scale = std::atof(v);
    else if (a == "--steps" && (v = next())) steps = std::atoi(v);
    else if (a == "--repeats" && (v = next())) repeats = std::atoi(v);
    else if (a == "--out" && (v = next())) out = v;
    else {
      std::fprintf(stderr,
                   "usage: micro_analyze_overhead [--scale S] [--steps N] "
                   "[--repeats R] [--out PATH]\n");
      return 2;
    }
  }
  if (scale <= 0.0 || steps < 1 || repeats < 1) return 2;

  bench::heading(llp::strfmt(
      "Analyzer overhead — fig2 1M-point case at scale %.2f, %d steps, best "
      "of %d", scale, steps, repeats));
  const f3d::CaseSpec spec = f3d::paper_1m_case(scale);
  std::printf("grid: %zu points, %d threads\n\n", spec.total_points(),
              llp::num_threads());

  // Warm-up run: pools, allocators, page faults — off the books for both
  // configurations.
  (void)run_steps(spec, 1);

  llp::analyze::uninstall();
  const double off = best_of(spec, steps, repeats);

  llp::analyze::AccessLogger& logger = llp::analyze::install();
  const double on = best_of(spec, steps, repeats);
  const unsigned long long checked =
      static_cast<unsigned long long>(logger.invocations_checked());
  const std::size_t findings = logger.num_findings();
  llp::analyze::uninstall();

  const double ratio = on / off;

  std::printf("analyzer off : %9.3f ms/step\n", off * 1e3);
  std::printf("analyzer on  : %9.3f ms/step  (%.2fx, target < 3x)\n",
              on * 1e3, ratio);
  std::printf("checked      : %llu region invocation(s), %zu finding(s)\n\n",
              checked, findings);

  // The OFF cost is measured against the pre-analyzer baseline implicitly:
  // this binary IS the instrumented solver; a separate un-instrumented
  // build does not exist to compare against. What the guard can and does
  // pin down in-process: the ON/OFF ratio, that checking really happened,
  // and that a clean solver stays clean.
  bool ok = true;
  if (ratio >= 3.0) {
    std::fprintf(stderr,
                 "FAIL: analyzer-on overhead %.2fx exceeds the 3x budget\n",
                 ratio);
    ok = false;
  }
  if (checked == 0) {
    std::fprintf(stderr, "FAIL: analyzer-on run checked nothing\n");
    ok = false;
  }
  if (findings != 0) {
    std::fprintf(stderr, "FAIL: f3d step is expected to be race-free\n");
    ok = false;
  }
  bench::JsonRecord rec;
  rec.set("bench", "micro_analyze_overhead")
      .set("scale", scale)
      .set("steps", steps)
      .set("repeats", repeats)
      .set("threads", llp::num_threads())
      .set("off_ms_per_step", off * 1e3)
      .set("on_ms_per_step", on * 1e3)
      .set("ratio", ratio)
      .set("budget_ratio", 3.0)
      .set("checked", checked)
      .set("findings", static_cast<unsigned long long>(findings))
      .set("ok", ok);
  if (!bench::upsert_json_line(out, "micro_analyze_overhead", rec)) {
    std::fprintf(stderr, "micro_analyze_overhead: cannot write %s\n",
                 out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  std::printf("%s\n", ok ? "analyze overhead: OK" : "analyze overhead: FAIL");
  return ok ? 0 : 1;
}
