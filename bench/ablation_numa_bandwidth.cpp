// Ablation for §7 (NUMA) and §8 (software DSM): usable per-processor
// bandwidth from coherence granularity and latency, and the headroom check
// that let the paper treat the Origin 2000 as UMA.
#include <cstdio>

#include "common.hpp"
#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "model/numa.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — §7/§8: latency-limited per-processor bandwidth "
      "(bw = line_bytes / latency)");

  llp::Table t({"memory system", "line B", "latency ns", "usable MB/s"});
  auto row = [&](const char* name, double line, double lat) {
    t.add_row({name, llp::strfmt("%.0f", line), llp::with_commas(
                   static_cast<long long>(lat)),
               llp::strfmt("%.1f",
                           llp::model::latency_limited_bandwidth_mbs(line, lat))});
  };
  row("Origin 2000, local", 128, 310);
  row("Origin 2000, farthest node", 128, 945);
  row("Origin 2000, off-node overlapped", 128, 128.0 / 195.0 * 1000.0);
  row("Convex Exemplar, cross-hypernode", 64, 4000);
  row("software DSM over cluster", 128, 100000);
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nThe paper's §7 numbers: 412 MB/s down to 135 MB/s without overlap,\n"
      "~195 MB/s off-node with overlap; §8's SDSM: 1.3 MB/s — 'virtually\n"
      "impossible to overcome'.\n");

  bench::heading(
      "Headroom check: the tuned solver's per-processor traffic vs those "
      "limits");

  // Measure the solver's traffic estimate and simulated per-step time on
  // the Origin at several processor counts.
  const auto scaled = f3d::paper_1m_case(0.12);
  const auto full = f3d::paper_1m_case(1.0);
  const auto trace = bench::measure_full_size_trace(scaled, full, "numa");
  const auto numa = llp::model::origin2000_numa();
  llp::simsmp::SmpSimulator sim(llp::model::origin2000_r12k_300());

  llp::Table h({"procs", "s/step", "traffic MB/s/proc", "worst-case limit",
                "UMA-like?"});
  for (int p : {1, 16, 64, 128}) {
    const auto pt = sim.run(trace, p);
    const double mbs =
        trace.total_bytes() / pt.seconds_per_step / 1e6 / p;
    h.add_row({std::to_string(p), llp::strfmt("%.2f", pt.seconds_per_step),
               llp::strfmt("%.1f", mbs),
               llp::strfmt("%.0f MB/s", numa.remote_bandwidth_mbs()),
               numa.uma_like(mbs) ? "yes" : "NO"});
  }
  std::printf("%s", h.to_string().c_str());
  std::printf(
      "\nThe paper measured 68 MB/s of traffic for the tuned F3D on a\n"
      "180 MHz Origin 200 — 'far less than the 135-195 MB/second of usable\n"
      "bandwidth', so the ccNUMA machine could be treated as UMA. The same\n"
      "headroom argument holds for this solver's pencil organization. On\n"
      "the Exemplar (16 MB/s usable cross-hypernode) the identical traffic\n"
      "does NOT fit — the paper's unsolved Exemplar performance problems.\n");
  return 0;
}
