// Reproduces paper Table 2: the available amount of work (in cycles) per
// synchronization event for a 1-million grid point zone, by grid shape,
// parallelized loop level, and work per grid point (10/100/1000 cycles).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "model/work_per_sync.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using llp::model::LoopLevel;
  bench::heading(
      "Table 2 — available work (cycles) per synchronization event, "
      "1-million grid point zone");

  const std::vector<std::int64_t> work = {10, 100, 1000};

  llp::Table t({"problem type", "grid", "parallelized loop", "w=10", "w=100",
                "w=1,000"});

  auto row = [&](const char* type, const char* grid, const char* loop,
                 auto fn) {
    std::vector<std::string> cells = {type, grid, loop};
    for (std::int64_t w : work) cells.push_back(llp::with_commas(fn(w)));
    t.add_row(cells);
  };

  row("1-D", "1,000,000", "the loop", [](std::int64_t w) {
    return llp::model::work_per_sync_1d(1000000, w);
  });
  row("2-D", "1,000 x 1,000", "inner", [](std::int64_t w) {
    return llp::model::work_per_sync_2d(1000, 1000, LoopLevel::kInner, w);
  });
  row("2-D", "1,000 x 1,000", "outer", [](std::int64_t w) {
    return llp::model::work_per_sync_2d(1000, 1000, LoopLevel::kOuter, w);
  });
  row("2-D", "1,000 x 1,000", "boundary", [](std::int64_t w) {
    return llp::model::work_per_sync_1d(1000, w);
  });
  row("3-D", "100 x 100 x 100", "inner", [](std::int64_t w) {
    return llp::model::work_per_sync_3d(100, 100, 100, LoopLevel::kInner, w);
  });
  row("3-D", "100 x 100 x 100", "middle", [](std::int64_t w) {
    return llp::model::work_per_sync_3d(100, 100, 100, LoopLevel::kMiddle, w);
  });
  row("3-D", "100 x 100 x 100", "outer", [](std::int64_t w) {
    return llp::model::work_per_sync_3d(100, 100, 100, LoopLevel::kOuter, w);
  });
  row("3-D", "100 x 100 x 100", "bc inner", [](std::int64_t w) {
    return llp::model::work_per_sync_boundary(100, 100, LoopLevel::kInner, w);
  });
  row("3-D", "100 x 100 x 100", "bc outer", [](std::int64_t w) {
    return llp::model::work_per_sync_boundary(100, 100, LoopLevel::kOuter, w);
  });

  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nMatches ARL-TR-2556 Table 2. The outer loop of a 3-D nest offers\n"
      "10,000x the work per sync of the inner loop — the reason this\n"
      "library parallelizes outer loops and leaves boundary-condition\n"
      "routines serial.\n");
  return 0;
}
