// Ablation for §4/§5 serial tuning: the vector organization (plane-sized
// scratch, transpose-style gathers) vs the RISC organization (pencil
// scratch that lives in cache), measured as real wall-clock on this host.
//
// The paper reports >10x from serial tuning on an SGI Power Challenge
// (1-2 MB caches, slow memory); on a modern host with large caches and
// fast prefetching DRAM the same restructuring yields a smaller but still
// decisive factor. The cache-simulator companion (ablation_buffer_tuning)
// shows the 1990s-cache picture.
#include <cstdio>

#include "common.hpp"
#include "simsmp/cache_sim.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "perf/timer.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

double time_mode(const f3d::CaseSpec& spec, f3d::EngineKind engine,
                 const std::string& prefix, int steps,
                 std::uint64_t* digest) {
  auto grid = f3d::build_grid(spec);
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.engine = engine;
  cfg.region_prefix = prefix;
  f3d::Solver s(grid, cfg);
  s.step();  // warm-up (allocations, page faults)
  llp::perf::Timer t;
  s.run(steps);
  const double dt = t.elapsed() / steps;
  *digest = f3d::checksum(grid);
  return dt;
}

}  // namespace

int main() {
  llp::set_num_threads(1);  // serial tuning comparison: no threading
  bench::heading(
      "Ablation — serial tuning: vector (plane-buffer) vs RISC "
      "(pencil-buffer) organization, wall-clock on this host, 1 thread");

  llp::Table t({"case", "points", "vector s/step", "risc s/step",
                "simd s/step", "speedup", "solutions agree"});
  struct Row {
    const char* name;
    f3d::CaseSpec spec;
    int steps;
  };
  const Row rows[] = {
      {"1M case @ 0.15 scale", f3d::paper_1m_case(0.15), 4},
      {"59M case @ 0.06 scale", f3d::paper_59m_case(0.06), 3},
      {"cube 48^3", f3d::wall_compression_case(48), 2},
  };
  for (const auto& r : rows) {
    std::uint64_t dv = 0, dr = 0, ds = 0;
    const double tv = time_mode(r.spec, f3d::EngineKind::kPlaneVector,
                                std::string("st.v.") + r.name, r.steps, &dv);
    const double tr = time_mode(r.spec, f3d::EngineKind::kPencilScalar,
                                std::string("st.r.") + r.name, r.steps, &dr);
    const double ts = time_mode(r.spec, f3d::EngineKind::kPencilSimd,
                                std::string("st.s.") + r.name, r.steps, &ds);
    // vector and risc are bit-identical; simd fuses multiply-adds, so its
    // checksum may differ by rounding — the equivalence tests bound it.
    t.add_row({r.name, llp::with_commas(static_cast<long long>(
                           r.spec.total_points())),
               llp::strfmt("%.4f", tv), llp::strfmt("%.4f", tr),
               llp::strfmt("%.4f", ts),
               llp::strfmt("%.2fx", tv / tr), dv == dr ? "yes" : "NO"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nBoth organizations compute bit-identical solutions (the paper's\n"
      "requirement of not changing the algorithm); only the memory\n"
      "behaviour differs. On this modern host (105 MB L3, aggressive\n"
      "prefetch, SIMD) the legacy plane organization is competitive —\n"
      "caches grew ~100x since 1999. The paper-era picture follows.\n");

  bench::heading(
      "Same sweep replayed through a period RISC memory hierarchy "
      "(pixie-style cycle estimate; 32 KB L1 / 1 MB L2 / 250-cycle DRAM)");

  using llp::simsmp::HierarchyCosts;
  using llp::simsmp::MemoryHierarchy;
  HierarchyCosts costs;
  costs.memory_cycles = 250.0;  // Power-Challenge-class DRAM latency

  auto simulate = [&](int line_n, int inner_n, bool plane_buffers) {
    MemoryHierarchy mem({32 * 1024, 128, 2}, {1 << 20, 128, 4}, {64, 16384});
    const std::uint64_t q_base = 1ULL << 34;    // the zone's Q field
    const std::uint64_t r_base = 1ULL << 35;    // the rhs field
    const std::uint64_t s_base = 1ULL << 36;    // scratch
    const std::uint64_t qpt = 40;               // 5 doubles per point
    const std::uint64_t spt = 24 * 8;           // 24 scratch doubles/point
    auto point_index = [&](int i, int s) {
      return static_cast<std::uint64_t>(i) * inner_n + s;
    };
    if (plane_buffers) {
      // Phase 1: gather Q plane + write scratch plane; phase 2: scratch
      // plane again; phase 3: scratch plane + rhs plane.
      for (int i = 0; i < line_n; ++i)
        for (int s = 0; s < inner_n; ++s) {
          mem.access(q_base + point_index(i, s) * qpt, qpt);
          mem.access(s_base + point_index(i, s) * spt, spt);
        }
      for (int i = 0; i < line_n; ++i)
        for (int s = 0; s < inner_n; ++s)
          mem.access(s_base + point_index(i, s) * spt, spt);
      for (int i = 0; i < line_n; ++i)
        for (int s = 0; s < inner_n; ++s) {
          mem.access(s_base + point_index(i, s) * spt, spt);
          mem.access(r_base + point_index(i, s) * qpt, qpt);
        }
    } else {
      // Pencil: the same three phases line by line, one reused buffer.
      for (int s = 0; s < inner_n; ++s) {
        for (int i = 0; i < line_n; ++i) {
          mem.access(q_base + point_index(i, s) * qpt, qpt);
          mem.access(s_base + static_cast<std::uint64_t>(i) * spt, spt);
        }
        for (int i = 0; i < line_n; ++i)
          mem.access(s_base + static_cast<std::uint64_t>(i) * spt, spt);
        for (int i = 0; i < line_n; ++i) {
          mem.access(s_base + static_cast<std::uint64_t>(i) * spt, spt);
          mem.access(r_base + point_index(i, s) * qpt, qpt);
        }
      }
    }
    const double points = static_cast<double>(line_n) * inner_n;
    // ~200 flops/point of sweep arithmetic at ~1 cycle/flop.
    return (mem.estimated_cycles(costs) + 200.0 * points) / points;
  };

  llp::Table sim({"plane (one sweep)", "plane-buffer cyc/pt",
                  "pencil-buffer cyc/pt", "tuning factor"});
  struct P {
    const char* name;
    int line, inner;
  };
  for (const P& p : {P{"1M case 87 x 75", 87, 75},
                     P{"59M case 450 x 350", 450, 350},
                     P{"59M case 173 x 450", 173, 450}}) {
    const double cp = simulate(p.line, p.inner, true);
    const double cl = simulate(p.line, p.inner, false);
    sim.add_row({p.name, llp::strfmt("%.0f", cp), llp::strfmt("%.0f", cl),
                 llp::strfmt("%.2fx", cp / cl)});
  }
  std::printf("%s", sim.to_string().c_str());
  std::printf(
      "\nOn a 1-MB-cache machine the pencil restructuring alone buys ~2-4x\n"
      "per sweep. The paper's >10x serial-tuning factor on the Power\n"
      "Challenge combined this with index reordering, loop reordering,\n"
      "blocking, and register tuning (§4 items 1-4); and on the Convex\n"
      "SPP-1000 the untuned vector code was effectively unusable (§5).\n");
  return 0;
}
