// Reproduces paper Figure 2: time steps/hour vs number of processors for
// the 1-million grid point case on three machines — SGI Origin 2000
// (R12000, 300 MHz, 128p), SUN HPC 10000 (400 MHz, 64p), and HP V2500
// (440 MHz, 16p).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Figure 2 — shared-memory F3D, 1-million grid point case: time "
      "steps/hour vs processors");

  const auto trace = bench::measure_full_size_trace(
      f3d::paper_1m_case(0.12), f3d::paper_1m_case(1.0), "f2");

  llp::simsmp::SmpSimulator sgi(llp::model::origin2000_r12k_300());
  llp::simsmp::SmpSimulator sun(llp::model::sun_hpc10000());
  llp::simsmp::SmpSimulator hp(llp::model::hp_v2500());

  llp::Table t({"procs", "SGI Origin 2000 300MHz", "SUN HPC 10000",
                "HP V2500"});
  for (int p = 1; p <= 128; p += (p < 16 ? 1 : 8)) {
    std::vector<std::string> row = {std::to_string(p)};
    row.push_back(llp::strfmt("%.0f", sgi.run(trace, p).steps_per_hour));
    row.push_back(p <= 64 ? llp::strfmt("%.0f", sun.run(trace, p).steps_per_hour)
                          : std::string("-"));
    row.push_back(p <= 16 ? llp::strfmt("%.0f", hp.run(trace, p).steps_per_hour)
                          : std::string("-"));
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "\nShape notes (vs the paper's Figure 2):\n"
      "  * all three machines climb steeply to ~40 processors;\n"
      "  * the curve flattens between ~48 and ~64 (stair-step of the 70/75\n"
      "    trip loops) and resumes climbing past 70;\n"
      "  * the V2500's 16 processors sit on the same curve scaled by its\n"
      "    per-processor delivered rate.\n");
  return 0;
}
