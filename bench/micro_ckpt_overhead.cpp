// Cost of a durable checkpoint at the paper's 1M-point scale: snapshot
// (pack + checksum), serialize + CRC, and the full durable write protocol
// (temp file, fsync, rename, directory fsync, rotation). The interesting
// ratio is save time vs solver step time — with the default cadence of one
// generation every 10 steps, the amortized overhead should be a few percent
// of a step, and the in-memory snapshot half (what run_protected pays on
// the healthy path before anything touches disk) much less.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "f3d/cases.hpp"
#include "f3d/io.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"

namespace fs = std::filesystem;

namespace {

// ~1M interior points across the three zones at scale 1.0 (the paper's 1m
// case); scale 0.4 gives a mid-size point for the scaling trend.
f3d::MultiZoneGrid grid_at(double scale) {
  auto grid = f3d::build_grid(f3d::paper_1m_case(scale));
  f3d::add_gaussian_pulse(grid, 0.05, 2.0);
  return grid;
}

std::size_t grid_bytes(const f3d::MultiZoneGrid& grid) {
  return grid.total_points() * static_cast<std::size_t>(f3d::kNumVars) *
         sizeof(double);
}

void BM_DurableSave(benchmark::State& state) {
  const double scale = state.range(0) / 100.0;
  auto grid = grid_at(scale);
  const std::string dir =
      (fs::temp_directory_path() / "llp_bench_ckpt").string();
  fs::remove_all(dir);
  f3d::ckpt::Config cc;
  cc.dir = dir;
  cc.keep_generations = 2;  // rotation cost included, disk usage bounded
  f3d::ckpt::CheckpointStore store(cc);
  f3d::SolverState st;
  st.steps = 1;
  st.cfl = 2.0;
  for (auto _ : state) {
    store.save(grid, st);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid_bytes(grid)));
  state.counters["points"] = static_cast<double>(grid.total_points());
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableSave)->Arg(40)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SnapshotOnly(benchmark::State& state) {
  // The in-memory half: pack + checksum, no disk. This is what a deferred
  // (pending) snapshot costs the run at the cadence boundary even when the
  // durable write later fails.
  const double scale = state.range(0) / 100.0;
  auto grid = grid_at(scale);
  f3d::SolverState st;
  st.steps = 1;
  st.cfl = 2.0;
  for (auto _ : state) {
    std::vector<double> packed;
    for (int z = 0; z < grid.num_zones(); ++z) {
      packed.clear();
      f3d::pack_zone_interior(grid.zone(z), packed);
      benchmark::DoNotOptimize(packed.data());
    }
    benchmark::DoNotOptimize(f3d::checksum(grid));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid_bytes(grid)));
  state.counters["points"] = static_cast<double>(grid.total_points());
}
BENCHMARK(BM_SnapshotOnly)->Arg(40)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SolverStepForScale(benchmark::State& state) {
  // The denominator: one solver step at the same scale, so the report
  // shows the checkpoint-to-step cost ratio directly.
  const double scale = state.range(0) / 100.0;
  auto grid = grid_at(scale);
  f3d::SolverConfig cfg;
  cfg.freestream = f3d::paper_1m_case(scale).freestream;
  cfg.region_prefix = "bench.ckpt.step";
  f3d::Solver solver(grid, cfg);
  for (auto _ : state) {
    solver.step();
  }
  state.counters["points"] = static_cast<double>(grid.total_points());
}
BENCHMARK(BM_SolverStepForScale)
    ->Arg(40)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_LoadNewestIntact(benchmark::State& state) {
  // Restart cost: full validation ladder (CRC every frame, unpack,
  // end-to-end checksum) on an intact generation.
  const double scale = state.range(0) / 100.0;
  auto grid = grid_at(scale);
  const std::string dir =
      (fs::temp_directory_path() / "llp_bench_ckpt_load").string();
  fs::remove_all(dir);
  f3d::ckpt::Config cc;
  cc.dir = dir;
  f3d::ckpt::CheckpointStore store(cc);
  f3d::SolverState st;
  st.steps = 1;
  st.cfl = 2.0;
  store.save(grid, st);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.load_newest_intact(grid));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid_bytes(grid)));
  fs::remove_all(dir);
}
BENCHMARK(BM_LoadNewestIntact)
    ->Arg(40)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
