// Cost of always-on tracing on the paper's fig2 1-million-point F3D case:
// the same solver steps run untraced and with the obs::Tracer installed,
// and the per-step difference is reported. The acceptance bar is <= 2%
// overhead — event emission rides region/lane/chunk boundaries, never
// per-iteration, so the cost must vanish against real step work.
//
//   micro_trace_overhead [--scale S] [--steps N] [--repeats R] [--out PATH]
//
// scale = 1 is the full 1M-point case; the default keeps the smoke test in
// seconds. Timing takes the best of R repeats per configuration to shed
// scheduler noise. Results also land as one JSON line in BENCH_micro.json
// (shared with the other micro benches; --out overrides the path).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "common.hpp"
#include "obs/obs.hpp"
#include "util/format.hpp"

namespace {

double run_steps(const f3d::CaseSpec& spec, int steps) {
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  f3d::Solver solver(grid, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) solver.step();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / steps;
}

double best_of(const f3d::CaseSpec& spec, int steps, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double s = run_steps(spec, steps);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.12;
  int steps = 5;
  int repeats = 3;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--scale" && (v = next())) scale = std::atof(v);
    else if (a == "--steps" && (v = next())) steps = std::atoi(v);
    else if (a == "--repeats" && (v = next())) repeats = std::atoi(v);
    else if (a == "--out" && (v = next())) out = v;
    else {
      std::fprintf(stderr,
                   "usage: micro_trace_overhead [--scale S] [--steps N] "
                   "[--repeats R] [--out PATH]\n");
      return 2;
    }
  }
  if (scale <= 0.0 || steps < 1 || repeats < 1) return 2;

  bench::heading(llp::strfmt(
      "Trace overhead — fig2 1M-point case at scale %.2f, %d steps, best of "
      "%d", scale, steps, repeats));
  const f3d::CaseSpec spec = f3d::paper_1m_case(scale);
  std::printf("grid: %zu points, %d threads\n\n", spec.total_points(),
              llp::num_threads());

  // Baseline first, with no tracer anywhere in the process.
  llp::obs::uninstall();
  const double untraced = best_of(spec, steps, repeats);

  llp::obs::Tracer& tracer = llp::obs::install();
  const double traced = best_of(spec, steps, repeats);
  const double overhead = (traced - untraced) / untraced * 100.0;

  std::printf("untraced : %9.3f ms/step\n", untraced * 1e3);
  std::printf("traced   : %9.3f ms/step\n", traced * 1e3);
  std::printf("overhead : %+8.2f %%  (target <= 2%%)\n\n", overhead);
  std::printf("events accepted: %llu, dropped: %llu\n",
              static_cast<unsigned long long>(tracer.accepted()),
              static_cast<unsigned long long>(tracer.dropped()));
  std::printf("\nper-region latency (traced runs):\n%s",
              tracer.summary().c_str());

  bench::JsonRecord rec;
  rec.set("bench", "micro_trace_overhead")
      .set("scale", scale)
      .set("steps", steps)
      .set("repeats", repeats)
      .set("threads", llp::num_threads())
      .set("untraced_ms_per_step", untraced * 1e3)
      .set("traced_ms_per_step", traced * 1e3)
      .set("overhead_pct", overhead)
      .set("target_pct", 2.0)
      .set("events_accepted",
           static_cast<unsigned long long>(tracer.accepted()))
      .set("events_dropped",
           static_cast<unsigned long long>(tracer.dropped()));
  if (!bench::upsert_json_line(out, "micro_trace_overhead", rec)) {
    std::fprintf(stderr, "micro_trace_overhead: cannot write %s\n",
                 out.c_str());
    llp::obs::uninstall();
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  llp::obs::uninstall();
  return 0;
}
