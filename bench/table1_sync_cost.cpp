// Reproduces paper Table 1: the minimum amount of work (in cycles) per
// parallelized loop required for efficient (<1% sync overhead) execution,
// for 2/8/32/128 processors at hypothetical sync costs of 1e4/1e5/1e6
// cycles. Also reports this host's *measured* fork-join cost for context.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/thread_pool.hpp"
#include "model/sync_cost.hpp"
#include "perf/timer.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Table 1 — minimum work (cycles) per parallelized loop for <1% "
      "synchronization overhead");

  const std::vector<std::int64_t> sync_costs = {10000, 100000, 1000000};
  const std::vector<int> procs = {2, 8, 32, 128};

  llp::Table t({"processors", "sync=10,000", "sync=100,000",
                "sync=1,000,000"});
  for (int p : procs) {
    std::vector<std::string> row = {std::to_string(p)};
    for (std::int64_t s : sync_costs) {
      row.push_back(
          llp::with_commas(llp::model::min_work_for_efficiency(p, s)));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "\nPaper values (ARL-TR-2556 Table 1): identical — the model is\n"
      "min_work = processors * sync_cycles / 0.01.\n");

  // Context: measure this host's actual fork-join cost.
  bench::heading("Measured fork-join synchronization cost on this host");
  llp::Table m({"pool lanes", "ns per fork-join"});
  for (int lanes : {1, 2, 4, 8}) {
    llp::ThreadPool pool(lanes);
    // Warm up, then time a batch of empty parallel regions.
    for (int i = 0; i < 100; ++i) pool.run([](int) {});
    const int reps = 2000;
    llp::perf::Timer timer;
    for (int i = 0; i < reps; ++i) pool.run([](int) {});
    const double ns = timer.elapsed() / reps * 1e9;
    m.add_row({std::to_string(lanes), llp::strfmt("%.0f", ns)});
  }
  std::printf("%s", m.to_string().c_str());
  std::printf(
      "\nThe paper quotes 2,000 - 1,000,000+ cycles depending on machine\n"
      "and load (~10-3000 us at 300 MHz); a modern pthread pool sits at the\n"
      "cheap end of that range.\n");
  return 0;
}
