// Ablation for §4 item 4: resizing the vectorization scratch arrays from a
// plane of data down to a single pencil so they lock into cache.
//
// The J/K sweeps touch their scratch three times (gather+project, Thomas,
// back-project). With plane-sized buffers the working set for a 450x350
// plane is ~30 MB — nothing survives in a 1 MB cache between phases. With
// pencil buffers the working set is ~86 KB and phases 2 and 3 hit.
//
// We replay both access patterns through the trace-driven cache simulator
// configured like the paper's RISC machines (1 MB L2) and like a modern
// 8 MB L2 for contrast.
#include <cstdio>

#include "common.hpp"
#include "simsmp/cache_sim.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using llp::simsmp::CacheConfig;
using llp::simsmp::CacheSim;

// Scratch layout: 24 doubles per point (q, r, w, lam, a..d), as in the
// solver's PencilWorkspace / VectorSweeps buffers.
constexpr int kDoublesPerPoint = 24;

// Plane-buffer sweep: all three phases stream over the whole plane.
double plane_buffer_miss_rate(int line_n, int inner_n, CacheSim& cache) {
  cache.reset();
  const std::uint64_t base = 1 << 30;
  const std::uint64_t stride = kDoublesPerPoint * 8;
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < line_n; ++i) {
      for (int s = 0; s < inner_n; ++s) {
        const std::uint64_t addr =
            base + (static_cast<std::uint64_t>(i) * inner_n + s) * stride;
        cache.access(addr, stride);
      }
    }
  }
  return cache.miss_rate();
}

// Pencil-buffer sweep: the same three phases, one line at a time, reusing
// one line-sized buffer for every line of the plane.
double pencil_buffer_miss_rate(int line_n, int inner_n, CacheSim& cache) {
  cache.reset();
  const std::uint64_t base = 1 << 30;
  const std::uint64_t stride = kDoublesPerPoint * 8;
  for (int s = 0; s < inner_n; ++s) {  // each line of the plane
    for (int phase = 0; phase < 3; ++phase) {
      for (int i = 0; i < line_n; ++i) {
        cache.access(base + static_cast<std::uint64_t>(i) * stride, stride);
      }
    }
  }
  return cache.miss_rate();
}

}  // namespace

int main() {
  bench::heading(
      "Ablation — §4(4): plane-sized vs pencil-sized scratch arrays, "
      "trace-driven cache simulation");

  struct CacheRow {
    const char* name;
    CacheConfig config;
  };
  const CacheRow caches[] = {
      {"1 MB, 4-way, 128 B (paper-era RISC)", {1 << 20, 128, 4}},
      {"8 MB, 8-way, 128 B (Origin 2000 R12K)", {8 << 20, 128, 8}},
  };
  struct Shape {
    const char* name;
    int line_n, inner_n;
  };
  const Shape shapes[] = {
      {"1M-case plane 87 x 75", 87, 75},
      {"59M-case plane 173 x 450", 173, 450},
      {"59M-case plane 450 x 350", 450, 350},
  };

  llp::Table t({"cache", "plane", "scratch size", "plane miss%",
                "pencil miss%", "miss reduction"});
  for (const auto& c : caches) {
    CacheSim cache(c.config);
    for (const auto& s : shapes) {
      const double plane = plane_buffer_miss_rate(s.line_n, s.inner_n, cache);
      const double pencil =
          pencil_buffer_miss_rate(s.line_n, s.inner_n, cache);
      const double mb = static_cast<double>(s.line_n) * s.inner_n *
                        kDoublesPerPoint * 8.0 / 1e6;
      t.add_row({c.name, s.name, llp::strfmt("%.1f MB", mb),
                 llp::strfmt("%.2f", 100.0 * plane),
                 llp::strfmt("%.2f", 100.0 * pencil),
                 llp::strfmt("%.0fx", plane / pencil)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nPencil scratch (line x 24 doubles: 86 KB even at dimension 450)\n"
      "locks into a 1 MB cache, so two of the three passes hit; the plane\n"
      "buffer (17-126 MB) misses on every pass regardless of cache size.\n"
      "The paper: the resized arrays 'now comfortably fit in a 1-MB cache\n"
      "for zone dimensions ranging up to about 1,000'.\n");
  return 0;
}
