// Ablation for §8 (Behr): the same computation written with doacross
// loop-level parallelism and with explicit message passing. Both produce
// identical answers; the comparison is the synchronization structure and
// the programming burden — the paper: message passing "worked and
// produced a credible level of performance, [but] was significantly more
// difficult to implement".
//
// Kernel: S Jacobi relaxation sweeps of a 1-D diffusion stencil on N
// points (a vectorizable loop of exactly the class the paper targets).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/llp.hpp"
#include "msg/message_passing.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

constexpr int kN = 4096;
constexpr int kSweeps = 200;
constexpr double kC = 0.2;

std::vector<double> initial_field() {
  std::vector<double> u(kN, 0.0);
  u[0] = 1.0;          // hot left wall
  u[kN - 1] = -1.0;    // cold right wall
  for (int i = kN / 4; i < kN / 2; ++i) u[i] = 0.5;  // interior blob
  return u;
}

// (a) Shared memory: one doacross per sweep. The loop body is the whole
// parallelization effort.
std::vector<double> shared_memory_version(int threads,
                                          std::uint64_t* sync_events) {
  llp::set_num_threads(threads);
  std::vector<double> u = initial_field();
  std::vector<double> v = u;
  const auto opts =
      llp::ForOptions::in_region(llp::regions().define("ablation.sweep"));
  const auto before = llp::Runtime::instance().pool().sync_events();
  for (int s = 0; s < kSweeps; ++s) {
    llp::parallel_for(
        1, kN - 1,
        [&](std::int64_t i) {
          v[i] = u[i] + kC * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
        },
        opts);
    std::swap(u, v);
  }
  *sync_events = llp::Runtime::instance().pool().sync_events() - before;
  return u;
}

// (b) Message passing: the SAME arithmetic needs explicit decomposition,
// halo buffers, neighbor bookkeeping, and exchange logic.
std::vector<double> message_passing_version(int ranks,
                                            llp::msg::WorldStats* stats) {
  std::vector<double> result(kN, 0.0);
  *stats = llp::msg::run(ranks, [&](llp::msg::Communicator& comm) {
    const int r = comm.rank();
    // Block decomposition of the interior [1, kN-1).
    const std::int64_t interior = kN - 2;
    const auto range = llp::static_block(interior, r, ranks);
    const int lo = static_cast<int>(range.begin) + 1;
    const int hi = static_cast<int>(range.end) + 1;  // exclusive
    const int local = hi - lo;

    // Local block with one halo cell on each side.
    const auto full = initial_field();
    std::vector<double> u(static_cast<std::size_t>(local) + 2);
    for (int i = 0; i < local + 2; ++i) u[static_cast<std::size_t>(i)] =
        full[static_cast<std::size_t>(lo - 1 + i)];
    // v starts as a copy so fixed physical-wall halo cells survive swaps.
    std::vector<double> v = u;

    const int left = r - 1, right = r + 1;
    for (int s = 0; s < kSweeps; ++s) {
      // Halo exchange (skipped at physical boundaries).
      if (left >= 0) {
        comm.sendrecv(left, 2 * s, std::span<const double>(&u[1], 1), left,
                      2 * s + 1, std::span<double>(&u[0], 1));
      }
      if (right < ranks) {
        comm.sendrecv(right, 2 * s + 1,
                      std::span<const double>(&u[static_cast<std::size_t>(local)], 1),
                      right, 2 * s,
                      std::span<double>(&u[static_cast<std::size_t>(local) + 1], 1));
      }
      for (int i = 1; i <= local; ++i) {
        v[static_cast<std::size_t>(i)] =
            u[static_cast<std::size_t>(i)] +
            kC * (u[static_cast<std::size_t>(i) - 1] -
                  2.0 * u[static_cast<std::size_t>(i)] +
                  u[static_cast<std::size_t>(i) + 1]);
      }
      std::swap(u, v);
      // Halo cells of u are stale after the swap; refreshed next sweep.
    }
    // Gather: ranks own disjoint slices of the shared result vector.
    for (int i = 1; i <= local; ++i) {
      result[static_cast<std::size_t>(lo + i - 1)] =
          u[static_cast<std::size_t>(i)];
    }
    result[0] = full[0];
    result[kN - 1] = full[kN - 1];
  });
  return result;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 3;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (a == "--repeats" && v) { repeats = std::atoi(v); ++i; }
    else if (a == "--out" && v) { out = v; ++i; }
    else {
      std::fprintf(stderr,
                   "usage: ablation_msg_vs_shared [--repeats R] [--out PATH]\n");
      return 2;
    }
  }
  if (repeats < 1) return 2;

  bench::heading(
      "Ablation — §8: doacross loop-level parallelism vs explicit message "
      "passing (same Jacobi kernel, 4096 points, 200 sweeps)");

  std::uint64_t sync_events = 0;
  llp::msg::WorldStats stats;
  std::vector<double> shared, passed;
  double shared_s = 1e300, msg_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    double t0 = now_seconds();
    shared = shared_memory_version(4, &sync_events);
    shared_s = std::min(shared_s, now_seconds() - t0);
    t0 = now_seconds();
    passed = message_passing_version(4, &stats);
    msg_s = std::min(msg_s, now_seconds() - t0);
  }

  double max_diff = 0.0;
  for (int i = 0; i < kN; ++i) {
    max_diff = std::max(max_diff, llp::rel_diff(shared[i], passed[i]));
  }

  llp::Table t({"metric", "shared memory (doacross)", "message passing"});
  t.add_row({"answer agreement", "reference", llp::strfmt("%.1e rel", max_diff)});
  t.add_row({"parallel constructs used", "1 (parallel_for)",
             "decompose + halo + sendrecv + gather"});
  t.add_row({"sync events / fork-joins", std::to_string(sync_events), "0"});
  t.add_row({"messages sent", "0", std::to_string(stats.total_messages)});
  t.add_row({"payload bytes", "0", std::to_string(stats.total_bytes)});
  t.add_row({"wall time (best of runs)", llp::strfmt("%.3f ms", shared_s * 1e3),
             llp::strfmt("%.3f ms", msg_s * 1e3)});
  std::printf("%s", t.to_string().c_str());

  bench::heading("Modeled per-sweep synchronization cost");
  llp::Table m({"platform", "shared: 1 fork-join", "msg: 2 exchanges"});
  struct Net {
    const char* name;
    double sync_us;
    double msg_latency_us;
  };
  for (const Net& n : {Net{"SGI Origin 2000 (SMP, 32p)", 34.2, 2.0},
                       Net{"Cray T3E + SHMEM", 34.2, 3.0},
                       Net{"workstation cluster + MPI", 34.2, 75.0}}) {
    m.add_row({n.name, llp::strfmt("%.1f us", n.sync_us),
               llp::strfmt("%.1f us", 2.0 * n.msg_latency_us)});
  }
  std::printf("%s", m.to_string().c_str());
  std::printf(
      "\nBoth versions compute the same answer (diff %.1e). The message-\n"
      "passing version needed a domain decomposition, halo buffers, and\n"
      "explicit exchange choreography for a loop the shared-memory version\n"
      "parallelized with one directive — Behr's experience porting F3D to\n"
      "the T3D/T3E. On low-latency interconnects (SHMEM) its per-sweep\n"
      "cost is competitive, which is §8's 'worked and produced a credible\n"
      "level of performance'; on a 50-100 us cluster it is not. The\n"
      "deeper limitation the paper notes: those machines' 16-128 KB\n"
      "caches made the RISC cache optimizations impossible.\n",
      max_diff);

  bench::JsonRecord rec;
  rec.set("bench", "ablation_msg_vs_shared")
      .set("points", kN)
      .set("sweeps", kSweeps)
      .set("threads", 4)
      .set("repeats", repeats)
      .set("shared_ms", shared_s * 1e3)
      .set("msg_ms", msg_s * 1e3)
      .set("msg_over_shared", shared_s > 0.0 ? msg_s / shared_s : 0.0)
      .set("sync_events", static_cast<unsigned long long>(sync_events))
      .set("messages", static_cast<unsigned long long>(stats.total_messages))
      .set("payload_bytes", static_cast<unsigned long long>(stats.total_bytes))
      .set("max_rel_diff", max_diff);
  if (!bench::upsert_json_line(out, "ablation_msg_vs_shared", rec)) {
    std::fprintf(stderr, "ablation_msg_vs_shared: cannot write %s\n",
                 out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
