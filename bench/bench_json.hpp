// Machine-readable results for the self-timed micro benches.
//
// Every bench upserts exactly one line into a shared BENCH_micro.json:
// each line is a complete JSON object carrying a "bench" key, so the file
// is JSON-lines — trivially parseable a line at a time, and re-running one
// bench replaces only its own record instead of clobbering the others.
// CI reads the file to flag overhead drift without scraping stdout.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bench {

/// Ordered flat JSON object builder (strings, integers, doubles, bools).
class JsonRecord {
public:
  JsonRecord& set(const std::string& key, const std::string& value) {
    fields_.push_back({key, quote(value)});
    return *this;
  }
  JsonRecord& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonRecord& set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    fields_.push_back({key, buf});
    return *this;
  }
  JsonRecord& set(const std::string& key, long long value) {
    fields_.push_back({key, std::to_string(value)});
    return *this;
  }
  JsonRecord& set(const std::string& key, int value) {
    return set(key, static_cast<long long>(value));
  }
  JsonRecord& set(const std::string& key, unsigned long long value) {
    fields_.push_back({key, std::to_string(value)});
    return *this;
  }
  JsonRecord& set(const std::string& key, bool value) {
    fields_.push_back({key, value ? "true" : "false"});
    return *this;
  }

  std::string dump() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += quote(fields_[i].first) + ":" + fields_[i].second;
    }
    return out + "}";
  }

private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Replace the line whose record is for `bench_name` (matched on the
/// leading "bench" key) in the JSON-lines file at `path`, appending when
/// absent. Returns false when the file cannot be written.
inline bool upsert_json_line(const std::string& path,
                             const std::string& bench_name,
                             const JsonRecord& record) {
  const std::string tag = "{\"bench\":\"" + bench_name + "\"";
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.rfind(tag, 0) != 0) lines.push_back(line);
    }
  }
  lines.push_back(record.dump());
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const auto& line : lines) out << line << "\n";
  return static_cast<bool>(out);
}

}  // namespace bench
