// Ablation — loop schedules under non-uniform iteration cost.
//
// The paper's sweeps have near-uniform iterations, so C$doacross's static
// blocks are ideal. But boundary-layer clustering, zonal cut-outs, or
// convergence-dependent work skew iteration costs, and then the schedule
// choice matters. This bench assigns deterministic per-iteration weights
// and computes, for each schedule, the busiest lane's share — i.e. the
// load-imbalance factor that multiplies the stair-step time.
//
// Static/chunked assignments come from the runtime's own partition
// functions; dynamic/guided are evaluated as an idealized least-loaded
// assignment of their chunk streams (what a timing-based runtime
// converges to).
#include <cstdio>
#include <functional>
#include <vector>

#include "common.hpp"
#include "core/schedule.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

constexpr int kLanes = 8;

double weight_sum(const std::vector<double>& w, std::int64_t begin,
                  std::int64_t end) {
  double s = 0.0;
  for (std::int64_t i = begin; i < end; ++i) {
    s += w[static_cast<std::size_t>(i)];
  }
  return s;
}

// Imbalance = busiest lane / mean lane for a given per-lane load vector.
double imbalance(const std::vector<double>& lane_load) {
  double mx = 0.0, sum = 0.0;
  for (double v : lane_load) {
    mx = std::max(mx, v);
    sum += v;
  }
  return mx / (sum / static_cast<double>(lane_load.size()));
}

double static_block_imbalance(const std::vector<double>& w) {
  const auto n = static_cast<std::int64_t>(w.size());
  std::vector<double> load(kLanes, 0.0);
  for (int t = 0; t < kLanes; ++t) {
    const auto r = llp::static_block(n, t, kLanes);
    load[static_cast<std::size_t>(t)] = weight_sum(w, r.begin, r.end);
  }
  return imbalance(load);
}

double static_chunked_imbalance(const std::vector<double>& w,
                                std::int64_t chunk) {
  const auto n = static_cast<std::int64_t>(w.size());
  std::vector<double> load(kLanes, 0.0);
  for (int t = 0; t < kLanes; ++t) {
    for (const auto& r : llp::static_chunks(n, t, kLanes, chunk)) {
      load[static_cast<std::size_t>(t)] += weight_sum(w, r.begin, r.end);
    }
  }
  return imbalance(load);
}

// Idealized dynamic/guided: chunks are taken in order by whichever lane is
// least loaded (a perfect work-stealing outcome).
double greedy_imbalance(const std::vector<double>& w,
                        const std::function<std::int64_t(std::int64_t)>&
                            next_chunk_size) {
  const auto n = static_cast<std::int64_t>(w.size());
  std::vector<double> load(kLanes, 0.0);
  std::int64_t i = 0;
  while (i < n) {
    const std::int64_t c = std::min(next_chunk_size(n - i), n - i);
    auto lane = std::min_element(load.begin(), load.end());
    *lane += weight_sum(w, i, i + c);
    i += c;
  }
  return imbalance(load);
}

}  // namespace

int main() {
  bench::heading(
      "Ablation — schedule quality vs iteration-cost skew "
      "(8 lanes, busiest-lane / mean-lane factor; 1.0 is perfect)");

  struct Load {
    const char* name;
    std::vector<double> w;
  };
  std::vector<Load> loads;
  {
    Load uniform{"uniform (the solver's sweeps)", {}};
    for (int i = 0; i < 96; ++i) uniform.w.push_back(1.0);
    loads.push_back(std::move(uniform));

    Load tri{"triangular (w_i = i+1)", {}};
    for (int i = 0; i < 96; ++i) tri.w.push_back(i + 1.0);
    loads.push_back(std::move(tri));

    Load spike{"one hot plane (w=20 at i=10)", {}};
    for (int i = 0; i < 96; ++i) spike.w.push_back(i == 10 ? 20.0 : 1.0);
    loads.push_back(std::move(spike));

    Load bl{"boundary-layer (heavy first 16)", {}};
    for (int i = 0; i < 96; ++i) bl.w.push_back(i < 16 ? 6.0 : 1.0);
    loads.push_back(std::move(bl));
  }

  llp::Table t({"workload", "static block", "static chunk=4",
                "dynamic chunk=2", "guided"});
  for (const auto& load : loads) {
    const double sb = static_block_imbalance(load.w);
    const double sc = static_chunked_imbalance(load.w, 4);
    const double dy =
        greedy_imbalance(load.w, [](std::int64_t) { return 2; });
    const double gd = greedy_imbalance(load.w, [](std::int64_t remaining) {
      return llp::guided_chunk(remaining, kLanes, 1);
    });
    t.add_row({load.name, llp::strfmt("%.3f", sb), llp::strfmt("%.3f", sc),
               llp::strfmt("%.3f", dy), llp::strfmt("%.3f", gd)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nFor the solver's uniform sweeps the C$doacross static block is\n"
      "already perfect and costs no scheduling machinery — the paper's\n"
      "default was the right one. Skewed loads favor chunked or dynamic\n"
      "schedules; the llp runtime exposes all four via ForOptions, and\n"
      "instrumented regions report their measured imbalance() so the skew\n"
      "is visible in the flat profile.\n");
  return 0;
}
