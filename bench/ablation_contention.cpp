// Ablation for §7 Example 4: the effect of memory access patterns on
// page-level contention under page-granularity interleaving. Reproduces
// the paper's three orderings over A(JMAX,KMAX,LMAX):
//   (a) doacross L, stride-1 inside           — best possible
//   (b) doacross K, L inside                  — acceptable
//   (c) doacross J, batching a K buffer       — unacceptable
#include <cstdio>

#include "common.hpp"
#include "core/schedule.hpp"
#include "simsmp/page_memory.hpp"
#include "simsmp/page_migration.hpp"
#include "util/array.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

constexpr int kJ = 64, kK = 96, kL = 64;
constexpr std::uint64_t kPage = 16384;  // Origin 2000 page
constexpr int kProcsPerNode = 2;

llp::simsmp::ContentionReport run_ordering(char which, int procs) {
  llp::Array3D<double> shape(kJ, kK, kL);
  llp::simsmp::ContentionAnalyzer an(kPage, procs, kProcsPerNode);
  auto addr = [&](int j, int k, int l) { return shape.index(j, k, l) * 8; };
  for (int p = 0; p < procs; ++p) {
    switch (which) {
      case 'a': {
        const auto r = llp::static_block(kL, p, procs);
        for (int l = static_cast<int>(r.begin); l < r.end; ++l)
          for (int k = 0; k < kK; ++k)
            for (int j = 0; j < kJ; ++j) an.access(p, addr(j, k, l));
        break;
      }
      case 'b': {
        const auto r = llp::static_block(kK, p, procs);
        for (int k = static_cast<int>(r.begin); k < r.end; ++k)
          for (int l = 0; l < kL; ++l)
            for (int j = 0; j < kJ; ++j) an.access(p, addr(j, k, l));
        break;
      }
      default: {
        const auto r = llp::static_block(kJ, p, procs);
        for (int j = static_cast<int>(r.begin); j < r.end; ++j)
          for (int l = 0; l < kL; ++l)
            for (int k = 0; k < kK; ++k) an.access(p, addr(j, k, l));
        break;
      }
    }
  }
  return an.report();
}

}  // namespace

int main() {
  bench::heading(
      "Ablation — §7 Example 4: access-ordering contention under "
      "page-granularity interleaving (A(64,96,64), 16 KB pages, 2 "
      "procs/node)");

  llp::Table t({"procs", "ordering", "shared pages%", "shared accesses%",
                "mean sharers/page", "max sharers", "remote accesses%"});
  for (int procs : {8, 32, 64}) {
    for (char o : {'a', 'b', 'c'}) {
      const auto r = run_ordering(o, procs);
      const std::string label =
          o == 'a' ? "(a) doacross L, stride-1"
                   : (o == 'b' ? "(b) doacross K, L inside"
                               : "(c) doacross J, K buffer");
      t.add_row({std::to_string(procs), label,
                 llp::strfmt("%.1f", 100.0 * r.shared_page_fraction()),
                 llp::strfmt("%.1f", 100.0 * r.shared_access_fraction()),
                 llp::strfmt("%.2f", r.mean_sharers),
                 llp::strfmt("%.0f", r.max_sharers),
                 llp::strfmt("%.1f", 100.0 * r.remote_access_fraction())});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nOrdering (c) puts every processor on every page (mean sharers ==\n"
      "processor count): 'a severe amount of contention with a resulting\n"
      "drop in performance'.\n");

  // §7's remedy hierarchy, demonstrated: run ordering (c)'s writes through
  // the migrating page memory for several epochs under each policy.
  bench::heading(
      "Does page migration help? Ordering (c) under kNone / "
      "kMigrateToMajority / kReplicateReadOnly (4 epochs, 32 procs)");
  llp::Table m({"policy", "epoch 1 remote%", "epoch 2", "epoch 3", "epoch 4",
                "migrations", "replicas"});
  const int procs = 32;
  for (auto policy : {llp::simsmp::MigrationPolicy::kNone,
                      llp::simsmp::MigrationPolicy::kMigrateToMajority,
                      llp::simsmp::MigrationPolicy::kReplicateReadOnly}) {
    llp::simsmp::MigratingPageMemory mem(kPage, procs / kProcsPerNode,
                                         kProcsPerNode);
    llp::Array3D<double> shape(kJ, kK, kL);
    std::vector<std::string> row = {
        policy == llp::simsmp::MigrationPolicy::kNone
            ? "none (first touch)"
            : (policy == llp::simsmp::MigrationPolicy::kMigrateToMajority
                   ? "migrate to majority"
                   : "replicate read-only")};
    std::uint64_t migrations = 0, replicas = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (int p = 0; p < procs; ++p) {
        const auto r = llp::static_block(kJ, p, procs);
        for (int j = static_cast<int>(r.begin); j < r.end; ++j)
          for (int l = 0; l < kL; ++l)
            for (int k = 0; k < kK; ++k)
              // The batching loop READS A but WRITES the shared buffer
              // region; model the array reads (replicable) plus one write
              // per gathered line into a per-page shared staging area.
              mem.access(p, shape.index(j, k, l) * 8, /*write=*/(k % kK) == 0);
      }
      const auto s = mem.end_epoch(policy);
      row.push_back(llp::strfmt("%.1f", 100.0 * s.remote_fraction()));
      migrations += s.migrations;
      replicas += s.replicated_pages;
    }
    row.push_back(std::to_string(migrations));
    row.push_back(std::to_string(replicas));
    m.add_row(row);
  }
  std::printf("%s", m.to_string().c_str());
  std::printf(
      "\n'No amount of page migration solves this problem — neither does\n"
      "data placement directives. Data replication/caching can help. But\n"
      "the best solution is to initially avoid the problem' (§7): the\n"
      "migrating policy keeps paying ~(nodes-1)/nodes remote on genuinely\n"
      "shared pages, replication rescues the read traffic but not the\n"
      "written lines, and ordering (a) — restructuring the loop — never\n"
      "shares a page in the first place.\n");
  return 0;
}
