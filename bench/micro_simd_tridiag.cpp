// Interleaved-pencil SIMD Thomas kernel vs the per-pencil scalar solver.
//
// The paper's RISC organization solves one pencil at a time; the SIMD
// engine packs kTridiagLaneWidth independent pencils into vector lanes and
// runs the same recurrence in lockstep. This bench times both on identical
// diagonally dominant systems and is the acceptance gate for the SIMD
// engine: when the AVX2 kernel is active the lane-batched solve must be
// >= 2x the per-pencil scalar path, and the binary exits nonzero if it is
// not. On hosts (or forced-scalar builds) where the dispatch reports
// "generic" there is no hardware win to gate on, so the floor defaults to
// 0; CI's forced-scalar job still runs the bench to prove the kernel and
// the reporting path work, passing an explicit --min-ratio 0.
//
//   micro_simd_tridiag [--n N] [--systems S] [--passes P] [--repeats R]
//                      [--min-ratio X] [--out PATH]
//
// The working set (a,b,c,d for S systems of length N) is sized to sit in
// L2 so the comparison measures the recurrence, not memory bandwidth.
// Results land as one JSON line in BENCH_micro.json (shared with the other
// micro benches; --out overrides the path).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "f3d/tridiag.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

// Deterministic low-discrepancy fill (no RNG: runs must be reproducible).
double weyl(double& x) {
  x += 0.6180339887498949;
  x -= std::floor(x);
  return x;
}

struct Problem {
  int n = 0;
  int systems = 0;  // multiple of f3d::kTridiagLaneWidth
  // Pencil layout: system s contiguous at [s*n, s*n + n).
  std::vector<double> a, b, c, d;
  // Lane layout: group g of W systems at offset g*n*W, element i of lane w
  // at g*n*W + i*W + w; lane w of group g is system g*W + w.
  std::vector<double> la, lb, lc, ld;
};

Problem make_problem(int n, int systems) {
  constexpr int W = f3d::kTridiagLaneWidth;
  Problem p;
  p.n = n;
  p.systems = systems;
  const std::size_t total = static_cast<std::size_t>(n) * systems;
  p.a.resize(total);
  p.b.resize(total);
  p.c.resize(total);
  p.d.resize(total);
  p.la.resize(total);
  p.lb.resize(total);
  p.lc.resize(total);
  p.ld.resize(total);
  double x = 0.0;
  for (int s = 0; s < systems; ++s) {
    for (int i = 0; i < n; ++i) {
      const std::size_t pi = static_cast<std::size_t>(s) * n + i;
      const std::size_t li = static_cast<std::size_t>(s / W) * n * W +
                             static_cast<std::size_t>(i) * W + (s % W);
      const double av = 1.0 + 0.1 * (weyl(x) - 0.5);
      const double cv = 1.0 + 0.1 * (weyl(x) - 0.5);
      const double bv = 3.5 + weyl(x);  // dominant: |b| > |a| + |c|
      const double dv = weyl(x) - 0.5;
      p.a[pi] = av, p.b[pi] = bv, p.c[pi] = cv, p.d[pi] = dv;
      p.la[li] = av, p.lb[li] = bv, p.lc[li] = cv, p.ld[li] = dv;
    }
  }
  return p;
}

/// One pass = restore the overwritten arrays, then solve every system.
/// The restore cost is identical on both sides, so the ratio is fair.
double time_scalar(const Problem& p, int passes) {
  std::vector<double> b(p.b), d(p.d);
  const auto t0 = clock_type::now();
  for (int pass = 0; pass < passes; ++pass) {
    std::memcpy(b.data(), p.b.data(), b.size() * sizeof(double));
    std::memcpy(d.data(), p.d.data(), d.size() * sizeof(double));
    for (int s = 0; s < p.systems; ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * p.n;
      f3d::solve_tridiagonal(
          std::span<const double>(p.a.data() + off, p.n),
          std::span<double>(b.data() + off, p.n),
          std::span<const double>(p.c.data() + off, p.n),
          std::span<double>(d.data() + off, p.n));
    }
  }
  const std::chrono::duration<double> dt = clock_type::now() - t0;
  return dt.count() / passes;
}

double time_lanes(const Problem& p, int passes) {
  constexpr int W = f3d::kTridiagLaneWidth;
  std::vector<double> b(p.lb), d(p.ld);
  const auto t0 = clock_type::now();
  for (int pass = 0; pass < passes; ++pass) {
    std::memcpy(b.data(), p.lb.data(), b.size() * sizeof(double));
    std::memcpy(d.data(), p.ld.data(), d.size() * sizeof(double));
    for (int g = 0; g < p.systems / W; ++g) {
      const std::size_t off = static_cast<std::size_t>(g) * p.n * W;
      f3d::solve_tridiagonal_lanes(p.la.data() + off, b.data() + off,
                                   p.lc.data() + off, d.data() + off, p.n);
    }
  }
  const std::chrono::duration<double> dt = clock_type::now() - t0;
  return dt.count() / passes;
}

/// Max |scalar - lanes| over every solution element: the bench refuses to
/// report a speedup for a kernel that is not solving the same systems.
double max_solution_diff(const Problem& p) {
  constexpr int W = f3d::kTridiagLaneWidth;
  std::vector<double> b(p.b), d(p.d), lb(p.lb), ld(p.ld);
  for (int s = 0; s < p.systems; ++s) {
    const std::size_t off = static_cast<std::size_t>(s) * p.n;
    f3d::solve_tridiagonal(std::span<const double>(p.a.data() + off, p.n),
                           std::span<double>(b.data() + off, p.n),
                           std::span<const double>(p.c.data() + off, p.n),
                           std::span<double>(d.data() + off, p.n));
  }
  for (int g = 0; g < p.systems / W; ++g) {
    const std::size_t off = static_cast<std::size_t>(g) * p.n * W;
    f3d::solve_tridiagonal_lanes(p.la.data() + off, lb.data() + off,
                                 p.lc.data() + off, ld.data() + off, p.n);
  }
  double worst = 0.0;
  for (int s = 0; s < p.systems; ++s) {
    for (int i = 0; i < p.n; ++i) {
      const std::size_t pi = static_cast<std::size_t>(s) * p.n + i;
      const std::size_t li = static_cast<std::size_t>(s / W) * p.n * W +
                             static_cast<std::size_t>(i) * W + (s % W);
      const double diff = std::abs(d[pi] - ld[li]);
      if (diff > worst) worst = diff;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  int n = 96;
  int systems = 128;
  int passes = 40;
  int repeats = 3;
  const bool avx2 = f3d::tridiag_lanes_kernel() == "avx2";
  double min_ratio = avx2 ? 2.0 : 0.0;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--n" && (v = next())) n = std::atoi(v);
    else if (a == "--systems" && (v = next())) systems = std::atoi(v);
    else if (a == "--passes" && (v = next())) passes = std::atoi(v);
    else if (a == "--repeats" && (v = next())) repeats = std::atoi(v);
    else if (a == "--min-ratio" && (v = next())) min_ratio = std::atof(v);
    else if (a == "--out" && (v = next())) out = v;
    else {
      std::fprintf(stderr,
                   "usage: micro_simd_tridiag [--n N] [--systems S] "
                   "[--passes P] [--repeats R] [--min-ratio X] "
                   "[--out PATH]\n");
      return 2;
    }
  }
  constexpr int W = f3d::kTridiagLaneWidth;
  if (n < 2 || systems < W || passes < 1 || repeats < 1) return 2;
  systems -= systems % W;

  std::printf("SIMD pencil tridiag — kernel '%s', %d systems of length %d, "
              "best of %d x %d passes\n\n",
              std::string(f3d::tridiag_lanes_kernel()).c_str(), systems, n,
              repeats, passes);

  const Problem p = make_problem(n, systems);
  const double diff = max_solution_diff(p);
  // The two kernels differ only by FMA rounding: O(eps) per element.
  if (!(diff < 1e-10)) {
    std::fprintf(stderr,
                 "micro_simd_tridiag: lane kernel diverged from the scalar "
                 "solver (max diff %.3g) — refusing to time it\n", diff);
    return 1;
  }

  double scalar_s = 1e300, lanes_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    scalar_s = std::min(scalar_s, time_scalar(p, passes));
    lanes_s = std::min(lanes_s, time_lanes(p, passes));
  }
  const double ratio = scalar_s / lanes_s;
  const double flops = f3d::tridiag_flops(n) * systems;

  std::printf("scalar pencils : %9.3f us/pass  (%.2f GFLOP/s)\n",
              scalar_s * 1e6, flops / scalar_s * 1e-9);
  std::printf("simd lanes     : %9.3f us/pass  (%.2f GFLOP/s)\n",
              lanes_s * 1e6, flops / lanes_s * 1e-9);
  std::printf("speedup        : %9.2fx  (floor %.2fx)\n", ratio, min_ratio);
  std::printf("max |diff|     : %9.3g\n\n", diff);

  bench::JsonRecord rec;
  rec.set("bench", "micro_simd_tridiag")
      .set("kernel", std::string(f3d::tridiag_lanes_kernel()))
      .set("n", n)
      .set("systems", systems)
      .set("passes", passes)
      .set("repeats", repeats)
      .set("scalar_us_per_pass", scalar_s * 1e6)
      .set("simd_us_per_pass", lanes_s * 1e6)
      .set("speedup", ratio)
      .set("min_ratio", min_ratio)
      .set("max_abs_diff", diff);
  if (!bench::upsert_json_line(out, "micro_simd_tridiag", rec)) {
    std::fprintf(stderr, "micro_simd_tridiag: cannot write %s\n",
                 out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (ratio < min_ratio) {
    std::fprintf(stderr,
                 "micro_simd_tridiag: speedup %.2fx below the %.2fx floor\n",
                 ratio, min_ratio);
    return 1;
  }
  return 0;
}
