// Ablation for §8: straight loop-level parallelism vs Taft's Multi-Level
// Parallelism (zones concurrent on processor groups, loop-level inside
// each group) on the paper's own 1M-point case — whose zones are badly
// imbalanced along J (15/87/89) but share K/L loop dimensions.
#include <cstdio>

#include "common.hpp"
#include "model/mlp.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — loop-level parallelism vs multi-level parallelism (MLP), "
      "1M-point case on the SGI Origin 2000");

  const auto trace = bench::measure_full_size_trace(
      f3d::paper_1m_case(0.12), f3d::paper_1m_case(1.0), "mlp");
  const auto machine = llp::model::origin2000_r12k_300();
  llp::simsmp::SmpSimulator sim(machine);

  llp::Table t({"procs", "LLP steps/hr", "MLP steps/hr", "MLP groups",
                "group imbalance", "winner"});
  for (int p : {4, 8, 16, 32, 64, 96, 128}) {
    const auto llp_pt = sim.run(trace, p);
    const auto mlp = llp::model::predict_step_time_mlp(trace, machine, p);
    const double mlp_sph = 3600.0 / mlp.seconds_per_step;
    std::string groups;
    for (std::size_t z = 0; z < mlp.group_sizes.size(); ++z) {
      if (z) groups += "/";
      groups += std::to_string(mlp.group_sizes[z]);
    }
    t.add_row({std::to_string(p), llp::strfmt("%.0f", llp_pt.steps_per_hour),
               llp::strfmt("%.0f", mlp_sph), groups,
               llp::strfmt("%.2f", mlp.group_imbalance()),
               mlp_sph > llp_pt.steps_per_hour ? "MLP" : "LLP"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\n'Straight loop-level parallelism and MLP appear to be\n"
      "complementary techniques, each with their own strengths and\n"
      "weaknesses' (§8): at low-to-moderate processor counts plain LLP\n"
      "wins — integer groups cannot balance 15/87/89-point zones and the\n"
      "whole machine attacks each zone in turn — while at high counts MLP\n"
      "wins because each zone's K/L stair-step is evaluated at the group\n"
      "size instead of the full machine and fork-joins span fewer\n"
      "processors.\n");
  return 0;
}
