// Ablation for the paper's §2 premise: "if one can efficiently tune one of
// these jobs to run on a parallel computer, then any job that exhibits an
// acceptable level of performance when using one processor of a C90 should
// exhibit an acceptable level of performance when using a modest number of
// RISC processors" — and 10x-larger problems should be fine on a
// 50-100 GFLOPS-class SMP.
#include <cstdio>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — §2 premise: one C90 vector processor vs a modest number "
      "of RISC SMP processors (1M-point case)");

  const auto trace = bench::measure_full_size_trace(
      f3d::paper_1m_case(0.12), f3d::paper_1m_case(1.0), "c90");

  llp::simsmp::SmpSimulator c90(llp::model::cray_c90());
  llp::simsmp::SmpSimulator origin(llp::model::origin2000_r12k_300());

  // The bar: one C90 processor running the (perfectly vectorized) code.
  const auto bar = c90.run(trace, 1);
  std::printf("C90, 1 processor: %.0f steps/hr (%.0f MFLOPS sustained)\n\n",
              bar.steps_per_hour, bar.mflops);

  llp::Table t({"Origin 2000 procs", "steps/hr", "vs one C90 proc"});
  int crossover = -1;
  for (int p : {1, 2, 3, 4, 6, 8, 16, 32}) {
    const auto pt = origin.run(trace, p);
    const double ratio = pt.steps_per_hour / bar.steps_per_hour;
    if (crossover < 0 && ratio >= 1.0) crossover = p;
    t.add_row({std::to_string(p), llp::strfmt("%.0f", pt.steps_per_hour),
               llp::strfmt("%.2fx", ratio)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\n%d RISC processors match one C90 vector processor — a 'modest\n"
      "number', as the premise requires (sustained-rate ratio 450/237).\n",
      crossover);

  bench::heading(
      "And the 10x problem: 59M-point case on the full Origin vs a full "
      "16-processor C90");
  const auto big = bench::measure_full_size_trace(
      f3d::paper_59m_case(0.05), f3d::paper_59m_case(1.0), "c90big");
  const auto c90_full = c90.run(big, 16);
  const auto origin_64 = origin.run(big, 64);
  const auto origin_128 = origin.run(big, 128);
  llp::Table b({"machine", "steps/hr", "delivered GFLOPS"});
  b.add_row({"Cray C90, 16p", llp::strfmt("%.1f", c90_full.steps_per_hour),
             llp::strfmt("%.1f", c90_full.mflops / 1000.0)});
  b.add_row({"Origin 2000, 64p", llp::strfmt("%.1f", origin_64.steps_per_hour),
             llp::strfmt("%.1f", origin_64.mflops / 1000.0)});
  b.add_row({"Origin 2000, 128p",
             llp::strfmt("%.1f", origin_128.steps_per_hour),
             llp::strfmt("%.1f", origin_128.mflops / 1000.0)});
  std::printf("%s", b.to_string().c_str());
  std::printf(
      "\nThe 10x-bigger problem runs acceptably on the moderate-sized\n"
      "(10-100 GFLOPS-peak) SMP — the paper's motivation for choosing the\n"
      "class of vectorizable codes in the first place.\n");
  return 0;
}
