// Ablation for §4 Example 1 and the related-work observation ([10]): the
// same loop nest parallelized at the inner, middle, and outer level. A
// 100^3 zone at 100 cycles/point is swept once per time step; the only
// difference between the three traces is where the fork-join sits, i.e.
// how many synchronization events amortize the same work (Table 2).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — parallelize the inner vs middle vs outer loop of a 100^3 "
      "nest (100 cycles/point, SGI Origin 2000 300 MHz)");

  const auto machine = llp::model::origin2000_r12k_300();
  // 1e6 points x 100 cycles at 300 MHz == 1e8 cycles; express as flops at
  // the delivered rate so seconds_for_flops gives the same time.
  const double flops =
      1e8 / machine.clock_hz * machine.sustained_mflops_per_proc * 1e6;

  auto trace_for = [&](double invocations, std::int64_t trips) {
    llp::model::WorkTrace t;
    t.loops.push_back(
        llp::model::LoopWork{"nest", flops, trips, invocations, true, 0.0});
    return t;
  };
  // Inner: one fork-join per (k,l) line; middle: one per l plane; outer:
  // one per pass.
  const auto inner = trace_for(100.0 * 100.0, 100);
  const auto middle = trace_for(100.0, 100);
  const auto outer = trace_for(1.0, 100);

  llp::simsmp::SmpSimulator sim(machine);
  llp::Table t({"procs", "inner s/step", "middle s/step", "outer s/step",
                "inner vs serial", "outer speedup"});
  const double serial = sim.run(outer, 1).seconds_per_step;
  for (int p : {1, 2, 8, 32, 64, 128}) {
    const double ti = sim.run(inner, p).seconds_per_step;
    const double tm = sim.run(middle, p).seconds_per_step;
    const double to = sim.run(outer, p).seconds_per_step;
    t.add_row({std::to_string(p), llp::strfmt("%.4f", ti),
               llp::strfmt("%.4f", tm), llp::strfmt("%.4f", to),
               llp::strfmt("%.2fx", serial / ti),
               llp::strfmt("%.2fx", serial / to)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nInner-loop parallelization pays 10,000 fork-joins per sweep and\n"
      "runs *slower* than serial at scale — the parallel slowdown the\n"
      "paper's related work reports for fully automatic parallelization.\n"
      "The outer loop pays one fork-join and scales to the stair-step\n"
      "limit. This is Table 2 acted out.\n");
  return 0;
}
