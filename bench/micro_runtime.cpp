// google-benchmark microbenchmarks of the doacross runtime itself:
// fork-join cost, schedule overheads, reduction. These quantify this
// host's entry in the paper's 2,000..1,000,000-cycle sync-cost range
// (Table 1's x-axis).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "core/llp.hpp"

namespace {

void BM_ForkJoin(benchmark::State& state) {
  llp::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.run([](int) {});
  }
  state.counters["lanes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelForStatic(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  const llp::ForOptions opts =
      llp::ForOptions{}.with_threads(2).with_schedule(
          llp::Schedule::kStaticBlock);
  for (auto _ : state) {
    llp::parallel_for(
        0, n, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * 0.5; },
        opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForStatic)->Arg(100)->Arg(10000);

void BM_ParallelForDynamic(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  const llp::ForOptions opts = llp::ForOptions{}
                                   .with_threads(2)
                                   .with_schedule(llp::Schedule::kDynamic)
                                   .with_chunk(16);
  for (auto _ : state) {
    llp::parallel_for(
        0, n, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * 0.5; },
        opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForDynamic)->Arg(100)->Arg(10000);

void BM_ParallelForGuided(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  const llp::ForOptions opts =
      llp::ForOptions{}.with_threads(2).with_schedule(llp::Schedule::kGuided);
  for (auto _ : state) {
    llp::parallel_for(
        0, n, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * 0.5; },
        opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForGuided)->Arg(10000);

void BM_ParallelReduce(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const llp::ForOptions opts = llp::ForOptions{}.with_threads(2);
  for (auto _ : state) {
    const double s = llp::parallel_reduce<double>(
        0, n, 0.0, [](double a, double b) { return a + b; },
        [](std::int64_t i, double& acc) { acc += 1.0 / (1.0 + i); }, opts);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelReduce)->Arg(10000);

void BM_SerialBaseline(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = i * 0.5;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerialBaseline)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
