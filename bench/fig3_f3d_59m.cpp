// Reproduces paper Figure 3: time steps/hour vs number of processors for
// the 59-million grid point case on four machines — 64p and 128p SGI
// Origin 2000s at 195 MHz, the 128p 300 MHz Origin 2000, and the SUN HPC
// 10000.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Figure 3 — shared-memory F3D, 59-million grid point case: time "
      "steps/hour vs processors");

  const auto trace = bench::measure_full_size_trace(
      f3d::paper_59m_case(0.05), f3d::paper_59m_case(1.0), "f3");

  llp::simsmp::SmpSimulator o195_64(llp::model::origin2000_r10k_195(64));
  llp::simsmp::SmpSimulator o195_128(llp::model::origin2000_r10k_195(128));
  llp::simsmp::SmpSimulator o300(llp::model::origin2000_r12k_300());
  llp::simsmp::SmpSimulator sun(llp::model::sun_hpc10000());

  llp::Table t({"procs", "Origin 195MHz (64p)", "Origin 195MHz (128p)",
                "Origin 300MHz (128p)", "SUN HPC 10000 (64p)"});
  for (int p = 1; p <= 128; p += (p < 16 ? 3 : 8)) {
    std::vector<std::string> row = {std::to_string(p)};
    row.push_back(p <= 64
                      ? llp::strfmt("%.1f", o195_64.run(trace, p).steps_per_hour)
                      : std::string("-"));
    row.push_back(llp::strfmt("%.1f", o195_128.run(trace, p).steps_per_hour));
    row.push_back(llp::strfmt("%.1f", o300.run(trace, p).steps_per_hour));
    row.push_back(p <= 64 ? llp::strfmt("%.1f", sun.run(trace, p).steps_per_hour)
                          : std::string("-"));
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "\nShape notes (vs the paper's Figure 3):\n"
      "  * the big case scales much further before flattening — available\n"
      "    parallelism is 350/450 trips instead of 70/75;\n"
      "  * performance is nearly flat between ~90 and ~112 processors\n"
      "    (ceil(450/p) = 5 across that window; the paper reports the flat\n"
      "    between 88 and 104) and rises again by 120;\n"
      "  * the two 195 MHz Origins trace the same curve, the 64p machine\n"
      "    simply stopping at 64 — and the 300 MHz machine sits ~1.5x\n"
      "    higher, matching the clock/delivered-rate ratio.\n");
  return 0;
}
