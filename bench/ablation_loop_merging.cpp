// Ablation for §4 Example 2: merging two adjacent parallel loops under one
// common outer loop halves the number of synchronization events (and, with
// code blocking, can also improve locality — not modeled here).
#include <cstdio>

#include "common.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Ablation — Example 2, merging loops to reduce synchronization costs "
      "(two K/J nests under one L loop; SGI Origin 2000)");

  const auto machine = llp::model::origin2000_r12k_300();
  // Each of the two loop bodies: one 75 x 70 K/J plane's worth of work at
  // ~50 cycles/point — the modest per-iteration loops (Example 2) whose
  // fork-join cost is NOT negligible against their compute.
  const double cycles_each = 75.0 * 70.0 * 50.0;
  const double flops_each =
      cycles_each / machine.clock_hz * machine.sustained_mflops_per_proc * 1e6;

  llp::model::WorkTrace separate;
  separate.loops.push_back(
      llp::model::LoopWork{"loop1", flops_each, 70, 1.0, true, 0.0});
  separate.loops.push_back(
      llp::model::LoopWork{"loop2", flops_each, 70, 1.0, true, 0.0});

  llp::model::WorkTrace merged;
  merged.loops.push_back(llp::model::LoopWork{"merged", 2.0 * flops_each, 70,
                                              1.0, true, 0.0});

  llp::simsmp::SmpSimulator sim(machine);
  llp::Table t({"procs", "separate s/step", "merged s/step", "sync saved",
                "gain"});
  for (int p : {2, 8, 32, 64, 128}) {
    const auto ts = sim.run(separate, p);
    const auto tm = sim.run(merged, p);
    t.add_row({std::to_string(p),
               llp::strfmt("%.5f", ts.seconds_per_step),
               llp::strfmt("%.5f", tm.seconds_per_step),
               llp::strfmt("%.5f", ts.breakdown.sync_s - tm.breakdown.sync_s),
               llp::strfmt("%.2f%%", 100.0 * (ts.seconds_per_step -
                                              tm.seconds_per_step) /
                                         ts.seconds_per_step)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nMerging halves the fork-joins per step. The gain grows with the\n"
      "processor count because the sync cost does while the compute share\n"
      "shrinks — at 128 processors it is no longer a rounding error.\n");
  return 0;
}
