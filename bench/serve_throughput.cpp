// serve_throughput — is the daemon path cheap enough to live behind?
//
// Measures jobs/second for a fixed small solver job three ways:
//   baseline   the job run directly on a private runtime (no server)
//   serve c=1  the same jobs through an in-process Server, one at a time
//   serve c=K  the same jobs K at a time behind the fair-share scheduler
//
// The acceptance gate is serve@c1 >= 0.9x baseline: submitting through
// the job table, scheduler thread, event log, and per-job runtime must
// cost at most 10% against running the solver by hand. Concurrency rows
// are reported for scaling context (on a shared CI box they mostly show
// the fair-share split working, not a speedup).
//
// Results land in BENCH_serve.json (override with --out PATH); exits 1
// when the gate is breached, so the smoke test doubles as the regression
// gate.
//
//   serve_throughput [--jobs N] [--steps N] [--n N] [--out PATH]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "f3d/solver.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

f3d::serve::JobSpec bench_spec(int n, int steps) {
  f3d::serve::JobSpec spec;
  spec.case_name = "cube";
  spec.n = n;
  spec.steps = steps;
  spec.wall = true;
  spec.pulse = 0.05;
  spec.threads = 1;    // pinned: every path runs the identical trajectory
  spec.ckpt_every = 0; // no durability in the throughput loop
  return spec;
}

// The no-server reference: build + run the same job back to back.
double baseline_jobs_per_s(const f3d::serve::JobSpec& spec, int jobs) {
  llp::Runtime rt(1);
  const auto start = Clock::now();
  for (int i = 0; i < jobs; ++i) {
    auto grid = f3d::serve::build_case_grid(spec);
    f3d::Solver solver(grid, f3d::serve::build_solver_config(spec), rt);
    solver.run(spec.steps);
    if (!std::isfinite(solver.residual())) {
      std::fprintf(stderr, "baseline run diverged\n");
      std::exit(1);
    }
  }
  return jobs / seconds_since(start);
}

// The same jobs through an in-process server, `concurrent` in flight.
double serve_jobs_per_s(const f3d::serve::JobSpec& spec, int jobs,
                        int concurrent) {
  f3d::serve::ServerConfig cfg;   // no socket, no state dir
  cfg.total_threads = concurrent; // one lane per pinned job
  cfg.max_running = concurrent;
  f3d::serve::Server server(cfg);
  server.start();
  const auto start = Clock::now();
  std::vector<std::uint64_t> inflight;
  int submitted = 0;
  while (submitted < jobs || !inflight.empty()) {
    while (submitted < jobs &&
           inflight.size() < static_cast<std::size_t>(concurrent)) {
      std::string error;
      const auto id = server.submit(spec, &error);
      if (id == 0) {
        std::fprintf(stderr, "submit failed: %s\n", error.c_str());
        std::exit(1);
      }
      inflight.push_back(id);
      ++submitted;
    }
    f3d::serve::JobStatus status;
    if (!server.wait_terminal(inflight.front(), 600.0, &status) ||
        status.state != f3d::serve::JobState::kDone) {
      std::fprintf(stderr, "job %llu did not finish: %s\n",
                   static_cast<unsigned long long>(inflight.front()),
                   status.error.c_str());
      std::exit(1);
    }
    inflight.erase(inflight.begin());
  }
  const double rate = jobs / seconds_since(start);
  server.stop();
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 24;
  int steps = 12;
  int n = 10;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: serve_throughput [--jobs N] [--steps N]"
                             " [--n N] [--out PATH]\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--jobs") jobs = std::atoi(need());
    else if (a == "--steps") steps = std::atoi(need());
    else if (a == "--n") n = std::atoi(need());
    else if (a == "--out") out = need();
    else {
      std::fprintf(stderr, "usage: serve_throughput [--jobs N] [--steps N]"
                           " [--n N] [--out PATH]\n");
      return 2;
    }
  }
  if (jobs < 1 || steps < 1 || n < 4) {
    std::fprintf(stderr, "usage: serve_throughput: bad argument values\n");
    return 2;
  }

  const auto spec = bench_spec(n, steps);
  std::printf("serve_throughput: %d jobs of cube n=%d steps=%d (pinned 1 "
              "lane each)\n",
              jobs, n, steps);

  const double base = baseline_jobs_per_s(spec, jobs);
  std::printf("  %-14s %8.2f jobs/s\n", "baseline", base);
  const double c1 = serve_jobs_per_s(spec, jobs, 1);
  std::printf("  %-14s %8.2f jobs/s\n", "serve c=1", c1);
  const double c2 = serve_jobs_per_s(spec, jobs, 2);
  std::printf("  %-14s %8.2f jobs/s\n", "serve c=2", c2);
  const double c4 = serve_jobs_per_s(spec, jobs, 4);
  std::printf("  %-14s %8.2f jobs/s\n", "serve c=4", c4);

  const double ratio = c1 / base;
  std::printf("  serve/baseline ratio at c=1: %.3f (gate: >= 0.9)\n", ratio);

  f3d::serve::Json j;
  j["bench"] = "serve_throughput";
  j["jobs"] = jobs;
  j["case"] = "cube";
  j["n"] = n;
  j["steps"] = steps;
  j["baseline_jobs_per_s"] = base;
  j["serve_c1_jobs_per_s"] = c1;
  j["serve_c2_jobs_per_s"] = c2;
  j["serve_c4_jobs_per_s"] = c4;
  j["c1_ratio"] = ratio;
  j["gate"] = 0.9;
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_throughput: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", j.dump().c_str());
  std::fclose(f);
  std::printf("  wrote %s\n", out.c_str());

  if (ratio < 0.9) {
    std::fprintf(stderr,
                 "serve_throughput: FAIL — serving overhead above 10%% "
                 "(ratio %.3f < 0.9)\n",
                 ratio);
    return 1;
  }
  return 0;
}
