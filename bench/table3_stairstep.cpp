// Reproduces paper Table 3: predicted speedup for a loop with 15 units of
// parallelism, showing the stair-step.
#include <cstdio>

#include "common.hpp"
#include "model/stairstep.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Table 3 — predicted speedup for a loop with 15 units of parallelism");

  llp::Table t({"processors", "max units on one processor",
                "predicted speedup", "efficiency"});
  for (int p = 1; p <= 15; ++p) {
    t.add_row({std::to_string(p),
               std::to_string(llp::model::max_units_per_processor(15, p)),
               llp::strfmt("%.3f", llp::model::stairstep_speedup(15, p)),
               llp::strfmt("%.3f", llp::model::stairstep_efficiency(15, p))});
  }
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "\nPaper rows (1 / 4 / 5-7 / 8-14 / 15 processors -> 1.0 / 3.75 / 5.0\n"
      "/ 7.5 / 15.0) are reproduced exactly: S(n,p) = n / ceil(n/p).\n"
      "Speedup jump points for n=15: ");
  for (int j : llp::model::speedup_jump_points(15, 15)) std::printf("%d ", j);
  std::printf("\n");
  return 0;
}
