// Reproduces paper Table 4: measured performance of the RISC-optimized
// shared-memory F3D (time steps/hour and delivered MFLOPS) on the SUN HPC
// 10000 (64p) and SGI Origin 2000 (128p, R12000/300 MHz) for the 1M and
// 59M grid point cases.
//
// Method: the real solver runs serially on this host at reduced scale with
// every loop instrumented; the measured trace is extrapolated exactly to
// the full-size zones (per-point work is size-independent — a tested
// property) and replayed by the SMP simulator. Absolute rates are anchored
// to the machines' delivered-MFLOPS ratings; the p-dependence (stair-step,
// sync, Amdahl) comes from the measured loop structure.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "perf/metrics.hpp"
#include "simsmp/smp_simulator.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  double sun_steps;  // <0 means N/A in the paper
  double sgi_steps;
};

// ARL-TR-2556 Table 4, time steps/hour (start-up and termination removed).
const std::map<int, PaperRow> kPaper1M = {
    {1, {138, 181}},    {32, {2786, 2877}}, {48, {3093, 3545}},
    {64, {2819, 3694}}, {72, {-1, 4105}},   {88, {-1, 5087}},
};
const std::map<int, PaperRow> kPaper59M = {
    {1, {2.1, 2.3}},  {32, {45, 59}},    {48, {61, 73}},   {64, {73, 91}},
    {72, {-1, 101}},  {88, {-1, 128}},   {104, {-1, 131}}, {112, {-1, 144}},
    {120, {-1, 150}}, {124, {-1, 153}},
};

void run_case(const char* title, const f3d::CaseSpec& scaled,
              const f3d::CaseSpec& full, const std::string& prefix,
              const std::map<int, PaperRow>& paper) {
  bench::heading(title);
  std::printf("full-size points: %.2fM;  measured on %.0fk points (scaled)\n",
              static_cast<double>(full.total_points()) / 1e6,
              static_cast<double>(scaled.total_points()) / 1e3);

  const auto trace = bench::measure_full_size_trace(scaled, full, prefix);

  llp::simsmp::SmpSimulator sun(llp::model::sun_hpc10000());
  llp::simsmp::SmpSimulator sgi(llp::model::origin2000_r12k_300());

  llp::Table t({"procs", "SUN steps/hr", "SUN MFLOPS", "SUN paper",
                "SGI steps/hr", "SGI MFLOPS", "SGI paper"});
  for (int p : llp::simsmp::table4_processor_counts(128)) {
    std::vector<std::string> row = {std::to_string(p)};
    if (p <= sun.machine().max_processors) {
      const auto pt = sun.run(trace, p);
      row.push_back(llp::strfmt("%.0f", pt.steps_per_hour));
      row.push_back(llp::perf::eformat(pt.mflops));
    } else {
      row.push_back("N/A");
      row.push_back("N/A");
    }
    const auto it = paper.find(p);
    row.push_back(it != paper.end() && it->second.sun_steps >= 0
                      ? llp::strfmt("%.0f", it->second.sun_steps)
                      : "-");
    const auto pt = sgi.run(trace, p);
    row.push_back(llp::strfmt("%.0f", pt.steps_per_hour));
    row.push_back(llp::perf::eformat(pt.mflops));
    row.push_back(it != paper.end() && it->second.sgi_steps >= 0
                      ? llp::strfmt("%.0f", it->second.sgi_steps)
                      : "-");
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main() {
  run_case(
      "Table 4a — 1-million grid point case (zones 15/87/89 x 75 x 70)",
      f3d::paper_1m_case(0.12), f3d::paper_1m_case(1.0), "t4.m1", kPaper1M);
  run_case(
      "Table 4b — 59-million grid point case (zones 29/173/175 x 450 x 350)",
      f3d::paper_59m_case(0.05), f3d::paper_59m_case(1.0), "t4.m59",
      kPaper59M);

  std::printf(
      "\nReading the shape against the paper:\n"
      "  * p=1 delivered MFLOPS anchor at the Table 4 ratings (180/237).\n"
      "  * 1M case: near-flat between 48 and 64 processors (trips 70/75),\n"
      "    then a jump by 72 — the paper's stair step.\n"
      "  * 59M case: flat-ish 88..104 (ceil(450/p)=5, ceil(350/p)=4), "
      "rising\n"
      "    again by 112-124 — matching the measured flats.\n"
      "  * Absolute steps/hour are the same order as the paper's; exact\n"
      "    values differ because our solver's work per point differs from\n"
      "    F3D's (see EXPERIMENTS.md).\n");
  return 0;
}
