// Reproduces paper Table 5: the systems used in tuning/parallelizing the
// RISC-optimized shared-memory F3D — rendered here as the machine-model
// inventory this library ships, with the paper-quoted role of each.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "model/machine.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Table 5 — systems used in tuning/parallelizing F3D, as modeled "
      "machine configurations");

  struct Row {
    llp::model::MachineConfig config;
    const char* paper_role;
  };
  const std::vector<Row> rows = {
      {llp::model::sgi_power_challenge(),
       "serial tuning testbed (>10x from RISC tuning, §5)"},
      {llp::model::origin2000_r10k_195(64),
       "scaling runs, Figure 3 (64p, 195 MHz)"},
      {llp::model::origin2000_r10k_195(128),
       "scaling runs, Figure 3 (128p, 195 MHz)"},
      {llp::model::origin2000_r12k_300(),
       "headline results, Table 4 / Figures 2-3"},
      {llp::model::sun_hpc10000(),
       "headline results, Table 4 / Figures 2-3 (PCF directives)"},
      {llp::model::convex_spp1000(),
       "heavily-NUMA port; problems never solved (§5-§7)"},
      {llp::model::hp_v2500(), "Figure 2 'Guide' curve (16p)"},
      {llp::model::cray_c90(),
       "the vector baseline the class of codes comes from (§2)"},
  };

  llp::Table t({"machine", "clock", "peak MF/proc", "delivered MF/proc",
                "max procs", "L2", "paper role"});
  for (const auto& r : rows) {
    const auto& m = r.config;
    t.add_row({m.name, llp::strfmt("%.0f MHz", m.clock_hz / 1e6),
               llp::strfmt("%.0f", m.peak_mflops_per_proc),
               llp::strfmt("%.0f", m.sustained_mflops_per_proc),
               std::to_string(m.max_processors),
               m.l2_cache_bytes > 0
                   ? llp::strfmt("%.0f MB", m.l2_cache_bytes / (1 << 20))
                   : std::string("none"),
               r.paper_role});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nPaper Table 5 also lists the SGI R4400 Challenge/Indigo2, R8000\n"
      "Power Challenge, SuperSPARC SPARCcenter 2000, and PA-7200 SPP-1600 —\n"
      "earlier variants of the families above, used to keep the tuning\n"
      "portable across TLB/cache sizes and compilers (§6). The models here\n"
      "cover every family the evaluation section reports numbers for.\n");
  return 0;
}
