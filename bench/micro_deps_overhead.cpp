// Cost of the static dependence analyzer (analyze/static/) on the fig2
// F3D case — proving the "declarations are free" claim the design makes:
//
//   * one-time cost: deriving every hot-region affine signature,
//     declaring it, and running the full GCD/Banerjee classification must
//     stay under 1% of ONE solver run (steps x step time). This is the
//     hard gate: the static pass is pure integer arithmetic on a dozen
//     declared regions, so it should be microseconds against milliseconds.
//   * steady state: a solver stepping WITH its signatures declared vs the
//     same solver with the registry emptied. Nothing in the hot loops
//     consults the registry per iteration (the tuner caches legality per
//     region, the logger only on a finding), so the ratio is pure noise
//     around 1.0; a loose sanity bound guards against someone ever putting
//     a registry lookup on the iteration path.
//
// Exits nonzero when either bound is violated; results land as one JSON
// line in BENCH_micro.json next to the other micro benches.
//
//   micro_deps_overhead [--scale S] [--steps N] [--repeats R] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/static/registry.hpp"
#include "bench_json.hpp"
#include "common.hpp"
#include "f3d/signatures.hpp"
#include "util/format.hpp"

namespace {

double run_steps(const f3d::CaseSpec& spec, int steps, bool declared) {
  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  f3d::Solver solver(grid, cfg);  // define_regions declares the signatures
  if (!declared) llp::analyze::clear_declarations();
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) solver.step();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / steps;
}

double best_of(const f3d::CaseSpec& spec, int steps, int repeats,
               bool declared) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double s = run_steps(spec, steps, declared);
    if (s < best) best = s;
  }
  return best;
}

/// Best-of time of the whole static pass: derive + declare every signature
/// for `grid`, then classify every declared region through the full
/// GCD/Banerjee engine.
double time_static_pass(const f3d::MultiZoneGrid& grid,
                        const f3d::SolverConfig& cfg, int repeats,
                        std::size_t* regions) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    llp::analyze::clear_declarations();
    const auto t0 = std::chrono::steady_clock::now();
    f3d::declare_region_signatures(grid, cfg, /*overwrite=*/true);
    const auto table = llp::analyze::classification_table();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    *regions = table.size();
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.12;
  int steps = 3;
  int repeats = 3;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--scale" && (v = next())) scale = std::atof(v);
    else if (a == "--steps" && (v = next())) steps = std::atoi(v);
    else if (a == "--repeats" && (v = next())) repeats = std::atoi(v);
    else if (a == "--out" && (v = next())) out = v;
    else {
      std::fprintf(stderr,
                   "usage: micro_deps_overhead [--scale S] [--steps N] "
                   "[--repeats R] [--out PATH]\n");
      return 2;
    }
  }
  if (scale <= 0.0 || steps < 1 || repeats < 1) return 2;

  bench::heading(llp::strfmt(
      "Static dependence pass overhead — fig2 case at scale %.2f, %d steps, "
      "best of %d", scale, steps, repeats));
  const f3d::CaseSpec spec = f3d::paper_1m_case(scale);
  std::printf("grid: %zu points, %d threads\n\n", spec.total_points(),
              llp::num_threads());

  (void)run_steps(spec, 1, /*declared=*/true);  // warm-up, off the books

  const double undeclared = best_of(spec, steps, repeats, /*declared=*/false);
  const double declared = best_of(spec, steps, repeats, /*declared=*/true);
  const double steady_ratio = declared / undeclared;

  auto grid = f3d::build_grid(spec);
  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  std::size_t regions = 0;
  const double pass_s = time_static_pass(grid, cfg, repeats, &regions);
  std::size_t not_doall = 0;
  for (const auto& row : llp::analyze::classification_table()) {
    if (!row.verdict.parallel_ok()) ++not_doall;
  }
  const double overhead_pct =
      100.0 * pass_s / (static_cast<double>(steps) * declared);

  std::printf("undeclared   : %9.3f ms/step\n", undeclared * 1e3);
  std::printf("declared     : %9.3f ms/step  (ratio %.3f, sanity < 1.10)\n",
              declared * 1e3, steady_ratio);
  std::printf("static pass  : %9.3f us for %zu region(s)\n", pass_s * 1e6,
              regions);
  std::printf("one-time cost: %9.4f %% of a %d-step run  (budget < 1%%)\n\n",
              overhead_pct, steps);

  bool ok = true;
  if (overhead_pct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: static pass costs %.3f%% of a run, budget is 1%%\n",
                 overhead_pct);
    ok = false;
  }
  if (steady_ratio >= 1.10) {
    std::fprintf(stderr,
                 "FAIL: declared steady-state ratio %.3f — something now "
                 "consults the registry on the iteration path\n",
                 steady_ratio);
    ok = false;
  }
  if (regions == 0) {
    std::fprintf(stderr, "FAIL: the static pass declared nothing\n");
    ok = false;
  }
  if (not_doall != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu f3d region(s) not DOALL — the hot loops must "
                 "classify parallel\n", not_doall);
    ok = false;
  }

  bench::JsonRecord rec;
  rec.set("bench", "micro_deps_overhead")
      .set("scale", scale)
      .set("steps", steps)
      .set("repeats", repeats)
      .set("threads", llp::num_threads())
      .set("undeclared_ms_per_step", undeclared * 1e3)
      .set("declared_ms_per_step", declared * 1e3)
      .set("steady_ratio", steady_ratio)
      .set("static_pass_us", pass_s * 1e6)
      .set("overhead_pct", overhead_pct)
      .set("budget_pct", 1.0)
      .set("regions", static_cast<unsigned long long>(regions))
      .set("not_doall", static_cast<unsigned long long>(not_doall))
      .set("ok", ok);
  if (!bench::upsert_json_line(out, "micro_deps_overhead", rec)) {
    std::fprintf(stderr, "micro_deps_overhead: cannot write %s\n",
                 out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  std::printf("%s\n", ok ? "deps overhead: OK" : "deps overhead: FAIL");
  return ok ? 0 : 1;
}
