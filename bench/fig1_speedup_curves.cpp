// Reproduces paper Figure 1: predicted stair-step speedup curves for loops
// with 5 / 15 / 25 / 35 / 45 units of parallelism over 1..50 processors.
// Printed both as a data table (one series per column) and as an ASCII
// rendering of the figure.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "model/stairstep.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  bench::heading(
      "Figure 1 — predicted speedup for loops with various levels of "
      "parallelism (5/15/25/35/45 units, 1..50 processors)");

  const std::vector<std::int64_t> series = {5, 15, 25, 35, 45};
  llp::Table t({"procs", "n=5", "n=15", "n=25", "n=35", "n=45"});
  for (int p = 1; p <= 50; ++p) {
    std::vector<std::string> row = {std::to_string(p)};
    for (std::int64_t n : series) {
      row.push_back(llp::strfmt("%.2f", llp::model::stairstep_speedup(n, p)));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  // ASCII plot: speedup (y, 0..45) vs processors (x, 1..50).
  bench::heading("ASCII rendering (x: processors 1..50, y: speedup)");
  const int rows = 23;
  const double ymax = 46.0;
  std::vector<std::string> canvas(rows, std::string(52, ' '));
  const char glyph[5] = {'a', 'b', 'c', 'd', 'e'};
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (int p = 1; p <= 50; ++p) {
      const double v = llp::model::stairstep_speedup(series[s], p);
      int r = rows - 1 - static_cast<int>(v / ymax * rows);
      if (r < 0) r = 0;
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] =
          glyph[s];
    }
  }
  for (int r = 0; r < rows; ++r) {
    std::printf("%4.0f |%s\n", (rows - r) * (ymax / rows),
                canvas[static_cast<std::size_t>(r)].c_str());
  }
  std::printf("     +%s\n", std::string(51, '-').c_str());
  std::printf("      a: 5 units  b: 15  c: 25  d: 35  e: 45\n");
  std::printf(
      "\nEach curve is flat between jumps at n/k; with p within ~10x of the\n"
      "available parallelism the ideal speedup is a stair step, not a "
      "line.\n");
  return 0;
}
