// llp_check — static & offline modes of the loop-safety analyzer.
//
//   llp_check lint FILE|DIR...     lint C++ sources (.cpp/.hpp/.cc/.h) for
//                                  parallel-loop hazards: missing region
//                                  labels, shifted-index writes, shared
//                                  scratch written through by-reference
//                                  captures, unsynchronized reductions.
//                                  Directories recurse.
//   llp_check replay LOG...        re-run the dependence checker over
//                                  access logs saved by a dynamic-mode run
//                                  (f3d_run --analyze-log F, or
//                                  LLP_ANALYZE_LOG=F).
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error — so CI can gate on
// "no new findings" directly.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/access_log.hpp"
#include "analyze/dep_check.hpp"
#include "analyze/lint.hpp"
#include "util/error.hpp"

namespace {

namespace fs = std::filesystem;
using namespace llp::analyze;

int usage() {
  std::fprintf(stderr,
               "usage: llp_check lint FILE|DIR...\n"
               "       llp_check replay LOG...\n");
  return 2;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Expand files and (recursively) directories into a sorted file list.
std::vector<std::string> collect(const std::vector<std::string>& args,
                                 bool* ok) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "llp_check: cannot walk %s: %s\n", arg.c_str(),
                     ec.message().c_str());
        *ok = false;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "llp_check: no such file or directory: %s\n",
                   arg.c_str());
      *ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_lint(const std::vector<std::string>& args) {
  bool ok = true;
  const std::vector<std::string> files = collect(args, &ok);
  if (!ok) return 2;
  std::size_t findings = 0;
  for (const std::string& file : files) {
    for (const LintFinding& f : lint_file(file)) {
      std::printf("%s\n", format_lint_finding(f).c_str());
      ++findings;
    }
  }
  std::printf("llp_check: %zu finding(s) in %zu file(s)\n", findings,
              files.size());
  return findings == 0 ? 0 : 1;
}

int run_replay(const std::vector<std::string>& args) {
  std::size_t findings = 0;
  std::size_t logs = 0;
  for (const std::string& path : args) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "llp_check: cannot read %s\n", path.c_str());
      return 2;
    }
    for (const AccessLog& log : load_logs(in)) {
      ++logs;
      for (const Finding& f : check(log)) {
        std::printf("%s\n", format_finding(f).c_str());
        ++findings;
      }
    }
  }
  std::printf("llp_check: %zu finding(s) across %zu replayed log(s)\n",
              findings, logs);
  return findings == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (mode == "lint") return run_lint(args);
    if (mode == "replay") return run_replay(args);
  } catch (const llp::Error& e) {
    std::fprintf(stderr, "llp_check: %s\n", e.what());
    return 2;
  }
  return usage();
}
