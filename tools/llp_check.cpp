// llp_check — static & offline modes of the loop-safety analyzer.
//
//   llp_check lint FILE|DIR...     lint C++ sources (.cpp/.hpp/.cc/.h) for
//                                  parallel-loop hazards: missing region
//                                  labels, shifted-index writes, shared
//                                  scratch written through by-reference
//                                  captures, unsynchronized reductions.
//                                  Directories recurse.
//   llp_check replay LOG...        re-run the dependence checker over
//                                  access logs saved by a dynamic-mode run
//                                  (f3d_run --analyze-log F, or
//                                  LLP_ANALYZE_LOG=F).
//   llp_check deps [--scale S] [--zones N] [--demo]
//                                  declare the f3d hot-region affine
//                                  signatures for a paper-case grid and
//                                  print the static classification table:
//                                  DOALL / DOACROSS(d) / SERIAL per region,
//                                  the GCD/Banerjee evidence, and the legal
//                                  engine/schedule sets. --demo adds three
//                                  known-dependent example loops so the
//                                  non-DOALL rows (and the violated tests)
//                                  are visible. "--deps" is accepted as an
//                                  alias for the mode name.
//
// Exit codes follow the util/exit_codes.hpp contract (see README):
//   0  clean (lint/replay: no findings; deps: every region DOALL)
//   1  findings (lint/replay hazards, or a non-DOALL deps classification)
//   2  usage error
//   5  I/O error: unreadable input file or unwalkable directory
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/access_log.hpp"
#include "analyze/dep_check.hpp"
#include "analyze/lint.hpp"
#include "analyze/static/registry.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine.hpp"
#include "f3d/signatures.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"

namespace {

namespace fs = std::filesystem;
using namespace llp::analyze;

int usage() {
  std::fprintf(stderr,
               "usage: llp_check lint FILE|DIR...\n"
               "       llp_check replay LOG...\n"
               "       llp_check deps [--scale S] [--zones N] [--demo]\n");
  return llp::kExitUsage;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Expand files and (recursively) directories into a sorted file list.
std::vector<std::string> collect(const std::vector<std::string>& args,
                                 bool* ok) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "llp_check: cannot walk %s: %s\n", arg.c_str(),
                     ec.message().c_str());
        *ok = false;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "llp_check: no such file or directory: %s\n",
                   arg.c_str());
      *ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_lint(const std::vector<std::string>& args) {
  bool ok = true;
  const std::vector<std::string> files = collect(args, &ok);
  if (!ok) return llp::kExitIo;
  std::size_t findings = 0;
  for (const std::string& file : files) {
    for (const LintFinding& f : lint_file(file)) {
      std::printf("%s\n", format_lint_finding(f).c_str());
      ++findings;
    }
  }
  std::printf("llp_check: %zu finding(s) in %zu file(s)\n", findings,
              files.size());
  return findings == 0 ? llp::kExitOk : llp::kExitRunFailure;
}

int run_replay(const std::vector<std::string>& args) {
  std::size_t findings = 0;
  std::size_t logs = 0;
  for (const std::string& path : args) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "llp_check: cannot read %s\n", path.c_str());
      return llp::kExitIo;
    }
    for (const AccessLog& log : load_logs(in)) {
      ++logs;
      for (const Finding& f : check(log)) {
        std::printf("%s\n", format_finding(f).c_str());
        ++findings;
      }
    }
  }
  std::printf("llp_check: %zu finding(s) across %zu replayed log(s)\n",
              findings, logs);
  return findings == 0 ? llp::kExitOk : llp::kExitRunFailure;
}

/// Engines whose outer-loop parallelism the verdict permits. The serial
/// plane-buffer engine is legal under any verdict.
std::string legal_engines_string(const StaticVerdict& verdict) {
  std::string out;
  for (const f3d::EngineInfo& info : f3d::engines()) {
    if (info.parallel_outer && !verdict.parallel_ok()) continue;
    if (!out.empty()) out += ' ';
    out += info.name;
  }
  return out;
}

/// The classic-test evidence line for one carried dependence: a surviving
/// dependence means the GCD residue test AND the Banerjee bound test both
/// admit a solution — those are the violated independence conditions.
void print_witness(const DepWitness& w) {
  std::printf("    dep %s: %s — violates gcd (residue admits) + banerjee "
              "(bounds admit)\n",
              w.array.c_str(), w.detail.c_str());
}

int run_deps(const std::vector<std::string>& args) {
  double scale = 0.08;
  int zones = 0;  // 0 = all zones of the case
  bool demo = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](double* out) {
      if (i + 1 >= args.size()) return false;
      *out = std::stod(args[++i]);
      return true;
    };
    if (a == "--demo") {
      demo = true;
    } else if (a == "--scale") {
      if (!next(&scale) || scale <= 0.0) return usage();
    } else if (a == "--zones") {
      double z = 0.0;
      if (!next(&z) || z < 1.0) return usage();
      zones = static_cast<int>(z);
    } else {
      return usage();
    }
  }

  clear_declarations();

  // The paper's 1M-point case at `scale` carries the real multi-zone
  // shape; the signatures the solver would declare are derived from the
  // same helper Solver::define_regions uses, so this table IS the
  // production classification.
  f3d::CaseSpec spec = f3d::paper_1m_case(scale);
  if (zones > 0 && static_cast<std::size_t>(zones) < spec.zones.size()) {
    spec.zones.resize(static_cast<std::size_t>(zones));
  }
  f3d::MultiZoneGrid grid = f3d::build_grid(spec);
  const f3d::SolverConfig config;
  f3d::declare_region_signatures(grid, config, /*overwrite=*/true);

  if (demo) {
    // Known-dependent shapes, so the non-DOALL rows and their violated
    // tests are visible without a buggy solver. The same patterns are the
    // seeded bugs of examples/bad_doacross.
    AffineSignature recurrence;  // q[i] = f(q[i-1]): flow dep, distance 1
    recurrence.accesses.push_back(AffineAccess::write("q", 1, 0));
    recurrence.accesses.push_back(AffineAccess::read("q", 1, -1));
    declare_access("demo.recurrence", std::move(recurrence));

    AffineSignature alias;  // a[2i] and a[2i+2]: tail-aliased, distance 1
    alias.accesses.push_back(AffineAccess::write("a", 2, 0));
    alias.accesses.push_back(AffineAccess::write("a", 2, 2));
    declare_access("demo.stride_alias", std::move(alias));

    AffineSignature gather;  // a[i] = f(a[2i]): iteration-dependent dist
    gather.accesses.push_back(AffineAccess::write("a", 1, 0));
    gather.accesses.push_back(AffineAccess::read("a", 2, 0));
    declare_access("demo.unequal_stride", std::move(gather));
  }

  std::printf("%-22s %-16s %6s %6s %9s  %-18s %s\n", "region", "class",
              "pairs", "gcd", "banerjee", "legal engines",
              "legal schedules");
  std::size_t not_doall = 0;
  const std::vector<ClassifiedRegion> table = classification_table();
  for (const ClassifiedRegion& row : table) {
    const StaticVerdict& v = row.verdict;
    std::printf("%-22s %-16s %6zu %6zu %9zu  %-18s %s\n", row.region.c_str(),
                v.class_string().c_str(), v.pairs_checked, v.gcd_independent,
                v.banerjee_independent, legal_engines_string(v).c_str(),
                legal_schedules_string(v).c_str());
    if (!v.parallel_ok()) {
      ++not_doall;
      for (const DepWitness& w : v.witnesses) print_witness(w);
    }
  }
  std::printf("llp_check: %zu region(s) classified, %zu not DOALL\n",
              table.size(), not_doall);
  return not_doall == 0 ? llp::kExitOk : llp::kExitRunFailure;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string mode = argv[1];
  if (mode == "--deps") mode = "deps";  // documented alias
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (mode == "deps") return run_deps(args);
    if (argc < 3) return usage();
    if (mode == "lint") return run_lint(args);
    if (mode == "replay") return run_replay(args);
  } catch (const llp::IoError& e) {
    std::fprintf(stderr, "llp_check: %s\n", e.what());
    return llp::kExitIo;
  } catch (const llp::ValidationError& e) {
    std::fprintf(stderr, "llp_check: %s\n", e.what());
    return llp::kExitValidation;
  } catch (const llp::Error& e) {
    std::fprintf(stderr, "llp_check: %s\n", e.what());
    return llp::kExitRunFailure;
  } catch (const std::exception& e) {
    // std::stod and friends on malformed flag values.
    std::fprintf(stderr, "llp_check: %s\n", e.what());
    return llp::kExitUsage;
  }
  return usage();
}
