// f3d_fuzz — deterministic scenario fuzzer for the solver stack.
//
//   f3d_fuzz [options]
//     --seed N           campaign seed                      (default: 1)
//     --cases N          freshly generated cases            (default: 50)
//     --corpus DIR       seed-corpus directory of *.case files, replayed
//                        (and mutated) before fresh generation; repeatable
//     --out DIR          save shrunken repros as DIR/*.case (default: off)
//     --work DIR         scratch for per-case checkpoint stores
//                        (default: ./fuzz_work)
//     --no-shrink        keep first-hit failures unshrunk
//     --shrink-budget N  oracle runs per shrink             (default: 120)
//     --max-dim N        largest per-axis zone extent drawn (default: 12)
//     --max-steps N      largest step count drawn           (default: 12)
//     --no-hostile       do not generate deliberately-degenerate cases
//     --no-cluster       do not generate workers=/kill=/hang= cluster cases
//     --cluster-exe PATH worker binary for the cluster oracle (default:
//                        fork-only spawn; set this under sanitizers)
//     --print-specs      echo every generated spec line (two runs with the
//                        same seed must produce byte-identical output —
//                        CI diffs this)
//     --strict           exit 1 if any failure was unprovoked (a scenario
//                        with NO fault plan misbehaved) — the CI gate
//     --replay FILE...   skip the campaign: replay the given corpus files
//                        through the oracle stack; exit 1 if any fails
//
// Every case runs in-process on its own llp::Runtime through the oracle
// stack (validation health, dynamic race check, an all-pairs engine
// differential across the registry — risc/vector bitwise, FMA engines
// under simd_diff_tol — kill-and-resume via the checkpoint ladder); see
// src/fuzz/oracle.hpp. Failures are bucketed by signature, shrunk to a
// minimal repro, and saved as replayable one-line specs.
//
// Exit codes follow the shared contract (util/exit_codes.hpp): 0 campaign
// complete (or all replays pass), 1 replay failed / strict gate tripped,
// 2 usage error, 3 invalid corpus file, 5 I/O error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/runner.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "f3d_fuzz: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: f3d_fuzz [--seed N] [--cases N] [--corpus DIR]\n"
               "  [--out DIR] [--work DIR] [--no-shrink] [--shrink-budget N]\n"
               "  [--max-dim N] [--max-steps N] [--no-hostile]\n"
               "  [--no-cluster] [--cluster-exe PATH]\n"
               "  [--print-specs] [--strict] [--replay FILE...]\n");
  std::exit(llp::kExitUsage);
}

long parse_int(const std::string& flag, const char* s, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(flag + " wants an integer, got '" + s + "'");
  }
  if (v < lo || v > hi) {
    usage(flag + "=" + s + " out of range [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "]");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& flag, const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    usage(flag + " wants an unsigned integer, got '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

struct Options {
  llp::fuzz::CampaignConfig campaign;
  std::vector<std::string> replay_files;
  bool strict = false;
};

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      o.campaign.seed = parse_u64(a, need(i++));
    } else if (a == "--cases") {
      o.campaign.cases = static_cast<int>(parse_int(a, need(i++), 0, 1 << 20));
    } else if (a == "--corpus") {
      for (const std::string& file : llp::fuzz::list_cases(need(i++))) {
        o.campaign.corpus_files.push_back(file);
      }
    } else if (a == "--out") {
      o.campaign.out_dir = need(i++);
    } else if (a == "--work") {
      o.campaign.work_dir = need(i++);
    } else if (a == "--no-shrink") {
      o.campaign.shrink = false;
    } else if (a == "--shrink-budget") {
      o.campaign.shrink_budget =
          static_cast<int>(parse_int(a, need(i++), 1, 1 << 16));
    } else if (a == "--max-dim") {
      o.campaign.generator.max_dim =
          static_cast<int>(parse_int(a, need(i++), 4, 1 << 10));
    } else if (a == "--max-steps") {
      o.campaign.generator.max_steps =
          static_cast<int>(parse_int(a, need(i++), 3, 1 << 12));
    } else if (a == "--no-hostile") {
      o.campaign.generator.allow_hostile = false;
    } else if (a == "--no-cluster") {
      o.campaign.generator.allow_cluster = false;
    } else if (a == "--cluster-exe") {
      o.campaign.cluster_exe = need(i++);
    } else if (a == "--print-specs") {
      o.campaign.print_specs = true;
    } else if (a == "--strict") {
      o.strict = true;
    } else if (a == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        o.replay_files.push_back(argv[++i]);
      }
      if (o.replay_files.empty()) usage("--replay wants at least one file");
    } else if (a == "--help" || a == "-h") {
      usage("help requested");
    } else {
      usage("unknown option " + a);
    }
  }
  return o;
}

int replay_main(const Options& o) {
  llp::fuzz::RunCaseOptions options;
  options.work_dir =
      o.campaign.work_dir.empty() ? "fuzz_work" : o.campaign.work_dir;
  options.cluster_exe = o.campaign.cluster_exe;
  bool any_failed = false;
  for (const std::string& file : o.replay_files) {
    const llp::fuzz::CaseResult verdict =
        llp::fuzz::replay_file(file, options, std::cout);
    if (!verdict.passed() && !verdict.rejected) any_failed = true;
  }
  return any_failed ? llp::kExitRunFailure : llp::kExitOk;
}

int fuzz_main(const Options& o) {
  if (o.replay_files.empty() && o.campaign.cases == 0 &&
      o.campaign.corpus_files.empty()) {
    usage("nothing to do: --cases 0 and no corpus");
  }
  if (!o.replay_files.empty()) return replay_main(o);

  const llp::fuzz::CampaignStats stats =
      llp::fuzz::run_campaign(o.campaign, std::cout);
  std::cout << "== campaign summary ==\n" << stats.summary();
  if (stats.unprovoked_failure) {
    std::cout << "UNPROVOKED failure: a fault-free scenario misbehaved\n";
  }
  if (o.strict && stats.unprovoked_failure) return llp::kExitRunFailure;
  return llp::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    return fuzz_main(o);
  } catch (const llp::ValidationError& e) {
    std::fprintf(stderr, "f3d_fuzz: invalid case: %s\n", e.what());
    return llp::kExitValidation;
  } catch (const llp::IoError& e) {
    std::fprintf(stderr, "f3d_fuzz: io error: %s\n", e.what());
    return llp::kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "f3d_fuzz: error: %s\n", e.what());
    return llp::kExitRunFailure;
  }
}
