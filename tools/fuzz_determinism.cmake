# Bit-determinism check for f3d_fuzz: two campaigns with the same seed
# must print byte-identical spec lines and verdicts. Run as
#   cmake -DFUZZ_BIN=... -DWORK=... -P fuzz_determinism.cmake
set(args --seed 11 --cases 5 --no-shrink --print-specs --work ${WORK})

execute_process(COMMAND ${FUZZ_BIN} ${args}
                OUTPUT_VARIABLE run_a RESULT_VARIABLE rc_a)
execute_process(COMMAND ${FUZZ_BIN} ${args}
                OUTPUT_VARIABLE run_b RESULT_VARIABLE rc_b)

if(NOT rc_a EQUAL 0 OR NOT rc_b EQUAL 0)
  message(FATAL_ERROR "f3d_fuzz exited ${rc_a}/${rc_b}")
endif()
if(NOT run_a STREQUAL run_b)
  message(FATAL_ERROR "same seed produced different output:\n--- A ---\n"
                      "${run_a}\n--- B ---\n${run_b}")
endif()
message(STATUS "deterministic: ${FUZZ_BIN} output identical across runs")
