// llp_trace — validate exported Chrome traces.
//
//   llp_trace check FILE [FILE...]
//
// Each file must be a well-formed Chrome trace ({"traceEvents": [...]}):
// valid JSON, required fields on every event, and balanced B/E duration
// pairs per (pid, tid) row — the same invariants the CI trace job enforces
// on a live f3d_run export. Exit 0 when every file passes, 1 otherwise.
#include <cstdio>
#include <string>

#include "obs/trace_check.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: llp_trace check FILE [FILE...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || std::string(argv[1]) != "check") return usage();

  bool all_ok = true;
  for (int i = 2; i < argc; ++i) {
    const std::string path = argv[i];
    const llp::obs::TraceCheckResult result =
        llp::obs::check_chrome_trace_file(path);
    std::printf("%s: %s\n", path.c_str(),
                llp::obs::format_check(result).c_str());
    all_ok = all_ok && result.ok;
  }
  return all_ok ? 0 : 1;
}
