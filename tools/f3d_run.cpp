// f3d_run — command-line driver for the F3D-like solver.
//
//   f3d_run [options]
//     --case NAME        1m | 59m | cube | vortex        (default: 1m)
//     --scale S          zone-dimension scale factor      (default: 0.15)
//     --n N              cube/vortex size                 (default: 24)
//     --steps N          time steps                       (default: 50)
//     --cfl X            CFL number                       (default: 2.0)
//     --mode M           risc | vector                    (default: risc)
//     --threads T        loop-level threads               (default: runtime)
//     --viscous RE       enable thin-layer terms at Re    (default: off)
//     --wall             slip wall on KMin
//     --pulse AMP        add a Gaussian pulse             (default: off)
//     --save FILE        write the final solution
//     --load FILE        start from a saved solution
//     --csv FILE         write the mid-K plane of zone 0 as CSV
//     --profile          print the flat profile at the end
//     --advise P         print parallelization advice for P processors
//                        on a modeled Origin 2000
//     --max-recoveries N rollback budget for faulted steps   (default: 0)
//     --checkpoint-every N steps between in-memory checkpoints (default: 10)
//     --fault SPEC       inject faults per SPEC (same grammar as LLP_FAULT,
//                        e.g. "nan:run.z0.rhs:5:0:array=q0")
//
// Exit code 0 on success; prints residual history, performance in the
// paper's metrics, and wall forces when a wall is present. With faults
// injected or --max-recoveries set, the run goes through the solver's
// checkpoint/rollback path and exits 1 if the recovery budget is exhausted.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/llp.hpp"
#include "f3d/cases.hpp"
#include "f3d/forces.hpp"
#include "f3d/io.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "fault/injector.hpp"
#include "perf/advisor.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "f3d_run: %s\n", msg);
  std::fprintf(stderr,
               "usage: f3d_run [--case 1m|59m|cube|vortex] [--scale S] "
               "[--n N]\n"
               "  [--steps N] [--cfl X] [--mode risc|vector] [--threads T]\n"
               "  [--viscous RE] [--wall] [--pulse AMP] [--save F] "
               "[--load F]\n"
               "  [--csv F] [--profile] [--advise P]\n"
               "  [--max-recoveries N] [--checkpoint-every N] [--fault SPEC]\n");
  std::exit(2);
}

struct Options {
  std::string case_name = "1m";
  double scale = 0.15;
  int n = 24;
  int steps = 50;
  double cfl = 2.0;
  std::string mode = "risc";
  int threads = 0;
  double viscous_re = 0.0;
  bool wall = false;
  double pulse = 0.0;
  std::string save_path, load_path, csv_path;
  bool profile = false;
  int advise = 0;
  int max_recoveries = 0;
  int checkpoint_every = 10;
  std::string fault_spec;
};

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--case") o.case_name = need(i++);
    else if (a == "--scale") o.scale = std::atof(need(i++));
    else if (a == "--n") o.n = std::atoi(need(i++));
    else if (a == "--steps") o.steps = std::atoi(need(i++));
    else if (a == "--cfl") o.cfl = std::atof(need(i++));
    else if (a == "--mode") o.mode = need(i++);
    else if (a == "--threads") o.threads = std::atoi(need(i++));
    else if (a == "--viscous") o.viscous_re = std::atof(need(i++));
    else if (a == "--wall") o.wall = true;
    else if (a == "--pulse") o.pulse = std::atof(need(i++));
    else if (a == "--save") o.save_path = need(i++);
    else if (a == "--load") o.load_path = need(i++);
    else if (a == "--csv") o.csv_path = need(i++);
    else if (a == "--profile") o.profile = true;
    else if (a == "--advise") o.advise = std::atoi(need(i++));
    else if (a == "--max-recoveries") o.max_recoveries = std::atoi(need(i++));
    else if (a == "--checkpoint-every") o.checkpoint_every = std::atoi(need(i++));
    else if (a == "--fault") o.fault_spec = need(i++);
    else if (a == "--help" || a == "-h") usage("help requested");
    else usage(("unknown option " + a).c_str());
  }
  if (o.steps < 1) usage("--steps must be >= 1");
  if (o.mode != "risc" && o.mode != "vector") usage("bad --mode");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.threads > 0) llp::set_num_threads(o.threads);

  f3d::CaseSpec spec;
  if (o.case_name == "1m") spec = f3d::paper_1m_case(o.scale);
  else if (o.case_name == "59m") spec = f3d::paper_59m_case(o.scale);
  else if (o.case_name == "cube") spec = f3d::wall_compression_case(o.n);
  else if (o.case_name == "vortex") spec = f3d::vortex_case(o.n);
  else usage("unknown --case");

  auto grid = f3d::build_grid(spec);
  if (o.case_name == "vortex") {
    f3d::make_periodic(grid);
    f3d::Vortex v;
    v.x0 = v.y0 = 5.0;
    f3d::initialize_vortex(grid, spec.freestream, v);
  }
  if (o.wall) f3d::add_kmin_wall(grid);
  if (o.pulse > 0.0) f3d::add_gaussian_pulse(grid, o.pulse, 2.5);
  if (!o.load_path.empty()) f3d::load_solution(o.load_path, grid);

  // Fault injection: LLP_FAULT from the environment, or --fault from the
  // command line (the flag wins). Each zone's Q storage is registered as a
  // NaN-poison target under "q<zone>".
  llp::fault::init_from_env();
  if (!o.fault_spec.empty()) {
    llp::fault::set_global(std::make_unique<llp::fault::Injector>(
        llp::fault::FaultPlan::parse(o.fault_spec)));
  }
  if (auto* inj = llp::fault::global_injector()) {
    for (int z = 0; z < grid.num_zones(); ++z) {
      auto& st = grid.zone(z).storage();
      inj->register_array("q" + std::to_string(z), st.data(), st.size());
    }
  }

  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = o.cfl;
  cfg.mode = o.mode == "risc" ? f3d::SweepMode::kRisc : f3d::SweepMode::kVector;
  cfg.region_prefix = "run";
  cfg.recovery.max_recoveries = o.max_recoveries;
  cfg.recovery.checkpoint_every = o.checkpoint_every;
  if (o.viscous_re > 0.0) {
    cfg.rhs.viscous.enabled = true;
    cfg.rhs.viscous.reynolds = o.viscous_re;
  }

  std::printf("f3d_run: case=%s zones=%d points=%zu mode=%s threads=%d "
              "steps=%d cfl=%.2f%s\n",
              o.case_name.c_str(), grid.num_zones(), grid.total_points(),
              o.mode.c_str(), llp::num_threads(), o.steps, o.cfl,
              o.viscous_re > 0 ? " (viscous)" : "");

  llp::regions().reset_stats();
  f3d::Solver solver(grid, cfg);
  // The protected (checkpoint/rollback) path is used whenever faults may
  // fire or a recovery budget was granted; the plain loop otherwise.
  const bool protected_run =
      o.max_recoveries > 0 || llp::fault::global_injector() != nullptr;
  f3d::RunReport report;
  llp::perf::Timer wall_clock;
  if (protected_run) {
    f3d::RunHistory hist;
    report = solver.run_protected(o.steps, &hist);
    for (std::size_t s = 0; s < hist.steps(); ++s) {
      if (s % static_cast<std::size_t>(std::max(1, o.steps / 10)) == 0 ||
          s + 1 == hist.steps()) {
        std::printf("  step %4zu  residual %.6e\n", s, hist.residuals[s]);
      }
    }
    std::printf("recovery: %s\n", report.summary().c_str());
  } else {
    for (int s = 0; s < o.steps; ++s) {
      solver.step();
      if (s % std::max(1, o.steps / 10) == 0 || s == o.steps - 1) {
        std::printf("  step %4d  residual %.6e\n", s, solver.residual());
      }
    }
  }
  const double elapsed = wall_clock.elapsed();
  const double per_step = elapsed / o.steps;

  std::printf("\nperformance: %.1f time steps/hour, %.1f MFLOPS, "
              "%.3f s/step\n",
              llp::perf::time_steps_per_hour(per_step),
              llp::perf::mflops(solver.flops_per_step(), per_step), per_step);
  std::printf("solution checksum: %016llx\n",
              static_cast<unsigned long long>(f3d::checksum(grid)));

  if (o.wall) {
    const auto f = f3d::total_wall_force(grid);
    std::printf("wall force: Cy = %.5f over area %.4f\n",
                f.cy(spec.freestream), f.area);
  }
  if (!o.save_path.empty()) {
    f3d::save_solution(o.save_path, grid);
    std::printf("solution written to %s\n", o.save_path.c_str());
  }
  if (!o.csv_path.empty()) {
    std::ofstream csv(o.csv_path);
    f3d::write_plane_csv(csv, grid.zone(0), grid.zone(0).kmax() / 2);
    std::printf("mid-K plane of zone 0 written to %s\n", o.csv_path.c_str());
  }
  if (o.profile) {
    std::printf("\nflat profile:\n%s", llp::regions().profile_report().c_str());
  }
  if (o.advise > 0) {
    const auto advice = llp::perf::advise(
        llp::regions().snapshot(), llp::model::origin2000_r12k_300(),
        o.advise);
    std::printf("\nparallelization advice for %d Origin 2000 processors:\n%s",
                o.advise, llp::perf::format_advice(advice).c_str());
  }
  if (auto* inj = llp::fault::global_injector()) {
    std::printf("\nfault health:\n%s", inj->health().report().c_str());
  }
  return report.failed ? 1 : 0;
}
