// f3d_run — command-line driver for the F3D-like solver.
//
//   f3d_run [options]
//     --case NAME        1m | 59m | cube | vortex        (default: 1m)
//     --scale S          zone-dimension scale factor      (default: 0.15)
//     --n N              cube/vortex size                 (default: 24)
//     --steps N          time steps                       (default: 50)
//     --cfl X            CFL number                       (default: 2.0)
//     --engine E         vector | risc | simd | auto      (default: risc)
//                        auto probes every registered engine on the actual
//                        grid and picks the fastest, persisting the choice
//                        in the tuning DB when LLP_TUNE=1
//     --mode M           legacy alias for --engine (no auto)
//     --threads T        loop-level threads               (default: runtime)
//     --viscous RE       enable thin-layer terms at Re    (default: off)
//     --wall             slip wall on KMin
//     --pulse AMP        add a Gaussian pulse             (default: off)
//     --save FILE        write the final solution
//     --load FILE        start from a saved solution
//     --csv FILE         write the mid-K plane of zone 0 as CSV
//     --profile          print the flat profile at the end
//     --advise P         print parallelization advice for P processors
//                        on a modeled Origin 2000
//     --max-recoveries N rollback budget for faulted steps   (default: 0)
//     --checkpoint-every N steps between in-memory checkpoints (default: 10)
//     --fault SPEC       inject faults per SPEC (same grammar as LLP_FAULT,
//                        e.g. "nan:run.z0.rhs:5:0:array=q0", I/O kinds
//                        included: "iocrash:ckpt:1:2")
//     --ckpt-dir DIR     durable checkpoints under DIR (ckpt.N/ generations)
//     --ckpt-every N     healthy steps between durable snapshots (default 10)
//     --keep-generations K  rotate, keeping the newest K     (default: 3)
//     --restart[=auto]   resume from the newest intact generation in
//                        --ckpt-dir; bare --restart fails if none loads,
//                        =auto falls back to a fresh start
//     --trace FILE       export a Chrome trace of the run to FILE (wins
//                        over LLP_TRACE) and print per-region latency
//                        percentiles at the end
//     --trace-buffer N   per-thread trace ring capacity in events
//                        (default 16384; wins over LLP_TRACE_BUFFER)
//     --analyze          run the dependence analyzer over every region
//                        invocation (wins over LLP_ANALYZE); exit 1 when
//                        any loop-carried dependence or shared scratch is
//                        found
//     --analyze-log FILE also save the last access log of every region to
//                        FILE for `llp_check replay` (implies --analyze;
//                        wins over LLP_ANALYZE_LOG)
//     --serve-compat     also print the run's completion as the serve
//                        daemon's terminal "done" event line, so batch and
//                        daemon runs are byte-comparable (both format the
//                        residual through the same %.17g path)
//
// All numeric flags are validated: non-numeric, non-finite, or
// out-of-range values (zero grid dims, nonpositive CFL, ...) are a usage
// error, not a silent garbage run.
//
// Exit codes follow the shared contract (util/exit_codes.hpp):
//   0  success (prints residual history, paper metrics, wall forces)
//   1  run failure: recovery budget exhausted on a still-finite fault, or
//      the dynamic analyzer reported findings
//   2  usage error (bad flags / out-of-range values)
//   3  validation failure: the case itself was rejected
//      (llp::ValidationError — degenerate dims, non-finite CFL)
//   4  divergence: the run went non-finite and no recovery absorbed it
//   5  I/O error, including bare --restart with no intact generation
//   42 simulated crash: an injected iocrash exits abruptly without
//      cleanup, like the process death it models (this value is
//      load-bearing — the crash-recovery CI matrix asserts it)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "core/llp.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine.hpp"
#include "f3d/engine_select.hpp"
#include "f3d/forces.hpp"
#include "f3d/io.hpp"
#include "f3d/solver.hpp"
#include "f3d/validation.hpp"
#include "analyze/analyzer.hpp"
#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "perf/advisor.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"
#include "serve/job.hpp"
#include "tune/tuner.hpp"
#include "util/exit_codes.hpp"
#include "util/format.hpp"

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "f3d_run: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: f3d_run [--case 1m|59m|cube|vortex] [--scale S] "
               "[--n N]\n"
               "  [--steps N] [--cfl X] [--engine vector|risc|simd|auto]\n"
               "  [--mode M] [--threads T]\n"
               "  [--viscous RE] [--wall] [--pulse AMP] [--save F] "
               "[--load F]\n"
               "  [--csv F] [--profile] [--advise P]\n"
               "  [--max-recoveries N] [--checkpoint-every N] [--fault SPEC]\n"
               "  [--ckpt-dir D] [--ckpt-every N] [--keep-generations K]\n"
               "  [--restart[=auto]] [--trace F] [--trace-buffer N]\n"
               "  [--analyze] [--analyze-log F] [--serve-compat]\n");
  std::exit(llp::kExitUsage);
}

enum class Restart { kNone, kStrict, kAuto };

struct Options {
  std::string case_name = "1m";
  double scale = 0.15;
  int n = 24;
  int steps = 50;
  double cfl = 2.0;
  std::string mode = "risc";
  int threads = 0;
  double viscous_re = 0.0;
  bool wall = false;
  double pulse = 0.0;
  std::string save_path, load_path, csv_path;
  bool profile = false;
  int advise = 0;
  int max_recoveries = 0;
  int checkpoint_every = 10;
  std::string fault_spec;
  std::string ckpt_dir;
  int ckpt_every = 10;
  int keep_generations = 3;
  Restart restart = Restart::kNone;
  std::string trace_path;
  long trace_buffer = 0;  // 0 = default / LLP_TRACE_BUFFER
  bool analyze = false;
  std::string analyze_log;
  bool serve_compat = false;
};

// Strict numeric parsing: the whole token must convert, and the value must
// land in [lo, hi]. Anything else is a usage error, not a garbage run.
long parse_int(const std::string& flag, const char* s, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(flag + " wants an integer, got '" + s + "'");
  }
  if (v < lo || v > hi) {
    usage(flag + "=" + s + " out of range [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "]");
  }
  return v;
}

double parse_num(const std::string& flag, const char* s, double lo,
                 double hi) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    usage(flag + " wants a number, got '" + s + "'");
  }
  if (!std::isfinite(v) || v < lo || v > hi) {
    usage(flag + "=" + s + " must be finite and in [" + std::to_string(lo) +
          ", " + std::to_string(hi) + "]");
  }
  return v;
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--case") o.case_name = need(i++);
    else if (a == "--scale") {
      o.scale = parse_num(a, need(i++), 1e-6, 1e3);
    } else if (a == "--n") {
      o.n = static_cast<int>(parse_int(a, need(i++), 4, 1 << 12));
    } else if (a == "--steps") {
      o.steps = static_cast<int>(parse_int(a, need(i++), 1, 1 << 24));
    } else if (a == "--cfl") {
      o.cfl = parse_num(a, need(i++), 1e-9, 1e6);
    } else if (a == "--engine" || a == "--mode") {
      // --mode is the pre-registry spelling; both set the same option.
      o.mode = need(i++);
    } else if (a == "--threads") {
      o.threads = static_cast<int>(parse_int(a, need(i++), 0, 1 << 12));
    } else if (a == "--viscous") {
      o.viscous_re = parse_num(a, need(i++), 1e-9, 1e12);
    } else if (a == "--wall") {
      o.wall = true;
    } else if (a == "--pulse") {
      o.pulse = parse_num(a, need(i++), 0.0, 1e3);
    } else if (a == "--save") o.save_path = need(i++);
    else if (a == "--load") o.load_path = need(i++);
    else if (a == "--csv") o.csv_path = need(i++);
    else if (a == "--profile") o.profile = true;
    else if (a == "--advise") {
      o.advise = static_cast<int>(parse_int(a, need(i++), 1, 1 << 16));
    } else if (a == "--max-recoveries") {
      o.max_recoveries = static_cast<int>(parse_int(a, need(i++), 0, 1 << 16));
    } else if (a == "--checkpoint-every") {
      o.checkpoint_every =
          static_cast<int>(parse_int(a, need(i++), 1, 1 << 24));
    } else if (a == "--fault") {
      o.fault_spec = need(i++);
    } else if (a == "--ckpt-dir") {
      o.ckpt_dir = need(i++);
    } else if (a == "--ckpt-every") {
      o.ckpt_every = static_cast<int>(parse_int(a, need(i++), 1, 1 << 24));
    } else if (a == "--keep-generations") {
      o.keep_generations =
          static_cast<int>(parse_int(a, need(i++), 1, 1 << 16));
    } else if (a == "--trace") {
      o.trace_path = need(i++);
    } else if (a == "--trace-buffer") {
      o.trace_buffer = parse_int(a, need(i++), 64, 1L << 24);
    } else if (a == "--analyze") {
      o.analyze = true;
    } else if (a == "--analyze-log") {
      o.analyze = true;
      o.analyze_log = need(i++);
    } else if (a == "--serve-compat") {
      o.serve_compat = true;
    } else if (a == "--restart") {
      o.restart = Restart::kStrict;
    } else if (a == "--restart=auto") {
      o.restart = Restart::kAuto;
    } else if (a == "--help" || a == "-h") {
      usage("help requested");
    } else {
      usage("unknown option " + a);
    }
  }
  {
    f3d::EngineKind parsed;
    if (o.mode != "auto" && !f3d::parse_engine(o.mode, &parsed)) {
      usage("bad --engine (want " + f3d::engine_names_usage() + "|auto)");
    }
  }
  if (o.case_name != "1m" && o.case_name != "59m" && o.case_name != "cube" &&
      o.case_name != "vortex") {
    usage("unknown --case " + o.case_name);
  }
  if (o.restart != Restart::kNone && o.ckpt_dir.empty()) {
    usage("--restart needs --ckpt-dir");
  }
  if (o.restart != Restart::kNone && !o.load_path.empty()) {
    usage("--restart and --load are mutually exclusive");
  }
  return o;
}

f3d::CaseSpec case_spec(const Options& o) {
  if (o.case_name == "1m") return f3d::paper_1m_case(o.scale);
  if (o.case_name == "59m") return f3d::paper_59m_case(o.scale);
  if (o.case_name == "cube") return f3d::wall_compression_case(o.n);
  return f3d::vortex_case(o.n);
}

f3d::MultiZoneGrid build_grid(const Options& o, const f3d::CaseSpec& spec) {
  auto grid = f3d::build_grid(spec);
  if (o.case_name == "vortex") {
    f3d::make_periodic(grid);
    f3d::Vortex v;
    v.x0 = v.y0 = 5.0;
    f3d::initialize_vortex(grid, spec.freestream, v);
  }
  if (o.wall) f3d::add_kmin_wall(grid);
  if (o.pulse > 0.0) f3d::add_gaussian_pulse(grid, o.pulse, 2.5);
  if (!o.load_path.empty()) f3d::load_solution(o.load_path, grid);
  return grid;
}

// The run-configuration fingerprint recorded in every checkpoint manifest:
// a restart with different physics flags must be refused, not silently
// continued into an inconsistent trajectory.
std::string config_fingerprint(const Options& o) {
  return llp::strfmt("case=%s scale=%g n=%d mode=%s cfl=%g viscous=%g "
                     "wall=%d pulse=%g",
                     o.case_name.c_str(), o.scale, o.n, o.mode.c_str(),
                     o.cfl, o.viscous_re, o.wall ? 1 : 0, o.pulse);
}

int run_main(const Options& o) {
  if (o.threads > 0) llp::set_num_threads(o.threads);
  const f3d::CaseSpec spec = case_spec(o);
  auto grid = build_grid(o, spec);

  // Tracing: --trace wins over LLP_TRACE (explicit > environment).
  // Installed before the solver so region definitions and the very first
  // step land in the timeline.
  if (!o.trace_path.empty()) {
    llp::obs::TracerConfig tc;
    if (o.trace_buffer > 0) {
      tc.buffer_events = static_cast<std::size_t>(o.trace_buffer);
    }
    llp::obs::install(tc);
    llp::obs::set_export_path(o.trace_path);
  }
  llp::obs::init_from_env();

  // Dependence analyzer: --analyze wins over LLP_ANALYZE. Installed before
  // the solver so every region invocation of the run is checked.
  if (o.analyze) {
    llp::analyze::install();
    if (!o.analyze_log.empty()) llp::analyze::set_log_path(o.analyze_log);
  }
  llp::analyze::init_from_env();

  // Fault injection: LLP_FAULT from the environment, or --fault from the
  // command line (the flag wins). Installed before any restart machinery
  // runs so the checkpoint writer's io seam sees the plan too.
  llp::fault::init_from_env();
  if (!o.fault_spec.empty()) {
    llp::fault::set_global(std::make_unique<llp::fault::Injector>(
        llp::fault::FaultPlan::parse(o.fault_spec)));
  }

  f3d::SolverConfig cfg;
  cfg.freestream = spec.freestream;
  cfg.cfl = o.cfl;
  cfg.region_prefix = "run";
  std::string engine_label = o.mode;
  if (o.mode == "auto") {
    // Probe the registered engines on this grid (reusing a tuning-DB
    // decision when one matches); LLP_TUNE=1 persists fresh probes.
    llp::tune::init_from_env();
    const f3d::EngineChoice choice =
        f3d::select_engine(grid, cfg, llp::tune::global_tuner());
    cfg.engine = choice.kind;
    engine_label = f3d::engine_name(choice.kind);
    std::printf("engine auto: picked %s (%.3g s/sweep%s)\n",
                engine_label.c_str(), choice.seconds,
                choice.from_db ? ", from tuning DB" : "");
  } else if (!f3d::parse_engine(o.mode, &cfg.engine)) {
    usage("bad --engine " + o.mode);
  }
  cfg.recovery.max_recoveries = o.max_recoveries;
  cfg.recovery.checkpoint_every = o.checkpoint_every;
  if (o.viscous_re > 0.0) {
    cfg.rhs.viscous.enabled = true;
    cfg.rhs.viscous.reynolds = o.viscous_re;
  }

  std::unique_ptr<f3d::ckpt::CheckpointStore> store;
  if (!o.ckpt_dir.empty()) {
    f3d::ckpt::Config cc;
    cc.dir = o.ckpt_dir;
    cc.every = o.ckpt_every;
    cc.keep_generations = o.keep_generations;
    cc.meta = config_fingerprint(o);
    store = std::make_unique<f3d::ckpt::CheckpointStore>(cc);
  }

  llp::regions().reset_stats();

  // Restart ladder: walk generations newest-to-oldest; the first one that
  // passes frame validation AND reproduces its manifest's first-replay
  // residual wins. --restart=auto falls through to a fresh start when the
  // ladder is exhausted; bare --restart treats that as failure.
  std::optional<f3d::Solver> solver;
  if (o.restart != Restart::kNone) {
    for (const int gen : store->generations()) {
      solver.reset();
      grid = build_grid(o, spec);  // a failed attempt must not leak state
      f3d::ckpt::Manifest man;
      try {
        man = store->load(gen, grid);
      } catch (const llp::IoError& e) {
        std::fprintf(stderr, "restart: skipping ckpt.%d: %s\n", gen,
                     e.what());
        continue;
      }
      solver.emplace(grid, cfg);
      solver->restore(man.state);
      std::string why;
      if (!f3d::ckpt::verify_first_replay(*solver, man,
                                          store->config().replay_tol, &why)) {
        std::fprintf(stderr, "restart: skipping ckpt.%d: %s\n", gen,
                     why.c_str());
        continue;
      }
      std::printf("restart: resumed from generation %d (step %d)\n", gen,
                  man.state.steps);
      break;
    }
    if (!solver.has_value()) {
      if (o.restart == Restart::kStrict) {
        std::fprintf(stderr,
                     "f3d_run: no intact checkpoint generation under %s\n",
                     o.ckpt_dir.c_str());
        return llp::kExitIo;
      }
      std::printf("restart: no intact generation under %s, starting fresh\n",
                  o.ckpt_dir.c_str());
      grid = build_grid(o, spec);
    }
  }
  if (!solver.has_value()) solver.emplace(grid, cfg);
  if (store != nullptr) solver->set_checkpoint_hook(store.get());

  // Each zone's Q storage is registered as a NaN-poison target under
  // "q<zone>" — after the grid is final, so the pointers stay valid.
  if (auto* inj = llp::fault::global_injector()) {
    for (int z = 0; z < grid.num_zones(); ++z) {
      auto& st = grid.zone(z).storage();
      inj->register_array("q" + std::to_string(z), st.data(), st.size());
    }
  }

  std::printf("f3d_run: case=%s zones=%d points=%zu mode=%s threads=%d "
              "steps=%d cfl=%.2f%s\n",
              o.case_name.c_str(), grid.num_zones(), grid.total_points(),
              engine_label.c_str(), llp::num_threads(), o.steps, o.cfl,
              o.viscous_re > 0 ? " (viscous)" : "");

  // --steps is the run's overall target: a resumed run only covers the
  // remainder (the replay-verification step already counted).
  const int remaining = o.steps - solver->steps_taken();
  const bool protected_run = o.max_recoveries > 0 || store != nullptr ||
                             llp::fault::global_injector() != nullptr;
  f3d::RunReport report;
  llp::perf::Timer wall_clock;
  if (remaining <= 0) {
    std::printf("checkpoint already at step %d >= target %d, nothing to do\n",
                solver->steps_taken(), o.steps);
  } else if (protected_run) {
    f3d::RunHistory hist;
    report = solver->run_protected(remaining, &hist);
    for (std::size_t s = 0; s < hist.steps(); ++s) {
      if (s % static_cast<std::size_t>(std::max(1, remaining / 10)) == 0 ||
          s + 1 == hist.steps()) {
        std::printf("  step %4zu  residual %.6e\n",
                    s + static_cast<std::size_t>(o.steps - remaining),
                    hist.residuals[s]);
      }
    }
    std::printf("recovery: %s\n", report.summary().c_str());
  } else {
    for (int s = 0; s < remaining; ++s) {
      solver->step();
      if (s % std::max(1, remaining / 10) == 0 || s == remaining - 1) {
        std::printf("  step %4d  residual %.6e\n", s + (o.steps - remaining),
                    solver->residual());
      }
    }
  }
  const double elapsed = wall_clock.elapsed();
  const double per_step = elapsed / std::max(1, remaining);

  std::printf("\nperformance: %.1f time steps/hour, %.1f MFLOPS, "
              "%.3f s/step\n",
              llp::perf::time_steps_per_hour(per_step),
              llp::perf::mflops(solver->flops_per_step(), per_step),
              per_step);
  std::printf("final residual %.17g\n", solver->residual());
  if (o.serve_compat) {
    // The exact line the serve daemon would emit for this run — shared
    // serializer, shared %.17g path — so batch/daemon parity is testable
    // by string comparison. Batch runs are "job 0".
    std::printf("serve-compat: %s\n",
                f3d::serve::done_event_line(0, f3d::serve::JobState::kDone,
                                            solver->steps_taken(),
                                            solver->residual())
                    .c_str());
  }
  std::printf("solution checksum: %016llx\n",
              static_cast<unsigned long long>(f3d::checksum(grid)));

  if (o.wall) {
    const auto f = f3d::total_wall_force(grid);
    std::printf("wall force: Cy = %.5f over area %.4f\n",
                f.cy(spec.freestream), f.area);
  }
  if (!o.save_path.empty()) {
    f3d::save_solution(o.save_path, grid);
    std::printf("solution written to %s\n", o.save_path.c_str());
  }
  if (!o.csv_path.empty()) {
    std::ofstream csv(o.csv_path);
    f3d::write_plane_csv(csv, grid.zone(0), grid.zone(0).kmax() / 2);
    std::printf("mid-K plane of zone 0 written to %s\n", o.csv_path.c_str());
  }
  if (o.profile) {
    std::printf("\nflat profile:\n%s", llp::regions().profile_report().c_str());
  }
  if (o.advise > 0) {
    const auto advice = llp::perf::advise(
        llp::regions().snapshot(), llp::model::origin2000_r12k_300(),
        o.advise);
    std::printf("\nparallelization advice for %d Origin 2000 processors:\n%s",
                o.advise, llp::perf::format_advice(advice).c_str());
  }
  if (auto* inj = llp::fault::global_injector()) {
    std::printf("\nfault health:\n%s", inj->health().report().c_str());
  }
  if (auto* tracer = llp::obs::global_tracer()) {
    std::printf("\ntrace summary:\n%s", tracer->summary().c_str());
    const std::string path = llp::obs::export_path();
    if (!path.empty()) {
      std::string error;
      if (llp::obs::export_trace(path, &error)) {
        std::printf("chrome trace written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "f3d_run: trace export failed: %s\n",
                     error.c_str());
      }
    }
  }
  bool analyzer_failed = false;
  if (auto* logger = llp::analyze::global_logger()) {
    std::printf("\n%s", logger->report().c_str());
    const std::string path = llp::analyze::log_path();
    if (!path.empty()) {
      std::string error;
      if (llp::analyze::export_logs(path, &error)) {
        std::printf("access logs written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "f3d_run: access-log export failed: %s\n",
                     error.c_str());
      }
    }
    // A run that races is a failed run, even if the numbers look plausible.
    analyzer_failed = logger->num_findings() > 0;
  }
  if (report.failed) {
    // Divergence (the run went non-finite and the recovery budget could
    // not absorb it) is distinguishable from an exhausted budget on a
    // still-finite fault, per the shared contract.
    const bool diverged =
        report.failure_reason.find("non-finite") != std::string::npos;
    return diverged ? llp::kExitDivergence : llp::kExitRunFailure;
  }
  return analyzer_failed ? llp::kExitRunFailure : llp::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    return run_main(o);
  } catch (const llp::CrashError& e) {
    // A simulated crash behaves like the real thing: no stack unwinding,
    // no destructors, no checkpoint cleanup — just sudden death.
    std::fprintf(stderr, "f3d_run: %s\n", e.what());
    std::_Exit(llp::kExitCrashSim);
  } catch (const llp::ValidationError& e) {
    std::fprintf(stderr, "f3d_run: invalid case: %s\n", e.what());
    return llp::kExitValidation;
  } catch (const llp::IoError& e) {
    std::fprintf(stderr, "f3d_run: io error: %s\n", e.what());
    return llp::kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "f3d_run: error: %s\n", e.what());
    return llp::kExitRunFailure;
  }
}
