// llp_tune — inspect, clear, export the tuning DB, or run a tuning session.
//
// The paper's tuning loop, as a command: `llp_tune run` executes the
// deterministic schedule-skew workload from bench/ablation_schedules under
// an installed Tuner, prints the search trajectory, and persists the
// decision to the DB that production runs (LLP_TUNE=1) pick up.
//
//   llp_tune inspect   [--db PATH]          print the DB as a table
//   llp_tune export    [--db PATH]          dump the raw DB text to stdout
//   llp_tune clear     [--db PATH]          remove every entry
//   llp_tune run       [--db PATH] [--n N] [--invocations N]
//                      [--policy greedy|halving] [--threads N]
//                      [--skew triangular|spike|boundary-layer|uniform]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "tune/candidates.hpp"
#include "tune/tuner.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kDefaultDb = ".llp_tune";

int usage() {
  std::fprintf(stderr,
               "usage: llp_tune <inspect|export|clear|run> [--db PATH]\n"
               "       llp_tune run [--n N] [--invocations N] [--threads N]\n"
               "                    [--policy greedy|halving]\n"
               "                    [--skew triangular|spike|boundary-layer|"
               "uniform]\n");
  return 2;
}

std::vector<double> make_weights(const std::string& skew, std::int64_t n) {
  std::vector<double> w(static_cast<std::size_t>(n), 1.0);
  for (std::int64_t i = 0; i < n; ++i) {
    auto& wi = w[static_cast<std::size_t>(i)];
    if (skew == "triangular") wi = static_cast<double>(i + 1);
    else if (skew == "spike") wi = (i == n / 8) ? 20.0 : 1.0;
    else if (skew == "boundary-layer") wi = (i < n / 6) ? 6.0 : 1.0;
    // "uniform": all ones
  }
  return w;
}

int cmd_inspect(const std::string& path, bool raw) {
  llp::tune::TuningDb db;
  std::string err;
  if (!db.load(path, &err)) {
    std::fprintf(stderr, "llp_tune: %s\n", err.c_str());
    return 1;
  }
  if (raw) {
    std::fputs(db.to_text().c_str(), stdout);
    return 0;
  }
  llp::Table t({"key", "schedule", "chunk", "threads", "mean s/invocation",
                "trials"});
  for (const auto& [key, e] : db.entries()) {
    t.add_row({key, std::string(llp::tune::schedule_name(e.config.schedule)),
               std::to_string(e.config.chunk),
               std::to_string(e.config.num_threads),
               llp::strfmt("%.3e", e.seconds), std::to_string(e.trials)});
  }
  std::printf("%s%zu tuned configuration(s) in %s\n", t.to_string().c_str(),
              db.size(), path.c_str());
  return 0;
}

int cmd_clear(const std::string& path) {
  llp::tune::TuningDb db;
  db.save(path);  // empty DB overwrites the file
  std::printf("llp_tune: cleared %s\n", path.c_str());
  return 0;
}

int cmd_run(const std::string& path, std::int64_t n, int invocations,
            const std::string& policy, int threads, const std::string& skew) {
  const std::vector<double> w = make_weights(skew, n);

  if (threads > 0) llp::set_num_threads(threads);
  llp::tune::TunerOptions topts;
  topts.policy = policy == "halving" ? llp::tune::Policy::kSuccessiveHalving
                                     : llp::tune::Policy::kEpsilonGreedy;
  llp::tune::Tuner tuner(topts);
  tuner.load_db(path);  // a previous session's decision short-circuits

  auto& rt = llp::Runtime::instance();
  rt.set_tuner(&tuner);
  rt.set_auto_tune_enabled(true);

  const auto region = llp::regions().define("llp_tune." + skew);
  const llp::ForOptions opts = llp::ForOptions::auto_tuned(region);

  // Deterministic spin work proportional to the iteration weight: the same
  // skewed-cost workload the schedule ablation studies.
  constexpr std::int64_t kSpinPerUnit = 4000;
  auto body = [&](std::int64_t i) {
    volatile double x = 0.0;
    const auto spins = static_cast<std::int64_t>(
        w[static_cast<std::size_t>(i)] * kSpinPerUnit);
    for (std::int64_t s = 0; s < spins; ++s) x = x + 1.0;
  };

  std::printf("tuning '%s' skew, n=%lld, %d invocations, policy=%s\n",
              skew.c_str(), static_cast<long long>(n), invocations,
              policy.c_str());
  for (int inv = 1; inv <= invocations; ++inv) {
    llp::parallel_for(0, n, body, opts);
    if (inv % 8 == 0 || inv == invocations ||
        tuner.converged(region, n)) {
      const llp::LoopConfig b = tuner.best(region, n);
      std::printf("  inv %3d: best so far %s chunk=%lld threads=%d "
                  "(%.3e s)%s\n",
                  inv,
                  std::string(llp::tune::schedule_name(b.schedule)).c_str(),
                  static_cast<long long>(b.chunk), b.num_threads,
                  tuner.best_seconds(region, n),
                  tuner.converged(region, n) ? "  [converged]" : "");
    }
    if (tuner.converged(region, n)) break;
  }

  rt.set_tuner(nullptr);  // the tuner dies with this scope
  tuner.save_db(path);
  std::printf("saved %zu entr%s to %s\n", tuner.db().size(),
              tuner.db().size() == 1 ? "y" : "ies", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::string db = kDefaultDb;
  std::string policy = "greedy";
  std::string skew = "triangular";
  std::int64_t n = 96;
  int invocations = 64;
  int threads = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--db" && (v = next())) db = v;
    else if (a == "--policy" && (v = next())) policy = v;
    else if (a == "--skew" && (v = next())) skew = v;
    else if (a == "--n" && (v = next())) n = std::atoll(v);
    else if (a == "--invocations" && (v = next())) invocations = std::atoi(v);
    else if (a == "--threads" && (v = next())) threads = std::atoi(v);
    else return usage();
  }
  if (n < 1 || invocations < 1) return usage();
  if (policy != "greedy" && policy != "halving") return usage();
  if (skew != "triangular" && skew != "spike" && skew != "boundary-layer" &&
      skew != "uniform") {
    return usage();
  }

  try {
    if (cmd == "inspect") return cmd_inspect(db, /*raw=*/false);
    if (cmd == "export") return cmd_inspect(db, /*raw=*/true);
    if (cmd == "clear") return cmd_clear(db);
    if (cmd == "run") return cmd_run(db, n, invocations, policy, threads, skew);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "llp_tune: %s\n", e.what());
    return 1;
  }
  return usage();
}
