// f3d_cluster — the fault-tolerant multi-process sharded backend.
//
//   f3d_cluster [options]
//     --case NAME          1m | 59m | cube                    (default: 1m)
//     --scale S            paper-case scale factor            (default: 0.08)
//     --n N                cube edge cells (case=cube)        (default: 12)
//     --zones Z            re-split the case into Z zones along J
//     --steps N            time steps                         (default: 10)
//     --workers W          worker processes (clamped to zone count)
//     --worker-threads T   llp threads inside each worker     (default: 1)
//     --cfl C              CFL number                         (default: 2)
//     --mach M             free-stream Mach number            (default: 2)
//     --engine vector|risc|simd  sweep engine organization    (default: risc)
//                          (--mode is a legacy alias)
//     --ckpt-dir DIR       checkpoint generation root         (required)
//     --ckpt-every N       generation cadence in steps        (default: 5)
//     --keep-generations K generations kept                   (default: 3)
//     --heartbeat-ms MS    worker beacon period               (default: 50)
//     --heartbeat-misses N missed beats before declared dead  (default: 5)
//     --step-deadline-ms MS per-step (and INIT->READY) budget (default: 5000)
//     --max-respawns N     consecutive failures per slot before its zones
//                          migrate onto survivors             (default: 3)
//     --max-recoveries N   global rollback budget             (default: 8)
//     --fault SPEC         PR 2 fault grammar; w<slot>.step / w<slot>.freeze
//                          / w<slot>.spawn regions target workers
//     --verbose            mirror supervision events to stderr
//
// Workers are fork+exec'd copies of this binary (hidden flags: --worker
// --fd N). Exit codes follow util/exit_codes.hpp: 0 ok, 2 usage, 3
// validation, 5 I/O (no intact generation), and 6 — llp::ClusterError —
// when the recovery budget or the last survivor slot is exhausted.
#include <unistd.h>

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "f3d/cases.hpp"
#include "f3d/engine.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "f3d_cluster: %s\n", msg.c_str());
  std::fprintf(
      stderr,
      "usage: f3d_cluster --ckpt-dir DIR [--case 1m|59m|cube] [--scale S]\n"
      "  [--n N] [--zones Z] [--steps N] [--workers W] [--worker-threads T]\n"
      "  [--cfl C] [--mach M] [--engine vector|risc|simd] [--ckpt-every N]\n"
      "  [--keep-generations K] [--heartbeat-ms MS] [--heartbeat-misses N]\n"
      "  [--step-deadline-ms MS] [--max-respawns N] [--max-recoveries N]\n"
      "  [--fault SPEC] [--verbose]\n");
  std::exit(llp::kExitUsage);
}

long parse_int(const std::string& flag, const char* s, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(flag + " wants an integer, got '" + s + "'");
  }
  if (v < lo || v > hi) {
    usage(flag + "=" + s + " out of range [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "]");
  }
  return v;
}

double parse_double(const std::string& flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v == v)) {
    usage(flag + " wants a finite number, got '" + s + "'");
  }
  return v;
}

/// Re-split a case's total J extent into `zones` near-equal zones (same
/// K/L), so worker counts beyond the case's native zone count are testable.
f3d::CaseSpec resplit(const f3d::CaseSpec& spec, int zones) {
  long jtotal = 0;
  for (const auto& z : spec.zones) jtotal += z.jmax;
  const int kmax = spec.zones.front().kmax;
  const int lmax = spec.zones.front().lmax;
  f3d::CaseSpec out = spec;
  out.zones.clear();
  for (int i = 0; i < zones; ++i) {
    const long a = jtotal * i / zones;
    const long b = jtotal * (i + 1) / zones;
    out.zones.push_back(
        f3d::ZoneDims{static_cast<int>(b - a), kmax, lmax});
  }
  return out;
}

std::string self_exe_path(const char* argv0) {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;  // fallback: relative invocation still usually works
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: the coordinator fork+execs this same binary.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    int fd = -1;
    for (int i = 2; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--fd") == 0) fd = std::atoi(argv[i + 1]);
    }
    if (fd < 0) usage("--worker needs --fd N");
    return llp::cluster::worker_main(fd);
  }

  llp::cluster::ClusterConfig cfg;
  std::string case_name = "1m";
  double scale = 0.08;
  int n = 12;
  int zones = 0;
  double mach = 0.0;  // 0 = case default

  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--case") case_name = need(i++);
    else if (a == "--scale") scale = parse_double(a, need(i++));
    else if (a == "--n") n = static_cast<int>(parse_int(a, need(i++), 6, 512));
    else if (a == "--zones") {
      zones = static_cast<int>(parse_int(a, need(i++), 1, 4096));
    } else if (a == "--steps") {
      cfg.steps = static_cast<int>(parse_int(a, need(i++), 1, 1 << 20));
    } else if (a == "--workers") {
      cfg.workers = static_cast<int>(parse_int(a, need(i++), 1, 1 << 10));
    } else if (a == "--worker-threads") {
      cfg.worker_threads = static_cast<int>(parse_int(a, need(i++), 1, 256));
    } else if (a == "--cfl") {
      cfg.cfl = parse_double(a, need(i++));
    } else if (a == "--mach") {
      mach = parse_double(a, need(i++));
    } else if (a == "--mode" || a == "--engine") {
      const std::string m = need(i++);
      if (!f3d::parse_engine(m, &cfg.engine)) {
        usage("--engine wants " + f3d::engine_names_usage() + ", got '" + m +
              "'");
      }
    } else if (a == "--ckpt-dir") {
      cfg.ckpt_dir = need(i++);
    } else if (a == "--ckpt-every") {
      cfg.ckpt_every = static_cast<int>(parse_int(a, need(i++), 1, 1 << 20));
    } else if (a == "--keep-generations") {
      cfg.keep_generations =
          static_cast<int>(parse_int(a, need(i++), 1, 1 << 16));
    } else if (a == "--heartbeat-ms") {
      cfg.heartbeat_ms = static_cast<int>(parse_int(a, need(i++), 1, 60000));
    } else if (a == "--heartbeat-misses") {
      cfg.heartbeat_misses = static_cast<int>(parse_int(a, need(i++), 1, 1000));
    } else if (a == "--step-deadline-ms") {
      cfg.step_deadline_ms =
          static_cast<int>(parse_int(a, need(i++), 1, 3600000));
    } else if (a == "--max-respawns") {
      cfg.max_respawns = static_cast<int>(parse_int(a, need(i++), 0, 1000));
    } else if (a == "--max-recoveries") {
      cfg.max_recoveries = static_cast<int>(parse_int(a, need(i++), 0, 10000));
    } else if (a == "--fault") {
      cfg.fault_spec = need(i++);
    } else if (a == "--verbose") {
      cfg.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage("help requested");
    } else {
      usage("unknown option " + a);
    }
  }
  if (cfg.ckpt_dir.empty()) usage("--ckpt-dir is required");

  try {
    if (case_name == "1m") cfg.case_spec = f3d::paper_1m_case(scale);
    else if (case_name == "59m") cfg.case_spec = f3d::paper_59m_case(scale);
    else if (case_name == "cube") {
      cfg.case_spec = f3d::wall_compression_case(n);
      cfg.init_grid = [](f3d::MultiZoneGrid& grid) {
        f3d::add_kmin_wall(grid);
        f3d::add_gaussian_pulse(grid, 0.05, 3.0);
      };
    } else {
      usage("unknown case '" + case_name + "'");
    }
    if (mach > 0.0) cfg.case_spec.freestream.mach = mach;
    if (zones > 0) cfg.case_spec = resplit(cfg.case_spec, zones);
    cfg.worker_exe = self_exe_path(argv[0]);

    const llp::cluster::ClusterReport report = llp::cluster::run_cluster(cfg);
    std::printf("%s\n", report.summary().c_str());
    std::printf("final residual %.17g\n", report.final_residual);
    return llp::kExitOk;
  } catch (const llp::ClusterError& e) {
    std::fprintf(stderr, "f3d_cluster: cluster failure: %s\n", e.what());
    return llp::kExitCluster;
  } catch (const llp::ValidationError& e) {
    std::fprintf(stderr, "f3d_cluster: validation: %s\n", e.what());
    return llp::kExitValidation;
  } catch (const llp::IoError& e) {
    std::fprintf(stderr, "f3d_cluster: io: %s\n", e.what());
    return llp::kExitIo;
  } catch (const llp::Error& e) {
    std::fprintf(stderr, "f3d_cluster: %s\n", e.what());
    return llp::kExitRunFailure;
  }
}
