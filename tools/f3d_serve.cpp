// f3d_serve — the multi-tenant solver daemon.
//
//   f3d_serve --socket PATH [options]
//     --socket PATH      unix socket to listen on                (required)
//     --state DIR        durable state root (job records + per-job
//                        checkpoint generations); omit for a
//                        non-durable daemon
//     --threads T        lanes fair-shared across running jobs
//                        (default: runtime default)
//     --max-jobs N       concurrently running jobs               (default: 4)
//     --keep-generations K  checkpoint generations kept per job  (default: 3)
//
// Speaks the line-delimited JSON protocol of src/serve (ops: ping,
// submit, status, list, cancel, events, wait, drain, shutdown). Each job
// runs on its own llp::Runtime; higher-priority submissions preempt lower
// ones through a durable checkpoint, and a killed daemon restarted on the
// same --state directory resumes every in-flight job from its newest
// intact generation.
//
// Exits 0 on a clean shutdown (signal or shutdown op), 1 when the socket
// cannot be bound, 2 on usage errors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"
#include "util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "f3d_serve: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: f3d_serve --socket PATH [--state DIR] [--threads T]\n"
               "  [--max-jobs N] [--keep-generations K]\n");
  std::exit(2);
}

long parse_int(const std::string& flag, const char* s, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(flag + " wants an integer, got '" + s + "'");
  }
  if (v < lo || v > hi) {
    usage(flag + "=" + s + " out of range [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "]");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  f3d::serve::ServerConfig cfg;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket") cfg.socket_path = need(i++);
    else if (a == "--state") cfg.state_dir = need(i++);
    else if (a == "--threads") {
      cfg.total_threads = static_cast<int>(parse_int(a, need(i++), 1, 1 << 12));
    } else if (a == "--max-jobs") {
      cfg.max_running = static_cast<int>(parse_int(a, need(i++), 1, 1 << 10));
    } else if (a == "--keep-generations") {
      cfg.keep_generations =
          static_cast<int>(parse_int(a, need(i++), 1, 1 << 16));
    } else if (a == "--help" || a == "-h") {
      usage("help requested");
    } else {
      usage("unknown option " + a);
    }
  }
  if (cfg.socket_path.empty()) usage("--socket is required");

  // The daemon dies on explicit request only; a dropped client must never
  // take it down with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  f3d::serve::Server server(cfg);
  try {
    server.start();
  } catch (const llp::Error& e) {
    std::fprintf(stderr, "f3d_serve: %s\n", e.what());
    return 1;
  }

  int recovered = 0;
  for (const auto& s : server.list()) {
    if (!f3d::serve::is_terminal(s.state)) ++recovered;
  }
  std::printf("f3d_serve: listening on %s (threads=%d max-jobs=%d state=%s)\n",
              cfg.socket_path.c_str(), server.config().total_threads,
              cfg.max_running,
              cfg.state_dir.empty() ? "<none>" : cfg.state_dir.c_str());
  if (recovered > 0) {
    std::printf("f3d_serve: recovered %d in-flight job%s\n", recovered,
                recovered == 1 ? "" : "s");
  }
  std::fflush(stdout);

  while (g_signalled == 0 && !server.shutdown_requested()) {
    server.wait_shutdown(0.2);
  }
  std::printf("f3d_serve: shutting down (%s)\n",
              g_signalled != 0 ? "signal" : "shutdown op");
  std::fflush(stdout);
  server.stop();
  return 0;
}
