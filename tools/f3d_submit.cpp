// f3d_submit — client CLI for the f3d_serve daemon.
//
//   f3d_submit --socket PATH COMMAND [args]
//
//   commands:
//     ping
//     submit [--name S] [--case C] [--scale S] [--n N] [--steps N]
//            [--cfl X] [--mode M] [--wall] [--pulse A] [--priority P]
//            [--threads T] [--ckpt-every N] [--wait] [--events]
//     status JOB
//     list
//     cancel JOB
//     events JOB [--from N] [--no-follow]
//     wait JOB [--timeout-ms N]
//     drain
//     shutdown
//
// `submit` prints the new job id; with --wait it blocks to completion and
// reports "final residual %.17g" in exactly f3d_run's format (the two
// front ends answer with the same bytes for the same run). With --events
// it streams the job's event lines instead.
//
// Exit codes: 0 success (a waited job finished "done"), 1 server-side
// error or a waited job that failed/was cancelled, 2 usage error,
// 3 cannot connect.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/client.hpp"
#include "serve/job.hpp"

namespace {

using f3d::serve::Client;
using f3d::serve::Json;

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "f3d_submit: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: f3d_submit --socket PATH COMMAND [args]\n"
               "  commands: ping | submit | status JOB | list | cancel JOB\n"
               "            | events JOB | wait JOB | drain | shutdown\n");
  std::exit(2);
}

long parse_int(const std::string& flag, const char* s, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(flag + " wants an integer, got '" + s + "'");
  }
  if (v < lo || v > hi) {
    usage(flag + "=" + s + " out of range [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "]");
  }
  return v;
}

double parse_num(const std::string& flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    usage(flag + " wants a number, got '" + s + "'");
  }
  return v;
}

// One request/response round trip; prints the response line. Returns the
// protocol-level success flag.
bool roundtrip(Client& client, const Json& req, Json* response) {
  std::string err;
  if (!client.request(req, response, &err)) {
    std::fprintf(stderr, "f3d_submit: %s\n", err.c_str());
    std::exit(1);
  }
  return response->get_bool("ok", false);
}

// Stream a job's events to stdout until its terminal "done" event.
// Returns that event's state name ("" when the stream ended early).
std::string stream_events(Client& client, long job, long from, bool follow) {
  Json req;
  req["op"] = "events";
  req["job"] = static_cast<double>(job);
  req["from"] = static_cast<double>(from);
  req["follow"] = follow;
  std::string err;
  if (!client.send(req, &err)) {
    std::fprintf(stderr, "f3d_submit: %s\n", err.c_str());
    std::exit(1);
  }
  std::string final_state;
  while (true) {
    auto line = client.read_json_line(&err);
    if (!line.has_value()) {
      if (follow && final_state.empty()) {
        std::fprintf(stderr, "f3d_submit: event stream ended: %s\n",
                     err.c_str());
      }
      break;
    }
    std::printf("%s\n", line->dump().c_str());
    if (line->find("ok") != nullptr && !line->get_bool("ok", true)) {
      std::exit(1);  // server refused the stream (unknown job)
    }
    if (line->get_string("event") == "done") {
      final_state = line->get_string("state");
      break;
    }
    if (line->find("end") != nullptr) break;  // early end-of-stream marker
    if (!follow && line->get_string("event").empty()) break;
  }
  std::fflush(stdout);
  return final_state;
}

int finish_wait(const Json& status) {
  const std::string state = status.get_string("state");
  if (state == "done") {
    std::printf("final residual %.17g\n", status.get_double("residual"));
    return 0;
  }
  std::fprintf(stderr, "f3d_submit: job finished %s%s%s\n", state.c_str(),
               status.get_string("error").empty() ? "" : ": ",
               status.get_string("error").c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  std::string socket_path;
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
    socket_path = argv[i + 1];
    i += 2;
  }
  if (socket_path.empty()) usage("--socket PATH must come first");
  if (i >= argc) usage("missing command");
  const std::string cmd = argv[i++];
  if (cmd != "ping" && cmd != "drain" && cmd != "shutdown" &&
      cmd != "list" && cmd != "submit" && cmd != "status" &&
      cmd != "cancel" && cmd != "events" && cmd != "wait") {
    usage("unknown command " + cmd);
  }

  std::string err;
  Client client = Client::connect(socket_path, &err);
  if (!client.connected()) {
    std::fprintf(stderr, "f3d_submit: %s\n", err.c_str());
    return 3;
  }

  auto need = [&](const std::string& flag) -> const char* {
    if (i >= argc) usage("missing value for " + flag);
    return argv[i++];
  };

  if (cmd == "ping" || cmd == "drain" || cmd == "shutdown" || cmd == "list") {
    if (i != argc) usage(cmd + " takes no arguments");
    Json req;
    req["op"] = cmd;
    Json resp;
    const bool ok = roundtrip(client, req, &resp);
    std::printf("%s\n", resp.dump().c_str());
    return ok ? 0 : 1;
  }

  if (cmd == "submit") {
    Json spec;
    bool wait_done = false;
    bool stream = false;
    while (i < argc) {
      const std::string a = argv[i++];
      if (a == "--name") spec["name"] = need(a);
      else if (a == "--case") spec["case"] = need(a);
      else if (a == "--scale") spec["scale"] = parse_num(a, need(a));
      else if (a == "--n") {
        spec["n"] = static_cast<double>(parse_int(a, need(a), 4, 1 << 12));
      } else if (a == "--steps") {
        spec["steps"] =
            static_cast<double>(parse_int(a, need(a), 1, 1 << 24));
      } else if (a == "--cfl") spec["cfl"] = parse_num(a, need(a));
      else if (a == "--mode") spec["mode"] = need(a);
      else if (a == "--wall") spec["wall"] = true;
      else if (a == "--pulse") spec["pulse"] = parse_num(a, need(a));
      else if (a == "--priority") {
        spec["priority"] = static_cast<double>(parse_int(a, need(a), 0, 9));
      } else if (a == "--threads") {
        spec["threads"] =
            static_cast<double>(parse_int(a, need(a), 0, 1 << 12));
      } else if (a == "--ckpt-every") {
        spec["ckpt_every"] =
            static_cast<double>(parse_int(a, need(a), 0, 1 << 24));
      } else if (a == "--wait") wait_done = true;
      else if (a == "--events") stream = true;
      else usage("unknown submit option " + a);
    }
    Json req;
    req["op"] = "submit";
    req["spec"] = spec;
    Json resp;
    if (!roundtrip(client, req, &resp)) {
      std::fprintf(stderr, "f3d_submit: %s\n",
                   resp.get_string("error", "submit failed").c_str());
      return 1;
    }
    const long job = static_cast<long>(resp.get_int("job"));
    std::printf("job %ld\n", job);
    std::fflush(stdout);
    if (stream) {
      const std::string state = stream_events(client, job, 0, true);
      return state == "done" ? 0 : 1;
    }
    if (wait_done) {
      Json wreq;
      wreq["op"] = "wait";
      wreq["job"] = static_cast<double>(job);
      Json wresp;
      if (!roundtrip(client, wreq, &wresp)) {
        std::fprintf(stderr, "f3d_submit: %s\n",
                     wresp.get_string("error", "wait failed").c_str());
        return 1;
      }
      return finish_wait(wresp);
    }
    return 0;
  }

  if (cmd == "status" || cmd == "cancel") {
    if (i >= argc) usage(cmd + " needs a job id");
    const long job = parse_int(cmd, argv[i++], 0, 1L << 62);
    if (i != argc) usage(cmd + " takes one job id");
    Json req;
    req["op"] = cmd;
    req["job"] = static_cast<double>(job);
    Json resp;
    const bool ok = roundtrip(client, req, &resp);
    std::printf("%s\n", resp.dump().c_str());
    return ok ? 0 : 1;
  }

  if (cmd == "events") {
    if (i >= argc) usage("events needs a job id");
    const long job = parse_int(cmd, argv[i++], 0, 1L << 62);
    long from = 0;
    bool follow = true;
    while (i < argc) {
      const std::string a = argv[i++];
      if (a == "--from") from = parse_int(a, need(a), 0, 1L << 62);
      else if (a == "--no-follow") follow = false;
      else usage("unknown events option " + a);
    }
    stream_events(client, job, from, follow);
    return 0;
  }

  if (cmd == "wait") {
    if (i >= argc) usage("wait needs a job id");
    const long job = parse_int(cmd, argv[i++], 0, 1L << 62);
    long timeout_ms = -1;
    while (i < argc) {
      const std::string a = argv[i++];
      if (a == "--timeout-ms") {
        timeout_ms = parse_int(a, need(a), 0, 1L << 50);
      } else {
        usage("unknown wait option " + a);
      }
    }
    Json req;
    req["op"] = "wait";
    req["job"] = static_cast<double>(job);
    if (timeout_ms >= 0) req["timeout_ms"] = static_cast<double>(timeout_ms);
    Json resp;
    if (!roundtrip(client, req, &resp)) {
      std::fprintf(stderr, "f3d_submit: %s\n",
                   resp.get_string("error", "wait failed").c_str());
      return 1;
    }
    return finish_wait(resp);
  }

  usage("unreachable command " + cmd);
}
