// Available work per synchronization event (paper §3, Table 2).
//
// If a loop nest over a zone is parallelized at a given nesting level, each
// execution of the parallel region amortizes one synchronization event over
// the work enclosed by that level. For a 3-D zone of JMAX x KMAX x LMAX
// points at w cycles/point:
//
//   parallelize inner  loop -> sync per (k,l) line   -> JMAX * w per sync
//   parallelize middle loop -> sync per l plane      -> JMAX*KMAX * w
//   parallelize outer  loop -> one sync per pass     -> JMAX*KMAX*LMAX * w
//
// and similarly for boundary-condition faces (one dimension collapsed).
// This is why the paper parallelizes outer loops and leaves BC routines
// serial: the outer loop offers 4 orders of magnitude more work per sync.
#pragma once

#include <cstdint>

namespace llp::model {

/// Which loop of the nest carries the parallel directive.
enum class LoopLevel {
  kInner,
  kMiddle,  ///< 3-D nests only
  kOuter,
};

/// Work (cycles) available per synchronization event for a 1-D loop.
std::int64_t work_per_sync_1d(std::int64_t n, std::int64_t cycles_per_point);

/// Work per sync for a 2-D zone (jmax fastest). kMiddle is invalid here.
std::int64_t work_per_sync_2d(std::int64_t jmax, std::int64_t kmax,
                              LoopLevel level, std::int64_t cycles_per_point);

/// Work per sync for a 3-D zone (jmax fastest, lmax slowest).
std::int64_t work_per_sync_3d(std::int64_t jmax, std::int64_t kmax,
                              std::int64_t lmax, LoopLevel level,
                              std::int64_t cycles_per_point);

/// Work per sync for a boundary-condition face of a 3-D zone: the face is
/// n0 x n1 points; the parallel directive sits on the face's inner or outer
/// loop (kMiddle is invalid).
std::int64_t work_per_sync_boundary(std::int64_t n0, std::int64_t n1,
                                    LoopLevel level,
                                    std::int64_t cycles_per_point);

}  // namespace llp::model
