#include "model/numa.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace llp::model {

double latency_limited_bandwidth_mbs(double line_bytes, double latency_ns) {
  LLP_REQUIRE(line_bytes > 0.0 && latency_ns > 0.0, "positive args required");
  // bytes/ns == GB/s; scale to MB/s (decimal).
  return line_bytes / latency_ns * 1000.0;
}

double NumaModel::local_bandwidth_mbs() const {
  return latency_limited_bandwidth_mbs(line_bytes, local_latency_ns);
}

double NumaModel::remote_bandwidth_mbs() const {
  return latency_limited_bandwidth_mbs(line_bytes, remote_latency_ns);
}

bool NumaModel::uma_like(double traffic_mbs) const {
  return traffic_mbs <= remote_bandwidth_mbs();
}

double NumaModel::bandwidth_slowdown(double traffic_mbs) const {
  LLP_REQUIRE(traffic_mbs >= 0.0, "traffic must be nonnegative");
  const double limit = std::max(remote_bandwidth_mbs(), overlapped_offnode_mbs);
  if (traffic_mbs <= limit) return 1.0;
  return traffic_mbs / limit;
}

NumaModel origin2000_numa() {
  return NumaModel{};  // defaults are the Origin 2000 numbers from §7
}

NumaModel exemplar_numa() {
  NumaModel m;
  m.line_bytes = 64.0;
  m.local_latency_ns = 500.0;
  // CTI ring between hypernodes: about an order of magnitude slower.
  m.remote_latency_ns = 4000.0;
  m.overlapped_offnode_mbs = 32.0;
  m.page_bytes = 4096.0;
  m.processors_per_node = 8;
  return m;
}

NumaModel software_dsm_numa() {
  NumaModel m;
  m.line_bytes = 128.0;
  m.local_latency_ns = 300.0;
  m.remote_latency_ns = 100000.0;  // ~100 us software coherence
  // 128 B / 100 us = 1.3 MB/s (the paper's §8 figure); no overlap to speak of.
  m.overlapped_offnode_mbs = 1.3;
  m.page_bytes = 4096.0;
  m.processors_per_node = 1;
  return m;
}

}  // namespace llp::model
