#include "model/stairstep.hpp"

#include <cmath>

#include "util/error.hpp"

namespace llp::model {

std::int64_t max_units_per_processor(std::int64_t n_units, int processors) {
  LLP_REQUIRE(n_units >= 1, "n_units must be >= 1");
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  return (n_units + processors - 1) / processors;
}

double stairstep_speedup(std::int64_t n_units, int processors) {
  return static_cast<double>(n_units) /
         static_cast<double>(max_units_per_processor(n_units, processors));
}

double stairstep_efficiency(std::int64_t n_units, int processors) {
  return stairstep_speedup(n_units, processors) /
         static_cast<double>(processors);
}

std::vector<int> speedup_jump_points(std::int64_t n_units,
                                     int max_processors) {
  LLP_REQUIRE(n_units >= 1 && max_processors >= 1, "positive args required");
  std::vector<int> jumps;
  std::int64_t prev = n_units + 1;  // sentinel larger than any ceil value
  for (int p = 1; p <= max_processors; ++p) {
    const std::int64_t c = max_units_per_processor(n_units, p);
    if (c < prev) {
      jumps.push_back(p);
      prev = c;
    }
  }
  return jumps;
}

int equivalent_processors(std::int64_t n_units, int processors) {
  const std::int64_t c = max_units_per_processor(n_units, processors);
  // Smallest p with ceil(n/p) == c is ceil(n/c).
  const std::int64_t p = (n_units + c - 1) / c;
  return static_cast<int>(p);
}

double composite_stairstep_speedup(const std::vector<std::int64_t>& units,
                                   const std::vector<double>& fractions,
                                   int processors) {
  LLP_REQUIRE(units.size() == fractions.size() && !units.empty(),
              "units/fractions must pair and be nonempty");
  double fsum = 0.0;
  double time = 0.0;  // normalized parallel time
  for (std::size_t i = 0; i < units.size(); ++i) {
    LLP_REQUIRE(fractions[i] >= 0.0, "fractions must be nonnegative");
    fsum += fractions[i];
    time += fractions[i] / stairstep_speedup(units[i], processors);
  }
  LLP_REQUIRE(std::abs(fsum - 1.0) < 1e-6, "fractions must sum to 1");
  return 1.0 / time;
}

}  // namespace llp::model
