// Execution-driven scaling model: replay a measured work trace on a target
// machine at any processor count.
//
// This is the bridge between real runs of the solver on the host and the
// paper's 64/128-processor results. A WorkTrace describes one time step as a
// sequence of regions, each with its floating-point work, the trip count of
// its parallelized loop, how many fork-joins it issues, and its memory
// traffic. predict_step_time then composes the paper's three effects:
//
//   * stair-step:   a parallel region's compute time scales by
//                    ceil(trips/p)/trips, not 1/p (Table 3 / Figure 1);
//   * sync cost:    every region invocation pays machine.sync_seconds(p)
//                    (Tables 1–2);
//   * Amdahl:       serial regions do not scale at all;
//   * NUMA:         if per-processor traffic exceeds usable off-node
//                    bandwidth, compute time stretches accordingly (§7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/machine.hpp"

namespace llp::model {

/// One region's contribution to a single time step.
struct LoopWork {
  std::string name;
  double flops_per_step = 0.0;        ///< total FP work in this region
  std::int64_t trips = 1;             ///< parallelized-loop trip count
  double invocations_per_step = 1.0;  ///< fork-join events per step
  bool parallel = true;               ///< false: serial region (Amdahl tail)
  double bytes_per_step = 0.0;        ///< memory traffic estimate
};

/// A time step's worth of work, machine-independent.
struct WorkTrace {
  std::vector<LoopWork> loops;

  double total_flops() const;
  double total_bytes() const;
  /// Fraction of single-processor time spent in serial regions.
  double serial_fraction() const;
};

/// Where a predicted step's time went.
struct StepTime {
  double compute_s = 0.0;  ///< parallel-region compute (stair-stepped)
  double serial_s = 0.0;   ///< unparallelized regions
  double sync_s = 0.0;     ///< fork-join events
  double total() const { return compute_s + serial_s + sync_s; }
};

/// Predict one time step on `machine` with `processors` processors.
StepTime predict_step_time(const WorkTrace& trace, const MachineConfig& machine,
                           int processors);

/// Classic Amdahl speedup with serial fraction f: 1 / (f + (1-f)/p).
double amdahl_speedup(double serial_fraction, int processors);

/// Scale a trace's volume terms (flops, bytes) by `work_scale` and its loop
/// trip counts by `trip_scale`, leaving invocation counts per step fixed.
/// Used to extrapolate a trace measured on a scaled-down grid to the
/// paper's full-size cases: per-point work is size-independent (a property
/// test checks this), so flops scale with point count while trip counts
/// scale with the parallelized dimension.
WorkTrace scale_trace(const WorkTrace& trace, double work_scale,
                      double trip_scale);

}  // namespace llp::model
