// Multi-Level Parallelism (paper §8, Taft's OVERFLOW-MLP).
//
// Straight loop-level parallelism runs every zone's loops one after
// another across ALL processors. MLP adds a coarse level: zones execute
// concurrently, each on its own processor group, with loop-level
// parallelism inside the group. The paper calls the two "complementary
// techniques, each with their own strengths and weaknesses" — this model
// quantifies that:
//
//   + MLP pays each fork-join over a small group (cheaper sync) and each
//     zone's stair-step is evaluated at the group size (finer granularity
//     at high processor counts);
//   - MLP inherits the zones' load imbalance: the step finishes when the
//     slowest group does, and integer group sizes cannot balance the
//     paper's 15/87/89-point zones exactly.
//
// Zones are identified by the "z<i>." prefix the solver gives its region
// names; loops without the prefix (bc, exchange) remain global serial work.
#pragma once

#include <string>
#include <vector>

#include "model/machine.hpp"
#include "model/scaling.hpp"

namespace llp::model {

/// Zone index encoded in a region name ("z3.sweep_j" -> 3, with an
/// optional dotted prefix before the z), or -1 for global (non-zone) work.
int zone_of_region(const std::string& name);

struct MlpResult {
  double seconds_per_step = 0.0;
  std::vector<int> group_sizes;   ///< processors assigned to each zone
  std::vector<double> zone_seconds;  ///< per-zone group time
  double serial_seconds = 0.0;    ///< global serial tail (bc/exchange)

  /// Group-level load imbalance: slowest zone / mean zone time.
  double group_imbalance() const;
};

/// Split `processors` into one group per zone, proportional to each
/// zone's floating-point work (largest-remainder rounding, every group
/// gets at least one). Requires processors >= number of zones.
std::vector<int> partition_processors(const std::vector<double>& zone_flops,
                                      int processors);

/// Predict one step under MLP: zones run concurrently on their groups
/// (each internally via predict_step_time), global serial work runs once.
MlpResult predict_step_time_mlp(const WorkTrace& trace,
                                const MachineConfig& machine, int processors);

}  // namespace llp::model
