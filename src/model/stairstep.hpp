// Stair-step speedup model for finite loop-level parallelism
// (paper §4, Table 3 and Figure 1; observed in §5, Table 4, Figures 2–3).
//
// A parallelized loop with n independent iterations ("units of parallelism")
// run on p processors finishes when the busiest processor finishes, and the
// busiest processor executes ceil(n/p) iterations under a static block
// schedule. The ideal speedup is therefore
//
//     S(n, p) = n / ceil(n/p),
//
// which is flat wherever ceil(n/p) is constant — e.g. with n = 450 (the K
// dimension of the paper's 59-million-point zones), S is flat for all
// p in [90, 112] (ceil = 5), matching the measured flat between 88 and 104
// processors in Table 4.
#pragma once

#include <cstdint>
#include <vector>

namespace llp::model {

/// Iterations assigned to the busiest processor: ceil(n/p).
std::int64_t max_units_per_processor(std::int64_t n_units, int processors);

/// Ideal stair-step speedup S(n,p) = n / ceil(n/p).
double stairstep_speedup(std::int64_t n_units, int processors);

/// Parallel efficiency S(n,p)/p in (0,1].
double stairstep_efficiency(std::int64_t n_units, int processors);

/// Processor counts (<= n_units) at which the speedup jumps, i.e. the p
/// where ceil(n/p) decreases: the paper's "jumps at M/5, M/4, M/3, M/2, M".
std::vector<int> speedup_jump_points(std::int64_t n_units, int max_processors);

/// Smallest p achieving the same speedup as `processors` — adding
/// processors beyond this wastes them until the next jump point.
int equivalent_processors(std::int64_t n_units, int processors);

/// Composite ideal speedup for work spread over several loops with distinct
/// trip counts: time fractions weight each loop's stair-step. `fractions`
/// must sum to ~1 and pair with `units`.
double composite_stairstep_speedup(const std::vector<std::int64_t>& units,
                                   const std::vector<double>& fractions,
                                   int processors);

}  // namespace llp::model
