// NUMA memory-system model (paper §7).
//
// The paper's argument: on a 128-processor SGI Origin 2000, memory latency
// for a cache line ranges from 310 ns (local) to 945 ns (farthest node).
// Without out-of-order/prefetch overlap, a processor that misses on every
// line sees a usable bandwidth of line_bytes / latency:
//
//     128 B / 310 ns = 412 MB/s   ...   128 B / 945 ns = 135 MB/s
//
// and overlapped off-node accesses top out near 195 MB/s. The tuned F3D
// generates only 68 MB/s of traffic, far below even the worst-case number,
// which is why the ccNUMA machine could be treated as UMA. This header
// makes those arithmetic facts a typed model so the ablation bench and the
// SMP simulator share one implementation.
#pragma once

namespace llp::model {

/// Bandwidth (MB/s, decimal megabytes) achieved by back-to-back misses of
/// `line_bytes`-byte transfers at `latency_ns` each, with no overlap.
double latency_limited_bandwidth_mbs(double line_bytes, double latency_ns);

/// Parameters of one machine's NUMA memory system.
struct NumaModel {
  double line_bytes = 128.0;        ///< coherence granularity
  double local_latency_ns = 310.0;  ///< nearest memory
  double remote_latency_ns = 945.0; ///< farthest memory
  double overlapped_offnode_mbs = 195.0;  ///< best-case off-node with prefetch
  double page_bytes = 16384.0;      ///< interleaving unit across nodes
  int processors_per_node = 2;      ///< Origin 2000 node = 2 procs + memory

  /// Usable per-processor bandwidth without overlap at local latency.
  double local_bandwidth_mbs() const;
  /// Usable per-processor bandwidth without overlap at remote latency.
  double remote_bandwidth_mbs() const;

  /// True if a program generating `traffic_mbs` per processor stays below
  /// the worst-case un-overlapped remote bandwidth — i.e. the machine can
  /// be treated as UMA for this program (the paper's 68 MB/s case).
  bool uma_like(double traffic_mbs) const;

  /// Slowdown factor (>= 1) applied to memory-bound time when per-processor
  /// demand exceeds the usable off-node bandwidth. Demand below the limit
  /// costs nothing; above it, time scales with demand/limit.
  double bandwidth_slowdown(double traffic_mbs) const;
};

/// The SGI Origin 2000 numbers quoted in §7 (Laudon & Lenoski).
NumaModel origin2000_numa();

/// A "heavily NUMA" machine in the spirit of the Convex Exemplar, whose
/// off-node path goes through a slower interconnect; the paper never got
/// acceptable performance there.
NumaModel exemplar_numa();

/// Software distributed shared memory over a cluster (§8): 128-byte
/// coherence at ~100 us latency gives ~1.3 MB/s per processor — the reason
/// SDSM "is virtually impossible to overcome" for multi-direction codes.
NumaModel software_dsm_numa();

}  // namespace llp::model
