#include "model/mlp.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>

#include "util/error.hpp"

namespace llp::model {

int zone_of_region(const std::string& name) {
  // Find a "z<digits>." component, possibly after a dotted prefix.
  std::size_t start = 0;
  while (start < name.size()) {
    if (name[start] == 'z' && start + 1 < name.size() &&
        std::isdigit(static_cast<unsigned char>(name[start + 1]))) {
      std::size_t end = start + 1;
      while (end < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[end]))) {
        ++end;
      }
      if (end < name.size() && name[end] == '.') {
        return std::stoi(name.substr(start + 1, end - start - 1));
      }
    }
    const std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return -1;
}

double MlpResult::group_imbalance() const {
  if (zone_seconds.empty()) return 0.0;
  double sum = 0.0, mx = 0.0;
  for (double s : zone_seconds) {
    sum += s;
    mx = std::max(mx, s);
  }
  const double mean = sum / static_cast<double>(zone_seconds.size());
  return mean > 0.0 ? mx / mean : 0.0;
}

std::vector<int> partition_processors(const std::vector<double>& zone_flops,
                                      int processors) {
  const int zones = static_cast<int>(zone_flops.size());
  LLP_REQUIRE(zones >= 1, "need at least one zone");
  LLP_REQUIRE(processors >= zones,
              "MLP needs at least one processor per zone");
  const double total =
      std::accumulate(zone_flops.begin(), zone_flops.end(), 0.0);
  LLP_REQUIRE(total > 0.0, "zones have no work");

  // Largest-remainder apportionment with a floor of 1.
  std::vector<int> out(static_cast<std::size_t>(zones), 1);
  int assigned = zones;
  std::vector<std::pair<double, int>> remainders;
  for (int z = 0; z < zones; ++z) {
    const double ideal =
        zone_flops[static_cast<std::size_t>(z)] / total * processors;
    const int extra = std::max(0, static_cast<int>(ideal) - 1);
    out[static_cast<std::size_t>(z)] += extra;
    assigned += extra;
    remainders.emplace_back(ideal - static_cast<int>(ideal), z);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < processors; ++i) {
    out[static_cast<std::size_t>(remainders[i % remainders.size()].second)]++;
    ++assigned;
  }
  while (assigned > processors) {
    // Floor-of-1 overshoot on tiny processor counts: trim the largest.
    auto it = std::max_element(out.begin(), out.end());
    LLP_REQUIRE(*it > 1, "cannot trim below one processor per zone");
    --(*it);
    --assigned;
  }
  return out;
}

MlpResult predict_step_time_mlp(const WorkTrace& trace,
                                const MachineConfig& machine,
                                int processors) {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");

  // Split the trace by zone.
  int max_zone = -1;
  for (const auto& l : trace.loops) {
    max_zone = std::max(max_zone, zone_of_region(l.name));
  }
  LLP_REQUIRE(max_zone >= 0, "trace has no zone-tagged regions");
  const int zones = max_zone + 1;

  std::vector<WorkTrace> per_zone(static_cast<std::size_t>(zones));
  WorkTrace global;
  for (const auto& l : trace.loops) {
    const int z = zone_of_region(l.name);
    if (z >= 0) {
      per_zone[static_cast<std::size_t>(z)].loops.push_back(l);
    } else {
      global.loops.push_back(l);
    }
  }

  std::vector<double> zone_flops;
  zone_flops.reserve(per_zone.size());
  for (const auto& t : per_zone) zone_flops.push_back(t.total_flops());

  MlpResult r;
  r.group_sizes = partition_processors(zone_flops, processors);
  for (int z = 0; z < zones; ++z) {
    const auto st = predict_step_time(per_zone[static_cast<std::size_t>(z)],
                                      machine,
                                      r.group_sizes[static_cast<std::size_t>(z)]);
    r.zone_seconds.push_back(st.total());
  }
  // Zones overlap; the global serial tail does not.
  for (const auto& l : global.loops) {
    r.serial_seconds += machine.seconds_for_flops(l.flops_per_step);
  }
  r.seconds_per_step =
      *std::max_element(r.zone_seconds.begin(), r.zone_seconds.end()) +
      r.serial_seconds;
  return r;
}

}  // namespace llp::model
