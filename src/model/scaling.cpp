#include "model/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "model/stairstep.hpp"
#include "util/error.hpp"

namespace llp::model {

double WorkTrace::total_flops() const {
  double s = 0.0;
  for (const auto& l : loops) s += l.flops_per_step;
  return s;
}

double WorkTrace::total_bytes() const {
  double s = 0.0;
  for (const auto& l : loops) s += l.bytes_per_step;
  return s;
}

double WorkTrace::serial_fraction() const {
  double serial = 0.0, total = 0.0;
  for (const auto& l : loops) {
    total += l.flops_per_step;
    if (!l.parallel) serial += l.flops_per_step;
  }
  return total > 0.0 ? serial / total : 0.0;
}

StepTime predict_step_time(const WorkTrace& trace, const MachineConfig& machine,
                           int processors) {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  LLP_REQUIRE(processors <= machine.max_processors,
              "machine does not have that many processors");

  StepTime t;
  for (const auto& l : trace.loops) {
    const double serial_compute = machine.seconds_for_flops(l.flops_per_step);
    if (!l.parallel || processors == 1) {
      t.serial_s += serial_compute;
      continue;
    }
    LLP_REQUIRE(l.trips >= 1, "parallel loop with no iterations: " + l.name);
    // Busiest processor runs ceil(trips/p) of the trips; its share of the
    // region's compute is that fraction of the serial compute time.
    const double share =
        static_cast<double>(max_units_per_processor(l.trips, processors)) /
        static_cast<double>(l.trips);
    t.compute_s += serial_compute * share;
    t.sync_s += l.invocations_per_step * machine.sync_seconds(processors);
  }

  // NUMA bandwidth check (one correction pass): per-processor traffic demand
  // at the uncorrected step time. Only the parallel compute portion is
  // memory-bound in this model; sync and serial time are left alone.
  const double uncorrected = t.total();
  if (uncorrected > 0.0 && processors > 1) {
    const double demand_mbs =
        trace.total_bytes() / uncorrected / 1e6 / processors;
    const double slow = machine.numa.bandwidth_slowdown(demand_mbs);
    t.compute_s *= slow;
  }
  return t;
}

double amdahl_speedup(double serial_fraction, int processors) {
  LLP_REQUIRE(serial_fraction >= 0.0 && serial_fraction <= 1.0,
              "serial_fraction must be in [0,1]");
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  return 1.0 /
         (serial_fraction + (1.0 - serial_fraction) / processors);
}

WorkTrace scale_trace(const WorkTrace& trace, double work_scale,
                      double trip_scale) {
  LLP_REQUIRE(work_scale > 0.0 && trip_scale > 0.0, "scales must be positive");
  WorkTrace out = trace;
  for (auto& l : out.loops) {
    l.flops_per_step *= work_scale;
    l.bytes_per_step *= work_scale;
    l.trips = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(l.trips * trip_scale)));
  }
  return out;
}

}  // namespace llp::model
