#include "model/machine.hpp"

#include "util/error.hpp"

namespace llp::model {

double MachineConfig::sync_seconds(int processors) const {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  return (sync_base_ns + sync_ns_per_proc * processors) * 1e-9;
}

double MachineConfig::sync_cycles(int processors) const {
  return sync_seconds(processors) * clock_hz;
}

double MachineConfig::seconds_for_flops(double flops) const {
  LLP_REQUIRE(flops >= 0.0, "flops must be nonnegative");
  return flops / (sustained_mflops_per_proc * 1e6);
}

MachineConfig origin2000_r12k_300() {
  MachineConfig m;
  m.name = "SGI Origin 2000 (R12000, 300 MHz, 128p)";
  m.clock_hz = 300e6;
  m.peak_mflops_per_proc = 600.0;
  m.sustained_mflops_per_proc = 237.0;  // Table 4, p=1, 1M case
  m.max_processors = 128;
  m.sync_base_ns = 15000.0;
  m.sync_ns_per_proc = 600.0;
  m.numa = origin2000_numa();
  m.l2_cache_bytes = 8 * 1024 * 1024;
  return m;
}

MachineConfig origin2000_r10k_195(int processors) {
  LLP_REQUIRE(processors == 64 || processors == 128,
              "paper used 64p and 128p 195 MHz Origins");
  MachineConfig m = origin2000_r12k_300();
  m.name = "SGI Origin 2000 (R10000, 195 MHz, " + std::to_string(processors) +
           "p)";
  m.clock_hz = 195e6;
  m.peak_mflops_per_proc = 390.0;
  // Same memory system, slower core: scale delivered rate with clock.
  m.sustained_mflops_per_proc = 237.0 * 195.0 / 300.0;
  m.max_processors = processors;
  m.l2_cache_bytes = 4 * 1024 * 1024;
  return m;
}

MachineConfig sun_hpc10000() {
  MachineConfig m;
  m.name = "SUN HPC 10000 (UltraSPARC II, 400 MHz, 64p)";
  m.clock_hz = 400e6;
  m.peak_mflops_per_proc = 800.0;
  m.sustained_mflops_per_proc = 180.0;  // Table 4, p=1, 1M case
  m.max_processors = 64;
  // Starfire's snoopy-over-crossbar coherence: flatter but higher base cost.
  m.sync_base_ns = 25000.0;
  m.sync_ns_per_proc = 400.0;
  m.numa = origin2000_numa();
  m.numa.local_latency_ns = 560.0;   // Starfire is flat (UMA-ish) but slower
  m.numa.remote_latency_ns = 560.0;
  m.numa.line_bytes = 64.0;
  m.numa.overlapped_offnode_mbs = 400.0;
  m.l2_cache_bytes = 4 * 1024 * 1024;
  return m;
}

MachineConfig hp_v2500() {
  MachineConfig m;
  m.name = "HP V2500 (PA-8500, 440 MHz, 16p)";
  m.clock_hz = 440e6;
  m.peak_mflops_per_proc = 1760.0;  // 4 flops/cycle peak on PA-8500
  m.sustained_mflops_per_proc = 320.0;
  m.max_processors = 16;
  m.sync_base_ns = 8000.0;
  m.sync_ns_per_proc = 500.0;
  m.numa = origin2000_numa();
  m.numa.local_latency_ns = 290.0;
  m.numa.remote_latency_ns = 290.0;  // single-cabinet V-Class is UMA
  m.l2_cache_bytes = 1024 * 1024;
  return m;
}

MachineConfig sgi_power_challenge() {
  MachineConfig m;
  m.name = "SGI Power Challenge (R10000, 195 MHz)";
  m.clock_hz = 195e6;
  m.peak_mflops_per_proc = 390.0;
  m.sustained_mflops_per_proc = 140.0;
  m.max_processors = 16;
  m.sync_base_ns = 10000.0;
  m.sync_ns_per_proc = 800.0;
  m.numa = origin2000_numa();
  m.numa.local_latency_ns = 900.0;   // shared-bus memory, flat but slow
  m.numa.remote_latency_ns = 900.0;
  m.l2_cache_bytes = 2 * 1024 * 1024;
  return m;
}

MachineConfig convex_spp1000() {
  MachineConfig m;
  m.name = "Convex Exemplar SPP-1000 (PA-7100, 100 MHz)";
  m.clock_hz = 100e6;
  m.peak_mflops_per_proc = 200.0;
  m.sustained_mflops_per_proc = 40.0;
  m.max_processors = 64;
  m.sync_base_ns = 60000.0;
  m.sync_ns_per_proc = 4000.0;
  m.numa = exemplar_numa();
  m.l2_cache_bytes = 1024 * 1024;
  return m;
}

MachineConfig software_dsm_cluster() {
  MachineConfig m;
  m.name = "Workstation cluster w/ software DSM";
  m.clock_hz = 300e6;
  m.peak_mflops_per_proc = 600.0;
  m.sustained_mflops_per_proc = 237.0;
  m.max_processors = 64;
  m.sync_base_ns = 200000.0;  // software barrier over the network
  m.sync_ns_per_proc = 50000.0;
  m.numa = software_dsm_numa();
  m.l2_cache_bytes = 8 * 1024 * 1024;
  return m;
}

MachineConfig cray_c90() {
  MachineConfig m;
  m.name = "Cray C90 (vector, 244 MHz, 16p)";
  m.clock_hz = 244e6;
  m.peak_mflops_per_proc = 952.0;   // dual vector pipes x 2 flops
  m.sustained_mflops_per_proc = 450.0;  // well-vectorized CFD
  m.max_processors = 16;
  // Hardware semaphores + flat SRAM memory: microsecond-class sync.
  m.sync_base_ns = 2000.0;
  m.sync_ns_per_proc = 250.0;
  m.numa = origin2000_numa();
  m.numa.local_latency_ns = 100.0;  // no cache, flat fast SRAM
  m.numa.remote_latency_ns = 100.0;
  m.numa.overlapped_offnode_mbs = 10000.0;  // streaming vector memory
  m.l2_cache_bytes = 0;  // vector machines had no data cache (§3)
  return m;
}

}  // namespace llp::model
