#include "model/sync_cost.hpp"

#include "util/error.hpp"

namespace llp::model {

std::int64_t min_work_for_efficiency(int processors, std::int64_t sync_cycles,
                                     double overhead_fraction) {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  LLP_REQUIRE(sync_cycles >= 0, "sync_cycles must be >= 0");
  LLP_REQUIRE(overhead_fraction > 0.0 && overhead_fraction <= 1.0,
              "overhead_fraction must be in (0,1]");
  const double w = static_cast<double>(processors) *
                   static_cast<double>(sync_cycles) / overhead_fraction;
  return static_cast<std::int64_t>(w + 0.5);
}

double sync_overhead_fraction(std::int64_t work_cycles, int processors,
                              std::int64_t sync_cycles) {
  LLP_REQUIRE(work_cycles > 0, "work_cycles must be positive");
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  const double parallel_time =
      static_cast<double>(work_cycles) / static_cast<double>(processors);
  return static_cast<double>(sync_cycles) /
         (parallel_time + static_cast<double>(sync_cycles));
}

}  // namespace llp::model
