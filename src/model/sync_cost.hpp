// Synchronization-cost efficiency model (paper §3, Table 1).
//
// Exiting a parallel region costs a synchronization event whose price on
// scalable SMPs ranges from ~2,000 to ~1,000,000 cycles depending on the
// machine and load. The paper's efficiency criterion: keep that cost below
// 1% of the loop's runtime. With p processors the (perfectly parallelized)
// loop runs in W/p cycles, so
//
//     sync <= overhead * W / p   =>   W >= p * sync / overhead.
//
// With overhead = 1% this reproduces Table 1 exactly
// (e.g. p=128, sync=1e6  ->  W = 12,800,000,000 cycles).
#pragma once

#include <cstdint>

namespace llp::model {

/// Default efficiency target: sync cost at most 1% of loop runtime.
inline constexpr double kDefaultOverheadFraction = 0.01;

/// Minimum serial work (cycles) a loop must contain for the sync cost to
/// stay below `overhead_fraction` of its parallel runtime on p processors.
std::int64_t min_work_for_efficiency(
    int processors, std::int64_t sync_cycles,
    double overhead_fraction = kDefaultOverheadFraction);

/// Fraction of runtime lost to synchronization for a loop with `work`
/// cycles run on p processors (assumes perfect division of work).
double sync_overhead_fraction(std::int64_t work_cycles, int processors,
                              std::int64_t sync_cycles);

}  // namespace llp::model
