// Named machine configurations for the SMP performance simulator.
//
// Each config captures the handful of constants the paper's effects depend
// on: clock rate, delivered (not peak!) per-processor throughput — the paper
// is explicit that peak MFLOPS mislead (§5) — the synchronization-cost curve,
// and the NUMA memory model. Delivered throughput is anchored to the
// single-processor rows of Table 4 (Origin 2000/R12000: 237 MFLOPS of
// 600 peak; HPC 10000/UltraSPARC II: 180 MFLOPS of 800 peak).
#pragma once

#include <string>

#include "model/numa.hpp"

namespace llp::model {

struct MachineConfig {
  std::string name;
  double clock_hz = 300e6;
  double peak_mflops_per_proc = 600.0;
  double sustained_mflops_per_proc = 237.0;  ///< delivered, tuned code
  int max_processors = 128;

  /// Fork-join synchronization cost: sync_ns(p) = base + per_proc * p.
  /// The paper quotes 2,000 cycles to 1,000,000+ cycles depending on the
  /// machine and load (§3); these defaults sit in that range.
  double sync_base_ns = 15000.0;
  double sync_ns_per_proc = 600.0;

  NumaModel numa;

  double l2_cache_bytes = 8 * 1024 * 1024;

  /// Sync cost for exiting a parallel region on p processors.
  double sync_seconds(int processors) const;
  /// Same, in processor clock cycles (for comparison with Table 1).
  double sync_cycles(int processors) const;

  /// Time to execute `flops` floating-point operations on one processor at
  /// the delivered rate.
  double seconds_for_flops(double flops) const;
};

/// SGI Origin 2000, R12000 @ 300 MHz, 128 processors (Table 4, Figures 2–3).
MachineConfig origin2000_r12k_300();

/// SGI Origin 2000, R10000 @ 195 MHz, 64 or 128 processors (Figure 3).
MachineConfig origin2000_r10k_195(int processors);

/// SUN HPC 10000, UltraSPARC II @ 400 MHz, 64 processors (Table 4).
MachineConfig sun_hpc10000();

/// HP V2500 @ 440 MHz, 16 processors (Figure 2, "Guide" curve).
MachineConfig hp_v2500();

/// SGI Power Challenge, R10000 @ 195 MHz (serial-tuning testbed, §5).
MachineConfig sgi_power_challenge();

/// Convex Exemplar SPP-1000 (heavily NUMA; the machine the vector code was
/// unusably slow on and where NUMA problems were never solved, §5–§7).
MachineConfig convex_spp1000();

/// A deliberately bad software-DSM "machine" for the §8 comparison.
MachineConfig software_dsm_cluster();

/// Cray C90 vector supercomputer (§2: "from the mid-1970s to the
/// mid-1990s, the terms 'vector computers' and 'supercomputers' were
/// nearly synonymous"). Sustained rate assumes well-vectorized code; this
/// is the machine whose single-processor performance sets the paper's
/// acceptability bar.
MachineConfig cray_c90();

}  // namespace llp::model
