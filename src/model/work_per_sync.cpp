#include "model/work_per_sync.hpp"

#include "util/error.hpp"

namespace llp::model {

std::int64_t work_per_sync_1d(std::int64_t n, std::int64_t cycles_per_point) {
  LLP_REQUIRE(n > 0 && cycles_per_point > 0, "positive args required");
  return n * cycles_per_point;
}

std::int64_t work_per_sync_2d(std::int64_t jmax, std::int64_t kmax,
                              LoopLevel level, std::int64_t cycles_per_point) {
  LLP_REQUIRE(jmax > 0 && kmax > 0 && cycles_per_point > 0,
              "positive args required");
  switch (level) {
    case LoopLevel::kInner:
      return jmax * cycles_per_point;
    case LoopLevel::kOuter:
      return jmax * kmax * cycles_per_point;
    case LoopLevel::kMiddle:
      break;
  }
  throw Error("work_per_sync_2d: kMiddle is invalid for a 2-D nest");
}

std::int64_t work_per_sync_3d(std::int64_t jmax, std::int64_t kmax,
                              std::int64_t lmax, LoopLevel level,
                              std::int64_t cycles_per_point) {
  LLP_REQUIRE(jmax > 0 && kmax > 0 && lmax > 0 && cycles_per_point > 0,
              "positive args required");
  switch (level) {
    case LoopLevel::kInner:
      return jmax * cycles_per_point;
    case LoopLevel::kMiddle:
      return jmax * kmax * cycles_per_point;
    case LoopLevel::kOuter:
      return jmax * kmax * lmax * cycles_per_point;
  }
  throw Error("work_per_sync_3d: bad LoopLevel");
}

std::int64_t work_per_sync_boundary(std::int64_t n0, std::int64_t n1,
                                    LoopLevel level,
                                    std::int64_t cycles_per_point) {
  LLP_REQUIRE(n0 > 0 && n1 > 0 && cycles_per_point > 0,
              "positive args required");
  switch (level) {
    case LoopLevel::kInner:
      return n0 * cycles_per_point;
    case LoopLevel::kOuter:
      return n0 * n1 * cycles_per_point;
    case LoopLevel::kMiddle:
      break;
  }
  throw Error("work_per_sync_boundary: kMiddle is invalid for a face");
}

}  // namespace llp::model
