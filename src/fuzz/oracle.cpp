#include "fuzz/oracle.hpp"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>

#include "analyze/access_logger.hpp"
#include "ckpt/checkpoint.hpp"
#include "cluster/coordinator.hpp"
#include "core/runtime.hpp"
#include "f3d/validation.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::fuzz {

namespace {

namespace fs = std::filesystem;

// Pull the "fz.z0.rhs"-shaped token out of an error message, so faults
// attributed by LaneError bucket by region without parsing prose.
std::string extract_region(const std::string& text) {
  const std::string needle = std::string(kRegionPrefix) + ".";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[end])) ||
          text[end] == '.' || text[end] == '_')) {
    ++end;
  }
  return text.substr(pos, end - pos);
}

CaseResult fail(CaseResult r, OracleId oracle, std::string error_type,
                std::string region, std::string detail) {
  r.oracle = oracle;
  r.error_type = std::move(error_type);
  r.region = std::move(region);
  r.detail = std::move(detail);
  return r;
}

std::uint64_t loop_faults_fired(const fault::Injector& inj) {
  return inj.faults_injected(fault::FaultKind::kThrow) +
         inj.faults_injected(fault::FaultKind::kNan);
}

std::uint64_t io_faults_fired(const fault::Injector& inj) {
  return inj.faults_injected(fault::FaultKind::kIoShort) +
         inj.faults_injected(fault::FaultKind::kIoFlip) +
         inj.faults_injected(fault::FaultKind::kIoEnospc) +
         inj.faults_injected(fault::FaultKind::kIoCrash);
}

std::string fingerprint(const Scenario& s) {
  // What the checkpoint loader compares before trusting a payload: enough
  // to refuse a resume under a different physics/engine configuration.
  std::ostringstream out;
  out << "fuzz cfl=" << s.cfl << " mach=" << s.mach
      << " mode=" << f3d::engine_name(s.engine);
  return out.str();
}

}  // namespace

const char* to_string(OracleId oracle) {
  switch (oracle) {
    case OracleId::kNone: return "none";
    case OracleId::kConstruction: return "construction";
    case OracleId::kValidation: return "validation";
    case OracleId::kRace: return "race";
    case OracleId::kStaticCross: return "static-cross";
    case OracleId::kDifferential: return "differential";
    case OracleId::kRestart: return "restart";
    case OracleId::kCluster: return "cluster";
  }
  return "none";
}

std::string CaseResult::signature() const {
  if (rejected) return "rejected";
  if (passed()) return "pass";
  std::string sig = std::string(to_string(oracle)) + "/" + error_type;
  if (!region.empty()) sig += "/" + region;
  return sig;
}

std::string describe(const CaseResult& result) {
  if (result.rejected) return "REJECT (" + result.detail + ")";
  if (result.passed()) {
    return strfmt("pass (steps=%d recoveries=%d%s)", result.steps_completed,
                  result.recoveries, result.crashed ? " crashed" : "");
  }
  std::string line = "FAIL " + result.signature();
  if (!result.detail.empty()) line += " (" + result.detail + ")";
  return line;
}

CaseResult run_case(const Scenario& scenario, const RunCaseOptions& options) {
  CaseResult result;

  // --- construction: a bad case must be refused with the typed error ----
  // (anything else escaping the constructors is finding #1).
  std::unique_ptr<f3d::MultiZoneGrid> grid;
  f3d::SolverConfig config;
  try {
    scenario.validate();
    grid = std::make_unique<f3d::MultiZoneGrid>(
        build_scenario_grid(scenario));
    config = build_scenario_config(scenario);
  } catch (const ValidationError& e) {
    result.rejected = true;
    result.detail = e.what();
    return result;
  } catch (const std::exception& e) {
    return fail(std::move(result), OracleId::kConstruction,
                "unexpected-exception", "", e.what());
  }

  // Everything this case does — regions, lanes, observers, fault hook —
  // lives on its own runtime, so a thousand cases cannot bleed tuner
  // state, fault timelines, or region profiles into each other.
  Runtime rt(scenario.threads);
  RuntimeScope scope(rt);

  fault::Injector injector(scenario.fault);
  for (int z = 0; z < grid->num_zones(); ++z) {
    auto& st = grid->zone(z).storage();
    injector.register_array("q" + std::to_string(z), st.data(), st.size());
  }
  if (!scenario.fault.empty()) rt.set_fault_hook(&injector);

  analyze::AccessLogger logger;
  rt.add_observer(&logger);

  std::unique_ptr<f3d::ckpt::CheckpointStore> store;
  if (scenario.ckpt_every > 0) {
    if (options.work_dir.empty()) {
      throw Error("run_case: scenario has ckpt_every > 0 but no work_dir");
    }
    const std::string dir = options.work_dir + "/ckpt";
    fs::remove_all(dir);
    fs::create_directories(dir);
    f3d::ckpt::Config ckpt_cfg;
    ckpt_cfg.dir = dir;
    ckpt_cfg.every = scenario.ckpt_every;
    ckpt_cfg.keep_generations = 3;
    ckpt_cfg.meta = fingerprint(scenario);
    ckpt_cfg.injector = &injector;
    store = std::make_unique<f3d::ckpt::CheckpointStore>(ckpt_cfg);
  }

  f3d::RunReport report;
  f3d::RunHistory history;
  try {
    f3d::Solver solver(*grid, config, rt);
    if (store) solver.set_checkpoint_hook(store.get());
    report = solver.run_protected(scenario.steps, &history);
    result.steps_completed = report.steps_completed;
    result.recoveries = report.recoveries;
  } catch (const CrashError& e) {
    // An injected iocrash "killed the process" mid-checkpoint-write. The
    // solve is over; the restart oracle below must bring it back.
    result.crashed = true;
    result.detail = e.what();
  } catch (const ValidationError& e) {
    result.rejected = true;
    result.detail = e.what();
    rt.remove_observer(&logger);
    return result;
  } catch (const std::exception& e) {
    rt.remove_observer(&logger);
    return fail(std::move(result), OracleId::kValidation,
                "unexpected-exception", extract_region(e.what()), e.what());
  }
  rt.remove_observer(&logger);

  // --- oracle 1: validation --------------------------------------------
  if (!result.crashed) {
    if (report.failed) {
      const bool nonfinite =
          report.failure_reason.find("non-finite") != std::string::npos;
      return fail(std::move(result), OracleId::kValidation,
                  nonfinite ? "non-finite" : "budget-exhausted",
                  extract_region(report.failure_reason),
                  report.failure_reason);
    }
    if (!std::isfinite(report.final_residual) || !f3d::all_finite(*grid)) {
      return fail(std::move(result), OracleId::kValidation,
                  "non-finite-final", "",
                  strfmt("final residual %g", report.final_residual));
    }
  }

  // --- oracle 2: dynamic race check ------------------------------------
  if (logger.num_findings() > 0) {
    // Cross-validation first: a kStaticContradiction finding means the
    // STATIC analyzer promised DOALL for a region this very run raced —
    // a hard failure of the tooling itself, reported as its own oracle so
    // it can never hide inside an ordinary race bucket.
    for (const analyze::Finding& f : logger.findings()) {
      if (f.kind == analyze::FindingKind::kStaticContradiction) {
        return fail(std::move(result), OracleId::kStaticCross,
                    analyze::finding_kind_name(f.kind), f.region,
                    analyze::format_finding(f));
      }
    }
    const analyze::Finding f = logger.findings().front();
    return fail(std::move(result), OracleId::kRace,
                analyze::finding_kind_name(f.kind), f.region,
                analyze::format_finding(f));
  }

  // --- oracle 3: engine differential -----------------------------------
  // Only meaningful on clean trajectories: an injected fault keys on one
  // engine's region timeline and would legitimately diverge the twins.
  // The primary is re-run under every OTHER registered engine; each pair
  // carries its own tolerance — simd_diff_tol when either side fuses
  // multiply-adds (EngineInfo::fma_lanes), diff_tol otherwise. The
  // error-type token "<primary>-<twin>-mismatch" keeps the legacy
  // "risc-vector-mismatch" bucket byte-stable for the default engine.
  if (!result.crashed && scenario.fault.empty()) {
    const f3d::EngineInfo& primary = f3d::engine_info(scenario.engine);
    for (const f3d::EngineInfo& other : f3d::engines()) {
      if (other.kind == primary.kind) continue;
      try {
        Scenario twin = scenario;
        twin.engine = other.kind;
        f3d::MultiZoneGrid grid_b = build_scenario_grid(twin);
        Runtime rt_b(twin.threads);
        RuntimeScope scope_b(rt_b);
        f3d::Solver solver_b(grid_b, build_scenario_config(twin), rt_b);
        const double residual_b = solver_b.run(twin.steps);
        const double diff = f3d::linf_diff(*grid, grid_b);
        const double tol = (primary.fma_lanes || other.fma_lanes)
                               ? options.simd_diff_tol
                               : options.diff_tol;
        if (!(diff <= tol) || !std::isfinite(residual_b)) {
          return fail(std::move(result), OracleId::kDifferential,
                      std::string(primary.name) + "-" +
                          std::string(other.name) + "-mismatch",
                      "",
                      strfmt("linf %g (tol %g), twin residual %g", diff, tol,
                             residual_b));
        }
      } catch (const std::exception& e) {
        return fail(std::move(result), OracleId::kDifferential,
                    "engine-exception", extract_region(e.what()), e.what());
      }
    }
  }

  // --- oracle 4: kill-and-resume ---------------------------------------
  // A crashed run MUST come back through the store; a clean-trajectory
  // run with a store additionally owes the stronger invariants: sealed
  // first-replay verification and final-solution parity. Cases whose
  // throw/nan faults rewrote the timeline via rollback (or degraded the
  // engine) only owe "resume works and stays finite" — the resumed twin
  // replays without the faults and would legitimately disagree bit-wise.
  const bool clean_trajectory =
      loop_faults_fired(injector) == 0 && !report.engine_fallback;
  if (store && (result.crashed || clean_trajectory)) {
    try {
      f3d::MultiZoneGrid grid_r = build_scenario_grid(scenario);
      f3d::ckpt::Manifest manifest;
      int gen = -1;
      std::string ladder;
      try {
        manifest = store->load_newest_intact(grid_r, &gen, &ladder);
      } catch (const IoError& e) {
        if (store->saves_completed() > 0 && io_faults_fired(injector) == 0) {
          // Generations were completed, nothing corrupted them, yet none
          // survive the validation ladder — the store lost data it
          // claimed to have written.
          return fail(std::move(result), OracleId::kRestart,
                      "no-intact-generation", "ckpt",
                      std::string(e.what()) + "; " + ladder);
        }
        // Nothing ever landed, or injected io faults corrupted every
        // generation that did: cold-start is the correct behaviour.
        return result;
      }

      Runtime rt_r(scenario.threads);
      RuntimeScope scope_r(rt_r);
      f3d::Solver solver_r(grid_r, build_scenario_config(scenario), rt_r);
      solver_r.restore(manifest.state);
      if (clean_trajectory) {
        std::string why;
        if (!f3d::ckpt::verify_first_replay(
                solver_r, manifest, store->config().replay_tol, &why)) {
          return fail(std::move(result), OracleId::kRestart,
                      "replay-mismatch", "ckpt",
                      strfmt("gen %d: %s", gen, why.c_str()));
        }
      }
      const int remaining = scenario.steps - solver_r.steps_taken();
      if (remaining > 0) solver_r.run(remaining);
      if (!f3d::all_finite(grid_r)) {
        return fail(std::move(result), OracleId::kRestart,
                    "resume-non-finite", "ckpt",
                    strfmt("resumed from gen %d (step %d)", gen,
                           manifest.state.steps));
      }
      if (!result.crashed && clean_trajectory) {
        // The main run finished too, so the resumed timeline must land on
        // the same solution (restart parity).
        const double diff = f3d::linf_diff(*grid, grid_r);
        if (!(diff <= options.restart_tol)) {
          return fail(std::move(result), OracleId::kRestart,
                      "restart-mismatch", "ckpt",
                      strfmt("linf %g (tol %g) resuming gen %d from step %d",
                             diff, options.restart_tol, gen,
                             manifest.state.steps));
        }
      }
    } catch (const std::exception& e) {
      return fail(std::move(result), OracleId::kRestart, "resume-exception",
                  "ckpt", e.what());
    }
  }

  // --- oracle 5: sharded backend parity and recovery --------------------
  // validate() guarantees cluster cases are fault-free with the CFL ramp
  // pinned, so the in-process run above is the trajectory the shards owe.
  if (scenario.workers >= 2 && !result.crashed) {
    if (options.work_dir.empty()) {
      throw Error("run_case: scenario has workers >= 2 but no work_dir");
    }
    try {
      cluster::ClusterConfig ccfg;
      ccfg.case_spec.zones = scenario.zones;
      ccfg.case_spec.spacing = scenario.spacing;
      ccfg.case_spec.freestream.mach = scenario.mach;
      ccfg.case_spec.freestream.alpha_deg = scenario.alpha_deg;
      const BcCombo bc = scenario.bc;
      const double pulse = scenario.pulse;
      ccfg.init_grid = [bc, pulse](f3d::MultiZoneGrid& grid) {
        if (bc == BcCombo::kKminWall) f3d::add_kmin_wall(grid);
        if (pulse != 0.0) f3d::add_gaussian_pulse(grid, pulse, 2.0);
      };
      ccfg.steps = scenario.steps;
      ccfg.workers = scenario.workers;
      ccfg.worker_threads = scenario.threads;
      ccfg.cfl = scenario.cfl;
      ccfg.engine = scenario.engine;
      ccfg.region_prefix = kRegionPrefix;
      ccfg.ckpt_dir = options.work_dir + "/cluster";
      ccfg.ckpt_every = scenario.ckpt_every > 0 ? scenario.ckpt_every : 3;
      ccfg.heartbeat_ms = 20;
      ccfg.step_deadline_ms = 800;
      ccfg.worker_exe = options.cluster_exe;

      fs::remove_all(ccfg.ckpt_dir);
      fs::create_directories(ccfg.ckpt_dir);
      const cluster::ClusterReport clean = cluster::run_cluster(ccfg);
      const double solo = report.final_residual;
      if (!(std::abs(clean.final_residual - solo) <=
            options.cluster_tol * std::abs(solo))) {
        return fail(std::move(result), OracleId::kCluster,
                    "cluster-parity", "cluster",
                    strfmt("cluster %.17g vs in-process %.17g (tol %g)",
                           clean.final_residual, solo, options.cluster_tol));
      }

      if (scenario.kill_worker >= 0 || scenario.hang_worker >= 0) {
        std::string spec;
        if (scenario.kill_worker >= 0) {
          spec = strfmt("iocrash:w%d.step:%d:0", scenario.kill_worker,
                        scenario.kill_step);
        }
        if (scenario.hang_worker >= 0) {
          if (!spec.empty()) spec += ';';
          spec += strfmt("hang:w%d.step:%d:0", scenario.hang_worker,
                         scenario.hang_step);
        }
        cluster::ClusterConfig fcfg = ccfg;
        fcfg.fault_spec = spec;
        fcfg.ckpt_dir = options.work_dir + "/cluster_faulted";
        fs::remove_all(fcfg.ckpt_dir);
        fs::create_directories(fcfg.ckpt_dir);
        const cluster::ClusterReport recovered = cluster::run_cluster(fcfg);
        if (recovered.recoveries < 1) {
          return fail(std::move(result), OracleId::kCluster,
                      "cluster-fault-unfired", "cluster",
                      strfmt("'%s' caused no recovery", spec.c_str()));
        }
        // Same partition, same thread counts: bitwise, not merely close.
        if (recovered.final_residual != clean.final_residual ||
            recovered.residuals != clean.residuals) {
          return fail(std::move(result), OracleId::kCluster,
                      "cluster-recovery-mismatch", "cluster",
                      strfmt("recovered %.17g vs clean %.17g after '%s'",
                             recovered.final_residual, clean.final_residual,
                             spec.c_str()));
        }
        result.recoveries += recovered.recoveries;
      }
    } catch (const std::exception& e) {
      return fail(std::move(result), OracleId::kCluster, "cluster-exception",
                  "cluster", e.what());
    }
  }

  return result;
}

}  // namespace llp::fuzz
