#include "fuzz/runner.hpp"

#include <filesystem>
#include <ostream>
#include <sstream>

#include "fuzz/shrink.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace llp::fuzz {

namespace {

namespace fs = std::filesystem;

class Campaign {
public:
  Campaign(const CampaignConfig& config, std::ostream& log)
      : config_(config), log_(log) {
    options_.work_dir =
        config.work_dir.empty() ? "fuzz_work" : config.work_dir;
    options_.cluster_exe = config.cluster_exe;
    fs::create_directories(options_.work_dir);
    if (!config.out_dir.empty()) fs::create_directories(config.out_dir);
  }

  CampaignStats run() {
    // Phase 1: the seed corpus (known bads, yesterday's repros) replays
    // first — a signature that stopped reproducing is visible before any
    // fresh case runs.
    std::vector<Scenario> seeds;
    for (const std::string& file : config_.corpus_files) {
      try {
        Scenario s = load_case(file);
        log_ << "[seed] " << file << ": ";
        drive(s, /*from_corpus=*/true);
        seeds.push_back(std::move(s));
      } catch (const Error& e) {
        log_ << "[seed] " << file << ": unreadable (" << e.what() << ")\n";
      }
    }

    // Phase 2: fresh generation, with a slice of the budget mutating the
    // seeds (every 4th case when seeds exist). All choices flow from the
    // campaign seed, never from the verdicts, so two runs with the same
    // seed produce byte-identical case sequences even while triaging.
    Generator gen(config_.seed, config_.generator);
    SplitMix64 mutate_rng(config_.seed ^ 0x9a95eedULL);
    for (int i = 0; i < config_.cases; ++i) {
      const bool mutate = !seeds.empty() && i % 4 == 3;
      Scenario s =
          mutate ? gen.mutate(seeds[mutate_rng.below(seeds.size())],
                              mutate_rng.next())
                 : gen.next();
      if (config_.print_specs) log_ << "[spec] " << s.to_line() << "\n";
      log_ << "[case " << i << "] ";
      drive(s, /*from_corpus=*/false);
    }
    return std::move(stats_);
  }

private:
  void drive(const Scenario& scenario, bool from_corpus) {
    const CaseResult verdict = run_case(scenario, options_);
    log_ << describe(verdict) << "\n";
    ++stats_.cases_run;
    if (verdict.rejected) {
      ++stats_.rejected;
      return;
    }
    if (verdict.crashed) ++stats_.crashes;
    if (verdict.passed()) {
      ++stats_.passed;
      return;
    }
    ++stats_.failed;
    if (scenario.fault.empty()) stats_.unprovoked_failure = true;
    const bool fresh_bucket = stats_.buckets.record(verdict.signature());
    if (!fresh_bucket || from_corpus) return;

    // First hit of a new bucket: shrink it and keep the minimal repro.
    Scenario repro = scenario;
    CaseResult repro_verdict = verdict;
    if (config_.shrink) {
      const ShrinkResult shrunk =
          shrink(scenario, verdict, options_, config_.shrink_budget);
      ++stats_.shrunk;
      repro = shrunk.scenario;
      repro_verdict = run_case(repro, options_);
      log_ << "  [shrink] " << shrunk.evaluations << " evals -> "
           << repro.to_line() << "\n";
    }
    if (!config_.out_dir.empty()) {
      const std::string path =
          config_.out_dir + "/" + case_filename(repro, repro_verdict);
      save_case(path, repro, repro_verdict);
      stats_.repro_files.push_back(path);
      log_ << "  [saved] " << path << "\n";
    }
  }

  CampaignConfig config_;
  std::ostream& log_;
  RunCaseOptions options_;
  CampaignStats stats_;
};

}  // namespace

std::string CampaignStats::summary() const {
  std::ostringstream out;
  out << "cases=" << cases_run << " passed=" << passed << " failed=" << failed
      << " rejected=" << rejected << " crashes=" << crashes
      << " buckets=" << buckets.size() << " shrunk=" << shrunk << "\n";
  if (buckets.size() > 0) out << buckets.summary();
  return out.str();
}

CampaignStats run_campaign(const CampaignConfig& config, std::ostream& log) {
  return Campaign(config, log).run();
}

CaseResult replay_file(const std::string& path, const RunCaseOptions& options,
                       std::ostream& log) {
  const Scenario s = load_case(path);
  log << "[replay] " << s.to_line() << "\n";
  const CaseResult verdict = run_case(s, options);
  log << "[replay] " << describe(verdict) << "\n";
  return verdict;
}

}  // namespace llp::fuzz
