// Delta-debugging shrinker: reduce a failing scenario to a minimal repro.
//
// Greedy ddmin over the scenario's knobs: each pass proposes a strictly
// simpler candidate (fewer fault specs, fewer steps, fewer zones, smaller
// dims, fewer threads, fewer moving parts), re-runs the oracle stack, and
// keeps the candidate only if it fails with the SAME bucket signature —
// oracle x error type x region — as the original. Preserving the
// signature, not just "still fails", is what stops the shrinker from
// sliding off one bug onto a different, easier one.
//
// Passes iterate to a fixpoint under an evaluation budget; every re-run is
// the full deterministic oracle stack, so a shrunken repro is guaranteed
// to still reproduce when replayed from its corpus file.
#pragma once

#include <string>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"

namespace llp::fuzz {

struct ShrinkResult {
  Scenario scenario;     ///< smallest signature-preserving case found
  std::string signature; ///< the preserved bucket signature
  int evaluations = 0;   ///< oracle-stack runs spent
  int accepted = 0;      ///< candidates that kept the signature
};

/// Shrink `failing` (whose verdict was `original`, a failure) under
/// `options`, spending at most `max_evaluations` oracle runs.
ShrinkResult shrink(const Scenario& failing, const CaseResult& original,
                    const RunCaseOptions& options, int max_evaluations = 120);

}  // namespace llp::fuzz
