#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::fuzz {

namespace fs = std::filesystem;

void save_case(const std::string& path, const Scenario& scenario,
               const CaseResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open corpus file for write: " + path);
  out << "# f3d_fuzz case\n";
  out << "# signature: " << result.signature() << "\n";
  if (!result.detail.empty()) out << "# detail: " << result.detail << "\n";
  out << scenario.to_line() << "\n";
  out.flush();
  if (!out) throw IoError("write failed: " + path);
}

Scenario load_case(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open corpus file: " + path);
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace; skip blanks and comments.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size() || line[start] == '#') continue;
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    return Scenario::parse(line.substr(start));
  }
  throw ValidationError("corpus file has no scenario line: " + path);
}

std::vector<std::string> list_cases(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string case_filename(const Scenario& scenario,
                          const CaseResult& result) {
  std::string name = result.signature();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '.') {
      c = '_';
    }
  }
  return strfmt("%s-%llu.case", name.c_str(),
                static_cast<unsigned long long>(scenario.seed));
}

bool BucketSet::record(const std::string& signature) {
  return ++counts_[signature] == 1;
}

int BucketSet::count(const std::string& signature) const {
  const auto it = counts_.find(signature);
  return it == counts_.end() ? 0 : it->second;
}

std::string BucketSet::summary() const {
  std::ostringstream out;
  for (const auto& [sig, n] : counts_) {
    out << "  " << sig << " x" << n << "\n";
  }
  return out.str();
}

}  // namespace llp::fuzz
