// Replayable corpus: failures as files, buckets as signatures.
//
// Every interesting case is persisted as a *.case file — '#' comment
// lines carrying the verdict for humans, then the one-line scenario spec
// — so a failure found by a nightly campaign replays anywhere with
// `f3d_fuzz --replay file.case`. save/load round-trip exactly (the spec
// line is the canonical to_line form).
//
// BucketSet groups failures by signature (oracle x error type x region):
// a campaign that hits the same root cause five hundred times shrinks and
// saves it once.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"

namespace llp::fuzz {

/// Write `scenario` (with its verdict as comments) to `path`. Throws
/// llp::IoError on write failure.
void save_case(const std::string& path, const Scenario& scenario,
               const CaseResult& result);

/// Parse the first non-comment, non-empty line of `path` as a scenario.
/// Throws llp::IoError on read failure, llp::ValidationError on a
/// malformed spec.
Scenario load_case(const std::string& path);

/// All *.case files directly under `dir`, sorted by name (deterministic
/// campaign order). Missing directory => empty list.
std::vector<std::string> list_cases(const std::string& dir);

/// Filesystem-safe file name for a failure: "<signature>-<seed>.case"
/// with '/' and other separators flattened to '_'.
std::string case_filename(const Scenario& scenario, const CaseResult& result);

/// Signature -> occurrence count across a campaign.
class BucketSet {
public:
  /// Record one occurrence; returns true if this signature is new.
  bool record(const std::string& signature);

  int count(const std::string& signature) const;
  std::size_t size() const { return counts_.size(); }
  const std::map<std::string, int>& counts() const { return counts_; }

  /// "signature xN" lines, sorted by signature.
  std::string summary() const;

private:
  std::map<std::string, int> counts_;
};

}  // namespace llp::fuzz
