#include "fuzz/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace llp::fuzz {

namespace {

// Simplification order for a dimension: aim straight at the floor, then
// binary-search back up. Returns candidates strictly below `value`.
std::vector<int> downward_steps(int value, int floor) {
  std::vector<int> out;
  if (value <= floor) return out;
  out.push_back(floor);
  int mid = (value + floor) / 2;
  if (mid > floor && mid < value) out.push_back(mid);
  if (value - 1 > floor && value - 1 != mid) out.push_back(value - 1);
  return out;
}

class Shrinker {
public:
  Shrinker(const CaseResult& original, const RunCaseOptions& options,
           int max_evaluations)
      : signature_(original.signature()),
        options_(options),
        budget_(max_evaluations) {}

  ShrinkResult run(Scenario best) {
    bool progressed = true;
    while (progressed && budget_ > 0) {
      progressed = false;
      progressed |= drop_fault_specs(best);
      progressed |= reduce_int(best, [](Scenario& s) { return &s.steps; }, 1);
      progressed |= drop_zones(best);
      progressed |= reduce_dims(best);
      progressed |=
          reduce_int(best, [](Scenario& s) { return &s.threads; }, 1);
      progressed |= zero_knobs(best);
    }
    ShrinkResult result;
    result.scenario = best;
    result.signature = signature_;
    result.evaluations = evaluations_;
    result.accepted = accepted_;
    return result;
  }

private:
  /// True iff `candidate` fails with the preserved signature.
  bool keeps_signature(const Scenario& candidate) {
    if (budget_ <= 0) return false;
    --budget_;
    ++evaluations_;
    const CaseResult verdict = run_case(candidate, options_);
    if (verdict.signature() == signature_) {
      ++accepted_;
      return true;
    }
    return false;
  }

  bool drop_fault_specs(Scenario& best) {
    bool progressed = false;
    for (std::size_t i = 0; i < best.fault.specs.size();) {
      if (best.fault.specs.size() <= 1) break;
      Scenario candidate = best;
      candidate.fault.specs.erase(candidate.fault.specs.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      if (keeps_signature(candidate)) {
        best = candidate;
        progressed = true;  // same index now names the next spec
      } else {
        ++i;
      }
    }
    return progressed;
  }

  bool reduce_int(Scenario& best, int* (*field)(Scenario&), int floor) {
    bool progressed = false;
    for (bool moved = true; moved && budget_ > 0;) {
      moved = false;
      for (int value : downward_steps(*field(best), floor)) {
        Scenario candidate = best;
        *field(candidate) = value;
        if (keeps_signature(candidate)) {
          best = candidate;
          progressed = moved = true;
          break;
        }
      }
    }
    return progressed;
  }

  bool drop_zones(Scenario& best) {
    bool progressed = false;
    // Drop from the back so fault-plan regions naming low zone indices
    // stay valid; a candidate that orphans its fault region simply fails
    // the signature check and is discarded.
    while (best.zones.size() > 1 && budget_ > 0) {
      Scenario candidate = best;
      candidate.zones.pop_back();
      if (!keeps_signature(candidate)) break;
      best = candidate;
      progressed = true;
    }
    return progressed;
  }

  bool reduce_dims(Scenario& best) {
    bool progressed = false;
    for (std::size_t z = 0; z < best.zones.size(); ++z) {
      for (int axis = 0; axis < 3; ++axis) {
        for (bool moved = true; moved && budget_ > 0;) {
          moved = false;
          const int current = axis == 0   ? best.zones[z].jmax
                              : axis == 1 ? best.zones[z].kmax
                                          : best.zones[z].lmax;
          for (int value : downward_steps(current, 4)) {
            Scenario candidate = best;
            for (std::size_t i = 0; i < candidate.zones.size(); ++i) {
              if (axis == 0) {
                if (i == z) candidate.zones[i].jmax = value;
              } else if (axis == 1) {
                candidate.zones[i].kmax = value;  // K/L are shared
              } else {
                candidate.zones[i].lmax = value;
              }
            }
            if (keeps_signature(candidate)) {
              best = candidate;
              progressed = moved = true;
              break;
            }
          }
        }
      }
    }
    return progressed;
  }

  bool zero_knobs(Scenario& best) {
    bool progressed = false;
    const auto try_simplify = [&](void (*apply)(Scenario&)) {
      Scenario candidate = best;
      apply(candidate);
      if (candidate.to_line() != best.to_line() &&
          keeps_signature(candidate)) {
        best = candidate;
        progressed = true;
      }
    };
    try_simplify([](Scenario& s) { s.pulse = 0.0; });
    try_simplify([](Scenario& s) {
      s.cfl_growth = 1.0;
      s.cfl_max = 10.0;
    });
    try_simplify([](Scenario& s) { s.max_recoveries = 0; });
    try_simplify([](Scenario& s) { s.ckpt_every = 0; });
    try_simplify([](Scenario& s) { s.bc = BcCombo::kDefault; });
    try_simplify([](Scenario& s) { s.alpha_deg = 0.0; });
    // Cluster knobs: drop the injected worker faults first (a recovery
    // bug may reproduce on the clean cluster), then the cluster entirely
    // (an in-process reproduction beats a multi-process one).
    try_simplify([](Scenario& s) {
      s.kill_worker = s.kill_step = -1;
      s.hang_worker = s.hang_step = -1;
    });
    try_simplify([](Scenario& s) {
      s.workers = 0;
      s.kill_worker = s.kill_step = -1;
      s.hang_worker = s.hang_step = -1;
    });
    return progressed;
  }

  const std::string signature_;
  const RunCaseOptions& options_;
  int budget_;
  int evaluations_ = 0;
  int accepted_ = 0;
};

}  // namespace

ShrinkResult shrink(const Scenario& failing, const CaseResult& original,
                    const RunCaseOptions& options, int max_evaluations) {
  return Shrinker(original, options, max_evaluations).run(failing);
}

}  // namespace llp::fuzz
