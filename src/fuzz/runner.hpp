// Campaign runner: generate -> oracle -> bucket -> shrink -> persist.
//
// A campaign is a pure function of its config: the seed fixes the case
// sequence, each case runs the full oracle stack on its own runtime, and
// each failure is bucketed by signature. The FIRST case of each new
// bucket is delta-debug-shrunk to a minimal repro and saved to the output
// corpus; later hits only bump the bucket count. Seed-corpus files (known
// bads, previous repros) replay before any fresh generation, and a slice
// of the fresh budget mutates them — regression checking and guided
// exploration in one pass.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace llp::fuzz {

struct CampaignConfig {
  std::uint64_t seed = 1;
  int cases = 50;              ///< freshly generated cases
  std::string work_dir;        ///< scratch for per-case checkpoint stores
  std::string out_dir;         ///< where shrunken repros land; "" = discard
  std::vector<std::string> corpus_files;  ///< seed cases to replay first
  bool shrink = true;
  int shrink_budget = 120;     ///< oracle runs per shrink
  bool print_specs = false;    ///< echo every spec line (determinism diffs)
  /// Worker binary for the cluster oracle ("" = fork-only spawn); see
  /// RunCaseOptions::cluster_exe.
  std::string cluster_exe;
  GeneratorConfig generator;
};

struct CampaignStats {
  int cases_run = 0;
  int passed = 0;
  int failed = 0;
  int rejected = 0;
  int crashes = 0;          ///< injected iocrash cases that resumed
  int shrunk = 0;           ///< shrinks performed (first hit per bucket)
  BucketSet buckets;        ///< failure signatures only
  std::vector<std::string> repro_files;  ///< saved shrunken repros

  /// True iff some failure came from a scenario with NO fault plan: the
  /// system misbehaved without being provoked (--strict gates on this).
  bool unprovoked_failure = false;

  std::string summary() const;
};

/// Run a campaign, logging one line per interesting event to `log`.
CampaignStats run_campaign(const CampaignConfig& config, std::ostream& log);

/// Replay one corpus file through the oracle stack; logs the verdict.
CaseResult replay_file(const std::string& path, const RunCaseOptions& options,
                       std::ostream& log);

}  // namespace llp::fuzz
