#include "fuzz/scenario.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::fuzz {

namespace {

// Shortest decimal rendering that parses back to the same double, so the
// spec line is both readable ("cfl=2") and a lossless round-trip ("cfl=
// 0.30000000000000004" when it has to be).
std::string fmt_double(double v) {
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;
}

double parse_double(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw ValidationError(strfmt("scenario: bad %s value '%s'", key.c_str(),
                                 text.c_str()));
  }
  return v;
}

long parse_long(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw ValidationError(strfmt("scenario: bad %s value '%s'", key.c_str(),
                                 text.c_str()));
  }
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    throw ValidationError(strfmt("scenario: bad %s value '%s'", key.c_str(),
                                 text.c_str()));
  }
  return static_cast<std::uint64_t>(v);
}

std::vector<f3d::ZoneDims> parse_zones(const std::string& text) {
  std::vector<f3d::ZoneDims> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    int d[3];
    std::size_t pos = 0;
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t next = item.find('x', pos);
      const bool last = axis == 2;
      if (last != (next == std::string::npos)) {
        throw ValidationError(
            strfmt("scenario: zone dims '%s' are not JxKxL", item.c_str()));
      }
      const std::string part =
          last ? item.substr(pos) : item.substr(pos, next - pos);
      d[axis] = static_cast<int>(parse_long("zones", part));
      pos = next + 1;
    }
    out.push_back(f3d::ZoneDims{d[0], d[1], d[2]});
  }
  if (out.empty()) {
    throw ValidationError("scenario: zones list is empty");
  }
  return out;
}

}  // namespace

const char* to_string(BcCombo bc) {
  switch (bc) {
    case BcCombo::kDefault: return "default";
    case BcCombo::kKminWall: return "kmin_wall";
    case BcCombo::kPeriodic: return "periodic";
  }
  return "default";
}

std::string Scenario::to_line() const {
  std::ostringstream out;
  out << "v1 seed=" << seed << " zones=";
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (i > 0) out << ',';
    out << zones[i].jmax << 'x' << zones[i].kmax << 'x' << zones[i].lmax;
  }
  out << " spacing=" << fmt_double(spacing);
  out << " mach=" << fmt_double(mach);
  out << " alpha=" << fmt_double(alpha_deg);
  out << " bc=" << to_string(bc);
  out << " pulse=" << fmt_double(pulse);
  out << " cfl=" << fmt_double(cfl);
  out << " growth=" << fmt_double(cfl_growth);
  out << " cflmax=" << fmt_double(cfl_max);
  out << " steps=" << steps;
  out << " mode=" << f3d::engine_name(engine);
  out << " threads=" << threads;
  out << " recover=" << max_recoveries;
  out << " mem_ckpt=" << mem_ckpt_every;
  out << " ckpt=" << ckpt_every;
  if (workers > 0) out << " workers=" << workers;
  if (kill_worker >= 0) out << " kill=" << kill_worker << ':' << kill_step;
  if (hang_worker >= 0) out << " hang=" << hang_worker << ':' << hang_step;
  if (!fault.empty()) out << " fault=" << fault.to_string();
  return out.str();
}

Scenario Scenario::parse(const std::string& line) {
  std::stringstream ss(line);
  std::string tok;
  if (!(ss >> tok) || tok != "v1") {
    throw ValidationError("scenario: spec must start with version tag 'v1'");
  }
  Scenario s;
  while (ss >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ValidationError(
          strfmt("scenario: expected key=value, got '%s'", tok.c_str()));
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "seed") {
      s.seed = parse_u64(key, val);
    } else if (key == "zones") {
      s.zones = parse_zones(val);
    } else if (key == "spacing") {
      s.spacing = parse_double(key, val);
    } else if (key == "mach") {
      s.mach = parse_double(key, val);
    } else if (key == "alpha") {
      s.alpha_deg = parse_double(key, val);
    } else if (key == "bc") {
      if (val == "default") {
        s.bc = BcCombo::kDefault;
      } else if (val == "kmin_wall") {
        s.bc = BcCombo::kKminWall;
      } else if (val == "periodic") {
        s.bc = BcCombo::kPeriodic;
      } else {
        throw ValidationError(strfmt("scenario: unknown bc '%s'", val.c_str()));
      }
    } else if (key == "pulse") {
      s.pulse = parse_double(key, val);
    } else if (key == "cfl") {
      s.cfl = parse_double(key, val);
    } else if (key == "growth") {
      s.cfl_growth = parse_double(key, val);
    } else if (key == "cflmax") {
      s.cfl_max = parse_double(key, val);
    } else if (key == "steps") {
      s.steps = static_cast<int>(parse_long(key, val));
    } else if (key == "mode") {
      if (!f3d::parse_engine(val, &s.engine)) {
        throw ValidationError(
            strfmt("scenario: unknown mode '%s' (want %s)", val.c_str(),
                   f3d::engine_names_usage().c_str()));
      }
    } else if (key == "threads") {
      s.threads = static_cast<int>(parse_long(key, val));
    } else if (key == "recover") {
      s.max_recoveries = static_cast<int>(parse_long(key, val));
    } else if (key == "mem_ckpt") {
      s.mem_ckpt_every = static_cast<int>(parse_long(key, val));
    } else if (key == "ckpt") {
      s.ckpt_every = static_cast<int>(parse_long(key, val));
    } else if (key == "workers") {
      s.workers = static_cast<int>(parse_long(key, val));
    } else if (key == "kill" || key == "hang") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos) {
        throw ValidationError(
            strfmt("scenario: %s wants worker:step, got '%s'", key.c_str(),
                   val.c_str()));
      }
      const int worker =
          static_cast<int>(parse_long(key, val.substr(0, colon)));
      const int step =
          static_cast<int>(parse_long(key, val.substr(colon + 1)));
      if (key == "kill") {
        s.kill_worker = worker;
        s.kill_step = step;
      } else {
        s.hang_worker = worker;
        s.hang_step = step;
      }
    } else if (key == "fault") {
      try {
        s.fault = fault::FaultPlan::parse(val);
      } catch (const Error& e) {
        throw ValidationError(strfmt("scenario: bad fault plan: %s", e.what()));
      }
    } else {
      throw ValidationError(
          strfmt("scenario: unknown key '%s'", key.c_str()));
    }
  }
  return s;
}

void Scenario::validate() const {
  if (zones.empty()) throw ValidationError("scenario: no zones");
  if (zones.size() > 8) throw ValidationError("scenario: too many zones (>8)");
  if (steps < 1 || steps > 10000) {
    throw ValidationError("scenario: steps outside [1, 10000]");
  }
  if (threads < 1 || threads > 64) {
    throw ValidationError("scenario: threads outside [1, 64]");
  }
  if (max_recoveries < 0 || mem_ckpt_every < 1 || ckpt_every < 0) {
    throw ValidationError("scenario: negative budget/cadence");
  }
  if (bc == BcCombo::kPeriodic && zones.size() != 1) {
    throw ValidationError("scenario: periodic bc needs exactly one zone");
  }
  if (workers != 0) {
    if (workers < 2 || static_cast<std::size_t>(workers) > zones.size()) {
      throw ValidationError("scenario: workers must be in [2, zone count]");
    }
    if (!fault.empty()) {
      // The cluster oracle compares against the in-process trajectory; an
      // in-process fault plan would rewrite the reference.
      throw ValidationError("scenario: cluster cases keep fault= empty");
    }
    if (cfl_growth != 1.0) {
      // The sharded backend pins the CFL ramp off (the ramp keys on local
      // residuals and would diverge the shards).
      throw ValidationError("scenario: cluster cases need growth=1");
    }
  }
  for (const auto& [worker, step] :
       {std::pair{kill_worker, kill_step}, std::pair{hang_worker, hang_step}}) {
    if (worker < 0) continue;
    if (workers < 2) {
      throw ValidationError("scenario: kill=/hang= need workers >= 2");
    }
    if (worker >= workers || step < 0 || step >= steps) {
      throw ValidationError(
          "scenario: kill=/hang= outside worker/step range");
    }
  }
}

f3d::MultiZoneGrid build_scenario_grid(const Scenario& s) {
  f3d::MultiZoneGrid grid(s.zones, s.spacing);
  f3d::FreeStream fs;
  fs.mach = s.mach;
  fs.alpha_deg = s.alpha_deg;
  grid.set_freestream(fs);
  switch (s.bc) {
    case BcCombo::kDefault:
      break;
    case BcCombo::kKminWall:
      f3d::add_kmin_wall(grid);
      break;
    case BcCombo::kPeriodic:
      f3d::make_periodic(grid);
      break;
  }
  if (s.pulse != 0.0) {
    f3d::add_gaussian_pulse(grid, s.pulse, 2.0);
  }
  return grid;
}

f3d::SolverConfig build_scenario_config(const Scenario& s) {
  f3d::SolverConfig cfg;
  cfg.freestream.mach = s.mach;
  cfg.freestream.alpha_deg = s.alpha_deg;
  cfg.cfl = s.cfl;
  cfg.cfl_growth = s.cfl_growth;
  cfg.cfl_max = s.cfl_max;
  cfg.engine = s.engine;
  cfg.region_prefix = kRegionPrefix;
  cfg.recovery.max_recoveries = s.max_recoveries;
  cfg.recovery.checkpoint_every = s.mem_ckpt_every;
  return cfg;
}

}  // namespace llp::fuzz
