// Scenario: one fuzz case as a single line of text.
//
// The fuzzer explores the cross product the solver actually ships —
// grid shapes x zone counts x boundary combinations x CFL policy x sweep
// engine x thread counts x fault plans x checkpoint cadences — so a case
// must be (a) cheap to generate, (b) trivially diffable, and (c) exactly
// replayable months later. A Scenario is therefore a value type with a
// canonical one-line spec:
//
//   v1 seed=7 zones=7x7x7,9x7x7 spacing=0.1 mach=2 alpha=2 bc=kmin_wall
//      pulse=0.05 cfl=2 growth=1 cflmax=10 steps=8 mode=risc threads=3
//      recover=1 mem_ckpt=4 ckpt=3 fault=throw:fz.z0.rhs:2:1
//
// (one line; wrapped here for the comment). parse(to_line(s)) is the
// identity on every valid scenario, and to_line is byte-deterministic, so
// "same seed => byte-identical case specs" holds for the whole campaign.
// The trailing fault= field is a FaultPlan spec (fault_plan.hpp grammar)
// and is omitted when the plan is empty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "f3d/cases.hpp"
#include "f3d/engine.hpp"
#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"
#include "fault/fault_plan.hpp"

namespace llp::fuzz {

/// Exterior boundary-condition combo applied on top of the zonal defaults.
enum class BcCombo {
  kDefault,   ///< inflow/outflow along J, free stream on K/L faces
  kKminWall,  ///< slip wall on every zone's KMin (compression corner)
  kPeriodic,  ///< all faces periodic (single-zone scenarios only)
};

const char* to_string(BcCombo bc);

/// Region-name namespace every fuzz-built solver uses, so generated fault
/// plans ("throw:fz.z0.rhs:...") and race findings name stable regions.
inline constexpr const char* kRegionPrefix = "fz";

struct Scenario {
  std::uint64_t seed = 1;      ///< per-case seed: fault RNG, pulse placement
  std::vector<f3d::ZoneDims> zones{f3d::ZoneDims{7, 7, 7}};
  double spacing = 0.1;
  double mach = 2.0;
  double alpha_deg = 0.0;
  BcCombo bc = BcCombo::kDefault;
  double pulse = 0.0;          ///< Gaussian pulse amplitude; 0 = none
  double cfl = 2.0;
  double cfl_growth = 1.0;
  double cfl_max = 10.0;
  int steps = 8;
  /// Sweep engine. The spec key stays `mode=` (byte-stable with the
  /// pre-registry grammar); the value is a registry name (engine.hpp).
  f3d::EngineKind engine = f3d::EngineKind::kPencilScalar;
  int threads = 2;
  int max_recoveries = 0;
  int mem_ckpt_every = 4;      ///< in-memory rollback cadence
  int ckpt_every = 0;          ///< durable generation cadence; 0 = no store
  fault::FaultPlan fault;      ///< empty = clean run

  // Cluster knobs (the multi-process sharded backend oracle). workers=0
  // keeps the case in-process only; workers>=2 additionally runs the
  // scenario through run_cluster() and compares residuals. kill/hang
  // inject one worker-scoped fault into a second cluster run that must
  // recover back onto the uninterrupted trajectory.
  int workers = 0;             ///< 0 = no cluster oracle; else >= 2
  int kill_worker = -1;        ///< SIGKILL this worker...
  int kill_step = -1;          ///< ...at this 0-based step
  int hang_worker = -1;        ///< hang this worker's main loop...
  int hang_step = -1;          ///< ...at this 0-based step

  /// Canonical one-line spec (see header comment). Byte-deterministic.
  std::string to_line() const;

  /// Parse the spec grammar; throws llp::ValidationError on malformed
  /// input (unknown key, bad number, bad fault plan). Missing keys keep
  /// their defaults so hand-written minimal specs stay legal.
  static Scenario parse(const std::string& line);

  /// Cheap structural sanity (zone list non-empty, steps/threads positive,
  /// periodic only with one zone). Throws llp::ValidationError. The deep
  /// checks — degenerate dims, non-finite CFL — belong to the Zone/Solver
  /// constructors; the oracle runner exercises those deliberately.
  void validate() const;
};

/// Build the scenario's grid: zones + spacing + free stream + BC combo +
/// optional centered pulse. Throws llp::ValidationError on degenerate
/// geometry (that rejection is itself an oracle-observable outcome).
f3d::MultiZoneGrid build_scenario_grid(const Scenario& s);

/// The SolverConfig a scenario describes (region_prefix = kRegionPrefix).
f3d::SolverConfig build_scenario_config(const Scenario& s);

}  // namespace llp::fuzz
