// The oracle stack: what "this case passed" means.
//
// Every generated scenario is driven, in-process on its own llp::Runtime,
// through four independent correctness oracles, in order:
//
//   1. validation — the protected run must end healthy: recovery budget
//      not exhausted, final residual and every interior cell finite, and
//      a scenario the constructors reject must be rejected with a typed
//      llp::ValidationError (anything else escaping is itself a failure);
//   2. race — the PR 5 dynamic analyzer (AccessLogger) rides the run's
//      observer seam; any loop-carried dependence finding fails the case;
//   3. differential — fault-free cases are re-run under every *other*
//      registered sweep engine (f3d::engines()) and each twin's final
//      solution must agree with the primary's to tight linf tolerance:
//      the paper's central equivalence claim, generalized to N engines.
//      Pairs involving an fma_lanes engine (the SIMD pencil path) compare
//      under simd_diff_tol instead of diff_tol — fused multiply-adds
//      round once where the scalar engines round twice, so parity there
//      is O(eps)-bounded, not bitwise (see simd/pack.hpp's ULP policy);
//   4. restart — cases with a durable checkpoint cadence are resumed from
//      the newest intact generation (after an injected iocrash, that IS
//      the kill-and-resume path) and the resumed timeline must verify its
//      first replay against the sealed manifest and, for runs whose
//      trajectory faults did not perturb, land on the same final solution;
//   5. cluster — scenarios with workers >= 2 run the multi-process sharded
//      backend too: the clean cluster's final residual must match the
//      in-process run to combine tolerance, and when kill=/hang= name a
//      worker-scoped fault, a second cluster run must detect the failure,
//      recover from checkpoint, and land bitwise on the clean cluster's
//      residual trajectory.
//
// A case's verdict is a CaseResult; failures carry a bucket signature
// "oracle/error-type/region" that groups equivalent root causes across
// thousands of cases, and the shrinker preserves exactly that signature.
#pragma once

#include <iosfwd>
#include <string>

#include "fuzz/scenario.hpp"

namespace llp::fuzz {

enum class OracleId {
  kNone,          ///< passed every oracle
  kConstruction,  ///< wrong rejection behaviour while building the case
  kValidation,    ///< unhealthy protected run / non-finite final state
  kRace,          ///< dynamic analyzer finding
  /// Static/dynamic cross-validation: a region the static affine pass
  /// classified DOALL raced dynamically — the STATIC ANALYZER is broken
  /// (its verdict was more permissive than an observed execution). Checked
  /// before kRace: an ordinary race means the case has a bug, this means
  /// the tooling does.
  kStaticCross,
  kDifferential,  ///< two engines' solutions disagree
  kRestart,       ///< resume-from-checkpoint broke parity or failed
  kCluster,       ///< sharded backend diverged or failed to recover
};

const char* to_string(OracleId oracle);

struct CaseResult {
  bool rejected = false;   ///< constructors refused the case (typed, benign)
  OracleId oracle = OracleId::kNone;  ///< first oracle that failed
  std::string error_type;  ///< short stable token ("nan", "race", ...)
  std::string region;      ///< region/zone attribution when known
  std::string detail;      ///< human-readable specifics (not in signature)
  int steps_completed = 0;
  int recoveries = 0;
  bool crashed = false;    ///< an injected iocrash ended the main run

  bool passed() const { return oracle == OracleId::kNone; }

  /// Stable bucket key: "oracle/error-type/region" ("pass", "rejected"
  /// for the benign outcomes). Detail text never enters the signature —
  /// buckets must survive message rewording.
  std::string signature() const;
};

struct RunCaseOptions {
  /// Scratch directory for the case's durable checkpoint store; cleaned
  /// before use. Required when the scenario has ckpt_every > 0.
  std::string work_dir;
  /// Tolerances. Differential matches the solver test's per-step bound;
  /// restart parity matches the restart integration test; cluster_tol
  /// bounds the clean cluster combine against the in-process residual
  /// (the recovery comparison is bitwise, no tolerance).
  double diff_tol = 1e-9;
  /// Differential tolerance when either side of the pair fuses
  /// multiply-adds (EngineInfo::fma_lanes): FMA keeps one rounding where
  /// the scalar reference keeps two, so lane results drift O(eps)
  /// relative per operation — tolerance-bounded, never bitwise.
  double simd_diff_tol = 1e-9;
  double restart_tol = 1e-9;
  double cluster_tol = 1e-9;
  /// Binary accepting "--worker --fd N" for the cluster oracle's workers.
  /// Empty = fork-only spawn (fine in-process; set it under sanitizers,
  /// which dislike fork from a threaded parent).
  std::string cluster_exe;
};

/// Drive one scenario through the full oracle stack. Never throws for
/// case-shaped outcomes (bad scenarios, injected faults, corrupt
/// checkpoints all come back as verdicts); only infrastructure errors
/// (e.g. an unwritable work_dir) propagate.
CaseResult run_case(const Scenario& scenario, const RunCaseOptions& options);

/// One-line verdict for logs: "FAIL validation/nan/fz.z0.rhs (detail)".
std::string describe(const CaseResult& result);

}  // namespace llp::fuzz
