#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace llp::fuzz {

namespace {

int pick_int(SplitMix64& rng, int lo, int hi) {
  return lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                 hi - lo + 1)));
}

// Round to two decimals so spec lines stay short; the round-trip is still
// exact because fmt_double renders whatever double this lands on.
double pick_round(SplitMix64& rng, double lo, double hi) {
  return std::round(rng.uniform(lo, hi) * 100.0) / 100.0;
}

const char* kKernels[] = {"rhs", "sweep_j", "sweep_k", "sweep_l", "update"};

}  // namespace

Generator::Generator(std::uint64_t seed, GeneratorConfig config)
    : config_(config), rng_(seed ^ 0xf022edULL) {}

Scenario Generator::next() {
  // Each case gets its own sub-chain so a change in how one case is drawn
  // (e.g. a hostile branch consuming extra draws) cannot shift every case
  // after it — the sequence stays diffable across fuzzer versions.
  SplitMix64 sub(rng_.next());
  return random_scenario(sub);
}

Scenario Generator::random_scenario(SplitMix64& rng) const {
  Scenario s;
  s.seed = rng.next() >> 1;  // keep it printable as u64 decimal

  const int zones = pick_int(rng, 1, std::max(1, config_.max_zones));
  const int kmax = pick_int(rng, config_.min_dim, config_.max_dim);
  const int lmax = pick_int(rng, config_.min_dim, config_.max_dim);
  s.zones.clear();
  for (int z = 0; z < zones; ++z) {
    // Zones stack along J and must share K/L (the exchange contract).
    s.zones.push_back(f3d::ZoneDims{
        pick_int(rng, config_.min_dim, config_.max_dim), kmax, lmax});
  }

  s.spacing = pick_round(rng, 0.05, 0.5);
  s.mach = pick_round(rng, 0.5, 2.5);
  s.alpha_deg = pick_round(rng, -3.0, 3.0);

  const std::uint64_t bc = rng.below(4);
  if (bc == 0 && zones == 1) {
    s.bc = BcCombo::kPeriodic;
    s.alpha_deg = 0.0;  // periodic boxes convect along the axis
  } else if (bc == 1) {
    s.bc = BcCombo::kKminWall;
  } else {
    s.bc = BcCombo::kDefault;
  }

  s.pulse = rng.below(2) == 0 ? 0.0 : pick_round(rng, 0.01, 0.15);
  s.cfl = pick_round(rng, 0.5, 3.0);
  if (rng.below(4) == 0) {
    s.cfl_growth = pick_round(rng, 1.01, 1.2);
    s.cfl_max = pick_round(rng, s.cfl + 1.0, s.cfl + 8.0);
  }
  s.steps = pick_int(rng, 3, std::max(3, config_.max_steps));
  // Engine draw: half the population on the default pencil engine, the
  // other half split across the rest of the registry so every engine
  // (including future additions) keeps fuzz coverage.
  if (rng.below(2) == 0) {
    s.engine = f3d::EngineKind::kPencilScalar;
  } else {
    const auto reg = f3d::engines();
    s.engine = reg[static_cast<std::size_t>(rng.below(reg.size()))].kind;
  }
  s.threads = pick_int(rng, 1, std::max(1, config_.max_threads));
  s.mem_ckpt_every = pick_int(rng, 1, 5);
  s.ckpt_every = rng.below(2) == 0 ? 0 : pick_int(rng, 1, 4);

  if (config_.allow_faults && rng.below(5) >= 2) {
    s.fault = random_fault_plan(rng, s);
    // Usually give the recovery budget a chance; sometimes starve it so
    // exhausted-budget failures stay in the tested population.
    const int nfaults = static_cast<int>(s.fault.specs.size());
    s.max_recoveries =
        rng.below(10) < 7 ? nfaults + pick_int(rng, 0, 2) : 0;
  } else if (rng.below(4) == 0) {
    s.max_recoveries = pick_int(rng, 1, 2);
  }

  // Cluster knobs: a clean multi-zone case with the CFL ramp off can run
  // the sharded backend too — sometimes uninterrupted, sometimes with one
  // worker killed or hung mid-run to exercise detection and recovery.
  if (config_.allow_cluster && s.fault.empty() && s.cfl_growth == 1.0 &&
      s.zones.size() >= 2 && rng.below(6) == 0) {
    s.workers = pick_int(rng, 2, static_cast<int>(s.zones.size()));
    const std::uint64_t which = rng.below(4);  // 0 = clean cluster only
    if (which == 1 || which == 3) {
      s.kill_worker = pick_int(rng, 0, s.workers - 1);
      s.kill_step = pick_int(rng, 1, s.steps - 1);
    }
    if (which == 2 || which == 3) {
      s.hang_worker = pick_int(rng, 0, s.workers - 1);
      s.hang_step = pick_int(rng, 1, s.steps - 1);
    }
  }

  if (config_.allow_hostile && rng.below(12) == 0) {
    make_hostile(s, rng);
  }
  return s;
}

void Generator::make_hostile(Scenario& s, SplitMix64& rng) const {
  // Degenerate inputs the construction path must reject with a typed
  // ValidationError. Keep them representable in the spec grammar (finite
  // text) so the case still round-trips through the corpus.
  switch (rng.below(5)) {
    case 0:  // dim below the stencil floor
      s.zones[rng.below(s.zones.size())].kmax = pick_int(rng, 0, 3);
      break;
    case 1:  // zero/negative extent
      s.zones[rng.below(s.zones.size())].jmax = -pick_int(rng, 0, 2);
      break;
    case 2:  // extent large enough to overflow the padded product
      s.zones[rng.below(s.zones.size())].lmax =
          std::numeric_limits<int>::max() - pick_int(rng, 0, 7);
      break;
    case 3:  // non-positive CFL
      s.cfl = rng.below(2) == 0 ? 0.0 : -1.0;
      break;
    case 4:  // degenerate spacing
      s.spacing = 0.0;
      break;
  }
}

fault::FaultPlan Generator::random_fault_plan(SplitMix64& rng,
                                              const Scenario& s) const {
  fault::FaultPlan plan;
  plan.seed = rng.next();
  const bool has_ckpt = s.ckpt_every > 0;
  const int nspecs = pick_int(rng, 1, 2);
  for (int i = 0; i < nspecs; ++i) {
    fault::FaultSpec spec;
    // 'hang' is deliberately absent: it leaks the lane by design, which an
    // in-process campaign running thousands of cases cannot afford.
    const std::uint64_t kind = rng.below(has_ckpt ? 7 : 3);
    const int zone = pick_int(rng, 0, static_cast<int>(s.zones.size()) - 1);
    switch (kind) {
      case 0:
        spec.kind = fault::FaultKind::kThrow;
        break;
      case 1:
        spec.kind = fault::FaultKind::kNan;
        spec.array = "q" + std::to_string(zone);
        break;
      case 2:
        spec.kind = fault::FaultKind::kDelay;
        spec.delay_ms = static_cast<double>(pick_int(rng, 1, 4));
        break;
      case 3:
        spec.kind = fault::FaultKind::kIoShort;
        break;
      case 4:
        spec.kind = fault::FaultKind::kIoFlip;
        if (rng.below(2) == 0) spec.bit = pick_int(rng, 0, 255);
        break;
      case 5:
        spec.kind = fault::FaultKind::kIoEnospc;
        break;
      case 6:
        spec.kind = fault::FaultKind::kIoCrash;
        break;
    }
    if (fault::is_io_kind(spec.kind)) {
      spec.region = "ckpt";
      // Write-op index within the run's durable timeline; frame 0 is the
      // header, 1..Z the zone payloads.
      spec.invocation =
          static_cast<std::uint64_t>(pick_int(rng, 0, 2));
      spec.lane = pick_int(rng, 0, static_cast<int>(s.zones.size()));
    } else {
      spec.region = std::string(kRegionPrefix) + ".z" + std::to_string(zone) +
                    "." + kKernels[rng.below(5)];
      spec.invocation =
          static_cast<std::uint64_t>(pick_int(rng, 0, s.steps - 1));
      if (rng.below(4) == 0) {
        spec.any_lane = true;
      } else {
        spec.lane = pick_int(rng, 0, s.threads - 1);
      }
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

Scenario Generator::mutate(const Scenario& base, std::uint64_t mseed) const {
  SplitMix64 rng(mseed ^ 0x307a7eULL);
  Scenario s = base;
  s.seed = rng.next() >> 1;
  switch (rng.below(8)) {
    case 0:  // cycle to the next registered sweep engine
      s.engine = f3d::engines()[(static_cast<std::size_t>(s.engine) + 1) %
                                static_cast<std::size_t>(f3d::kNumEngines)]
                     .kind;
      break;
    case 1:  // nudge one dimension
      if (!s.zones.empty()) {
        f3d::ZoneDims& z = s.zones[rng.below(s.zones.size())];
        int* dims[3] = {&z.jmax, &z.kmax, &z.lmax};
        int& d = *dims[rng.below(3)];
        d = std::max(config_.min_dim,
                     d + (rng.below(2) == 0 ? 1 : -1) * pick_int(rng, 1, 3));
        if (&d != &z.jmax) {
          // K/L must stay shared across zones.
          for (auto& other : s.zones) {
            other.kmax = z.kmax;
            other.lmax = z.lmax;
          }
        }
      }
      break;
    case 2:  // change thread count
      s.threads = pick_int(rng, 1, std::max(1, config_.max_threads));
      break;
    case 3:  // change CFL
      s.cfl = pick_round(rng, 0.5, 3.0);
      break;
    case 4:  // toggle the durable store / change its cadence
      s.ckpt_every = s.ckpt_every == 0 ? pick_int(rng, 1, 4) : 0;
      break;
    case 5:  // drop one fault spec
      if (!s.fault.specs.empty()) {
        s.fault.specs.erase(s.fault.specs.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.below(s.fault.specs.size())));
      }
      break;
    case 6:  // fresh fault plan for the (possibly fault-free) base
      if (config_.allow_faults) {
        s.fault = random_fault_plan(rng, s);
        s.max_recoveries = static_cast<int>(s.fault.specs.size());
      }
      break;
    case 7:  // change the step count
      s.steps = pick_int(rng, 3, std::max(3, config_.max_steps));
      break;
  }
  return s;
}

}  // namespace llp::fuzz
