// Seeded scenario generator and mutator.
//
// All randomness flows from one SplitMix64 chain keyed by the campaign
// seed, and nothing consults the clock or the environment, so a campaign
// is a pure function of (seed, case count): same seed => byte-identical
// case specs, in the same order, with the same oracle verdicts.
//
// The distribution is tuned for an in-process oracle stack:
//   * dims stay small (the point is coverage of shapes, not FLOPs);
//   * ~1 case in 12 is "hostile" — degenerate dims, non-finite CFL,
//     zero spacing — generated on purpose to prove the construction path
//     rejects them with a typed error instead of corrupting memory;
//   * fault plans never contain 'hang' (an in-process fuzzer cannot
//     afford leaked lanes) and keep delays to a few milliseconds;
//   * when loop faults are present the recovery budget usually (not
//     always) covers them, so both recovered and exhausted outcomes occur.
#pragma once

#include <cstdint>

#include "fuzz/scenario.hpp"
#include "util/rng.hpp"

namespace llp::fuzz {

struct GeneratorConfig {
  int max_zones = 3;
  int min_dim = 4;            ///< = f3d::kMinZoneDim: solver's stencil floor
  int max_dim = 12;
  int max_steps = 12;
  int max_threads = 4;
  bool allow_faults = true;   ///< emit fault plans at all
  bool allow_hostile = true;  ///< emit deliberately-degenerate cases
  /// Emit workers=/kill=/hang= knobs on eligible clean multi-zone cases,
  /// sending them through the multi-process cluster oracle as well. Low
  /// probability: each cluster case forks real worker processes.
  bool allow_cluster = true;
};

class Generator {
public:
  explicit Generator(std::uint64_t seed, GeneratorConfig config = {});

  /// The next scenario in the deterministic sequence.
  Scenario next();

  /// A deterministic small perturbation of `base` (one knob turned:
  /// engine flipped, a dim nudged, a fault spec added or dropped, the
  /// checkpoint cadence changed). Derives all choices from `mseed`, not
  /// from this generator's chain, so corpus mutation does not desync the
  /// fresh-case sequence.
  Scenario mutate(const Scenario& base, std::uint64_t mseed) const;

  const GeneratorConfig& config() const { return config_; }

private:
  Scenario random_scenario(SplitMix64& rng) const;
  void make_hostile(Scenario& s, SplitMix64& rng) const;
  fault::FaultPlan random_fault_plan(SplitMix64& rng,
                                     const Scenario& s) const;

  GeneratorConfig config_;
  SplitMix64 rng_;
};

}  // namespace llp::fuzz
