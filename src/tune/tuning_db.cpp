#include "tune/tuning_db.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "tune/candidates.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::tune {

namespace {

// Split a line into exactly `n` tab-separated fields; false on mismatch.
bool split_tabs(std::string_view line, std::string_view* fields,
                std::size_t n) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t tab = line.find('\t', start);
    const bool last = i + 1 == n;
    if (last != (tab == std::string_view::npos)) return false;
    fields[i] = last ? line.substr(start) : line.substr(start, tab - start);
    start = tab + 1;
  }
  return true;
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  if (s.empty()) return false;
  char buf[32];
  if (s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(std::string_view s, double* out) {
  if (s.empty()) return false;
  char buf[64];
  if (s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool TuningDb::lookup(const std::string& key, TunedEntry* out) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void TuningDb::put(const std::string& key, const TunedEntry& entry) {
  LLP_REQUIRE(key.find('\t') == std::string::npos &&
                  key.find('\n') == std::string::npos,
              "key must not contain tabs or newlines");
  entries_[key] = entry;
}

bool TuningDb::erase(const std::string& key) {
  return entries_.erase(key) > 0;
}

void TuningDb::clear() { entries_.clear(); }

std::vector<std::pair<std::string, TunedEntry>> TuningDb::entries() const {
  return {entries_.begin(), entries_.end()};
}

std::string TuningDb::to_text() const {
  std::string out =
      "# llp_tune v1 — tuned loop configurations\n"
      "# key\tschedule\tchunk\tthreads\tseconds\ttrials[\tengine]\n";
  for (const auto& [key, e] : entries_) {
    out += strfmt("%s\t%.*s\t%lld\t%d\t%.9e\t%llu", key.c_str(),
                  static_cast<int>(schedule_name(e.config.schedule).size()),
                  schedule_name(e.config.schedule).data(),
                  static_cast<long long>(e.config.chunk),
                  e.config.num_threads, e.seconds,
                  static_cast<unsigned long long>(e.trials));
    // The engine field is appended only when set, keeping pre-engine
    // entries byte-identical with what v1 always wrote.
    if (!e.engine.empty()) {
      out += '\t';
      out += e.engine;
    }
    out += '\n';
  }
  return out;
}

bool TuningDb::parse_text(std::string_view text, std::string* error) {
  std::size_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const std::size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{}
                                        : text.substr(nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    std::string_view f[7];
    TunedEntry e;
    std::int64_t threads = 0, trials = 0;
    // 6 fields is the historical line; 7 adds the optional engine column.
    const bool seven = split_tabs(line, f, 7);
    if (seven && !f[6].empty()) e.engine.assign(f[6]);
    const bool ok = (seven || split_tabs(line, f, 6)) && !f[0].empty() &&
                    (!seven || !f[6].empty()) &&
                    parse_schedule(f[1], &e.config.schedule) &&
                    parse_i64(f[2], &e.config.chunk) && e.config.chunk >= 1 &&
                    parse_i64(f[3], &threads) && threads >= 1 &&
                    parse_f64(f[4], &e.seconds) && e.seconds >= 0.0 &&
                    parse_i64(f[5], &trials) && trials >= 0;
    if (!ok) {
      if (error != nullptr) {
        *error = strfmt("line %zu: malformed tuning entry", lineno);
      }
      return false;
    }
    e.config.num_threads = static_cast<int>(threads);
    e.trials = static_cast<std::uint64_t>(trials);
    entries_[std::string(f[0])] = e;
  }
  return true;
}

bool TuningDb::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_text(buf.str(), error);
}

void TuningDb::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  LLP_REQUIRE(static_cast<bool>(out), "cannot write tuning DB: " + path);
  out << to_text();
  out.flush();
  LLP_REQUIRE(static_cast<bool>(out), "short write to tuning DB: " + path);
}

}  // namespace llp::tune
