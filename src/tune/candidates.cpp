#include "tune/candidates.hpp"

#include <algorithm>
#include <thread>

#include "model/sync_cost.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::tune {

std::string_view schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kStaticBlock: return "static_block";
    case Schedule::kStaticChunked: return "static_chunked";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "static_block";
}

bool parse_schedule(std::string_view name, Schedule* out) {
  LLP_REQUIRE(out != nullptr, "null output");
  if (name == "static_block") *out = Schedule::kStaticBlock;
  else if (name == "static_chunked") *out = Schedule::kStaticChunked;
  else if (name == "dynamic") *out = Schedule::kDynamic;
  else if (name == "guided") *out = Schedule::kGuided;
  else return false;
  return true;
}

int trip_bucket(std::int64_t trips) {
  int b = 0;
  while (trips > 1) {
    trips >>= 1;
    ++b;
  }
  return b;
}

std::string machine_fingerprint(int max_threads) {
  return strfmt("hc%u-p%d", std::thread::hardware_concurrency(), max_threads);
}

std::string make_key(std::string_view region_name, std::int64_t trips,
                     std::string_view fingerprint) {
  std::string name(region_name);
  for (char& c : name) {
    if (c == '\t' || c == '\n' || c == '\r' || c == '|') c = '_';
  }
  return strfmt("%s|b%d|%.*s", name.c_str(), trip_bucket(trips),
                static_cast<int>(fingerprint.size()), fingerprint.data());
}

std::vector<LoopConfig> candidate_configs(std::int64_t trips,
                                          int max_threads) {
  LLP_REQUIRE(trips >= 0, "negative trip count");
  LLP_REQUIRE(max_threads >= 1, "max_threads must be >= 1");
  const int cap = static_cast<int>(
      std::min<std::int64_t>(max_threads, std::max<std::int64_t>(1, trips)));

  std::vector<LoopConfig> out;
  if (cap < 2) {
    out.push_back({Schedule::kStaticBlock, 1, 1});
    return out;
  }

  // Static block across the power-of-two thread ladder; the full lane
  // count first — that is the hand-picked default being competed against.
  out.push_back({Schedule::kStaticBlock, 1, cap});
  for (int nt = 2; nt < cap; nt *= 2) {
    out.push_back({Schedule::kStaticBlock, 1, nt});
  }

  // Load-balancing schedules at the full lane count, chunk bounded so no
  // lane is starved of whole chunks.
  const std::int64_t cmax = std::max<std::int64_t>(1, trips / cap);
  for (std::int64_t chunk : {std::int64_t{2}, std::int64_t{8}}) {
    if (chunk <= cmax) out.push_back({Schedule::kStaticChunked, chunk, cap});
  }
  for (std::int64_t chunk : {std::int64_t{1}, std::int64_t{4}}) {
    if (chunk <= cmax) out.push_back({Schedule::kDynamic, chunk, cap});
  }
  out.push_back({Schedule::kGuided, 1, cap});
  return out;
}

std::vector<LoopConfig> prune_by_sync_cost(
    std::vector<LoopConfig> candidates, double serial_seconds,
    const llp::model::MachineConfig& machine, double overhead_target) {
  LLP_REQUIRE(overhead_target > 0.0 && overhead_target <= 1.0,
              "overhead_target must be in (0,1]");
  if (serial_seconds <= 0.0) return candidates;
  const auto work_cycles = static_cast<std::int64_t>(
      std::max(1.0, serial_seconds * machine.clock_hz));
  std::vector<LoopConfig> kept;
  for (const LoopConfig& c : candidates) {
    const int p = std::max(1, c.num_threads);
    const double overhead = llp::model::sync_overhead_fraction(
        work_cycles, p, static_cast<std::int64_t>(machine.sync_cycles(p)));
    if (p == 1 || overhead <= overhead_target) kept.push_back(c);
  }
  if (kept.empty()) {
    // Table 2 verdict: too little work per sync event — run it serially.
    kept.push_back({Schedule::kStaticBlock, 1, 1});
  }
  return kept;
}

}  // namespace llp::tune
