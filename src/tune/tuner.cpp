#include "tune/tuner.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>

#include "analyze/static/registry.hpp"
#include "core/runtime.hpp"
#include "tune/candidates.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace llp::tune {

namespace {

// Host-scale constants for the pruning model: a modern core and a
// microsecond-class fork-join, versus the paper's 300 MHz / 15 us-plus
// machines. Only the *ratio* of sync cost to measured work matters here.
llp::model::MachineConfig host_tuning_machine() {
  llp::model::MachineConfig m;
  m.name = "host-tuning";
  m.clock_hz = 1e9;
  m.sync_base_ns = 2000.0;
  m.sync_ns_per_proc = 200.0;
  return m;
}

bool is_static(Schedule s) {
  return s == Schedule::kStaticBlock || s == Schedule::kStaticChunked;
}

}  // namespace

Tuner::Tuner(TunerOptions opts) : opts_(std::move(opts)) {
  LLP_REQUIRE(opts_.epsilon >= 0.0 && opts_.epsilon <= 1.0,
              "epsilon must be in [0,1]");
  LLP_REQUIRE(opts_.warmup_trials >= 1, "warmup_trials must be >= 1");
  LLP_REQUIRE(opts_.halving_trials >= 1, "halving_trials must be >= 1");
  if (opts_.machine.name.empty()) opts_.machine = host_tuning_machine();
}

Tuner::State& Tuner::state_for(RegionId region, std::int64_t trips) {
  const auto key = std::make_pair(region, trip_bucket(trips));
  auto it = states_.find(key);
  if (it != states_.end()) return it->second;

  State s;
  const int max_threads =
      opts_.max_threads > 0 ? opts_.max_threads : llp::num_threads();
  const std::string name = llp::regions().stats(region).name;
  s.key = make_key(name, trips, machine_fingerprint(max_threads));
  s.rng = SplitMix64(opts_.seed ^ std::hash<std::string>{}(s.key));

  if (opts_.respect_static_legality &&
      !analyze::static_legality(name, trips).parallel_ok()) {
    // The declared affine signature classifies DOACROSS/SERIAL: every
    // multi-thread schedule x chunk x threads candidate is statically
    // illegal. Collapse to the one legal config without sampling — and
    // without consulting or writing the DB (legality is a property of the
    // code, not a measurement; a stale tuned entry must not override it).
    Arm serial;
    serial.config = {Schedule::kStaticBlock, 1, 1};
    s.arms.push_back(serial);
    s.converged = true;
    s.committed = serial.config;
    return states_.emplace(key, std::move(s)).first->second;
  }

  TunedEntry cached;
  if (db_.lookup(s.key, &cached)) {
    // A persisted decision short-circuits the search entirely: identical
    // decisions across save -> load is the DB's contract.
    Arm arm;
    arm.config = cached.config;
    arm.trials = cached.trials;
    arm.total_seconds = cached.seconds * static_cast<double>(cached.trials);
    arm.best_seconds = cached.seconds;
    s.arms.push_back(arm);
    s.converged = true;
    s.committed = cached.config;
  } else {
    for (const LoopConfig& c : candidate_configs(trips, max_threads)) {
      Arm arm;
      arm.config = c;
      s.arms.push_back(arm);
    }
  }
  return states_.emplace(key, std::move(s)).first->second;
}

std::size_t Tuner::best_arm(const State& s) const {
  std::size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  bool any_measured = false;
  for (std::size_t i = 0; i < s.arms.size(); ++i) {
    const Arm& a = s.arms[i];
    if (a.trials == 0) continue;
    any_measured = true;
    if (a.mean() < best_mean) {
      best_mean = a.mean();
      best = i;
    }
  }
  if (any_measured) return best;
  for (std::size_t i = 0; i < s.arms.size(); ++i) {
    if (s.arms[i].active) return i;
  }
  return 0;
}

std::size_t Tuner::pick_exploration(State& s) const {
  // Least-tried active arm; the measured imbalance steers ties. When the
  // static candidates show real skew (busiest lane well above the mean),
  // the load-balancing schedules are the ones worth the next trial — the
  // same reasoning a human applies to RegionStats::imbalance().
  double static_imbalance = 0.0;
  for (const Arm& a : s.arms) {
    if (a.trials > 0 && is_static(a.config.schedule)) {
      static_imbalance = std::max(static_imbalance, a.last_imbalance);
    }
  }
  const bool prefer_dynamic = static_imbalance > opts_.imbalance_threshold;

  std::uint64_t least = std::numeric_limits<std::uint64_t>::max();
  for (const Arm& a : s.arms) {
    if (a.active) least = std::min(least, a.trials);
  }
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < s.arms.size(); ++i) {
    if (s.arms[i].active && s.arms[i].trials == least) ties.push_back(i);
  }
  if (ties.empty()) return best_arm(s);
  if (prefer_dynamic) {
    for (std::size_t i : ties) {
      if (!is_static(s.arms[i].config.schedule)) return i;
    }
  }
  return ties[s.rng.below(ties.size())];
}

void Tuner::commit(State& s) {
  const std::size_t b = best_arm(s);
  s.converged = true;
  s.committed = s.arms[b].config;
  TunedEntry e;
  e.config = s.arms[b].config;
  e.seconds = s.arms[b].trials > 0 ? s.arms[b].mean() : 0.0;
  e.trials = s.total_trials;
  db_.put(s.key, e);
}

void Tuner::maybe_prune(State& s, const Arm& measured) {
  if (s.pruned || !opts_.prune_with_table1) return;
  s.pruned = true;
  // One measurement at p threads bounds the serial work by seconds * p
  // (perfect scaling); that is exactly what Table 1 needs.
  const double serial_seconds =
      measured.mean() * std::max(1, measured.config.num_threads);
  std::vector<LoopConfig> kept;
  for (const Arm& a : s.arms) kept.push_back(a.config);
  kept = prune_by_sync_cost(std::move(kept), serial_seconds, opts_.machine,
                            opts_.overhead_target);
  for (Arm& a : s.arms) {
    a.active = std::find(kept.begin(), kept.end(), a.config) != kept.end();
  }
  if (std::none_of(s.arms.begin(), s.arms.end(),
                   [](const Arm& a) { return a.active; })) {
    // Everything sync-dominated: the Table 2 "keep it serial" verdict.
    Arm serial;
    serial.config = {Schedule::kStaticBlock, 1, 1};
    s.arms.push_back(serial);
  }
}

LoopConfig Tuner::choose(RegionId region, std::int64_t trips) {
  std::lock_guard<std::mutex> lock(mu_);
  State& s = state_for(region, trips);
  if (s.converged) return s.committed;

  if (opts_.policy == Policy::kSuccessiveHalving) {
    for (;;) {
      const auto target = static_cast<std::uint64_t>(opts_.halving_trials) *
                          static_cast<std::uint64_t>(s.round + 1);
      for (Arm& a : s.arms) {
        if (a.active && a.trials < target) return a.config;
      }
      // Round complete: cull the worse half by mean time.
      std::vector<std::size_t> active;
      for (std::size_t i = 0; i < s.arms.size(); ++i) {
        if (s.arms[i].active) active.push_back(i);
      }
      if (active.size() <= 1) {
        commit(s);
        return s.committed;
      }
      std::stable_sort(active.begin(), active.end(),
                       [&](std::size_t x, std::size_t y) {
                         return s.arms[x].mean() < s.arms[y].mean();
                       });
      const std::size_t keep = (active.size() + 1) / 2;
      for (std::size_t r = keep; r < active.size(); ++r) {
        s.arms[active[r]].active = false;
      }
      ++s.round;
      if (keep == 1) {
        commit(s);
        return s.committed;
      }
    }
  }

  // Epsilon-greedy. Warm-up: every active arm gets its baseline trials.
  for (const Arm& a : s.arms) {
    if (a.active && a.trials < static_cast<std::uint64_t>(opts_.warmup_trials))
      return s.arms[pick_exploration(s)].config;
  }
  if (s.rng.uniform() < opts_.epsilon) {
    return s.arms[pick_exploration(s)].config;
  }
  return s.arms[best_arm(s)].config;
}

void Tuner::report(RegionId region, std::int64_t trips,
                   const LoopConfig& used, double seconds, double imbalance,
                   bool sample_valid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sample_valid) {
    // Faulted / cancelled / watchdogged invocation: the wall time is not a
    // property of the configuration. Count it and drop it — the arm simply
    // gets its trial on a later, clean invocation.
    ++invalid_samples_;
    return;
  }
  State& s = state_for(region, trips);
  Arm* arm = nullptr;
  for (Arm& a : s.arms) {
    if (a.config == used) {
      arm = &a;
      break;
    }
  }
  if (arm == nullptr) return;  // a clamped or foreign config; not a candidate
  ++arm->trials;
  arm->total_seconds += std::max(0.0, seconds);
  arm->best_seconds = std::min(arm->best_seconds, std::max(0.0, seconds));
  if (imbalance > 0.0) arm->last_imbalance = imbalance;
  ++s.total_trials;
  if (s.converged) return;

  maybe_prune(s, *arm);

  if (opts_.policy == Policy::kEpsilonGreedy) {
    std::uint64_t active = 0;
    for (const Arm& a : s.arms) active += a.active ? 1 : 0;
    const std::uint64_t warmup =
        static_cast<std::uint64_t>(opts_.warmup_trials) * active;
    const std::uint64_t settle =
        opts_.settle_trials > 0 ? static_cast<std::uint64_t>(opts_.settle_trials)
                                : 2 * active;
    if (s.total_trials >= warmup + settle) commit(s);
  }
}

bool Tuner::converged(RegionId region, std::int64_t trips) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(std::make_pair(region, trip_bucket(trips)));
  return it != states_.end() && it->second.converged;
}

LoopConfig Tuner::best(RegionId region, std::int64_t trips) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(std::make_pair(region, trip_bucket(trips)));
  if (it == states_.end()) return {};
  const State& s = it->second;
  return s.converged ? s.committed : s.arms[best_arm(s)].config;
}

double Tuner::best_seconds(RegionId region, std::int64_t trips) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(std::make_pair(region, trip_bucket(trips)));
  if (it == states_.end()) return std::numeric_limits<double>::infinity();
  const State& s = it->second;
  const Arm& a = s.arms[best_arm(s)];
  return a.trials > 0 ? a.mean() : std::numeric_limits<double>::infinity();
}

std::uint64_t Tuner::invalid_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalid_samples_;
}

std::uint64_t Tuner::trials(RegionId region, std::int64_t trips) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(std::make_pair(region, trip_bucket(trips)));
  return it == states_.end() ? 0 : it->second.total_trials;
}

std::vector<LoopConfig> Tuner::active_candidates(RegionId region,
                                                 std::int64_t trips) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(std::make_pair(region, trip_bucket(trips)));
  std::vector<LoopConfig> out;
  if (it == states_.end()) return out;
  for (const Arm& a : it->second.arms) {
    if (a.active) out.push_back(a.config);
  }
  return out;
}

bool Tuner::load_db(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return db_.load(path);
}

void Tuner::save_db(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  db_.save(path);
}

namespace {
std::unique_ptr<Tuner> g_tuner;
std::string g_db_path;
}  // namespace

Tuner* global_tuner() { return g_tuner.get(); }

bool init_from_env() {
  const bool requested = env::get_flag("LLP_TUNE");
  auto& rt = Runtime::instance();
  if (!requested) {
    return rt.auto_tune_enabled() && rt.tuner() != nullptr;
  }
  if (g_tuner == nullptr) {
    g_tuner = std::make_unique<Tuner>();
    g_db_path = env::get_string("LLP_TUNE_DB", ".llp_tune");
    g_tuner->load_db(g_db_path);  // absent file is fine: cold start
    rt.set_tuner(g_tuner.get());
    rt.set_auto_tune_enabled(true);
    std::atexit([] {
      if (g_tuner != nullptr) {
        try {
          g_tuner->save_db(g_db_path);
        } catch (...) {
          // Exit path: an unwritable DB must not turn into std::terminate.
        }
      }
    });
  }
  return true;
}

}  // namespace llp::tune
