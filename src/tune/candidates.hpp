// Candidate configurations and keys for the per-region autotuner.
//
// The search space a tuned loop explores is {schedule} x {chunk} x
// {num_threads}; exhaustively that is hundreds of points, so the tuner
// works over a pruned ladder: static block across power-of-two thread
// counts (the paper's C$doacross default, usually right for the solver's
// uniform sweeps), plus chunked/dynamic/guided variants at the full lane
// count for skewed loops. Pruning reuses the Table 1 criterion exactly as
// perf::advise does: a thread count whose predicted sync overhead exceeds
// the efficiency budget is dropped before a single trial is spent on it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/tuner_hook.hpp"
#include "model/machine.hpp"

namespace llp::tune {

/// Stable text name of a schedule ("static_block", "static_chunked",
/// "dynamic", "guided") — the on-disk spelling in the tuning DB.
std::string_view schedule_name(Schedule s);

/// Inverse of schedule_name; returns false (and leaves *out alone) for an
/// unknown name.
bool parse_schedule(std::string_view name, Schedule* out);

/// Log2 bucket of a trip count (0 for trips <= 1). Decisions generalize
/// across nearby trip counts (n=96 vs n=100: same bucket, same tuned
/// config) but not across scales (n=96 vs n=4096).
int trip_bucket(std::int64_t trips);

/// Fingerprint of the machine + runtime configuration the measurements
/// were taken on; tuned configs are only reused on a matching fingerprint.
std::string machine_fingerprint(int max_threads);

/// DB key for (region name, trip bucket, machine fingerprint). Characters
/// that would break the line-oriented text DB (tabs, newlines, '|') are
/// sanitized to '_'.
std::string make_key(std::string_view region_name, std::int64_t trips,
                     std::string_view fingerprint);

/// The pruned candidate set for a loop of `trips` iterations on at most
/// `max_threads` lanes. Deterministic; never empty; the first entry is the
/// C$doacross-style default the paper would hand-pick.
std::vector<LoopConfig> candidate_configs(std::int64_t trips,
                                          int max_threads);

/// Table 1 pruning (the seed rule of perf::advise): given the loop's
/// estimated serial work in seconds, drop candidates whose thread count
/// would spend more than `overhead_target` of the loop on synchronization
/// on `machine`. Always keeps at least one candidate (falling back to a
/// single-thread config when nothing survives — the "keep it serial"
/// verdict of Table 2).
std::vector<LoopConfig> prune_by_sync_cost(
    std::vector<LoopConfig> candidates, double serial_seconds,
    const llp::model::MachineConfig& machine, double overhead_target = 0.01);

}  // namespace llp::tune
