// Online per-region autotuner: closes the paper's measure -> decide ->
// configure loop.
//
// The paper's authors ran F3D, read the prof output, applied the Table 1/2
// cost-benefit rules, picked an outer loop and a schedule, and re-measured
// — by hand, for every loop. Tuner automates that judgment: it attaches to
// RegionIds and, over successive invocations of the same region, searches
// the {schedule} x {chunk} x {num_threads} space using the measured wall
// time and lane imbalance that parallel_for already records. The candidate
// set is pruned up front by the same Table 1 sync-cost threshold that
// perf::advise applies, so no trials are wasted on thread counts the paper
// would have rejected on paper.
//
// Two search policies:
//   * kEpsilonGreedy — online default: a warm-up pass over every candidate,
//     then mostly-exploit with occasional exploration (steered toward
//     dynamic/guided schedules when the measured imbalance of the static
//     candidates is high), committing after a bounded settle period.
//   * kSuccessiveHalving — for benches and tuning sessions: rounds of
//     trials with the worse half of the candidates culled each round;
//     converges in at most 2 * trials_per_round * |candidates| invocations.
//
// Converged decisions are committed to a TuningDb keyed by (region name,
// trip bucket, machine fingerprint), so tuned configs persist across runs:
// a loaded entry short-circuits the search entirely (save -> load ->
// identical decisions).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/tuner_hook.hpp"
#include "model/machine.hpp"
#include "tune/tuning_db.hpp"
#include "util/rng.hpp"

namespace llp::tune {

enum class Policy {
  kEpsilonGreedy,      ///< online: explore with probability epsilon
  kSuccessiveHalving,  ///< offline/bench: cull half the field each round
};

struct TunerOptions {
  Policy policy = Policy::kEpsilonGreedy;
  double epsilon = 0.2;     ///< exploration probability after warm-up
  int warmup_trials = 2;    ///< trials per candidate before exploitation
  int halving_trials = 2;   ///< trials per candidate per halving round
  int settle_trials = 0;    ///< eps-greedy trials after warm-up before the
                            ///< decision is committed; 0 = 2 * |candidates|
  std::uint64_t seed = 0x5eedc0def00dULL;  ///< deterministic exploration
  int max_threads = 0;      ///< candidate thread cap; 0 = runtime lane count
  bool prune_with_table1 = true;  ///< drop sync-dominated thread counts

  /// Consult the static dependence analyzer (analyze/static/) before
  /// building a candidate set: a region whose declared affine signature
  /// classifies DOACROSS/SERIAL is statically illegal to run multi-
  /// threaded, so its search collapses to the single serial config — no
  /// runtime samples are spent discovering what the GCD/Banerjee tests
  /// already proved. Regions with no declared signature are unaffected.
  bool respect_static_legality = true;

  /// Sync-overhead budget for pruning. Deliberately looser than Table 1's
  /// 1% efficiency bar: pruning is a coarse pre-filter (the search still
  /// measures everything it keeps), and the strict bar would veto every
  /// sub-millisecond loop before a single trial.
  double overhead_target = 0.2;

  /// Machine constants for the sync-cost model behind pruning. Leave the
  /// name empty to use host-scale constants (GHz clock, microsecond
  /// fork-join) instead of the paper's 1999 machines.
  llp::model::MachineConfig machine{};
  double imbalance_threshold = 1.25; ///< steer exploration off static when
                                     ///< measured imbalance exceeds this
};

class Tuner final : public llp::LoopTuner {
public:
  explicit Tuner(TunerOptions opts = {});

  // LoopTuner interface (thread-safe). Invalid samples (sample_valid ==
  // false: the invocation threw, was cancelled, tripped the watchdog, or
  // had a fault injected) are counted but discarded — faulted timings never
  // steer the search or reach the TuningDb.
  LoopConfig choose(RegionId region, std::int64_t trips) override;
  void report(RegionId region, std::int64_t trips, const LoopConfig& used,
              double seconds, double imbalance, bool sample_valid) override;

  /// Has the (region, trip-bucket) search committed to a configuration?
  bool converged(RegionId region, std::int64_t trips) const;

  /// Current best configuration (the committed one once converged; the
  /// best-measured-so-far before that; the untried default before any
  /// measurement).
  LoopConfig best(RegionId region, std::int64_t trips) const;

  /// Best measured mean seconds so far (+inf before any measurement).
  double best_seconds(RegionId region, std::int64_t trips) const;

  /// Total invocations reported for the (region, trip-bucket) search.
  std::uint64_t trials(RegionId region, std::int64_t trips) const;

  /// Reported samples discarded as invalid (faulted/cancelled invocations),
  /// across all regions.
  std::uint64_t invalid_samples() const;

  /// Candidates still in play (post-pruning / halving culls).
  std::vector<LoopConfig> active_candidates(RegionId region,
                                            std::int64_t trips) const;

  /// The DB decisions are committed into. load_db merges (and future
  /// choose() calls on matching keys use the loaded decisions verbatim);
  /// save_db persists everything committed so far.
  bool load_db(const std::string& path);
  void save_db(const std::string& path) const;
  TuningDb& db() { return db_; }
  const TuningDb& db() const { return db_; }

  const TunerOptions& options() const { return opts_; }

private:
  struct Arm {
    LoopConfig config;
    bool active = true;
    std::uint64_t trials = 0;
    double total_seconds = 0.0;
    double best_seconds = std::numeric_limits<double>::infinity();
    double last_imbalance = 0.0;
    double mean() const {
      return trials == 0 ? std::numeric_limits<double>::infinity()
                         : total_seconds / static_cast<double>(trials);
    }
  };

  struct State {
    std::string key;
    std::vector<Arm> arms;
    std::uint64_t total_trials = 0;
    bool pruned = false;
    bool converged = false;
    LoopConfig committed;
    int round = 0;  // successive-halving round index
    SplitMix64 rng{0};
  };

  State& state_for(RegionId region, std::int64_t trips);
  std::size_t best_arm(const State& s) const;
  std::size_t pick_exploration(State& s) const;
  void commit(State& s);
  void maybe_prune(State& s, const Arm& measured);

  mutable std::mutex mu_;
  TunerOptions opts_;
  TuningDb db_;
  std::map<std::pair<RegionId, int>, State> states_;
  std::uint64_t invalid_samples_ = 0;
};

/// When LLP_TUNE=1 (or any non-zero value): create the process-global
/// Tuner, merge the DB at $LLP_TUNE_DB (default ".llp_tune"), install it
/// into the Runtime, enable auto-tuned loops, and register an at-exit save
/// of the DB. Idempotent; cheap when LLP_TUNE is unset. Returns whether
/// auto-tuning is active afterwards.
bool init_from_env();

/// The process-global tuner installed by init_from_env (nullptr before).
Tuner* global_tuner();

}  // namespace llp::tune
