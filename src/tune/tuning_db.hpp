// On-disk cache of tuned loop configurations.
//
// Once a region has converged, re-running the search on the next program
// launch would waste the very invocations it optimizes; the DB persists
// decisions across runs (and ships with reproducible benches). The format
// is deliberately human-readable, line-oriented text — no new dependencies,
// diffable, hand-editable:
//
//   # llp_tune v1
//   z0.rhs|b6|hc8-p8<TAB>dynamic<TAB>4<TAB>8<TAB>1.25e-03<TAB>24
//
// One entry per line: key, schedule, chunk, threads, best mean seconds,
// trials behind the decision — plus an optional 7th field naming the sweep
// engine when the entry records an engine-axis decision (f3d::engine_name
// spellings). Entries without an engine serialize exactly as before the
// 7th field existed, so pre-engine DBs round-trip byte-identically and old
// readers only ever see lines they understand. Keys come from
// tune::make_key — (region name, trip-count bucket, machine fingerprint) —
// so a config is only reused for the loop shape and machine it was
// measured on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tuner_hook.hpp"

namespace llp::tune {

/// A committed tuning decision.
struct TunedEntry {
  LoopConfig config;
  double seconds = 0.0;      ///< best measured mean wall time per invocation
  std::uint64_t trials = 0;  ///< invocations the decision is based on
  /// Sweep-engine axis: the winning f3d::engine_name for engine-selection
  /// entries; empty for plain loop entries (and for every entry written
  /// before the axis existed).
  std::string engine;
};

class TuningDb {
public:
  /// Copy the entry for `key` into *out; false if absent.
  bool lookup(const std::string& key, TunedEntry* out) const;

  /// Insert or overwrite.
  void put(const std::string& key, const TunedEntry& entry);

  /// Remove one entry; false if absent.
  bool erase(const std::string& key);

  void clear();
  std::size_t size() const { return entries_.size(); }

  /// All entries in key order.
  std::vector<std::pair<std::string, TunedEntry>> entries() const;

  /// Serialize to the text format above.
  std::string to_text() const;

  /// Merge entries parsed from `text`. Comment ('#') and blank lines are
  /// skipped; a malformed line aborts the parse, reports via *error (if
  /// given), and leaves already-merged lines in place. Returns success.
  bool parse_text(std::string_view text, std::string* error = nullptr);

  /// Merge from a file; false if the file cannot be read or parsed.
  bool load(const std::string& path, std::string* error = nullptr);

  /// Write the whole DB to a file; throws llp::Error on I/O failure.
  void save(const std::string& path) const;

private:
  std::map<std::string, TunedEntry> entries_;
};

}  // namespace llp::tune
