// In-process message passing (paper §8, Behr's SHMEM/MPI port of F3D).
//
// The paper's related work implemented loop-level parallelism with
// explicit message passing because the target machines (T3D/T3E, IBM SP)
// had no hardware-coherent shared memory. It "worked and produced a
// credible level of performance, [but] was significantly more difficult
// to implement". This module provides a faithful miniature of that
// programming model — ranks, two-sided send/recv, barriers, reductions,
// halo exchange — running ranks as threads in one process so the contrast
// in programming effort and synchronization structure can be demonstrated
// and tested without an MPI installation.
//
// Semantics (deliberately MPI-like):
//   * send(dest, tag, data) is buffered and non-blocking: the payload is
//     copied into the destination mailbox;
//   * recv(src, tag, out) blocks until a matching message arrives;
//     messages from the same (src, tag) arrive in send order; the payload
//     must match the receive buffer's size exactly;
//   * barrier() blocks until every rank arrives;
//   * allreduce_sum combines a double across ranks (deterministic order).
//
// Per-rank traffic statistics feed the cost comparison against fork-join
// synchronization.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace llp::msg {

class World;
class Communicator;

/// Aggregate traffic over one run().
struct WorldStats {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t barriers_per_rank = 0;
};

/// Run fn on `ranks` threads, each with its own Communicator. Blocks until
/// all ranks return; the first exception thrown by any rank is rethrown.
/// A rank that throws is marked dead: other ranks blocked in recv on it
/// (with no matching message already delivered) or in a barrier it will
/// never reach are woken with llp::Error instead of deadlocking, and the
/// dying rank's original exception wins the first-error race.
WorldStats run(int ranks, const std::function<void(Communicator&)>& fn);

/// A rank's handle to the communication world.
class Communicator {
public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered, non-blocking send of `data` to `dest` with `tag`.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocking receive of exactly out.size() doubles from (src, tag).
  void recv(int src, int tag, std::span<double> out);

  /// send + recv in one call, safe against pairwise exchange deadlock
  /// (send is buffered, so ordering does not matter — this is sugar).
  void sendrecv(int dest, int send_tag, std::span<const double> send_data,
                int src, int recv_tag, std::span<double> recv_data);

  /// Block until every rank has entered the barrier.
  void barrier();

  /// Sum of x across ranks, returned to all (combined in rank order).
  double allreduce_sum(double x);

  /// Messages and payload bytes this rank has sent.
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  /// Barriers (including those inside allreduce) this rank has entered.
  std::uint64_t barriers() const noexcept { return barriers_; }

private:
  friend class World;
  friend WorldStats run(int ranks,
                        const std::function<void(Communicator&)>& fn);
  Communicator(World& world, int rank) : world_(world), rank_(rank) {}

  World& world_;
  int rank_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t barriers_ = 0;
};

}  // namespace llp::msg
