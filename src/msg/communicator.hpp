// The transport abstraction: one Communicator concept, two rails.
//
// The halo-exchange choreography (pack interface planes, send to the J
// neighbors, receive theirs, unpack into ghosts) is identical whether the
// ranks are threads in one process (message_passing.hpp) or supervised
// worker processes on a socket (src/cluster). This concept names the
// operations that choreography needs, so f3d::halo_exchange_step is written
// once against it and both rails reuse it — the in-process Communicator
// satisfies it as-is, and the cluster worker's channel satisfies it by
// framing each send as one CRC32C frame (msg/frame.hpp).
//
// Semantics required of a model:
//   * send(dest, tag, data) delivers a copy; it must not block against the
//     matching recv (buffered, or relayed by a third party);
//   * recv(src, tag, out) blocks until the matching message arrives and
//     fills exactly out.size() doubles; messages from one (src, tag) are
//     delivered in send order;
//   * rank()/size() describe the topology: ranks 0..size()-1, where this
//     rank exchanges halos with rank±1.
#pragma once

#include <concepts>
#include <span>

namespace llp::msg {

template <typename C>
concept HaloCommunicator = requires(C& c, int peer, int tag,
                                    std::span<const double> out_data,
                                    std::span<double> in_data) {
  { c.rank() } -> std::convertible_to<int>;
  { c.size() } -> std::convertible_to<int>;
  c.send(peer, tag, out_data);
  c.recv(peer, tag, in_data);
};

}  // namespace llp::msg
