// CRC32C-framed binary messages over byte streams: the socket rails.
//
// The in-process rails (message_passing.hpp) run ranks as threads and move
// std::vector payloads between mailboxes; a multi-process backend needs the
// same messages to survive a kernel byte stream, where writes tear, reads
// arrive short, and a SIGKILLed peer leaves half a message behind. One
// frame is
//
//   u32  magic   "LLPF"
//   u32  type    message discriminator (the cluster protocol's enum)
//   u64  a       first routing/tag word (e.g. step index)
//   u64  b       second routing/tag word (e.g. packed src/dest/side)
//   u32  len     payload byte count
//   u32  hcrc    CRC32C of the 28 header bytes above
//   [len bytes of payload]
//   u32  pcrc    CRC32C of the payload
//
// — length-prefixed and CRC-guarded exactly like the src/ckpt generation
// frames, so a torn or bit-flipped message fails validation instead of
// desynchronizing the stream. Blocking read/write (worker side) loop via
// util/io.hpp; the incremental FrameParser feeds a nonblocking poll loop
// (coordinator side) one recv at a time.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace llp::msg {

/// Frame magic ("LLPF" little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x46504c4cu;

/// Hard cap on one frame's payload; a length field above this is treated
/// as stream corruption, not an allocation request.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Serialized frame header size in bytes (magic..hcrc).
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 8 + 4 + 4;

struct Frame {
  std::uint32_t type = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize `f` into wire bytes (header + payload + payload CRC).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Blocking read of exactly one frame. Returns false on a clean EOF at a
/// frame boundary (the peer finished and closed). Throws llp::IoError on
/// EOF mid-frame, a read error, bad magic, an implausible length, or a CRC
/// mismatch — a stream that does any of these cannot be resynchronized.
bool read_frame(int fd, Frame* out);

/// Blocking write of one frame via send(2) with SIGPIPE suppressed.
/// Throws llp::IoError when the peer is gone or the write fails.
void write_frame(int fd, const Frame& f);

/// Incremental frame parser for nonblocking readers: feed() whatever bytes
/// recv returned, then drain next() until it returns false. Corruption
/// (bad magic, implausible length, CRC mismatch) throws llp::IoError from
/// next(); the caller treats the peer as dead.
class FrameParser {
public:
  void feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Parse one complete frame out of the buffer if available.
  bool next(Frame* out);

  /// Bytes buffered but not yet consumed (a nonzero value at EOF means the
  /// peer died mid-frame).
  std::size_t pending_bytes() const noexcept { return buf_.size(); }

private:
  std::vector<std::uint8_t> buf_;
};

// ---- payload serialization -------------------------------------------
//
// Flat little-endian append/read helpers for building frame payloads (the
// cluster protocol's structs). Reads are bounds-checked and throw
// llp::IoError on truncation, mirroring the checkpoint Cursor.

class ByteWriter {
public:
  std::vector<std::uint8_t>& bytes() noexcept { return out_; }
  const std::vector<std::uint8_t>& bytes() const noexcept { return out_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(out_); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }

  void put_doubles(std::span<const double> v) {
    put<std::uint64_t>(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    out_.insert(out_.end(), p, p + v.size() * sizeof(double));
  }

private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  T get(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T), what);
    T v;
    std::memcpy(&v, data_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  std::string get_string(const char* what);
  std::vector<double> get_doubles(const char* what);

  std::size_t remaining() const noexcept { return data_.size() - off_; }

private:
  void require(std::size_t n, const char* what) const;

  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
};

}  // namespace llp::msg
