#include "msg/message_passing.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace llp::msg {

namespace {
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<double> payload;
};
}  // namespace

class World {
public:
  explicit World(int ranks) : ranks_(ranks), mailboxes_(ranks) {
    LLP_REQUIRE(ranks >= 1, "need at least one rank");
    reduce_values_.assign(static_cast<std::size_t>(ranks), 0.0);
    dead_.assign(static_cast<std::size_t>(ranks), false);
  }

  int size() const noexcept { return ranks_; }

  // A rank's thread threw: mark it dead and wake every blocked wait so the
  // other ranks observe the death instead of deadlocking. Without this, a
  // recv posted against the dead rank (or a barrier it will never reach)
  // blocks forever and run()'s join never completes.
  void mark_dead(int rank) {
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      dead_[static_cast<std::size_t>(rank)] = true;
      any_dead_.store(true, std::memory_order_release);
    }
    barrier_cv_.notify_all();
    for (Mailbox& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
  }

  bool is_dead(int rank) {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    return dead_[static_cast<std::size_t>(rank)];
  }

  void deliver(int src, int dest, int tag, std::span<const double> data) {
    LLP_REQUIRE(dest >= 0 && dest < ranks_, "bad destination rank");
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(
          Message{src, tag, std::vector<double>(data.begin(), data.end())});
    }
    box.cv.notify_all();
  }

  void receive(int me, int src, int tag, std::span<double> out) {
    LLP_REQUIRE(src >= 0 && src < ranks_, "bad source rank");
    Mailbox& box = mailboxes_[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.mu);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          LLP_REQUIRE(it->payload.size() == out.size(),
                      "receive size mismatch");
          std::copy(it->payload.begin(), it->payload.end(), out.begin());
          box.queue.erase(it);
          return;
        }
      }
      // Messages already delivered by a now-dead rank are still consumable
      // (checked above); only an unmatched recv against a dead source is
      // hopeless.
      if (any_dead_.load(std::memory_order_acquire) && is_dead(src)) {
        throw llp::Error("recv from dead rank " + std::to_string(src) +
                         " (it threw before sending tag " +
                         std::to_string(tag) + ")");
      }
      box.cv.wait(lock);
    }
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mu_);
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_count_ == ranks_) {
      barrier_count_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [this, gen] {
        return barrier_generation_ != gen ||
               any_dead_.load(std::memory_order_acquire);
      });
      if (barrier_generation_ == gen) {
        // Woken by a death, not a release: this barrier can never complete.
        --barrier_count_;
        throw llp::Error("barrier abandoned: a rank died before arriving");
      }
    }
  }

  double allreduce_sum(int rank, double x) {
    reduce_values_[static_cast<std::size_t>(rank)] = x;
    barrier();  // all contributions visible
    double sum = 0.0;
    for (double v : reduce_values_) sum += v;  // deterministic rank order
    barrier();  // nobody overwrites until everyone has read
    return sum;
  }

private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  const int ranks_;
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Death bookkeeping: flags guarded by barrier_mu_, plus a lock-free
  // summary so the receive fast path pays one relaxed load, not a lock.
  std::vector<char> dead_;
  std::atomic<bool> any_dead_{false};

  std::vector<double> reduce_values_;
};

int Communicator::size() const noexcept { return world_.size(); }

void Communicator::send(int dest, int tag, std::span<const double> data) {
  world_.deliver(rank_, dest, tag, data);
  ++messages_sent_;
  bytes_sent_ += data.size() * sizeof(double);
}

void Communicator::recv(int src, int tag, std::span<double> out) {
  world_.receive(rank_, src, tag, out);
}

void Communicator::sendrecv(int dest, int send_tag,
                            std::span<const double> send_data, int src,
                            int recv_tag, std::span<double> recv_data) {
  send(dest, send_tag, send_data);
  recv(src, recv_tag, recv_data);
}

void Communicator::barrier() {
  world_.barrier();
  ++barriers_;
}

double Communicator::allreduce_sum(double x) {
  const double sum = world_.allreduce_sum(rank_, x);
  barriers_ += 2;  // the two internal barriers
  return sum;
}

WorldStats run(int ranks, const std::function<void(Communicator&)>& fn) {
  World world(ranks);
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    comms.push_back(Communicator(world, r));
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&, r] {
        try {
          fn(comms[static_cast<std::size_t>(r)]);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Record the error before announcing the death: ranks woken into
          // "dead rank" errors must lose the first-error race to the
          // original cause.
          world.mark_dead(r);
        }
      });
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  WorldStats stats;
  for (const auto& c : comms) {
    stats.total_messages += c.messages_sent();
    stats.total_bytes += c.bytes_sent();
    stats.barriers_per_rank = c.barriers();  // equal across ranks
  }
  return stats;
}

}  // namespace llp::msg
