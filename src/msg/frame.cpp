#include "msg/frame.hpp"

#include <cstring>

#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/io.hpp"

namespace llp::msg {

namespace {

template <typename T>
void append_raw(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_raw(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

// Validate a header already known to span kFrameHeaderBytes; fills type/a/b
// and returns the payload length. Throws on bad magic, implausible length,
// or header CRC mismatch.
std::uint32_t parse_header(const std::uint8_t* h, Frame* out) {
  if (read_raw<std::uint32_t>(h) != kFrameMagic) {
    throw IoError("frame magic mismatch (stream desynchronized)");
  }
  const std::uint32_t hcrc = read_raw<std::uint32_t>(h + 28);
  if (crc32c(h, 28) != hcrc) {
    throw IoError("frame header CRC mismatch");
  }
  out->type = read_raw<std::uint32_t>(h + 4);
  out->a = read_raw<std::uint64_t>(h + 8);
  out->b = read_raw<std::uint64_t>(h + 16);
  const std::uint32_t len = read_raw<std::uint32_t>(h + 24);
  if (len > kMaxFramePayload) {
    throw IoError(strfmt("implausible frame payload length %u", len));
  }
  return len;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  LLP_REQUIRE(f.payload.size() <= kMaxFramePayload, "frame payload too large");
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + f.payload.size() + 4);
  append_raw<std::uint32_t>(out, kFrameMagic);
  append_raw<std::uint32_t>(out, f.type);
  append_raw<std::uint64_t>(out, f.a);
  append_raw<std::uint64_t>(out, f.b);
  append_raw<std::uint32_t>(out, static_cast<std::uint32_t>(f.payload.size()));
  append_raw<std::uint32_t>(out, crc32c(out.data(), 28));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  append_raw<std::uint32_t>(out, crc32c(f.payload.data(), f.payload.size()));
  return out;
}

bool read_frame(int fd, Frame* out) {
  std::uint8_t header[kFrameHeaderBytes];
  io::IoResult r = io::read_exact(fd, header, sizeof(header));
  if (r.clean_eof()) return false;
  if (r.status == io::IoStatus::kEof) {
    throw IoError(strfmt("peer closed mid-frame (%zu of %zu header bytes)",
                         r.transferred, sizeof(header)));
  }
  if (!r.ok()) {
    throw IoError(std::string("frame read failed: ") +
                  std::strerror(r.error));
  }
  const std::uint32_t len = parse_header(header, out);
  out->payload.resize(len);
  std::uint8_t tail[4];
  r = io::read_exact(fd, out->payload.data(), len);
  if (r.ok()) r = io::read_exact(fd, tail, sizeof(tail));
  if (r.status == io::IoStatus::kEof) {
    throw IoError("peer closed mid-frame (truncated payload)");
  }
  if (!r.ok()) {
    throw IoError(std::string("frame read failed: ") +
                  std::strerror(r.error));
  }
  if (read_raw<std::uint32_t>(tail) !=
      crc32c(out->payload.data(), out->payload.size())) {
    throw IoError("frame payload CRC mismatch");
  }
  return true;
}

void write_frame(int fd, const Frame& f) {
  const std::vector<std::uint8_t> wire = encode_frame(f);
  const io::IoResult r = io::send_exact(fd, wire.data(), wire.size());
  if (r.status == io::IoStatus::kEof) {
    throw IoError("peer disconnected mid-frame write");
  }
  if (!r.ok()) {
    throw IoError(std::string("frame write failed: ") +
                  std::strerror(r.error));
  }
}

bool FrameParser::next(Frame* out) {
  if (buf_.size() < kFrameHeaderBytes) return false;
  const std::uint32_t len = parse_header(buf_.data(), out);
  const std::size_t total = kFrameHeaderBytes + len + 4;
  if (buf_.size() < total) return false;
  out->payload.assign(buf_.begin() + kFrameHeaderBytes,
                      buf_.begin() + kFrameHeaderBytes + len);
  const std::uint32_t pcrc =
      read_raw<std::uint32_t>(buf_.data() + kFrameHeaderBytes + len);
  if (pcrc != crc32c(out->payload.data(), out->payload.size())) {
    throw IoError("frame payload CRC mismatch");
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

std::string ByteReader::get_string(const char* what) {
  const auto len = get<std::uint32_t>(what);
  require(len, what);
  std::string s(reinterpret_cast<const char*>(data_.data() + off_), len);
  off_ += len;
  return s;
}

std::vector<double> ByteReader::get_doubles(const char* what) {
  const auto count = get<std::uint64_t>(what);
  if (count > (std::uint64_t{1} << 27)) {
    throw IoError(std::string("implausible double-array length in ") + what);
  }
  require(count * sizeof(double), what);
  std::vector<double> v(count);
  std::memcpy(v.data(), data_.data() + off_, count * sizeof(double));
  off_ += count * sizeof(double);
  return v;
}

void ByteReader::require(std::size_t n, const char* what) const {
  if (data_.size() - off_ < n) {
    throw IoError(std::string("truncated ") + what);
  }
}

}  // namespace llp::msg
