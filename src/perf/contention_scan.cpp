#include "perf/contention_scan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace llp::perf {

double region_cpu_seconds(const llp::RegionStats& r, int processors) {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  if (r.kind == llp::RegionKind::kSerial || !r.parallel_enabled) {
    return r.seconds;  // one lane working
  }
  if (r.lane_mean_seconds > 0.0) {
    // Lane timing available: mean lane time x lanes is actual CPU time.
    return r.lane_mean_seconds * processors;
  }
  return r.seconds * processors;  // conservative: all lanes busy for wall
}

std::vector<ContentionSuspect> contention_scan(
    const std::vector<ScalingProfile>& profiles, double growth_threshold) {
  LLP_REQUIRE(profiles.size() >= 2, "need profiles at >= 2 processor counts");
  LLP_REQUIRE(growth_threshold > 1.0, "growth_threshold must exceed 1");

  auto lo = std::min_element(
      profiles.begin(), profiles.end(),
      [](const auto& a, const auto& b) { return a.processors < b.processors; });
  auto hi = std::max_element(
      profiles.begin(), profiles.end(),
      [](const auto& a, const auto& b) { return a.processors < b.processors; });
  LLP_REQUIRE(lo->processors < hi->processors,
              "profiles must span distinct processor counts");

  std::vector<ContentionSuspect> out;
  for (const auto& base : lo->regions) {
    const auto match = std::find_if(
        hi->regions.begin(), hi->regions.end(),
        [&](const llp::RegionStats& r) { return r.name == base.name; });
    if (match == hi->regions.end()) continue;
    const double cpu_lo = region_cpu_seconds(base, lo->processors);
    const double cpu_hi = region_cpu_seconds(*match, hi->processors);
    if (cpu_lo <= 0.0) continue;
    const double growth = cpu_hi / cpu_lo;
    if (growth >= growth_threshold) {
      ContentionSuspect s;
      s.region = base.name;
      s.cpu_time_growth = growth;
      s.wall_speedup =
          match->seconds > 0.0 ? base.seconds / match->seconds : 0.0;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ContentionSuspect& a, const ContentionSuspect& b) {
              return a.cpu_time_growth > b.cpu_time_growth;
            });
  return out;
}

}  // namespace llp::perf
