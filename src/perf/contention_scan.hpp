// Contention detection from fixed-size scaling profiles (paper §7).
//
// "The best way to identify the problem now is to profile fixed size runs
// with varying numbers of processors and look for subroutines that are
// consuming additional CPU cycles as the number of processors increases.
// [If] the number of cache misses is remaining relatively constant ...
// then one almost certainly has a problem with contention."
//
// contention_scan takes per-processor-count profiles of the same
// fixed-size run and flags regions whose total CPU time (wall time summed
// across the lanes actually working, approximated as busiest-lane time x
// processors when lane data exists, else wall x processors) grows with the
// processor count instead of staying flat.
#pragma once

#include <string>
#include <vector>

#include "core/region.hpp"

namespace llp::perf {

/// One fixed-size run's profile at a given processor count.
struct ScalingProfile {
  int processors = 1;
  std::vector<llp::RegionStats> regions;
};

struct ContentionSuspect {
  std::string region;
  double cpu_time_growth = 0.0;  ///< CPU-seconds at max procs / at min procs
  double wall_speedup = 0.0;     ///< wall at min procs / wall at max procs
};

/// Estimated CPU seconds consumed by a region in one profile.
double region_cpu_seconds(const llp::RegionStats& r, int processors);

/// Flag regions whose CPU time grows by more than `growth_threshold`
/// between the smallest and largest processor count. Requires >= 2
/// profiles with distinct processor counts; regions must appear (by name)
/// in the first profile to be considered. Results sorted by descending
/// growth.
std::vector<ContentionSuspect> contention_scan(
    const std::vector<ScalingProfile>& profiles,
    double growth_threshold = 1.5);

}  // namespace llp::perf
