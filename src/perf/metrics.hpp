// Performance metrics in the paper's reporting units.
//
// The paper argues (§5) for "time steps/hour" over speedup — it lets a user
// estimate run time directly and does not reward slow serial baselines — and
// reports delivered MFLOPS alongside so both parallel *and* serial
// efficiency are visible. These helpers keep every bench on those units.
#pragma once

#include <string>

namespace llp::perf {

/// Time steps per hour from seconds per step.
double time_steps_per_hour(double seconds_per_step);

/// Delivered MFLOPS.
double mflops(double flops, double seconds);

/// Parallel efficiency: speedup / processors.
double parallel_efficiency(double t1_seconds, double tp_seconds,
                           int processors);

/// Render like the paper's Table 4 MFLOPS column: "3.64E3".
std::string eformat(double value);

}  // namespace llp::perf
