// Parallelization advisor: the paper's §3-§4 decision rules as code.
//
// Given a measured serial profile and a target machine, recommend for each
// candidate loop whether the fork-join is worth it:
//
//   * Table 1: the loop's work per invocation must exceed
//     min_work_for_efficiency(p, sync_cycles(p)) or the sync overhead
//     exceeds the 1% budget — the reason boundary-condition loops stay
//     serial;
//   * Table 3: a trip count far below the processor count wastes most of
//     the machine in the stair-step (flagged, not vetoed: the loop may
//     still be worth parallelizing at fewer processors).
//
// This automates the judgment the authors made by hand from prof output —
// "we needed to know which loops were expensive enough to justify being
// parallelized (both in terms of the effort and additional overhead)" (§6).
#pragma once

#include <string>
#include <vector>

#include "core/region.hpp"
#include "model/machine.hpp"

namespace llp::perf {

struct Advice {
  std::string region;
  bool parallelize = false;
  double work_cycles = 0.0;      ///< per invocation, on the target machine
  double min_work_cycles = 0.0;  ///< Table 1 threshold at p
  double overhead_fraction = 0.0;///< predicted sync share if parallelized
  double trips = 0.0;            ///< available parallelism
  std::string reason;
};

/// Evaluate every parallel-loop region with recorded work. Regions of kind
/// kSerial are reported with parallelize=false and a Table 2 rationale.
/// Sorted by descending work.
std::vector<Advice> advise(const std::vector<llp::RegionStats>& profile,
                           const llp::model::MachineConfig& machine,
                           int processors, double overhead_target = 0.01);

/// Render the advice as a table.
std::string format_advice(const std::vector<Advice>& advice);

}  // namespace llp::perf
