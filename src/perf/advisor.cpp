#include "perf/advisor.hpp"

#include <algorithm>

#include "model/sync_cost.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace llp::perf {

std::vector<Advice> advise(const std::vector<llp::RegionStats>& profile,
                           const llp::model::MachineConfig& machine,
                           int processors, double overhead_target) {
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  LLP_REQUIRE(overhead_target > 0.0 && overhead_target <= 1.0,
              "overhead_target must be in (0,1]");

  const double sync_cycles = machine.sync_cycles(processors);
  const auto min_work = static_cast<double>(
      llp::model::min_work_for_efficiency(
          processors, static_cast<std::int64_t>(sync_cycles),
          overhead_target));

  std::vector<Advice> out;
  for (const auto& r : profile) {
    if (r.invocations == 0 || r.flops <= 0.0) continue;
    Advice a;
    a.region = r.name;
    a.trips = r.mean_trips();
    // Per-invocation work on the target machine, in its cycles.
    const double flops_per_inv =
        r.flops / static_cast<double>(r.invocations);
    a.work_cycles = flops_per_inv / (machine.sustained_mflops_per_proc * 1e6) *
                    machine.clock_hz;
    a.min_work_cycles = min_work;
    a.overhead_fraction = llp::model::sync_overhead_fraction(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(a.work_cycles)),
        processors, static_cast<std::int64_t>(sync_cycles));

    if (r.kind == llp::RegionKind::kSerial) {
      a.parallelize = false;
      a.reason = "serial region (boundary-condition class): too little work "
                 "per sync event (Table 2)";
    } else if (a.work_cycles < min_work) {
      a.parallelize = false;
      a.reason = strfmt("work below Table 1 threshold: sync would cost "
                        "%.1f%% of the loop",
                        100.0 * a.overhead_fraction);
    } else if (a.trips >= 1.0 && a.trips < processors) {
      a.parallelize = true;
      a.reason = strfmt("worth it, but only %.0f units of parallelism for "
                        "%d processors (stair-step: ceil ratio %.0f)",
                        a.trips, processors,
                        a.trips > 0 ? static_cast<double>(processors) / a.trips
                                    : 0.0);
    } else {
      a.parallelize = true;
      a.reason = "clear win: ample work and parallelism";
    }
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(), [](const Advice& x, const Advice& y) {
    return x.work_cycles > y.work_cycles;
  });
  return out;
}

std::string format_advice(const std::vector<Advice>& advice) {
  llp::Table t({"region", "verdict", "work cyc/inv", "threshold", "trips",
                "reason"});
  for (const auto& a : advice) {
    t.add_row({a.region, a.parallelize ? "PARALLELIZE" : "keep serial",
               llp::with_commas(static_cast<long long>(a.work_cycles)),
               llp::with_commas(static_cast<long long>(a.min_work_cycles)),
               llp::strfmt("%.0f", a.trips), a.reason});
  }
  return t.to_string();
}

}  // namespace llp::perf
