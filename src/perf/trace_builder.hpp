// Build a machine-independent WorkTrace from a measured region profile.
//
// The solver runs serially on the host with every doacross region
// instrumented; this translates the resulting RegionRegistry snapshot into
// the per-step LoopWork records the scaling model replays on target
// machines. Work is expressed in FLOPs (accumulated analytically by the
// solver), so the target machine's delivered-MFLOPS rating — not the host's
// speed — sets absolute time.
#pragma once

#include <vector>

#include "core/region.hpp"
#include "model/scaling.hpp"

namespace llp::perf {

/// Convert accumulated region stats over `steps` time steps into a per-step
/// trace. Regions with zero invocations are skipped. A parallel-loop region
/// whose threading is currently disabled is emitted as serial — exactly what
/// incremental parallelization means for scaling.
llp::model::WorkTrace build_trace(
    const std::vector<llp::RegionStats>& snapshot, int steps);

/// Convenience: snapshot the global registry.
llp::model::WorkTrace build_trace_from_registry(int steps);

}  // namespace llp::perf
