// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace llp::perf {

/// Monotonic stopwatch.
class Timer {
public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds elapsed time to a double on scope exit.
class ScopedTimer {
public:
  explicit ScopedTimer(double& sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += timer_.elapsed(); }

private:
  double& sink_;
  Timer timer_;
};

}  // namespace llp::perf
