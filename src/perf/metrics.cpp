#include "perf/metrics.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::perf {

double time_steps_per_hour(double seconds_per_step) {
  LLP_REQUIRE(seconds_per_step > 0.0, "seconds_per_step must be positive");
  return 3600.0 / seconds_per_step;
}

double mflops(double flops, double seconds) {
  LLP_REQUIRE(seconds > 0.0, "seconds must be positive");
  LLP_REQUIRE(flops >= 0.0, "flops must be nonnegative");
  return flops / seconds / 1e6;
}

double parallel_efficiency(double t1_seconds, double tp_seconds,
                           int processors) {
  LLP_REQUIRE(t1_seconds > 0.0 && tp_seconds > 0.0, "times must be positive");
  LLP_REQUIRE(processors >= 1, "processors must be >= 1");
  return (t1_seconds / tp_seconds) / static_cast<double>(processors);
}

std::string eformat(double value) {
  LLP_REQUIRE(std::isfinite(value), "value must be finite");
  if (value == 0.0) return "0.00E0";
  const double e = std::floor(std::log10(std::abs(value)));
  const double mant = value / std::pow(10.0, e);
  return llp::strfmt("%.2fE%d", mant, static_cast<int>(e));
}

}  // namespace llp::perf
