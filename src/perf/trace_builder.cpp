#include "perf/trace_builder.hpp"

#include <cmath>

#include "core/runtime.hpp"
#include "util/error.hpp"

namespace llp::perf {

llp::model::WorkTrace build_trace(
    const std::vector<llp::RegionStats>& snapshot, int steps) {
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");
  llp::model::WorkTrace trace;
  for (const auto& r : snapshot) {
    if (r.invocations == 0) continue;
    llp::model::LoopWork w;
    w.name = r.name;
    w.flops_per_step = r.flops / steps;
    w.bytes_per_step = r.bytes / steps;
    w.invocations_per_step =
        static_cast<double>(r.invocations) / static_cast<double>(steps);
    w.parallel =
        r.kind == llp::RegionKind::kParallelLoop && r.parallel_enabled;
    w.trips = w.parallel
                  ? std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(std::llround(r.mean_trips())))
                  : 1;
    trace.loops.push_back(std::move(w));
  }
  return trace;
}

llp::model::WorkTrace build_trace_from_registry(int steps) {
  return build_trace(llp::regions().snapshot(), steps);
}

}  // namespace llp::perf
