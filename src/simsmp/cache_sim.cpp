#include "simsmp/cache_sim.hpp"

#include "util/error.hpp"

namespace llp::simsmp {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  LLP_REQUIRE(is_pow2(config.line_bytes), "line_bytes must be a power of two");
  LLP_REQUIRE(config.associativity >= 1, "associativity must be >= 1");
  LLP_REQUIRE(config.size_bytes >=
                  config.line_bytes * static_cast<std::uint64_t>(config.associativity),
              "cache smaller than one set");
  LLP_REQUIRE(config.size_bytes %
                      (config.line_bytes *
                       static_cast<std::uint64_t>(config.associativity)) ==
                  0,
              "size must be a multiple of line_bytes*associativity");
  num_sets_ = config.size_bytes /
              (config.line_bytes * static_cast<std::uint64_t>(config.associativity));
  LLP_REQUIRE(is_pow2(num_sets_), "number of sets must be a power of two");
  const std::size_t slots = num_sets_ * static_cast<std::size_t>(config.associativity);
  tags_.assign(slots, 0);
  lru_.assign(slots, 0);
  valid_.assign(slots, 0);
}

int CacheSim::access(std::uint64_t addr, std::uint64_t bytes) {
  LLP_ASSERT(bytes >= 1);
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  int miss_count = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (touch_line(line)) {
      ++hits_;
    } else {
      ++misses_;
      ++miss_count;
    }
  }
  return miss_count;
}

bool CacheSim::touch_line(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & (num_sets_ - 1);
  const std::uint64_t tag = line_addr >> 1;  // keep full line id as tag
  const int assoc = config_.associativity;
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  ++stamp_;
  // Hit?
  for (int w = 0; w < assoc; ++w) {
    if (valid_[base + w] && tags_[base + w] == line_addr) {
      lru_[base + w] = stamp_;
      return true;
    }
  }
  (void)tag;
  // Miss: fill LRU way.
  std::size_t victim = base;
  for (int w = 1; w < assoc; ++w) {
    if (!valid_[base + w]) {
      victim = base + w;
      break;
    }
    if (lru_[base + w] < lru_[victim]) victim = base + w;
  }
  if (!valid_[victim]) {
    // Prefer any invalid way, including way 0.
    for (int w = 0; w < assoc; ++w) {
      if (!valid_[base + w]) {
        victim = base + w;
        break;
      }
    }
  }
  tags_[victim] = line_addr;
  valid_[victim] = 1;
  lru_[victim] = stamp_;
  return false;
}

double CacheSim::miss_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

void CacheSim::reset() {
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  stamp_ = 0;
  hits_ = 0;
  misses_ = 0;
}

TlbSim::TlbSim(const TlbConfig& config) : config_(config) {
  LLP_REQUIRE(config.entries >= 1, "TLB needs >= 1 entry");
  LLP_REQUIRE(is_pow2(config.page_bytes), "page_bytes must be a power of two");
  pages_.assign(static_cast<std::size_t>(config.entries), 0);
  lru_.assign(static_cast<std::size_t>(config.entries), 0);
  valid_.assign(static_cast<std::size_t>(config.entries), 0);
}

bool TlbSim::access(std::uint64_t addr) {
  const std::uint64_t page = addr / config_.page_bytes;
  ++stamp_;
  std::size_t victim = 0;
  bool found_invalid = false;
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    if (valid_[i] && pages_[i] == page) {
      lru_[i] = stamp_;
      ++hits_;
      return true;
    }
    if (!found_invalid) {
      if (!valid_[i]) {
        victim = i;
        found_invalid = true;
      } else if (lru_[i] < lru_[victim] || !valid_[victim]) {
        victim = i;
      }
    }
  }
  pages_[victim] = page;
  valid_[victim] = 1;
  lru_[victim] = stamp_;
  ++misses_;
  return false;
}

double TlbSim::miss_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

void TlbSim::reset() {
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  stamp_ = 0;
  hits_ = 0;
  misses_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                                 const TlbConfig& tlb)
    : l1_(l1), l2_(l2), tlb_(tlb) {}

void MemoryHierarchy::access(std::uint64_t addr, std::uint64_t bytes) {
  tlb_.access(addr);
  const int l1_misses = l1_.access(addr, bytes);
  if (l1_misses > 0) {
    // Only lines missing in L1 proceed to L2; approximate with one L2 access
    // per missed L1 line at line granularity.
    const std::uint64_t line = l1_.config().line_bytes;
    const std::uint64_t first = addr / line;
    for (int i = 0; i < l1_misses; ++i) {
      l2_.access((first + static_cast<std::uint64_t>(i)) * line, line);
    }
  }
}

double MemoryHierarchy::estimated_cycles(const HierarchyCosts& costs) const {
  // Pixie-style: every access costs an L1 hit; L1 misses add the L2 hit
  // penalty; L2 misses add the memory penalty; TLB misses add theirs.
  return static_cast<double>(l1_.accesses()) * costs.l1_hit_cycles +
         static_cast<double>(l1_.misses()) * costs.l2_hit_cycles +
         static_cast<double>(l2_.misses()) * costs.memory_cycles +
         static_cast<double>(tlb_.misses()) * costs.tlb_miss_cycles;
}

double MemoryHierarchy::memory_traffic_bytes() const {
  return static_cast<double>(l2_.misses()) *
         static_cast<double>(l2_.config().line_bytes);
}

void MemoryHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  tlb_.reset();
}

}  // namespace llp::simsmp
