// Execution-driven SMP performance simulator.
//
// Sweeps a measured WorkTrace across processor counts on a target machine
// and reports performance in the paper's units (time steps/hour, delivered
// MFLOPS). This is what regenerates Table 4 and Figures 2–3: the trace comes
// from real instrumented solver runs on the host; the machine constants come
// from model::MachineConfig; the p-dependence (stair-step, sync, Amdahl,
// NUMA) comes from model::predict_step_time.
#pragma once

#include <string>
#include <vector>

#include "model/machine.hpp"
#include "model/scaling.hpp"

namespace llp::simsmp {

/// One point of a performance sweep.
struct PerfPoint {
  int processors = 1;
  double seconds_per_step = 0.0;
  double steps_per_hour = 0.0;
  double mflops = 0.0;      ///< delivered, whole machine
  double speedup = 0.0;     ///< vs the same machine's p=1
  double efficiency = 0.0;  ///< speedup / p
  llp::model::StepTime breakdown;
};

class SmpSimulator {
public:
  explicit SmpSimulator(llp::model::MachineConfig machine);

  const llp::model::MachineConfig& machine() const noexcept { return machine_; }

  /// Predict one processor count.
  PerfPoint run(const llp::model::WorkTrace& trace, int processors) const;

  /// Predict a list of processor counts (each must be within the machine).
  std::vector<PerfPoint> sweep(const llp::model::WorkTrace& trace,
                               const std::vector<int>& processor_counts) const;

  /// Render a sweep as a table in the paper's Table 4 format.
  static std::string format_sweep(const std::string& title,
                                  const std::vector<PerfPoint>& points);

private:
  llp::model::MachineConfig machine_;
};

/// Processor counts used in the paper's Table 4 (clipped to the machine).
std::vector<int> table4_processor_counts(int max_processors);

}  // namespace llp::simsmp
