// Page migration and replication under NUMA (paper §7).
//
// The paper is specific about the remedy hierarchy for page-level
// contention: page migration does NOT solve it ("neither does data
// placement directives"), data replication/caching CAN help, and the best
// solution is to avoid the access pattern. MigratingPageMemory lets all
// three statements be demonstrated quantitatively: accesses are recorded
// in epochs; between epochs a policy may re-home pages to their majority
// user (migration) or mark read-only pages as replicated (each node then
// serves reads locally). A page that every node genuinely reads *and
// writes* stays mostly-remote under every policy — the paper's point.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace llp::simsmp {

enum class MigrationPolicy {
  kNone,               ///< first-touch homes, never moved
  kMigrateToMajority,  ///< re-home each page to its busiest node
  kReplicateReadOnly,  ///< replicate pages not written this epoch,
                       ///< migrate the rest to their majority node
};

struct EpochStats {
  std::uint64_t accesses = 0;
  std::uint64_t remote = 0;  ///< off-home accesses (replicas serve reads)
  std::uint64_t migrations = 0;        ///< pages re-homed at epoch end
  std::uint64_t replicated_pages = 0;  ///< pages replicated at epoch end

  double remote_fraction() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(remote) /
                               static_cast<double>(accesses);
  }
};

class MigratingPageMemory {
public:
  MigratingPageMemory(std::uint64_t page_bytes, int num_nodes,
                      int procs_per_node);

  /// Record `count` accesses by `proc` to the page containing addr.
  void access(int proc, std::uint64_t addr, bool write = false,
              std::uint64_t count = 1);

  /// Close the epoch: report its stats, then apply the policy (migrations
  /// and replications take effect for the NEXT epoch) and reset epoch
  /// counters. Writing to a replicated page drops its replicas.
  EpochStats end_epoch(MigrationPolicy policy);

  int num_nodes() const noexcept { return num_nodes_; }

private:
  struct PageState {
    int home = -1;
    bool replicated = false;
    std::vector<std::uint64_t> epoch_count;  // per node
    std::uint64_t epoch_writes = 0;
  };

  std::uint64_t page_bytes_;
  int num_nodes_;
  int procs_per_node_;
  std::unordered_map<std::uint64_t, PageState> pages_;
  EpochStats current_;
};

}  // namespace llp::simsmp
