#include "simsmp/smp_simulator.hpp"

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace llp::simsmp {

SmpSimulator::SmpSimulator(llp::model::MachineConfig machine)
    : machine_(std::move(machine)) {}

PerfPoint SmpSimulator::run(const llp::model::WorkTrace& trace,
                            int processors) const {
  const auto t1 = llp::model::predict_step_time(trace, machine_, 1);
  const auto tp = llp::model::predict_step_time(trace, machine_, processors);

  PerfPoint pt;
  pt.processors = processors;
  pt.breakdown = tp;
  pt.seconds_per_step = tp.total();
  LLP_REQUIRE(pt.seconds_per_step > 0.0, "empty trace");
  pt.steps_per_hour = 3600.0 / pt.seconds_per_step;
  pt.mflops = trace.total_flops() / pt.seconds_per_step / 1e6;
  pt.speedup = t1.total() / tp.total();
  pt.efficiency = pt.speedup / processors;
  return pt;
}

std::vector<PerfPoint> SmpSimulator::sweep(
    const llp::model::WorkTrace& trace,
    const std::vector<int>& processor_counts) const {
  std::vector<PerfPoint> out;
  out.reserve(processor_counts.size());
  for (int p : processor_counts) out.push_back(run(trace, p));
  return out;
}

std::string SmpSimulator::format_sweep(const std::string& title,
                                       const std::vector<PerfPoint>& points) {
  llp::Table t({"procs", "steps/hr", "MFLOPS", "speedup", "effic",
                "compute(s)", "serial(s)", "sync(s)"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.processors), strfmt("%.1f", p.steps_per_hour),
               strfmt("%.0f", p.mflops), strfmt("%.2f", p.speedup),
               strfmt("%.3f", p.efficiency),
               strfmt("%.3f", p.breakdown.compute_s),
               strfmt("%.3f", p.breakdown.serial_s),
               strfmt("%.4f", p.breakdown.sync_s)});
  }
  return title + "\n" + t.to_string();
}

std::vector<int> table4_processor_counts(int max_processors) {
  const std::vector<int> paper = {1,  16, 32,  48,  64,  72,
                                  88, 104, 112, 120, 124};
  std::vector<int> out;
  for (int p : paper) {
    if (p <= max_processors) out.push_back(p);
  }
  return out;
}

}  // namespace llp::simsmp
