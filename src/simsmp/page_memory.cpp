#include "simsmp/page_memory.hpp"

#include <bit>

#include "util/error.hpp"

namespace llp::simsmp {

PagePlacement::PagePlacement(std::uint64_t page_bytes, int num_nodes)
    : page_bytes_(page_bytes), num_nodes_(num_nodes) {
  LLP_REQUIRE(page_bytes >= 1, "page_bytes must be >= 1");
  LLP_REQUIRE(num_nodes >= 1, "num_nodes must be >= 1");
}

int PagePlacement::node_of(std::uint64_t addr) const {
  return static_cast<int>((addr / page_bytes_) % static_cast<std::uint64_t>(num_nodes_));
}

std::uint64_t PagePlacement::page_of(std::uint64_t addr) const {
  return addr / page_bytes_;
}

ContentionAnalyzer::ContentionAnalyzer(std::uint64_t page_bytes,
                                       int num_processors, int procs_per_node)
    : page_bytes_(page_bytes),
      num_processors_(num_processors),
      procs_per_node_(procs_per_node) {
  LLP_REQUIRE(page_bytes >= 1, "page_bytes must be >= 1");
  LLP_REQUIRE(num_processors >= 1 && num_processors <= 128,
              "supports 1..128 processors");
  LLP_REQUIRE(procs_per_node >= 1, "procs_per_node must be >= 1");
}

void ContentionAnalyzer::access(int processor, std::uint64_t addr,
                                std::uint64_t count) {
  LLP_REQUIRE(processor >= 0 && processor < num_processors_, "bad processor");
  const std::uint64_t page = addr / page_bytes_;
  const int node = processor / procs_per_node_;
  LLP_REQUIRE(node < 64, "node id exceeds mask width");

  PageInfo& info = pages_[page];
  if (info.home_node < 0) info.home_node = node;  // first touch
  info.accesses += count;
  info.node_mask |= (1ULL << node);
  if (processor < 64) {
    info.proc_mask_lo |= (1ULL << processor);
  } else {
    info.proc_mask_hi |= (1ULL << (processor - 64));
  }
  if (node != info.home_node) info.remote += count;
  accesses_ += count;
}

ContentionReport ContentionAnalyzer::report() const {
  ContentionReport r;
  r.accesses = accesses_;
  r.pages = pages_.size();
  double weighted = 0.0;
  for (const auto& [page, info] : pages_) {
    (void)page;
    const int sharers = std::popcount(info.proc_mask_lo) +
                        std::popcount(info.proc_mask_hi);
    if (sharers >= 2) {
      ++r.shared_pages;
      r.shared_accesses += info.accesses;
    }
    if (sharers > r.max_sharers) r.max_sharers = sharers;
    weighted += static_cast<double>(sharers) *
                static_cast<double>(info.accesses);
    r.remote_accesses += info.remote;
  }
  if (accesses_ > 0) r.mean_sharers = weighted / static_cast<double>(accesses_);
  return r;
}

void ContentionAnalyzer::reset() {
  pages_.clear();
  accesses_ = 0;
}

}  // namespace llp::simsmp
