// Page-granularity memory placement and contention analysis (paper §7).
//
// On node-based SMPs (Origin 2000, HPC 10000, Exemplar hypernodes) the unit
// of interleaving between memories is a page (4–16 KB), not a cache line.
// A parallel loop whose per-processor footprints interleave *within* pages
// makes many processors hammer the same page simultaneously — "a severe
// amount of contention" that "no amount of page migration solves" because
// the page genuinely is shared. The paper's Example 4 shows three loop
// orderings over A(JMAX,KMAX,LMAX):
//
//   (a) parallel over L, stride-1 inside  -> footprints are contiguous
//       slabs; pages are private except at slab boundaries;
//   (b) parallel over K, L inside         -> footprints are stripes of
//       JMAX points repeating every JMAX*KMAX; some page sharing;
//   (c) parallel over J, batching a K buffer -> every processor strides
//       through the whole array; nearly every page is shared by all.
//
// ContentionAnalyzer measures exactly that: feed it the accesses of one
// parallel region execution tagged by processor, and it reports how many
// pages were touched by multiple processors and what fraction of accesses
// went to such shared pages. PagePlacement additionally assigns pages to
// nodes (round-robin, as interleaved allocation does) and counts
// remote-node accesses.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace llp::simsmp {

/// Round-robin (interleaved) page-to-node placement.
class PagePlacement {
public:
  PagePlacement(std::uint64_t page_bytes, int num_nodes);

  int node_of(std::uint64_t addr) const;
  std::uint64_t page_of(std::uint64_t addr) const;
  std::uint64_t page_bytes() const noexcept { return page_bytes_; }
  int num_nodes() const noexcept { return num_nodes_; }

private:
  std::uint64_t page_bytes_;
  int num_nodes_;
};

/// Per-region page-sharing statistics.
struct ContentionReport {
  std::uint64_t accesses = 0;       ///< total recorded accesses
  std::uint64_t pages = 0;          ///< distinct pages touched
  std::uint64_t shared_pages = 0;   ///< pages touched by >= 2 processors
  std::uint64_t shared_accesses = 0;///< accesses landing on shared pages
  std::uint64_t remote_accesses = 0;///< accesses to a page homed off the
                                    ///< accessor's node (first-touch homes)
  double max_sharers = 0.0;         ///< most processors on any one page
  double mean_sharers = 0.0;        ///< access-weighted mean sharers/page

  double shared_page_fraction() const {
    return pages == 0 ? 0.0
                      : static_cast<double>(shared_pages) /
                            static_cast<double>(pages);
  }
  double shared_access_fraction() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(shared_accesses) /
                               static_cast<double>(accesses);
  }
  double remote_access_fraction() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(remote_accesses) /
                               static_cast<double>(accesses);
  }
};

/// Records (processor, address) accesses for one parallel-region execution
/// and reports page sharing. Processors are mapped to nodes in blocks of
/// procs_per_node (processor p lives on node p / procs_per_node).
class ContentionAnalyzer {
public:
  ContentionAnalyzer(std::uint64_t page_bytes, int num_processors,
                     int procs_per_node);

  void access(int processor, std::uint64_t addr,
              std::uint64_t count = 1);

  ContentionReport report() const;

  void reset();

private:
  struct PageInfo {
    std::uint64_t accesses = 0;
    std::uint64_t node_mask = 0;   ///< bitmask of accessing nodes (<=64)
    std::uint64_t proc_mask_lo = 0;///< bitmask of accessing procs (first 64)
    std::uint64_t proc_mask_hi = 0;///< procs 64..127
    int home_node = -1;            ///< first-touch home
    std::uint64_t remote = 0;      ///< accesses from non-home nodes
  };

  std::uint64_t page_bytes_;
  int num_processors_;
  int procs_per_node_;
  std::unordered_map<std::uint64_t, PageInfo> pages_;
  std::uint64_t accesses_ = 0;
};

}  // namespace llp::simsmp
