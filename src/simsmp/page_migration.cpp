#include "simsmp/page_migration.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace llp::simsmp {

MigratingPageMemory::MigratingPageMemory(std::uint64_t page_bytes,
                                         int num_nodes, int procs_per_node)
    : page_bytes_(page_bytes),
      num_nodes_(num_nodes),
      procs_per_node_(procs_per_node) {
  LLP_REQUIRE(page_bytes >= 1, "page_bytes must be >= 1");
  LLP_REQUIRE(num_nodes >= 1, "num_nodes must be >= 1");
  LLP_REQUIRE(procs_per_node >= 1, "procs_per_node must be >= 1");
}

void MigratingPageMemory::access(int proc, std::uint64_t addr, bool write,
                                 std::uint64_t count) {
  LLP_REQUIRE(proc >= 0, "bad processor");
  const int node = proc / procs_per_node_;
  LLP_REQUIRE(node < num_nodes_, "processor maps past the last node");

  PageState& page = pages_[addr / page_bytes_];
  if (page.home < 0) {
    page.home = node;  // first touch
    page.epoch_count.assign(static_cast<std::size_t>(num_nodes_), 0);
  }
  page.epoch_count[static_cast<std::size_t>(node)] += count;
  if (write) {
    page.epoch_writes += count;
    if (page.replicated) page.replicated = false;  // writes kill replicas
  }

  current_.accesses += count;
  const bool served_locally =
      node == page.home || (page.replicated && !write);
  if (!served_locally) current_.remote += count;
}

EpochStats MigratingPageMemory::end_epoch(MigrationPolicy policy) {
  EpochStats out = current_;
  for (auto& [id, page] : pages_) {
    (void)id;
    if (policy == MigrationPolicy::kReplicateReadOnly &&
        page.epoch_writes == 0) {
      if (!page.replicated) {
        page.replicated = true;
        ++out.replicated_pages;
      }
    } else if (policy == MigrationPolicy::kMigrateToMajority ||
               policy == MigrationPolicy::kReplicateReadOnly) {
      const auto it = std::max_element(page.epoch_count.begin(),
                                       page.epoch_count.end());
      const int majority = static_cast<int>(it - page.epoch_count.begin());
      if (*it > 0 && majority != page.home) {
        page.home = majority;
        ++out.migrations;
      }
    }
    std::fill(page.epoch_count.begin(), page.epoch_count.end(), 0);
    page.epoch_writes = 0;
  }
  current_ = EpochStats{};
  return out;
}

}  // namespace llp::simsmp
