// Trace-driven cache and TLB simulation (the paper's prof/pixie methodology,
// §6: "by subtracting those two sets of numbers, one can then estimate the
// cost of cache and TLB misses").
//
// CacheSim is a classic set-associative, LRU, write-allocate cache fed a
// stream of byte addresses. It is deliberately simple — the paper's serial
// tuning only needs miss *rates* for competing loop orders and buffer sizes,
// not cycle accuracy. TlbSim models a fully-associative LRU TLB over pages.
// MemoryHierarchy chains L1 -> L2 -> memory plus a TLB and produces the
// miss-cost estimate pixie-style: cycles = hits*t_hit + misses*t_miss.
#pragma once

#include <cstdint>
#include <vector>

namespace llp::simsmp {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint64_t line_bytes = 64;
  int associativity = 4;
};

class CacheSim {
public:
  explicit CacheSim(const CacheConfig& config);

  /// Touch `bytes` bytes starting at `addr`; accesses spanning lines touch
  /// every line covered. Returns the number of misses incurred.
  int access(std::uint64_t addr, std::uint64_t bytes = 8);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  double miss_rate() const noexcept;

  const CacheConfig& config() const noexcept { return config_; }

  /// Forget all contents and zero the counters.
  void reset();

private:
  bool touch_line(std::uint64_t line_addr);

  CacheConfig config_;
  std::uint64_t num_sets_;
  // tags_[set * assoc + way]; lru_[same] holds a recency stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::vector<char> valid_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct TlbConfig {
  int entries = 64;
  std::uint64_t page_bytes = 16 * 1024;  // SGI Origin default page
};

class TlbSim {
public:
  explicit TlbSim(const TlbConfig& config);

  /// Touch the page containing addr; returns true on hit.
  bool access(std::uint64_t addr);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double miss_rate() const noexcept;
  void reset();

private:
  TlbConfig config_;
  std::vector<std::uint64_t> pages_;
  std::vector<std::uint64_t> lru_;
  std::vector<char> valid_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Cycle costs for the pixie-style estimate.
struct HierarchyCosts {
  double l1_hit_cycles = 1.0;
  double l2_hit_cycles = 10.0;
  double memory_cycles = 100.0;
  double tlb_miss_cycles = 60.0;
};

/// L1 -> L2 -> memory plus TLB, fed one address stream.
class MemoryHierarchy {
public:
  MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                  const TlbConfig& tlb);

  void access(std::uint64_t addr, std::uint64_t bytes = 8);

  const CacheSim& l1() const noexcept { return l1_; }
  const CacheSim& l2() const noexcept { return l2_; }
  const TlbSim& tlb() const noexcept { return tlb_; }

  /// Estimated memory-hierarchy cycles for the stream so far.
  double estimated_cycles(const HierarchyCosts& costs = {}) const;

  /// Bytes of main-memory traffic generated (L2 misses x line size).
  double memory_traffic_bytes() const;

  void reset();

private:
  CacheSim l1_;
  CacheSim l2_;
  TlbSim tlb_;
};

}  // namespace llp::simsmp
