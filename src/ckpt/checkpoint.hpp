// Durable checkpoint/restart: crash-safe solver state on disk.
//
// A checkpoint is one versioned file of CRC32C-framed records,
//
//   "F3DCKPT1"                                  8-byte magic
//   [HDR0 frame]  manifest: format version, step index, CFL, residual,
//                 prev residual, sealed first-replay residual, whole-grid
//                 checksum, per-zone dims, config fingerprint
//   [ZON0 frame]  zone 0 interior Q payload (canonical order) ... x zones
//   [END0 frame]  empty terminator
//
// where every frame carries its payload length and CRC32C, written
// atomically — temp directory + write + fsync + rename + parent fsync —
// into a rotating generation directory (ckpt.N/state.f3dc, keep-last-K).
// A torn, truncated, or bit-flipped write therefore fails frame validation
// on load, and load_newest_intact() transparently falls back to the newest
// generation that passes the whole ladder: magic → header CRC → dims and
// fingerprint → zone CRCs → finite values → end-to-end grid checksum.
//
// The store implements f3d::CheckpointHook, so run_protected drives it once
// per healthy step. Snapshots are sealed one step late: the generation
// written for step s records the residual the run actually produced at
// s+1, and a restart replays that step and verifies it against the
// manifest before trusting the state (verify_first_replay).
//
// Crash-consistency is testable in-process: the writer routes every frame
// through the fault injector's io seam (stream "ckpt", write-op index,
// frame index), so LLP_FAULT="ioflip:ckpt:1:0" or "iocrash:ckpt:2:1"
// deterministically tears, flips, ENOSPC-fails, or "crashes" a specific
// write without killing the CI runner.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"

namespace llp::fault {
class Injector;
}

namespace f3d::ckpt {

/// Stream name the writer's io-fault seam reports to the injector.
inline constexpr const char* kStream = "ckpt";

/// Checkpoint file format version (manifest field; bumped on layout change).
inline constexpr std::uint32_t kFormatVersion = 1;

struct Config {
  std::string dir;          ///< generation root, created on demand
  int every = 10;           ///< healthy steps between snapshots; <=0: flush only
  int keep_generations = 3; ///< prune to the newest K after each write
  std::string meta;         ///< config fingerprint; loader rejects mismatches
  double replay_tol = 1e-6; ///< relative tolerance for verify_first_replay

  /// Injector whose io seam the writer consults; nullptr = the process
  /// global one (llp::fault::global_injector()) at each write.
  llp::fault::Injector* injector = nullptr;
};

/// Everything the header frame records about a generation.
struct Manifest {
  std::uint32_t version = kFormatVersion;
  SolverState state;
  std::vector<ZoneDims> dims;
  std::uint64_t grid_checksum = 0;
  /// Residual of the step after the snapshot, recorded when the run sealed
  /// this generation; NaN for unsealed (end-of-run) generations.
  double first_replay_residual = 0.0;
  std::string meta;

  bool sealed() const;
};

class CheckpointStore final : public CheckpointHook {
public:
  /// Validates the config (throws llp::Error) but touches no disk until
  /// the first write.
  explicit CheckpointStore(Config cfg);
  ~CheckpointStore() override;

  // CheckpointHook — driven by Solver::run_protected.
  bool on_healthy_step(const MultiZoneGrid& grid,
                       const SolverState& state) override;
  void on_rollback(int step) override;
  bool flush(const MultiZoneGrid& grid, const SolverState& state) override;

  /// Write one generation now (unsealed unless a first-replay residual is
  /// given). Returns the generation number. Throws llp::IoError on write
  /// failure (injected or real), llp::CrashError on an injected crash.
  int save(const MultiZoneGrid& grid, const SolverState& state,
           double first_replay_residual =
               std::numeric_limits<double>::quiet_NaN());

  /// Existing generation numbers under dir, newest first.
  std::vector<int> generations() const;

  /// Parse and validate generation `gen`'s header frame only.
  Manifest read_manifest(int gen) const;

  /// Full validation ladder for one generation, restoring the grid's
  /// interior on success. Throws llp::IoError naming the first rung that
  /// failed; on throw the grid contents are unspecified (callers fall back
  /// to another generation or rebuild).
  Manifest load(int gen, MultiZoneGrid& grid) const;

  /// Remote-generation handoff: restore only zones [first, first + n) of
  /// generation `gen` into `grid`, whose n zones must match those dims in
  /// order (n = grid.num_zones()). A cluster worker restores its slab of a
  /// coordinator-written generation without materializing the global grid.
  /// Runs the validation ladder over everything it touches — magic, header
  /// CRC, fingerprint, dims, the zone frames up to the range's end, finite
  /// values — but not the end-to-end grid checksum, which only the full
  /// grid can reproduce. Throws llp::IoError like load().
  Manifest load_zone_range(int gen, int first, MultiZoneGrid& grid) const;

  /// Walk generations newest-to-oldest and return the first that loads
  /// clean. `gen_out` receives its number; every rejected generation
  /// appends a "ckpt.N: reason" line to `ladder_log` (when non-null).
  /// Throws llp::IoError when no intact generation exists.
  Manifest load_newest_intact(MultiZoneGrid& grid, int* gen_out = nullptr,
                              std::string* ladder_log = nullptr) const;

  const Config& config() const noexcept { return cfg_; }
  /// Generations completed by this store instance.
  int saves_completed() const noexcept { return saves_completed_; }
  /// Newest generation number written by this instance; -1 before any.
  int last_written_generation() const noexcept { return last_written_gen_; }

private:
  struct Snapshot;

  std::unique_ptr<Snapshot> take_snapshot(const MultiZoneGrid& grid,
                                          const SolverState& state) const;
  int write_generation(const Snapshot& snap, double first_replay_residual);

  Config cfg_;
  std::unique_ptr<Snapshot> pending_;
  int last_snapshot_step_ = -1;  ///< -1 = cadence not armed yet
  int last_written_step_ = -1;
  int last_written_gen_ = -1;
  int saves_completed_ = 0;
};

/// Path of generation `gen`'s state file under `dir`.
std::string state_path(const std::string& dir, int gen);

/// Byte offsets of every frame boundary in a checkpoint file — offset 0,
/// the first frame start (8), each subsequent frame start, and the file
/// size — parsed leniently (no CRC checks). The corruption test matrix
/// truncates at each of these; a loader must reject every such prefix.
std::vector<std::size_t> frame_offsets(const std::string& file);

/// Sealed-manifest restart verification: advance `solver` one step and
/// compare the residual against manifest.first_replay_residual within
/// relative tolerance `tol`. An unsealed manifest verifies trivially (no
/// step is taken). On mismatch returns false and describes it in `why`.
bool verify_first_replay(Solver& solver, const Manifest& manifest, double tol,
                         std::string* why = nullptr);

}  // namespace f3d::ckpt
