#include "ckpt/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>

#include "core/runtime.hpp"
#include "f3d/io.hpp"
#include "f3d/validation.hpp"
#include "fault/injector.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/io.hpp"

namespace fs = std::filesystem;

namespace f3d::ckpt {

namespace {

constexpr char kMagic[8] = {'F', '3', 'D', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kTagHeader = 0x30524448u;  // "HDR0" little-endian
constexpr std::uint32_t kTagZone = 0x304e4f5au;    // "ZON0"
constexpr std::uint32_t kTagEnd = 0x30444e45u;     // "END0"
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

// ---- little-endian append/read helpers (the format assumes a
// little-endian host, which is every platform this repo targets).

template <typename T>
void append_raw(std::string& out, T v) {
  char b[sizeof(T)];
  std::memcpy(b, &v, sizeof(T));
  out.append(b, sizeof(T));
}

struct Cursor {
  const char* p;
  std::size_t size;
  std::size_t off = 0;

  template <typename T>
  T read(const char* what) {
    if (size - off < sizeof(T)) {
      throw llp::IoError(std::string("truncated ") + what);
    }
    T v;
    std::memcpy(&v, p + off, sizeof(T));
    off += sizeof(T);
    return v;
  }

  const char* take(std::size_t n, const char* what) {
    if (size - off < n) throw llp::IoError(std::string("truncated ") + what);
    const char* at = p + off;
    off += n;
    return at;
  }
};

std::string serialize_manifest(const Manifest& m) {
  std::string out;
  append_raw<std::uint32_t>(out, m.version);
  append_raw<std::int64_t>(out, m.state.steps);
  append_raw<double>(out, m.state.cfl);
  append_raw<double>(out, m.state.residual);
  append_raw<double>(out, m.state.prev_residual);
  append_raw<double>(out, m.first_replay_residual);
  append_raw<std::uint64_t>(out, m.grid_checksum);
  append_raw<std::int32_t>(out, static_cast<std::int32_t>(m.dims.size()));
  for (const ZoneDims& d : m.dims) {
    append_raw<std::int32_t>(out, d.jmax);
    append_raw<std::int32_t>(out, d.kmax);
    append_raw<std::int32_t>(out, d.lmax);
  }
  append_raw<std::uint32_t>(out, static_cast<std::uint32_t>(m.meta.size()));
  out.append(m.meta);
  return out;
}

Manifest parse_manifest(const char* data, std::size_t size) {
  Cursor c{data, size};
  Manifest m;
  m.version = c.read<std::uint32_t>("manifest version");
  if (m.version != kFormatVersion) {
    throw llp::IoError(llp::strfmt("unsupported checkpoint version %u",
                                   static_cast<unsigned>(m.version)));
  }
  const auto steps = c.read<std::int64_t>("manifest step index");
  if (steps < 0 || steps > (std::int64_t{1} << 40)) {
    throw llp::IoError(llp::strfmt("implausible step index %lld",
                                   static_cast<long long>(steps)));
  }
  m.state.steps = static_cast<int>(steps);
  m.state.cfl = c.read<double>("manifest cfl");
  m.state.residual = c.read<double>("manifest residual");
  m.state.prev_residual = c.read<double>("manifest prev residual");
  m.first_replay_residual = c.read<double>("manifest first-replay residual");
  m.grid_checksum = c.read<std::uint64_t>("manifest checksum");
  if (!std::isfinite(m.state.cfl) || m.state.cfl <= 0.0 ||
      !std::isfinite(m.state.residual)) {
    throw llp::IoError("non-finite scalar state in manifest");
  }
  const auto zones = c.read<std::int32_t>("manifest zone count");
  if (zones <= 0 || zones > 4096) {
    throw llp::IoError(llp::strfmt("implausible zone count %d", zones));
  }
  m.dims.reserve(static_cast<std::size_t>(zones));
  for (int z = 0; z < zones; ++z) {
    ZoneDims d;
    d.jmax = c.read<std::int32_t>("zone dims");
    d.kmax = c.read<std::int32_t>("zone dims");
    d.lmax = c.read<std::int32_t>("zone dims");
    if (d.jmax <= 0 || d.kmax <= 0 || d.lmax <= 0 || d.jmax > kMaxZoneDim ||
        d.kmax > kMaxZoneDim || d.lmax > kMaxZoneDim) {
      throw llp::IoError(llp::strfmt("implausible zone %d dims %d x %d x %d",
                                     z, d.jmax, d.kmax, d.lmax));
    }
    m.dims.push_back(d);
  }
  const auto meta_len = c.read<std::uint32_t>("manifest meta length");
  if (meta_len > (1u << 20)) {
    throw llp::IoError("implausible manifest meta length");
  }
  m.meta.assign(c.take(meta_len, "manifest meta"), meta_len);
  return m;
}

// One parsed frame: header validated against the buffer bounds, payload
// CRC checked.
struct Frame {
  std::uint32_t tag = 0;
  std::uint32_t index = 0;
  const char* payload = nullptr;
  std::size_t size = 0;
};

Frame read_frame(Cursor& c, const char* what) {
  Frame f;
  f.tag = c.read<std::uint32_t>(what);
  f.index = c.read<std::uint32_t>(what);
  const auto len = c.read<std::uint64_t>(what);
  const auto crc = c.read<std::uint32_t>(what);
  if (len > c.size - c.off) {
    throw llp::IoError(std::string("truncated ") + what + " payload");
  }
  f.size = static_cast<std::size_t>(len);
  f.payload = c.take(f.size, what);
  if (llp::crc32c(f.payload, f.size) != crc) {
    throw llp::IoError(std::string(what) + " CRC mismatch");
  }
  return f;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw llp::IoError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw llp::IoError("read failed on " + path);
  return data;
}

// Durable write: all-or-nothing publication of `data` at `path` via a
// sibling temp file, fsync, rename, and parent-directory fsync.
void write_file_durable(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw llp::IoError("cannot open " + tmp + " for writing");
  const llp::io::IoResult wr =
      llp::io::write_exact(fd, data.data(), data.size());
  if (!wr.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw llp::IoError("write failed on " + tmp + ": " +
                       std::strerror(wr.error));
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw llp::IoError("fsync failed on " + tmp);
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw llp::IoError("rename failed: " + tmp + " -> " + path);
  }
  // Make the rename itself durable.
  const std::string parent = fs::path(path).parent_path().string();
  const int dfd = ::open(parent.empty() ? "." : parent.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

llp::fault::Injector* effective_injector(const Config& cfg) {
  return cfg.injector != nullptr ? cfg.injector
                                 : llp::fault::global_injector();
}

std::string gen_dir(const std::string& dir, int gen) {
  return dir + "/ckpt." + std::to_string(gen);
}

// Parse "ckpt.<N>" into N; -1 if the name is not a generation directory.
int parse_gen_name(const std::string& name) {
  if (name.rfind("ckpt.", 0) != 0) return -1;
  const std::string digits = name.substr(5);
  if (digits.empty()) return -1;
  int n = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return -1;
    if (n > 100000000) return -1;
    n = n * 10 + (ch - '0');
  }
  return n;
}

}  // namespace

bool Manifest::sealed() const { return std::isfinite(first_replay_residual); }

std::string state_path(const std::string& dir, int gen) {
  return gen_dir(dir, gen) + "/state.f3dc";
}

// The grid's interior at one instant, packed and checksummed — everything
// write_generation needs, held while the run advances one more step so the
// generation can be sealed with the replay residual it must reproduce.
struct CheckpointStore::Snapshot {
  Manifest manifest;
  std::vector<std::vector<double>> zones;
};

CheckpointStore::CheckpointStore(Config cfg) : cfg_(std::move(cfg)) {
  LLP_REQUIRE(!cfg_.dir.empty(), "checkpoint dir must not be empty");
  LLP_REQUIRE(cfg_.keep_generations >= 1, "keep_generations must be >= 1");
  LLP_REQUIRE(std::isfinite(cfg_.replay_tol) && cfg_.replay_tol >= 0.0,
              "replay_tol must be finite and nonnegative");
}

CheckpointStore::~CheckpointStore() = default;

std::unique_ptr<CheckpointStore::Snapshot> CheckpointStore::take_snapshot(
    const MultiZoneGrid& grid, const SolverState& state) const {
  auto snap = std::make_unique<Snapshot>();
  snap->manifest.state = state;
  snap->manifest.dims = grid.zone_dims();
  snap->manifest.grid_checksum = checksum(grid);
  snap->manifest.meta = cfg_.meta;
  snap->manifest.first_replay_residual =
      std::numeric_limits<double>::quiet_NaN();
  snap->zones.resize(static_cast<std::size_t>(grid.num_zones()));
  for (int z = 0; z < grid.num_zones(); ++z) {
    pack_zone_interior(grid.zone(z), snap->zones[static_cast<std::size_t>(z)]);
  }
  return snap;
}

int CheckpointStore::write_generation(const Snapshot& snap,
                                      double first_replay_residual) {
  // Trace the durable write as a B/E pair keyed by step: the E fires on
  // every exit (the guard covers the injected crash/ENOSPC throws too),
  // and kCkptDurable marks the instant the rename published a generation.
  const auto ckpt_step = static_cast<std::int64_t>(snap.manifest.state.steps);
  auto emit_ckpt = [](llp::EventKind kind, std::int64_t a, std::int64_t b) {
    llp::Runtime::current().emit(llp::Event{.t_ns = 0,
                                             .region = llp::kNoRegion,
                                             .a = a,
                                             .b = b,
                                             .kind = kind,
                                             .pad = 0,
                                             .lane = -1,
                                             .tid = -1});
  };
  emit_ckpt(llp::EventKind::kCkptWriteBegin, ckpt_step, 0);
  struct WriteEndGuard {
    decltype(emit_ckpt)& emit;
    std::int64_t step;
    bool ok = false;
    ~WriteEndGuard() {
      emit(llp::EventKind::kCkptWriteEnd, step, ok ? 1 : 0);
    }
  } write_end{emit_ckpt, ckpt_step};

  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec) throw llp::IoError("cannot create checkpoint dir " + cfg_.dir);

  // Sweep stale temp directories (a prior crash mid-write leaves one).
  int max_gen = -1;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt.", 0) == 0 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove_all(entry.path(), ec);
      continue;
    }
    max_gen = std::max(max_gen, parse_gen_name(name));
  }
  const int gen = max_gen + 1;

  Manifest man = snap.manifest;
  man.first_replay_residual = first_replay_residual;

  // The io-fault seam: every frame consults the injector before it is
  // appended, keyed (stream, write-op, frame) like (region, invocation,
  // lane) for loop faults.
  llp::fault::Injector* inj = effective_injector(cfg_);
  const std::uint64_t op = inj != nullptr ? inj->begin_io(kStream) : 0;

  std::string buf(kMagic, sizeof(kMagic));
  bool torn = false;       // ioshort: the tail of the file never lands
  bool crashed = false;    // iocrash: die after a partial unsynced write
  bool enospc = false;     // ioenospc: the write fails cleanly
  int frame = 0;
  auto emit = [&](std::uint32_t tag, std::uint32_t index,
                  const char* payload, std::size_t size) {
    if (torn || crashed || enospc) return;
    llp::fault::Injector::IoFault f;
    const bool fired =
        inj != nullptr && inj->io_fault(kStream, op, frame, &f);
    ++frame;
    const std::uint32_t crc = llp::crc32c(payload, size);
    append_raw<std::uint32_t>(buf, tag);
    append_raw<std::uint32_t>(buf, index);
    append_raw<std::uint64_t>(buf, static_cast<std::uint64_t>(size));
    append_raw<std::uint32_t>(buf, crc);
    if (!fired) {
      buf.append(payload, size);
      return;
    }
    switch (f.kind) {
      case llp::fault::FaultKind::kIoFlip: {
        // The CRC above was taken over the clean payload; landing a
        // flipped copy is exactly the bit rot the loader must catch.
        buf.append(payload, size);
        if (size > 0) {
          const std::uint64_t bit = f.bit % (size * 8);
          buf[buf.size() - size + bit / 8] ^=
              static_cast<char>(1u << (bit % 8));
        }
        break;
      }
      case llp::fault::FaultKind::kIoShort:
        buf.append(payload, size / 2);
        torn = true;
        break;
      case llp::fault::FaultKind::kIoCrash:
        buf.append(payload, size / 2);
        crashed = true;
        break;
      case llp::fault::FaultKind::kIoEnospc:
        buf.append(payload, size / 2);
        enospc = true;
        break;
      default:
        buf.append(payload, size);
        break;
    }
  };

  const std::string header = serialize_manifest(man);
  emit(kTagHeader, 0, header.data(), header.size());
  for (std::size_t z = 0; z < snap.zones.size(); ++z) {
    const auto& zone = snap.zones[z];
    emit(kTagZone, static_cast<std::uint32_t>(z),
         reinterpret_cast<const char*>(zone.data()),
         zone.size() * sizeof(double));
  }
  emit(kTagEnd, static_cast<std::uint32_t>(snap.zones.size() + 1), "", 0);

  const std::string dir_tmp = gen_dir(cfg_.dir, gen) + ".tmp";
  const std::string dir_final = gen_dir(cfg_.dir, gen);
  fs::create_directories(dir_tmp, ec);
  if (ec) throw llp::IoError("cannot create " + dir_tmp);

  if (crashed) {
    // Simulated process death mid-write: the partial, unsynced temp file
    // stays exactly where the crash left it — no rename, no cleanup — and
    // the CrashError must propagate past every recovery layer.
    std::ofstream out(dir_tmp + "/state.f3dc", std::ios::binary);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    throw llp::CrashError(llp::strfmt(
        "injected crash during checkpoint write op %llu (generation %d)",
        static_cast<unsigned long long>(op), gen));
  }
  if (enospc) {
    // A real ENOSPC leaves a partial temp behind; a correct writer cleans
    // it up and reports the failure without publishing anything.
    {
      std::ofstream out(dir_tmp + "/state.f3dc", std::ios::binary);
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    fs::remove_all(dir_tmp, ec);
    throw llp::IoError(llp::strfmt(
        "no space left on device (injected) during checkpoint write op %llu",
        static_cast<unsigned long long>(op)));
  }

  write_file_durable(dir_tmp + "/state.f3dc", buf);
  fs::rename(dir_tmp, dir_final, ec);
  if (ec) {
    fs::remove_all(dir_tmp, ec);
    throw llp::IoError("cannot publish generation " + dir_final);
  }

  // Rotate: keep the newest keep_generations directories.
  std::vector<int> gens = generations();
  for (std::size_t i = static_cast<std::size_t>(cfg_.keep_generations);
       i < gens.size(); ++i) {
    fs::remove_all(gen_dir(cfg_.dir, gens[i]), ec);
  }

  ++saves_completed_;
  last_written_gen_ = gen;
  last_written_step_ = man.state.steps;
  write_end.ok = true;
  emit_ckpt(llp::EventKind::kCkptDurable, gen, ckpt_step);
  return gen;
}

int CheckpointStore::save(const MultiZoneGrid& grid, const SolverState& state,
                          double first_replay_residual) {
  const auto snap = take_snapshot(grid, state);
  return write_generation(*snap, first_replay_residual);
}

bool CheckpointStore::on_healthy_step(const MultiZoneGrid& grid,
                                      const SolverState& state) {
  bool wrote = false;
  // Seal first: the pending snapshot of step s is written with this step's
  // residual — the value a restarted run must reproduce on its first
  // replayed step. Drop the pending snapshot before writing so an IoError
  // loses one generation, not the run.
  if (pending_ != nullptr && state.steps > pending_->manifest.state.steps) {
    const auto snap = std::move(pending_);
    write_generation(*snap, state.residual);
    wrote = true;
  }
  if (cfg_.every > 0 && pending_ == nullptr &&
      (last_snapshot_step_ < 0 ||
       state.steps - last_snapshot_step_ >= cfg_.every)) {
    pending_ = take_snapshot(grid, state);
    last_snapshot_step_ = state.steps;
  }
  return wrote;
}

void CheckpointStore::on_rollback(int step) {
  if (pending_ != nullptr && pending_->manifest.state.steps > step) {
    pending_.reset();
  }
  if (last_snapshot_step_ > step) last_snapshot_step_ = step;
}

bool CheckpointStore::flush(const MultiZoneGrid& grid,
                            const SolverState& state) {
  bool wrote = false;
  if (pending_ != nullptr) {
    const auto snap = std::move(pending_);
    if (snap->manifest.state.steps > last_written_step_) {
      write_generation(*snap, std::numeric_limits<double>::quiet_NaN());
      wrote = true;
    }
  }
  if (state.steps > last_written_step_) {
    save(grid, state);
    wrote = true;
  }
  return wrote;
}

std::vector<int> CheckpointStore::generations() const {
  std::vector<int> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const int g = parse_gen_name(entry.path().filename().string());
    if (g >= 0) gens.push_back(g);
  }
  std::sort(gens.begin(), gens.end(), std::greater<int>());
  return gens;
}

Manifest CheckpointStore::read_manifest(int gen) const {
  const std::string data = read_file(state_path(cfg_.dir, gen));
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw llp::IoError("bad checkpoint magic");
  }
  Cursor c{data.data(), data.size(), sizeof(kMagic)};
  const Frame hdr = read_frame(c, "header frame");
  if (hdr.tag != kTagHeader) throw llp::IoError("first frame is not HDR0");
  return parse_manifest(hdr.payload, hdr.size);
}

Manifest CheckpointStore::load(int gen, MultiZoneGrid& grid) const {
  const std::string data = read_file(state_path(cfg_.dir, gen));
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw llp::IoError("bad checkpoint magic");
  }
  Cursor c{data.data(), data.size(), sizeof(kMagic)};

  const Frame hdr = read_frame(c, "header frame");
  if (hdr.tag != kTagHeader) throw llp::IoError("first frame is not HDR0");
  const Manifest man = parse_manifest(hdr.payload, hdr.size);

  if (!cfg_.meta.empty() && man.meta != cfg_.meta) {
    throw llp::IoError("config fingerprint mismatch: checkpoint was written "
                       "by a different run configuration (\"" +
                       man.meta + "\" vs \"" + cfg_.meta + "\")");
  }
  const auto dims = grid.zone_dims();
  if (man.dims.size() != dims.size()) {
    throw llp::IoError("zone count mismatch against grid");
  }
  for (std::size_t z = 0; z < dims.size(); ++z) {
    if (man.dims[z].jmax != dims[z].jmax ||
        man.dims[z].kmax != dims[z].kmax ||
        man.dims[z].lmax != dims[z].lmax) {
      throw llp::IoError(llp::strfmt("zone %zu dimension mismatch", z));
    }
  }

  // Validate every zone frame (length + CRC) before mutating the grid.
  std::vector<std::vector<double>> zones(dims.size());
  for (std::size_t z = 0; z < dims.size(); ++z) {
    const Frame zf = read_frame(c, "zone frame");
    if (zf.tag != kTagZone || zf.index != z) {
      throw llp::IoError(llp::strfmt("zone frame %zu out of order", z));
    }
    const std::size_t expect = dims[z].points() *
                               static_cast<std::size_t>(kNumVars) *
                               sizeof(double);
    if (zf.size != expect) {
      throw llp::IoError(llp::strfmt("zone %zu payload is %zu bytes, "
                                     "expected %zu",
                                     z, zf.size, expect));
    }
    zones[z].resize(zf.size / sizeof(double));
    std::memcpy(zones[z].data(), zf.payload, zf.size);
  }
  const Frame end = read_frame(c, "end frame");
  if (end.tag != kTagEnd || end.size != 0) {
    throw llp::IoError("missing END0 terminator");
  }

  // unpack rejects non-finite values; the final rung compares the restored
  // grid's digest against the manifest end-to-end.
  for (std::size_t z = 0; z < zones.size(); ++z) {
    unpack_zone_interior(zones[z], grid.zone(static_cast<int>(z)));
  }
  if (checksum(grid) != man.grid_checksum) {
    throw llp::IoError("grid checksum mismatch after restore");
  }
  return man;
}

Manifest CheckpointStore::load_zone_range(int gen, int first,
                                          MultiZoneGrid& grid) const {
  const std::string data = read_file(state_path(cfg_.dir, gen));
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw llp::IoError("bad checkpoint magic");
  }
  Cursor c{data.data(), data.size(), sizeof(kMagic)};

  const Frame hdr = read_frame(c, "header frame");
  if (hdr.tag != kTagHeader) throw llp::IoError("first frame is not HDR0");
  const Manifest man = parse_manifest(hdr.payload, hdr.size);

  if (!cfg_.meta.empty() && man.meta != cfg_.meta) {
    throw llp::IoError("config fingerprint mismatch: checkpoint was written "
                       "by a different run configuration (\"" +
                       man.meta + "\" vs \"" + cfg_.meta + "\")");
  }
  const auto dims = grid.zone_dims();
  const int count = grid.num_zones();
  if (first < 0 || count < 1 ||
      static_cast<std::size_t>(first) + static_cast<std::size_t>(count) >
          man.dims.size()) {
    throw llp::IoError(llp::strfmt(
        "zone range [%d, %d) outside the generation's %zu zones", first,
        first + count, man.dims.size()));
  }
  for (int z = 0; z < count; ++z) {
    const ZoneDims& want = man.dims[static_cast<std::size_t>(first + z)];
    const ZoneDims& have = dims[static_cast<std::size_t>(z)];
    if (want.jmax != have.jmax || want.kmax != have.kmax ||
        want.lmax != have.lmax) {
      throw llp::IoError(
          llp::strfmt("zone %d dimension mismatch against grid", first + z));
    }
  }

  // Frames are sequential: walk (and CRC-validate) every zone frame up to
  // the end of the range, keeping only the requested ones.
  std::vector<std::vector<double>> zones(static_cast<std::size_t>(count));
  for (int z = 0; z < first + count; ++z) {
    const Frame zf = read_frame(c, "zone frame");
    if (zf.tag != kTagZone || zf.index != static_cast<std::uint32_t>(z)) {
      throw llp::IoError(llp::strfmt("zone frame %d out of order", z));
    }
    if (z < first) continue;
    const std::size_t expect = man.dims[static_cast<std::size_t>(z)].points() *
                               static_cast<std::size_t>(kNumVars) *
                               sizeof(double);
    if (zf.size != expect) {
      throw llp::IoError(llp::strfmt("zone %d payload is %zu bytes, "
                                     "expected %zu",
                                     z, zf.size, expect));
    }
    auto& dst = zones[static_cast<std::size_t>(z - first)];
    dst.resize(zf.size / sizeof(double));
    std::memcpy(dst.data(), zf.payload, zf.size);
  }

  // unpack rejects non-finite values, so a bit flip that survives a
  // payload CRC collision still cannot land a NaN in the grid.
  for (int z = 0; z < count; ++z) {
    unpack_zone_interior(zones[static_cast<std::size_t>(z)], grid.zone(z));
  }
  return man;
}

Manifest CheckpointStore::load_newest_intact(MultiZoneGrid& grid,
                                             int* gen_out,
                                             std::string* ladder_log) const {
  for (int gen : generations()) {
    try {
      Manifest man = load(gen, grid);
      if (gen_out != nullptr) *gen_out = gen;
      return man;
    } catch (const llp::IoError& e) {
      if (ladder_log != nullptr) {
        *ladder_log += llp::strfmt("ckpt.%d: %s\n", gen, e.what());
      }
    }
  }
  throw llp::IoError("no intact checkpoint generation under " + cfg_.dir);
}

std::vector<std::size_t> frame_offsets(const std::string& file) {
  const std::string data = read_file(file);
  std::vector<std::size_t> offsets{0};
  std::size_t off = sizeof(kMagic);
  while (off < data.size()) {
    offsets.push_back(off);
    if (data.size() - off < kFrameHeaderBytes) break;
    std::uint64_t len;
    std::memcpy(&len, data.data() + off + 8, sizeof(len));
    if (len > data.size() - off - kFrameHeaderBytes) break;
    off += kFrameHeaderBytes + static_cast<std::size_t>(len);
  }
  offsets.push_back(data.size());
  return offsets;
}

bool verify_first_replay(Solver& solver, const Manifest& manifest, double tol,
                         std::string* why) {
  if (!manifest.sealed()) return true;
  solver.step();
  const double got = solver.residual();
  const double want = manifest.first_replay_residual;
  const double err = std::abs(got - want) /
                     std::max({std::abs(want), std::abs(got), 1e-300});
  if (std::isfinite(got) && err <= tol) return true;
  if (why != nullptr) {
    *why = llp::strfmt("first replayed residual %.17g disagrees with the "
                       "manifest's %.17g (relative error %.3g > tol %.3g)",
                       got, want, err, tol);
  }
  return false;
}

}  // namespace f3d::ckpt
